// Tests for CrawlDatabase CSV persistence (the bring-your-own-data boundary).
#include <gtest/gtest.h>

#include <filesystem>

#include <fstream>

#include "crawler/db_io.hpp"
#include "events/binary.hpp"
#include "util/format.hpp"

namespace appstore::crawlersim {
namespace {

class DbIoFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    directory_ = std::filesystem::temp_directory_path() / "appstore_db_io_test";
    std::filesystem::remove_all(directory_);
  }
  void TearDown() override { std::filesystem::remove_all(directory_); }

  static AppRecord meta(std::uint32_t id, bool paid) {
    AppRecord record;
    record.id = id;
    record.name = util::format("app-{}", id);
    record.category = id % 2 == 0 ? "games" : "music, \"live\"";  // exercise quoting
    record.developer = "dev";
    record.paid = paid;
    record.has_ads = !paid;
    return record;
  }

  static CrawlDatabase build() {
    CrawlDatabase database;
    database.record(meta(1, false), 0, AppObservation{100, 1, 0.0});
    database.record(meta(1, false), 5, AppObservation{180, 2, 0.0});
    database.record(meta(2, true), 0, AppObservation{7, 1, 1.99});
    database.record(meta(2, true), 5, AppObservation{9, 1, 2.49});
    database.record_apk_scan(1, 1, true);
    database.record_apk_scan(1, 2, false);
    return database;
  }

  std::filesystem::path directory_;
};

TEST_F(DbIoFixture, RoundTripPreservesObservations) {
  const CrawlDatabase original = build();
  save_database(original, directory_);
  const CrawlDatabase loaded = load_database(directory_);

  EXPECT_EQ(loaded.app_count(), original.app_count());
  const AppRecord* record = loaded.find(1);
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(record->name, "app-1");
  EXPECT_EQ(record->category, "music, \"live\"");
  EXPECT_TRUE(record->has_ads);
  ASSERT_EQ(record->by_day.size(), 2u);
  EXPECT_EQ(record->by_day.at(5).downloads, 180u);
  EXPECT_EQ(record->by_day.at(5).version, 2u);

  const AppRecord* paid = loaded.find(2);
  ASSERT_NE(paid, nullptr);
  EXPECT_TRUE(paid->paid);
  EXPECT_DOUBLE_EQ(paid->by_day.at(5).price_dollars, 2.49);
}

TEST_F(DbIoFixture, RoundTripPreservesApkScans) {
  save_database(build(), directory_);
  const CrawlDatabase loaded = load_database(directory_);
  EXPECT_TRUE(loaded.apk_scanned(1, 1));
  EXPECT_TRUE(loaded.apk_scanned(1, 2));
  EXPECT_FALSE(loaded.apk_scanned(1, 3));
  EXPECT_TRUE(loaded.find(1)->ads_detected());
}

TEST_F(DbIoFixture, DerivedViewsSurviveRoundTrip) {
  const CrawlDatabase original = build();
  save_database(original, directory_);
  const CrawlDatabase loaded = load_database(directory_);
  EXPECT_EQ(loaded.crawl_days(), original.crawl_days());
  EXPECT_EQ(loaded.downloads_by_rank(5), original.downloads_by_rank(5));
  EXPECT_EQ(loaded.updates_per_app(), original.updates_per_app());
  EXPECT_DOUBLE_EQ(loaded.free_apps_with_ads_fraction(),
                   original.free_apps_with_ads_fraction());
}

TEST_F(DbIoFixture, MissingRequiredFilesThrow) {
  std::filesystem::create_directories(directory_);
  EXPECT_THROW((void)load_database(directory_), std::runtime_error);
}

TEST_F(DbIoFixture, ApkScansFileIsOptional) {
  save_database(build(), directory_);
  std::filesystem::remove(directory_ / "apk_scans.csv");
  const CrawlDatabase loaded = load_database(directory_);
  EXPECT_EQ(loaded.app_count(), 2u);
  EXPECT_FALSE(loaded.apk_scanned(1, 1));
}

TEST_F(DbIoFixture, ObservationForUnknownAppThrows) {
  save_database(build(), directory_);
  // Force the CSV path (load prefers observations.bin when present), then
  // corrupt it with an observation row referencing app 99.
  std::filesystem::remove(directory_ / "observations.bin");
  std::ofstream out(directory_ / "observations.csv", std::ios::app);
  out << "99,0,5,1,0\n";
  out.close();
  EXPECT_THROW((void)load_database(directory_), std::runtime_error);
}

TEST_F(DbIoFixture, BinaryObservationLoadEnforcesAppAndDayBounds) {
  // Satellite: AOBS applies the same LoadLimits windows as AEVL/ALSG, each
  // defect a typed error. The fixture's apps are 1 and 2, days 0 and 5.
  save_database(build(), directory_);

  events::LoadLimits limits;
  limits.app_bound = 2;  // exclusive: app 2 is out of range
  try {
    (void)load_database(directory_, limits);
    FAIL() << "app 2 must not pass a bound of 2";
  } catch (const events::binary::LoadError& error) {
    EXPECT_EQ(error.kind(), events::binary::LoadErrorKind::kAppRange);
  }

  limits = {};
  limits.day_bound = 5;  // magnitude window [-5, 5) excludes day 5
  try {
    (void)load_database(directory_, limits);
    FAIL() << "day 5 must not pass a magnitude bound of 5";
  } catch (const events::binary::LoadError& error) {
    EXPECT_EQ(error.kind(), events::binary::LoadErrorKind::kDayRange);
  }

  limits.day_bound = 6;  // [-6, 6) admits day 5
  EXPECT_EQ(load_database(directory_, limits).app_count(), 2u);
}

TEST_F(DbIoFixture, UnknownAppObservationIsTypedOnBothPaths) {
  // Both observation loaders report a row referencing an app absent from
  // apps.csv as the typed kAppRange, not a bare runtime_error.
  save_database(build(), directory_);
  std::filesystem::remove(directory_ / "observations.bin");
  std::ofstream out(directory_ / "observations.csv", std::ios::app);
  out << "99,0,5,1,0\n";
  out.close();
  try {
    (void)load_database(directory_);
    FAIL() << "an observation for app 99 must not load";
  } catch (const events::binary::LoadError& error) {
    EXPECT_EQ(error.kind(), events::binary::LoadErrorKind::kAppRange);
  }
}

TEST_F(DbIoFixture, BinaryObservationsPreferredOverCsv) {
  save_database(build(), directory_);
  // Doctor the CSV only: if the loader preferred it, the unknown-app row
  // below would throw. The intact binary file must win.
  std::ofstream out(directory_ / "observations.csv", std::ios::app);
  out << "99,0,5,1,0\n";
  out.close();
  const CrawlDatabase loaded = load_database(directory_);
  EXPECT_EQ(loaded.app_count(), 2u);
  EXPECT_EQ(loaded.find(99), nullptr);
}

TEST_F(DbIoFixture, CsvOnlyDirectoryStillLoads) {
  save_database(build(), directory_);
  std::filesystem::remove(directory_ / "observations.bin");
  const CrawlDatabase loaded = load_database(directory_);
  EXPECT_EQ(loaded.app_count(), 2u);
}

}  // namespace
}  // namespace appstore::crawlersim
