// Determinism and correctness of the src/par execution engine and every
// layer wired through it: sharded stream generation, the parallel fit
// sweep, the parallel bootstrap, and the cache-size/policy sweeps. Also the
// designated TSan target for shared-model concurrency (run with
// -DAPPSTORE_SANITIZE=thread; see ROADMAP.md).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "cache/sim.hpp"
#include "core/study.hpp"
#include "fit/sweep.hpp"
#include "models/app_clustering_model.hpp"
#include "models/model.hpp"
#include "models/stream.hpp"
#include "obs/registry.hpp"
#include "par/parallel.hpp"
#include "par/pool.hpp"
#include "stats/bootstrap.hpp"
#include "util/rng.hpp"

namespace {

using namespace appstore;

models::ModelParams small_params() {
  models::ModelParams params;
  params.app_count = 400;
  params.user_count = 2'000;
  params.downloads_per_user = 8.0;
  params.zr = 1.6;
  params.zc = 1.4;
  params.p = 0.9;
  params.cluster_count = 20;
  return params;
}

// ---- plan_shards -----------------------------------------------------------

TEST(PlanShards, ExplicitGrainControlsShardCount) {
  const auto plan = par::plan_shards(100, par::Options{.threads = 4, .grain = 7});
  EXPECT_EQ(plan.grain, 7u);
  EXPECT_EQ(plan.shard_count, 15u);  // ceil(100 / 7)
}

TEST(PlanShards, AutoGrainTargetsEightShardsPerThread) {
  const auto plan = par::plan_shards(6'400, par::Options{.threads = 4});
  EXPECT_EQ(plan.grain, 200u);  // 6400 / (4 * 8)
  EXPECT_EQ(plan.shard_count, 32u);
}

TEST(PlanShards, EmptyRangeHasNoShards) {
  const auto plan = par::plan_shards(0, par::Options{.threads = 4});
  EXPECT_EQ(plan.shard_count, 0u);
}

// ---- parallel_for / map / reduce ------------------------------------------

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  for (const std::size_t threads : {1u, 4u}) {
    std::vector<std::atomic<int>> visits(1'000);
    par::parallel_for(visits.size(), par::Options{.threads = threads},
                      [&](std::uint64_t i) { visits[i].fetch_add(1); });
    for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
  }
}

TEST(ParallelMap, OutputIsThreadCountInvariant) {
  const auto square = [](std::uint64_t i) {
    return static_cast<double>(i) * static_cast<double>(i) * 1e-3;
  };
  const auto serial = par::parallel_map<double>(5'000, par::Options{.threads = 1}, square);
  const auto parallel = par::parallel_map<double>(5'000, par::Options{.threads = 4}, square);
  EXPECT_EQ(serial, parallel);
}

TEST(ParallelReduce, FixedGrainMatchesSerialSum) {
  std::vector<double> values(10'000);
  util::Rng rng(11);
  for (auto& v : values) v = rng.uniform();
  const double expected = std::accumulate(values.begin(), values.end(), 0.0);

  const auto sum_with_threads = [&](std::size_t threads) {
    return par::parallel_reduce<double>(
        values.size(), 0.0, par::Options{.threads = threads, .grain = 512},
        [&](std::uint64_t i) { return values[i]; },
        [](double a, double b) { return a + b; });
  };
  // Shard boundaries and combine order depend only on the grain, so the
  // floating-point result is bit-identical at every thread count — but it is
  // a different summation ORDER than the serial left fold, hence EXPECT_NEAR
  // against std::accumulate and EXPECT_DOUBLE_EQ across thread counts.
  EXPECT_NEAR(sum_with_threads(1), expected, 1e-9);
  EXPECT_DOUBLE_EQ(sum_with_threads(1), sum_with_threads(4));
  EXPECT_DOUBLE_EQ(sum_with_threads(1), sum_with_threads(8));
}

TEST(ParallelFor, NestedCallsRunInline) {
  // A pool task issuing its own parallel_for must not deadlock waiting on
  // the pool it is running on; inner calls execute inline on the worker.
  std::vector<std::atomic<int>> visits(64 * 64);
  par::parallel_for(64, par::Options{.threads = 4}, [&](std::uint64_t outer) {
    par::parallel_for(64, par::Options{.threads = 4}, [&](std::uint64_t inner) {
      visits[outer * 64 + inner].fetch_add(1);
    });
  });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ParallelFor, PropagatesExceptions) {
  EXPECT_THROW(par::parallel_for(100, par::Options{.threads = 4, .grain = 1},
                                 [](std::uint64_t i) {
                                   if (i == 37) throw std::runtime_error("shard 37");
                                 }),
               std::runtime_error);
}

TEST(ParallelFor, RecordsMetrics) {
  obs::Registry registry;
  par::parallel_for(100, par::Options{.threads = 2, .grain = 10, .metrics = &registry},
                    [](std::uint64_t) {});
  const auto snapshot = registry.snapshot();
  const auto* tasks = snapshot.find_counter("par_tasks_total");
  const auto* shards = snapshot.find_counter("par_shards_total");
  ASSERT_NE(tasks, nullptr);
  ASSERT_NE(shards, nullptr);
  EXPECT_EQ(tasks->value, 1u);
  EXPECT_EQ(shards->value, 10u);
}

TEST(ThreadPool, InjectedPoolIsUsed) {
  par::ThreadPool pool(2);
  EXPECT_EQ(pool.thread_count(), 2u);
  std::atomic<int> sum{0};
  par::parallel_for(100, par::Options{.pool = &pool},
                    [&](std::uint64_t i) { sum.fetch_add(static_cast<int>(i)); });
  EXPECT_EQ(sum.load(), 4950);
}

// ---- seed derivation -------------------------------------------------------

TEST(DeriveSeed, ChildStreamsAreDistinctAndStable) {
  const std::uint64_t base = 0x5eed;
  EXPECT_EQ(util::rng::derive_seed(base, 3), util::rng::derive_seed(base, 3));
  EXPECT_NE(util::rng::derive_seed(base, 3), util::rng::derive_seed(base, 4));
  EXPECT_NE(util::rng::derive_seed(base, 0), util::rng::derive_seed(base + 1, 0));

  // First outputs of 1000 sibling streams should essentially never collide.
  std::vector<std::uint64_t> first;
  for (std::uint64_t shard = 0; shard < 1'000; ++shard) {
    first.push_back(util::rng::derive(base, shard)());
  }
  std::sort(first.begin(), first.end());
  EXPECT_EQ(std::adjacent_find(first.begin(), first.end()), first.end());
}

// ---- stream generation -----------------------------------------------------

TEST(Stream, BitIdenticalAcrossRunsAndThreadCounts) {
  const auto model = models::make_model(models::ModelKind::kAppClustering, small_params());

  const auto run = [&](std::size_t threads) {
    util::Rng rng(42);
    return models::generate_stream(*model, rng, models::StreamOptions{.threads = threads});
  };
  const auto serial = run(1);
  EXPECT_FALSE(serial.empty());
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    const auto stream = run(threads);
    ASSERT_EQ(stream.size(), serial.size()) << "threads=" << threads;
    for (std::size_t i = 0; i < stream.size(); ++i) {
      ASSERT_EQ(stream[i].user, serial[i].user) << "threads=" << threads << " i=" << i;
      ASSERT_EQ(stream[i].app, serial[i].app) << "threads=" << threads << " i=" << i;
    }
  }
}

TEST(Stream, MaxRequestsCapHolds) {
  const auto model = models::make_model(models::ModelKind::kZipf, small_params());
  util::Rng rng(7);
  const auto stream = models::generate_stream(
      *model, rng, models::StreamOptions{.max_requests = 500, .threads = 4});
  EXPECT_EQ(stream.size(), 500u);
}

// ---- shared-model concurrency (TSan target) --------------------------------

TEST(SharedModel, ConcurrentSessionsAndExpectedDownloads) {
  const auto params = small_params();
  const models::AppClusteringModel model(
      params, models::ClusterLayout::round_robin(params.app_count, params.cluster_count));

  par::parallel_for(32, par::Options{.threads = 8, .grain = 1}, [&](std::uint64_t task) {
    if (task % 4 == 0) {
      // Analytic path: touches every per-size sampler.
      const auto expected = model.expected_downloads();
      EXPECT_EQ(expected.size(), params.app_count);
    } else {
      // Sampling path: a private session drawing from the shared samplers.
      util::Rng rng = util::rng::derive(99, task);
      auto session = model.new_session();
      for (int draw = 0; draw < 200 && !session->exhausted(); ++draw) {
        EXPECT_LT(session->next(rng), params.app_count);
      }
    }
  });
}

// ---- fit sweep -------------------------------------------------------------

TEST(Fit, ParallelSweepSelectsSameCellAsSerial) {
  const auto params = small_params();
  const auto truth = models::make_model(models::ModelKind::kAppClustering, params);
  util::Rng rng(13);
  const auto measured = truth->generate(rng).by_rank();

  fit::SweepOptions options;
  options.zr_grid = {1.4, 1.6, 1.8};
  options.p_grid = {0.85, 0.9};
  options.zc_grid = {1.2, 1.4};
  options.seed = 21;

  options.threads = 1;
  const auto serial = fit::fit_model(models::ModelKind::kAppClustering, measured,
                                     params.user_count, params.cluster_count, options);
  options.threads = 4;
  const auto parallel = fit::fit_model(models::ModelKind::kAppClustering, measured,
                                       params.user_count, params.cluster_count, options);

  EXPECT_DOUBLE_EQ(serial.best.zr, parallel.best.zr);
  EXPECT_DOUBLE_EQ(serial.best.p, parallel.best.p);
  EXPECT_DOUBLE_EQ(serial.best.zc, parallel.best.zc);
  EXPECT_DOUBLE_EQ(serial.distance, parallel.distance);
  ASSERT_EQ(serial.all.size(), parallel.all.size());
  for (std::size_t i = 0; i < serial.all.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial.all[i].distance, parallel.all[i].distance) << "cell " << i;
  }
  EXPECT_EQ(serial.simulated_by_rank, parallel.simulated_by_rank);
}

TEST(Fit, ParallelUsersSweepMatchesSerial) {
  const auto params = small_params();
  const auto truth = models::make_model(models::ModelKind::kZipfAtMostOnce, params);
  util::Rng rng(17);
  const auto measured = truth->generate(rng).by_rank();
  const std::vector<double> ratios = {0.5, 1.0, 2.0};

  const auto run = [&](std::size_t threads) {
    fit::UsersSweepOptions options;
    options.seed = 29;
    options.replicates = 2;
    options.threads = threads;
    return fit::sweep_users(models::ModelKind::kZipfAtMostOnce, measured, params, ratios,
                            options);
  };
  const auto serial = run(1);
  const auto parallel = run(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].users, parallel[i].users);
    EXPECT_DOUBLE_EQ(serial[i].distance, parallel[i].distance);
  }
}

// ---- bootstrap -------------------------------------------------------------

TEST(Bootstrap, IntervalIsThreadCountInvariant) {
  util::Rng rng(19);
  std::vector<double> sample(400);
  for (auto& v : sample) v = rng.lognormal(0.0, 1.0);

  const auto run = [&](std::size_t threads) {
    util::Rng run_rng(23);
    return stats::bootstrap_mean_ci(
        sample, run_rng, stats::BootstrapOptions{.resamples = 500, .threads = threads});
  };
  const auto serial = run(1);
  const auto parallel = run(4);
  EXPECT_DOUBLE_EQ(serial.lower, parallel.lower);
  EXPECT_DOUBLE_EQ(serial.upper, parallel.upper);
  EXPECT_LT(serial.lower, serial.upper);
}

TEST(Bootstrap, ConsumesExactlyOneDraw) {
  std::vector<double> sample = {1.0, 2.0, 3.0, 4.0};
  util::Rng a(31);
  util::Rng b(31);
  (void)stats::bootstrap_mean_ci(sample, a, stats::BootstrapOptions{.resamples = 50});
  (void)b();
  EXPECT_EQ(a(), b());
}

// ---- cache sweeps ----------------------------------------------------------

TEST(Cache, ParallelSizeSweepMatchesSerial) {
  const auto model = models::make_model(models::ModelKind::kAppClustering, small_params());
  util::Rng rng(37);
  const auto stream = models::generate_stream(*model, rng, models::StreamOptions{});
  const std::vector<std::size_t> sizes = {4, 16, 64};

  const auto serial = cache::sweep_cache_sizes(cache::PolicyKind::kLru, sizes, stream, {},
                                               0, nullptr, /*threads=*/1);
  const auto parallel = cache::sweep_cache_sizes(cache::PolicyKind::kLru, sizes, stream, {},
                                                 0, nullptr, /*threads=*/4);
  ASSERT_EQ(serial.size(), sizes.size());
  ASSERT_EQ(parallel.size(), sizes.size());
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    EXPECT_EQ(serial[i].cache_size, parallel[i].cache_size);
    EXPECT_DOUBLE_EQ(serial[i].hit_ratio, parallel[i].hit_ratio);
  }
}

TEST(Core, PolicyStudyMatchesPerPolicyCacheStudy) {
  // The flattened policy×size study must reproduce the per-policy studies it
  // replaces in the ablation bench (same stream seed => same hit ratios).
  core::CacheStudyOptions options;
  options.scale = 0.003;
  options.seed = 41;
  options.threads = 4;
  const std::vector<cache::PolicyKind> policies = {cache::PolicyKind::kLru,
                                                   cache::PolicyKind::kFifo};
  const auto combined =
      core::cache_policy_study(models::ModelKind::kAppClustering, policies, options);
  ASSERT_EQ(combined.size(), policies.size());

  for (std::size_t p = 0; p < policies.size(); ++p) {
    EXPECT_EQ(combined[p].policy, policies[p]);
    core::CacheStudyOptions single = options;
    single.policy = policies[p];
    single.threads = 1;
    const auto expected = core::cache_study(models::ModelKind::kAppClustering, single);
    ASSERT_EQ(combined[p].points.size(), expected.points.size());
    for (std::size_t i = 0; i < expected.points.size(); ++i) {
      EXPECT_EQ(combined[p].points[i].cache_size, expected.points[i].cache_size);
      EXPECT_DOUBLE_EQ(combined[p].points[i].hit_ratio, expected.points[i].hit_ratio);
    }
  }
}

TEST(Core, Fig19StudyIsThreadCountInvariant) {
  core::CacheStudyOptions options;
  options.scale = 0.003;
  options.seed = 43;
  options.threads = 1;
  const auto serial = core::cache_study(models::ModelKind::kAppClustering, options);
  options.threads = 4;
  const auto parallel = core::cache_study(models::ModelKind::kAppClustering, options);
  ASSERT_EQ(serial.points.size(), parallel.points.size());
  for (std::size_t i = 0; i < serial.points.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial.points[i].hit_ratio, parallel.points[i].hit_ratio);
  }
}

}  // namespace
