// Tests for the online analytics query engine (ISSUE 6): the predicate
// language, the planner's index-scan-vs-column-scan choice, thread-count
// invariance of execution, the /api/v1/query wire forms, the versioned
// routing table with its deprecation aliases, the uniform error envelope,
// and the load generator's query mix.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "crawler/json.hpp"
#include "crawler/query_json.hpp"
#include "crawler/service.hpp"
#include "load/workload.hpp"
#include "market/store.hpp"
#include "net/http.hpp"
#include "obs/registry.hpp"
#include "query/engine.hpp"
#include "query/expression.hpp"
#include "query/plan.hpp"
#include "stats/pareto.hpp"
#include "synth/generator.hpp"
#include "util/format.hpp"

namespace appstore {
namespace {

using crawlersim::AppstoreService;
using crawlersim::ServicePolicy;

// ---- expression grammar ----------------------------------------------------------

TEST(QueryExpression, ParsesAndRendersCanonically) {
  const auto roundtrip = [](std::string_view text) {
    return query::to_string(query::parse_filter(text));
  };
  EXPECT_EQ(roundtrip("user == 3"), "user == 3");
  EXPECT_EQ(roundtrip("user==3 and day <= 60"), "(user == 3 and day <= 60)");
  // '+' reads as whitespace so filters survive URL query strings untouched.
  EXPECT_EQ(roundtrip("user==3+and+day<=60"), "(user == 3 and day <= 60)");
  EXPECT_EQ(roundtrip("price >= 1.5 or category == 'Games'"),
            "(price >= 1.5 or category == 'Games')");
  EXPECT_EQ(roundtrip("(user == 1 or user == 2) and day < 9"),
            "((user == 1 or user == 2) and day < 9)");
  // Chains of one connective flatten into a single n-ary node.
  const query::Expr chain = query::parse_filter("day > 0 and day < 9 and user == 1");
  ASSERT_EQ(chain.kind, query::Expr::Kind::kAnd);
  EXPECT_EQ(chain.children.size(), 3u);
  // The canonical rendering re-parses to the same canonical form.
  EXPECT_EQ(roundtrip(query::to_string(chain)), query::to_string(chain));
}

TEST(QueryExpression, RejectMatrixThrowsNeverCrashes) {
  const std::string_view bad[] = {
      "",                          // empty
      "user",                      // no operator
      "user ==",                   // no value
      "== 3",                      // no field
      "frobnicate == 3",           // unknown field
      "user = 3",                  // not an operator
      "user == 3 and",             // dangling connective
      "user == 3 or or day < 2",   // doubled connective
      "(user == 3",                // unbalanced paren
      "user == 3)",                // trailing junk
      "user == 'alice'",           // text for a numeric field
      "user == -1",                // negative id
      "user == 1.5",               // non-integral id
      "day == 2.5",                // non-integral day
      "category < 3",              // ordered op on category
      "store < 'x'",               // ordered op on store
      "store == 3",                // number for store
      "price == 'cheap'",          // text for price
      "user == 99999999999999999999999",  // overflow
      "user == nan",               // non-finite
      "day == 'a' and ",           // typing + syntax combined
  };
  for (const std::string_view text : bad) {
    EXPECT_THROW((void)query::parse_filter(text), query::QueryError) << text;
  }
  // Errors carry the stable envelope slug.
  try {
    (void)query::parse_filter("user = 3");
    FAIL() << "expected QueryError";
  } catch (const query::QueryError& error) {
    EXPECT_EQ(error.code(), "bad_filter");
  }
}

TEST(QueryExpression, DepthAndLengthLimits) {
  std::string deep;
  for (int i = 0; i < 64; ++i) deep += "(";
  deep += "user == 1";
  for (int i = 0; i < 64; ++i) deep += ")";
  EXPECT_THROW((void)query::parse_filter(deep), query::QueryError);
  const std::string long_filter(8192, ' ');
  EXPECT_THROW((void)query::parse_filter(long_filter), query::QueryError);
}

// ---- sorted-set combination helpers ----------------------------------------------

TEST(QueryPlan, SortedSetOperations) {
  const std::vector<std::uint32_t> a = {1, 3, 5, 7};
  const std::vector<std::uint32_t> b = {3, 4, 5, 9};
  EXPECT_EQ(query::intersect_sorted(a, b), (std::vector<std::uint32_t>{3, 5}));
  EXPECT_EQ(query::union_sorted(a, b), (std::vector<std::uint32_t>{1, 3, 4, 5, 7, 9}));
  EXPECT_TRUE(query::intersect_sorted(a, {}).empty());
  EXPECT_EQ(query::union_sorted({}, b), b);
}

// ---- planner choice on a hand-built store ----------------------------------------

/// 100 users, 2 apps (Games free / Tools paid), 10 download days: each user
/// downloads app (user % 2) once per day, so user u owns exactly the rows
/// {u, u+100, u+200, ...} and every planner decision is checkable by hand.
class PlannerFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    store_ = std::make_unique<market::AppStore>("Tiny");
    const market::CategoryId games = store_->add_category("Games");
    const market::CategoryId tools = store_->add_category("Tools");
    const market::DeveloperId dev = store_->add_developer("dev");
    (void)store_->add_app("free-game", dev, games, market::Pricing::kFree, 0, 0);
    (void)store_->add_app("paid-tool", dev, tools, market::Pricing::kPaid, 199, 0);
    store_->add_users(kUsers);
    for (market::Day day = 0; day < kDays; ++day) {
      for (std::uint32_t user = 0; user < kUsers; ++user) {
        store_->record_download(market::UserId{user}, market::AppId{user % 2}, day);
      }
    }
    store_->build_stream_index();
    app_category_ = {0, 1};
    app_price_ = {0.0, 1.99};
  }

  [[nodiscard]] query::BoundLog bound() const {
    query::BoundLog bound;
    bound.log = store_->download_log();
    bound.app_category = app_category_;
    bound.app_price = app_price_;
    bound.store_name = store_->name();
    bound.user_count = store_->user_count();
    bound.category_count = 2;
    return bound;
  }

  /// Executes `text` both as planned and with index scans disabled; the two
  /// row sets must be identical (and are returned for further checks).
  [[nodiscard]] std::vector<std::uint32_t> execute_both_ways(std::string_view text) const {
    const query::Expr expr = query::parse_filter(text);
    const query::PlanOptions planned_options;
    query::PlanOptions naive_options;
    naive_options.allow_index_scan = false;
    const query::BoundLog log = bound();
    const query::RowSet planned =
        query::execute(query::plan_filter(expr, log, planned_options), log, planned_options);
    const query::RowSet naive =
        query::execute(query::plan_filter(expr, log, naive_options), log, naive_options);
    EXPECT_EQ(planned.all, naive.all) << text;
    EXPECT_EQ(planned.rows, naive.rows) << text;
    return planned.rows;
  }

  static constexpr std::uint32_t kUsers = 100;
  static constexpr market::Day kDays = 10;

  std::unique_ptr<market::AppStore> store_;
  std::vector<std::uint32_t> app_category_;
  std::vector<double> app_price_;
};

TEST_F(PlannerFixture, UserEqualityTakesIndexScan) {
  const query::Plan plan =
      query::plan_filter(query::parse_filter("user == 5"), bound(), {});
  EXPECT_EQ(plan.root.kind, query::NodeKind::kIndexScan);
  EXPECT_EQ(plan.root.user_lo, 5u);
  EXPECT_EQ(plan.root.user_hi, 5u);
  EXPECT_EQ(plan.index_scans, 1u);
  EXPECT_EQ(plan.column_scans, 0u);

  const std::vector<std::uint32_t> rows = execute_both_ways("user == 5");
  ASSERT_EQ(rows.size(), kDays);
  for (std::uint32_t i = 0; i < kDays; ++i) EXPECT_EQ(rows[i], 5 + i * kUsers);
}

TEST_F(PlannerFixture, WideUserRangeFallsBackToColumnScan) {
  // index_user_fraction 1/64 of 100 users = at most 1 user per index scan;
  // user <= 50 spans 51 users and must scan the column instead.
  const query::Plan plan =
      query::plan_filter(query::parse_filter("user <= 50"), bound(), {});
  EXPECT_EQ(plan.root.kind, query::NodeKind::kColumnScan);
  EXPECT_EQ(plan.index_scans, 0u);
  EXPECT_EQ(plan.column_scans, 1u);
  EXPECT_EQ(execute_both_ways("user <= 50").size(), 51u * kDays);
}

TEST_F(PlannerFixture, DisabledOrMissingIndexFallsBackToColumnScan) {
  query::PlanOptions no_index;
  no_index.allow_index_scan = false;
  EXPECT_EQ(query::plan_filter(query::parse_filter("user == 5"), bound(), no_index)
                .root.kind,
            query::NodeKind::kColumnScan);

  // A plan bound to no snapshot (the live store indexes as it ingests, so
  // the only index-less log is an empty default binding) cannot serve index
  // scans either.
  query::BoundLog unindexed;
  unindexed.store_name = "Raw";
  unindexed.user_count = 100;
  unindexed.category_count = 1;
  ASSERT_FALSE(unindexed.log.indexed());
  EXPECT_EQ(query::plan_filter(query::parse_filter("user == 5"), unindexed, {}).root.kind,
            query::NodeKind::kColumnScan);
}

TEST_F(PlannerFixture, AndDemotesExtraScansToResidualFilters) {
  const query::Plan plan = query::plan_filter(
      query::parse_filter("user == 6 and day >= 2 and price < 1"), bound(), {});
  EXPECT_EQ(plan.index_scans, 1u);
  EXPECT_EQ(plan.column_scans, 0u);
  EXPECT_EQ(plan.residual_filters, 2u);

  // user 6 is even -> free app 0 (price 0) on days 2..9.
  const std::vector<std::uint32_t> rows =
      execute_both_ways("user == 6 and day >= 2 and price < 1");
  ASSERT_EQ(rows.size(), kDays - 2);
  for (std::uint32_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i], 6 + (i + 2) * kUsers);
  }
  // An even user only ever downloads the free app, so the paid-app half of
  // the same conjunction selects nothing.
  EXPECT_TRUE(execute_both_ways("user == 6 and price > 1").empty());
}

TEST_F(PlannerFixture, StoreClausesFoldAtPlanTime) {
  const query::Plan match =
      query::plan_filter(query::parse_filter("store == 'Tiny'"), bound(), {});
  EXPECT_EQ(match.root.kind, query::NodeKind::kAll);
  EXPECT_EQ(match.index_scans + match.column_scans, 0u);
  const query::BoundLog log = bound();
  EXPECT_TRUE(query::execute(match, log, {}).all);

  const query::Plan miss =
      query::plan_filter(query::parse_filter("store != 'Tiny'"), bound(), {});
  EXPECT_EQ(miss.root.kind, query::NodeKind::kNone);
  const query::RowSet none = query::execute(miss, log, {});
  EXPECT_FALSE(none.all);
  EXPECT_TRUE(none.rows.empty());

  // Simplification propagates: or-with-all is all, and-with-none is none.
  EXPECT_EQ(query::plan_filter(query::parse_filter("user == 5 or store == 'Tiny'"),
                               bound(), {})
                .root.kind,
            query::NodeKind::kAll);
  EXPECT_EQ(query::plan_filter(query::parse_filter("user == 5 and store != 'Tiny'"),
                               bound(), {})
                .root.kind,
            query::NodeKind::kNone);
}

TEST_F(PlannerFixture, OrUnionsSortedRowSets) {
  const std::vector<std::uint32_t> rows = execute_both_ways("user == 5 or user == 7");
  ASSERT_EQ(rows.size(), 2u * kDays);
  EXPECT_TRUE(std::is_sorted(rows.begin(), rows.end()));
  for (const std::uint32_t row : rows) {
    const std::uint32_t user = row % kUsers;
    EXPECT_TRUE(user == 5 || user == 7) << row;
  }
}

TEST_F(PlannerFixture, AppJoinedFieldsScanColumns) {
  // category/price read through the app column -> always column scans.
  const query::Plan plan =
      query::plan_filter(query::parse_filter("category == 1"), bound(), {});
  EXPECT_EQ(plan.root.kind, query::NodeKind::kColumnScan);
  const std::vector<std::uint32_t> rows = execute_both_ways("category == 1");
  EXPECT_EQ(rows.size(), (kUsers / 2) * kDays);  // odd users -> app 1 (Tools)
  // An out-of-range category id folds to an empty selection, not an error.
  EXPECT_TRUE(execute_both_ways("category == 9").empty());
}

// ---- engine over a synthetic store -----------------------------------------------

class EngineFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    synth::GeneratorConfig config;
    config.app_scale = 0.002;
    config.download_scale = 2e-6;
    config.comments = true;
    config.seed = 11;
    generated_ =
        std::make_unique<synth::GeneratedStore>(synth::generate(synth::anzhi(), config));
  }

  static constexpr market::Day kEndOfHistory = 1 << 20;

  std::unique_ptr<synth::GeneratedStore> generated_;
};

TEST_F(EngineFixture, ResultsAreThreadCountInvariant) {
  query::QueryOptions one;
  one.threads = 1;
  one.scan_block = 512;  // many blocks even on the small test store
  query::QueryOptions four = one;
  four.threads = 4;
  const query::QueryEngine serial(*generated_->store, one);
  const query::QueryEngine parallel(*generated_->store, four);

  for (const char* filter : {"day <= 40", "user <= 200 and price < 1", "category == 3"}) {
    for (std::size_t kind = 0; kind < query::kAggregateKindCount; ++kind) {
      query::QuerySpec spec;
      spec.kind = static_cast<query::AggregateKind>(kind);
      spec.filter = query::parse_filter(filter);
      const query::QueryResult a = serial.run(spec, 60);
      const query::QueryResult b = parallel.run(spec, 60);
      EXPECT_EQ(a.rows_selected, b.rows_selected) << filter;
      EXPECT_EQ(a.total_downloads, b.total_downloads) << filter;
      ASSERT_EQ(a.top.size(), b.top.size()) << filter;
      for (std::size_t i = 0; i < a.top.size(); ++i) {
        EXPECT_EQ(a.top[i].app, b.top[i].app);
        EXPECT_EQ(a.top[i].downloads, b.top[i].downloads);
      }
      ASSERT_EQ(a.pareto.size(), b.pareto.size());
      for (std::size_t i = 0; i < a.pareto.size(); ++i) {
        EXPECT_EQ(a.pareto[i].share, b.pareto[i].share);  // bit-identical
      }
      ASSERT_EQ(a.affinity.size(), b.affinity.size());
      for (std::size_t i = 0; i < a.affinity.size(); ++i) {
        EXPECT_EQ(a.affinity[i].mean, b.affinity[i].mean);
        EXPECT_EQ(a.affinity[i].samples, b.affinity[i].samples);
      }
      ASSERT_EQ(a.curve.size(), b.curve.size());
      for (std::size_t i = 0; i < a.curve.size(); ++i) {
        EXPECT_EQ(a.curve[i].downloads, b.curve[i].downloads);
      }
    }
  }
}

TEST_F(EngineFixture, PlannedExecutionMatchesNaiveFullScans) {
  const query::QueryEngine planned(*generated_->store, {});
  query::QueryOptions naive_options;
  naive_options.allow_index_scan = false;
  const query::QueryEngine naive(*generated_->store, naive_options);

  for (std::size_t kind = 0; kind < query::kAggregateKindCount; ++kind) {
    query::QuerySpec spec;
    spec.kind = static_cast<query::AggregateKind>(kind);
    spec.filter = query::parse_filter("user == 42");
    const query::QueryResult a = planned.run(spec, kEndOfHistory);
    const query::QueryResult b = naive.run(spec, kEndOfHistory);
    EXPECT_GE(a.index_scans, 1u);  // the planner actually used the index
    EXPECT_EQ(b.index_scans, 0u);
    EXPECT_EQ(a.rows_selected, b.rows_selected);
    EXPECT_EQ(a.total_downloads, b.total_downloads);
  }
}

TEST_F(EngineFixture, UnfilteredAggregatesMatchOfflineAnalyses) {
  const market::AppStore& store = *generated_->store;
  const query::QueryEngine engine(store, {});

  // pareto_share == stats::top_share over the store's download counters.
  query::QuerySpec pareto;
  pareto.kind = query::AggregateKind::kParetoShare;
  const query::QueryResult shares = engine.run(pareto, kEndOfHistory);
  const std::vector<double> counts = store.download_counts();
  ASSERT_EQ(shares.pareto.size(), pareto.fractions.size());
  for (const query::ParetoPoint& point : shares.pareto) {
    EXPECT_DOUBLE_EQ(point.share, stats::top_share(counts, point.fraction));
  }
  EXPECT_EQ(shares.rows_total, store.download_log().size());
  EXPECT_EQ(shares.rows_selected, store.download_log().size());

  // rank_download_curve rank 1 == the store's own descending rank series.
  query::QuerySpec curve;
  curve.kind = query::AggregateKind::kRankDownloadCurve;
  const query::QueryResult ranked = engine.run(curve, kEndOfHistory);
  const std::vector<double> by_rank = store.downloads_by_rank();
  ASSERT_FALSE(ranked.curve.empty());
  EXPECT_EQ(ranked.curve.front().rank, 1u);
  EXPECT_EQ(static_cast<double>(ranked.curve.front().downloads), by_rank.front());
  EXPECT_EQ(ranked.curve.back().rank, by_rank.size());
  EXPECT_EQ(static_cast<double>(ranked.curve.back().downloads), by_rank.back());
}

TEST_F(EngineFixture, SpecValidationRejectsOutOfRangeParameters) {
  const query::QueryEngine engine(*generated_->store, {});
  const auto expect_bad_query = [&](query::QuerySpec spec) {
    try {
      (void)engine.run(spec, 60);
      FAIL() << "expected QueryError";
    } catch (const query::QueryError& error) {
      EXPECT_EQ(error.code(), "bad_query");
    }
  };
  query::QuerySpec spec;
  spec.k = 0;
  expect_bad_query(spec);
  spec = {};
  spec.k = engine.options().max_k + 1;
  expect_bad_query(spec);
  spec = {};
  spec.kind = query::AggregateKind::kParetoShare;
  spec.fractions = {1.5};
  expect_bad_query(spec);
  spec.fractions = {};
  expect_bad_query(spec);
  spec = {};
  spec.kind = query::AggregateKind::kCategoryAffinity;
  spec.depths = {0};
  expect_bad_query(spec);
  spec.depths = {engine.options().max_depth + 1};
  expect_bad_query(spec);
  spec = {};
  spec.kind = query::AggregateKind::kRankDownloadCurve;
  spec.points = 1;
  expect_bad_query(spec);

  // Unknown category names surface their own slug.
  spec = {};
  spec.filter = query::parse_filter("category == 'NoSuchCategory'");
  try {
    (void)engine.run(spec, 60);
    FAIL() << "expected QueryError";
  } catch (const query::QueryError& error) {
    EXPECT_EQ(error.code(), "unknown_category");
  }
}

TEST_F(EngineFixture, MetricsRecordRequestsAndPlanChoices) {
  obs::Registry registry;
  const query::QueryEngine engine(*generated_->store, {}, &registry);

  query::QuerySpec selective;
  selective.filter = query::parse_filter("user == 7");
  (void)engine.run(selective, 60);

  // A user-selective predicate demonstrably picks the index scan.
  auto snapshot = registry.snapshot();
  ASSERT_NE(snapshot.find_counter("query_plan_total", "index_scan"), nullptr);
  EXPECT_EQ(snapshot.find_counter("query_plan_total", "index_scan")->value, 1u);
  EXPECT_EQ(snapshot.find_counter("query_plan_total", "column_scan")->value, 0u);
  EXPECT_EQ(snapshot.find_counter("query_requests_total", "top_k_downloads")->value, 1u);
  ASSERT_NE(snapshot.find_histogram("query_latency_seconds", "top_k_downloads"), nullptr);
  EXPECT_EQ(snapshot.find_histogram("query_latency_seconds", "top_k_downloads")->count, 1u);

  // A store-wide predicate scans the column instead.
  query::QuerySpec wide;
  wide.kind = query::AggregateKind::kParetoShare;
  wide.filter = query::parse_filter("day <= 40");
  (void)engine.run(wide, 60);
  snapshot = registry.snapshot();
  EXPECT_EQ(snapshot.find_counter("query_plan_total", "index_scan")->value, 1u);
  EXPECT_EQ(snapshot.find_counter("query_plan_total", "column_scan")->value, 1u);
  EXPECT_EQ(snapshot.find_counter("query_requests_total", "pareto_share")->value, 1u);
}

// ---- wire forms ------------------------------------------------------------------

TEST(QueryWire, GetAndPostProduceTheSameSpec) {
  net::HttpRequest get;
  get.method = "GET";
  get.target = "/api/v1/query?kind=top_k_downloads&k=5&filter=user==3+and+day<=60";
  const query::QuerySpec from_get = crawlersim::parse_query_request(get);

  net::HttpRequest post;
  post.method = "POST";
  post.target = "/api/v1/query";
  post.body = R"({"kind": "top_k_downloads", "k": 5, "filter": "user == 3 and day <= 60"})";
  const query::QuerySpec from_post = crawlersim::parse_query_request(post);

  EXPECT_EQ(from_get.kind, query::AggregateKind::kTopKDownloads);
  EXPECT_EQ(from_get.k, 5u);
  EXPECT_EQ(from_post.k, 5u);
  ASSERT_TRUE(from_get.filter.has_value());
  ASSERT_TRUE(from_post.filter.has_value());
  EXPECT_EQ(query::to_string(*from_get.filter), query::to_string(*from_post.filter));

  // List parameters are comma-separated in the GET form.
  net::HttpRequest lists;
  lists.target = "/api/v1/query?kind=pareto_share&fractions=0.01,0.5";
  const query::QuerySpec with_lists = crawlersim::parse_query_request(lists);
  EXPECT_EQ(with_lists.fractions, (std::vector<double>{0.01, 0.5}));
}

TEST(QueryWire, StructuredJsonFilterBuildsTheSameAst) {
  const auto node = crawlersim::parse_json(
      R"({"and": [{"field": "user", "op": "==", "value": 3},
                  {"or": [{"field": "day", "op": "<", "value": 9},
                          {"field": "category", "op": "==", "value": "Games"}]}]})");
  ASSERT_TRUE(node.has_value());
  const query::Expr expr = crawlersim::expr_from_json(*node);
  EXPECT_EQ(query::to_string(expr),
            query::to_string(
                query::parse_filter("user == 3 and (day < 9 or category == 'Games')")));

  for (const char* bad : {
           R"(["not", "an", "object"])",
           R"({"and": []})",
           R"({"field": "user", "op": "=="})",
           R"({"field": "user", "op": "==", "value": null})",
           R"({"field": "nope", "op": "==", "value": 1})",
       }) {
    const auto parsed = crawlersim::parse_json(bad);
    ASSERT_TRUE(parsed.has_value()) << bad;
    EXPECT_THROW((void)crawlersim::expr_from_json(*parsed), query::QueryError) << bad;
  }
}

// ---- versioned routing + service surface -----------------------------------------

TEST(ServiceRouting, TableDrivenRouteMatching) {
  using Endpoint = AppstoreService::Endpoint;
  const auto match = [](std::string_view path) { return AppstoreService::route(path); };

  EXPECT_EQ(match("/api/v1/meta").endpoint, Endpoint::kMeta);
  EXPECT_TRUE(match("/api/v1/meta").versioned);
  EXPECT_EQ(match("/api/meta").endpoint, Endpoint::kMeta);
  EXPECT_FALSE(match("/api/meta").versioned);
  EXPECT_TRUE(match("/api/meta").api);

  EXPECT_EQ(match("/api/v1/apps").endpoint, Endpoint::kApps);
  EXPECT_EQ(match("/api/v1/app/7").endpoint, Endpoint::kApp);
  EXPECT_EQ(match("/api/v1/app/7").rest, "7");
  EXPECT_EQ(match("/api/v1/app/7/comments").endpoint, Endpoint::kComments);
  EXPECT_EQ(match("/api/v1/app/7/apk").endpoint, Endpoint::kApk);
  EXPECT_EQ(match("/api/v1/query").endpoint, Endpoint::kQuery);
  EXPECT_EQ(match("/api/query").endpoint, Endpoint::kQuery);
  EXPECT_EQ(match("/api/v1/metrics").endpoint, Endpoint::kMetrics);

  EXPECT_EQ(match("/api/v1/nope").endpoint, Endpoint::kOther);
  EXPECT_TRUE(match("/api/v1/nope").api);
  EXPECT_EQ(match("/nope").endpoint, Endpoint::kOther);
  EXPECT_FALSE(match("/nope").api);
  EXPECT_EQ(match("/api/metadata").endpoint, Endpoint::kOther);  // no prefix match
}

class ServiceQueryFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    synth::GeneratorConfig config;
    config.app_scale = 0.002;
    config.download_scale = 2e-6;
    config.comments = true;
    config.seed = 11;
    generated_ =
        std::make_unique<synth::GeneratedStore>(synth::generate(synth::anzhi(), config));
    policy_.rate_per_second = 1e6;  // the matrix tests fire many requests
    policy_.burst = 1e6;
    service_ = std::make_unique<AppstoreService>(*generated_->store, policy_);
    service_->set_day(60);
  }

  [[nodiscard]] net::HttpResponse get(std::string target) {
    net::HttpRequest request;
    request.method = "GET";
    request.target = std::move(target);
    request.headers["X-Client-Id"] = "proxy-eu-1";
    return service_->respond(request);
  }

  [[nodiscard]] net::HttpResponse post(std::string target, std::string body) {
    net::HttpRequest request;
    request.method = "POST";
    request.target = std::move(target);
    request.body = std::move(body);
    request.headers["X-Client-Id"] = "proxy-eu-1";
    return service_->respond(request);
  }

  /// Asserts the uniform envelope shape and returns error.code.
  [[nodiscard]] static std::string envelope_code(const net::HttpResponse& response) {
    const auto parsed = crawlersim::parse_json(response.body);
    if (!parsed.has_value() || parsed->find("error") == nullptr) return "<no envelope>";
    const crawlersim::Json& error = parsed->at("error");
    if (error.find("code") == nullptr || error.find("message") == nullptr) {
      return "<incomplete envelope>";
    }
    return error.at("code").as_string();
  }

  std::unique_ptr<synth::GeneratedStore> generated_;
  ServicePolicy policy_;
  std::unique_ptr<AppstoreService> service_;
};

TEST_F(ServiceQueryFixture, ServesAllFourKindsMatchingTheEngine) {
  const query::QueryEngine engine(*generated_->store, policy_.query);
  const char* targets[] = {
      "/api/v1/query?kind=top_k_downloads&k=5",
      "/api/v1/query?kind=pareto_share",
      "/api/v1/query?kind=category_affinity&depths=1,2",
      "/api/v1/query?kind=rank_download_curve&points=10",
  };
  for (const char* target : targets) {
    const net::HttpResponse response = get(target);
    ASSERT_EQ(response.status, 200) << target << ": " << response.body;
    const auto parsed = crawlersim::parse_json(response.body);
    ASSERT_TRUE(parsed.has_value()) << target;
    net::HttpRequest request;
    request.target = target;
    const query::QueryResult expected =
        engine.run(crawlersim::parse_query_request(request), 60);
    EXPECT_EQ(parsed->at("kind").as_string(), query::to_string(expected.kind));
    EXPECT_EQ(parsed->at("day").as_u64(), 60u);
    EXPECT_EQ(parsed->at("rows_selected").as_u64(), expected.rows_selected);
    ASSERT_NE(parsed->find("plan"), nullptr);
  }

  // Spot-check the top-k payload against the engine, entry by entry.
  const net::HttpResponse response = get("/api/v1/query?kind=top_k_downloads&k=5");
  const auto parsed = crawlersim::parse_json(response.body);
  query::QuerySpec spec;
  spec.k = 5;
  const query::QueryResult expected = engine.run(spec, 60);
  const auto& top = parsed->at("top").as_array();
  ASSERT_EQ(top.size(), expected.top.size());
  for (std::size_t i = 0; i < top.size(); ++i) {
    EXPECT_EQ(top[i].at("app").as_u64(), expected.top[i].app);
    EXPECT_EQ(top[i].at("downloads").as_u64(), expected.top[i].downloads);
  }
}

TEST_F(ServiceQueryFixture, PostQueryWithStructuredFilter) {
  const net::HttpResponse response = post(
      "/api/v1/query",
      R"({"kind": "top_k_downloads", "k": 3,
          "filter": {"field": "user", "op": "<=", "value": 500}})");
  ASSERT_EQ(response.status, 200) << response.body;
  const auto parsed = crawlersim::parse_json(response.body);
  EXPECT_EQ(parsed->at("kind").as_string(), "top_k_downloads");
  EXPECT_LE(parsed->at("top").as_array().size(), 3u);
}

TEST_F(ServiceQueryFixture, MalformedQueriesGet400EnvelopesNeverCrash) {
  EXPECT_EQ(envelope_code(get("/api/v1/query")), "bad_query");  // kind missing
  EXPECT_EQ(get("/api/v1/query").status, 400);
  EXPECT_EQ(envelope_code(get("/api/v1/query?kind=nope")), "bad_query");
  EXPECT_EQ(envelope_code(get("/api/v1/query?kind=top_k_downloads&k=0")), "bad_query");
  EXPECT_EQ(envelope_code(get("/api/v1/query?kind=top_k_downloads&filter=user+=+3")),
            "bad_filter");
  EXPECT_EQ(envelope_code(
                get("/api/v1/query?kind=top_k_downloads&filter=category=='Nope'")),
            "unknown_category");
  EXPECT_EQ(envelope_code(post("/api/v1/query", "not json")), "bad_query");
  EXPECT_EQ(envelope_code(post("/api/v1/query", R"({"kind": 3})")), "bad_query");

  // A fuzz-ish reject matrix: every response is a 400 envelope, never a crash.
  const char* bad_filters[] = {"user",   "user==",     "user==x",  "((user==1)",
                               "day<'a'", "price==,,", "store>1",  "and and",
                               "user==1 or", "category<=2"};
  for (const char* filter : bad_filters) {
    const net::HttpResponse response =
        get(std::string("/api/v1/query?kind=top_k_downloads&filter=") + filter);
    EXPECT_EQ(response.status, 400) << filter;
    EXPECT_EQ(envelope_code(response), "bad_filter") << filter;
  }
}

TEST_F(ServiceQueryFixture, ErrorEnvelopeCoversEveryPolicyGate) {
  // 404: unknown app and unknown route.
  EXPECT_EQ(get("/api/v1/app/999999").status, 404);
  EXPECT_EQ(envelope_code(get("/api/v1/app/999999")), "not_found");
  EXPECT_EQ(envelope_code(get("/api/v1/nope")), "not_found");
  // 400: bad pagination.
  EXPECT_EQ(envelope_code(get("/api/v1/apps?page=xyz")), "bad_request");
  // 405: POST on a read-only endpoint.
  const net::HttpResponse wrong_method = post("/api/v1/meta", "{}");
  EXPECT_EQ(wrong_method.status, 405);
  EXPECT_EQ(envelope_code(wrong_method), "method_not_allowed");

  // 403: region gate.
  ServicePolicy cn_policy = policy_;
  cn_policy.china_only = true;
  AppstoreService gated(*generated_->store, cn_policy);
  gated.set_day(60);
  net::HttpRequest request;
  request.target = "/api/v1/meta";
  request.headers["X-Client-Id"] = "proxy-eu-1";
  const net::HttpResponse blocked = gated.respond(request);
  EXPECT_EQ(blocked.status, 403);
  EXPECT_EQ(envelope_code(blocked), "region_blocked");

  // 429: rate limit, with retry_after_ms and a Retry-After header.
  ServicePolicy slow_policy = policy_;
  slow_policy.rate_per_second = 0.001;
  slow_policy.burst = 1.0;
  AppstoreService limited(*generated_->store, slow_policy);
  limited.set_day(60);
  (void)limited.respond(request);
  const net::HttpResponse throttled = limited.respond(request);
  EXPECT_EQ(throttled.status, 429);
  EXPECT_EQ(envelope_code(throttled), "rate_limited");
  const auto parsed = crawlersim::parse_json(throttled.body);
  EXPECT_NE(parsed->at("error").find("retry_after_ms"), nullptr);
  EXPECT_NE(throttled.headers.find("Retry-After"), throttled.headers.end());
}

TEST_F(ServiceQueryFixture, LegacyAliasesAnswerWithDeprecationHeaders) {
  const net::HttpResponse v1 = get("/api/v1/meta");
  const net::HttpResponse legacy = get("/api/meta");
  ASSERT_EQ(v1.status, 200);
  ASSERT_EQ(legacy.status, 200);
  EXPECT_EQ(v1.body, legacy.body);
  EXPECT_EQ(v1.headers.find("Deprecation"), v1.headers.end());
  ASSERT_NE(legacy.headers.find("Deprecation"), legacy.headers.end());
  EXPECT_EQ(legacy.headers.find("Deprecation")->second, "true");
  ASSERT_NE(legacy.headers.find("Link"), legacy.headers.end());
  EXPECT_NE(legacy.headers.find("Link")->second.find("/api/v1/meta"), std::string::npos);

  // The legacy query alias serves the same analytics.
  const net::HttpResponse legacy_query = get("/api/query?kind=pareto_share");
  ASSERT_EQ(legacy_query.status, 200);
  EXPECT_EQ(legacy_query.body, get("/api/v1/query?kind=pareto_share").body);
  EXPECT_NE(legacy_query.headers.find("Deprecation"), legacy_query.headers.end());
}

TEST_F(ServiceQueryFixture, QueryResponsesAreCachedPerDayAcrossAliases) {
  const auto hits = [&] {
    const auto snapshot = service_->metrics().snapshot();
    const auto* counter = snapshot.find_counter("service_response_cache_total", "hit");
    return counter == nullptr ? 0u : counter->value;
  };
  const std::uint64_t before = hits();
  const net::HttpResponse first = get("/api/v1/query?kind=pareto_share");
  ASSERT_EQ(first.status, 200);
  EXPECT_EQ(hits(), before);  // miss populates
  const net::HttpResponse second = get("/api/v1/query?kind=pareto_share");
  EXPECT_EQ(second.body, first.body);
  EXPECT_EQ(hits(), before + 1);
  // The legacy alias shares the canonical cache entry.
  (void)get("/api/query?kind=pareto_share");
  EXPECT_EQ(hits(), before + 2);
  // Advancing the day invalidates.
  service_->set_day(61);
  (void)get("/api/v1/query?kind=pareto_share");
  EXPECT_EQ(hits(), before + 2);

  // POST bodies key the cache too: different bodies, different entries.
  service_->set_day(60);
  const net::HttpResponse post_a = post("/api/v1/query", R"({"kind": "pareto_share"})");
  const net::HttpResponse post_b =
      post("/api/v1/query", R"({"kind": "top_k_downloads", "k": 2})");
  ASSERT_EQ(post_a.status, 200);
  ASSERT_EQ(post_b.status, 200);
  EXPECT_NE(post_a.body, post_b.body);
}

// ---- load-generator query mix ----------------------------------------------------

TEST(LoadQueryMix, ScheduleRotatesQueryKindsDeterministically) {
  load::ScheduleOptions options;
  options.clients = 4;
  options.requests_per_client = 64;
  options.mix.query_weight = 1.0;
  options.mix.meta_weight = 0.0;
  options.mix.apps_weight = 0.0;
  options.mix.app_weight = 0.0;
  options.mix.comments_weight = 0.0;
  options.mix.query_user_count = 50;

  const load::Schedule schedule = load::build_schedule(options);
  bool saw_kind[4] = {false, false, false, false};
  for (const auto& client : schedule.per_client) {
    for (const load::Request& request : client) {
      EXPECT_EQ(request.kind, load::OpKind::kQuery);
      EXPECT_EQ(request.target.rfind("/api/v1/query?kind=", 0), 0u) << request.target;
      if (request.target.find("kind=top_k_downloads") != std::string::npos) {
        saw_kind[0] = true;
        // The selective filter stays within the configured user universe.
        const auto pos = request.target.find("filter=user==");
        ASSERT_NE(pos, std::string::npos);
        EXPECT_LT(std::stoul(request.target.substr(pos + 13)), 50u);
      }
      if (request.target.find("kind=pareto_share") != std::string::npos) saw_kind[1] = true;
      if (request.target.find("kind=category_affinity") != std::string::npos) {
        saw_kind[2] = true;
      }
      if (request.target.find("kind=rank_download_curve") != std::string::npos) {
        saw_kind[3] = true;
      }
    }
  }
  for (const bool seen : saw_kind) EXPECT_TRUE(seen);

  // Pure function of the options: a second build is identical.
  const load::Schedule again = load::build_schedule(options);
  ASSERT_EQ(again.per_client.size(), schedule.per_client.size());
  for (std::size_t c = 0; c < schedule.per_client.size(); ++c) {
    ASSERT_EQ(again.per_client[c].size(), schedule.per_client[c].size());
    for (std::size_t i = 0; i < schedule.per_client[c].size(); ++i) {
      EXPECT_EQ(again.per_client[c][i].target, schedule.per_client[c][i].target);
    }
  }
}

TEST(LoadQueryMix, DefaultMixEmitsNoQueries) {
  load::ScheduleOptions options;
  options.clients = 2;
  options.requests_per_client = 100;
  const load::Schedule schedule = load::build_schedule(options);
  for (const auto& client : schedule.per_client) {
    for (const load::Request& request : client) {
      EXPECT_NE(request.kind, load::OpKind::kQuery);
    }
  }
}

}  // namespace
}  // namespace appstore
