// Unit tests for appstore::market — domain model, store invariants, snapshots.
#include <gtest/gtest.h>

#include "market/snapshot.hpp"
#include "market/store.hpp"

namespace appstore::market {
namespace {

/// Builds a minimal 2-category, 2-developer, 3-app store used across tests.
AppStore make_small_store() {
  AppStore store("test-store");
  const CategoryId games = store.add_category("games");
  const CategoryId books = store.add_category("e-books");
  const DeveloperId alice = store.add_developer("alice");
  const DeveloperId bob = store.add_developer("bob");
  store.add_users(10);
  (void)store.add_app("free-game", alice, games, Pricing::kFree, 0, 0);
  (void)store.add_app("paid-game", alice, games, Pricing::kPaid, 199, 0);
  (void)store.add_app("book", bob, books, Pricing::kFree, 0, 2);
  return store;
}

TEST(Types, IdsAreDistinctTypes) {
  const AppId app{3};
  const UserId user{3};
  EXPECT_EQ(app.index(), user.index());  // same value, different types compile-time
  EXPECT_TRUE(app.valid());
  EXPECT_FALSE(AppId{}.valid());
}

TEST(Types, CentsConversionRoundTrips) {
  EXPECT_EQ(dollars_to_cents(1.99), 199);
  EXPECT_DOUBLE_EQ(cents_to_dollars(199), 1.99);
  EXPECT_EQ(dollars_to_cents(0.0), 0);
  EXPECT_EQ(dollars_to_cents(49.99), 4999);
}

TEST(Store, ConstructionCounts) {
  const AppStore store = make_small_store();
  EXPECT_EQ(store.categories().size(), 2u);
  EXPECT_EQ(store.developers().size(), 2u);
  EXPECT_EQ(store.apps().size(), 3u);
  EXPECT_EQ(store.user_count(), 10u);
  EXPECT_EQ(store.name(), "test-store");
}

TEST(Store, AddAppValidation) {
  AppStore store("s");
  const CategoryId category = store.add_category("c");
  const DeveloperId developer = store.add_developer("d");
  EXPECT_THROW((void)store.add_app("x", DeveloperId{99}, category, Pricing::kFree, 0, 0),
               std::invalid_argument);
  EXPECT_THROW((void)store.add_app("x", developer, CategoryId{99}, Pricing::kFree, 0, 0),
               std::invalid_argument);
  EXPECT_THROW((void)store.add_app("x", developer, category, Pricing::kFree, 100, 0),
               std::invalid_argument);
}

TEST(Store, DownloadCounting) {
  AppStore store = make_small_store();
  store.record_download(UserId{0}, AppId{0}, 1);
  store.record_download(UserId{1}, AppId{0}, 1);
  store.record_download(UserId{0}, AppId{2}, 2);
  EXPECT_EQ(store.downloads_of(AppId{0}), 2u);
  EXPECT_EQ(store.downloads_of(AppId{1}), 0u);
  EXPECT_EQ(store.downloads_of(AppId{2}), 1u);
  EXPECT_EQ(store.total_downloads(), 3u);
  store.check_invariants();
}

TEST(Store, DownloadRejectsInvalidUser) {
  AppStore store = make_small_store();
  EXPECT_THROW(store.record_download(UserId{999}, AppId{0}, 0), std::invalid_argument);
}

TEST(Store, CommentValidation) {
  AppStore store = make_small_store();
  store.record_comment(UserId{0}, AppId{0}, 1, 5);
  EXPECT_THROW(store.record_comment(UserId{999}, AppId{0}, 1, 5), std::invalid_argument);
  EXPECT_THROW(store.record_comment(UserId{0}, AppId{999}, 1, 5), std::invalid_argument);
  EXPECT_EQ(store.comment_log().size(), 1u);
}

TEST(Store, AveragePriceTracksObservations) {
  AppStore store = make_small_store();
  const AppId paid{1};
  EXPECT_DOUBLE_EQ(store.average_price_dollars(paid), 1.99);
  store.set_price(paid, 299, 10);
  EXPECT_DOUBLE_EQ(store.average_price_dollars(paid), (1.99 + 2.99) / 2.0);
}

TEST(Store, SetPriceOnFreeAppThrows) {
  AppStore store = make_small_store();
  EXPECT_THROW(store.set_price(AppId{0}, 100, 0), std::invalid_argument);
}

TEST(Store, DownloadsByRankSortedDescending) {
  AppStore store = make_small_store();
  store.record_download(UserId{0}, AppId{2}, 0);
  store.record_download(UserId{1}, AppId{2}, 0);
  store.record_download(UserId{2}, AppId{0}, 0);
  const auto ranks = store.downloads_by_rank();
  ASSERT_EQ(ranks.size(), 3u);
  EXPECT_DOUBLE_EQ(ranks[0], 2.0);
  EXPECT_DOUBLE_EQ(ranks[1], 1.0);
  EXPECT_DOUBLE_EQ(ranks[2], 0.0);
}

TEST(Store, PricingFilteredCounts) {
  AppStore store = make_small_store();
  store.record_download(UserId{0}, AppId{1}, 0);  // paid app
  const auto paid = store.download_counts(Pricing::kPaid);
  const auto free = store.download_counts(Pricing::kFree);
  ASSERT_EQ(paid.size(), 1u);
  ASSERT_EQ(free.size(), 2u);
  EXPECT_DOUBLE_EQ(paid[0], 1.0);
}

TEST(Store, CommentStreamsChronological) {
  AppStore store = make_small_store();
  store.record_comment(UserId{3}, AppId{0}, 5, 4);
  store.record_comment(UserId{3}, AppId{1}, 2, 5);
  store.record_comment(UserId{3}, AppId{2}, 2, 3);
  const auto stream = store.comment_stream(UserId{3});
  ASSERT_EQ(stream.size(), 3u);
  EXPECT_EQ(stream[0].day, 2);
  EXPECT_EQ(stream[1].day, 2);
  EXPECT_LT(stream[0].ordinal, stream[1].ordinal);  // within-day order by ordinal
  EXPECT_EQ(stream[2].day, 5);
}

TEST(Store, UpdatesRecorded) {
  AppStore store = make_small_store();
  store.record_update(AppId{0}, 3);
  store.record_update(AppId{0}, 7);
  EXPECT_EQ(store.app(AppId{0}).update_days.size(), 2u);
  EXPECT_EQ(store.update_events().size(), 2u);
  EXPECT_EQ(store.update_events()[1].version, 2u);
  store.check_invariants();
}

TEST(Store, AppsPerCategory) {
  const AppStore store = make_small_store();
  const auto counts = store.apps_per_category();
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0], 2u);  // games
  EXPECT_EQ(counts[1], 1u);  // e-books
}

TEST(Store, HasAdsFlag) {
  AppStore store = make_small_store();
  store.set_has_ads(AppId{0}, true);
  EXPECT_TRUE(store.app(AppId{0}).has_ads);
  EXPECT_FALSE(store.app(AppId{2}).has_ads);
}

// ---- snapshots -----------------------------------------------------------------

TEST(Snapshot, SeriesRequiresIncreasingDays) {
  SnapshotSeries series;
  series.add(Snapshot{0, 10, 100});
  series.add(Snapshot{1, 12, 130});
  EXPECT_THROW(series.add(Snapshot{1, 13, 140}), std::invalid_argument);
  EXPECT_THROW(series.add(Snapshot{0, 13, 140}), std::invalid_argument);
}

TEST(Snapshot, DerivedRates) {
  SnapshotSeries series;
  series.add(Snapshot{0, 100, 1000});
  series.add(Snapshot{10, 200, 6000});
  EXPECT_DOUBLE_EQ(series.new_apps_per_day(), 10.0);
  EXPECT_DOUBLE_EQ(series.daily_downloads(), 500.0);
}

TEST(Snapshot, SummaryFields) {
  SnapshotSeries series;
  series.add(Snapshot{0, 100, 1000});
  series.add(Snapshot{60, 160, 7000});
  const DatasetSummary summary = summarize("Anzhi", series);
  EXPECT_EQ(summary.store, "Anzhi");
  EXPECT_EQ(summary.apps_first_day, 100u);
  EXPECT_EQ(summary.apps_last_day, 160u);
  EXPECT_DOUBLE_EQ(summary.new_apps_per_day, 1.0);
  EXPECT_DOUBLE_EQ(summary.daily_downloads, 100.0);
}

TEST(Snapshot, ReplayAccumulates) {
  AppStore store = make_small_store();  // apps released on days 0,0,2
  store.record_download(UserId{0}, AppId{0}, 0);
  store.record_download(UserId{1}, AppId{0}, 1);
  store.record_download(UserId{2}, AppId{2}, 3);
  const SnapshotSeries series = replay_snapshots(store, 3);
  ASSERT_EQ(series.snapshots().size(), 4u);
  EXPECT_EQ(series.snapshots()[0].total_apps, 2u);      // two apps on day 0
  EXPECT_EQ(series.snapshots()[2].total_apps, 3u);      // third released day 2
  EXPECT_EQ(series.snapshots()[0].total_downloads, 1u);
  EXPECT_EQ(series.snapshots()[3].total_downloads, 3u);
}

TEST(Snapshot, ReplayClampsPreCrawlHistory) {
  AppStore store("s");
  const CategoryId c = store.add_category("c");
  const DeveloperId d = store.add_developer("d");
  store.add_users(1);
  (void)store.add_app("old", d, c, Pricing::kFree, 0, -1);  // pre-crawl release
  store.record_download(UserId{0}, AppId{0}, -1);           // pre-crawl download
  const SnapshotSeries series = replay_snapshots(store, 2);
  EXPECT_EQ(series.snapshots()[0].total_apps, 1u);
  EXPECT_EQ(series.snapshots()[0].total_downloads, 1u);
}

TEST(Snapshot, ReplayOnEmptyStoreYieldsZeroSnapshots) {
  const AppStore store("empty");
  const SnapshotSeries series = replay_snapshots(store, 5);
  ASSERT_EQ(series.snapshots().size(), 6u);  // one per day 0..horizon
  for (const Snapshot& snap : series.snapshots()) {
    EXPECT_EQ(snap.total_apps, 0u);
    EXPECT_EQ(snap.total_downloads, 0u);
  }
  EXPECT_DOUBLE_EQ(series.new_apps_per_day(), 0.0);
  EXPECT_DOUBLE_EQ(series.daily_downloads(), 0.0);
}

TEST(Snapshot, ReplayHorizonZeroIsASingleDay) {
  AppStore store = make_small_store();  // apps released on days 0,0,2
  store.record_download(UserId{0}, AppId{0}, 0);
  store.record_download(UserId{1}, AppId{2}, 4);  // past the horizon: clamped in
  const SnapshotSeries series = replay_snapshots(store, 0);
  ASSERT_EQ(series.snapshots().size(), 1u);
  EXPECT_EQ(series.snapshots()[0].day, 0);
  // Days outside [0, horizon] clamp onto the boundary, so the single
  // snapshot absorbs the day-2 release and the day-4 download.
  EXPECT_EQ(series.snapshots()[0].total_apps, 3u);
  EXPECT_EQ(series.snapshots()[0].total_downloads, 2u);
}

TEST(Snapshot, SingleSnapshotSeriesHasNoRates) {
  SnapshotSeries series;
  series.add(Snapshot{0, 100, 1000});
  // Rates are deltas; with one point there is no interval to divide by.
  EXPECT_DOUBLE_EQ(series.new_apps_per_day(), 0.0);
  EXPECT_DOUBLE_EQ(series.daily_downloads(), 0.0);
}

TEST(Snapshot, NonMonotoneAddLeavesSeriesIntact) {
  SnapshotSeries series;
  series.add(Snapshot{0, 10, 100});
  series.add(Snapshot{3, 14, 220});
  EXPECT_THROW(series.add(Snapshot{2, 20, 300}), std::invalid_argument);
  // The rejected snapshot must not have been partially applied.
  ASSERT_EQ(series.snapshots().size(), 2u);
  EXPECT_EQ(series.snapshots().back().day, 3);
  EXPECT_DOUBLE_EQ(series.daily_downloads(), 40.0);
}

TEST(Store, InvariantCheckerCatchesCorruption) {
  AppStore store = make_small_store();
  store.record_download(UserId{0}, AppId{0}, 0);
  store.check_invariants();  // healthy
  // (Corruption cannot be introduced through the public API — the checker
  // exists for deserialization paths; here we only verify it passes.)
}

}  // namespace
}  // namespace appstore::market
