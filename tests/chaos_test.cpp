// Tests for the fault-injection layer: virtual time, fault plans and
// injectors, the circuit breaker, the client/server chaos seams over real
// loopback sockets, and torn-write atomicity of the binary writers.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <system_error>

#include "chaos/clock.hpp"
#include "chaos/fault.hpp"
#include "chaos/file_faults.hpp"
#include "events/io.hpp"
#include "net/breaker.hpp"
#include "net/server.hpp"
#include "obs/registry.hpp"

namespace appstore::chaos {
namespace {

using namespace std::chrono_literals;

// ---- VirtualClock ----------------------------------------------------------------

TEST(VirtualClock, SleepsAdvanceInsteadOfBlocking) {
  VirtualClock clock;
  const auto start = clock.now();
  const auto wall_start = std::chrono::steady_clock::now();
  clock.sleep_for(10min);
  clock.advance(5min);
  const auto wall = std::chrono::steady_clock::now() - wall_start;
  EXPECT_EQ(clock.now() - start, 15min);
  EXPECT_EQ(clock.elapsed(), 15min);
  EXPECT_LT(wall, 1s);  // 15 virtual minutes cost ~0 wall time
}

TEST(VirtualClock, TimeFnAdapterTracksTheClock) {
  VirtualClock clock;
  const auto fn = clock.time_fn();
  const auto before = fn();
  clock.advance(30s);
  EXPECT_EQ(fn() - before, 30s);
}

TEST(VirtualClock, NegativeAdvanceIgnored) {
  VirtualClock clock;
  clock.advance(-5s);
  EXPECT_EQ(clock.elapsed(), 0ns);
}

TEST(Clock, NullMeansRealTime) {
  const auto a = now_or_real(nullptr);
  const auto b = now_or_real(nullptr);
  EXPECT_LE(a, b);
  sleep_or_real(nullptr, 0ns);  // must not block
}

// ---- FaultPlan -------------------------------------------------------------------

TEST(FaultPlan, DecideIsPure) {
  FaultPlan plan;
  plan.seed = 42;
  plan.rules.push_back({FaultSite::kExchange, FaultKind::kHttp500, 0.5, {}});
  for (std::uint32_t call = 0; call < 100; ++call) {
    const Fault first = plan.decide(FaultSite::kExchange, "/api/app/7", call);
    const Fault again = plan.decide(FaultSite::kExchange, "/api/app/7", call);
    EXPECT_EQ(first.kind, again.kind);
  }
}

TEST(FaultPlan, RateMatchesProbability) {
  FaultPlan plan;
  plan.seed = 7;
  plan.rules.push_back({FaultSite::kExchange, FaultKind::kHttp500, 0.3, {}});
  std::size_t faulted = 0;
  const std::size_t calls = 10000;
  for (std::size_t call = 0; call < calls; ++call) {
    if (!plan.decide(FaultSite::kExchange, "key", static_cast<std::uint32_t>(call)).none()) {
      ++faulted;
    }
  }
  const double rate = static_cast<double>(faulted) / static_cast<double>(calls);
  EXPECT_NEAR(rate, 0.3, 0.03);
}

TEST(FaultPlan, SitesAndKeysAreIndependent) {
  FaultPlan plan;
  plan.seed = 9;
  plan.rules.push_back({FaultSite::kExchange, FaultKind::kHttp429, 1.0, {}});
  // A rule for kExchange never fires at other sites or stops other keys.
  EXPECT_TRUE(plan.decide(FaultSite::kServer, "key", 0).none());
  EXPECT_TRUE(plan.decide(FaultSite::kFileWrite, "key", 0).none());
  EXPECT_EQ(plan.decide(FaultSite::kExchange, "other", 0).kind, FaultKind::kHttp429);
}

TEST(FaultPlan, LatencyRuleCarriesDuration) {
  FaultPlan plan;
  plan.rules.push_back({FaultSite::kExchange, FaultKind::kLatency, 1.0, 250ms});
  const Fault fault = plan.decide(FaultSite::kExchange, "k", 0);
  EXPECT_EQ(fault.kind, FaultKind::kLatency);
  EXPECT_EQ(fault.latency, 250ms);
}

// ---- FaultInjector ---------------------------------------------------------------

TEST(FaultInjector, CapBoundsFaultsPerKey) {
  FaultPlan plan;
  plan.seed = 1;
  plan.max_faults_per_key = 2;
  plan.rules.push_back({FaultSite::kExchange, FaultKind::kHttp500, 1.0, {}});
  FaultInjector injector(plan);

  EXPECT_EQ(injector.next(FaultSite::kExchange, "a").kind, FaultKind::kHttp500);
  EXPECT_EQ(injector.next(FaultSite::kExchange, "a").kind, FaultKind::kHttp500);
  // Capped: every further call for this key is clean.
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(injector.next(FaultSite::kExchange, "a").none());
  }
  // Other keys have their own budget.
  EXPECT_EQ(injector.next(FaultSite::kExchange, "b").kind, FaultKind::kHttp500);
  EXPECT_EQ(injector.injected_total(), 3u);
  EXPECT_EQ(injector.calls_total(), 13u);
}

TEST(FaultInjector, MirrorsInjectionsIntoMetrics) {
  obs::Registry registry;
  FaultPlan plan;
  plan.max_faults_per_key = 0;  // uncapped
  plan.rules.push_back({FaultSite::kServer, FaultKind::kConnectionReset, 1.0, {}});
  FaultInjector injector(plan, &registry);
  (void)injector.next(FaultSite::kServer, "x");
  (void)injector.next(FaultSite::kServer, "y");
  const auto snapshot = registry.snapshot();
  EXPECT_EQ(snapshot.find_counter("faults_injected_total", "connection_reset")->value, 2u);
}

TEST(InjectedFault, CarriesKind) {
  const InjectedFault fault(FaultKind::kTornWrite, "boom");
  EXPECT_EQ(fault.kind(), FaultKind::kTornWrite);
  EXPECT_STREQ(fault.what(), "boom");
}

// ---- CircuitBreaker --------------------------------------------------------------

TEST(CircuitBreaker, LifecycleUnderVirtualClock) {
  VirtualClock clock;
  net::CircuitBreaker::Options options;
  options.failure_threshold = 3;
  options.open_timeout = 250ms;
  options.clock = &clock;
  net::CircuitBreaker breaker(options);

  EXPECT_TRUE(breaker.allow());
  EXPECT_FALSE(breaker.record_failure());
  EXPECT_FALSE(breaker.record_failure());
  EXPECT_EQ(breaker.state(), net::CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.record_failure());  // third consecutive failure trips
  EXPECT_EQ(breaker.state(), net::CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.opened_total(), 1u);
  EXPECT_FALSE(breaker.allow());

  clock.advance(251ms);
  EXPECT_TRUE(breaker.allow());  // half-open: one probe admitted
  EXPECT_EQ(breaker.state(), net::CircuitBreaker::State::kHalfOpen);
  EXPECT_FALSE(breaker.allow());  // probe budget spent
  breaker.record_success();
  EXPECT_EQ(breaker.state(), net::CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.allow());
}

TEST(CircuitBreaker, FailedProbeReopens) {
  VirtualClock clock;
  net::CircuitBreaker::Options options;
  options.failure_threshold = 1;
  options.open_timeout = 100ms;
  options.clock = &clock;
  net::CircuitBreaker breaker(options);

  EXPECT_TRUE(breaker.record_failure());
  clock.advance(101ms);
  EXPECT_TRUE(breaker.allow());           // half-open probe
  EXPECT_TRUE(breaker.record_failure());  // probe failed: re-open counts as a trip
  EXPECT_EQ(breaker.state(), net::CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.opened_total(), 2u);
  EXPECT_FALSE(breaker.allow());  // timeout restarted
  clock.advance(101ms);
  EXPECT_TRUE(breaker.allow());
  breaker.record_success();
  EXPECT_EQ(breaker.state(), net::CircuitBreaker::State::kClosed);
}

TEST(CircuitBreaker, SuccessResetsFailureStreak) {
  net::CircuitBreaker::Options options;
  options.failure_threshold = 2;
  net::CircuitBreaker breaker(options);
  EXPECT_FALSE(breaker.record_failure());
  breaker.record_success();  // streak broken
  EXPECT_FALSE(breaker.record_failure());
  EXPECT_EQ(breaker.state(), net::CircuitBreaker::State::kClosed);
}

TEST(CircuitBreaker, ZeroThresholdDisables) {
  net::CircuitBreaker::Options options;
  options.failure_threshold = 0;
  net::CircuitBreaker breaker(options);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(breaker.record_failure());
    EXPECT_TRUE(breaker.allow());
  }
  EXPECT_EQ(breaker.opened_total(), 0u);
}

// ---- client/server seams over real sockets ---------------------------------------

TEST(ClientSeam, SyntheticHttp500NeverReachesTheServer) {
  net::HttpServer server(0, [](const net::HttpRequest&) {
    return net::HttpResponse::text(200, "real");
  });
  FaultPlan plan;
  plan.seed = 3;
  plan.max_faults_per_key = 2;
  plan.rules.push_back({FaultSite::kExchange, FaultKind::kHttp500, 1.0, {}});
  FaultInjector injector(plan);
  net::HttpClient client("127.0.0.1", server.port(),
                         net::ClientOptions{.faults = &injector});

  EXPECT_EQ(client.get("/x").status, 500);
  EXPECT_EQ(client.get("/x").status, 500);
  EXPECT_EQ(server.requests_served(), 0u);  // synthetic: no network involved

  const auto clean = client.get("/x");  // cap reached: the real server answers
  EXPECT_EQ(clean.status, 200);
  EXPECT_EQ(clean.body, "real");
  EXPECT_EQ(server.requests_served(), 1u);
}

TEST(ClientSeam, ConnectRefusedThrowsThenRecovers) {
  net::HttpServer server(0, [](const net::HttpRequest&) {
    return net::HttpResponse::text(200, "up");
  });
  FaultPlan plan;
  plan.max_faults_per_key = 1;
  plan.rules.push_back({FaultSite::kConnect, FaultKind::kConnectRefused, 1.0, {}});
  FaultInjector injector(plan);
  net::HttpClient client("127.0.0.1", server.port(),
                         net::ClientOptions{.faults = &injector});

  EXPECT_THROW((void)client.get("/x"), std::system_error);
  EXPECT_EQ(client.get("/x").status, 200);
}

TEST(ClientSeam, InjectedResetBypassesPersistentRetry) {
  net::HttpServer server(0, [](const net::HttpRequest&) {
    return net::HttpResponse::text(200, "up");
  });
  FaultPlan plan;
  plan.max_faults_per_key = 1;
  plan.rules.push_back({FaultSite::kExchange, FaultKind::kConnectionReset, 1.0, {}});
  FaultInjector injector(plan);
  net::PersistentHttpClient client("127.0.0.1", server.port(),
                                   net::ClientOptions{.faults = &injector});

  // Warm the connection up so the transparent reconnect-retry would be armed.
  // (First exchange is clean only because the fault rule hits call 0 — so
  // keep it simple: the injected reset must throw even though a genuine
  // stale-connection error would have been retried.)
  EXPECT_THROW((void)client.get("/x"), std::system_error);
  EXPECT_EQ(client.get("/x").status, 200);
}

TEST(ClientSeam, InjectedLatencyAdvancesVirtualTimeOnly) {
  net::HttpServer server(0, [](const net::HttpRequest&) {
    return net::HttpResponse::text(200, "slow");
  });
  VirtualClock clock;
  FaultPlan plan;
  plan.max_faults_per_key = 1;
  plan.rules.push_back({FaultSite::kExchange, FaultKind::kLatency, 1.0, 5000ms});
  FaultInjector injector(plan);
  net::HttpClient client("127.0.0.1", server.port(),
                         net::ClientOptions{.clock = &clock, .faults = &injector});

  const auto wall_start = std::chrono::steady_clock::now();
  EXPECT_EQ(client.get("/x").status, 200);
  EXPECT_GE(clock.elapsed(), 5000ms);
  EXPECT_LT(std::chrono::steady_clock::now() - wall_start, 2s);
}

TEST(ServerSeam, InjectsResponsesAndResets) {
  FaultPlan plan;
  plan.seed = 5;
  plan.max_faults_per_key = 1;
  plan.rules.push_back({FaultSite::kServer, FaultKind::kHttp429, 1.0, {}});
  FaultInjector injector(plan);
  std::atomic<int> handled{0};
  net::ServerOptions options;
  options.faults = &injector;
  net::HttpServer server(options, [&handled](const net::HttpRequest&) {
    ++handled;
    return net::HttpResponse::text(200, "handled");
  });
  net::HttpClient client("127.0.0.1", server.port());

  EXPECT_EQ(client.get("/t").status, 429);  // synthesized before the handler
  EXPECT_EQ(handled.load(), 0);
  EXPECT_EQ(client.get("/t").status, 200);
  EXPECT_EQ(handled.load(), 1);
}

TEST(ServerSeam, ConnectionResetDropsTheExchange) {
  FaultPlan plan;
  plan.max_faults_per_key = 1;
  plan.rules.push_back({FaultSite::kServer, FaultKind::kConnectionReset, 1.0, {}});
  FaultInjector injector(plan);
  net::ServerOptions options;
  options.faults = &injector;
  net::HttpServer server(options, [](const net::HttpRequest&) {
    return net::HttpResponse::text(200, "fine");
  });
  net::HttpClient client("127.0.0.1", server.port());

  EXPECT_THROW((void)client.get("/t"), std::exception);  // abrupt close
  EXPECT_EQ(client.get("/t").status, 200);
}

// ---- torn writes stay off the final path -----------------------------------------

TEST(TornWrite, SaveBinaryLeavesOriginalIntact) {
  const std::filesystem::path dir(::testing::TempDir());
  const auto path = dir / "chaos_torn_events.bin";
  std::filesystem::remove(path);

  events::EventLog original(events::Columns::kDay);
  original.append(1, 10, 3, 0, 0);
  original.append(2, 20, 4, 0, 0);
  events::save_binary(original, path);

  events::EventLog replacement(events::Columns::kDay);
  replacement.append(9, 90, 7, 0, 0);

  FaultPlan plan;
  plan.max_faults_per_key = 1;
  plan.rules.push_back({FaultSite::kFileWrite, FaultKind::kTornWrite, 1.0, {}});
  FaultInjector injector(plan);
  EXPECT_THROW(events::save_binary(replacement, path, {.faults = &injector}),
               InjectedFault);

  // The final path still holds the previous complete version, and the
  // staging file was cleaned up on unwind.
  EXPECT_FALSE(std::filesystem::exists(path.string() + ".tmp"));
  const events::EventLog loaded = events::load_binary(path);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded.user()[0], 1u);
  EXPECT_EQ(loaded.app()[1], 20u);

  // The injector's cap is spent: the next save goes through.
  events::save_binary(replacement, path, {.faults = &injector});
  EXPECT_EQ(events::load_binary(path).size(), 1u);
}

TEST(FileFaults, CorruptFileChangesBytes) {
  const std::filesystem::path dir(::testing::TempDir());
  const auto path = dir / "chaos_corrupt_target.bin";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    for (int i = 0; i < 256; ++i) out.put(static_cast<char>(i));
  }
  util::Rng rng(123);
  const std::string what = corrupt_file(path, rng);
  EXPECT_FALSE(what.empty());
  const auto size = std::filesystem::file_size(path);
  EXPECT_LE(size, 256u);
}

}  // namespace
}  // namespace appstore::chaos
