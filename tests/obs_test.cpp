// Tests for the observability layer: atomic counters/gauges/histograms under
// concurrent hammering, log-spaced bucket quantiles, the registry's family
// semantics, RAII timers/spans, and the text/JSON exporters (JSON validated
// by round-tripping through crawlersim::parse_json).
#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "crawler/json.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace appstore::obs {
namespace {

// ---- counters / gauges ---------------------------------------------------------

TEST(Counter, ConcurrentIncrementsAllLand) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 50'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) counter.inc();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
}

TEST(Counter, IncByAmount) {
  Counter counter;
  counter.inc(3);
  counter.inc(0);
  counter.inc(39);
  EXPECT_EQ(counter.value(), 42u);
}

TEST(Gauge, SetAddSub) {
  Gauge gauge;
  gauge.set(10.0);
  gauge.add(2.5);
  gauge.sub(0.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 12.0);
}

// ---- histogram -----------------------------------------------------------------

TEST(Histogram, CountSumMinMax) {
  Histogram histogram;
  histogram.observe(0.5);
  histogram.observe(2.0);
  histogram.observe(0.125);
  EXPECT_EQ(histogram.count(), 3u);
  EXPECT_DOUBLE_EQ(histogram.sum(), 2.625);
  EXPECT_DOUBLE_EQ(histogram.min(), 0.125);
  EXPECT_DOUBLE_EQ(histogram.max(), 2.0);
  EXPECT_NEAR(histogram.mean(), 0.875, 1e-12);
}

TEST(Histogram, QuantilesWithinBucketTolerance) {
  Histogram histogram;
  // Uniform 1..1000 ms: p50 ~ 0.5 s, p99 ~ 0.99 s. Log-2 buckets give at
  // most a 2x over-estimate before interpolation; interpolation plus the
  // observed-min/max clip keeps the estimate inside the true value's bucket.
  for (int ms = 1; ms <= 1000; ++ms) histogram.observe(ms * 1e-3);
  const double p50 = histogram.quantile(0.5);
  const double p99 = histogram.quantile(0.99);
  EXPECT_GE(p50, 0.25);
  EXPECT_LE(p50, 1.0);
  EXPECT_GE(p99, 0.5);
  EXPECT_LE(p99, 1.0);
  EXPECT_LE(histogram.quantile(1.0), histogram.max() + 1e-12);
  EXPECT_GE(histogram.quantile(0.0), 0.0);
}

TEST(Histogram, SingleObservationQuantileIsExact) {
  Histogram histogram;
  histogram.observe(0.125);
  // With one sample, min == max == the sample; clipping makes every
  // quantile exact.
  EXPECT_DOUBLE_EQ(histogram.quantile(0.5), 0.125);
  EXPECT_DOUBLE_EQ(histogram.quantile(0.99), 0.125);
}

TEST(Histogram, ConcurrentObservationsAllLand) {
  Histogram histogram;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        histogram.observe(1e-3 * static_cast<double>(1 + ((t + i) % 100)));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(histogram.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(histogram.min(), 1e-3);
  EXPECT_DOUBLE_EQ(histogram.max(), 0.1);
}

TEST(Histogram, IgnoresNaN) {
  Histogram histogram;
  histogram.observe(std::nan(""));
  EXPECT_EQ(histogram.count(), 0u);
}

TEST(Histogram, OverflowBucketCatchesHugeValues) {
  Histogram histogram(HistogramOptions{.least_bound = 1e-6, .growth = 2.0, .bucket_count = 4});
  histogram.observe(1e9);
  EXPECT_EQ(histogram.count(), 1u);
  EXPECT_DOUBLE_EQ(histogram.max(), 1e9);
  EXPECT_DOUBLE_EQ(histogram.quantile(0.5), 1e9);  // clipped to observed max
}

// ---- registry ------------------------------------------------------------------

TEST(Registry, SameNameLabelReturnsSameMetric) {
  Registry registry;
  Counter& a = registry.counter("requests_total", "GET");
  Counter& b = registry.counter("requests_total", "GET");
  EXPECT_EQ(&a, &b);
  Counter& c = registry.counter("requests_total", "POST");
  EXPECT_NE(&a, &c);
}

TEST(Registry, SnapshotIsDeterministicallyOrdered) {
  Registry registry;
  registry.counter("zeta").inc();
  registry.counter("alpha", "b").inc();
  registry.counter("alpha", "a").inc();
  const Snapshot snapshot = registry.snapshot();
  ASSERT_EQ(snapshot.counters.size(), 3u);
  EXPECT_EQ(snapshot.counters[0].name, "alpha");
  EXPECT_EQ(snapshot.counters[0].label, "a");
  EXPECT_EQ(snapshot.counters[1].label, "b");
  EXPECT_EQ(snapshot.counters[2].name, "zeta");
}

TEST(Registry, ConcurrentRegistrationAndUse) {
  Registry registry;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Half the threads share a family; half create their own label.
      Counter& shared = registry.counter("shared_total");
      Counter& own = registry.counter("per_thread_total", std::to_string(t % 2));
      for (int i = 0; i < 10'000; ++i) {
        shared.inc();
        own.inc();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const Snapshot snapshot = registry.snapshot();
  EXPECT_EQ(snapshot.find_counter("shared_total")->value, 80'000u);
  EXPECT_EQ(snapshot.find_counter("per_thread_total", "0")->value +
                snapshot.find_counter("per_thread_total", "1")->value,
            80'000u);
}

TEST(Registry, HistogramSampleCarriesQuantiles) {
  Registry registry;
  Histogram& latency = registry.histogram("latency_seconds", "api");
  for (int i = 1; i <= 100; ++i) latency.observe(i * 1e-3);
  const auto snapshot = registry.snapshot();  // keep alive: find_histogram aims into it
  const auto* sample = snapshot.find_histogram("latency_seconds", "api");
  ASSERT_NE(sample, nullptr);
  EXPECT_EQ(sample->count, 100u);
  EXPECT_GT(sample->p50, 0.0);
  EXPECT_LE(sample->p50, sample->p90);
  EXPECT_LE(sample->p90, sample->p99);
  EXPECT_LE(sample->p99, sample->max);
}

// ---- RAII timers / spans -------------------------------------------------------

TEST(ScopedTimer, ObservesOnDestruction) {
  Histogram histogram;
  { ScopedTimer timer(histogram); }
  EXPECT_EQ(histogram.count(), 1u);
  EXPECT_GT(histogram.sum(), 0.0);
}

TEST(ScopedTimer, CancelDropsObservation) {
  Histogram histogram;
  {
    ScopedTimer timer(histogram);
    timer.cancel();
  }
  EXPECT_EQ(histogram.count(), 0u);
}

TEST(ScopedTimer, NullHistogramIsNoOp) {
  ScopedTimer timer(static_cast<Histogram*>(nullptr));
  EXPECT_GE(timer.elapsed_seconds(), 0.0);
}

TEST(TraceSpan, NestedPathsJoinWithSlash) {
  Registry registry;
  {
    TraceSpan outer(registry, "crawl_day");
    EXPECT_EQ(outer.path(), "crawl_day");
    EXPECT_EQ(TraceSpan::current_path(), "crawl_day");
    {
      TraceSpan inner(registry, "directory");
      EXPECT_EQ(inner.path(), "crawl_day/directory");
    }
    EXPECT_EQ(TraceSpan::current_path(), "crawl_day");
  }
  EXPECT_EQ(TraceSpan::current_path(), "");
  const Snapshot snapshot = registry.snapshot();
  EXPECT_EQ(snapshot.find_histogram(TraceSpan::kFamily, "crawl_day")->count, 1u);
  EXPECT_EQ(snapshot.find_histogram(TraceSpan::kFamily, "crawl_day/directory")->count, 1u);
}

TEST(TraceSpan, NullRegistryIsNoOp) {
  TraceSpan span(nullptr, "nothing");
  EXPECT_EQ(span.path(), "nothing");
}

// ---- exporters -----------------------------------------------------------------

TEST(Export, TextFormatContainsFamiliesAndHelp) {
  Registry registry;
  registry.describe("requests_total", "Total requests");
  registry.counter("requests_total", "2xx").inc(5);
  registry.gauge("active").set(2.0);
  registry.histogram("latency_seconds").observe(0.25);
  const std::string text = to_text(registry);
  EXPECT_NE(text.find("# HELP requests_total Total requests"), std::string::npos);
  EXPECT_NE(text.find("requests_total{label=\"2xx\"} 5"), std::string::npos);
  EXPECT_NE(text.find("active 2"), std::string::npos);
  EXPECT_NE(text.find("latency_seconds_count 1"), std::string::npos);
  EXPECT_NE(text.find("latency_seconds_p50"), std::string::npos);
}

TEST(Export, JsonRoundTripsThroughParser) {
  Registry registry;
  registry.counter("requests_total", "2xx").inc(7);
  registry.counter("requests_total", "5xx").inc(1);
  registry.gauge("hit_ratio", "LRU").set(0.75);
  Histogram& latency = registry.histogram("latency_seconds", "api");
  for (int i = 1; i <= 10; ++i) latency.observe(i * 1e-3);

  const std::string json = to_json(registry);
  const auto parsed = crawlersim::parse_json(json);
  ASSERT_TRUE(parsed.has_value());

  const auto& counters = parsed->at("counters").as_array();
  ASSERT_EQ(counters.size(), 2u);
  EXPECT_EQ(counters[0].at("name").as_string(), "requests_total");
  EXPECT_EQ(counters[0].at("label").as_string(), "2xx");
  EXPECT_EQ(counters[0].at("value").as_u64(), 7u);

  const auto& gauges = parsed->at("gauges").as_array();
  ASSERT_EQ(gauges.size(), 1u);
  EXPECT_EQ(gauges[0].at("label").as_string(), "LRU");
  EXPECT_DOUBLE_EQ(gauges[0].at("value").as_number(), 0.75);

  const auto& histograms = parsed->at("histograms").as_array();
  ASSERT_EQ(histograms.size(), 1u);
  EXPECT_EQ(histograms[0].at("count").as_u64(), 10u);
  EXPECT_DOUBLE_EQ(histograms[0].at("min").as_number(), 1e-3);
  EXPECT_DOUBLE_EQ(histograms[0].at("max").as_number(), 1e-2);
  EXPECT_GT(histograms[0].at("p99").as_number(), 0.0);
}

TEST(Export, JsonEscapesLabelStrings) {
  Registry registry;
  registry.counter("weird_total", "with \"quotes\" and \\slashes\\").inc();
  const auto parsed = crawlersim::parse_json(to_json(registry));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->at("counters").as_array()[0].at("label").as_string(),
            "with \"quotes\" and \\slashes\\");
}

TEST(Export, EmptyRegistryIsValidJson) {
  Registry registry;
  const auto parsed = crawlersim::parse_json(to_json(registry));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->at("counters").as_array().empty());
}

}  // namespace
}  // namespace appstore::obs
