// End-to-end integration tests: generate -> serve over HTTP -> crawl ->
// analyze from the crawl database -> fit models -> rank model quality.
// This is the paper's entire pipeline (Fig. 1 + §3-§5) in one test binary.
#include <gtest/gtest.h>

#include "core/study.hpp"
#include "crawler/crawler.hpp"
#include "crawler/service.hpp"
#include "fit/sweep.hpp"
#include "report/table.hpp"
#include "util/format.hpp"
#include "stats/pareto.hpp"
#include "stats/powerlaw.hpp"

namespace appstore {
namespace {

TEST(Pipeline, CrawlThenAnalyzeMatchesDirectAnalysis) {
  // 1. Generate a small Anzhi-like marketplace.
  synth::GeneratorConfig config;
  config.app_scale = 0.004;      // ~240 apps
  config.download_scale = 4e-6;  // ~11k downloads
  config.seed = 21;
  const auto generated = synth::generate(synth::anzhi(), config);

  // 2. Serve it and crawl it on three days.
  crawlersim::ServicePolicy policy;
  crawlersim::AppstoreService service(*generated.store, policy);
  crawlersim::CrawlDatabase database;
  crawlersim::CrawlerConfig crawler_config;
  crawler_config.port = service.port();
  crawlersim::Crawler crawler(crawler_config, database);
  for (const market::Day day : {0, 30, 60}) {
    service.set_day(day);
    (void)crawler.crawl_day(day);
  }

  // 3. The crawled rank-download curve equals the ground-truth curve.
  const auto crawled = database.downloads_by_rank(60);
  const auto truth = generated.store->downloads_by_rank();
  ASSERT_EQ(crawled.size(), truth.size());
  for (std::size_t i = 0; i < truth.size(); ++i) {
    EXPECT_DOUBLE_EQ(crawled[i], truth[i]) << "rank " << i + 1;
  }

  // 4. Pareto and power-law conclusions agree between the two views.
  EXPECT_NEAR(stats::top_share(crawled, 0.10), stats::top_share(truth, 0.10), 1e-12);
}

TEST(Pipeline, ModelRankingFromCrawledData) {
  // Fit all three models against CRAWLED data (not ground truth): the
  // paper's headline result — APP-CLUSTERING fits best — must survive the
  // crawl pipeline.
  // Scale note: d (downloads per user) must stay small relative to the app
  // count or every user drains a large share of the catalog and the models
  // converge; raising top_app_share lowers d at fixed totals.
  synth::StoreProfile profile = synth::anzhi();
  profile.free_segment.top_app_share = 0.02;
  synth::GeneratorConfig config;
  config.app_scale = 0.02;       // ~1200 apps
  config.download_scale = 1e-5;  // ~28k downloads
  config.seed = 22;
  const auto generated = synth::generate(profile, config);

  crawlersim::AppstoreService service(*generated.store, crawlersim::ServicePolicy{});
  service.set_day(60);
  crawlersim::CrawlDatabase database;
  crawlersim::CrawlerConfig crawler_config;
  crawler_config.port = service.port();
  crawlersim::Crawler crawler(crawler_config, database);
  (void)crawler.crawl_day(60);

  const auto measured = database.downloads_by_rank(60);
  ASSERT_FALSE(measured.empty());
  const auto users = static_cast<std::uint64_t>(measured.front());

  fit::SweepOptions options;
  options.zr_grid = {1.2, 1.4, 1.6};
  options.p_grid = {0.9};
  options.zc_grid = {1.4};
  options.seed = 23;

  const auto zipf = fit::fit_model(models::ModelKind::kZipf, measured, users, 34, options);
  const auto amo =
      fit::fit_model(models::ModelKind::kZipfAtMostOnce, measured, users, 34, options);
  const auto clustering =
      fit::fit_model(models::ModelKind::kAppClustering, measured, users, 34, options);

  EXPECT_LT(clustering.distance, amo.distance);
  EXPECT_LT(amo.distance, zipf.distance);
}

TEST(Pipeline, RateLimitedChinaCrawlStillCompletes) {
  // The harsh path: china-only gating + tight rate limits + injected
  // failures, all at once. The crawler must converge on Chinese proxies,
  // spread load across them, retry failures, and still fetch everything.
  synth::GeneratorConfig config;
  config.app_scale = 0.002;
  config.download_scale = 2e-6;
  config.seed = 24;
  const auto generated = synth::generate(synth::appchina(), config);

  crawlersim::ServicePolicy policy;
  policy.china_only = true;
  policy.failure_rate = 0.05;
  policy.rate_per_second = 500.0;
  policy.burst = 40.0;
  crawlersim::AppstoreService service(*generated.store, policy);
  service.set_day(65);

  crawlersim::CrawlDatabase database;
  crawlersim::CrawlerConfig crawler_config;
  crawler_config.port = service.port();
  crawler_config.proxy_count = 15;  // 5 per region
  crawler_config.max_attempts = 10;
  crawlersim::Crawler crawler(crawler_config, database);
  const auto stats = crawler.crawl_day(65);

  EXPECT_GT(stats.region_blocked, 0u);
  EXPECT_EQ(database.app_count(), generated.store->apps().size());
}

TEST(Pipeline, CacheStudyModelOrdering) {
  // Fig. 19's qualitative ordering: ZIPF >= ZIPF-at-most-once >>
  // APP-CLUSTERING in LRU hit ratio, across cache sizes.
  const double scale = 0.02;
  const auto zipf = core::cache_study(models::ModelKind::kZipf, scale,
                                      cache::PolicyKind::kLru, 31);
  const auto amo = core::cache_study(models::ModelKind::kZipfAtMostOnce, scale,
                                     cache::PolicyKind::kLru, 31);
  const auto clustering = core::cache_study(models::ModelKind::kAppClustering, scale,
                                            cache::PolicyKind::kLru, 31);
  for (const std::size_t i : {std::size_t{0}, std::size_t{9}, std::size_t{19}}) {
    EXPECT_GT(zipf.points[i].hit_ratio, clustering.points[i].hit_ratio) << "size " << i;
    EXPECT_GT(amo.points[i].hit_ratio, clustering.points[i].hit_ratio) << "size " << i;
  }
}

TEST(Pipeline, TableOneRendersForAllProfiles) {
  synth::GeneratorConfig config;
  config.app_scale = 0.005;
  config.download_scale = 2e-6;
  report::Table table({"store", "apps first/last", "downloads first/last"});
  for (const auto& profile : synth::all_profiles()) {
    const core::EcosystemStudy study(profile, config);
    const auto summary = study.dataset_summary();
    table.row({summary.store,
               util::format("{} / {}", summary.apps_first_day, summary.apps_last_day),
               util::format("{} / {}", summary.downloads_first_day,
                            summary.downloads_last_day)});
  }
  const std::string rendered = table.render();
  EXPECT_NE(rendered.find("Anzhi"), std::string::npos);
  EXPECT_NE(rendered.find("SlideMe"), std::string::npos);
  EXPECT_NE(rendered.find("1Mobile"), std::string::npos);
  EXPECT_NE(rendered.find("AppChina"), std::string::npos);
}

}  // namespace
}  // namespace appstore
