// Unit + integration tests for the networking substrate: HTTP parsing,
// client/server over real loopback sockets, rate limiting, proxy pool.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>

#include "chaos/clock.hpp"
#include "net/http.hpp"
#include "net/proxy.hpp"
#include "net/rate_limiter.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"
#include "obs/registry.hpp"

namespace appstore::net {
namespace {

// ---- HTTP parsing --------------------------------------------------------------

TEST(Http, ParseRequestHead) {
  HttpRequest request;
  ASSERT_TRUE(parse_request_head(
      "GET /api/apps?page=2 HTTP/1.1\r\nHost: x\r\nX-Client-Id: p1\r\n", request));
  EXPECT_EQ(request.method, "GET");
  EXPECT_EQ(request.target, "/api/apps?page=2");
  EXPECT_EQ(request.headers.at("host"), "x");  // case-insensitive lookup
  EXPECT_EQ(request.headers.at("X-CLIENT-ID"), "p1");
}

TEST(Http, ParseRequestRejectsGarbage) {
  HttpRequest request;
  EXPECT_FALSE(parse_request_head("NOT-HTTP\r\n", request));
  EXPECT_FALSE(parse_request_head("GET /x HTTP/2.0junk\r\n", request));
  EXPECT_FALSE(parse_request_head("GET  HTTP/1.1\r\n", request));
  EXPECT_FALSE(parse_request_head("GET nopath HTTP/1.1\r\n", request));
}

TEST(Http, ParseResponseHead) {
  HttpResponse response;
  ASSERT_TRUE(parse_response_head(
      "HTTP/1.1 429 Too Many Requests\r\nContent-Length: 0\r\n", response));
  EXPECT_EQ(response.status, 429);
  EXPECT_EQ(response.reason, "Too Many Requests");
}

TEST(Http, ParseResponseRejectsBadStatus) {
  HttpResponse response;
  EXPECT_FALSE(parse_response_head("HTTP/1.1 9999 X\r\n", response));
  EXPECT_FALSE(parse_response_head("HTTP/1.1 abc X\r\n", response));
}

TEST(Http, SerializeParseRoundTrip) {
  HttpRequest request;
  request.method = "GET";
  request.target = "/api/app/7";
  request.headers["X-Client-Id"] = "proxy-cn-3";
  request.body = "payload";
  const std::string wire = request.serialize();
  EXPECT_NE(wire.find("Content-Length: 7"), std::string::npos);

  HttpRequest parsed;
  const std::size_t head_end = wire.find("\r\n\r\n");
  ASSERT_TRUE(parse_request_head(wire.substr(0, head_end + 2), parsed));
  EXPECT_EQ(parsed.target, "/api/app/7");
}

TEST(Http, QueryParsing) {
  HttpRequest request;
  request.target = "/api/apps?page=3&per_page=100&flag";
  const auto query = request.query();
  EXPECT_EQ(query.at("page"), "3");
  EXPECT_EQ(query.at("per_page"), "100");
  EXPECT_EQ(query.at("flag"), "");
  EXPECT_EQ(request.path(), "/api/apps");
}

TEST(Http, NoQueryString) {
  HttpRequest request;
  request.target = "/api/meta";
  EXPECT_TRUE(request.query().empty());
  EXPECT_EQ(request.path(), "/api/meta");
}

// ---- sockets + server integration -------------------------------------------------

TEST(Server, EchoRoundTrip) {
  HttpServer server(0, [](const HttpRequest& request) {
    return HttpResponse::text(200, "echo:" + request.target);
  });
  HttpClient client("127.0.0.1", server.port());
  const HttpResponse response = client.get("/hello");
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.body, "echo:/hello");
  EXPECT_EQ(server.requests_served(), 1u);
}

TEST(Server, HandlerExceptionBecomes500) {
  HttpServer server(0, [](const HttpRequest&) -> HttpResponse {
    throw std::runtime_error("boom");
  });
  HttpClient client("127.0.0.1", server.port());
  const HttpResponse response = client.get("/x");
  EXPECT_EQ(response.status, 500);
}

TEST(Server, ConcurrentClients) {
  std::atomic<int> handled{0};
  HttpServer server(0, [&](const HttpRequest&) {
    ++handled;
    return HttpResponse::text(200, "ok");
  });
  constexpr int kThreads = 8;
  constexpr int kRequestsPerThread = 20;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      HttpClient client("127.0.0.1", server.port());
      for (int r = 0; r < kRequestsPerThread; ++r) {
        try {
          if (client.get("/x").status != 200) ++failures;
        } catch (...) {
          ++failures;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(handled.load(), kThreads * kRequestsPerThread);
}

TEST(Server, StopIsIdempotent) {
  HttpServer server(0, [](const HttpRequest&) { return HttpResponse::text(200, ""); });
  server.stop();
  server.stop();  // second stop is a no-op
}

TEST(Server, LargeBodyRoundTrip) {
  const std::string large(512 * 1024, 'x');
  HttpServer server(0, [&](const HttpRequest&) { return HttpResponse::text(200, large); });
  HttpClient client("127.0.0.1", server.port());
  const HttpResponse response = client.get("/big");
  EXPECT_EQ(response.body.size(), large.size());
}

TEST(Server, OptionsStructRecordsMetrics) {
  obs::Registry registry;
  ServerOptions options;
  options.metrics = &registry;
  HttpServer server(options, [](const HttpRequest& request) {
    if (request.target == "/fail") return HttpResponse::text(500, "boom");
    return HttpResponse::text(200, "ok");
  });
  HttpClient client("127.0.0.1", server.port());
  EXPECT_EQ(client.get("/a").status, 200);
  EXPECT_EQ(client.get("/b").status, 200);
  EXPECT_EQ(client.get("/fail").status, 500);

  const auto snapshot = registry.snapshot();
  const auto* ok = snapshot.find_counter("http_requests_total", "2xx");
  const auto* err = snapshot.find_counter("http_requests_total", "5xx");
  ASSERT_NE(ok, nullptr);
  ASSERT_NE(err, nullptr);
  EXPECT_EQ(ok->value, 2u);
  EXPECT_EQ(err->value, 1u);
  // The latency histogram is observed after the response write returns to
  // the client (it measures handler + write time), so poll briefly instead
  // of racing the worker thread.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(2);
  std::uint64_t latency_count = 0;
  double latency_p50 = 0.0;
  while (std::chrono::steady_clock::now() < deadline) {
    const auto polled = registry.snapshot();
    const auto* latency = polled.find_histogram("http_request_seconds", "2xx");
    if (latency != nullptr) {
      latency_count = latency->count;
      latency_p50 = latency->p50;
      if (latency_count == 2u) break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(latency_count, 2u);
  EXPECT_GT(latency_p50, 0.0);
}

TEST(Server, ShedsWith503WhenSaturated) {
  obs::Registry registry;
  ServerOptions options;
  options.max_connections = 1;
  options.metrics = &registry;
  HttpServer server(options,
                    [](const HttpRequest&) { return HttpResponse::text(200, "ok"); });
  // A keep-alive client occupies the single connection slot...
  PersistentHttpClient holder("127.0.0.1", server.port());
  EXPECT_EQ(holder.get("/hold").status, 200);
  // ...so the next connection must be shed with an explicit 503, not a
  // silent close.
  HttpClient overflow("127.0.0.1", server.port());
  const HttpResponse response = overflow.get("/x");
  EXPECT_EQ(response.status, 503);
  EXPECT_GE(server.connections_shed(), 1u);
  const auto snapshot = registry.snapshot();  // keep alive: find_counter aims into it
  const auto* shed = snapshot.find_counter("http_shed_total");
  ASSERT_NE(shed, nullptr);
  EXPECT_EQ(shed->value, server.connections_shed());
}

TEST(Sockets, ListenerEphemeralPortAssigned) {
  TcpListener listener(0);
  EXPECT_GT(listener.port(), 0);
}

TEST(Sockets, AcceptTimesOutWithoutClient) {
  TcpListener listener(0);
  const auto stream = listener.accept(std::chrono::milliseconds(30));
  EXPECT_FALSE(stream.has_value());
}

TEST(Sockets, ConnectToClosedPortFails) {
  // Bind and immediately close to find a (very likely) dead port.
  std::uint16_t dead_port = 0;
  {
    TcpListener listener(0);
    dead_port = listener.port();
  }
  EXPECT_THROW((void)TcpStream::connect("127.0.0.1", dead_port), std::system_error);
}


TEST(PersistentClient, ReusesOneConnection) {
  HttpServer server(0, [](const HttpRequest& request) {
    return HttpResponse::text(200, "echo:" + request.target);
  });
  PersistentHttpClient client("127.0.0.1", server.port());
  for (int i = 0; i < 20; ++i) {
    const HttpResponse response = client.get("/r" + std::to_string(i));
    EXPECT_EQ(response.status, 200);
  }
  EXPECT_EQ(client.connections_opened(), 1u);
}

TEST(PersistentClient, ReconnectsAfterServerClose) {
  HttpServer server(0, [](const HttpRequest&) {
    HttpResponse response = HttpResponse::text(200, "ok");
    response.headers["Connection"] = "close";
    return response;
  });
  PersistentHttpClient client("127.0.0.1", server.port());
  // The server closes after each exchange; every request needs a new
  // connection, but all of them succeed.
  EXPECT_EQ(client.get("/a").status, 200);
  EXPECT_EQ(client.get("/b").status, 200);
  EXPECT_EQ(client.get("/c").status, 200);
  EXPECT_EQ(client.connections_opened(), 3u);
}

TEST(PersistentClient, ResetForcesReconnect) {
  HttpServer server(0, [](const HttpRequest&) { return HttpResponse::text(200, "ok"); });
  PersistentHttpClient client("127.0.0.1", server.port());
  EXPECT_EQ(client.get("/one").status, 200);
  client.reset();
  EXPECT_EQ(client.get("/two").status, 200);
  EXPECT_EQ(client.connections_opened(), 2u);
}

TEST(PersistentClient, FailsCleanlyOnDeadServer) {
  std::uint16_t dead_port = 0;
  {
    TcpListener listener(0);
    dead_port = listener.port();
  }
  PersistentHttpClient client("127.0.0.1", dead_port);
  EXPECT_THROW((void)client.get("/x"), std::system_error);
}

// ---- rate limiter -------------------------------------------------------------------

// ---- client options --------------------------------------------------------------------

TEST(ClientOptions, OptionsStructConstruction) {
  HttpServer server(0, [](const HttpRequest& request) {
    return HttpResponse::text(200, "echo:" + request.target);
  });
  ClientOptions options;
  options.timeout = std::chrono::milliseconds(2000);
  HttpClient client("127.0.0.1", server.port(), options);
  EXPECT_EQ(client.get("/a").body, "echo:/a");
  PersistentHttpClient persistent("127.0.0.1", server.port(), options);
  EXPECT_EQ(persistent.get("/b").body, "echo:/b");
}

TEST(ClientOptions, TimeoutOverloadStillCompiles) {
  // The pre-Options back-compat overload: a bare milliseconds timeout.
  HttpServer server(0, [](const HttpRequest&) { return HttpResponse::text(200, "ok"); });
  HttpClient client("127.0.0.1", server.port(), std::chrono::milliseconds(1500));
  EXPECT_EQ(client.get("/x").status, 200);
  PersistentHttpClient persistent("127.0.0.1", server.port(),
                                  std::chrono::milliseconds(1500));
  EXPECT_EQ(persistent.get("/y").status, 200);
}

TEST(RateLimiter, BurstThenBlocked) {
  auto now = std::chrono::steady_clock::now();
  TokenBucketLimiter limiter(1.0, 3.0, [&] { return now; });
  EXPECT_TRUE(limiter.allow("client"));
  EXPECT_TRUE(limiter.allow("client"));
  EXPECT_TRUE(limiter.allow("client"));
  EXPECT_FALSE(limiter.allow("client"));
}

TEST(RateLimiter, RefillsOverTime) {
  auto now = std::chrono::steady_clock::now();
  TokenBucketLimiter limiter(2.0, 2.0, [&] { return now; });
  EXPECT_TRUE(limiter.allow("c"));
  EXPECT_TRUE(limiter.allow("c"));
  EXPECT_FALSE(limiter.allow("c"));
  now += std::chrono::milliseconds(600);  // 1.2 tokens refill
  EXPECT_TRUE(limiter.allow("c"));
  EXPECT_FALSE(limiter.allow("c"));
}

TEST(RateLimiter, KeysAreIndependent) {
  auto now = std::chrono::steady_clock::now();
  TokenBucketLimiter limiter(1.0, 1.0, [&] { return now; });
  EXPECT_TRUE(limiter.allow("a"));
  EXPECT_FALSE(limiter.allow("a"));
  EXPECT_TRUE(limiter.allow("b"));  // fresh bucket
}

TEST(RateLimiter, RefillCapsAtBurst) {
  auto now = std::chrono::steady_clock::now();
  TokenBucketLimiter limiter(100.0, 2.0, [&] { return now; });
  now += std::chrono::hours(1);
  EXPECT_NEAR(limiter.available("c"), 2.0, 1e-9);
}

TEST(RateLimiter, EvictIdleDropsState) {
  auto now = std::chrono::steady_clock::now();
  TokenBucketLimiter limiter(1.0, 1.0, [&] { return now; });
  EXPECT_TRUE(limiter.allow("old"));
  now += std::chrono::seconds(100);
  limiter.evict_idle(std::chrono::seconds(50));
  // After eviction the key starts fresh with a full bucket.
  EXPECT_TRUE(limiter.allow("old"));
}

TEST(RateLimiter, KeyCapEvictsStalestBuckets) {
  auto now = std::chrono::steady_clock::now();
  TokenBucketLimiter limiter(1.0, 1.0, [&] { return now; }, /*max_keys=*/8);
  // Fill the map with keys whose last touch is strictly older than the rest.
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(limiter.allow("key-" + std::to_string(i)));
    now += std::chrono::seconds(1);
  }
  EXPECT_EQ(limiter.tracked_keys(), 8u);
  EXPECT_EQ(limiter.evictions(), 0u);
  // The 9th distinct key triggers the sweep: the cap holds, the stalest
  // bucket(s) are dropped, and the counter records them.
  EXPECT_TRUE(limiter.allow("key-8"));
  EXPECT_LE(limiter.tracked_keys(), 8u);
  EXPECT_GE(limiter.evictions(), 1u);
  // key-0 (stalest, already drained) was evicted, so it returns with a
  // full burst instead of its drained bucket.
  EXPECT_TRUE(limiter.allow("key-0"));
}

TEST(RateLimiter, KeyCapBoundsUnboundedDistinctClients) {
  auto now = std::chrono::steady_clock::now();
  obs::Registry registry;
  TokenBucketLimiter limiter(1.0, 1.0, [&] { return now; }, /*max_keys=*/32);
  limiter.attach_metrics(registry);
  // An adversarial stream of never-repeating client ids (the unbounded-map
  // failure mode): the per-key state must stay capped throughout.
  for (int i = 0; i < 1000; ++i) {
    (void)limiter.allow("adversary-" + std::to_string(i));
    now += std::chrono::milliseconds(1);
  }
  EXPECT_LE(limiter.tracked_keys(), 32u);
  EXPECT_GE(limiter.evictions(), 1000u - 32u);
  const auto snapshot = registry.snapshot();
  const auto* evictions = snapshot.find_counter("rate_limiter_evictions_total");
  ASSERT_NE(evictions, nullptr);
  EXPECT_EQ(evictions->value, limiter.evictions());
}

TEST(RateLimiter, CapEvictionPreservesHotKeys) {
  auto now = std::chrono::steady_clock::now();
  // No refill: a bucket's tokens only ever change by draining — unless it
  // is evicted and recreated at full burst, which is what we detect.
  TokenBucketLimiter limiter(0.0, 2.0, [&] { return now; }, /*max_keys=*/16);
  EXPECT_TRUE(limiter.allow("hot"));
  EXPECT_TRUE(limiter.allow("hot"));
  EXPECT_FALSE(limiter.allow("hot"));  // drained
  // Cold keys churn through the capped map while the hot key stays the
  // most recently touched (even throttled calls refresh its stamp).
  for (int i = 0; i < 200; ++i) {
    now += std::chrono::milliseconds(10);
    (void)limiter.allow("cold-" + std::to_string(i));
    EXPECT_FALSE(limiter.allow("hot")) << "hot bucket was evicted at round " << i;
  }
  EXPECT_GE(limiter.evictions(), 1u);
}

TEST(RateLimiter, EvictIdleCountsIntoEvictions) {
  auto now = std::chrono::steady_clock::now();
  TokenBucketLimiter limiter(1.0, 1.0, [&] { return now; });
  EXPECT_TRUE(limiter.allow("old"));
  EXPECT_TRUE(limiter.allow("older"));
  now += std::chrono::seconds(100);
  limiter.evict_idle(std::chrono::seconds(50));
  EXPECT_EQ(limiter.evictions(), 2u);
  EXPECT_EQ(limiter.tracked_keys(), 0u);
}

TEST(RateLimiter, MetricsCountAllowedAndThrottled) {
  obs::Registry registry;
  auto now = std::chrono::steady_clock::now();
  TokenBucketLimiter limiter(1.0, 2.0, [&] { return now; });
  limiter.attach_metrics(registry);
  EXPECT_TRUE(limiter.allow("c"));
  EXPECT_TRUE(limiter.allow("c"));
  EXPECT_FALSE(limiter.allow("c"));
  EXPECT_EQ(limiter.allowed(), 2u);
  EXPECT_EQ(limiter.throttled(), 1u);
  const auto snapshot = registry.snapshot();
  const auto* allowed = snapshot.find_counter("rate_limiter_allowed_total");
  const auto* throttled = snapshot.find_counter("rate_limiter_throttled_total");
  ASSERT_NE(allowed, nullptr);
  ASSERT_NE(throttled, nullptr);
  EXPECT_EQ(allowed->value, 2u);
  EXPECT_EQ(throttled->value, 1u);
}

// ---- proxy pool ------------------------------------------------------------------------

TEST(ProxyPool, RegionFiltering) {
  ProxyPool pool(6, {Region::kChina, Region::kEurope});
  util::Rng rng(1);
  for (int i = 0; i < 20; ++i) {
    const auto index = pool.pick(rng, Region::kChina);
    ASSERT_TRUE(index.has_value());
    EXPECT_EQ(pool.proxy(*index).region, Region::kChina);
    EXPECT_NE(pool.proxy(*index).id.find("-cn-"), std::string::npos);
  }
}

TEST(ProxyPool, QuarantineAfterConsecutiveFailures) {
  ProxyPool pool(2, {Region::kUsa});
  pool.report_failure(0);
  pool.report_failure(0);
  EXPECT_EQ(pool.healthy_count(), 2u);
  pool.report_failure(0);  // third consecutive -> quarantined
  EXPECT_EQ(pool.healthy_count(), 1u);
  util::Rng rng(2);
  for (int i = 0; i < 10; ++i) {
    const auto index = pool.pick(rng);
    ASSERT_TRUE(index.has_value());
    EXPECT_EQ(*index, 1u);
  }
}

TEST(ProxyPool, SuccessResetsFailureCount) {
  ProxyPool pool(1, {Region::kUsa});
  pool.report_failure(0);
  pool.report_failure(0);
  pool.report_success(0);
  pool.report_failure(0);
  pool.report_failure(0);
  EXPECT_EQ(pool.healthy_count(), 1u);  // never hit 3 consecutive
}

TEST(ProxyPool, ReinstateRestoresService) {
  ProxyPool pool(1, {Region::kChina});
  pool.report_failure(0, 1);
  util::Rng rng(3);
  EXPECT_FALSE(pool.pick(rng).has_value());
  pool.reinstate(0);
  EXPECT_TRUE(pool.pick(rng).has_value());
}

TEST(ProxyPool, EmptyRegionsThrow) {
  EXPECT_THROW(ProxyPool(3, {}), std::invalid_argument);
}

// ---- token-bucket properties (seeded schedules on the chaos VirtualClock) ------

TEST(RateLimiterProperty, NeverExceedsBurstAndHonorsRefillRate) {
  // 1000 seeded random schedules of (advance clock | request) steps. Two
  // invariants must hold for every schedule:
  //   (a) admissions never exceed burst + rate * elapsed (+1 for the token
  //       in flight when the bound is fractional) — the bucket cannot be
  //       overdrawn no matter how requests and refills interleave;
  //   (b) a full idle period of burst/rate always restores a whole burst.
  for (std::uint64_t schedule = 0; schedule < 1000; ++schedule) {
    util::Rng rng = util::rng::derive(0xb0c4e7, schedule);
    const double rate = rng.uniform(0.5, 200.0);
    const double burst = rng.uniform(1.0, 50.0);
    chaos::VirtualClock clock;
    TokenBucketLimiter limiter(rate, burst, clock.time_fn());

    std::uint64_t admitted = 0;
    double elapsed_seconds = 0.0;
    const int steps = 30 + static_cast<int>(rng.below(50));
    for (int step = 0; step < steps; ++step) {
      if (rng.chance(0.4)) {
        const double advance = rng.uniform(0.0, 2.0 * burst / rate);
        clock.advance(std::chrono::nanoseconds(
            static_cast<std::int64_t>(advance * 1e9)));
        elapsed_seconds += advance;
      } else {
        const int requests = 1 + static_cast<int>(rng.below(12));
        for (int r = 0; r < requests; ++r) {
          if (limiter.allow("client")) ++admitted;
        }
      }
      ASSERT_LE(static_cast<double>(admitted), burst + rate * elapsed_seconds + 1.0)
          << "schedule " << schedule << ": overdraw at rate=" << rate
          << " burst=" << burst;
    }

    // (b) after a full refill window the bucket is at capacity again.
    clock.advance(std::chrono::nanoseconds(
        static_cast<std::int64_t>(burst / rate * 1e9) + 1));
    std::uint64_t refilled = 0;
    while (limiter.allow("client")) ++refilled;
    EXPECT_GE(refilled, static_cast<std::uint64_t>(burst))
        << "schedule " << schedule;
    EXPECT_LE(refilled, static_cast<std::uint64_t>(burst) + 1)
        << "schedule " << schedule;
  }
}

TEST(RateLimiterProperty, ConsecutiveAllowsWithoutAdvanceBoundedByBurst) {
  for (std::uint64_t schedule = 0; schedule < 100; ++schedule) {
    util::Rng rng = util::rng::derive(0x5eed5, schedule);
    const double burst = rng.uniform(1.0, 40.0);
    chaos::VirtualClock clock;
    TokenBucketLimiter limiter(10.0, burst, clock.time_fn());
    std::uint64_t admitted = 0;
    while (limiter.allow("k")) ++admitted;
    // With time frozen exactly floor(burst)..burst tokens are spendable.
    EXPECT_GE(admitted, static_cast<std::uint64_t>(burst));
    EXPECT_LE(admitted, static_cast<std::uint64_t>(std::ceil(burst)));
    EXPECT_FALSE(limiter.allow("k"));  // still frozen: stays empty
  }
}

}  // namespace
}  // namespace appstore::net
