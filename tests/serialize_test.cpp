// Tests for AppStore persistence (save/load round trip) and the
// prefetching cache wrapper + power-law MLE added with the §7 extensions.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "cache/prefetch.hpp"
#include "market/serialize.hpp"
#include "stats/mle.hpp"
#include "synth/generator.hpp"
#include "util/rng.hpp"

namespace appstore {
namespace {

// ---- serialize ---------------------------------------------------------------

class SerializeFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    directory_ = std::filesystem::temp_directory_path() / "appstore_serialize_test";
    std::filesystem::remove_all(directory_);
  }
  void TearDown() override { std::filesystem::remove_all(directory_); }

  std::filesystem::path directory_;
};

TEST_F(SerializeFixture, RoundTripPreservesEverything) {
  synth::GeneratorConfig config;
  config.app_scale = 0.01;
  config.download_scale = 1e-5;
  config.comments = true;
  synth::StoreProfile profile = synth::slideme();  // mixed free/paid store
  profile.commenter_fraction = 0.2;
  const auto generated = synth::generate(profile, config);
  const market::AppStore& original = *generated.store;

  market::save_store(original, directory_);
  const auto loaded = market::load_store(directory_);

  EXPECT_EQ(loaded->name(), original.name());
  EXPECT_EQ(loaded->user_count(), original.user_count());
  ASSERT_EQ(loaded->apps().size(), original.apps().size());
  ASSERT_EQ(loaded->categories().size(), original.categories().size());
  ASSERT_EQ(loaded->developers().size(), original.developers().size());
  EXPECT_EQ(loaded->total_downloads(), original.total_downloads());
  EXPECT_EQ(loaded->comment_log().size(), original.comment_log().size());
  EXPECT_EQ(loaded->update_events().size(), original.update_events().size());

  for (std::size_t a = 0; a < original.apps().size(); ++a) {
    const auto id = market::AppId{static_cast<std::uint32_t>(a)};
    const auto& lhs = original.app(id);
    const auto& rhs = loaded->app(id);
    EXPECT_EQ(lhs.name, rhs.name);
    EXPECT_EQ(lhs.pricing, rhs.pricing);
    EXPECT_EQ(lhs.price, rhs.price);
    EXPECT_EQ(lhs.category, rhs.category);
    EXPECT_EQ(lhs.developer, rhs.developer);
    EXPECT_EQ(lhs.released, rhs.released);
    EXPECT_EQ(lhs.has_ads, rhs.has_ads);
    EXPECT_EQ(lhs.update_days, rhs.update_days);
    EXPECT_EQ(original.downloads_of(id), loaded->downloads_of(id));
  }
}

TEST_F(SerializeFixture, LoadedStorePassesInvariants) {
  synth::GeneratorConfig config;
  config.app_scale = 0.005;
  config.download_scale = 5e-6;
  const auto generated = synth::generate(synth::anzhi(), config);
  market::save_store(*generated.store, directory_);
  const auto loaded = market::load_store(directory_);
  loaded->check_invariants();  // throws on violation
}

TEST_F(SerializeFixture, MissingFileThrows) {
  std::filesystem::create_directories(directory_);
  EXPECT_THROW((void)market::load_store(directory_), std::runtime_error);
}

TEST_F(SerializeFixture, QuotedNamesSurvive) {
  market::AppStore store("weird \"store\", inc.");
  const auto category = store.add_category("games, \"best\" ones");
  const auto developer = store.add_developer("dev\nwith newline");
  store.add_users(1);
  (void)store.add_app("app, quoted \"x\"", developer, category, market::Pricing::kFree, 0, 0);
  market::save_store(store, directory_);
  const auto loaded = market::load_store(directory_);
  EXPECT_EQ(loaded->name(), store.name());
  EXPECT_EQ(loaded->categories()[0].name, store.categories()[0].name);
  EXPECT_EQ(loaded->developers()[0].name, store.developers()[0].name);
  EXPECT_EQ(loaded->apps()[0].name, store.apps()[0].name);
}

// ---- prefetch ------------------------------------------------------------------

TEST(Prefetch, AdmitsCategoryHeadOnAccess) {
  // Apps 0..5 in two categories; round-robin assignment 0,1,0,1,...
  std::vector<std::uint32_t> app_category = {0, 1, 0, 1, 0, 1};
  cache::PrefetchingCache cache(std::make_unique<cache::LruCache>(4), app_category, 2);

  (void)cache.access(4);  // category 0; prefetch the top-2 category-0 apps (0, 2)
  EXPECT_TRUE(cache.contains(4));
  EXPECT_TRUE(cache.contains(0));
  EXPECT_TRUE(cache.contains(2));
  EXPECT_FALSE(cache.contains(1));
  EXPECT_EQ(cache.prefetched(), 2u);
}

TEST(Prefetch, ReturnValueOnlyReflectsDemandHit) {
  std::vector<std::uint32_t> app_category = {0, 0, 0};
  cache::PrefetchingCache cache(std::make_unique<cache::LruCache>(3), app_category, 2);
  EXPECT_FALSE(cache.access(2));  // miss; prefetches 0 and 1
  EXPECT_TRUE(cache.access(0));   // hit thanks to prefetch
  EXPECT_TRUE(cache.access(2));
}

TEST(Prefetch, CapacityStillEnforced) {
  std::vector<std::uint32_t> app_category(100, 0);
  cache::PrefetchingCache cache(std::make_unique<cache::LruCache>(5), app_category, 3);
  for (std::uint32_t a = 0; a < 100; ++a) {
    (void)cache.access(a);
    EXPECT_LE(cache.size(), 5u);
  }
}

TEST(Prefetch, NullInnerThrows) {
  const std::vector<std::uint32_t> app_category = {0};
  EXPECT_THROW(cache::PrefetchingCache(nullptr, app_category, 1), std::invalid_argument);
}

// ---- MLE -----------------------------------------------------------------------

TEST(Mle, RecoversExponentFromSyntheticParetoSample) {
  // Inverse-CDF sampling of a continuous Pareto with alpha = 2.5, xmin = 1.
  util::Rng rng(17);
  std::vector<double> sample;
  for (int i = 0; i < 20000; ++i) {
    sample.push_back(std::pow(1.0 - rng.uniform(), -1.0 / 1.5));  // alpha-1 = 1.5
  }
  const auto fit = stats::fit_power_law_mle(sample, 1.0, /*discrete=*/false);
  EXPECT_NEAR(fit.alpha, 2.5, 0.2);
  EXPECT_EQ(fit.tail_samples, sample.size());
  EXPECT_GT(fit.alpha_stderr, 0.0);
  EXPECT_LT(fit.ks, 0.1);
}

TEST(Mle, AutoXminPrefersCleanTail) {
  // Body noise below 10, clean power law above.
  util::Rng rng(19);
  std::vector<double> sample;
  for (int i = 0; i < 3000; ++i) sample.push_back(rng.uniform(1.0, 10.0));  // junk body
  for (int i = 0; i < 3000; ++i) {
    sample.push_back(10.0 * std::pow(1.0 - rng.uniform(), -1.0 / 1.4));
  }
  const auto fit = stats::fit_power_law_mle_auto(sample, 50, /*discrete=*/false);
  EXPECT_GE(fit.xmin, 5.0);  // cutoff pushed past (most of) the junk body
  EXPECT_NEAR(fit.alpha, 2.4, 0.35);
}

TEST(Mle, DegenerateInputs) {
  EXPECT_THROW((void)stats::fit_power_law_mle(std::vector<double>{1, 2}, 0.0),
               std::invalid_argument);
  const auto fit = stats::fit_power_law_mle(std::vector<double>{5.0}, 1.0);
  EXPECT_EQ(fit.tail_samples, 1u);
  EXPECT_DOUBLE_EQ(fit.alpha, 0.0);  // too few samples: no estimate
}

}  // namespace
}  // namespace appstore
