// Unit tests for cache replacement policies and the hit-ratio simulator.
#include <gtest/gtest.h>

#include "cache/policy.hpp"
#include "cache/sim.hpp"
#include "stats/zipf.hpp"
#include "util/rng.hpp"

namespace appstore::cache {
namespace {

// ---- LRU -----------------------------------------------------------------------

TEST(Lru, HitAndMissBasics) {
  LruCache cache(2);
  EXPECT_FALSE(cache.access(1));
  EXPECT_FALSE(cache.access(2));
  EXPECT_TRUE(cache.access(1));
  EXPECT_TRUE(cache.access(2));
  EXPECT_EQ(cache.size(), 2u);
}

TEST(Lru, EvictsLeastRecentlyUsed) {
  LruCache cache(2);
  (void)cache.access(1);
  (void)cache.access(2);
  (void)cache.access(1);  // 1 is now most recent
  (void)cache.access(3);  // evicts 2
  EXPECT_TRUE(cache.contains(1));
  EXPECT_FALSE(cache.contains(2));
  EXPECT_TRUE(cache.contains(3));
}

TEST(Lru, CapacityNeverExceeded) {
  LruCache cache(5);
  for (std::uint32_t a = 0; a < 100; ++a) {
    (void)cache.access(a);
    EXPECT_LE(cache.size(), 5u);
  }
}

TEST(Lru, ZeroCapacityThrows) { EXPECT_THROW(LruCache(0), std::invalid_argument); }

// ---- FIFO ----------------------------------------------------------------------

TEST(Fifo, HitDoesNotRefresh) {
  FifoCache cache(2);
  (void)cache.access(1);
  (void)cache.access(2);
  EXPECT_TRUE(cache.access(1));  // hit, but no recency bump in FIFO
  (void)cache.access(3);         // evicts 1 (oldest admission)
  EXPECT_FALSE(cache.contains(1));
  EXPECT_TRUE(cache.contains(2));
  EXPECT_TRUE(cache.contains(3));
}

// ---- LFU -----------------------------------------------------------------------

TEST(Lfu, EvictsLeastFrequent) {
  LfuCache cache(2);
  (void)cache.access(1);
  (void)cache.access(1);
  (void)cache.access(1);
  (void)cache.access(2);
  (void)cache.access(3);  // evicts 2 (frequency 1 < 3)
  EXPECT_TRUE(cache.contains(1));
  EXPECT_FALSE(cache.contains(2));
  EXPECT_TRUE(cache.contains(3));
}

TEST(Lfu, TieBreaksByRecency) {
  LfuCache cache(2);
  (void)cache.access(1);
  (void)cache.access(2);
  (void)cache.access(3);  // 1 and 2 both freq 1; 1 is older -> evicted
  EXPECT_FALSE(cache.contains(1));
  EXPECT_TRUE(cache.contains(2));
}

// ---- RANDOM --------------------------------------------------------------------

TEST(Random, StaysWithinCapacity) {
  RandomCache cache(3, 42);
  for (std::uint32_t a = 0; a < 50; ++a) {
    (void)cache.access(a);
    EXPECT_LE(cache.size(), 3u);
  }
  EXPECT_EQ(cache.size(), 3u);
}

TEST(Random, HitsOnResidentApp) {
  RandomCache cache(3, 42);
  (void)cache.access(1);
  EXPECT_TRUE(cache.access(1));
}

// ---- CLUSTER-LRU ------------------------------------------------------------------

TEST(ClusterLru, ProtectsActiveCategory) {
  // Apps 0..3 in category 0; apps 4..7 in category 1.
  std::vector<std::uint32_t> app_category = {0, 0, 0, 0, 1, 1, 1, 1};
  ClusterLruCache cache(3, app_category);
  (void)cache.access(4);  // category 1
  (void)cache.access(0);  // category 0
  (void)cache.access(1);  // category 0 (most recent category)
  // Cache full {4,0,1}; inserting another category-0 app must evict from the
  // least-recently-ACTIVE category (1), i.e. app 4, not LRU app 0.
  (void)cache.access(2);
  EXPECT_FALSE(cache.contains(4));
  EXPECT_TRUE(cache.contains(0));
  EXPECT_TRUE(cache.contains(1));
  EXPECT_TRUE(cache.contains(2));
}

TEST(ClusterLru, EvictsWithinOnlyCategory) {
  std::vector<std::uint32_t> app_category = {0, 0, 0};
  ClusterLruCache cache(2, app_category);
  (void)cache.access(0);
  (void)cache.access(1);
  (void)cache.access(2);  // evicts 0 (LRU inside category 0)
  EXPECT_FALSE(cache.contains(0));
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ClusterLru, HitBumpsAppAndCategory) {
  std::vector<std::uint32_t> app_category = {0, 0, 1, 1};
  ClusterLruCache cache(2, app_category);
  (void)cache.access(0);
  (void)cache.access(2);
  EXPECT_TRUE(cache.access(0));  // bump category 0
  (void)cache.access(1);         // should evict from category 1 -> app 2
  EXPECT_FALSE(cache.contains(2));
  EXPECT_TRUE(cache.contains(0));
  EXPECT_TRUE(cache.contains(1));
}

// ---- factory / warm ------------------------------------------------------------------

TEST(Factory, AllKindsConstruct) {
  const std::vector<std::uint32_t> app_category = {0, 1, 0, 1};
  for (const auto kind : {PolicyKind::kLru, PolicyKind::kFifo, PolicyKind::kLfu,
                          PolicyKind::kRandom, PolicyKind::kClusterLru}) {
    const auto policy = make_policy(kind, 2, app_category, 1);
    EXPECT_EQ(policy->capacity(), 2u);
    EXPECT_EQ(policy->name(), to_string(kind));
  }
}

TEST(Warm, FillsToCapacityOnly) {
  LruCache cache(3);
  const std::vector<std::uint32_t> top = {0, 1, 2, 3, 4};
  cache.warm(top);
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_TRUE(cache.contains(0));
  EXPECT_TRUE(cache.contains(2));
  EXPECT_FALSE(cache.contains(3));
}

// ---- simulation -------------------------------------------------------------------------

TEST(Sim, HitRatioComputation) {
  LruCache cache(2);
  const std::vector<models::Request> requests = {{0, 1}, {0, 1}, {0, 2}, {0, 1}, {0, 3}, {0, 1}};
  const SimResult result = simulate(cache, requests);
  EXPECT_EQ(result.requests, 6u);
  // miss(1) hit(1) miss(2) hit(1) miss(3,evict 2) hit(1) -> 3 hits
  EXPECT_EQ(result.hits, 3u);
  EXPECT_NEAR(result.hit_ratio(), 0.5, 1e-12);
}

TEST(Sim, WarmTopNHelpsPopularFirstRequest) {
  LruCache cold(2);
  const std::vector<models::Request> requests = {{0, 0}, {0, 1}};
  const SimResult cold_result = simulate(cold, requests, 0);
  EXPECT_EQ(cold_result.hits, 0u);

  LruCache warm(2);
  const SimResult warm_result = simulate(warm, requests, 2);
  EXPECT_EQ(warm_result.hits, 2u);
}

TEST(Sim, SweepSizesMonotoneForLru) {
  // Cyclic stream over 30 apps: bigger LRU can only do better.
  std::vector<models::Request> requests;
  for (int round = 0; round < 20; ++round) {
    for (std::uint32_t a = 0; a < 30; ++a) requests.push_back({0, a});
  }
  const std::vector<std::size_t> sizes = {5, 10, 20, 30};
  const auto points = sweep_cache_sizes(PolicyKind::kLru, sizes, requests);
  ASSERT_EQ(points.size(), 4u);
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_GE(points[i].hit_ratio, points[i - 1].hit_ratio - 1e-12);
  }
  // Full-size cache over a cyclic stream: everything hits after warm-up
  // (the sweep warms with the top-30 apps, so 100%).
  EXPECT_NEAR(points.back().hit_ratio, 1.0, 1e-12);
}

TEST(Sim, EmptyStream) {
  LruCache cache(2);
  const SimResult result = simulate(cache, {});
  EXPECT_EQ(result.requests, 0u);
  EXPECT_DOUBLE_EQ(result.hit_ratio(), 0.0);
}


// ---- parameterized policy properties ------------------------------------------

class PolicyProperty : public ::testing::TestWithParam<PolicyKind> {
 protected:
  [[nodiscard]] std::unique_ptr<CachePolicy> make(std::size_t capacity) const {
    std::vector<std::uint32_t> app_category(1000);
    for (std::uint32_t a = 0; a < app_category.size(); ++a) app_category[a] = a % 10;
    return make_policy(GetParam(), capacity, app_category, 99);
  }
};

TEST_P(PolicyProperty, CapacityNeverExceeded) {
  const auto policy = make(7);
  util::Rng rng(31);
  for (int i = 0; i < 2000; ++i) {
    (void)policy->access(static_cast<std::uint32_t>(rng.below(1000)));
    ASSERT_LE(policy->size(), 7u);
  }
}

TEST_P(PolicyProperty, ImmediateReaccessAlwaysHits) {
  const auto policy = make(7);
  util::Rng rng(37);
  for (int i = 0; i < 500; ++i) {
    const auto app = static_cast<std::uint32_t>(rng.below(1000));
    (void)policy->access(app);
    EXPECT_TRUE(policy->access(app)) << "app " << app;
  }
}

TEST_P(PolicyProperty, ContainsConsistentWithAccess) {
  const auto policy = make(5);
  util::Rng rng(41);
  for (int i = 0; i < 500; ++i) {
    const auto app = static_cast<std::uint32_t>(rng.below(50));
    const bool resident_before = policy->contains(app);
    const bool hit = policy->access(app);
    EXPECT_EQ(hit, resident_before);
    EXPECT_TRUE(policy->contains(app));
  }
}

TEST_P(PolicyProperty, WarmPopulatesTopApps) {
  const auto policy = make(10);
  std::vector<std::uint32_t> top(20);
  for (std::uint32_t a = 0; a < 20; ++a) top[a] = a;
  policy->warm(top);
  EXPECT_EQ(policy->size(), 10u);
  for (std::uint32_t a = 0; a < 10; ++a) EXPECT_TRUE(policy->contains(a));
}

TEST_P(PolicyProperty, SkewedStreamBeatsUniformStream) {
  // Every policy exploits skew: hit ratio on a Zipf(1.5) stream must beat a
  // uniform stream over the same universe with the same cache size.
  const std::size_t capacity = 50;
  const std::uint32_t universe = 1000;
  const stats::ZipfSampler zipf(universe, 1.5);
  util::Rng rng(43);

  const auto run = [&](auto&& draw) {
    const auto policy = make(capacity);
    std::uint64_t hits = 0;
    constexpr int kRequests = 20000;
    for (int i = 0; i < kRequests; ++i) {
      if (policy->access(draw())) ++hits;
    }
    return static_cast<double>(hits) / kRequests;
  };
  const double skewed = run([&] { return static_cast<std::uint32_t>(zipf.sample_index(rng)); });
  const double uniform = run([&] { return static_cast<std::uint32_t>(rng.below(universe)); });
  EXPECT_GT(skewed, uniform + 0.2);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyProperty,
                         ::testing::Values(PolicyKind::kLru, PolicyKind::kFifo,
                                           PolicyKind::kLfu, PolicyKind::kRandom,
                                           PolicyKind::kClusterLru),
                         [](const auto& info) {
                           std::string name(to_string(info.param));
                           for (auto& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace appstore::cache
