// Tests for the report helpers (tables + series CSV export).
#include <gtest/gtest.h>

#include <filesystem>

#include "report/series.hpp"
#include "report/table.hpp"
#include "util/csv.hpp"

namespace appstore::report {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table table({"store", "apps"});
  table.row({"Anzhi", "60196"});
  table.row({"SlideMe", "22184"});
  const std::string text = table.render();
  // Header present, underline present, rows present.
  EXPECT_NE(text.find("store"), std::string::npos);
  EXPECT_NE(text.find("-----"), std::string::npos);
  EXPECT_NE(text.find("Anzhi"), std::string::npos);
  // Numeric cells right-align: "60196" should be preceded by at least one space.
  EXPECT_NE(text.find(" 60196"), std::string::npos);
}

TEST(Table, ShortRowsArePadded) {
  Table table({"a", "b", "c"});
  table.row({"only"});
  EXPECT_EQ(table.rows(), 1u);
  EXPECT_NO_THROW((void)table.render());
}

TEST(Table, FixedAndPercentHelpers) {
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fixed(2.0, 0), "2");
  EXPECT_EQ(percent(0.905), "90.5%");
  EXPECT_EQ(percent(1.0, 0), "100%");
}

TEST(Series, WriteCsvRoundTrip) {
  Series series;
  series.name = "fig2/pareto anzhi";
  series.columns = {"rank_percent", "download_percent"};
  series.add({1.0, 70.5});
  series.add({10.0, 90.25});

  const auto directory = std::filesystem::temp_directory_path() / "appstore_report_test";
  const auto path = write_csv(series, directory);
  EXPECT_EQ(path.filename().string(), "fig2-pareto_anzhi.csv");

  const auto table = util::read_csv(path);
  ASSERT_EQ(table.header.size(), 2u);
  EXPECT_EQ(table.header[0], "rank_percent");
  ASSERT_EQ(table.rows.size(), 2u);
  EXPECT_EQ(table.rows[1][1], "90.25");
  std::filesystem::remove_all(directory);
}

TEST(Series, ExportAllWritesUnderExperiment) {
  Series a;
  a.name = "one";
  a.columns = {"x"};
  a.add({1.0});
  Series b;
  b.name = "two";
  b.columns = {"y"};
  b.add({2.0});

  const auto root = std::filesystem::temp_directory_path() / "appstore_export_test";
  export_all({a, b}, "fig9", root);
  EXPECT_TRUE(std::filesystem::exists(root / "fig9" / "one.csv"));
  EXPECT_TRUE(std::filesystem::exists(root / "fig9" / "two.csv"));
  std::filesystem::remove_all(root);
}

}  // namespace
}  // namespace appstore::report
