// Tests for the EcosystemStudy facade.
#include <gtest/gtest.h>

#include "core/study.hpp"

namespace appstore::core {
namespace {

class StudyFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    synth::GeneratorConfig config;
    config.app_scale = 0.03;
    config.download_scale = 2e-5;
    config.comments = true;
    synth::StoreProfile profile = synth::anzhi();
    profile.commenter_fraction = 0.15;  // enough commenting users at test scale
    study_ = new EcosystemStudy(profile, config);
  }
  static void TearDownTestSuite() {
    delete study_;
    study_ = nullptr;
  }
  static EcosystemStudy* study_;
};

EcosystemStudy* StudyFixture::study_ = nullptr;

TEST_F(StudyFixture, ParetoShareAndCurve) {
  const double top10 = study_->pareto_share(0.10);
  EXPECT_GT(top10, 0.4);
  EXPECT_LE(top10, 1.0);
  const auto curve = study_->pareto_curve();
  ASSERT_EQ(curve.size(), 100u);
  EXPECT_NEAR(curve.back().download_percent, 100.0, 1e-9);
  EXPECT_NEAR(curve[9].download_percent, top10 * 100.0, 0.5);
}

TEST_F(StudyFixture, PopularityFitHasTrunk) {
  const auto report = study_->popularity_fit();
  EXPECT_GT(report.trunk.exponent, 0.8);
  EXPECT_LT(report.trunk.exponent, 2.0);
  EXPECT_GT(report.trunk.r_squared, 0.85);
}

TEST_F(StudyFixture, UpdatesPerAppTopDecileUpdatesMore) {
  const auto all = study_->updates_per_app(false);
  const auto top = study_->updates_per_app(true);
  ASSERT_FALSE(all.empty());
  ASSERT_FALSE(top.empty());
  const auto zero_fraction = [](const std::vector<double>& values) {
    std::size_t zeros = 0;
    for (const double v : values) {
      if (v == 0.0) ++zeros;
    }
    return static_cast<double>(zeros) / static_cast<double>(values.size());
  };
  EXPECT_GT(zero_fraction(all), zero_fraction(top));
}

TEST_F(StudyFixture, CategoryStringsNonEmpty) {
  const auto strings = study_->category_strings();
  EXPECT_GT(strings.size(), 10u);
}

TEST_F(StudyFixture, RandomWalkAffinityIncreasesWithDepth) {
  const double d1 = study_->random_walk_affinity(1);
  const double d2 = study_->random_walk_affinity(2);
  EXPECT_GT(d1, 0.0);
  EXPECT_LT(d1, d2);
}

TEST_F(StudyFixture, DatasetSummaryPlausible) {
  const auto summary = study_->dataset_summary();
  EXPECT_EQ(summary.store, "Anzhi");
  EXPECT_GT(summary.apps_last_day, summary.apps_first_day);
  EXPECT_GT(summary.daily_downloads, 0.0);
}

TEST_F(StudyFixture, FitPrefersClusteringOnOwnData) {
  // Monte Carlo evaluation: the Eq.-5 analytic form idealizes cluster visits
  // and is unusable for ranking APP-CLUSTERING candidates (it over-predicts
  // head mass by design), so the fit runs simulations as in the paper.
  fit::SweepOptions options;
  options.zr_grid = {1.2, 1.4, 1.6};
  options.p_grid = {0.9};
  options.zc_grid = {1.4};
  options.analytic = false;
  const auto zipf = study_->fit(models::ModelKind::kZipf, 60, options);
  const auto clustering = study_->fit(models::ModelKind::kAppClustering, 60, options);
  EXPECT_LT(clustering.distance, zipf.distance);
}

TEST(CacheStudy, ClusteringHurtsLru) {
  const double scale = 0.02;  // 1200 apps, 12k users, 40k downloads
  const auto zipf = cache_study(models::ModelKind::kZipf, scale, cache::PolicyKind::kLru, 7);
  const auto clustering =
      cache_study(models::ModelKind::kAppClustering, scale, cache::PolicyKind::kLru, 7);
  ASSERT_EQ(zipf.points.size(), 20u);
  ASSERT_EQ(clustering.points.size(), 20u);
  // Fig. 19: clustering workloads produce a markedly lower LRU hit ratio.
  EXPECT_LT(clustering.points.front().hit_ratio, zipf.points.front().hit_ratio);
  // Hit ratio grows with cache size for the clustering workload.
  EXPECT_GT(clustering.points.back().hit_ratio, clustering.points.front().hit_ratio);
}

}  // namespace
}  // namespace appstore::core
