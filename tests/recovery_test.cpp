// Crash-recovery suite for the durability spine (docs/durability.md):
// events::Wal framing/replay, DurableStore checkpoint + recovery, and the
// kill-at-any-WAL-offset fuzz proving recovery is bit-identical to the run
// that never crashed.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "chaos/fault.hpp"
#include "chaos/file_faults.hpp"
#include "crawler/database.hpp"
#include "crawler/db_io.hpp"
#include "events/binary.hpp"
#include "events/event_log.hpp"
#include "events/wal.hpp"
#include "market/durable.hpp"
#include "market/store.hpp"
#include "util/rng.hpp"

namespace appstore {
namespace {

namespace fs = std::filesystem;
using events::binary::LoadError;
using events::binary::LoadErrorKind;

class RecoveryFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    directory_ = fs::temp_directory_path() / "appstore_recovery_test" / info->name();
    fs::remove_all(directory_);
    fs::create_directories(directory_);
  }
  void TearDown() override {
    fs::remove_all(fs::temp_directory_path() / "appstore_recovery_test");
  }

  fs::path directory_;
};

// ---- WAL framing and replay --------------------------------------------------

TEST_F(RecoveryFixture, WalGroupCommitRoundTrips) {
  const auto path = directory_ / "wal.awal";
  {
    auto wal = events::WalWriter::create(path, 10);
    EXPECT_EQ(wal.base_sequence(), 10u);
    EXPECT_EQ(wal.append(1, "alpha"), 11u);
    EXPECT_EQ(wal.append(2, "beta"), 12u);
    EXPECT_EQ(wal.pending_records(), 2u);
    EXPECT_EQ(wal.committed_sequence(), 10u);
    wal.commit();
    EXPECT_EQ(wal.committed_sequence(), 12u);
    EXPECT_EQ(wal.append(3, std::string(1000, 'x')), 13u);
    wal.commit();
    wal.close();
  }
  const events::WalReplay replay = events::replay_wal(path);
  EXPECT_EQ(replay.base_sequence, 10u);
  EXPECT_FALSE(replay.torn_tail);
  ASSERT_EQ(replay.records.size(), 3u);
  EXPECT_EQ(replay.records[0].kind, 1u);
  EXPECT_EQ(replay.records[0].sequence, 11u);
  EXPECT_EQ(replay.records[0].payload, "alpha");
  EXPECT_EQ(replay.records[2].payload, std::string(1000, 'x'));
  EXPECT_EQ(replay.last_sequence(), 13u);
  EXPECT_EQ(replay.valid_bytes, fs::file_size(path));
}

TEST_F(RecoveryFixture, WalUncommittedAppendsAreDiscardedOnClose) {
  const auto path = directory_ / "wal.awal";
  {
    auto wal = events::WalWriter::create(path, 0);
    (void)wal.append(1, "durable");
    wal.commit();
    (void)wal.append(2, "never committed");
    wal.close();  // discards the buffered group, mirroring a crash
  }
  const events::WalReplay replay = events::replay_wal(path);
  ASSERT_EQ(replay.records.size(), 1u);
  EXPECT_EQ(replay.records[0].payload, "durable");
  EXPECT_FALSE(replay.torn_tail);
}

TEST_F(RecoveryFixture, WalTruncatedAtEveryOffsetReplaysACommittedPrefix) {
  // The exhaustive torn-tail sweep: whatever byte the crash cut the file
  // at, replay returns a prefix of the committed records and never throws.
  const auto path = directory_ / "wal.awal";
  std::vector<std::string> payloads = {"one", "twotwo", "three-three"};
  {
    auto wal = events::WalWriter::create(path, 0);
    for (const auto& payload : payloads) {
      (void)wal.append(7, payload);
      wal.commit();  // one commit per record: every record boundary is durable
    }
    wal.close();
  }
  const auto full_size = static_cast<std::uint64_t>(fs::file_size(path));
  const auto torn_path = directory_ / "torn.awal";
  for (std::uint64_t cut = 0; cut <= full_size; ++cut) {
    fs::copy_file(path, torn_path, fs::copy_options::overwrite_existing);
    chaos::truncate_file(torn_path, cut);
    constexpr std::uint64_t kHeaderBytes = 24;
    const events::WalReplay replay = events::replay_wal(torn_path);
    EXPECT_LE(replay.valid_bytes, cut) << "cut " << cut;
    if (cut < kHeaderBytes) {
      // The header itself was torn: no records, flagged as a tear even at
      // a 0-byte file (the header write never completed).
      EXPECT_TRUE(replay.torn_tail) << "cut " << cut;
      EXPECT_EQ(replay.valid_bytes, 0u) << "cut " << cut;
    } else {
      EXPECT_EQ(replay.torn_tail, replay.valid_bytes != cut) << "cut " << cut;
    }
    ASSERT_LE(replay.records.size(), payloads.size()) << "cut " << cut;
    for (std::size_t i = 0; i < replay.records.size(); ++i) {
      EXPECT_EQ(replay.records[i].payload, payloads[i]) << "cut " << cut;
      EXPECT_EQ(replay.records[i].sequence, i + 1) << "cut " << cut;
    }
    // Replay + resume must accept the torn file and continue the sequence.
    // A fully-torn header carries no trustworthy base, so the recovery
    // protocol recreates the log there instead (resume refuses).
    auto wal = replay.valid_bytes < kHeaderBytes
                   ? events::WalWriter::create(torn_path, 0)
                   : events::WalWriter::resume(torn_path, replay);
    (void)wal.append(9, "appended-after-tear");
    wal.commit();
    wal.close();
    const events::WalReplay reread = events::replay_wal(torn_path);
    ASSERT_EQ(reread.records.size(), replay.records.size() + 1) << "cut " << cut;
    EXPECT_EQ(reread.records.back().payload, "appended-after-tear");
    EXPECT_FALSE(reread.torn_tail);
  }
}

TEST_F(RecoveryFixture, WalChecksumFailureStopsReplayAtTheBadRecord) {
  const auto path = directory_ / "wal.awal";
  {
    auto wal = events::WalWriter::create(path, 0);
    (void)wal.append(1, "first");
    (void)wal.append(1, "second");
    (void)wal.append(1, "third");
    wal.commit();
    wal.close();
  }
  // Flip one payload byte of the *second* record: replay keeps the first,
  // reports the rest as unusable tail (a checksum failure is where the
  // crash hit, by the classic WAL rule).
  constexpr std::uint64_t kHeader = 24, kRecordHeader = 24;
  const std::uint64_t second_payload = kHeader + kRecordHeader + 5 + kRecordHeader;
  chaos::flip_byte(path, second_payload + 2, 0x40);
  const events::WalReplay replay = events::replay_wal(path);
  ASSERT_EQ(replay.records.size(), 1u);
  EXPECT_EQ(replay.records[0].payload, "first");
  EXPECT_TRUE(replay.torn_tail);
  EXPECT_EQ(replay.valid_bytes, kHeader + kRecordHeader + 5);
}

TEST_F(RecoveryFixture, WalOutOfSequenceRecordIsTypedCorruptionNotATear) {
  // Splice a checksum-valid record from another WAL (different base) onto
  // this one: replay must refuse with kBadSequence instead of silently
  // treating real corruption as a crash tail.
  const auto path_a = directory_ / "a.awal";
  const auto path_b = directory_ / "b.awal";
  {
    auto wal = events::WalWriter::create(path_a, 0);
    (void)wal.append(1, "legit");
    wal.commit();
    wal.close();
  }
  {
    auto wal = events::WalWriter::create(path_b, 50);
    (void)wal.append(1, "foreign");
    wal.commit();
    wal.close();
  }
  std::string foreign;
  {
    std::ifstream in(path_b, std::ios::binary);
    in.seekg(24);
    foreign.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  }
  {
    std::ofstream out(path_a, std::ios::binary | std::ios::app);
    out.write(foreign.data(), static_cast<std::streamsize>(foreign.size()));
  }
  try {
    (void)events::replay_wal(path_a);
    FAIL() << "expected kBadSequence";
  } catch (const LoadError& error) {
    EXPECT_EQ(error.kind(), LoadErrorKind::kBadSequence);
  }
}

TEST_F(RecoveryFixture, EventBatchCodecRoundTripsEveryColumnMask) {
  const events::Columns masks[] = {
      events::Columns::kNone,
      events::Columns::kDay,
      events::Columns::kDay | events::Columns::kOrdinal,
      events::Columns::kDay | events::Columns::kOrdinal | events::Columns::kRating,
  };
  util::Rng rng(99);
  for (const events::Columns mask : masks) {
    events::EventLog batch(mask);
    for (int i = 0; i < 200; ++i) {
      batch.append(static_cast<std::uint32_t>(rng.below(50)),
                   static_cast<std::uint32_t>(rng.below(20)),
                   has_column(mask, events::Columns::kDay)
                       ? static_cast<std::int32_t>(rng.below(30))
                       : 0,
                   has_column(mask, events::Columns::kOrdinal)
                       ? static_cast<std::uint32_t>(i)
                       : 0,
                   has_column(mask, events::Columns::kRating)
                       ? static_cast<std::uint8_t>(1 + rng.below(5))
                       : 0);
    }
    const std::string payload = events::encode_event_batch(batch);
    const events::EventLog decoded = events::decode_event_batch(payload);
    ASSERT_EQ(decoded.columns(), batch.columns());
    ASSERT_EQ(decoded.size(), batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const events::Event lhs = batch.row(i);
      const events::Event rhs = decoded.row(i);
      ASSERT_EQ(lhs.user, rhs.user);
      ASSERT_EQ(lhs.app, rhs.app);
      ASSERT_EQ(lhs.day, rhs.day);
      ASSERT_EQ(lhs.ordinal, rhs.ordinal);
      ASSERT_EQ(lhs.rating, rhs.rating);
    }
    EXPECT_THROW((void)events::decode_event_batch(payload.substr(0, payload.size() / 2)),
                 LoadError);
  }
}

// ---- the canonical workload --------------------------------------------------

constexpr std::uint32_t kUsers = 48;
constexpr std::uint32_t kApps = 6;
constexpr int kBatches = 3;

events::LiveOptions small_live() {
  events::LiveOptions live;
  live.max_rows = 1u << 12;
  live.segment_rows = 1u << 8;
  live.max_users = kUsers;
  return live;
}

events::EventLog make_download_batch(std::uint64_t index) {
  util::Rng rng(0x9e3779b9u + index);
  events::EventLog batch(events::Columns::kDay);
  for (int i = 0; i < 40; ++i) {
    batch.append(static_cast<std::uint32_t>(rng.below(kUsers)),
                 static_cast<std::uint32_t>(rng.below(kApps)),
                 static_cast<std::int32_t>(rng.below(30)));
  }
  return batch;
}

events::EventLog make_comment_batch(std::uint64_t index) {
  util::Rng rng(0x85ebca6bu + index);
  events::EventLog batch(events::Columns::kDay | events::Columns::kRating);
  for (int i = 0; i < 24; ++i) {
    batch.append(static_cast<std::uint32_t>(rng.below(kUsers)),
                 static_cast<std::uint32_t>(rng.below(kApps)),
                 static_cast<std::int32_t>(rng.below(30)), 0,
                 static_cast<std::uint8_t>(1 + rng.below(5)));
  }
  return batch;
}

/// Applies the canonical workload through the WAL-ahead mutators, skipping
/// every operation whose WAL sequence is <= `from` (those are already in
/// the recovered store). Checkpoints consume no sequence — they fire only
/// when `checkpoints` is set, so a post-recovery re-application can replay
/// just the lost suffix.
void apply_workload(market::DurableStore& durable, std::uint64_t from, bool checkpoints) {
  std::uint64_t sequence = 0;
  const auto due = [&] { return ++sequence > from; };
  if (due()) (void)durable.add_category("games");
  if (due()) (void)durable.add_category("tools");
  if (due()) (void)durable.add_developer("dev-a");
  if (due()) (void)durable.add_developer("dev-b");
  if (due()) (void)durable.add_users(kUsers);
  for (std::uint32_t i = 0; i < kApps; ++i) {
    const bool paid = i % 3 == 0;
    if (due()) {
      (void)durable.add_app("app-" + std::to_string(i), market::DeveloperId{i % 2},
                            market::CategoryId{i % 2},
                            paid ? market::Pricing::kPaid : market::Pricing::kFree,
                            paid ? 199 + 100 * static_cast<market::Cents>(i) : 0,
                            static_cast<market::Day>(i % 5));
    }
  }
  if (due()) durable.record_update(market::AppId{0}, 3);
  if (due()) durable.set_price(market::AppId{0}, 449, 4);
  if (due()) durable.set_has_ads(market::AppId{1}, true);
  for (int b = 0; b < kBatches; ++b) {
    const events::EventLog downloads = make_download_batch(static_cast<std::uint64_t>(b));
    if (due()) durable.ingest_downloads(downloads);
    const events::EventLog comments = make_comment_batch(static_cast<std::uint64_t>(b));
    if (due()) durable.ingest_comments(comments);
    if (checkpoints && b < 2) (void)durable.checkpoint();
  }
}

template <typename T>
void put(std::string& blob, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  blob.append(reinterpret_cast<const char*>(&value), sizeof value);
}

template <typename T>
void put_span(std::string& blob, std::span<const T> values) {
  put(blob, static_cast<std::uint64_t>(values.size()));
  blob.append(reinterpret_cast<const char*>(values.data()), values.size_bytes());
}

/// Exhaustive state fingerprint: entities, derived counters, raw price
/// accumulators (IEEE-754 bits), update events, and every column of both
/// event logs. Two stores with equal digests are byte-identical for every
/// read path the repo has.
std::uint64_t digest_store(const market::AppStore& store) {
  std::string blob;
  blob += store.name();
  put(blob, static_cast<std::uint64_t>(store.categories().size()));
  for (const auto& category : store.categories()) blob += category.name + '\0';
  put(blob, static_cast<std::uint64_t>(store.developers().size()));
  for (const auto& developer : store.developers()) blob += developer.name + '\0';
  put(blob, store.user_count());
  put(blob, static_cast<std::uint64_t>(store.apps().size()));
  for (const auto& app : store.apps()) {
    blob += app.name + '\0';
    put(blob, app.developer.value);
    put(blob, app.category.value);
    put(blob, static_cast<std::uint8_t>(app.pricing));
    put(blob, app.price);
    put(blob, app.released);
    put(blob, static_cast<std::uint8_t>(app.has_ads ? 1 : 0));
    put_span<market::Day>(blob, app.update_days);
    put(blob, store.downloads_of(app.id));
    const auto [price_sum, price_samples] = store.price_stats(app.id);
    put(blob, price_sum);  // raw double bits: exact, not rendered
    put(blob, price_samples);
  }
  put(blob, static_cast<std::uint64_t>(store.update_events().size()));
  for (const auto& update : store.update_events()) {
    put(blob, update.app.value);
    put(blob, update.day);
    put(blob, update.version);
  }
  const events::FrontierSnapshot downloads = store.download_log();
  put_span(blob, downloads.user());
  put_span(blob, downloads.app());
  put_span(blob, downloads.day());
  put_span(blob, downloads.ordinal());
  const events::FrontierSnapshot comments = store.comment_log();
  put_span(blob, comments.user());
  put_span(blob, comments.app());
  put_span(blob, comments.day());
  put_span(blob, comments.ordinal());
  put_span(blob, comments.rating());
  put(blob, store.total_downloads());
  return events::binary::fnv1a64(blob.data(), blob.size());
}

market::DurableOptions durable_options(chaos::KillAtOffset* kill = nullptr) {
  market::DurableOptions options;
  options.live = small_live();
  options.kill = kill;
  // The kill seam models the crash at the byte level (the file holds
  // exactly the admitted prefix), so the fuzz doesn't pay 20k real fsyncs.
  options.fsync = false;
  return options;
}

std::uint64_t reference_digest(const fs::path& directory) {
  market::DurableStore durable(directory, "fuzz", durable_options());
  (void)durable.open();
  apply_workload(durable, 0, true);
  const std::uint64_t digest = digest_store(durable.store());
  durable.store().check_invariants();
  durable.close();
  return digest;
}

// ---- DurableStore lifecycle --------------------------------------------------

TEST_F(RecoveryFixture, ReopenWithoutCheckpointReplaysTheWholeWal) {
  const std::uint64_t expected = reference_digest(directory_ / "ref");
  const auto dir = directory_ / "store";
  std::uint64_t ops = 0;
  {
    market::DurableStore durable(dir, "fuzz", durable_options());
    const market::RecoveryReport report = durable.open();
    EXPECT_FALSE(report.manifest_found);
    apply_workload(durable, 0, false);  // no checkpoint: everything lives in the WAL
    ops = durable.durable_sequence();
    durable.close();
  }
  market::DurableStore durable(dir, "fuzz", durable_options());
  const market::RecoveryReport report = durable.open();
  EXPECT_FALSE(report.manifest_found);
  EXPECT_EQ(report.replayed_records, ops);
  EXPECT_EQ(report.skipped_records, 0u);
  EXPECT_FALSE(report.wal_torn_tail);
  EXPECT_EQ(digest_store(durable.store()), expected);
  durable.store().check_invariants();
}

TEST_F(RecoveryFixture, CheckpointThenReopenLoadsManifestWithoutReplay) {
  const std::uint64_t expected = reference_digest(directory_ / "ref");
  const auto dir = directory_ / "store";
  {
    market::DurableStore durable(dir, "fuzz", durable_options());
    (void)durable.open();
    apply_workload(durable, 0, true);
    const market::CheckpointStats stats = durable.checkpoint();  // cover the tail too
    EXPECT_EQ(stats.sequence, durable.durable_sequence());
    EXPECT_GT(stats.event_rows, 0u);
    durable.close();
  }
  market::DurableStore durable(dir, "fuzz", durable_options());
  const market::RecoveryReport report = durable.open();
  EXPECT_TRUE(report.manifest_found);
  EXPECT_EQ(report.replayed_records, 0u);  // the WAL was retired at the checkpoint
  EXPECT_EQ(digest_store(durable.store()), expected);
  durable.store().check_invariants();
}

TEST_F(RecoveryFixture, CheckpointRetiresOlderArtifactsAndTheWal) {
  const auto dir = directory_ / "store";
  market::DurableStore durable(dir, "fuzz", durable_options());
  (void)durable.open();
  apply_workload(durable, 0, false);
  const market::CheckpointStats first = durable.checkpoint();
  durable.set_has_ads(market::AppId{2}, true);
  const market::CheckpointStats second = durable.checkpoint();
  EXPECT_GT(second.sequence, first.sequence);
  EXPECT_EQ(second.wal_records, 1u);
  const std::string old_tag = std::to_string(first.sequence);
  const std::string new_tag = std::to_string(second.sequence);
  EXPECT_FALSE(fs::exists(dir / ("entities-" + old_tag)));
  EXPECT_FALSE(fs::exists(dir / ("downloads-" + old_tag + ".alsg")));
  EXPECT_TRUE(fs::exists(dir / ("entities-" + new_tag)));
  EXPECT_TRUE(fs::exists(dir / ("downloads-" + new_tag + ".alsg")));
  EXPECT_TRUE(fs::exists(dir / ("comments-" + new_tag + ".alsg")));
  durable.close();
}

TEST_F(RecoveryFixture, RecoveryIgnoresAndRemovesInterruptedCheckpointDebris) {
  const std::uint64_t expected = reference_digest(directory_ / "ref");
  const auto dir = directory_ / "store";
  {
    market::DurableStore durable(dir, "fuzz", durable_options());
    (void)durable.open();
    apply_workload(durable, 0, true);
    durable.close();
  }
  // Fabricate what a crash mid-checkpoint leaves: artifacts tagged with a
  // sequence no manifest ever published, plus AtomicFile staging debris.
  fs::create_directories(dir / "entities-999");
  std::ofstream(dir / "downloads-999.alsg") << "half-written";
  std::ofstream(dir / "MANIFEST.tmp") << "AMAN 1\n";
  market::DurableStore durable(dir, "fuzz", durable_options());
  const market::RecoveryReport report = durable.open();
  EXPECT_TRUE(report.manifest_found);
  EXPECT_EQ(digest_store(durable.store()), expected);
  EXPECT_FALSE(fs::exists(dir / "entities-999"));
  EXPECT_FALSE(fs::exists(dir / "downloads-999.alsg"));
  EXPECT_FALSE(fs::exists(dir / "MANIFEST.tmp"));
  durable.close();
}

TEST_F(RecoveryFixture, InvalidArgumentsNeverReachTheWal) {
  const auto dir = directory_ / "store";
  market::DurableStore durable(dir, "fuzz", durable_options());
  (void)durable.open();
  (void)durable.add_category("games");
  const std::uint64_t before = durable.durable_sequence();
  EXPECT_THROW((void)durable.add_app("ghost", market::DeveloperId{7}, market::CategoryId{0},
                                     market::Pricing::kFree, 0, 0),
               std::invalid_argument);
  EXPECT_THROW(durable.set_price(market::AppId{0}, 100, 0), std::invalid_argument);
  EXPECT_EQ(durable.durable_sequence(), before);
  durable.close();
  // The WAL holds only the valid record; recovery replays it cleanly.
  market::DurableStore reopened(dir, "fuzz", durable_options());
  const market::RecoveryReport report = reopened.open();
  EXPECT_EQ(report.replayed_records, before);
}

TEST_F(RecoveryFixture, CrawlerDatabaseComponentRidesTheManifestBarrier) {
  const auto dir = directory_ / "store";
  crawlersim::CrawlDatabase database;
  {
    crawlersim::AppRecord record;
    record.id = 4;
    record.name = "app-4";
    record.category = "games";
    record.developer = "dev-a";
    record.first_seen = 2;
    crawlersim::AppObservation observation;
    observation.downloads = 17;
    observation.version = 1;
    observation.price_dollars = 0.99;
    database.record(record, 2, observation);
    observation.downloads = 23;
    database.record(record, 3, observation);
  }
  {
    market::DurableStore durable(dir, "fuzz", durable_options());
    durable.attach_component(crawlersim::database_component(database));
    (void)durable.open();
    apply_workload(durable, 0, false);
    (void)durable.checkpoint();
    durable.close();
  }
  crawlersim::CrawlDatabase recovered;
  market::DurableStore durable(dir, "fuzz", durable_options());
  durable.attach_component(crawlersim::database_component(recovered));
  (void)durable.open();
  const auto* record = recovered.find(4);
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(record->name, "app-4");
  ASSERT_EQ(record->by_day.size(), 2u);
  EXPECT_EQ(record->by_day.at(3).downloads, 23u);
  durable.close();
}

// ---- the crash fuzz ----------------------------------------------------------

TEST_F(RecoveryFixture, KillAtAnyWalOffsetRecoversByteIdenticalStore) {
  const std::uint64_t expected = reference_digest(directory_ / "ref");

  // Probe run: measure the total WAL byte stream (headers, recreations at
  // checkpoints, every record) so the fuzz can aim at any byte of it.
  chaos::KillAtOffset probe(std::uint64_t{1} << 60);
  {
    market::DurableStore durable(directory_ / "probe", "fuzz", durable_options(&probe));
    (void)durable.open();
    apply_workload(durable, 0, true);
    durable.close();
  }
  const std::uint64_t total_bytes = probe.consumed();
  ASSERT_GT(total_bytes, 1000u);

  constexpr int kSeeds = 512;
  int torn_tails = 0;
  int mid_stream_kills = 0;
  const auto dir = directory_ / "victim";
  for (int seed = 0; seed < kSeeds; ++seed) {
    fs::remove_all(dir);
    util::Rng rng(static_cast<std::uint64_t>(seed) * 2654435761u + 17);
    // Mostly inside the stream (any byte, including mid-record and
    // mid-header), occasionally past the end (no crash at all).
    const std::uint64_t offset = rng.below(total_bytes + total_bytes / 16 + 1);
    chaos::KillAtOffset kill(offset);
    bool crashed = false;
    {
      market::DurableStore durable(dir, "fuzz", durable_options(&kill));
      try {
        (void)durable.open();
        apply_workload(durable, 0, true);
        durable.close();
      } catch (const chaos::InjectedFault&) {
        crashed = true;  // the "process" died here; the directory is the truth
      }
    }
    if (offset < total_bytes) {
      EXPECT_TRUE(crashed) << "seed " << seed << " offset " << offset;
      ++mid_stream_kills;
    }

    market::DurableStore recovered(dir, "fuzz", durable_options());
    market::RecoveryReport report;
    ASSERT_NO_THROW(report = recovered.open()) << "seed " << seed << " offset " << offset;
    if (report.wal_torn_tail) ++torn_tails;
    const std::uint64_t durable_ops = recovered.durable_sequence();
    // Redo the suffix the crash lost — exactly what the ingest pipeline
    // would re-send past its last acknowledged sequence.
    apply_workload(recovered, durable_ops, false);
    EXPECT_EQ(digest_store(recovered.store()), expected)
        << "seed " << seed << " offset " << offset << " durable " << durable_ops;
    recovered.store().check_invariants();
    recovered.close();
  }
  // The sweep must have actually exercised the interesting regimes.
  EXPECT_GT(mid_stream_kills, kSeeds / 2);
  EXPECT_GT(torn_tails, kSeeds / 16);
}

TEST_F(RecoveryFixture, InjectedTornCommitLosesOnlyTheUnappliedRecord) {
  const std::uint64_t expected = reference_digest(directory_ / "ref");
  const auto dir = directory_ / "store";
  chaos::FaultPlan plan;
  plan.seed = 11;
  plan.rules.push_back({chaos::FaultSite::kFileWrite, chaos::FaultKind::kTornWrite, 0.15,
                        std::chrono::milliseconds{0}});
  plan.max_faults_per_key = 1;
  chaos::FaultInjector faults(plan);
  std::uint64_t durable_ops = 0;
  {
    market::DurableOptions options = durable_options();
    options.faults = &faults;
    market::DurableStore durable(dir, "fuzz", options);
    (void)durable.open();
    try {
      apply_workload(durable, 0, true);
      durable.close();
    } catch (const chaos::InjectedFault&) {
    }
  }
  market::DurableStore recovered(dir, "fuzz", durable_options());
  const market::RecoveryReport report = recovered.open();
  (void)report;
  durable_ops = recovered.durable_sequence();
  apply_workload(recovered, durable_ops, false);
  EXPECT_EQ(digest_store(recovered.store()), expected);
  recovered.store().check_invariants();
  recovered.close();
}

// ---- ingest-while-serving during checkpoint (the TSan target) ----------------

TEST_F(RecoveryFixture, ConcurrentSnapshotReadersSurviveCheckpoints) {
  const auto dir = directory_ / "store";
  market::DurableOptions options = durable_options();
  options.live.max_rows = 1u << 14;
  market::DurableStore durable(dir, "concurrent", options);
  (void)durable.open();
  (void)durable.add_category("games");
  (void)durable.add_developer("dev");
  (void)durable.add_users(kUsers);
  for (std::uint32_t i = 0; i < kApps; ++i) {
    (void)durable.add_app("app-" + std::to_string(i), market::DeveloperId{0},
                          market::CategoryId{0}, market::Pricing::kFree, 0, 0);
  }

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads{0};
  const market::AppStore& store = durable.store();
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const events::FrontierSnapshot snapshot = store.download_log();
        std::uint64_t sum = 0;
        for (const std::uint32_t app : snapshot.app()) sum += app;
        // Monotonic frontier + monitoring counter: both must stay readable
        // mid-checkpoint without a lock.
        if (store.total_downloads() >= snapshot.size() && sum != ~0ull) {
          reads.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (int round = 0; round < 12; ++round) {
    durable.ingest_downloads(make_download_batch(static_cast<std::uint64_t>(round)));
    durable.ingest_comments(make_comment_batch(static_cast<std::uint64_t>(round)));
    if (round % 3 == 2) (void)durable.checkpoint();
  }
  stop.store(true);
  for (auto& reader : readers) reader.join();
  EXPECT_GT(reads.load(), 0u);
  durable.store().check_invariants();
  durable.close();

  market::DurableStore reopened(dir, "concurrent", options);
  (void)reopened.open();
  EXPECT_EQ(digest_store(reopened.store()), digest_store(durable.store()));
  reopened.close();
}

}  // namespace
}  // namespace appstore
