// Game-day regression suite (ISSUE 9): scenario schedule determinism and
// shape, outcome-accounting invariants for every scenario × fault seed, the
// admission controller's property suite (1000 seeded load shapes on a
// VirtualClock), and the SLO gate — adaptive admission holds p99 queue delay
// near target at 2× saturation without giving up goodput against the fixed
// queue-capacity cliff. Runs under `ctest -L gameday` and the TSan preset.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "chaos/clock.hpp"
#include "chaos/fault.hpp"
#include "crawler/service.hpp"
#include "load/harness.hpp"
#include "load/scenario.hpp"
#include "load/workload.hpp"
#include "net/admission.hpp"
#include "net/http.hpp"
#include "net/server.hpp"
#include "obs/registry.hpp"
#include "synth/generator.hpp"
#include "synth/profile.hpp"
#include "util/rng.hpp"

namespace appstore {
namespace {

using namespace std::chrono_literals;

constexpr load::ScenarioKind kAllKinds[] = {load::ScenarioKind::kFlashCrowd,
                                            load::ScenarioKind::kUpdateStorm,
                                            load::ScenarioKind::kDiurnal};

[[nodiscard]] bool schedules_equal(const load::Schedule& a, const load::Schedule& b) {
  if (a.per_client.size() != b.per_client.size()) return false;
  for (std::size_t c = 0; c < a.per_client.size(); ++c) {
    if (a.per_client[c].size() != b.per_client[c].size()) return false;
    for (std::size_t i = 0; i < a.per_client[c].size(); ++i) {
      const load::Request& x = a.per_client[c][i];
      const load::Request& y = b.per_client[c][i];
      if (x.kind != y.kind || x.target != y.target || x.arrival != y.arrival) {
        return false;
      }
    }
  }
  return true;
}

// ---- scenario determinism ------------------------------------------------------

TEST(GamedayScenario, SameOptionsSameScenarioIncludingFaultPlan) {
  for (const load::ScenarioKind kind : kAllKinds) {
    load::ScenarioOptions options;
    options.kind = kind;
    options.clients = 3;
    options.base_rate_hz = 40.0;
    options.duration_seconds = 6.0;
    options.faults.rate = 0.12;
    const load::Scenario a = load::build_scenario(options);
    const load::Scenario b = load::build_scenario(options);

    ASSERT_EQ(a.phases.size(), b.phases.size()) << to_string(kind);
    for (std::size_t i = 0; i < a.phases.size(); ++i) {
      EXPECT_EQ(a.phases[i].name, b.phases[i].name);
      EXPECT_DOUBLE_EQ(a.phases[i].start_seconds, b.phases[i].start_seconds);
      EXPECT_DOUBLE_EQ(a.phases[i].duration_seconds, b.phases[i].duration_seconds);
      EXPECT_DOUBLE_EQ(a.phases[i].rate_hz, b.phases[i].rate_hz);
    }
    EXPECT_TRUE(schedules_equal(a.schedule, b.schedule)) << to_string(kind);
    EXPECT_TRUE(a.schedule.open_loop());

    // The fault plan is part of the scenario value: sampling decide() over a
    // window of call ordinals must replay identically.
    ASSERT_TRUE(a.fault_plan.has_value());
    ASSERT_TRUE(b.fault_plan.has_value());
    for (std::uint32_t call = 0; call < 64; ++call) {
      const chaos::Fault x =
          a.fault_plan->decide(chaos::FaultSite::kServer, "/api/app/7", call);
      const chaos::Fault y =
          b.fault_plan->decide(chaos::FaultSite::kServer, "/api/app/7", call);
      EXPECT_EQ(x.kind, y.kind);
      EXPECT_EQ(x.latency, y.latency);
    }
  }
}

TEST(GamedayScenario, DifferentSeedDifferentSchedule) {
  load::ScenarioOptions options;
  options.kind = load::ScenarioKind::kFlashCrowd;
  options.clients = 3;
  options.duration_seconds = 4.0;
  load::ScenarioOptions other = options;
  other.seed = options.seed + 1;
  EXPECT_FALSE(schedules_equal(load::build_scenario(options).schedule,
                               load::build_scenario(other).schedule));
}

TEST(GamedayScenario, ArrivalsNonDecreasingAndInsideScenarioWindow) {
  for (const load::ScenarioKind kind : kAllKinds) {
    load::ScenarioOptions options;
    options.kind = kind;
    options.clients = 4;
    options.base_rate_hz = 60.0;
    options.duration_seconds = 5.0;
    const load::Scenario scenario = load::build_scenario(options);
    const auto window =
        std::chrono::nanoseconds(static_cast<std::int64_t>(options.duration_seconds * 1e9));
    ASSERT_EQ(scenario.schedule.per_client.size(), options.clients);
    for (const auto& client : scenario.schedule.per_client) {
      auto previous = std::chrono::nanoseconds(-1);
      for (const load::Request& request : client) {
        EXPECT_GE(request.arrival, previous);
        EXPECT_LT(request.arrival, window) << to_string(kind);
        previous = request.arrival;
      }
    }
    // Flash/storm phases run exactly at peak; the diurnal raised cosine is
    // sampled at segment midpoints, so its hottest segment sits just under.
    const double nominal =
        options.clients * options.base_rate_hz * options.peak_multiplier;
    if (kind == load::ScenarioKind::kDiurnal) {
      EXPECT_GT(scenario.peak_offered_rps(), 0.9 * nominal);
      EXPECT_LE(scenario.peak_offered_rps(), nominal);
    } else {
      EXPECT_DOUBLE_EQ(scenario.peak_offered_rps(), nominal);
    }
    EXPECT_FALSE(scenario.fault_plan.has_value());  // default: no chaos overlay
  }
}

// Counts arrivals (all kinds) inside [from, to) scenario seconds.
[[nodiscard]] std::uint64_t arrivals_between(const load::Schedule& schedule, double from,
                                             double to) {
  const auto lo = std::chrono::nanoseconds(static_cast<std::int64_t>(from * 1e9));
  const auto hi = std::chrono::nanoseconds(static_cast<std::int64_t>(to * 1e9));
  std::uint64_t count = 0;
  for (const auto& client : schedule.per_client) {
    for (const load::Request& request : client) {
      count += (request.arrival >= lo && request.arrival < hi) ? 1 : 0;
    }
  }
  return count;
}

TEST(GamedayScenario, FlashCrowdConcentratesOnTheHeadOfThePopularityCurve) {
  load::ScenarioOptions options;
  options.kind = load::ScenarioKind::kFlashCrowd;
  options.clients = 4;
  options.base_rate_hz = 120.0;
  options.peak_multiplier = 6.0;
  options.duration_seconds = 10.0;
  options.mix.app_count = 1000;
  const load::Scenario scenario = load::build_scenario(options);

  // Share of app-detail requests hitting the top decile of app ids, steady
  // window vs flash window. The flash mix raises zr and cluster stickiness,
  // so the spike must concentrate harder on the head than steady traffic.
  const auto head_share = [&](double from, double to) {
    const auto lo = std::chrono::nanoseconds(static_cast<std::int64_t>(from * 1e9));
    const auto hi = std::chrono::nanoseconds(static_cast<std::int64_t>(to * 1e9));
    std::uint64_t head = 0;
    std::uint64_t total = 0;
    for (const auto& client : scenario.schedule.per_client) {
      for (const load::Request& request : client) {
        if (request.arrival < lo || request.arrival >= hi) continue;
        if (request.kind != load::OpKind::kApp &&
            request.kind != load::OpKind::kComments) {
          continue;
        }
        const std::uint64_t id = std::stoull(request.target.substr(9));  // "/api/app/"
        head += id < options.mix.app_count / 10 ? 1 : 0;
        ++total;
      }
    }
    return total == 0 ? 0.0 : static_cast<double>(head) / static_cast<double>(total);
  };
  const double steady = head_share(0.0, 4.0);
  const double flash = head_share(4.0, 6.0);
  EXPECT_GT(flash, steady + 0.02);

  // The flash phase also runs app-detail heavy (0.65 + 0.25 of the mix).
  EXPECT_GT(arrivals_between(scenario.schedule, 4.0, 6.0),
            2 * arrivals_between(scenario.schedule, 0.0, 2.0));
}

TEST(GamedayScenario, UpdateStormMultipliesDirectoryPollingRate) {
  load::ScenarioOptions options;
  options.kind = load::ScenarioKind::kUpdateStorm;
  options.clients = 4;
  options.base_rate_hz = 80.0;
  options.peak_multiplier = 5.0;
  options.duration_seconds = 10.0;
  const load::Scenario scenario = load::build_scenario(options);

  // Calm is [0, 3), storm [3, 6): equal windows, so counts compare directly.
  const double calm = static_cast<double>(arrivals_between(scenario.schedule, 0.0, 3.0));
  const double storm = static_cast<double>(arrivals_between(scenario.schedule, 3.0, 6.0));
  ASSERT_GT(calm, 0.0);
  EXPECT_GT(storm / calm, 3.0);  // nominal ratio is peak_multiplier = 5

  // The storm is a directory/meta polling wave (Fig. 4): the meta+apps share
  // of storm traffic must exceed the calm phases' organic share.
  const auto directory_share = [&](double from, double to) {
    const auto lo = std::chrono::nanoseconds(static_cast<std::int64_t>(from * 1e9));
    const auto hi = std::chrono::nanoseconds(static_cast<std::int64_t>(to * 1e9));
    std::uint64_t directory = 0;
    std::uint64_t total = 0;
    for (const auto& client : scenario.schedule.per_client) {
      for (const load::Request& request : client) {
        if (request.arrival < lo || request.arrival >= hi) continue;
        directory += (request.kind == load::OpKind::kMeta ||
                      request.kind == load::OpKind::kApps)
                         ? 1
                         : 0;
        ++total;
      }
    }
    return static_cast<double>(directory) / static_cast<double>(total);
  };
  EXPECT_GT(directory_share(3.0, 6.0), directory_share(0.0, 3.0) + 0.1);
}

TEST(GamedayScenario, DiurnalMiddayRunsHotterThanNight) {
  load::ScenarioOptions options;
  options.kind = load::ScenarioKind::kDiurnal;
  options.clients = 4;
  options.base_rate_hz = 50.0;
  options.peak_multiplier = 6.0;
  options.duration_seconds = 12.0;
  const load::Scenario scenario = load::build_scenario(options);
  ASSERT_EQ(scenario.phases.size(), 12u);

  // Midday segments (5, 6) sit at the top of the raised cosine; the night
  // segments (0, 11) at the bottom. Same total window width on both sides.
  const double night = static_cast<double>(
      arrivals_between(scenario.schedule, 0.0, 1.0) +
      arrivals_between(scenario.schedule, 11.0, 12.0));
  const double midday = static_cast<double>(
      arrivals_between(scenario.schedule, 5.0, 7.0));
  ASSERT_GT(night, 0.0);
  EXPECT_GT(midday / night, 2.5);
}

// ---- accounting invariants under faults ----------------------------------------

class GamedayRunTest : public ::testing::Test {
 protected:
  void SetUp() override {
    synth::GeneratorConfig config;
    config.app_scale = 0.002;
    config.download_scale = 2e-6;
    config.seed = 23;
    generated_ = std::make_unique<synth::GeneratedStore>(
        synth::generate(synth::anzhi(), config));
  }

  std::unique_ptr<synth::GeneratedStore> generated_;
};

TEST_F(GamedayRunTest, AccountingInvariantForEveryScenarioAndFaultSeed) {
  // Every scenario kind × fault seed, over real sockets, replayed on a
  // VirtualClock (arrival pacing and injected latency advance virtual time,
  // so three virtual seconds of game day run in milliseconds of wall time).
  // Whatever the chaos overlay does, every scheduled request must land in
  // exactly one outcome bucket.
  for (const load::ScenarioKind kind : kAllKinds) {
    for (const std::uint64_t fault_seed : {0xfa117ULL, 0xbeadULL}) {
      load::ScenarioOptions scenario_options;
      scenario_options.kind = kind;
      scenario_options.seed = 0x9a3e;
      scenario_options.clients = 4;
      scenario_options.base_rate_hz = 30.0;
      scenario_options.peak_multiplier = 4.0;
      scenario_options.duration_seconds = 3.0;
      scenario_options.mix.app_count =
          static_cast<std::uint32_t>(generated_->store->apps().size());
      scenario_options.mix.directory_pages = 3;
      scenario_options.mix.per_page = 50;
      scenario_options.faults.rate = 0.15;
      scenario_options.faults.seed = fault_seed;
      scenario_options.faults.latency = 20ms;
      const load::Scenario scenario = load::build_scenario(scenario_options);
      ASSERT_TRUE(scenario.fault_plan.has_value());

      chaos::VirtualClock clock;
      chaos::FaultInjector injector(*scenario.fault_plan);
      crawlersim::ServicePolicy policy;
      policy.rate_per_second = 1e9;
      policy.burst = 1e9;
      policy.server_workers = 2;
      policy.server_queue_capacity = 64;
      policy.clock = &clock;
      policy.faults = &injector;
      policy.admission.mode = net::AdmissionMode::kQueueDelay;
      policy.admission.target_delay = 1ms;
      policy.admission.interval = 20ms;
      crawlersim::AppstoreService service(*generated_->store, policy);
      service.set_day(60);

      load::RunOptions run_options;
      run_options.service = &service;
      run_options.over_sockets = true;
      run_options.clock = &clock;
      obs::Registry registry;
      run_options.metrics = &registry;
      const load::RunReport report = load::run(scenario.schedule, run_options);
      service.stop();

      const std::string label = std::string(to_string(kind)) + " / fault seed " +
                                std::to_string(fault_seed);
      EXPECT_EQ(report.totals.issued, scenario.schedule.total_requests()) << label;
      EXPECT_EQ(report.totals.issued,
                report.totals.ok + report.totals.http_4xx + report.totals.http_5xx +
                    report.totals.shed + report.totals.transport_errors)
          << label;
      // Header attribution never exceeds the 503 total (in-process and
      // legacy 503s carry no X-Shed-Reason).
      EXPECT_GE(report.totals.shed, report.totals.shed_accept +
                                        report.totals.shed_queue +
                                        report.totals.shed_admission)
          << label;
      EXPECT_GT(report.totals.ok, 0u) << label;
      EXPECT_GT(injector.injected_total(), 0u) << label;  // the overlay fired
    }
  }
}

// ---- admission controller: unit behaviour --------------------------------------

TEST(Admission, RetryAfterFloorsAtOneSecond) {
  net::AdmissionController controller(net::AdmissionOptions{});
  EXPECT_EQ(controller.retry_after_seconds(), 1);  // no samples yet
  controller.observe(3ms);
  EXPECT_EQ(controller.retry_after_seconds(), 1);  // sub-second waits floor at 1
}

TEST(Admission, RetryAfterTracksSmoothedQueueWaitAndCapsAtSixtySeconds) {
  net::AdmissionController controller(net::AdmissionOptions{});
  for (int i = 0; i < 30; ++i) controller.observe(3500ms);
  // EWMA(alpha 1/8) after 30 samples of 3.5 s sits at ~3.44 s; ceil = 4.
  EXPECT_EQ(controller.retry_after_seconds(), 4);
  for (int i = 0; i < 40; ++i) controller.observe(std::chrono::seconds(200));
  EXPECT_EQ(controller.retry_after_seconds(), 60);
}

TEST(Admission, FixedModeIsTheLegacyQueueCapacityCliff) {
  chaos::VirtualClock clock;
  net::AdmissionOptions options;
  options.mode = net::AdmissionMode::kFixed;
  options.limit_ceiling = 8;
  options.clock = &clock;
  net::AdmissionController controller(options);
  // However bad the measured queue delay gets, kFixed never adapts: admit
  // strictly below the ceiling, refuse at it, and count nothing as an
  // adaptive shed.
  for (int i = 0; i < 50; ++i) {
    controller.observe(std::chrono::seconds(2));
    clock.advance(200ms);
  }
  EXPECT_EQ(controller.limit(), 8u);
  EXPECT_EQ(controller.admit(7), net::AdmissionDecision::kAdmit);
  EXPECT_EQ(controller.admit(8), net::AdmissionDecision::kQueueFull);
  EXPECT_EQ(controller.admit(100), net::AdmissionDecision::kQueueFull);
  EXPECT_EQ(controller.sheds(), 0u);
}

// ---- admission controller: property suite --------------------------------------

// Mirrors the TokenBucketLimiter property suite: 1000 seeded load shapes on a
// VirtualClock, asserting the two invariants the serving layer relies on:
//   1. while every measured queue wait stays under the target, the controller
//      never sheds (the limit rests at the ceiling);
//   2. after overload ends, the limit always recovers to the ceiling.
TEST(AdmissionProperty, NeverShedsUnderTargetAndAlwaysRecovers) {
  for (std::uint64_t seed = 0; seed < 1000; ++seed) {
    util::Rng rng = util::rng::derive(0xad317, seed);
    chaos::VirtualClock clock;
    net::AdmissionOptions options;
    options.mode = seed % 2 == 0 ? net::AdmissionMode::kQueueDelay
                                 : net::AdmissionMode::kGradient;
    options.target_delay = std::chrono::microseconds(rng.range(500, 8000));
    options.interval = std::chrono::microseconds(rng.range(2000, 50000));
    options.limit_ceiling = static_cast<std::size_t>(rng.range(16, 256));
    options.min_limit = 2;
    options.clock = &clock;
    net::AdmissionController controller(options);
    const double target_ns = static_cast<double>(options.target_delay.count());

    // Phase 1 — healthy: all waits strictly under target. Never shed.
    const std::int64_t healthy_intervals = rng.range(5, 20);
    for (std::int64_t i = 0; i < healthy_intervals; ++i) {
      const std::int64_t samples = rng.range(1, 8);
      for (std::int64_t s = 0; s < samples; ++s) {
        controller.observe(std::chrono::nanoseconds(
            static_cast<std::int64_t>(rng.uniform(0.0, 0.9) * target_ns)));
      }
      const auto depth = static_cast<std::size_t>(rng.below(options.limit_ceiling));
      ASSERT_EQ(controller.admit(depth), net::AdmissionDecision::kAdmit)
          << "seed " << seed << ": shed while queue delay was under target";
      clock.advance(options.interval);
    }
    ASSERT_EQ(controller.limit(), options.limit_ceiling) << "seed " << seed;
    ASSERT_EQ(controller.sheds(), 0u) << "seed " << seed;

    // Phase 2 — overload: every wait far above target. The limit must come
    // off the ceiling and near-ceiling depths must be refused.
    for (int i = 0; i < 12; ++i) {
      for (int s = 0; s < 4; ++s) {
        controller.observe(std::chrono::nanoseconds(
            static_cast<std::int64_t>(rng.uniform(2.0, 10.0) * target_ns)));
      }
      clock.advance(options.interval);
      (void)controller.admit(0);  // rolls the control interval
    }
    ASSERT_LT(controller.limit(), options.limit_ceiling) << "seed " << seed;
    ASSERT_EQ(controller.admit(options.limit_ceiling - 1),
              net::AdmissionDecision::kOverload)
        << "seed " << seed;

    // Phase 3 — load drops (idle intervals only): the limit must climb all
    // the way back to the ceiling, and admission must resume.
    for (int i = 0; i < 64 && controller.limit() < options.limit_ceiling; ++i) {
      clock.advance(options.interval);
      ASSERT_EQ(controller.admit(0), net::AdmissionDecision::kAdmit)
          << "seed " << seed << ": an empty queue must always be admissible";
    }
    ASSERT_EQ(controller.limit(), options.limit_ceiling)
        << "seed " << seed << ": limit failed to recover after load dropped";
  }
}

// ---- the SLO gate: adaptive vs fixed at 2x saturation --------------------------

struct SloOutcome {
  std::uint64_t ok = 0;
  std::uint64_t shed = 0;
  std::uint64_t transport = 0;
  double wall_seconds = 0.0;
  double queue_wait_p99 = 0.0;
  std::uint64_t admission_sheds = 0;
  std::size_t final_limit = 0;
  int sample_retry_after = -1;
  std::string sample_reason;
};

// Drives 2x-saturation open-loop load at a worker-pool server whose service
// time is a deterministic injected 5 ms sleep (sleep-dominated on purpose:
// the suite must behave on single-core CI boxes, so capacity is set by
// latency injection, not by burning CPU). 2 workers x 5 ms = ~400 rps
// capacity; 16 clients x 50 Hz = 800 rps offered.
[[nodiscard]] SloOutcome run_overloaded(net::AdmissionMode mode) {
  obs::Registry registry;
  chaos::FaultPlan plan;
  plan.seed = 77;
  plan.max_faults_per_key = 0;  // uncapped: every request pays the service time
  plan.rules = {{chaos::FaultSite::kServer, chaos::FaultKind::kLatency, 1.0, 5ms}};
  chaos::FaultInjector injector(plan);

  net::ServerOptions options;
  options.worker_threads = 2;
  options.queue_capacity = 64;
  options.metrics = &registry;
  options.faults = &injector;
  options.admission.mode = mode;
  options.admission.target_delay = 5ms;
  // Slow, gentle probing (+1 admissible slot per 25 ms) keeps the AIMD
  // oscillation tight around the knee instead of sawing up to the ceiling.
  options.admission.interval = 25ms;
  options.admission.increase = 1;
  options.admission.decrease = 0.5;  // sharp cuts: halve on congestion
  net::HttpServer server(options, [](const net::HttpRequest&) {
    return net::HttpResponse::text(200, "ok");
  });

  if (mode != net::AdmissionMode::kFixed) {
    // Pre-converge the controller with synthetic overload observations so the
    // measured run doesn't pay the ramp-down from the ceiling (a real game
    // day amortizes convergence over minutes; this test has ~600 ms).
    EXPECT_NE(server.admission(), nullptr);  // non-void function: EXPECT, not ASSERT
    for (int interval = 0; interval < 12; ++interval) {
      for (int s = 0; s < 4; ++s) server.admission()->observe(40ms);
      std::this_thread::sleep_for(27ms);
    }
  }

  constexpr int kClients = 16;
  constexpr int kRequests = 30;
  constexpr auto kGap = 20ms;
  std::atomic<std::uint64_t> ok{0};
  std::atomic<std::uint64_t> shed{0};
  std::atomic<std::uint64_t> transport{0};
  std::atomic<int> sample_retry{-1};
  std::mutex sample_mutex;
  std::string sample_reason;
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      util::Rng rng = util::rng::derive(0x510, static_cast<std::uint64_t>(c));
      net::PersistentHttpClient client("127.0.0.1", server.port());
      for (int i = 0; i < kRequests; ++i) {
        // Open loop with a coordinated-omission guard: when the previous
        // request ran past this arrival, issue immediately.
        const auto due = start + i * kGap +
                         std::chrono::microseconds(rng.range(0, 5000));
        std::this_thread::sleep_until(due);
        try {
          const net::HttpResponse response = client.get("/api/hot");
          if (response.status == 200) {
            ++ok;
          } else if (response.status == 503) {
            ++shed;
            const auto retry = response.headers.find("Retry-After");
            const auto reason = response.headers.find("X-Shed-Reason");
            if (retry != response.headers.end() && reason != response.headers.end()) {
              sample_retry.store(std::stoi(retry->second), std::memory_order_relaxed);
              const std::lock_guard lock(sample_mutex);
              sample_reason = reason->second;
            }
          }
        } catch (const std::exception&) {
          ++transport;
        }
      }
    });
  }
  for (auto& thread : clients) thread.join();

  SloOutcome outcome;
  outcome.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  outcome.ok = ok.load();
  outcome.shed = shed.load();
  outcome.transport = transport.load();
  outcome.final_limit = server.admission() != nullptr ? server.admission()->limit() : 0;
  outcome.sample_retry_after = sample_retry.load();
  outcome.sample_reason = sample_reason;
  const obs::Snapshot snapshot = registry.snapshot();
  const auto* wait = snapshot.find_histogram("server_queue_wait_seconds");
  outcome.queue_wait_p99 = wait != nullptr ? wait->p99 : 0.0;
  const auto* admission = snapshot.find_counter("server_shed_total", "admission");
  outcome.admission_sheds = admission != nullptr ? admission->value : 0;
  server.stop();
  return outcome;
}

TEST(GamedaySlo, AdaptiveAdmissionHoldsQueueDelayAtTwiceSaturation) {
  constexpr std::uint64_t kIssued = 16 * 30;
  // The timing gates below are real-time measurements on a possibly
  // oversubscribed CI core; a single descheduled worker can blow any honest
  // latency budget. Best-of-three: an actual controller regression fails all
  // attempts, a scheduler stall doesn't.
  constexpr int kAttempts = 3;
  for (int attempt = 1; attempt <= kAttempts; ++attempt) {
    const SloOutcome fixed = run_overloaded(net::AdmissionMode::kFixed);
    const SloOutcome adaptive = run_overloaded(net::AdmissionMode::kQueueDelay);

    // Hard invariants, checked on every attempt.
    // Outcome accounting holds at the client, for both controllers.
    ASSERT_EQ(fixed.ok + fixed.shed + fixed.transport, kIssued);
    ASSERT_EQ(adaptive.ok + adaptive.shed + adaptive.transport, kIssued);
    // The fixed cliff never sheds here (the queue never reaches capacity 64
    // with 16 clients) — it just lets the backlog stand; the adaptive
    // controller sheds at the limit instead and attributes every 503.
    ASSERT_EQ(fixed.shed, 0u);
    ASSERT_GT(adaptive.shed, 0u);
    ASSERT_GT(adaptive.admission_sheds, 0u);
    ASSERT_EQ(adaptive.sample_reason, "admission");
    ASSERT_GE(adaptive.sample_retry_after, 1);  // satellite: integer >= 1
    ASSERT_GT(fixed.wall_seconds, 0.0);
    ASSERT_GT(adaptive.wall_seconds, 0.0);

    const double fixed_goodput = static_cast<double>(fixed.ok) / fixed.wall_seconds;
    const double adaptive_goodput =
        static_cast<double>(adaptive.ok) / adaptive.wall_seconds;
    std::printf(
        "slo attempt %d: fixed p99_wait=%.4fs goodput=%.0f/s | adaptive "
        "p99_wait=%.4fs goodput=%.0f/s sheds=%llu limit=%zu\n",
        attempt, fixed.queue_wait_p99, fixed_goodput, adaptive.queue_wait_p99,
        adaptive_goodput, static_cast<unsigned long long>(adaptive.admission_sheds),
        adaptive.final_limit);

    // The SLO gates. Target is 5 ms; the AIMD oscillation tops out around a
    // depth-6 queue (~3 drain rounds = 15-20 ms actual wait) and the
    // log-bucketed histogram estimates within 2x (the reading lands in the
    // 13-26 ms bucket), so 30 ms is the tightest honest budget — still well
    // under the ~38 ms standing queue the fixed cliff tolerates at this
    // load. Shedding must also buy that latency without giving up
    // throughput (goodput within a CI margin of the fixed baseline — both
    // run at ~capacity).
    const bool holds_delay = adaptive.queue_wait_p99 <= 0.030;
    const bool beats_cliff = fixed.queue_wait_p99 > adaptive.queue_wait_p99;
    const bool holds_limit = adaptive.final_limit < 64;
    const bool keeps_goodput = adaptive_goodput >= 0.6 * fixed_goodput;
    if (holds_delay && beats_cliff && holds_limit && keeps_goodput) return;

    EXPECT_LT(attempt, kAttempts)
        << "SLO gate failed on every attempt: holds_delay=" << holds_delay
        << " beats_cliff=" << beats_cliff << " holds_limit=" << holds_limit
        << " keeps_goodput=" << keeps_goodput
        << " (adaptive p99=" << adaptive.queue_wait_p99
        << "s, fixed p99=" << fixed.queue_wait_p99
        << "s, adaptive goodput=" << adaptive_goodput
        << "/s, fixed goodput=" << fixed_goodput << "/s)";
  }
}

}  // namespace
}  // namespace appstore
