// Tests for the synthetic marketplace generator: structural invariants,
// Table-1 calibration, popularity shapes, and determinism.
#include <gtest/gtest.h>

#include <set>

#include "affinity/metric.hpp"
#include "affinity/strings.hpp"
#include "market/snapshot.hpp"
#include "stats/pareto.hpp"
#include "stats/powerlaw.hpp"
#include "synth/generator.hpp"

namespace appstore::synth {
namespace {

GeneratorConfig small_config(std::uint64_t seed = 0x5eed) {
  GeneratorConfig config;
  config.app_scale = 0.03;
  config.download_scale = 3e-5;
  config.comments = true;
  config.seed = seed;
  return config;
}

class GeneratedAnzhi : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    StoreProfile profile = anzhi();
    // At test scale the faithful 1.6% commenter share yields too few users
    // for the affinity statistics; raise it (affinity is per-user and does
    // not depend on how many users comment).
    profile.commenter_fraction = 0.10;
    generated_ = new GeneratedStore(generate(profile, small_config()));
  }
  static void TearDownTestSuite() {
    delete generated_;
    generated_ = nullptr;
  }
  static GeneratedStore* generated_;
};

GeneratedStore* GeneratedAnzhi::generated_ = nullptr;

TEST_F(GeneratedAnzhi, StoreInvariantsHold) {
  generated_->store->check_invariants();
}

TEST_F(GeneratedAnzhi, AppAndCategoryCountsScale) {
  const auto& store = *generated_->store;
  EXPECT_EQ(store.categories().size(), 34u);
  // 60196 * 0.03 ≈ 1806
  EXPECT_NEAR(static_cast<double>(store.apps().size()), 60196 * 0.03, 5.0);
  EXPECT_GT(store.developers().size(), store.apps().size() / 10);
}

TEST_F(GeneratedAnzhi, DownloadTotalsScale) {
  // 2.816e9 * 3e-5 ≈ 84,480
  EXPECT_NEAR(static_cast<double>(generated_->store->total_downloads()), 2.816e9 * 3e-5,
              2.816e9 * 3e-5 * 0.02);
}

TEST_F(GeneratedAnzhi, SnapshotSeriesMatchesTableOneShape) {
  const auto series = market::replay_snapshots(*generated_->store, anzhi().crawl_days);
  const auto summary = market::summarize("Anzhi", series);
  // First-day app count ≈ scaled 58423.
  EXPECT_NEAR(static_cast<double>(summary.apps_first_day), 58423 * 0.03, 10.0);
  EXPECT_GT(summary.apps_last_day, summary.apps_first_day);
  EXPECT_GT(summary.new_apps_per_day, 0.0);
  // Downloads on the first day ≈ scaled 1.396e9 (pre-crawl history).
  EXPECT_NEAR(static_cast<double>(summary.downloads_first_day), 1.396e9 * 3e-5,
              1.396e9 * 3e-5 * 0.05);
  EXPECT_GT(summary.daily_downloads, 0.0);
}

TEST_F(GeneratedAnzhi, ParetoEffectPresent) {
  const auto counts = generated_->store->download_counts();
  const double top10 = stats::top_share(counts, 0.10);
  // Paper: ~90% at paper scale; scaled-down runs concentrate slightly less.
  EXPECT_GT(top10, 0.45);
  EXPECT_GT(stats::top_share(counts, 0.01), 0.10);
}

TEST_F(GeneratedAnzhi, PowerLawTrunkNearCalibration) {
  const auto ranks = generated_->store->downloads_by_rank();
  const auto fit = stats::fit_power_law_trunk(ranks);
  EXPECT_NEAR(fit.exponent, 1.4, 0.35);
  EXPECT_GT(fit.r_squared, 0.9);
}

TEST_F(GeneratedAnzhi, BothTruncationsPresent) {
  const auto report = stats::analyze_truncation(generated_->store->downloads_by_rank());
  EXPECT_LT(report.head_ratio, 0.8);  // fetch-at-most-once plateau
  EXPECT_LT(report.tail_ratio, 0.8);  // clustering-starved tail
}

TEST_F(GeneratedAnzhi, MostAppsNeverUpdate) {
  std::size_t zero_updates = 0;
  for (const auto& app : generated_->store->apps()) {
    if (app.update_days.empty()) ++zero_updates;
  }
  const double fraction =
      static_cast<double>(zero_updates) / static_cast<double>(generated_->store->apps().size());
  EXPECT_GT(fraction, 0.75);
  EXPECT_LT(fraction, 0.92);
}

TEST_F(GeneratedAnzhi, CommentStreamsShowClusteringAffinity) {
  const auto& store = *generated_->store;
  std::vector<std::uint32_t> app_category;
  for (const auto& app : store.apps()) app_category.push_back(app.category.value);

  std::vector<std::vector<std::uint32_t>> category_strings;
  for (std::uint32_t u = 0; u < store.user_count(); ++u) {
    const auto stream = store.comment_stream(market::UserId{u});
    if (stream.empty()) continue;
    const auto apps = affinity::app_string(stream);
    category_strings.push_back(affinity::category_string(apps, app_category));
  }
  ASSERT_GT(category_strings.size(), 20u);

  const auto values = affinity::per_user_affinity(category_strings, 1);
  ASSERT_GT(values.size(), 10u);
  double total = 0.0;
  for (const double v : values) total += v;
  const double mean_affinity = total / static_cast<double>(values.size());

  const auto counts32 = store.apps_per_category();
  const std::vector<std::uint64_t> counts(counts32.begin(), counts32.end());
  const double random_walk = affinity::random_walk_affinity(counts, 1);
  EXPECT_GT(mean_affinity, random_walk * 3.0);
}

TEST_F(GeneratedAnzhi, UsersReceivedDownloads) {
  EXPECT_EQ(generated_->paid_rank_order.size(), 0u);  // Anzhi is free-only
  EXPECT_EQ(generated_->free_rank_order.size(), generated_->store->apps().size());
  EXPECT_GT(generated_->free_params.user_count, 0u);
}

class GeneratedSlideme : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    GeneratorConfig config;
    config.app_scale = 0.10;        // SlideMe is small: keep enough paid apps
    config.download_scale = 2e-4;
    config.comments = false;
    generated_ = new GeneratedStore(generate(slideme(), config));
  }
  static void TearDownTestSuite() {
    delete generated_;
    generated_ = nullptr;
  }
  static GeneratedStore* generated_;
};

GeneratedStore* GeneratedSlideme::generated_ = nullptr;

TEST_F(GeneratedSlideme, PaidFractionApproximatelyCalibrated) {
  std::size_t paid = 0;
  for (const auto& app : generated_->store->apps()) {
    if (app.pricing == market::Pricing::kPaid) ++paid;
  }
  const double fraction =
      static_cast<double>(paid) / static_cast<double>(generated_->store->apps().size());
  EXPECT_NEAR(fraction, 0.253, 0.04);
}

TEST_F(GeneratedSlideme, AdFractionOnFreeApps) {
  std::size_t with_ads = 0;
  std::size_t free = 0;
  for (const auto& app : generated_->store->apps()) {
    if (app.pricing != market::Pricing::kFree) continue;
    ++free;
    if (app.has_ads) ++with_ads;
  }
  EXPECT_NEAR(static_cast<double>(with_ads) / static_cast<double>(free), 0.677, 0.05);
}

TEST_F(GeneratedSlideme, PaidPricesWithinRange) {
  for (const auto& app : generated_->store->apps()) {
    if (app.pricing != market::Pricing::kPaid) continue;
    const double price = market::cents_to_dollars(app.price);
    EXPECT_GE(price, 0.49);
    EXPECT_LE(price, 49.99);
  }
}

TEST_F(GeneratedSlideme, PaidFollowsCleanerPowerLaw) {
  const auto paid_ranks = generated_->store->downloads_by_rank(market::Pricing::kPaid);
  const auto free_ranks = generated_->store->downloads_by_rank(market::Pricing::kFree);
  const auto paid_fit = stats::fit_power_law_trunk(paid_ranks);
  const auto free_fit = stats::fit_power_law_trunk(free_ranks);
  // Fig. 11: paid ~1.72 steep and clean; free much shallower (~0.85).
  EXPECT_GT(paid_fit.exponent, free_fit.exponent);
  EXPECT_GT(paid_fit.exponent, 1.2);
  EXPECT_LT(free_fit.exponent, 1.2);
}

TEST_F(GeneratedSlideme, NamedCategoriesUsed) {
  EXPECT_EQ(generated_->store->categories().size(), slideme_categories().size());
  EXPECT_EQ(generated_->store->categories()[0].name, "music");
}

TEST_F(GeneratedSlideme, SegmentsUseSeparateUserPools) {
  EXPECT_GT(generated_->paid_user_offset, 0u);
  EXPECT_EQ(generated_->paid_user_offset, generated_->free_params.user_count);
  EXPECT_EQ(generated_->store->user_count(),
            generated_->free_params.user_count + generated_->paid_params.user_count);
}


TEST(Generator, RankAtDayExcludesUnreleasedApps) {
  const auto generated = generate(anzhi(), small_config(5));
  const auto day0 = downloads_by_rank_at_day(*generated.store, 0, market::Pricing::kFree);
  const auto day60 = downloads_by_rank_at_day(*generated.store, 60, market::Pricing::kFree);
  // Day 0 lists only the initial catalog; day 60 includes every release.
  EXPECT_LT(day0.size(), day60.size());
  EXPECT_EQ(day60.size(), generated.store->apps().size());
  std::size_t released_day0 = 0;
  for (const auto& app : generated.store->apps()) {
    if (app.released <= 0) ++released_day0;
  }
  EXPECT_EQ(day0.size(), released_day0);
}

TEST(Generator, PaidDownloadScaleResolvesPaidSegment) {
  GeneratorConfig coarse;
  coarse.app_scale = 0.05;
  coarse.download_scale = 1e-4;
  GeneratorConfig fine = coarse;
  fine.paid_download_scale = 0.01;

  const auto low = generate(slideme(), coarse);
  const auto high = generate(slideme(), fine);
  std::uint64_t low_paid = 0;
  std::uint64_t high_paid = 0;
  for (const auto& app : low.store->apps()) {
    if (app.pricing == market::Pricing::kPaid) low_paid += low.store->downloads_of(app.id);
  }
  for (const auto& app : high.store->apps()) {
    if (app.pricing == market::Pricing::kPaid) high_paid += high.store->downloads_of(app.id);
  }
  EXPECT_GT(high_paid, low_paid * 10);
}

TEST(Generator, Fig17VariantMaturesPaidSegment) {
  const StoreProfile base = slideme();
  const StoreProfile fig17 = slideme_fig17();
  EXPECT_GT(fig17.paid_segment.downloads_first, base.paid_segment.downloads_first);
  EXPECT_EQ(fig17.paid_segment.downloads_last, base.paid_segment.downloads_last);
}

// ---- determinism / cross-profile ----------------------------------------------------

TEST(Generator, DeterministicForSameSeed) {
  const auto a = generate(anzhi(), small_config(7));
  const auto b = generate(anzhi(), small_config(7));
  EXPECT_EQ(a.store->total_downloads(), b.store->total_downloads());
  EXPECT_EQ(a.store->apps().size(), b.store->apps().size());
  EXPECT_EQ(a.store->comment_log().size(), b.store->comment_log().size());
  for (std::size_t i = 0; i < 10 && i < a.store->apps().size(); ++i) {
    EXPECT_EQ(a.store->downloads_of(market::AppId{static_cast<std::uint32_t>(i)}),
              b.store->downloads_of(market::AppId{static_cast<std::uint32_t>(i)}));
  }
}

TEST(Generator, DifferentSeedsDiffer) {
  const auto a = generate(anzhi(), small_config(1));
  const auto b = generate(anzhi(), small_config(2));
  bool any_difference = false;
  for (std::size_t i = 0; i < 50 && i < a.store->apps().size(); ++i) {
    if (a.store->downloads_of(market::AppId{static_cast<std::uint32_t>(i)}) !=
        b.store->downloads_of(market::AppId{static_cast<std::uint32_t>(i)})) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(Generator, AllProfilesGenerate) {
  GeneratorConfig config;
  config.app_scale = 0.01;
  config.download_scale = 5e-6;
  config.comments = false;
  for (const auto& profile : all_profiles()) {
    const auto generated = generate(profile, config);
    generated.store->check_invariants();
    EXPECT_GT(generated.store->total_downloads(), 0u) << profile.name;
    EXPECT_GT(generated.store->apps().size(), 0u) << profile.name;
  }
}

TEST(Generator, DownloadsAtDayMonotone) {
  const auto generated = generate(anzhi(), small_config(3));
  const auto early = downloads_at_day(*generated.store, 0);
  const auto late = downloads_at_day(*generated.store, 60);
  std::uint64_t early_total = 0;
  std::uint64_t late_total = 0;
  for (std::size_t a = 0; a < early.size(); ++a) {
    EXPECT_LE(early[a], late[a]);
    early_total += early[a];
    late_total += late[a];
  }
  EXPECT_LT(early_total, late_total);
  EXPECT_EQ(late_total, generated.store->total_downloads());
}

TEST(Generator, NoDownloadsBeforeRelease) {
  const auto generated = generate(anzhi(), small_config(4));
  for (const auto event : generated.store->download_log()) {
    EXPECT_GE(event.day, generated.store->app(market::AppId{event.app}).released);
  }
}

}  // namespace
}  // namespace appstore::synth
