// Worker-pool server behavior: keep-alive reuse, bounded-queue load
// shedding, graceful drain, and the service's per-day response cache.
// Runs under the TSan preset (see CMakePresets.json / ROADMAP.md) — the
// dispatcher/worker handoff is exactly the kind of code TSan exists for.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "crawler/json.hpp"
#include "crawler/service.hpp"
#include "net/http.hpp"
#include "net/server.hpp"
#include "obs/registry.hpp"
#include "synth/generator.hpp"
#include "synth/profile.hpp"

namespace appstore::net {
namespace {

using namespace std::chrono_literals;

// ---- keep-alive ----------------------------------------------------------------

TEST(WorkerPool, KeepAliveReusesOneConnection) {
  ServerOptions options;
  options.worker_threads = 2;
  HttpServer server(options,
                    [](const HttpRequest&) { return HttpResponse::text(200, "ok"); });
  PersistentHttpClient client("127.0.0.1", server.port());
  for (int i = 0; i < 50; ++i) {
    ASSERT_EQ(client.get("/x").status, 200);
  }
  EXPECT_EQ(client.connections_opened(), 1u);
  EXPECT_EQ(server.requests_served(), 50u);
}

TEST(WorkerPool, ServesConcurrentPersistentClients) {
  ServerOptions options;
  options.worker_threads = 4;
  HttpServer server(options,
                    [](const HttpRequest&) { return HttpResponse::text(200, "ok"); });
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int c = 0; c < 8; ++c) {
    threads.emplace_back([&server, &failures] {
      PersistentHttpClient client("127.0.0.1", server.port());
      for (int i = 0; i < 25; ++i) {
        if (client.get("/x").status != 200) ++failures;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(server.requests_served(), 200u);
}

// ---- bounded queue load shedding ----------------------------------------------

TEST(WorkerPool, BoundedQueueShedsWith503AndRetryAfter) {
  // One worker, a queue of one: with the worker blocked, at most one further
  // request can wait; everything else must be shed with an explicit 503.
  std::promise<void> blocked_promise;
  auto blocked = blocked_promise.get_future();
  std::promise<void> release_promise;
  std::shared_future<void> release(release_promise.get_future());
  ServerOptions options;
  options.worker_threads = 1;
  options.queue_capacity = 1;
  HttpServer server(options, [&blocked_promise, release](const HttpRequest& request) {
    if (request.target == "/block") {
      blocked_promise.set_value();
      release.wait();
    }
    return HttpResponse::text(200, "ok");
  });

  // Occupy the single worker.
  std::thread blocker([&server] {
    HttpClient client("127.0.0.1", server.port());
    EXPECT_EQ(client.get("/block").status, 200);
  });
  // Wait until the blocker is inside the handler (not just queued) — the
  // requests_served counter is no use here, it only ticks after completion.
  ASSERT_EQ(blocked.wait_for(5s), std::future_status::ready);
  const auto deadline = std::chrono::steady_clock::now() + 5s;

  // Saturate: these connections become readable while the only worker is
  // blocked; once the ready queue holds one of them the rest are shed.
  std::atomic<int> ok{0};
  std::atomic<int> shed{0};
  std::vector<std::thread> clients;
  for (int i = 0; i < 6; ++i) {
    clients.emplace_back([&server, &ok, &shed] {
      HttpClient client("127.0.0.1", server.port(),
                        ClientOptions{.timeout = std::chrono::milliseconds(10000)});
      const HttpResponse response = client.get("/fill");
      if (response.status == 200) ++ok;
      if (response.status == 503) {
        ++shed;
        // Retry-After is the admission controller's recovery estimate: an
        // integer number of seconds, floored at 1 (gameday_test pins the
        // estimate itself; here only the contract).
        const int retry_after = std::stoi(response.headers.at("Retry-After"));
        EXPECT_GE(retry_after, 1);
        EXPECT_EQ(response.headers.at("X-Shed-Reason"), "queue");
      }
    });
  }
  // Give the dispatcher time to observe the readable connections and shed.
  while (server.connections_shed() < 5 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  release_promise.set_value();
  for (auto& client : clients) client.join();
  blocker.join();

  EXPECT_EQ(ok.load() + shed.load(), 6);
  EXPECT_GE(shed.load(), 1);
  EXPECT_EQ(server.connections_shed(), static_cast<std::uint64_t>(shed.load()));
}

// ---- graceful drain ------------------------------------------------------------

TEST(WorkerPool, GracefulDrainCompletesInFlightRequests) {
  std::promise<void> started_promise;
  auto started = started_promise.get_future();
  std::promise<void> release_promise;
  std::shared_future<void> release(release_promise.get_future());
  std::atomic<bool> signalled{false};
  ServerOptions options;
  options.worker_threads = 2;
  auto server = std::make_unique<HttpServer>(
      options, [&, release](const HttpRequest&) {
        if (!signalled.exchange(true)) started_promise.set_value();
        release.wait();
        return HttpResponse::text(200, "drained");
      });

  std::promise<HttpResponse> result_promise;
  auto result = result_promise.get_future();
  std::thread client_thread([&server, &result_promise] {
    // Persistent client: it does NOT ask for "Connection: close", so a close
    // header on the response can only be the server's drain signal.
    PersistentHttpClient client("127.0.0.1", server->port());
    result_promise.set_value(client.get("/slow"));
  });
  ASSERT_EQ(started.wait_for(5s), std::future_status::ready);

  // stop() while the request is in the handler: it must complete, and its
  // response must carry "Connection: close" (the drain signal).
  std::thread stopper([&server] { server->stop(); });
  std::this_thread::sleep_for(10ms);  // let stop() reach the drain phase
  release_promise.set_value();
  stopper.join();
  client_thread.join();

  const HttpResponse response = result.get();
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.body, "drained");
  EXPECT_EQ(response.headers.at("Connection"), "close");
  EXPECT_EQ(server->requests_served(), 1u);
}

// ---- response cache ------------------------------------------------------------

class ResponseCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    synth::GeneratorConfig config;
    config.app_scale = 0.002;
    config.download_scale = 2e-6;
    config.seed = 17;
    generated_ = std::make_unique<synth::GeneratedStore>(
        synth::generate(synth::anzhi(), config));
  }

  [[nodiscard]] std::uint64_t cache_counter(const crawlersim::AppstoreService& service,
                                            std::string_view label) const {
    // Keep the snapshot alive past find_counter: the pointer it returns aims
    // into the snapshot's own storage, not the registry.
    const auto snapshot = service.metrics().snapshot();
    const auto* sample = snapshot.find_counter("service_response_cache_total", label);
    return sample != nullptr ? sample->value : 0;
  }

  std::unique_ptr<synth::GeneratedStore> generated_;
};

TEST_F(ResponseCacheTest, InvalidatedAcrossAdvanceDay) {
  crawlersim::ServicePolicy policy;
  policy.rate_per_second = 1e9;
  policy.burst = 1e9;
  crawlersim::AppstoreService service(*generated_->store, policy);
  service.set_day(0);

  PersistentHttpClient client("127.0.0.1", service.port());
  Headers headers;
  headers["X-Client-Id"] = "proxy-eu-1";

  const auto day0 = client.get("/api/meta", headers);
  ASSERT_EQ(day0.status, 200);
  const auto day0_again = client.get("/api/meta", headers);
  EXPECT_EQ(day0_again.body, day0.body);
  EXPECT_EQ(cache_counter(service, "hit"), 1u);
  EXPECT_EQ(cache_counter(service, "miss"), 1u);

  // Advancing the day must invalidate: the store grows as apps release, so
  // a stale cached /api/meta would report the wrong total_apps.
  service.set_day(60);
  const auto day60 = client.get("/api/meta", headers);
  ASSERT_EQ(day60.status, 200);
  EXPECT_EQ(cache_counter(service, "miss"), 2u);
  const auto parsed0 = crawlersim::parse_json(day0.body);
  const auto parsed60 = crawlersim::parse_json(day60.body);
  ASSERT_TRUE(parsed0.has_value() && parsed60.has_value());
  EXPECT_EQ(parsed60->at("day").as_u64(), 60u);
  EXPECT_GT(parsed60->at("total_apps").as_u64(), parsed0->at("total_apps").as_u64());

  // Directory pages are cached per (target, day) too.
  const auto apps_first = client.get("/api/apps?page=0&per_page=50", headers);
  const auto apps_second = client.get("/api/apps?page=0&per_page=50", headers);
  ASSERT_EQ(apps_first.status, 200);
  EXPECT_EQ(apps_first.body, apps_second.body);
  EXPECT_EQ(cache_counter(service, "hit"), 2u);
  EXPECT_EQ(cache_counter(service, "miss"), 3u);
}

TEST_F(ResponseCacheTest, CachedAndUncachedBodiesAgree) {
  crawlersim::ServicePolicy cached_policy;
  cached_policy.rate_per_second = 1e9;
  cached_policy.burst = 1e9;
  crawlersim::ServicePolicy uncached_policy = cached_policy;
  uncached_policy.cache_responses = false;

  crawlersim::AppstoreService cached(*generated_->store, cached_policy);
  crawlersim::AppstoreService uncached(*generated_->store, uncached_policy);
  cached.set_day(60);
  uncached.set_day(60);

  HttpRequest request;
  request.headers["X-Client-Id"] = "proxy-eu-1";
  for (const char* target :
       {"/api/meta", "/api/apps?page=0&per_page=25", "/api/apps?page=1&per_page=25"}) {
    request.target = target;
    const auto cold = cached.respond(request);
    const auto warm = cached.respond(request);  // second hit comes from cache
    const auto reference = uncached.respond(request);
    EXPECT_EQ(cold.body, reference.body) << target;
    EXPECT_EQ(warm.body, reference.body) << target;
    EXPECT_EQ(warm.status, reference.status) << target;
  }
}

}  // namespace
}  // namespace appstore::net
