// Load-generation harness: schedule determinism, open/closed-loop accounting
// invariants, latency-SLO smoke on the cached endpoints, and JSON report
// round-trip. Runs under `ctest -L load` and the TSan preset.
#include <gtest/gtest.h>

#include <memory>

#include "chaos/clock.hpp"
#include "crawler/json.hpp"
#include "crawler/service.hpp"
#include "load/harness.hpp"
#include "load/report.hpp"
#include "load/workload.hpp"
#include "obs/registry.hpp"
#include "synth/generator.hpp"
#include "synth/profile.hpp"

namespace appstore::load {
namespace {

[[nodiscard]] bool schedules_equal(const Schedule& a, const Schedule& b) {
  if (a.per_client.size() != b.per_client.size()) return false;
  for (std::size_t c = 0; c < a.per_client.size(); ++c) {
    if (a.per_client[c].size() != b.per_client[c].size()) return false;
    for (std::size_t i = 0; i < a.per_client[c].size(); ++i) {
      const Request& x = a.per_client[c][i];
      const Request& y = b.per_client[c][i];
      if (x.kind != y.kind || x.target != y.target || x.arrival != y.arrival) return false;
    }
  }
  return true;
}

// ---- schedule determinism ------------------------------------------------------

TEST(Workload, SameSeedSameSchedule) {
  ScheduleOptions options;
  options.seed = 42;
  options.clients = 6;
  options.requests_per_client = 300;
  options.open_loop_rate_hz = 250.0;
  EXPECT_TRUE(schedules_equal(build_schedule(options), build_schedule(options)));
}

TEST(Workload, DifferentSeedDifferentSchedule) {
  ScheduleOptions options;
  options.clients = 4;
  options.requests_per_client = 200;
  ScheduleOptions other = options;
  other.seed = options.seed + 1;
  EXPECT_FALSE(schedules_equal(build_schedule(options), build_schedule(other)));
}

TEST(Workload, PerClientStreamsIndependentOfClientCount) {
  // Client c's request stream is derived from (seed, c) alone — adding more
  // clients (more "workers" issuing load) must not change existing streams.
  ScheduleOptions narrow;
  narrow.clients = 2;
  narrow.requests_per_client = 150;
  ScheduleOptions wide = narrow;
  wide.clients = 8;
  const Schedule a = build_schedule(narrow);
  const Schedule b = build_schedule(wide);
  for (std::size_t c = 0; c < narrow.clients; ++c) {
    ASSERT_EQ(a.per_client[c].size(), b.per_client[c].size());
    for (std::size_t i = 0; i < a.per_client[c].size(); ++i) {
      EXPECT_EQ(a.per_client[c][i].target, b.per_client[c][i].target);
    }
  }
}

TEST(Workload, OpenLoopArrivalsStrictlyIncreaseClosedLoopZero) {
  ScheduleOptions options;
  options.clients = 3;
  options.requests_per_client = 100;
  options.open_loop_rate_hz = 500.0;
  for (const auto& client : build_schedule(options).per_client) {
    auto previous = std::chrono::nanoseconds(-1);
    for (const Request& request : client) {
      EXPECT_GT(request.arrival, previous);
      previous = request.arrival;
    }
  }
  options.open_loop_rate_hz = 0.0;
  for (const auto& client : build_schedule(options).per_client) {
    for (const Request& request : client) {
      EXPECT_EQ(request.arrival.count(), 0);
    }
  }
}

TEST(Workload, PopularitySkewFollowsZipf) {
  // With zr well above 0 and clustering off, low ids (globally popular apps)
  // must dominate app-detail targets.
  ScheduleOptions options;
  options.clients = 4;
  options.requests_per_client = 2000;
  options.mix.meta_weight = 0.0;
  options.mix.apps_weight = 0.0;
  options.mix.app_weight = 1.0;
  options.mix.comments_weight = 0.0;
  options.mix.app_count = 1000;
  options.mix.p = 0.0;  // global Zipf only
  options.mix.zr = 1.0;
  std::uint64_t top_decile = 0;
  std::uint64_t total = 0;
  for (const auto& client : build_schedule(options).per_client) {
    for (const Request& request : client) {
      const std::uint64_t id = std::stoull(request.target.substr(9));  // "/api/app/"
      top_decile += id < 100 ? 1 : 0;
      ++total;
    }
  }
  // Under Zipf(1.0, n=1000) the top 10% of apps carry ~62% of draws; uniform
  // sampling would give 10%.
  EXPECT_GT(static_cast<double>(top_decile) / static_cast<double>(total), 0.4);
}

// ---- run accounting ------------------------------------------------------------

class LoadRunTest : public ::testing::Test {
 protected:
  void SetUp() override {
    synth::GeneratorConfig config;
    config.app_scale = 0.002;
    config.download_scale = 2e-6;
    config.seed = 23;
    generated_ = std::make_unique<synth::GeneratedStore>(
        synth::generate(synth::anzhi(), config));
  }

  [[nodiscard]] ScheduleOptions schedule_options() const {
    ScheduleOptions options;
    options.clients = 4;
    options.requests_per_client = 120;
    options.mix.app_count =
        static_cast<std::uint32_t>(generated_->store->apps().size());
    options.mix.directory_pages = 3;
    options.mix.per_page = 50;
    return options;
  }

  std::unique_ptr<synth::GeneratedStore> generated_;
};

TEST_F(LoadRunTest, ClosedLoopAccountingInvariant) {
  // A policy mix that produces every outcome class: a tight rate limit
  // (429s), injected failures (500s), and out-of-range app ids (404s).
  crawlersim::ServicePolicy policy;
  policy.rate_per_second = 400.0;
  policy.burst = 20.0;
  policy.failure_rate = 0.25;  // high enough that zero injected 500s is ~impossible
  crawlersim::AppstoreService service(*generated_->store, policy);
  service.set_day(60);

  ScheduleOptions schedule_opts = schedule_options();
  schedule_opts.mix.app_count =
      static_cast<std::uint32_t>(generated_->store->apps().size()) * 2;  // force 404s
  RunOptions options;
  options.service = &service;
  obs::Registry registry;
  options.metrics = &registry;
  const RunReport report = run(build_schedule(schedule_opts), options);

  EXPECT_EQ(report.totals.issued,
            static_cast<std::uint64_t>(schedule_opts.clients) *
                schedule_opts.requests_per_client);
  EXPECT_EQ(report.totals.issued,
            report.totals.ok + report.totals.http_4xx + report.totals.http_5xx +
                report.totals.shed + report.totals.transport_errors);
  EXPECT_GT(report.totals.ok, 0u);
  EXPECT_GT(report.totals.http_4xx, 0u);  // 404s and 429s
  EXPECT_GT(report.totals.http_5xx, 0u);  // injected 500s
  EXPECT_EQ(report.totals.transport_errors, 0u);  // in-process: no transport

  // The metrics families mirror the report totals.
  const auto snapshot = registry.snapshot();
  const auto* ok = snapshot.find_counter("load_requests_total", "ok");
  ASSERT_NE(ok, nullptr);
  EXPECT_EQ(ok->value, report.totals.ok);
}

TEST_F(LoadRunTest, OpenLoopOverSocketsAccountingInvariant) {
  crawlersim::ServicePolicy policy;
  policy.rate_per_second = 1e9;
  policy.burst = 1e9;
  crawlersim::AppstoreService service(*generated_->store, policy);
  service.set_day(60);

  chaos::VirtualClock clock;  // arrival sleeps advance virtually: instant run
  ScheduleOptions schedule_opts = schedule_options();
  schedule_opts.open_loop_rate_hz = 200.0;
  RunOptions options;
  options.service = &service;
  options.over_sockets = true;
  options.clock = &clock;
  const RunReport report = run(build_schedule(schedule_opts), options);

  EXPECT_EQ(report.totals.issued,
            report.totals.ok + report.totals.http_4xx + report.totals.http_5xx +
                report.totals.shed + report.totals.transport_errors);
  EXPECT_EQ(report.totals.ok, report.totals.issued);  // nothing throttled
  EXPECT_GT(clock.elapsed().count(), 0);              // pacing used the clock
}

TEST_F(LoadRunTest, DeterministicOutcomesAtAnyWorkerCount) {
  // In-process, closed-loop, per-client rate limiting and seeded targets:
  // totals must not depend on how many client threads issue the load.
  for (const std::uint32_t clients : {1u, 4u}) {
    crawlersim::ServicePolicy policy;
    policy.rate_per_second = 1e9;
    policy.burst = 1e9;
    crawlersim::AppstoreService service(*generated_->store, policy);
    service.set_day(60);
    ScheduleOptions schedule_opts = schedule_options();
    schedule_opts.clients = clients;
    RunOptions options;
    options.service = &service;
    const RunReport report = run(build_schedule(schedule_opts), options);
    EXPECT_EQ(report.totals.ok, report.totals.issued)
        << clients << " clients: all requests against an unthrottled service succeed";
  }
}

// ---- latency SLO smoke ---------------------------------------------------------

TEST_F(LoadRunTest, CachedEndpointsMeetGenerousP99Budget) {
  crawlersim::ServicePolicy policy;
  policy.rate_per_second = 1e9;
  policy.burst = 1e9;
  crawlersim::AppstoreService service(*generated_->store, policy);
  service.set_day(60);

  ScheduleOptions schedule_opts = schedule_options();
  schedule_opts.requests_per_client = 300;
  schedule_opts.mix.meta_weight = 0.3;
  schedule_opts.mix.apps_weight = 0.7;
  schedule_opts.mix.app_weight = 0.0;
  schedule_opts.mix.comments_weight = 0.0;
  RunOptions options;
  options.service = &service;
  const RunReport report = run(build_schedule(schedule_opts), options);

  ASSERT_EQ(report.totals.ok, report.totals.issued);
  // Generous SLO: in-process cached responses are microseconds; 50ms leaves
  // three orders of magnitude of headroom for slow CI machines while still
  // catching an accidentally quadratic (or lock-convoyed) fast path.
  for (const EndpointLatency& latency : report.latency) {
    if (latency.count == 0) continue;
    EXPECT_LT(latency.p99, 0.050) << latency.endpoint;
    EXPECT_LE(latency.p50, latency.p99) << latency.endpoint;
  }
}

// ---- report JSON ---------------------------------------------------------------

TEST(LoadReport, JsonRoundTripsThroughParser) {
  RunReport report;
  report.schedule.seed = 7;
  report.schedule.clients = 8;
  report.schedule.requests_per_client = 100;
  report.over_sockets = true;
  report.totals = {800, 700, 10, 5, 85, 0};
  report.totals.shed_accept = 3;
  report.totals.shed_queue = 2;
  report.totals.shed_admission = 80;
  report.wall_seconds = 1.25;
  report.throughput_rps = 640.0;
  report.latency.push_back({"meta", 160, 0.001, 0.0008, 0.002, 0.004});

  ServingComparison comparison;
  comparison.baseline = report;
  comparison.worker_pool = report;
  comparison.worker_pool.throughput_rps = 3200.0;
  comparison.speedup = 5.0;
  comparison.cache_hits = 750;
  comparison.cache_misses = 50;

  const auto parsed = crawlersim::parse_json(to_json(comparison).dump());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_DOUBLE_EQ(parsed->at("speedup").as_number(), 5.0);
  EXPECT_EQ(parsed->at("response_cache_hits").as_u64(), 750u);
  const auto& baseline = parsed->at("baseline_thread_per_connection");
  EXPECT_EQ(baseline.at("totals").at("issued").as_u64(), 800u);
  const auto& breakdown = baseline.at("totals").at("shed_breakdown");
  EXPECT_EQ(breakdown.at("accept").as_u64(), 3u);
  EXPECT_EQ(breakdown.at("queue").as_u64(), 2u);
  EXPECT_EQ(breakdown.at("admission").as_u64(), 80u);
  EXPECT_EQ(baseline.at("latency").as_array().size(), 1u);
  EXPECT_DOUBLE_EQ(
      baseline.at("latency").as_array()[0].at("p99_seconds").as_number(), 0.004);
}

}  // namespace
}  // namespace appstore::load
