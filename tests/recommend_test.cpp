// Tests for the §7 recommender substrate.
#include <gtest/gtest.h>

#include <algorithm>

#include "models/app_clustering_model.hpp"
#include "recommend/recommender.hpp"

namespace appstore::recommend {
namespace {

/// Tiny hand-built dataset: 6 apps in 2 categories, 4 users.
/// Downloads: app 0 is globally hottest; apps 0+1 co-downloaded a lot.
Dataset small_dataset() {
  Dataset dataset;
  dataset.app_count = 6;
  dataset.app_category = {0, 0, 0, 1, 1, 1};
  dataset.user_sequences = {
      {0, 1},        // users pairing 0 and 1
      {0, 1, 2},
      {0, 1},
      {3, 4},        // category-1 fans
      {0, 5},
  };
  return dataset;
}

TEST(Popularity, RecommendsGlobalTopExcludingHistory) {
  PopularityRecommender recommender;
  recommender.train(small_dataset());
  // App 0 has 4 downloads, app 1 has 3.
  const auto top = recommender.recommend(std::vector<std::uint32_t>{}, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0], 0u);
  EXPECT_EQ(top[1], 1u);
  // History is excluded.
  const std::vector<std::uint32_t> history = {0};
  const auto rest = recommender.recommend(history, 2);
  EXPECT_EQ(rest[0], 1u);
}

TEST(Category, FollowsMostRecentCategory) {
  CategoryRecommender recommender;
  recommender.train(small_dataset());
  // Last download in category 1 -> recommend popular category-1 apps first.
  const std::vector<std::uint32_t> history = {0, 3};
  const auto recommendations = recommender.recommend(history, 2);
  ASSERT_EQ(recommendations.size(), 2u);
  EXPECT_EQ(recommender.name(), "CATEGORY");
  for (const auto app : recommendations) {
    EXPECT_NE(app, 3u);  // history excluded
  }
  EXPECT_EQ(small_dataset().app_category[recommendations[0]], 1u);
}

TEST(Category, FallsBackToGlobalWhenCategoryExhausted) {
  CategoryRecommender recommender;
  recommender.train(small_dataset());
  // All category-1 apps in history: must pad from global popularity.
  const std::vector<std::uint32_t> history = {3, 4, 5};
  const auto recommendations = recommender.recommend(history, 2);
  ASSERT_EQ(recommendations.size(), 2u);
  EXPECT_EQ(recommendations[0], 0u);
}

TEST(ItemCf, CoDownloadDrivesSimilarity) {
  ItemCfRecommender recommender;
  recommender.train(small_dataset());
  // Users who downloaded app 0 overwhelmingly also downloaded app 1.
  const std::vector<std::uint32_t> history = {0};
  const auto recommendations = recommender.recommend(history, 1);
  ASSERT_EQ(recommendations.size(), 1u);
  EXPECT_EQ(recommendations[0], 1u);
}

TEST(ItemCf, NeverRecommendsHistory) {
  ItemCfRecommender recommender;
  recommender.train(small_dataset());
  const std::vector<std::uint32_t> history = {0, 1, 2};
  const auto recommendations = recommender.recommend(history, 6);
  for (const auto app : recommendations) {
    EXPECT_TRUE(std::find(history.begin(), history.end(), app) == history.end());
  }
}

TEST(Hybrid, BoostsRecentCategory) {
  HybridRecommender recommender(/*neighbors=*/30, /*recent_window=*/1,
                                /*recency_boost=*/100.0F);
  recommender.train(small_dataset());
  // Recent download in category 1; with an extreme boost every category-1
  // candidate should outrank category-0 ones.
  const std::vector<std::uint32_t> history = {0, 3};
  const auto recommendations = recommender.recommend(history, 2);
  ASSERT_FALSE(recommendations.empty());
  EXPECT_EQ(small_dataset().app_category[recommendations[0]], 1u);
}

TEST(Eval, LeaveLastOutSplitsCorrectly) {
  const Dataset dataset = small_dataset();
  std::vector<std::uint32_t> held_out;
  const Dataset truncated = leave_last_out(dataset, held_out);
  ASSERT_EQ(held_out.size(), dataset.user_sequences.size());
  EXPECT_EQ(held_out[0], 1u);
  EXPECT_EQ(truncated.user_sequences[0].size(), 1u);
  EXPECT_EQ(truncated.user_sequences[1].size(), 2u);
}

TEST(Eval, HitRateCountsTopKMembership) {
  const Dataset dataset = small_dataset();
  std::vector<std::uint32_t> held_out;
  const Dataset truncated = leave_last_out(dataset, held_out);
  PopularityRecommender recommender;
  recommender.train(truncated);
  const EvalResult result = evaluate(recommender, truncated, held_out, 3);
  EXPECT_EQ(result.users_evaluated, 5u);
  EXPECT_GT(result.hit_rate(), 0.0);
  EXPECT_LE(result.hit_rate(), 1.0);
}

TEST(Eval, ClusteringAwareBeatsPopularityOnClusteredData) {
  // Generate sequences from APP-CLUSTERING: the clustering-aware strategies
  // must recover held-out downloads more often than plain popularity — the
  // §7 claim this module exists to demonstrate.
  models::ModelParams params;
  params.app_count = 400;
  params.user_count = 1200;
  params.downloads_per_user = 12.0;
  params.zr = 1.3;
  params.zc = 1.3;
  params.p = 0.92;
  params.cluster_count = 20;
  const auto layout = models::ClusterLayout::round_robin(400, 20);
  const models::AppClusteringModel model(params, layout);
  util::Rng rng(99);
  const auto workload = model.generate(rng, true);

  Dataset dataset;
  dataset.app_count = params.app_count;
  dataset.app_category.resize(params.app_count);
  for (std::uint32_t a = 0; a < params.app_count; ++a) {
    dataset.app_category[a] = layout.cluster_of(a);
  }
  dataset.user_sequences = workload.user_sequences();

  std::vector<std::uint32_t> held_out;
  const Dataset truncated = leave_last_out(dataset, held_out);

  PopularityRecommender popularity;
  popularity.train(truncated);
  CategoryRecommender category;
  category.train(truncated);
  HybridRecommender hybrid;
  hybrid.train(truncated);

  constexpr std::size_t kTopK = 10;
  const double popularity_rate = evaluate(popularity, truncated, held_out, kTopK).hit_rate();
  const double category_rate = evaluate(category, truncated, held_out, kTopK).hit_rate();
  const double hybrid_rate = evaluate(hybrid, truncated, held_out, kTopK).hit_rate();

  EXPECT_GT(category_rate, popularity_rate);
  EXPECT_GT(hybrid_rate, popularity_rate);
}

}  // namespace
}  // namespace appstore::recommend
