// Tests for the pricing/revenue analyses (§6, Figs. 12-18).
#include <gtest/gtest.h>

#include "pricing/breakeven.hpp"
#include "pricing/income.hpp"
#include "pricing/strategies.hpp"
#include "synth/generator.hpp"

namespace appstore::pricing {
namespace {

/// Hand-built store with known revenue arithmetic:
///   dev0: paid app A ($2.00, 10 downloads) + free app C (ads, 100 downloads)
///   dev1: paid app B ($5.00, 2 downloads)
///   dev2: free app D (no ads, 50 downloads)
market::AppStore make_revenue_store() {
  market::AppStore store("revenue");
  const auto games = store.add_category("games");
  const auto music = store.add_category("music");
  const auto dev0 = store.add_developer("dev0");
  const auto dev1 = store.add_developer("dev1");
  const auto dev2 = store.add_developer("dev2");
  store.add_users(200);

  const auto app_a = store.add_app("A", dev0, games, market::Pricing::kPaid, 200, 0);
  const auto app_b = store.add_app("B", dev1, music, market::Pricing::kPaid, 500, 0);
  const auto app_c = store.add_app("C", dev0, games, market::Pricing::kFree, 0, 0);
  const auto app_d = store.add_app("D", dev2, music, market::Pricing::kFree, 0, 0);
  store.set_has_ads(app_c, true);

  for (std::uint32_t u = 0; u < 10; ++u) store.record_download(market::UserId{u}, app_a, 1);
  for (std::uint32_t u = 0; u < 2; ++u) store.record_download(market::UserId{u}, app_b, 1);
  for (std::uint32_t u = 0; u < 100; ++u) store.record_download(market::UserId{u}, app_c, 1);
  for (std::uint32_t u = 0; u < 50; ++u) store.record_download(market::UserId{u}, app_d, 1);
  return store;
}

// ---- income ------------------------------------------------------------------

TEST(Income, AppRevenueExact) {
  const auto store = make_revenue_store();
  EXPECT_DOUBLE_EQ(app_revenue_dollars(store, market::AppId{0}), 20.0);  // 10 x $2
  EXPECT_DOUBLE_EQ(app_revenue_dollars(store, market::AppId{1}), 10.0);  // 2 x $5
  EXPECT_DOUBLE_EQ(app_revenue_dollars(store, market::AppId{2}), 0.0);   // free
}

TEST(Income, DeveloperIncomesOnlyPaidDevelopers) {
  const auto store = make_revenue_store();
  const auto incomes = developer_incomes(store);
  ASSERT_EQ(incomes.size(), 2u);  // dev2 has no paid apps
  EXPECT_DOUBLE_EQ(incomes[0].income_dollars, 20.0);
  EXPECT_EQ(incomes[0].paid_apps, 1u);
  EXPECT_EQ(incomes[0].free_apps, 1u);
  EXPECT_DOUBLE_EQ(incomes[1].income_dollars, 10.0);
}

TEST(Income, AveragePriceUsedForRevenue) {
  auto store = make_revenue_store();
  store.set_price(market::AppId{0}, 400, 5);  // average price now $3
  EXPECT_DOUBLE_EQ(app_revenue_dollars(store, market::AppId{0}), 30.0);
}

TEST(Income, CorrelationDefinedOnTwoPlusDevelopers) {
  const auto store = make_revenue_store();
  const auto incomes = developer_incomes(store);
  const double correlation = income_app_count_correlation(incomes);
  EXPECT_GE(correlation, -1.0);
  EXPECT_LE(correlation, 1.0);
}

TEST(Income, CategoryBreakdownSumsTo100) {
  const auto store = make_revenue_store();
  const auto breakdown = category_revenue_breakdown(store);
  double revenue_total = 0.0;
  double apps_total = 0.0;
  for (const auto& row : breakdown) {
    revenue_total += row.revenue_percent;
    apps_total += row.apps_percent;
  }
  EXPECT_NEAR(revenue_total, 100.0, 1e-9);
  EXPECT_NEAR(apps_total, 100.0, 1e-9);
  // games: $20 of $30 revenue.
  EXPECT_EQ(breakdown[0].name, "games");
  EXPECT_NEAR(breakdown[0].revenue_percent, 100.0 * 20.0 / 30.0, 1e-9);
}

TEST(Income, PricePopularityCorrelations) {
  const auto store = make_revenue_store();
  const auto result = price_popularity(store);
  ASSERT_EQ(result.prices.size(), 2u);
  // Cheaper app A has more downloads than pricier B: negative correlation.
  EXPECT_LT(result.price_download_correlation, 0.0);
}

// ---- break-even (Eq. 7) ----------------------------------------------------------

TEST(Breakeven, ExactOnHandBuiltStore) {
  const auto store = make_revenue_store();
  // avg paid income = (20 + 10) / 2 = 15; avg ad-free downloads = 100 (only C).
  const auto value = breakeven_ad_income(store);
  ASSERT_TRUE(value.has_value());
  EXPECT_NEAR(*value, 15.0 / 100.0, 1e-12);
}

TEST(Breakeven, NulloptWithoutPaidApps) {
  market::AppStore store("free-only");
  const auto c = store.add_category("c");
  const auto d = store.add_developer("d");
  store.add_users(1);
  const auto app = store.add_app("x", d, c, market::Pricing::kFree, 0, 0);
  store.set_has_ads(app, true);
  store.record_download(market::UserId{0}, app, 0);
  EXPECT_FALSE(breakeven_ad_income(store).has_value());
}

TEST(Breakeven, IgnoresAdFreeApps) {
  auto store = make_revenue_store();
  // App D has no ads: adding downloads to it must not change the result.
  const auto before = breakeven_ad_income(store);
  for (std::uint32_t u = 100; u < 150; ++u) {
    store.record_download(market::UserId{u}, market::AppId{3}, 2);
  }
  const auto after = breakeven_ad_income(store);
  EXPECT_DOUBLE_EQ(*before, *after);
}

TEST(Breakeven, TierOrdering) {
  // Popular apps need LESS ad income per download than unpopular ones.
  synth::GeneratorConfig config;
  config.app_scale = 0.10;
  config.download_scale = 2e-4;
  const auto generated = synth::generate(synth::slideme(), config);
  const auto tiers = breakeven_by_tier(*generated.store);
  ASSERT_TRUE(tiers.has_value());
  EXPECT_LT(tiers->popular, tiers->average);
  EXPECT_LT(tiers->average, tiers->unpopular);
  EXPECT_GT(tiers->popular, 0.0);
}

TEST(Breakeven, OverTimeSeriesDecreasesAsFreeDownloadsGrow) {
  // Uses the Fig.-17 reconciliation profile (see slideme_fig17 docs): free
  // per-app downloads outgrow paid per-app downloads across the window, so
  // the break-even ad income declines — the figure's headline dynamic.
  synth::GeneratorConfig config;
  config.app_scale = 0.10;
  config.download_scale = 2e-4;
  const auto generated = synth::generate(synth::slideme_fig17(), config);
  const auto series = breakeven_over_time(*generated.store, 0, 150, 30);
  ASSERT_GE(series.size(), 4u);
  EXPECT_LT(series.back().tiers.average, series.front().tiers.average);
  for (const auto& point : series) {
    EXPECT_GT(point.tiers.average, 0.0);
  }
}

TEST(Breakeven, PerCategorySpread) {
  synth::GeneratorConfig config;
  config.app_scale = 0.12;
  config.download_scale = 3e-4;
  const auto generated = synth::generate(synth::slideme(), config);
  const auto rows = breakeven_by_category(*generated.store);
  ASSERT_GT(rows.size(), 5u);
  // Sorted descending and music should be near the top (Fig. 18).
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_GE(rows[i - 1].breakeven_dollars, rows[i].breakeven_dollars);
  }
  std::size_t music_position = rows.size();
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (rows[i].name == "music") music_position = i;
  }
  ASSERT_LT(music_position, rows.size());
  EXPECT_LT(music_position, 4u);
}

// ---- strategies --------------------------------------------------------------------

TEST(Strategies, AppsPerDeveloperFiltered) {
  const auto store = make_revenue_store();
  const auto paid = apps_per_developer(store, market::Pricing::kPaid);
  const auto free = apps_per_developer(store, market::Pricing::kFree);
  EXPECT_EQ(paid.size(), 2u);
  EXPECT_EQ(free.size(), 2u);
}

TEST(Strategies, CategoriesPerDeveloper) {
  const auto store = make_revenue_store();
  const auto counts = categories_per_developer(store, market::Pricing::kPaid);
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_DOUBLE_EQ(counts[0], 1.0);
}

TEST(Strategies, SharesOnHandBuiltStore) {
  const auto store = make_revenue_store();
  const auto shares = strategy_shares(store);
  EXPECT_EQ(shares.developers, 3u);
  EXPECT_NEAR(shares.both, 1.0 / 3.0, 1e-12);       // dev0
  EXPECT_NEAR(shares.paid_only, 1.0 / 3.0, 1e-12);  // dev1
  EXPECT_NEAR(shares.free_only, 1.0 / 3.0, 1e-12);  // dev2
}

TEST(Strategies, GeneratedSlidemeMatchesCalibration) {
  synth::GeneratorConfig config;
  config.app_scale = 0.10;
  config.download_scale = 1e-4;
  const auto generated = synth::generate(synth::slideme(), config);
  const auto shares = strategy_shares(*generated.store);
  // §6.3: 75% free-only, 15% paid-only, 10% both (per-developer strategy
  // draws; tolerate sampling noise and capacity effects).
  EXPECT_NEAR(shares.free_only, 0.75, 0.08);
  EXPECT_NEAR(shares.paid_only, 0.15, 0.06);
  EXPECT_NEAR(shares.both, 0.10, 0.06);

  const auto apps_free = apps_per_developer(*generated.store, market::Pricing::kFree);
  std::size_t singles = 0;
  for (const double count : apps_free) {
    if (count == 1.0) ++singles;
  }
  // Fig. 16a: ~60% of free developers have exactly one app.
  EXPECT_NEAR(static_cast<double>(singles) / static_cast<double>(apps_free.size()), 0.62,
              0.12);
}

}  // namespace
}  // namespace appstore::pricing
