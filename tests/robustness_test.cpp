// Robustness harness: seeded fault plans replayed against a real in-process
// service/crawler pair, and fuzzed corruption of the binary persistence
// formats.
//
// The headline property: a crawl with injected faults (connection resets,
// synthetic 500s, latency) recovers to a bit-identical observations
// database vs the fault-free crawl, at any thread count, with all waiting
// done in virtual time (chaos::VirtualClock) so the whole scenario replays
// in well under a second of wall clock.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>

#include "chaos/clock.hpp"
#include "chaos/fault.hpp"
#include "chaos/file_faults.hpp"
#include "crawler/crawler.hpp"
#include "crawler/database.hpp"
#include "crawler/db_io.hpp"
#include "crawler/service.hpp"
#include "events/binary.hpp"
#include "events/io.hpp"
#include "events/live_io.hpp"
#include "net/breaker.hpp"
#include "net/proxy.hpp"
#include "obs/registry.hpp"
#include "synth/generator.hpp"
#include "util/format.hpp"
#include "util/rng.hpp"

namespace appstore {
namespace {

using namespace std::chrono_literals;

[[nodiscard]] std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// ---- decorrelated-jitter backoff --------------------------------------------------

TEST(DecorrelatedBackoff, StaysWithinBounds) {
  util::Rng rng(99);
  const auto base = 20ms;
  const auto cap = 320ms;
  auto previous = base;
  for (int i = 0; i < 200; ++i) {
    previous = crawlersim::decorrelated_backoff(base, cap, previous, rng);
    EXPECT_GE(previous, base);
    EXPECT_LE(previous, cap);
  }
}

TEST(DecorrelatedBackoff, ScheduleIsDeterministicGivenSeed) {
  const auto schedule = [](std::uint64_t seed) {
    util::Rng rng(seed);
    std::vector<std::chrono::milliseconds> delays;
    auto previous = 20ms;
    for (int i = 0; i < 8; ++i) {
      previous = crawlersim::decorrelated_backoff(20ms, 320ms, previous, rng);
      delays.push_back(previous);
    }
    return delays;
  };
  EXPECT_EQ(schedule(0x5eed), schedule(0x5eed));
  EXPECT_NE(schedule(0x5eed), schedule(0x5eee));  // jitter actually varies
}

TEST(DecorrelatedBackoff, GrowthIsCappedByTriplePrevious) {
  util::Rng rng(1);
  // From previous == base the draw is bounded by 3 * base.
  for (int i = 0; i < 100; ++i) {
    const auto next = crawlersim::decorrelated_backoff(20ms, 10000ms, 20ms, rng);
    EXPECT_LE(next, 60ms);
  }
}

// ---- proxy quarantine entry/exit --------------------------------------------------

TEST(ProxyQuarantine, EntryAfterConsecutiveFailuresAndExitOnReinstate) {
  net::ProxyPool pool(4, {net::Region::kEurope});
  EXPECT_EQ(pool.healthy_count(), 4u);

  pool.report_failure(0);
  pool.report_failure(0);
  EXPECT_EQ(pool.healthy_count(), 4u);  // below the threshold
  pool.report_failure(0);               // third consecutive failure quarantines
  EXPECT_EQ(pool.healthy_count(), 3u);
  EXPECT_TRUE(pool.proxy(0).quarantined);

  util::Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    const auto pick = pool.pick(rng);
    ASSERT_TRUE(pick.has_value());
    EXPECT_NE(*pick, 0u);  // quarantined proxies are never picked
  }

  pool.reinstate(0);
  EXPECT_EQ(pool.healthy_count(), 4u);
  EXPECT_FALSE(pool.proxy(0).quarantined);
  EXPECT_EQ(pool.proxy(0).consecutive_failures, 0u);
}

TEST(ProxyQuarantine, SuccessResetsTheFailureStreak) {
  net::ProxyPool pool(2, {net::Region::kUsa});
  pool.report_failure(1);
  pool.report_failure(1);
  pool.report_success(1);  // streak broken
  pool.report_failure(1);
  pool.report_failure(1);
  EXPECT_EQ(pool.healthy_count(), 2u);  // never reached three in a row
}

// ---- breaker half-open probe budget -----------------------------------------------

TEST(BreakerProbes, HalfOpenAdmitsConfiguredProbeCount) {
  chaos::VirtualClock clock;
  net::CircuitBreaker::Options options;
  options.failure_threshold = 1;
  options.open_timeout = 100ms;
  options.half_open_probes = 2;
  options.success_threshold = 2;
  options.clock = &clock;
  net::CircuitBreaker breaker(options);

  EXPECT_TRUE(breaker.record_failure());
  clock.advance(101ms);
  EXPECT_TRUE(breaker.allow());
  EXPECT_TRUE(breaker.allow());   // two probes admitted
  EXPECT_FALSE(breaker.allow());  // third is rejected
  breaker.record_success();
  EXPECT_EQ(breaker.state(), net::CircuitBreaker::State::kHalfOpen);  // needs two
  breaker.record_success();
  EXPECT_EQ(breaker.state(), net::CircuitBreaker::State::kClosed);
}

// ---- crawler robustness (service + crawler over loopback) -------------------------

class RobustnessFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    synth::GeneratorConfig config;
    config.app_scale = 0.002;      // ~120 apps
    config.download_scale = 2e-6;  // ~5.6k downloads
    config.comments = true;
    config.seed = 11;
    generated_ =
        std::make_unique<synth::GeneratedStore>(synth::generate(synth::anzhi(), config));
  }

  struct CrawlRun {
    crawlersim::CrawlStats stats;   ///< totals over both crawl days
    std::uint64_t injected = 0;     ///< faults the injector fired
    std::string database_bytes;     ///< all four persisted files, concatenated
    std::chrono::nanoseconds wall{0};
  };

  /// One complete two-day crawl against `service`, optionally under the
  /// seeded fault plan, persisted into `dir`.
  CrawlRun run_crawl(crawlersim::AppstoreService& service, chaos::VirtualClock& clock,
                     std::uint64_t fault_seed, bool faulted, std::size_t threads,
                     const std::filesystem::path& dir) {
    chaos::FaultPlan plan;
    plan.seed = fault_seed;
    plan.max_faults_per_key = 2;  // < max_attempts: every target recovers
    plan.rules.push_back(
        {chaos::FaultSite::kExchange, chaos::FaultKind::kConnectionReset, 0.06, {}});
    plan.rules.push_back({chaos::FaultSite::kExchange, chaos::FaultKind::kHttp500, 0.06, {}});
    plan.rules.push_back({chaos::FaultSite::kExchange, chaos::FaultKind::kLatency, 0.05, 100ms});
    std::optional<chaos::FaultInjector> injector;
    if (faulted) injector.emplace(plan);

    crawlersim::CrawlDatabase database;
    crawlersim::CrawlerOptions options;
    options.port = service.port();
    options.proxy_count = 6;
    options.seed = 0x5eed;
    options.threads = threads;
    options.fetch_comments = true;
    options.fetch_apks = true;
    options.breaker.failure_threshold = 0;  // breaker off: pure retry schedule
    options.clock = &clock;
    options.faults = faulted ? &*injector : nullptr;
    crawlersim::Crawler crawler(options, database);

    const auto wall_start = std::chrono::steady_clock::now();
    for (const market::Day day : {market::Day{30}, market::Day{40}}) {
      service.set_day(day);
      (void)crawler.crawl_day(day);
    }
    CrawlRun run;
    run.wall = std::chrono::steady_clock::now() - wall_start;
    run.stats = crawler.totals();
    if (injector.has_value()) run.injected = injector->injected_total();
    crawlersim::save_database(database, dir);
    run.database_bytes = read_file(dir / "observations.bin") + read_file(dir / "apps.csv") +
                         read_file(dir / "observations.csv") +
                         read_file(dir / "apk_scans.csv");
    return run;
  }

  std::unique_ptr<synth::GeneratedStore> generated_;
};

// The headline deliverable: seeded fault replay recovers bit-identically.
TEST_F(RobustnessFixture, FaultedCrawlRecoversBitIdenticallyAcrossThreadCounts) {
  chaos::VirtualClock clock;
  crawlersim::ServicePolicy policy;
  policy.rate_per_second = 1e9;  // no genuine 429s: isolate injected faults
  policy.burst = 1e9;
  crawlersim::AppstoreService service(*generated_->store, policy, 0, clock.time_fn());

  const auto base = std::filesystem::path(::testing::TempDir()) / "robustness_identical";
  const CrawlRun clean = run_crawl(service, clock, 0, /*faulted=*/false, 1, base / "clean");
  ASSERT_GT(clean.stats.apps_observed, 0u);
  ASSERT_FALSE(clean.database_bytes.empty());

  int run_index = 0;
  for (const std::uint64_t fault_seed : {0xabcULL, 0x123ULL}) {
    std::vector<CrawlRun> runs;
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      const auto virtual_before = clock.elapsed();
      runs.push_back(run_crawl(service, clock, fault_seed, /*faulted=*/true, threads,
                               base / util::format("faulted_{}", run_index++)));
      // All waiting happened in virtual time: the crawl replays fast even
      // though it slept through dozens of injected latencies and backoffs.
      EXPECT_GT(clock.elapsed(), virtual_before);
      EXPECT_LT(runs.back().wall, 5s);
    }

    // Bit-identical recovery: the faulty runs persist byte-for-byte the
    // same database as the fault-free run, at 1 and at 4 threads.
    EXPECT_EQ(runs[0].database_bytes, clean.database_bytes)
        << "single-threaded faulted crawl diverged (seed " << fault_seed << ")";
    EXPECT_EQ(runs[1].database_bytes, clean.database_bytes)
        << "multi-threaded faulted crawl diverged (seed " << fault_seed << ")";

    // The full CrawlStats are thread-count-invariant too.
    EXPECT_EQ(runs[0].stats, runs[1].stats);

    // The scenario is not trivial: faults hit >= 10% of completed requests.
    EXPECT_GE(runs[0].injected * 10, runs[0].stats.requests);
    EXPECT_GT(runs[0].stats.transient_failures, 0u);
  }
}

TEST_F(RobustnessFixture, VirtualClockLetsRateLimitedCrawlFinishFast) {
  chaos::VirtualClock clock;
  crawlersim::ServicePolicy policy;
  policy.rate_per_second = 50.0;  // tight: the crawl must wait for refills
  policy.burst = 5.0;
  crawlersim::AppstoreService service(*generated_->store, policy, 0, clock.time_fn());

  crawlersim::CrawlDatabase database;
  crawlersim::CrawlerOptions options;
  options.port = service.port();
  options.proxy_count = 2;  // few identities: the per-client buckets saturate
  options.clock = &clock;
  crawlersim::Crawler crawler(options, database);

  service.set_day(30);
  const auto wall_start = std::chrono::steady_clock::now();
  const crawlersim::CrawlStats stats = crawler.crawl_day(30);
  const auto wall = std::chrono::steady_clock::now() - wall_start;

  EXPECT_GT(stats.rate_limited, 0u);  // the limiter really pushed back
  EXPECT_GT(stats.apps_observed, 0u);
  EXPECT_EQ(stats.apps_observed, database.apps().size());  // and yet: complete
  EXPECT_GT(clock.elapsed(), 0ns);  // backoffs advanced virtual time
  EXPECT_LT(wall, 10s);             // ...instead of wall time
}

TEST_F(RobustnessFixture, BreakerOpensOnRepeatedResetsAndCrawlCompletes) {
  chaos::VirtualClock clock;
  crawlersim::ServicePolicy policy;
  policy.rate_per_second = 1e9;
  policy.burst = 1e9;
  crawlersim::AppstoreService service(*generated_->store, policy, 0, clock.time_fn());

  chaos::FaultPlan plan;
  plan.seed = 77;
  plan.max_faults_per_key = 3;
  plan.rules.push_back(
      {chaos::FaultSite::kExchange, chaos::FaultKind::kConnectionReset, 0.4, {}});
  chaos::FaultInjector injector(plan);

  obs::Registry registry;
  crawlersim::CrawlDatabase database;
  crawlersim::CrawlerOptions options;
  options.port = service.port();
  options.proxy_count = 4;
  options.clock = &clock;
  options.faults = &injector;
  options.breaker.failure_threshold = 1;  // hair-trigger: every reset trips
  options.breaker.open_timeout = 50ms;
  options.metrics = &registry;
  crawlersim::Crawler crawler(options, database);

  service.set_day(30);
  const crawlersim::CrawlStats stats = crawler.crawl_day(30);

  EXPECT_GT(stats.apps_observed, 0u);
  EXPECT_EQ(stats.apps_observed, database.apps().size());
  const auto snapshot = registry.snapshot();  // keep alive: find_counter aims into it
  EXPECT_GT(snapshot.find_counter("crawler_breaker_open_total")->value, 0u);

  bool any_breaker_opened = false;
  for (std::size_t i = 0; i < options.proxy_count; ++i) {
    any_breaker_opened = any_breaker_opened || crawler.breaker(i).opened_total() > 0;
  }
  EXPECT_TRUE(any_breaker_opened);
  // Transient failures no longer quarantine: the pool stays whole, the
  // breakers did the (temporary) isolation.
  EXPECT_EQ(crawler.proxies().healthy_count(), 4u);
}

// ---- typed load errors ------------------------------------------------------------

class TypedLoadErrorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::path(::testing::TempDir()) / "robustness_typed";
    std::filesystem::create_directories(dir_);
    path_ = dir_ / "log.bin";
    log_ = events::EventLog(events::Columns::kDay | events::Columns::kOrdinal |
                            events::Columns::kRating);
    for (std::uint32_t i = 0; i < 100; ++i) {
      log_.append(i % 7, i % 13, static_cast<std::int32_t>(i % 30), i,
                  static_cast<std::uint8_t>(i % 5 + 1));
    }
    events::save_binary(log_, path_);
  }

  /// Loads and reports the typed kind, or nullopt on clean success.
  [[nodiscard]] std::optional<events::binary::LoadErrorKind> load_kind() {
    try {
      (void)events::load_binary(path_);
      return std::nullopt;
    } catch (const events::binary::LoadError& error) {
      return error.kind();
    }
  }

  void restore() { events::save_binary(log_, path_); }

  std::filesystem::path dir_;
  std::filesystem::path path_;
  events::EventLog log_;
};

TEST_F(TypedLoadErrorTest, EveryHeaderDefectHasItsKind) {
  using events::binary::LoadErrorKind;

  chaos::flip_byte(path_, 0, 0xff);  // magic
  EXPECT_EQ(load_kind(), LoadErrorKind::kBadMagic);
  restore();

  chaos::flip_byte(path_, 4, 0xff);  // endian tag
  EXPECT_EQ(load_kind(), LoadErrorKind::kEndianness);
  restore();

  chaos::flip_byte(path_, 8, 0x02);  // version 1 -> 3
  EXPECT_EQ(load_kind(), LoadErrorKind::kBadVersion);
  restore();

  chaos::flip_byte(path_, 12, 0x80);  // unknown flag bit
  EXPECT_EQ(load_kind(), LoadErrorKind::kBadFlags);
  restore();

  chaos::flip_byte(path_, 16, 0x01);  // count off by one
  EXPECT_EQ(load_kind(), LoadErrorKind::kLengthMismatch);
  restore();

  chaos::truncate_file(path_, 6);  // EOF inside the endian tag
  EXPECT_EQ(load_kind(), LoadErrorKind::kTruncated);
  restore();

  {
    std::ofstream out(path_, std::ios::binary | std::ios::app);
    out.put('\0');  // trailing garbage
  }
  EXPECT_EQ(load_kind(), LoadErrorKind::kLengthMismatch);
  restore();

  EXPECT_EQ(load_kind(), std::nullopt);  // pristine file loads clean
}

TEST_F(TypedLoadErrorTest, MissingFileIsATypedOpenError) {
  try {
    (void)events::load_binary(dir_ / "does_not_exist.bin");
    FAIL() << "expected LoadError";
  } catch (const events::binary::LoadError& error) {
    EXPECT_EQ(error.kind(), events::binary::LoadErrorKind::kOpen);
  }
}

TEST_F(TypedLoadErrorTest, CorruptedCountCannotTriggerGiantAllocation) {
  // Set the count field to ~2^56 (flip the top byte): the loader must fail
  // on the payload-length check before allocating anything.
  chaos::flip_byte(path_, 23, 0x80);
  EXPECT_EQ(load_kind(), events::binary::LoadErrorKind::kLengthMismatch);
}

// ---- seeded corruption fuzz over both binary formats ------------------------------

TEST(CorruptionFuzz, EventLogLoaderSurvives500SeededCorruptions) {
  const auto dir = std::filesystem::path(::testing::TempDir()) / "robustness_fuzz_aevl";
  std::filesystem::create_directories(dir);
  const auto pristine = dir / "pristine.bin";
  const auto work = dir / "work.bin";

  events::EventLog log(events::Columns::kDay | events::Columns::kRating);
  for (std::uint32_t i = 0; i < 200; ++i) {
    log.append(i, i * 31 % 97, static_cast<std::int32_t>(i % 60), 0,
               static_cast<std::uint8_t>(i % 6));
  }
  events::save_binary(log, pristine);

  std::size_t clean = 0;
  std::size_t typed = 0;
  for (std::uint64_t seed = 0; seed < 500; ++seed) {
    std::filesystem::copy_file(pristine, work,
                               std::filesystem::copy_options::overwrite_existing);
    util::Rng rng(util::rng::derive_seed(0xfeed, seed));
    const std::string what = chaos::corrupt_file(work, rng);
    try {
      const events::EventLog loaded = events::load_binary(work);
      // A payload byte flip yields a structurally valid log; that is fine —
      // the loader's contract is structure, not semantics.
      EXPECT_EQ(loaded.size(), log.size()) << what;
      ++clean;
    } catch (const events::binary::LoadError&) {
      ++typed;
    } catch (const std::exception& error) {
      ADD_FAILURE() << "untyped failure after '" << what << "': " << error.what();
    }
  }
  EXPECT_EQ(clean + typed, 500u);
  EXPECT_GT(typed, 0u);  // the corruptions really exercised the validators
}

TEST(CorruptionFuzz, SegmentedLiveLogLoaderSurvives500SeededCorruptions) {
  const auto dir = std::filesystem::path(::testing::TempDir()) / "robustness_fuzz_alsg";
  std::filesystem::create_directories(dir);
  const auto pristine = dir / "pristine.alsg";
  const auto work = dir / "work.alsg";

  // Small segments so corruption regularly lands in segment headers, not
  // just column payloads.
  events::LiveOptions options;
  options.max_rows = 1u << 10;
  options.segment_rows = 1u << 6;
  options.max_users = 256;
  events::LiveEventLog live(events::Columns::kDay | events::Columns::kRating, options);
  for (std::uint32_t i = 0; i < 600; ++i) {
    live.append(i % 256, i * 31 % 97, static_cast<std::int32_t>(i % 60),
                static_cast<std::uint8_t>(1 + i % 5));
  }
  events::save_segmented(live.snapshot(), pristine);

  std::size_t clean = 0;
  std::size_t typed = 0;
  for (std::uint64_t seed = 0; seed < 500; ++seed) {
    std::filesystem::copy_file(pristine, work,
                               std::filesystem::copy_options::overwrite_existing);
    util::Rng rng(util::rng::derive_seed(0xa15b, seed));
    const std::string what = chaos::corrupt_file(work, rng);
    try {
      const auto loaded = events::load_segmented(work, options);
      // A flip confined to app/day/rating payload bytes still loads; user
      // bytes are caught by the max_users bound unless the value stays in
      // range — either way the structure held.
      EXPECT_EQ(loaded->frontier(), live.frontier()) << what;
      ++clean;
    } catch (const events::binary::LoadError&) {
      ++typed;
    } catch (const std::exception& error) {
      ADD_FAILURE() << "untyped failure after '" << what << "': " << error.what();
    }
  }
  EXPECT_EQ(clean + typed, 500u);
  EXPECT_GT(typed, 0u);
}

TEST(CorruptionFuzz, ObservationsLoaderSurvives500SeededCorruptions) {
  const auto dir = std::filesystem::path(::testing::TempDir()) / "robustness_fuzz_aobs";
  std::filesystem::create_directories(dir);

  crawlersim::CrawlDatabase database;
  for (std::uint32_t id = 0; id < 40; ++id) {
    crawlersim::AppRecord record;
    record.id = id;
    record.name = util::format("app-{}", id);
    record.category = "Tools";
    record.developer = util::format("dev-{}", id % 7);
    record.paid = id % 3 == 0;
    record.has_ads = id % 2 == 0;
    for (const market::Day day : {market::Day{5}, market::Day{6}}) {
      crawlersim::AppObservation observation;
      observation.downloads = 100u * id + static_cast<std::uint64_t>(day);
      observation.version = 1 + id % 4;
      observation.price_dollars = id % 3 == 0 ? 0.99 : 0.0;
      database.record(record, day, observation);
    }
  }
  crawlersim::save_database(database, dir);
  const auto pristine = dir / "observations_pristine.bin";
  std::filesystem::copy_file(dir / "observations.bin", pristine,
                             std::filesystem::copy_options::overwrite_existing);

  std::size_t clean = 0;
  std::size_t typed = 0;
  std::size_t rejected = 0;  // structurally fine but semantically refused
  for (std::uint64_t seed = 0; seed < 500; ++seed) {
    std::filesystem::copy_file(pristine, dir / "observations.bin",
                               std::filesystem::copy_options::overwrite_existing);
    util::Rng rng(util::rng::derive_seed(0xab0b5, seed));
    const std::string what = chaos::corrupt_file(dir / "observations.bin", rng);
    try {
      const crawlersim::CrawlDatabase loaded = crawlersim::load_database(dir);
      EXPECT_EQ(loaded.apps().size(), database.apps().size()) << what;
      ++clean;
    } catch (const events::binary::LoadError&) {
      ++typed;
    } catch (const std::runtime_error&) {
      ++rejected;  // e.g. a flipped app id pointing at an unknown app
    } catch (const std::exception& error) {
      ADD_FAILURE() << "untyped failure after '" << what << "': " << error.what();
    }
  }
  EXPECT_EQ(clean + typed + rejected, 500u);
  EXPECT_GT(typed, 0u);
}

}  // namespace
}  // namespace appstore
