// Unit tests for the temporal affinity machinery (§4, Eq. 1-4).
#include <gtest/gtest.h>

#include <cmath>

#include "affinity/metric.hpp"
#include "affinity/strings.hpp"
#include "util/rng.hpp"

namespace appstore::affinity {
namespace {

// ---- strings ---------------------------------------------------------------

TEST(Strings, SuppressRuns) {
  EXPECT_EQ(suppress_runs(std::vector<std::uint32_t>{1, 2, 3, 3, 1, 4}),
            (std::vector<std::uint32_t>{1, 2, 3, 1, 4}));
  EXPECT_EQ(suppress_runs(std::vector<std::uint32_t>{}), (std::vector<std::uint32_t>{}));
  EXPECT_EQ(suppress_runs(std::vector<std::uint32_t>{5, 5, 5}),
            (std::vector<std::uint32_t>{5}));
}

TEST(Strings, SuppressDuplicatesMatchesPaperExample) {
  // §4.2: "if a user commented on apps a1 a2 a3 a3 a1 a4 we kept the
  // sequence a1 a2 a3 a4".
  EXPECT_EQ(suppress_duplicates(std::vector<std::uint32_t>{1, 2, 3, 3, 1, 4}),
            (std::vector<std::uint32_t>{1, 2, 3, 4}));
}

TEST(Strings, AppStringSkipsUnratedComments) {
  std::vector<market::CommentEvent> stream;
  stream.push_back({market::UserId{0}, market::AppId{7}, 0, 0, 5});
  stream.push_back({market::UserId{0}, market::AppId{8}, 0, 1, 0});  // unrated
  stream.push_back({market::UserId{0}, market::AppId{9}, 1, 2, 4});
  stream.push_back({market::UserId{0}, market::AppId{7}, 2, 3, 4});  // duplicate app
  EXPECT_EQ(app_string(stream), (std::vector<std::uint32_t>{7, 9}));
}

TEST(Strings, CategoryStringMapsThroughLookup) {
  const std::vector<std::uint32_t> apps = {0, 2, 1};
  const std::vector<std::uint32_t> app_category = {5, 6, 7};
  EXPECT_EQ(category_string(apps, app_category), (std::vector<std::uint32_t>{5, 7, 6}));
}

// ---- affinity metric (Eq. 1 / Eq. 3) -----------------------------------------

TEST(Affinity, PaperExamplesDepthOne) {
  // §4.2 worked examples.
  EXPECT_DOUBLE_EQ(*affinity(std::vector<std::uint32_t>{1, 1, 1, 1}, 1), 1.0);
  EXPECT_DOUBLE_EQ(*affinity(std::vector<std::uint32_t>{1, 1, 1, 2}, 1), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(*affinity(std::vector<std::uint32_t>{1, 1, 2, 3}, 1), 1.0 / 3.0);
}

TEST(Affinity, OscillationInvisibleAtDepthOneVisibleAtTwo) {
  // §4.2: c1 c2 c1 c2 has affinity 0 at depth 1 but clear affinity at depth 2.
  const std::vector<std::uint32_t> oscillation = {1, 2, 1, 2};
  EXPECT_DOUBLE_EQ(*affinity(oscillation, 1), 0.0);
  EXPECT_DOUBLE_EQ(*affinity(oscillation, 2), 1.0);
}

TEST(Affinity, UndefinedForShortStrings) {
  EXPECT_FALSE(affinity(std::vector<std::uint32_t>{1}, 1).has_value());
  EXPECT_FALSE(affinity(std::vector<std::uint32_t>{1, 2}, 2).has_value());
  EXPECT_TRUE(affinity(std::vector<std::uint32_t>{1, 2}, 1).has_value());
}

TEST(Affinity, DepthZeroThrows) {
  EXPECT_THROW((void)affinity(std::vector<std::uint32_t>{1, 2}, 0), std::invalid_argument);
}

TEST(Affinity, MonotoneInDepth) {
  // Adding lookback can only find more matches (denominator shrinks too, but
  // on long strings the metric is non-decreasing in expectation; exact
  // monotonicity holds for this construction).
  util::Rng rng(5);
  std::vector<std::uint32_t> categories;
  for (int i = 0; i < 200; ++i) {
    categories.push_back(static_cast<std::uint32_t>(rng.below(4)));
  }
  const double d1 = *affinity(categories, 1);
  const double d2 = *affinity(categories, 2);
  const double d3 = *affinity(categories, 3);
  EXPECT_LE(d1, d2 + 0.05);
  EXPECT_LE(d2, d3 + 0.05);
}

// ---- random-walk baseline (Eq. 2 / Eq. 4) ---------------------------------------

TEST(RandomWalk, UniformCategoriesDepthOne) {
  // C equal categories of size m: Eq. 2 -> C*m*(m-1) / (C*m*(C*m-1)).
  const std::vector<std::uint64_t> sizes = {10, 10, 10, 10};  // A=40
  const double expected = 4.0 * 10.0 * 9.0 / (40.0 * 39.0);
  EXPECT_NEAR(random_walk_affinity(sizes, 1), expected, 1e-12);
}

TEST(RandomWalk, ApproachesOneOverCForLargeCategories) {
  const std::vector<std::uint64_t> sizes(7, 100000);
  EXPECT_NEAR(random_walk_affinity(sizes, 1), 1.0 / 7.0, 1e-3);
}

TEST(RandomWalk, IncreasesWithDepth) {
  const std::vector<std::uint64_t> sizes = {30, 20, 50, 10, 40};
  const double d1 = random_walk_affinity(sizes, 1);
  const double d2 = random_walk_affinity(sizes, 2);
  const double d3 = random_walk_affinity(sizes, 3);
  EXPECT_LT(d1, d2);
  EXPECT_LT(d2, d3);
}

TEST(RandomWalk, MatchesMonteCarloSimulation) {
  // Empirical check of Eq. 4: actually wander randomly and measure affinity.
  const std::vector<std::uint64_t> sizes = {40, 25, 15, 20};
  std::vector<std::uint32_t> app_category;
  for (std::uint32_t c = 0; c < sizes.size(); ++c) {
    for (std::uint64_t k = 0; k < sizes[c]; ++k) app_category.push_back(c);
  }
  util::Rng rng(77);
  for (const std::size_t depth : {std::size_t{1}, std::size_t{2}, std::size_t{3}}) {
    double total = 0.0;
    constexpr int kUsers = 3000;
    for (int u = 0; u < kUsers; ++u) {
      std::vector<std::uint32_t> categories;
      for (int k = 0; k < 30; ++k) {
        categories.push_back(
            app_category[static_cast<std::size_t>(rng.below(app_category.size()))]);
      }
      total += *affinity(categories, depth);
    }
    const double empirical = total / kUsers;
    const double analytic = random_walk_affinity(sizes, depth);
    if (depth == 1) {
      // Eq. 2 is exact (up to with/without-replacement differences on a
      // 100-app universe).
      EXPECT_NEAR(empirical, analytic, 0.03);
    } else {
      // Eq. 4 as printed in the paper multiplies the depth-1 pair count by d
      // without subtracting overlaps (both lookback slots matching); it is a
      // union-bound-style approximation that upper-bounds the true
      // probability for d >= 2. We reproduce the formula faithfully and
      // assert its direction and rough magnitude here.
      EXPECT_GE(analytic, empirical - 0.02) << "depth " << depth;
      EXPECT_LE(analytic - empirical, 0.30) << "depth " << depth;
    }
  }
}

TEST(RandomWalk, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(random_walk_affinity(std::vector<std::uint64_t>{1}, 1), 0.0);
  EXPECT_THROW((void)random_walk_affinity(std::vector<std::uint64_t>{5, 5}, 0),
               std::invalid_argument);
}

// ---- aggregation helpers ----------------------------------------------------------

TEST(Groups, AffinityByGroupFiltersSmallGroups) {
  std::vector<std::vector<std::uint32_t>> strings;
  // 12 users with 3 comments each (same affinity 1.0), 2 users with 4 comments.
  for (int i = 0; i < 12; ++i) strings.push_back({1, 1, 1});
  for (int i = 0; i < 2; ++i) strings.push_back({1, 1, 1, 1});
  const auto groups = affinity_by_group(strings, 1, 10);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].comments, 3u);
  EXPECT_EQ(groups[0].samples, 12u);
  EXPECT_DOUBLE_EQ(groups[0].mean, 1.0);
  EXPECT_LE(groups[0].ci_low, groups[0].mean);
  EXPECT_GE(groups[0].ci_high, groups[0].mean);
}

TEST(Groups, PerUserAffinitySkipsShortStrings) {
  std::vector<std::vector<std::uint32_t>> strings = {{1}, {1, 1}, {1, 2, 2}};
  const auto values = per_user_affinity(strings, 1);
  ASSERT_EQ(values.size(), 2u);
  EXPECT_DOUBLE_EQ(values[0], 1.0);
  EXPECT_DOUBLE_EQ(values[1], 0.5);
}

TEST(Groups, UniqueCategoriesPerUser) {
  std::vector<std::vector<std::uint32_t>> strings = {{1, 1, 2}, {3}, {}};
  const auto counts = unique_categories_per_user(strings);
  ASSERT_EQ(counts.size(), 2u);  // empty string skipped
  EXPECT_DOUBLE_EQ(counts[0], 2.0);
  EXPECT_DOUBLE_EQ(counts[1], 1.0);
}

TEST(Groups, TopkShares) {
  // One user: 4 comments in cat 1, 1 in cat 2 -> top-1 = 80%, top-2 = 100%.
  std::vector<std::vector<std::uint32_t>> strings = {{1, 1, 1, 1, 2}};
  const auto shares = topk_comment_share(strings, 3);
  ASSERT_EQ(shares.size(), 3u);
  EXPECT_NEAR(shares[0], 80.0, 1e-9);
  EXPECT_NEAR(shares[1], 100.0, 1e-9);
  EXPECT_NEAR(shares[2], 100.0, 1e-9);
}

TEST(Groups, TopkExcludesSingleCommentUsers) {
  std::vector<std::vector<std::uint32_t>> strings = {{1}, {2, 2}};
  const auto shares = topk_comment_share(strings, 1);
  EXPECT_NEAR(shares[0], 100.0, 1e-9);  // only the 2-comment user counts
}

}  // namespace
}  // namespace appstore::affinity
