// The federation suite (`ctest -L federation`): the sharded scatter-gather
// gateway's correctness properties.
//
//   * HashRing — load balance within +-25% of uniform across 1000 derived
//     seeds at 64 vnodes, and the consistent-hashing contract: a join moves
//     ~1/N of the keys, all TO the newcomer; a leave restores ownership.
//   * Hedged requests — replayed on a chaos::VirtualClock so the race is
//     deterministic: the hedge fires only after the configured delay, the
//     losing attempt is cancelled (never an outcome), and
//       requests == ok + http_4xx + http_5xx + transport + breaker_open + shed
//     holds exactly, including under fault plans that kill the primary.
//   * Cross-shard parity — fig2 pareto, fig6 affinity and the fig8 rank
//     curve served through the gateway at 1/2/4 shards are element-wise
//     identical (EXPECT_EQ on the parsed doubles — the JSON number path
//     round-trips exactly) to a single store holding the union of events,
//     and land inside the same checked-in goldens golden_test pins.
//   * net::UpstreamTable — the per-upstream breaker table stays bounded
//     under membership churn (the TokenBucketLimiter eviction policy).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "chaos/clock.hpp"
#include "chaos/fault.hpp"
#include "crawler/json.hpp"
#include "crawler/service.hpp"
#include "fed/federation.hpp"
#include "fed/gateway.hpp"
#include "fed/ring.hpp"
#include "load/harness.hpp"
#include "load/workload.hpp"
#include "net/http.hpp"
#include "net/upstreams.hpp"
#include "query/federate.hpp"
#include "synth/generator.hpp"
#include "synth/profile.hpp"
#include "util/format.hpp"
#include "util/rng.hpp"

#ifndef APPSTORE_GOLDEN_DIR
#error "APPSTORE_GOLDEN_DIR must point at tests/golden (set by tests/CMakeLists.txt)"
#endif

namespace appstore {
namespace {

using namespace std::chrono_literals;

/// The query day bound that covers every generated event (same as
/// golden_test: the goldens pin this exact run).
constexpr market::Day kEndOfHistory = 1 << 20;

/// The seeded config the checked-in goldens were generated from.
[[nodiscard]] synth::GeneratorConfig golden_config() {
  synth::GeneratorConfig config;
  config.seed = 0x5eed;
  config.app_scale = 0.01;
  config.download_scale = 5e-5;
  return config;
}

using GoldenMap = std::map<std::string, double>;

[[nodiscard]] GoldenMap read_golden(const std::string& name) {
  GoldenMap golden;
  std::ifstream in(std::string(APPSTORE_GOLDEN_DIR) + "/" + name);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    const auto comma = line.rfind(',');
    if (comma == std::string::npos) continue;
    golden[line.substr(0, comma)] = std::stod(line.substr(comma + 1));
  }
  return golden;
}

[[nodiscard]] net::HttpRequest get(const std::string& target) {
  net::HttpRequest request;
  request.target = target;
  request.headers["X-Client-Id"] = "fed-test";
  return request;
}

/// Every respond() lands in exactly one outcome bucket.
void expect_fully_accounted(const fed::GatewayStats& stats) {
  EXPECT_EQ(stats.requests, stats.ok + stats.http_4xx + stats.http_5xx +
                                stats.transport + stats.breaker_open + stats.shed);
}

// ---- consistent-hash ring properties ---------------------------------------------

TEST(HashRing, LoadWithinQuarterOfUniformAcrossSeeds) {
  constexpr std::size_t kShards = 4;
  constexpr std::size_t kKeys = 2048;
  constexpr double kUniform = static_cast<double>(kKeys) / kShards;
  for (std::uint64_t trial = 0; trial < 1000; ++trial) {
    fed::RingOptions options;
    options.vnodes = 64;
    options.seed = util::rng::derive_seed(0xba5eba11ULL, trial);
    fed::HashRing ring(options);
    for (std::size_t i = 0; i < kShards; ++i) {
      ASSERT_TRUE(ring.add(util::format("shard-{}", i)));
    }
    std::size_t counts[kShards] = {};
    for (std::uint64_t key = 0; key < kKeys; ++key) {
      ++counts[ring.owner_index(key)];
    }
    for (std::size_t i = 0; i < kShards; ++i) {
      const double load = static_cast<double>(counts[i]);
      ASSERT_GE(load, 0.75 * kUniform) << "seed " << options.seed << " shard " << i;
      ASSERT_LE(load, 1.25 * kUniform) << "seed " << options.seed << " shard " << i;
    }
  }
}

TEST(HashRing, JoinMovesOnlyNewOwnersKeysLeaveRestores) {
  constexpr std::size_t kShards = 4;
  constexpr std::uint64_t kKeys = 2048;
  for (std::uint64_t trial = 0; trial < 100; ++trial) {
    fed::RingOptions options;
    options.seed = util::rng::derive_seed(0x10adedULL, trial);
    fed::HashRing ring(options);
    for (std::size_t i = 0; i < kShards; ++i) ring.add(util::format("shard-{}", i));
    std::vector<std::size_t> before(kKeys);
    for (std::uint64_t key = 0; key < kKeys; ++key) before[key] = ring.owner_index(key);

    ASSERT_TRUE(ring.add("shard-new"));
    std::uint64_t moved = 0;
    for (std::uint64_t key = 0; key < kKeys; ++key) {
      const std::size_t owner = ring.owner_index(key);
      if (owner != before[key]) {
        ++moved;
        // Consistent hashing: every relocated key lands on the newcomer.
        ASSERT_EQ(ring.members()[owner], "shard-new") << "key " << key;
      }
    }
    // Expected fraction is 1/(N+1) = 0.20; the multinomial noise over 2048
    // keys is ~1%, so [12%, 28%] is a many-sigma corridor.
    ASSERT_GE(moved, kKeys * 12 / 100) << "seed " << options.seed;
    ASSERT_LE(moved, kKeys * 28 / 100) << "seed " << options.seed;

    ASSERT_TRUE(ring.remove("shard-new"));
    for (std::uint64_t key = 0; key < kKeys; ++key) {
      ASSERT_EQ(ring.owner_index(key), before[key]) << "key " << key;
    }
  }
}

TEST(HashRing, MembershipBasics) {
  fed::HashRing ring;
  EXPECT_TRUE(ring.empty());
  EXPECT_THROW((void)ring.owner(42), std::logic_error);
  EXPECT_TRUE(ring.add("a"));
  EXPECT_FALSE(ring.add("a"));
  EXPECT_TRUE(ring.contains("a"));
  EXPECT_EQ(ring.owner(7), "a");
  EXPECT_FALSE(ring.remove("b"));
  EXPECT_TRUE(ring.remove("a"));
  EXPECT_TRUE(ring.empty());
}

// ---- bounded per-upstream breaker table ------------------------------------------

TEST(UpstreamTable, StaysBoundedAndEvictsStalest) {
  chaos::VirtualClock clock;
  net::UpstreamTable::Options options;
  options.max_keys = 16;
  options.clock = &clock;
  net::UpstreamTable table(options);

  for (int i = 0; i < 64; ++i) {
    clock.sleep_for(1ms);  // distinct last-used stamps
    (void)table.breaker(util::format("upstream-{}", i));
    EXPECT_LE(table.tracked_keys(), options.max_keys);
  }
  // 64 inserts through a 16-entry cap: at least 48 entries were evicted.
  EXPECT_GE(table.evictions(), 48u);

  // Same id -> same breaker object while tracked.
  const auto first = table.breaker("stable");
  EXPECT_EQ(first.get(), table.breaker("stable").get());

  const auto tracked = table.tracked_keys();
  const auto evicted = table.evictions();
  table.forget("stable");
  EXPECT_EQ(table.tracked_keys(), tracked - 1);
  EXPECT_EQ(table.evictions(), evicted + 1);
  table.forget("never-seen");  // no-op
  EXPECT_EQ(table.evictions(), evicted + 1);
}

TEST(UpstreamTable, GatewayBreakerStateBoundedUnderChurn) {
  fed::GatewayOptions options;
  options.max_upstream_keys = 8;
  fed::FederationGateway gateway(options);
  const auto body = net::HttpResponse::json(200, "{\"page\": 0, \"ids\": []}");
  for (int i = 0; i < 32; ++i) {
    gateway.add_upstream(util::format("shard-{}", i),
                         [body](const net::HttpRequest&) { return body; });
  }
  // One scatter touches every upstream's breaker entry; the table must hold
  // the cap even though 32 upstreams are live.
  const auto response = gateway.respond(get("/api/v1/apps?page=0"));
  EXPECT_EQ(response.status, 200);
  EXPECT_LE(gateway.upstreams().tracked_keys(), options.max_upstream_keys);
  EXPECT_GT(gateway.upstreams().evictions(), 0u);
  expect_fully_accounted(gateway.stats());
}

// ---- deterministic hedging on the virtual clock ----------------------------------

/// A gateway with one upstream whose call sleeps `latency` on the virtual
/// clock and answers 200.
struct HedgeRig {
  chaos::VirtualClock clock;
  std::unique_ptr<fed::FederationGateway> gateway;
  std::chrono::nanoseconds latency{0};

  explicit HedgeRig(fed::GatewayOptions options) {
    options.clock = &clock;
    gateway = std::make_unique<fed::FederationGateway>(options);
    gateway->add_upstream("shard-0", [this](const net::HttpRequest&) {
      chaos::sleep_or_real(&clock, latency);
      return net::HttpResponse::json(200, "{\"store\": \"rig\"}");
    });
  }
};

TEST(HedgedRequests, FiresOnlyAfterConfiguredDelay) {
  fed::GatewayOptions options;
  options.hedge_delay = 10ms;
  HedgeRig rig(options);

  rig.latency = 5ms;  // under the delay: no hedge
  EXPECT_EQ(rig.gateway->respond(get("/api/v1/meta")).status, 200);
  EXPECT_EQ(rig.gateway->stats().hedges, 0u);

  rig.latency = 10ms;  // exactly the delay: still no hedge
  EXPECT_EQ(rig.gateway->respond(get("/api/v1/meta")).status, 200);
  EXPECT_EQ(rig.gateway->stats().hedges, 0u);

  rig.latency = 25ms;  // past the delay: the hedge races (and loses — the
                       // second attempt is just as slow, issued 10ms later)
  EXPECT_EQ(rig.gateway->respond(get("/api/v1/meta")).status, 200);
  const auto stats = rig.gateway->stats();
  EXPECT_EQ(stats.hedges, 1u);
  EXPECT_EQ(stats.hedge_wins, 0u);
  EXPECT_EQ(stats.hedges_cancelled, 1u);  // exactly one cancelled loser
  EXPECT_EQ(stats.requests, 3u);
  EXPECT_EQ(stats.ok, 3u);
  EXPECT_EQ(stats.upstream_calls, 4u);  // 3 primaries + 1 hedge
  expect_fully_accounted(stats);
}

TEST(HedgedRequests, DisabledMeansNoRace) {
  fed::GatewayOptions options;
  options.hedge_enabled = false;
  options.hedge_delay = 10ms;
  HedgeRig rig(options);
  rig.latency = 100ms;
  EXPECT_EQ(rig.gateway->respond(get("/api/v1/meta")).status, 200);
  EXPECT_EQ(rig.gateway->stats().hedges, 0u);
  EXPECT_EQ(rig.gateway->stats().upstream_calls, 1u);
}

TEST(HedgedRequests, WinnerCancelsSlowPrimary) {
  // The fault plan delays exactly one exchange by 50ms; the retry (the
  // hedge) is clean. With a 10ms hedge delay the hedge completes at virtual
  // t = 10ms, beating the primary's 50ms: it must win, and the race must
  // still account exactly one outcome.
  chaos::FaultPlan plan;
  plan.seed = 7;
  plan.max_faults_per_key = 1;
  plan.rules.push_back({chaos::FaultSite::kExchange, chaos::FaultKind::kLatency,
                        /*probability=*/1.0, /*latency=*/50ms});
  chaos::FaultInjector injector(plan);

  fed::GatewayOptions options;
  options.hedge_delay = 10ms;
  options.faults = &injector;
  HedgeRig rig(options);

  EXPECT_EQ(rig.gateway->respond(get("/api/v1/meta")).status, 200);
  const auto stats = rig.gateway->stats();
  EXPECT_EQ(stats.hedges, 1u);
  EXPECT_EQ(stats.hedge_wins, 1u);
  EXPECT_EQ(stats.hedges_cancelled, 1u);
  EXPECT_EQ(stats.requests, 1u);
  EXPECT_EQ(stats.ok, 1u);  // the loser is cancelled, never an outcome
  expect_fully_accounted(stats);
}

TEST(HedgedRequests, HedgeRecoversTransportDeadPrimary) {
  chaos::FaultPlan plan;
  plan.seed = 11;
  plan.max_faults_per_key = 1;  // only the primary dies; the hedge is clean
  plan.rules.push_back({chaos::FaultSite::kExchange, chaos::FaultKind::kConnectionReset,
                        /*probability=*/1.0, /*latency=*/0ms});
  chaos::FaultInjector injector(plan);

  fed::GatewayOptions options;
  options.hedge_delay = 10ms;
  options.faults = &injector;
  HedgeRig rig(options);

  EXPECT_EQ(rig.gateway->respond(get("/api/v1/meta")).status, 200);
  const auto stats = rig.gateway->stats();
  EXPECT_EQ(stats.requests, 1u);
  EXPECT_EQ(stats.ok, 1u);
  EXPECT_EQ(stats.transport, 0u);  // the reset primary became the cancelled loser
  EXPECT_EQ(stats.hedge_wins, 1u);
  expect_fully_accounted(stats);
}

TEST(HedgedRequests, BothAttemptsDeadIsOneTransportOutcomeThenBreakerOpens) {
  chaos::FaultPlan plan;
  plan.seed = 13;
  plan.max_faults_per_key = 0;  // uncapped: primary AND hedge die, forever
  plan.rules.push_back({chaos::FaultSite::kExchange, chaos::FaultKind::kConnectionReset,
                        /*probability=*/1.0, /*latency=*/0ms});
  chaos::FaultInjector injector(plan);

  fed::GatewayOptions options;
  options.hedge_delay = 10ms;
  options.faults = &injector;
  HedgeRig rig(options);

  // Default breaker: 5 consecutive failures trip open. Each hedged race
  // records exactly one failure (the winner's), so responds 1..5 are
  // transport outcomes and respond 6 is answered from the open breaker.
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(rig.gateway->respond(get("/api/v1/meta")).status, 502);
  }
  const auto response = rig.gateway->respond(get("/api/v1/meta"));
  EXPECT_EQ(response.status, 503);
  EXPECT_NE(response.body.find("breaker_open"), std::string::npos) << response.body;

  const auto stats = rig.gateway->stats();
  EXPECT_EQ(stats.requests, 6u);
  EXPECT_EQ(stats.transport, 5u);
  EXPECT_EQ(stats.breaker_open, 1u);
  EXPECT_EQ(stats.hedges, 5u);
  EXPECT_EQ(stats.hedge_wins, 0u);
  EXPECT_EQ(stats.hedges_cancelled, 5u);
  expect_fully_accounted(stats);
}

TEST(HedgedRequests, DerivedDelayArmsAfterMinSamples) {
  fed::GatewayOptions options;
  options.hedge_delay = 0ns;  // derive from the observed latency quantile
  options.hedge_min_samples = 4;
  HedgeRig rig(options);

  rig.latency = 1ms;
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(rig.gateway->respond(get("/api/v1/meta")).status, 200);
  }
  EXPECT_EQ(rig.gateway->stats().hedges, 0u);  // not armed until min samples

  rig.latency = 5ms;  // now well past the derived ~1ms p95
  EXPECT_EQ(rig.gateway->respond(get("/api/v1/meta")).status, 200);
  EXPECT_EQ(rig.gateway->stats().hedges, 1u);
  expect_fully_accounted(rig.gateway->stats());
}

// ---- gateway error surfaces ------------------------------------------------------

TEST(Gateway, NoUpstreamsIsShed) {
  fed::FederationGateway gateway;
  const auto response = gateway.respond(get("/api/v1/meta"));
  EXPECT_EQ(response.status, 503);
  EXPECT_NE(response.body.find("no_upstreams"), std::string::npos);
  EXPECT_EQ(gateway.stats().shed, 1u);
  expect_fully_accounted(gateway.stats());
}

TEST(Gateway, ReplicatedDirectoryDivergenceIs502) {
  fed::FederationGateway gateway;
  gateway.add_upstream("shard-0", [](const net::HttpRequest&) {
    return net::HttpResponse::json(200, "{\"page\": 0, \"ids\": [1]}");
  });
  gateway.add_upstream("shard-1", [](const net::HttpRequest&) {
    return net::HttpResponse::json(200, "{\"page\": 0, \"ids\": [2]}");
  });
  const auto response = gateway.respond(get("/api/v1/apps?page=0"));
  EXPECT_EQ(response.status, 502);
  EXPECT_NE(response.body.find("shard_divergence"), std::string::npos);
  expect_fully_accounted(gateway.stats());
}

TEST(Gateway, CommentMergeRefusesUnboundedScan) {
  fed::GatewayOptions options;
  options.comment_scan_pages = 1;
  fed::FederationGateway gateway(options);
  // total = 1000 needs 5 pages of 200; the 1-page bound must refuse, not scan.
  gateway.add_upstream("shard-0", [](const net::HttpRequest&) {
    return net::HttpResponse::json(
        200, "{\"app\": 1, \"total\": 1000, \"page\": 0, \"comments\": []}");
  });
  const auto response = gateway.respond(get("/api/v1/app/1/comments"));
  EXPECT_EQ(response.status, 502);
  EXPECT_NE(response.body.find("comment_scan_overflow"), std::string::npos);
  expect_fully_accounted(gateway.stats());
}

// ---- outcome accounting under a hostile fault plan -------------------------------

TEST(Gateway, AccountingInvariantHoldsUnderFaultPlanLoad) {
  synth::GeneratorConfig config = golden_config();
  config.app_scale = 0.005;  // keep the bring-up cheap; parity has its own suite

  crawlersim::ServicePolicy policy;
  policy.rate_per_second = 1e9;  // the invariant under test is the gateway's,
  policy.burst = 1e9;            // not the shard token buckets'

  fed::FederationOptions federation_options;
  federation_options.profile = synth::anzhi();
  federation_options.config = config;
  federation_options.shards = 2;
  federation_options.policy = policy;
  federation_options.day = kEndOfHistory;
  const fed::Federation federation = fed::build_federation(federation_options);

  chaos::FaultPlan plan;
  plan.seed = 0xfa117;
  plan.max_faults_per_key = 0;  // uncapped — the accounting must not rely on recovery
  plan.rules.push_back({chaos::FaultSite::kExchange, chaos::FaultKind::kConnectionReset,
                        /*probability=*/0.08, /*latency=*/0ms});
  plan.rules.push_back({chaos::FaultSite::kExchange, chaos::FaultKind::kHttp500,
                        /*probability=*/0.05, /*latency=*/0ms});
  chaos::FaultInjector injector(plan);

  chaos::VirtualClock clock;
  fed::GatewayOptions gateway_options;
  gateway_options.clock = &clock;
  gateway_options.faults = &injector;
  gateway_options.hedge_delay = 1ms;
  fed::FederationGateway gateway(gateway_options);
  federation.attach(gateway);

  load::ScheduleOptions schedule_options;
  schedule_options.seed = 0xfed10ad;
  schedule_options.clients = 4;
  schedule_options.requests_per_client = 150;
  schedule_options.mix.query_weight = 0.1;
  schedule_options.mix.app_count = 200;
  const load::Schedule schedule = load::build_schedule(schedule_options);

  load::RunOptions run_options;
  run_options.respond = [&gateway](const net::HttpRequest& request) {
    return gateway.respond(request);
  };
  run_options.clock = &clock;
  const load::RunReport report = load::run(schedule, run_options);

  // Harness-side: every issued request has exactly one outcome.
  EXPECT_EQ(report.totals.issued,
            report.totals.ok + report.totals.http_4xx + report.totals.http_5xx +
                report.totals.shed + report.totals.transport_errors);
  // The gateway never throws — upstream failures surface as HTTP errors.
  EXPECT_EQ(report.totals.transport_errors, 0u);

  const auto stats = gateway.stats();
  EXPECT_EQ(stats.requests, report.totals.issued);
  expect_fully_accounted(stats);
  // The plan's probabilities guarantee every bucket the plan can reach was
  // actually exercised, so the invariant is not vacuous.
  EXPECT_GT(stats.ok, 0u);
  EXPECT_GT(stats.transport + stats.breaker_open, 0u);
  EXPECT_GT(stats.http_5xx + stats.transport, 0u);
  EXPECT_EQ(stats.hedges, stats.hedges_cancelled);
  EXPECT_GE(stats.hedges, stats.hedge_wins);
}

// ---- cross-shard parity against the single store and the goldens -----------------

class FederationParity : public ::testing::Test {
 protected:
  struct World {
    synth::GeneratedStore single;
    std::unique_ptr<crawlersim::AppstoreService> service;
    std::vector<std::size_t> shard_counts{1, 2, 4};
    std::vector<fed::Federation> federations;
    std::vector<std::unique_ptr<fed::FederationGateway>> gateways;
  };

  static void SetUpTestSuite() {
    if (world_ != nullptr) return;
    world_ = new World;
    synth::GeneratorConfig config = golden_config();
    config.comments = true;  // fig6 needs the rated-comment stream

    crawlersim::ServicePolicy policy;
    policy.rate_per_second = 1e9;
    policy.burst = 1e9;

    world_->single = synth::generate(synth::anzhi(), config);
    world_->service =
        std::make_unique<crawlersim::AppstoreService>(*world_->single.store, policy);
    world_->service->set_day(kEndOfHistory);

    for (const std::size_t shards : world_->shard_counts) {
      fed::FederationOptions options;
      options.profile = synth::anzhi();
      options.config = config;
      options.shards = shards;
      options.policy = policy;
      options.day = kEndOfHistory;
      world_->federations.push_back(fed::build_federation(options));
      auto gateway = std::make_unique<fed::FederationGateway>(
          fed::GatewayOptions{.ring = options.ring});
      world_->federations.back().attach(*gateway);
      world_->gateways.push_back(std::move(gateway));
    }
  }

  static void TearDownTestSuite() {
    delete world_;
    world_ = nullptr;
  }

  [[nodiscard]] static net::HttpResponse single_store(const std::string& target) {
    return world_->service->respond(get(target));
  }

  [[nodiscard]] static net::HttpResponse gateway(std::size_t index,
                                                 const std::string& target) {
    return world_->gateways[index]->respond(get(target));
  }

  [[nodiscard]] static crawlersim::Json parse_ok(const net::HttpResponse& response) {
    EXPECT_EQ(response.status, 200) << response.body;
    auto parsed = crawlersim::parse_json(response.body);
    EXPECT_TRUE(parsed.has_value()) << response.body;
    return std::move(*parsed);
  }

  static World* world_;
};

FederationParity::World* FederationParity::world_ = nullptr;

TEST_F(FederationParity, ParetoSharesBitExactAndInsideFig2Golden) {
  const GoldenMap fig2 = read_golden("fig2_pareto.csv");
  ASSERT_FALSE(fig2.empty());
  const auto expected = parse_ok(single_store("/api/v1/query?kind=pareto_share"));
  for (std::size_t i = 0; i < world_->shard_counts.size(); ++i) {
    const auto merged = parse_ok(gateway(i, "/api/v1/query?kind=pareto_share"));
    const auto& want = expected.at("pareto").as_array();
    const auto& got = merged.at("pareto").as_array();
    ASSERT_EQ(got.size(), want.size()) << world_->shard_counts[i] << " shards";
    for (std::size_t p = 0; p < want.size(); ++p) {
      const double fraction = want[p].at("fraction").as_number();
      EXPECT_EQ(got[p].at("fraction").as_number(), fraction);
      // Bit-exact against the union store (the merge runs the identical
      // finalizer over the summed per-app counts)...
      EXPECT_EQ(got[p].at("share").as_number(), want[p].at("share").as_number())
          << world_->shard_counts[i] << " shards, fraction " << fraction;
      // ...and inside the fig2 golden corridor like any single-store run.
      const auto golden =
          fig2.find("Anzhi:top" + util::format("{:.2f}", fraction));
      ASSERT_NE(golden, fig2.end());
      EXPECT_NEAR(got[p].at("share").as_number(), golden->second, 0.015);
    }
    EXPECT_EQ(merged.at("total_downloads").as_u64(),
              expected.at("total_downloads").as_u64());
  }
}

TEST_F(FederationParity, AffinityBitExactAndInsideFig6Golden) {
  const GoldenMap fig6 = read_golden("fig6_affinity.csv");
  ASSERT_FALSE(fig6.empty());
  // min_samples=1 keeps real per-user samples in play at golden scale, so
  // the merge path (concatenate shard samples, rebuild groups) is exercised
  // with non-trivial groups, not just the replicated random-walk baseline.
  for (const std::string_view spec :
       {std::string_view("depths=1,2,3"), std::string_view("depths=1,2,3&min_samples=1")}) {
    const std::string target =
        "/api/v1/query?kind=category_affinity&" + std::string(spec);
    const auto expected = parse_ok(single_store(target));
    for (std::size_t i = 0; i < world_->shard_counts.size(); ++i) {
      const auto merged = parse_ok(gateway(i, target));
      const auto& want = expected.at("affinity").as_array();
      const auto& got = merged.at("affinity").as_array();
      ASSERT_EQ(got.size(), want.size());
      for (std::size_t d = 0; d < want.size(); ++d) {
        for (const char* field : {"depth", "mean", "random_walk", "groups", "samples"}) {
          EXPECT_EQ(got[d].at(field).as_number(), want[d].at(field).as_number())
              << world_->shard_counts[i] << " shards, " << spec << ", point " << d
              << ", " << field;
        }
      }
    }
    if (spec != "depths=1,2,3") continue;
    // The default-spec answer is the one fig6_affinity.csv pins.
    for (const auto& point : expected.at("affinity").as_array()) {
      const std::string prefix =
          "anzhi:depth" + std::to_string(point.at("depth").as_u64());
      for (const char* field : {"mean", "random_walk", "groups", "samples"}) {
        const auto golden = fig6.find(prefix + ":" + field);
        ASSERT_NE(golden, fig6.end()) << prefix << ":" << field;
        const double expected_value = golden->second;
        EXPECT_NEAR(point.at(field).as_number(), expected_value,
                    1e-6 + 1e-6 * std::abs(expected_value));
      }
    }
  }
  EXPECT_GT(parse_ok(single_store(
                         "/api/v1/query?kind=category_affinity&depths=1&min_samples=1"))
                .at("affinity")
                .as_array()[0]
                .at("groups")
                .as_u64(),
            0u)
      << "min_samples=1 was expected to yield real merged groups";
}

TEST_F(FederationParity, RankCurveBitExactAndInsideFig8MeasuredGolden) {
  const GoldenMap curve_golden = read_golden("query_rank_curve.csv");
  ASSERT_FALSE(curve_golden.empty());
  const std::string target = "/api/v1/query?kind=rank_download_curve&points=50";
  const auto expected = parse_ok(single_store(target));
  for (std::size_t i = 0; i < world_->shard_counts.size(); ++i) {
    const auto merged = parse_ok(gateway(i, target));
    const auto& want = expected.at("curve").as_array();
    const auto& got = merged.at("curve").as_array();
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t p = 0; p < want.size(); ++p) {
      EXPECT_EQ(got[p].at("rank").as_u64(), want[p].at("rank").as_u64());
      EXPECT_EQ(got[p].at("downloads").as_u64(), want[p].at("downloads").as_u64());
      const auto golden =
          curve_golden.find(util::format("anzhi:rank{}", got[p].at("rank").as_u64()));
      ASSERT_NE(golden, curve_golden.end());
      EXPECT_NEAR(static_cast<double>(got[p].at("downloads").as_u64()), golden->second,
                  1e-9);
    }
    EXPECT_EQ(merged.at("total_downloads").as_u64(),
              expected.at("total_downloads").as_u64());
  }
}

TEST_F(FederationParity, ReplicatedDirectoryAndMetaAreByteIdentical) {
  for (const std::string& target : std::vector<std::string>{
           "/api/v1/apps?page=0", "/api/v1/apps?page=1", "/api/v1/meta"}) {
    const auto expected = single_store(target);
    ASSERT_EQ(expected.status, 200);
    for (std::size_t i = 0; i < world_->shard_counts.size(); ++i) {
      const auto merged = gateway(i, target);
      ASSERT_EQ(merged.status, 200);
      EXPECT_EQ(merged.body, expected.body)
          << world_->shard_counts[i] << " shards, " << target;
    }
  }
}

TEST_F(FederationParity, AppDownloadsSumAcrossShards) {
  const auto directory = parse_ok(single_store("/api/v1/apps?page=0"));
  const auto& ids = directory.at("ids").as_array();
  ASSERT_FALSE(ids.empty());
  for (std::size_t n = 0; n < std::min<std::size_t>(ids.size(), 8); ++n) {
    const std::string target = util::format("/api/v1/app/{}", ids[n].as_u64());
    const auto expected = parse_ok(single_store(target));
    for (std::size_t i = 0; i < world_->shard_counts.size(); ++i) {
      const auto merged = parse_ok(gateway(i, target));
      EXPECT_EQ(merged.at("downloads").as_u64(), expected.at("downloads").as_u64())
          << world_->shard_counts[i] << " shards, " << target;
      EXPECT_EQ(merged.at("name").as_string(), expected.at("name").as_string());
      EXPECT_EQ(merged.at("category").as_string(), expected.at("category").as_string());
    }
  }
}

TEST_F(FederationParity, CommentsMergePreservesTotalsAndRowSet) {
  // Row identity is (user, day, rating). `ordinal` is deliberately absent:
  // it is the store's within-day sequence number stamped at generation, so a
  // shard that skips other users' events assigns different ordinals than the
  // union store — a shard-local position, not replicated content
  // (docs/federation.md documents this next to the merged byte-order caveat).
  using Row = std::tuple<std::uint64_t, double, double>;
  const auto collect = [](const std::function<net::HttpResponse(const std::string&)>& fetch,
                          const std::string& base, std::vector<Row>& rows,
                          std::vector<double>& days) -> std::uint64_t {
    std::uint64_t total = 0;
    for (std::uint64_t page = 0;; ++page) {
      auto parsed = crawlersim::parse_json(
          fetch(util::format("{}?page={}", base, page)).body);
      if (!parsed.has_value()) ADD_FAILURE() << base;
      total = parsed->at("total").as_u64();
      const auto& comments = parsed->at("comments").as_array();
      for (const auto& comment : comments) {
        rows.emplace_back(comment.at("user").as_u64(), comment.at("day").as_number(),
                          comment.at("rating").as_number());
        days.push_back(comment.at("day").as_number());
      }
      if ((page + 1) * 200 >= total || comments.empty()) break;
    }
    return total;
  };

  // Find an app that actually has comments in the union store.
  const auto directory = parse_ok(single_store("/api/v1/apps?page=0"));
  std::string base;
  for (const auto& id : directory.at("ids").as_array()) {
    const std::string candidate = util::format("/api/v1/app/{}/comments", id.as_u64());
    const auto probe = parse_ok(single_store(candidate + "?page=0"));
    if (probe.at("total").as_u64() > 0) {
      base = candidate;
      break;
    }
  }
  ASSERT_FALSE(base.empty()) << "no commented app at golden scale";

  std::vector<Row> single_rows;
  std::vector<double> single_days;
  const std::uint64_t single_total = collect(
      [](const std::string& t) { return single_store(t); }, base, single_rows,
      single_days);
  ASSERT_EQ(single_rows.size(), single_total);

  for (std::size_t i = 0; i < world_->shard_counts.size(); ++i) {
    std::vector<Row> merged_rows;
    std::vector<double> merged_days;
    const std::uint64_t merged_total = collect(
        [i](const std::string& t) { return gateway(i, t); }, base, merged_rows,
        merged_days);
    EXPECT_EQ(merged_total, single_total) << world_->shard_counts[i] << " shards";
    ASSERT_EQ(merged_rows.size(), single_rows.size());
    // The merged stream is day-ordered (the documented federation order)...
    EXPECT_TRUE(std::is_sorted(merged_days.begin(), merged_days.end()));
    // ...and is exactly the union store's row multiset.
    auto want = single_rows;
    std::sort(want.begin(), want.end());
    std::sort(merged_rows.begin(), merged_rows.end());
    EXPECT_EQ(merged_rows, want) << world_->shard_counts[i] << " shards";
  }
}

TEST_F(FederationParity, SingleUserQueryRoutesToOneShard) {
  net::HttpRequest request = get("/api/v1/query");
  request.method = "POST";
  request.body =
      "{\"kind\": \"top_k_downloads\", \"k\": 5, "
      "\"filter\": {\"field\": \"user\", \"op\": \"==\", \"value\": 7}}";

  const auto expected = parse_ok(world_->service->respond(request));
  const std::size_t four_shards = world_->shard_counts.size() - 1;
  ASSERT_EQ(world_->shard_counts[four_shards], 4u);
  const auto before = world_->gateways[four_shards]->stats();
  const auto merged = parse_ok(world_->gateways[four_shards]->respond(request));
  const auto after = world_->gateways[four_shards]->stats();

  // The fast path: one upstream call, no scatter, no partial merge.
  EXPECT_EQ(after.upstream_calls - before.upstream_calls, 1u);
  const auto& want = expected.at("top").as_array();
  const auto& got = merged.at("top").as_array();
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t p = 0; p < want.size(); ++p) {
    EXPECT_EQ(got[p].at("app").as_u64(), want[p].at("app").as_u64());
    EXPECT_EQ(got[p].at("downloads").as_u64(), want[p].at("downloads").as_u64());
  }
  EXPECT_EQ(merged.at("total_downloads").as_u64(),
            expected.at("total_downloads").as_u64());
}

TEST_F(FederationParity, ShardUnionMatchesSingleStoreEventCounts) {
  // The bring-up contract behind all of the above: disjoint user slices
  // whose union is the whole store.
  const std::uint64_t single_downloads = world_->single.store->total_downloads();
  for (std::size_t i = 0; i < world_->shard_counts.size(); ++i) {
    std::uint64_t downloads = 0;
    for (const auto& generated : world_->federations[i].stores) {
      downloads += generated.store->total_downloads();
    }
    EXPECT_EQ(downloads, single_downloads) << world_->shard_counts[i] << " shards";
  }
}

}  // namespace
}  // namespace appstore
