// Tests for the crawler substrate: JSON, the appstore REST service, the
// crawl database, and the end-to-end crawler with proxy rotation.
#include <gtest/gtest.h>

#include "crawler/apk.hpp"
#include "crawler/crawler.hpp"
#include "crawler/database.hpp"
#include "crawler/json.hpp"
#include "crawler/service.hpp"
#include "obs/registry.hpp"
#include "synth/generator.hpp"
#include "util/format.hpp"

namespace appstore::crawlersim {
namespace {

// ---- JSON ------------------------------------------------------------------------

TEST(Json, DumpPrimitives) {
  EXPECT_EQ(Json(nullptr).dump(), "null");
  EXPECT_EQ(Json(true).dump(), "true");
  EXPECT_EQ(Json(false).dump(), "false");
  EXPECT_EQ(Json(42).dump(), "42");
  EXPECT_EQ(Json(1.5).dump(), "1.5");
  EXPECT_EQ(Json("hi").dump(), "\"hi\"");
}

TEST(Json, DumpEscapes) {
  EXPECT_EQ(Json("a\"b\\c\nd").dump(), "\"a\\\"b\\\\c\\nd\"");
  EXPECT_EQ(Json(std::string(1, '\x01')).dump(), "\"\\u0001\"");
}

TEST(Json, DumpNested) {
  const Json value = json_object(
      {{"ids", Json(JsonArray{Json(1), Json(2)})}, {"meta", json_object({{"ok", Json(true)}})}});
  EXPECT_EQ(value.dump(), R"({"ids":[1,2],"meta":{"ok":true}})");
}

TEST(Json, ParsePrimitives) {
  EXPECT_TRUE(parse_json("null")->is_null());
  EXPECT_TRUE(parse_json("true")->as_bool());
  EXPECT_DOUBLE_EQ(parse_json("-2.5e2")->as_number(), -250.0);
  EXPECT_EQ(parse_json("\"x\\ny\"")->as_string(), "x\ny");
}

TEST(Json, ParseUnicodeEscape) {
  EXPECT_EQ(parse_json("\"\\u0041\"")->as_string(), "A");
  EXPECT_EQ(parse_json("\"\\u00e9\"")->as_string(), "\xc3\xa9");  // é in UTF-8
}

TEST(Json, RoundTripComplex) {
  const std::string text =
      R"({"a":[1,2,{"b":null}],"c":"x","d":false,"e":{"f":[[]]},"g":1e3})";
  const auto parsed = parse_json(text);
  ASSERT_TRUE(parsed.has_value());
  const auto reparsed = parse_json(parsed->dump());
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(*parsed, *reparsed);
}

TEST(Json, ParseRejectsMalformed) {
  EXPECT_FALSE(parse_json("").has_value());
  EXPECT_FALSE(parse_json("{").has_value());
  EXPECT_FALSE(parse_json("[1,]").has_value());
  EXPECT_FALSE(parse_json("{\"a\":}").has_value());
  EXPECT_FALSE(parse_json("{\"a\":1,}").has_value());
  EXPECT_FALSE(parse_json("\"unterminated").has_value());
  EXPECT_FALSE(parse_json("1 2").has_value());        // trailing garbage
  EXPECT_FALSE(parse_json("nully").has_value());
  EXPECT_FALSE(parse_json("{'a':1}").has_value());    // single quotes
}

TEST(Json, ParseWhitespaceTolerant) {
  const auto parsed = parse_json("  { \"a\" :\n[ 1 , 2 ]\t}  ");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->at("a").as_array().size(), 2u);
}

TEST(Json, FindAndAt) {
  const Json value = json_object({{"x", Json(1)}});
  EXPECT_NE(value.find("x"), nullptr);
  EXPECT_EQ(value.find("y"), nullptr);
  EXPECT_THROW((void)value.at("y"), std::out_of_range);
  EXPECT_EQ(Json(1).find("x"), nullptr);  // non-object
}

TEST(Json, DeepNestingGuard) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  EXPECT_FALSE(parse_json(deep).has_value());  // beyond depth limit
}

// ---- database --------------------------------------------------------------------

AppRecord meta(std::uint32_t id, bool paid = false) {
  AppRecord record;
  record.id = id;
  record.name = "app";
  record.category = "games";
  record.developer = "dev";
  record.paid = paid;
  return record;
}

TEST(Database, RecordAndUpsert) {
  CrawlDatabase database;
  database.record(meta(1), 0, AppObservation{100, 1, 0.0});
  database.record(meta(1), 1, AppObservation{150, 2, 0.0});
  EXPECT_EQ(database.app_count(), 1u);
  const AppRecord* record = database.find(1);
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(record->by_day.size(), 2u);
  EXPECT_EQ(record->by_day.at(1).downloads, 150u);
  EXPECT_EQ(record->first_seen, 0);
}

TEST(Database, SnapshotSeriesAccumulates) {
  CrawlDatabase database;
  database.record(meta(1), 0, AppObservation{100, 1, 0.0});
  database.record(meta(1), 1, AppObservation{150, 1, 0.0});
  database.record(meta(2), 1, AppObservation{30, 1, 0.0});
  const auto series = database.snapshot_series();
  ASSERT_EQ(series.snapshots().size(), 2u);
  EXPECT_EQ(series.snapshots()[0].total_apps, 1u);
  EXPECT_EQ(series.snapshots()[0].total_downloads, 100u);
  EXPECT_EQ(series.snapshots()[1].total_apps, 2u);
  EXPECT_EQ(series.snapshots()[1].total_downloads, 180u);
}

TEST(Database, RanksAndPricingFilter) {
  CrawlDatabase database;
  database.record(meta(1), 0, AppObservation{100, 1, 0.0});
  database.record(meta(2, true), 0, AppObservation{5, 1, 1.99});
  database.record(meta(3), 0, AppObservation{40, 1, 0.0});
  const auto all = database.downloads_by_rank(0);
  ASSERT_EQ(all.size(), 3u);
  EXPECT_DOUBLE_EQ(all[0], 100.0);
  EXPECT_DOUBLE_EQ(all[2], 5.0);
  const auto paid = database.downloads_by_rank(0, true);
  ASSERT_EQ(paid.size(), 1u);
  EXPECT_DOUBLE_EQ(paid[0], 5.0);
}

TEST(Database, UpdatesFromVersionDelta) {
  CrawlDatabase database;
  database.record(meta(1), 0, AppObservation{1, 1, 0.0});
  database.record(meta(1), 5, AppObservation{2, 3, 0.0});
  database.record(meta(2), 0, AppObservation{1, 1, 0.0});
  const auto updates = database.updates_per_app();
  ASSERT_EQ(updates.size(), 2u);
  EXPECT_DOUBLE_EQ(updates[0], 2.0);  // version 1 -> 3
  EXPECT_DOUBLE_EQ(updates[1], 0.0);
}


// ---- APK artifacts (the Androguard substitute, §6.3) -------------------------

TEST(Apk, BuildScanRoundTrip) {
  const std::vector<std::string> ads = {ad_network_signatures()[3],
                                        ad_network_signatures()[7]};
  const std::string blob = build_apk(42, 2, ads, 1000);
  const auto header = parse_apk_header(blob);
  ASSERT_TRUE(header.has_value());
  EXPECT_EQ(header->app_id, 42u);
  EXPECT_EQ(header->version, 2u);
  const auto scan = scan_apk(blob);
  ASSERT_TRUE(scan.has_value());
  EXPECT_TRUE(scan->has_ads());
  EXPECT_EQ(scan->ad_libraries.size(), 2u);
}

TEST(Apk, CleanApkScansClean) {
  const std::string blob = build_apk(7, 1, {}, 500);
  const auto scan = scan_apk(blob);
  ASSERT_TRUE(scan.has_value());
  EXPECT_FALSE(scan->has_ads());
}

TEST(Apk, DeterministicPerAppAndVersion) {
  const auto ads = select_ad_libraries(5, true);
  EXPECT_EQ(build_apk(5, 1, ads), build_apk(5, 1, ads));
  EXPECT_NE(build_apk(5, 1, ads), build_apk(5, 2, ads));
}

TEST(Apk, SelectAdLibrariesStableAndBounded) {
  EXPECT_TRUE(select_ad_libraries(9, false).empty());
  const auto first = select_ad_libraries(9, true);
  const auto second = select_ad_libraries(9, true);
  EXPECT_EQ(first, second);
  EXPECT_GE(first.size(), 1u);
  EXPECT_LE(first.size(), 3u);
}

TEST(Apk, RejectsGarbage) {
  EXPECT_FALSE(parse_apk_header("not an apk").has_value());
  EXPECT_FALSE(scan_apk("APK1\n1\n").has_value());
}

// ---- service + crawler integration ------------------------------------------------

class ServiceFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    synth::GeneratorConfig config;
    config.app_scale = 0.002;       // ~120 apps
    config.download_scale = 2e-6;   // ~5.6k downloads
    config.comments = true;
    config.seed = 11;
    generated_ = std::make_unique<synth::GeneratedStore>(synth::generate(synth::anzhi(), config));
  }

  std::unique_ptr<synth::GeneratedStore> generated_;
};

TEST_F(ServiceFixture, MetaAndAppEndpoints) {
  ServicePolicy policy;
  AppstoreService service(*generated_->store, policy);
  service.set_day(generated_->store->apps().size() > 0 ? 60 : 0);

  net::HttpClient client("127.0.0.1", service.port());
  net::Headers headers;
  headers["X-Client-Id"] = "proxy-eu-1";

  const auto meta_response = client.get("/api/meta", headers);
  ASSERT_EQ(meta_response.status, 200);
  const auto meta_json = parse_json(meta_response.body);
  ASSERT_TRUE(meta_json.has_value());
  EXPECT_EQ(meta_json->at("store").as_string(), "Anzhi");
  EXPECT_EQ(meta_json->at("total_apps").as_u64(), generated_->store->apps().size());

  const auto app_response = client.get("/api/app/0", headers);
  ASSERT_EQ(app_response.status, 200);
  const auto app_json = parse_json(app_response.body);
  EXPECT_EQ(app_json->at("downloads").as_u64(),
            generated_->store->downloads_of(market::AppId{0}));
  EXPECT_FALSE(app_json->at("paid").as_bool());
}

TEST_F(ServiceFixture, PaginationCoversDirectory) {
  AppstoreService service(*generated_->store, ServicePolicy{});
  service.set_day(60);
  net::HttpClient client("127.0.0.1", service.port());
  net::Headers headers;
  headers["X-Client-Id"] = "proxy-eu-1";

  std::size_t seen = 0;
  for (std::uint64_t page = 0;; ++page) {
    const auto response =
        client.get(util::format("/api/apps?page={}&per_page=50", page), headers);
    ASSERT_EQ(response.status, 200);
    const auto parsed = parse_json(response.body);
    const auto& ids = parsed->at("ids").as_array();
    seen += ids.size();
    if (ids.size() < 50) break;
  }
  EXPECT_EQ(seen, generated_->store->apps().size());
}

TEST_F(ServiceFixture, UnknownRoutesAnd404) {
  AppstoreService service(*generated_->store, ServicePolicy{});
  service.set_day(60);
  net::HttpClient client("127.0.0.1", service.port());
  net::Headers headers;
  headers["X-Client-Id"] = "proxy-eu-1";
  EXPECT_EQ(client.get("/nope", headers).status, 404);
  EXPECT_EQ(client.get("/api/app/999999", headers).status, 404);
  EXPECT_EQ(client.get("/api/app/abc", headers).status, 404);
  EXPECT_EQ(client.get("/api/apps?page=xyz", headers).status, 400);
}

TEST_F(ServiceFixture, RateLimiting429) {
  ServicePolicy policy;
  policy.rate_per_second = 0.001;  // effectively no refill during the test
  policy.burst = 3.0;
  AppstoreService service(*generated_->store, policy);
  service.set_day(60);
  net::HttpClient client("127.0.0.1", service.port());
  net::Headers headers;
  headers["X-Client-Id"] = "proxy-eu-9";
  EXPECT_EQ(client.get("/api/meta", headers).status, 200);
  EXPECT_EQ(client.get("/api/meta", headers).status, 200);
  EXPECT_EQ(client.get("/api/meta", headers).status, 200);
  EXPECT_EQ(client.get("/api/meta", headers).status, 429);
  // A different client identity (proxy) is unaffected.
  net::Headers other;
  other["X-Client-Id"] = "proxy-eu-10";
  EXPECT_EQ(client.get("/api/meta", other).status, 200);
}

TEST_F(ServiceFixture, RegionGating403) {
  ServicePolicy policy;
  policy.china_only = true;
  AppstoreService service(*generated_->store, policy);
  service.set_day(60);
  net::HttpClient client("127.0.0.1", service.port());
  net::Headers european;
  european["X-Client-Id"] = "proxy-eu-1";
  EXPECT_EQ(client.get("/api/meta", european).status, 403);
  net::Headers chinese;
  chinese["X-Client-Id"] = "proxy-cn-1";
  EXPECT_EQ(client.get("/api/meta", chinese).status, 200);
}

TEST_F(ServiceFixture, DayGatesVisibility) {
  AppstoreService service(*generated_->store, ServicePolicy{});
  net::HttpClient client("127.0.0.1", service.port());
  net::Headers headers;
  headers["X-Client-Id"] = "proxy-eu-1";

  service.set_day(0);
  const auto early = parse_json(client.get("/api/meta", headers).body)->at("total_apps").as_u64();
  service.set_day(60);
  const auto late = parse_json(client.get("/api/meta", headers).body)->at("total_apps").as_u64();
  EXPECT_LT(early, late);  // new apps appeared during the crawl window

  // Downloads are cumulative in the day.
  service.set_day(0);
  const auto d0 = parse_json(client.get("/api/app/0", headers).body)->at("downloads").as_u64();
  service.set_day(60);
  const auto d60 = parse_json(client.get("/api/app/0", headers).body)->at("downloads").as_u64();
  EXPECT_LE(d0, d60);
  EXPECT_EQ(d60, generated_->store->downloads_of(market::AppId{0}));
}

TEST_F(ServiceFixture, CommentsEndpointPaginates) {
  AppstoreService service(*generated_->store, ServicePolicy{});
  service.set_day(60);
  net::HttpClient client("127.0.0.1", service.port());
  net::Headers headers;
  headers["X-Client-Id"] = "proxy-eu-1";
  const auto response = client.get("/api/app/0/comments?page=0", headers);
  ASSERT_EQ(response.status, 200);
  const auto parsed = parse_json(response.body);
  EXPECT_TRUE(parsed->at("comments").is_array());
}

TEST_F(ServiceFixture, CrawlerEndToEndMatchesGroundTruth) {
  AppstoreService service(*generated_->store, ServicePolicy{});
  CrawlDatabase database;
  CrawlerConfig config;
  config.port = service.port();
  config.proxy_count = 6;
  Crawler crawler(config, database);

  for (market::Day day : {0, 30, 60}) {
    service.set_day(day);
    const CrawlStats stats = crawler.crawl_day(day);
    EXPECT_GT(stats.apps_observed, 0u);
  }

  // Every app visible on day 60 was observed, with exact download counts.
  EXPECT_EQ(database.app_count(), generated_->store->apps().size());
  for (const auto& app : generated_->store->apps()) {
    const AppRecord* record = database.find(app.id.value);
    ASSERT_NE(record, nullptr);
    EXPECT_EQ(record->by_day.rbegin()->second.downloads,
              generated_->store->downloads_of(app.id))
        << "app " << app.id.value;
  }

  // The snapshot series should show growth across the three crawl days.
  const auto series = database.snapshot_series();
  ASSERT_EQ(series.snapshots().size(), 3u);
  EXPECT_LT(series.snapshots()[0].total_downloads, series.snapshots()[2].total_downloads);
}

TEST_F(ServiceFixture, CrawlerSurvivesInjectedFailures) {
  ServicePolicy policy;
  policy.failure_rate = 0.15;
  AppstoreService service(*generated_->store, policy);
  service.set_day(60);

  CrawlDatabase database;
  CrawlerConfig config;
  config.port = service.port();
  config.proxy_count = 12;
  config.max_attempts = 8;
  Crawler crawler(config, database);
  const CrawlStats stats = crawler.crawl_day(60);
  EXPECT_GT(stats.transient_failures, 0u);  // failures actually happened
  // Retries should still recover nearly all apps.
  EXPECT_GT(database.app_count(), generated_->store->apps().size() * 9 / 10);
}

TEST_F(ServiceFixture, MetricsEndpointMatchesCrawlerTallies) {
  ServicePolicy policy;
  policy.failure_rate = 0.1;  // exercise the injected-failure counter
  AppstoreService service(*generated_->store, policy);
  service.set_day(60);

  CrawlDatabase database;
  obs::Registry crawler_metrics;
  CrawlerOptions options;
  options.port = service.port();
  options.proxy_count = 12;
  options.max_attempts = 8;
  options.metrics = &crawler_metrics;
  Crawler crawler(options, database);
  const CrawlStats stats = crawler.crawl_day(60);
  ASSERT_GT(stats.requests, 0u);
  EXPECT_GT(stats.transient_failures, 0u);

  // The crawler's own registry mirrors its CrawlStats tallies exactly.
  const auto crawler_snapshot = crawler_metrics.snapshot();
  EXPECT_EQ(crawler_snapshot.find_counter("crawler_requests_total")->value, stats.requests);
  EXPECT_EQ(crawler_snapshot.find_counter("crawler_responses_total", "429")->value,
            stats.rate_limited);
  EXPECT_EQ(crawler_snapshot.find_counter("crawler_responses_total", "5xx")->value,
            stats.transient_failures);

  // Scrape the service's own registry. /api/metrics bypasses region gating,
  // rate limiting and failure injection, so the scrape always succeeds.
  net::HttpClient client("127.0.0.1", service.port());
  net::Headers headers;
  headers["X-Client-Id"] = "proxy-eu-1";
  const auto response = client.get("/api/metrics", headers);
  ASSERT_EQ(response.status, 200);
  const auto parsed = parse_json(response.body);
  ASSERT_TRUE(parsed.has_value());

  const auto find_counter = [&](std::string_view name,
                                std::string_view label) -> std::uint64_t {
    for (const auto& counter : parsed->at("counters").as_array()) {
      if (counter.at("name").as_string() == name && counter.at("label").as_string() == label) {
        return counter.at("value").as_u64();
      }
    }
    return 0;
  };

  // Per-endpoint request counters increment before every policy gate, so
  // their sum (excluding this scrape itself) equals the crawler's attempt
  // count — on loopback no request is lost in transport.
  std::uint64_t service_requests = 0;
  for (const auto& counter : parsed->at("counters").as_array()) {
    if (counter.at("name").as_string() == "service_requests_total" &&
        counter.at("label").as_string() != "metrics") {
      service_requests += counter.at("value").as_u64();
    }
  }
  EXPECT_EQ(service_requests, stats.requests);
  EXPECT_EQ(find_counter("rate_limiter_throttled_total", ""), stats.rate_limited);
  EXPECT_EQ(find_counter("service_injected_failures_total", ""), stats.transient_failures);
  EXPECT_EQ(find_counter("service_region_blocked_total", ""), stats.region_blocked);

  // Latency histograms expose p50/p99 per endpoint.
  bool found_latency = false;
  for (const auto& histogram : parsed->at("histograms").as_array()) {
    if (histogram.at("name").as_string() == "service_request_seconds" &&
        histogram.at("label").as_string() == "app") {
      found_latency = true;
      EXPECT_GT(histogram.at("count").as_u64(), 0u);
      EXPECT_GT(histogram.at("p50").as_number(), 0.0);
      EXPECT_GE(histogram.at("p99").as_number(), histogram.at("p50").as_number());
    }
  }
  EXPECT_TRUE(found_latency);

  // The text exporter is reachable with ?fmt=text.
  const auto text_response = client.get("/api/metrics?fmt=text", headers);
  ASSERT_EQ(text_response.status, 200);
  EXPECT_NE(text_response.body.find("# TYPE service_requests_total counter"),
            std::string::npos);
}

TEST_F(ServiceFixture, CrawlerConvergesOnChineseProxies) {
  ServicePolicy policy;
  policy.china_only = true;
  AppstoreService service(*generated_->store, policy);
  service.set_day(60);

  CrawlDatabase database;
  CrawlerConfig config;
  config.port = service.port();
  config.proxy_count = 9;  // 3 regions round-robin -> 3 Chinese proxies
  Crawler crawler(config, database);
  const CrawlStats stats = crawler.crawl_day(60);
  EXPECT_GT(stats.region_blocked, 0u);
  EXPECT_EQ(database.app_count(), generated_->store->apps().size());
  // Non-Chinese proxies end up quarantined; Chinese ones stay healthy.
  EXPECT_EQ(crawler.proxies().healthy_count(net::Region::kChina), 3u);
}

TEST_F(ServiceFixture, ApkEndpointServesScannableBlobs) {
  AppstoreService service(*generated_->store, ServicePolicy{});
  service.set_day(60);
  net::HttpClient client("127.0.0.1", service.port());
  net::Headers headers;
  headers["X-Client-Id"] = "proxy-eu-1";

  const auto response = client.get("/api/app/0/apk", headers);
  ASSERT_EQ(response.status, 200);
  const auto scan = scan_apk(response.body);
  ASSERT_TRUE(scan.has_value());
  EXPECT_EQ(scan->header.app_id, 0u);
  EXPECT_EQ(scan->has_ads(), generated_->store->app(market::AppId{0}).has_ads);
}

TEST_F(ServiceFixture, CrawlerFetchesEachApkVersionOnce) {
  AppstoreService service(*generated_->store, ServicePolicy{});
  CrawlDatabase database;
  CrawlerConfig config;
  config.port = service.port();
  config.fetch_apks = true;
  Crawler crawler(config, database);

  service.set_day(0);
  const auto first = crawler.crawl_day(0);
  EXPECT_GT(first.apks_fetched, 0u);
  // Re-crawling the same day downloads no new APKs (versions unchanged).
  const auto again = crawler.crawl_day(0);
  EXPECT_EQ(again.apks_fetched, 0u);
  // Moving to the last day fetches only apps whose version advanced plus
  // newly released apps.
  service.set_day(60);
  const auto last = crawler.crawl_day(60);
  EXPECT_LT(last.apks_fetched, first.apks_fetched + 200);

  // The scanned ad fraction matches the store's ground-truth flags.
  std::size_t truth_free = 0;
  std::size_t truth_ads = 0;
  for (const auto& app : generated_->store->apps()) {
    if (app.pricing != market::Pricing::kFree) continue;
    ++truth_free;
    if (app.has_ads) ++truth_ads;
  }
  const double truth_fraction =
      static_cast<double>(truth_ads) / static_cast<double>(truth_free);
  EXPECT_NEAR(database.free_apps_with_ads_fraction(), truth_fraction, 1e-9);
}


}  // namespace
}  // namespace appstore::crawlersim
