// Golden-figure regression tests: seeded runs of the fig2 (Pareto) and fig8
// (model-fit) pipelines compared against small checked-in summaries, so a
// statistical refactor cannot silently drift the paper's headline results.
//
// Goldens live in tests/golden/*.csv ("key,value" rows). Regenerate after an
// *intentional* change with:
//   APPSTORE_UPDATE_GOLDEN=1 ./build/tests/golden_test
// and commit the diff — the point is that drift shows up in review.
//
// Tolerances are explicit per figure:
//   fig2  — Pareto shares within ±0.015 (absolute, shares are in [0, 1]);
//   fig8  — grid-selected best parameters exact; Eq.-6 distances within 5%
//           relative (the pipeline is seeded and thread-count-invariant, so
//           slack only absorbs FP reassociation across compilers).
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "core/study.hpp"
#include "fit/sweep.hpp"
#include "synth/generator.hpp"
#include "synth/profile.hpp"
#include "util/format.hpp"

#ifndef APPSTORE_GOLDEN_DIR
#error "APPSTORE_GOLDEN_DIR must point at tests/golden (set by tests/CMakeLists.txt)"
#endif

namespace appstore {
namespace {

using GoldenMap = std::map<std::string, double>;

[[nodiscard]] std::string golden_path(const std::string& name) {
  return std::string(APPSTORE_GOLDEN_DIR) + "/" + name;
}

[[nodiscard]] bool update_mode() {
  const char* flag = std::getenv("APPSTORE_UPDATE_GOLDEN");
  return flag != nullptr && flag[0] != '\0' && flag[0] != '0';
}

[[nodiscard]] GoldenMap read_golden(const std::string& name) {
  GoldenMap golden;
  std::ifstream in(golden_path(name));
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    const auto comma = line.rfind(',');
    if (comma == std::string::npos) continue;
    golden[line.substr(0, comma)] = std::stod(line.substr(comma + 1));
  }
  return golden;
}

void write_golden(const std::string& name, const GoldenMap& values) {
  std::ofstream out(golden_path(name), std::ios::trunc);
  ASSERT_TRUE(out) << "cannot write " << golden_path(name);
  out << "# regenerate: APPSTORE_UPDATE_GOLDEN=1 ./build/tests/golden_test\n";
  for (const auto& [key, value] : values) {
    out << key << ',' << util::format("{:.9g}", value) << '\n';
  }
}

/// Compares computed values against the golden file (or rewrites it in
/// update mode). Key sets must match exactly — a new metric needs a new
/// golden entry, a removed one must be removed deliberately.
void check_against_golden(const std::string& name, const GoldenMap& computed,
                          double abs_tolerance, double rel_tolerance) {
  if (update_mode()) {
    write_golden(name, computed);
    GTEST_SKIP() << "regenerated " << name;
  }
  const GoldenMap golden = read_golden(name);
  ASSERT_FALSE(golden.empty()) << golden_path(name)
                               << " missing — run with APPSTORE_UPDATE_GOLDEN=1";
  for (const auto& [key, expected] : golden) {
    const auto it = computed.find(key);
    ASSERT_NE(it, computed.end()) << "golden key not computed: " << key;
    const double tolerance = abs_tolerance + rel_tolerance * std::abs(expected);
    EXPECT_NEAR(it->second, expected, tolerance) << key;
  }
  for (const auto& [key, value] : computed) {
    EXPECT_TRUE(golden.contains(key)) << "computed key not in golden: " << key
                                      << " = " << value;
  }
}

/// Small fixed config shared by both figures: the goldens pin this exact
/// run, so the config is part of the contract.
[[nodiscard]] synth::GeneratorConfig golden_config() {
  synth::GeneratorConfig config;
  config.seed = 0x5eed;
  config.app_scale = 0.01;
  config.download_scale = 5e-5;
  return config;
}

TEST(GoldenFigures, Fig2ParetoShares) {
  GoldenMap computed;
  for (const auto& profile : synth::all_profiles()) {
    const core::EcosystemStudy study(profile, golden_config());
    for (const double fraction : {0.01, 0.05, 0.10, 0.20, 0.50}) {
      computed[profile.name + ":top" + util::format("{:.2f}", fraction)] =
          study.pareto_share(fraction);
    }
  }
  check_against_golden("fig2_pareto.csv", computed, /*abs=*/0.015, /*rel=*/0.0);
}

TEST(GoldenFigures, Fig8ModelFit) {
  const auto config = golden_config();
  const auto generated = synth::generate(synth::anzhi(), config);
  const auto measured = generated.store->downloads_by_rank();
  ASSERT_FALSE(measured.empty());

  fit::SweepOptions options;
  options.zr_grid = {1.0, 1.4, 1.8};
  options.p_grid = {0.85, 0.95};
  options.zc_grid = {1.2, 1.6};
  options.seed = config.seed + 1;

  GoldenMap computed;
  for (const auto kind : {models::ModelKind::kZipf, models::ModelKind::kZipfAtMostOnce,
                          models::ModelKind::kAppClustering}) {
    const auto result = fit::fit_model(
        kind, measured, static_cast<std::uint64_t>(measured.front()),
        static_cast<std::uint32_t>(generated.store->categories().size()), options);
    const std::string prefix(to_string(kind));
    computed[prefix + ":zr"] = result.best.zr;
    if (kind == models::ModelKind::kAppClustering) {
      computed[prefix + ":p"] = result.best.p;
      computed[prefix + ":zc"] = result.best.zc;
    }
    computed[prefix + ":distance"] = result.distance;
  }
  // Grid parameters are compared exactly through the same tolerance formula:
  // rel 5% never bridges adjacent grid points (0.4 apart at minimum 0.85).
  check_against_golden("fig8_model_fit.csv", computed, /*abs=*/1e-9, /*rel=*/0.05);
}

}  // namespace
}  // namespace appstore
