// Golden-figure regression tests: seeded runs of the fig2 (Pareto) and fig8
// (model-fit) pipelines compared against small checked-in summaries, so a
// statistical refactor cannot silently drift the paper's headline results.
//
// Goldens live in tests/golden/*.csv ("key,value" rows). Regenerate after an
// *intentional* change with:
//   APPSTORE_UPDATE_GOLDEN=1 ./build/tests/golden_test
// and commit the diff — the point is that drift shows up in review.
//
// Tolerances are explicit per figure:
//   fig2  — Pareto shares within ±0.015 (absolute, shares are in [0, 1]);
//   fig8  — grid-selected best parameters exact; Eq.-6 distances within 5%
//           relative (the pipeline is seeded and thread-count-invariant, so
//           slack only absorbs FP reassociation across compilers).
//
// The /api/v1/query engine is pinned against the same figures: the served
// pareto_share answer must land inside the fig2 golden, and the affinity /
// rank-curve aggregates carry their own goldens (fig6_affinity.csv,
// query_rank_curve.csv) generated from the same seeded config.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "core/study.hpp"
#include "crawler/json.hpp"
#include "crawler/service.hpp"
#include "fit/sweep.hpp"
#include "net/http.hpp"
#include "query/engine.hpp"
#include "synth/generator.hpp"
#include "synth/profile.hpp"
#include "util/format.hpp"

#ifndef APPSTORE_GOLDEN_DIR
#error "APPSTORE_GOLDEN_DIR must point at tests/golden (set by tests/CMakeLists.txt)"
#endif

namespace appstore {
namespace {

using GoldenMap = std::map<std::string, double>;

[[nodiscard]] std::string golden_path(const std::string& name) {
  return std::string(APPSTORE_GOLDEN_DIR) + "/" + name;
}

[[nodiscard]] bool update_mode() {
  const char* flag = std::getenv("APPSTORE_UPDATE_GOLDEN");
  return flag != nullptr && flag[0] != '\0' && flag[0] != '0';
}

[[nodiscard]] GoldenMap read_golden(const std::string& name) {
  GoldenMap golden;
  std::ifstream in(golden_path(name));
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    const auto comma = line.rfind(',');
    if (comma == std::string::npos) continue;
    golden[line.substr(0, comma)] = std::stod(line.substr(comma + 1));
  }
  return golden;
}

void write_golden(const std::string& name, const GoldenMap& values) {
  std::ofstream out(golden_path(name), std::ios::trunc);
  ASSERT_TRUE(out) << "cannot write " << golden_path(name);
  out << "# regenerate: APPSTORE_UPDATE_GOLDEN=1 ./build/tests/golden_test\n";
  for (const auto& [key, value] : values) {
    out << key << ',' << util::format("{:.9g}", value) << '\n';
  }
}

/// Compares computed values against the golden file (or rewrites it in
/// update mode). Key sets must match exactly — a new metric needs a new
/// golden entry, a removed one must be removed deliberately.
void check_against_golden(const std::string& name, const GoldenMap& computed,
                          double abs_tolerance, double rel_tolerance) {
  if (update_mode()) {
    write_golden(name, computed);
    GTEST_SKIP() << "regenerated " << name;
  }
  const GoldenMap golden = read_golden(name);
  ASSERT_FALSE(golden.empty()) << golden_path(name)
                               << " missing — run with APPSTORE_UPDATE_GOLDEN=1";
  for (const auto& [key, expected] : golden) {
    const auto it = computed.find(key);
    ASSERT_NE(it, computed.end()) << "golden key not computed: " << key;
    const double tolerance = abs_tolerance + rel_tolerance * std::abs(expected);
    EXPECT_NEAR(it->second, expected, tolerance) << key;
  }
  for (const auto& [key, value] : computed) {
    EXPECT_TRUE(golden.contains(key)) << "computed key not in golden: " << key
                                      << " = " << value;
  }
}

/// Small fixed config shared by both figures: the goldens pin this exact
/// run, so the config is part of the contract.
[[nodiscard]] synth::GeneratorConfig golden_config() {
  synth::GeneratorConfig config;
  config.seed = 0x5eed;
  config.app_scale = 0.01;
  config.download_scale = 5e-5;
  return config;
}

TEST(GoldenFigures, Fig2ParetoShares) {
  GoldenMap computed;
  for (const auto& profile : synth::all_profiles()) {
    const core::EcosystemStudy study(profile, golden_config());
    for (const double fraction : {0.01, 0.05, 0.10, 0.20, 0.50}) {
      computed[profile.name + ":top" + util::format("{:.2f}", fraction)] =
          study.pareto_share(fraction);
    }
  }
  check_against_golden("fig2_pareto.csv", computed, /*abs=*/0.015, /*rel=*/0.0);
}

TEST(GoldenFigures, Fig8ModelFit) {
  const auto config = golden_config();
  const auto generated = synth::generate(synth::anzhi(), config);
  const auto measured = generated.store->downloads_by_rank();
  ASSERT_FALSE(measured.empty());

  fit::SweepOptions options;
  options.zr_grid = {1.0, 1.4, 1.8};
  options.p_grid = {0.85, 0.95};
  options.zc_grid = {1.2, 1.6};
  options.seed = config.seed + 1;

  GoldenMap computed;
  for (const auto kind : {models::ModelKind::kZipf, models::ModelKind::kZipfAtMostOnce,
                          models::ModelKind::kAppClustering}) {
    const auto result = fit::fit_model(
        kind, measured, static_cast<std::uint64_t>(measured.front()),
        static_cast<std::uint32_t>(generated.store->categories().size()), options);
    const std::string prefix(to_string(kind));
    computed[prefix + ":zr"] = result.best.zr;
    if (kind == models::ModelKind::kAppClustering) {
      computed[prefix + ":p"] = result.best.p;
      computed[prefix + ":zc"] = result.best.zc;
    }
    computed[prefix + ":distance"] = result.distance;
  }
  // Grid parameters are compared exactly through the same tolerance formula:
  // rel 5% never bridges adjacent grid points (0.4 apart at minimum 0.85).
  check_against_golden("fig8_model_fit.csv", computed, /*abs=*/1e-9, /*rel=*/0.05);
}

// ---- /api/v1/query vs the figure pipelines ---------------------------------------

/// The query day bound that covers every generated event.
constexpr market::Day kEndOfHistory = 1 << 20;

TEST(GoldenFigures, QueryServedParetoMatchesFig2) {
  // fig2_pareto.csv is owned (and regenerated) by Fig2ParetoShares; this test
  // pins the full /api/v1/query wire path to the same numbers.
  if (update_mode()) GTEST_SKIP() << "fig2_pareto.csv is regenerated by Fig2ParetoShares";

  GoldenMap computed;
  for (const auto& profile : synth::all_profiles()) {
    const auto generated = synth::generate(profile, golden_config());
    crawlersim::AppstoreService service(*generated.store, crawlersim::ServicePolicy{});
    service.set_day(kEndOfHistory);
    net::HttpRequest request;
    request.target = "/api/v1/query?kind=pareto_share";
    request.headers["X-Client-Id"] = "proxy-eu-1";
    const net::HttpResponse response = service.respond(request);
    ASSERT_EQ(response.status, 200) << response.body;
    const auto parsed = crawlersim::parse_json(response.body);
    ASSERT_TRUE(parsed.has_value());
    for (const auto& point : parsed->at("pareto").as_array()) {
      computed[profile.name +
               ":top" + util::format("{:.2f}", point.at("fraction").as_number())] =
          point.at("share").as_number();
    }
  }
  check_against_golden("fig2_pareto.csv", computed, /*abs=*/0.015, /*rel=*/0.0);
}

TEST(GoldenFigures, QueryAffinityDepthsPinned) {
  // The category_affinity aggregate reproduces the Fig. 6 study (weighted
  // mean over comment-count groups plus the Eq. 4 random-walk baseline).
  synth::GeneratorConfig config = golden_config();
  config.comments = true;
  const auto generated = synth::generate(synth::anzhi(), config);
  const query::QueryEngine engine(*generated.store);

  query::QuerySpec spec;
  spec.kind = query::AggregateKind::kCategoryAffinity;
  spec.depths = {1, 2, 3};
  const query::QueryResult result = engine.run(spec, kEndOfHistory);
  ASSERT_EQ(result.affinity.size(), 3u);

  GoldenMap computed;
  for (const auto& point : result.affinity) {
    const std::string prefix = "anzhi:depth" + std::to_string(point.depth);
    computed[prefix + ":mean"] = point.mean;
    computed[prefix + ":random_walk"] = point.random_walk;
    computed[prefix + ":groups"] = static_cast<double>(point.groups);
    computed[prefix + ":samples"] = static_cast<double>(point.samples);
  }
  // Seeded and serial aggregation: slack only absorbs FP reassociation
  // across compilers.
  check_against_golden("fig6_affinity.csv", computed, /*abs=*/1e-6, /*rel=*/1e-6);
}

TEST(GoldenFigures, QueryRankCurveMatchesFig8Measured) {
  // rank_download_curve samples the same measured curve fig8 fits against.
  const auto generated = synth::generate(synth::anzhi(), golden_config());
  const query::QueryEngine engine(*generated.store);

  query::QuerySpec spec;
  spec.kind = query::AggregateKind::kRankDownloadCurve;
  spec.points = 50;
  const query::QueryResult result = engine.run(spec, kEndOfHistory);
  ASSERT_FALSE(result.curve.empty());

  // Exact parity with the offline series at every sampled rank.
  const std::vector<double> measured = generated.store->downloads_by_rank();
  for (const auto& point : result.curve) {
    ASSERT_GE(point.rank, 1u);
    ASSERT_LE(point.rank, measured.size());
    EXPECT_EQ(static_cast<double>(point.downloads), measured[point.rank - 1])
        << "rank " << point.rank;
  }

  GoldenMap computed;
  computed["anzhi:apps"] = static_cast<double>(measured.size());
  computed["anzhi:total_downloads"] = static_cast<double>(result.total_downloads);
  for (const auto& point : result.curve) {
    computed[util::format("anzhi:rank{}", point.rank)] =
        static_cast<double>(point.downloads);
  }
  check_against_golden("query_rank_curve.csv", computed, /*abs=*/1e-9, /*rel=*/0.0);
}

}  // namespace
}  // namespace appstore
