// LiveEventLog: the ingest-while-serving store's correctness surface.
//
// The load-bearing properties, in rough order of importance:
//   * a FrontierSnapshot is always a dense, valid prefix of the log — even
//     while writers are appending (the concurrent fuzz below runs under the
//     TSan preset);
//   * per-user streams out of the tiered index are bit-identical to the
//     batch EventLog CSR built from the same prefix, at any writer thread
//     count;
//   * a throwing append never wedges the publication chain;
//   * the segmented "ALSG" persistence round-trips and rejects malformed
//     input with typed errors (the seeded corruption fuzz lives in
//     robustness_test next to the other format fuzzers).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <thread>
#include <vector>

#include "events/binary.hpp"
#include "events/event_log.hpp"
#include "events/io.hpp"
#include "events/live_io.hpp"
#include "events/live_log.hpp"

namespace appstore {
namespace {

using events::Columns;
using events::Event;

/// The deterministic event mix used across these tests: the k-th event of
/// user u. Every field is a pure function of (u, k), so any reader can check
/// any prefix without coordinating with the writers.
[[nodiscard]] Event expected_event(std::uint32_t user, std::uint32_t k) {
  Event event;
  event.user = user;
  event.app = (user * 31 + k * 7) % 97;
  event.day = static_cast<std::int32_t>(k);  // strictly increasing per user
  event.rating = static_cast<std::uint8_t>(1 + (user + k) % 5);
  return event;
}

[[nodiscard]] events::LiveOptions small_options(std::uint64_t max_rows = 1ull << 16,
                                                std::uint64_t segment_rows = 1ull << 10,
                                                std::uint32_t max_users = 1u << 12) {
  events::LiveOptions options;
  options.max_rows = max_rows;
  options.segment_rows = segment_rows;
  options.max_users = max_users;
  return options;
}

// ---- single-thread parity with the batch store ------------------------------

TEST(LiveEventLog, MatchesBatchEventLogSerially) {
  events::LiveEventLog live(Columns::kDay | Columns::kOrdinal | Columns::kRating,
                            small_options());
  events::EventLog batch(Columns::kDay | Columns::kOrdinal | Columns::kRating);

  constexpr std::uint32_t kUsers = 50;
  constexpr std::uint32_t kPerUser = 40;
  std::uint32_t ordinal = 0;
  for (std::uint32_t k = 0; k < kPerUser; ++k) {
    for (std::uint32_t u = 0; u < kUsers; ++u) {
      const Event event = expected_event(u, k);
      const std::uint64_t row = live.append(u, event.app, event.day, event.rating);
      EXPECT_EQ(row, ordinal);
      batch.append(u, event.app, event.day, ordinal, event.rating);
      ++ordinal;
    }
  }
  batch.build_index(kUsers);

  const events::FrontierSnapshot snapshot = live.snapshot();
  ASSERT_EQ(snapshot.size(), batch.size());
  ASSERT_TRUE(std::equal(snapshot.user().begin(), snapshot.user().end(),
                         batch.user().begin()));
  ASSERT_TRUE(std::equal(snapshot.app().begin(), snapshot.app().end(),
                         batch.app().begin()));
  ASSERT_TRUE(std::equal(snapshot.day().begin(), snapshot.day().end(),
                         batch.day().begin()));
  ASSERT_TRUE(std::equal(snapshot.ordinal().begin(), snapshot.ordinal().end(),
                         batch.ordinal().begin()));
  ASSERT_TRUE(std::equal(snapshot.rating().begin(), snapshot.rating().end(),
                         batch.rating().begin()));

  for (std::uint32_t u = 0; u < kUsers; ++u) {
    const events::LiveStreamView view = snapshot.stream(u);
    const auto reference = batch.stream(u);
    ASSERT_EQ(view.size(), reference.size()) << "user " << u;
    ASSERT_EQ(snapshot.stream_size(u), reference.size());
    for (std::size_t i = 0; i < view.size(); ++i) {
      EXPECT_EQ(view.event_index(i), reference.event_index(i)) << "user " << u;
      const Event got = view[i];
      const Event want = reference[i];
      EXPECT_EQ(got.user, want.user);
      EXPECT_EQ(got.app, want.app);
      EXPECT_EQ(got.day, want.day);
      EXPECT_EQ(got.ordinal, want.ordinal);
      EXPECT_EQ(got.rating, want.rating);
    }
  }
}

TEST(LiveEventLog, StreamOrderIsDayThenAppendOrder) {
  // Interleave two users with repeating days: the stream must sort by day
  // with append order (== ordinal == row) breaking ties, exactly like the
  // batch CSR's stable sort.
  events::LiveEventLog live(Columns::kDay, small_options());
  live.append(1, 10, 5);
  live.append(2, 20, 5);
  live.append(1, 11, 3);
  live.append(1, 12, 5);
  live.append(1, 13, 3);

  const events::FrontierSnapshot snapshot = live.snapshot();
  const events::LiveStreamView stream = snapshot.stream(1);
  ASSERT_EQ(stream.size(), 4u);
  EXPECT_EQ(stream.event_index(0), 2u);  // day 3, appended first
  EXPECT_EQ(stream.event_index(1), 4u);  // day 3, appended second
  EXPECT_EQ(stream.event_index(2), 0u);  // day 5, appended first
  EXPECT_EQ(stream.event_index(3), 3u);  // day 5, appended second
  EXPECT_TRUE(snapshot.stream(3).empty());
  EXPECT_THROW((void)snapshot.stream(snapshot.user_count()), std::out_of_range);
}

// ---- validation happens before the row is claimed ---------------------------

TEST(LiveEventLog, ThrowingAppendNeverWedgesThePublicationChain) {
  events::LiveEventLog live(Columns::kDay, small_options(1u << 4, 1u << 4, 8));

  EXPECT_THROW(live.append(8, 0, 0), std::out_of_range);  // user >= max_users
  EXPECT_THROW(live.append(0, 0, 0, 3), std::logic_error);  // rating disabled
  // Both rejected appends must have claimed nothing: the next valid append
  // still publishes row 0 immediately.
  EXPECT_EQ(live.append(3, 1, 2), 0u);
  EXPECT_EQ(live.frontier(), 1u);

  for (std::uint32_t i = 1; i < 16; ++i) live.append(0, i, 0);
  EXPECT_THROW(live.append(0, 99, 0), std::length_error);  // at capacity
  EXPECT_EQ(live.frontier(), 16u);
}

TEST(LiveEventLog, BatchIngestValidatesAndRejectsForeignOrdinals) {
  events::LiveEventLog live(Columns::kDay | Columns::kOrdinal, small_options());
  live.append(0, 1, 0);

  // A batch carrying ordinals is accepted only if they continue the row
  // sequence exactly (the store assigns, never adopts).
  events::EventLog continuing(Columns::kDay | Columns::kOrdinal);
  continuing.append(1, 2, 0, 1);
  live.append_batch(continuing);
  EXPECT_EQ(live.frontier(), 2u);

  events::EventLog foreign(Columns::kDay | Columns::kOrdinal);
  foreign.append(1, 2, 0, 7);
  EXPECT_THROW(live.append_batch(foreign), std::invalid_argument);
  events::EventLog wrong_mask(Columns::kNone);
  wrong_mask.append(1, 2);
  EXPECT_THROW(live.append_batch(wrong_mask), std::invalid_argument);
  EXPECT_EQ(live.frontier(), 2u);  // nothing claimed by the rejected batches
}

// ---- the acceptance criterion: bit-identity at any thread count -------------

TEST(LiveEventLog, BatchIngestBitIdenticalAcrossThreadCounts) {
  constexpr std::uint32_t kUsers = 128;
  constexpr std::uint32_t kRows = 20000;
  events::EventLog batch(Columns::kDay);
  for (std::uint32_t i = 0; i < kRows; ++i) {
    const Event event = expected_event(i % kUsers, i / kUsers);
    batch.append(event.user, event.app, event.day, 0, 0);
  }
  events::EventLog reference = batch;
  reference.build_index(kUsers);

  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    events::LiveEventLog live(Columns::kDay, small_options(1u << 15, 1u << 10, kUsers));
    live.append_batch(batch, events::IngestOptions{.threads = threads});
    const events::FrontierSnapshot snapshot = live.snapshot();
    ASSERT_EQ(snapshot.size(), reference.size()) << threads << " threads";
    ASSERT_TRUE(std::equal(snapshot.user().begin(), snapshot.user().end(),
                           reference.user().begin()))
        << threads << " threads";
    ASSERT_TRUE(std::equal(snapshot.app().begin(), snapshot.app().end(),
                           reference.app().begin()))
        << threads << " threads";
    ASSERT_TRUE(std::equal(snapshot.day().begin(), snapshot.day().end(),
                           reference.day().begin()))
        << threads << " threads";
    for (std::uint32_t u = 0; u < kUsers; ++u) {
      const events::LiveStreamView view = snapshot.stream(u);
      const auto want = reference.stream(u);
      ASSERT_EQ(view.size(), want.size()) << threads << " threads, user " << u;
      for (std::size_t i = 0; i < view.size(); ++i) {
        ASSERT_EQ(view.event_index(i), want.event_index(i))
            << threads << " threads, user " << u;
      }
    }
  }
}

// ---- concurrent writer/reader fuzz on the frontier --------------------------

TEST(LiveEventLog, SnapshotsAreValidPrefixesUnderConcurrentWriters) {
  // W writers append disjoint user ranges while R readers continuously
  // snapshot. Every field of every event is a pure function of (user, k)
  // and each user is written by exactly one thread in k order, so a reader
  // can verify an arbitrary prefix by replaying per-user counters over it:
  // the j-th occurrence of user u in row order must be expected_event(u, j).
  // Any torn row, reordered publication, or posting leak past the frontier
  // fails the check (and trips TSan under the tsan preset).
  constexpr std::uint32_t kWriters = 4;
  constexpr std::uint32_t kReaders = 3;
  constexpr std::uint32_t kUsersPerWriter = 8;
  constexpr std::uint32_t kPerUser = 500;
  constexpr std::uint64_t kTotal =
      std::uint64_t{kWriters} * kUsersPerWriter * kPerUser;

  events::LiveEventLog live(Columns::kDay | Columns::kRating,
                            small_options(1u << 15, 1u << 8, kWriters * kUsersPerWriter));

  std::atomic<bool> writers_done{false};
  std::vector<std::thread> threads;
  threads.reserve(kWriters + kReaders);
  for (std::uint32_t w = 0; w < kWriters; ++w) {
    threads.emplace_back([&live, w] {
      for (std::uint32_t k = 0; k < kPerUser; ++k) {
        for (std::uint32_t i = 0; i < kUsersPerWriter; ++i) {
          const std::uint32_t user = w * kUsersPerWriter + i;
          const Event event = expected_event(user, k);
          live.append(user, event.app, event.day, event.rating);
        }
      }
    });
  }

  std::atomic<std::uint64_t> prefixes_checked{0};
  for (std::uint32_t r = 0; r < kReaders; ++r) {
    threads.emplace_back([&] {
      std::vector<std::uint32_t> seen(kWriters * kUsersPerWriter, 0);
      while (true) {
        const bool final_pass = writers_done.load(std::memory_order_acquire);
        const events::FrontierSnapshot snapshot = live.snapshot();
        std::fill(seen.begin(), seen.end(), 0);
        for (std::uint64_t row = 0; row < snapshot.size(); ++row) {
          const Event got = snapshot.row(row);
          ASSERT_LT(got.user, seen.size());
          const Event want = expected_event(got.user, seen[got.user]++);
          ASSERT_EQ(got.app, want.app) << "row " << row;
          ASSERT_EQ(got.day, want.day) << "row " << row;
          ASSERT_EQ(got.rating, want.rating) << "row " << row;
          ASSERT_EQ(got.ordinal, row);
        }
        // Spot-check the tiered index against the same prefix: stream sizes
        // must equal the per-user occurrence counts just replayed, and each
        // stream must be expected_event(u, 0..n) in order (day == k).
        for (std::uint32_t u = 0; u < seen.size(); u += 5) {
          const events::LiveStreamView stream = snapshot.stream(u);
          ASSERT_EQ(stream.size(), seen[u]) << "user " << u;
          for (std::size_t i = 0; i < stream.size(); ++i) {
            ASSERT_EQ(stream[i].day, static_cast<std::int32_t>(i)) << "user " << u;
          }
        }
        prefixes_checked.fetch_add(1, std::memory_order_relaxed);
        if (final_pass) break;
      }
    });
  }

  for (std::uint32_t w = 0; w < kWriters; ++w) threads[w].join();
  writers_done.store(true, std::memory_order_release);
  for (std::uint32_t r = 0; r < kReaders; ++r) threads[kWriters + r].join();

  EXPECT_GE(prefixes_checked.load(), kReaders);  // each reader's final pass
  ASSERT_EQ(live.frontier(), kTotal);

  // The completed log must byte-match a serial replay of the same rows.
  const events::FrontierSnapshot final_snapshot = live.snapshot();
  events::EventLog replay = final_snapshot.to_event_log();
  replay.build_index(kWriters * kUsersPerWriter);
  for (std::uint32_t u = 0; u < kWriters * kUsersPerWriter; ++u) {
    const events::LiveStreamView stream = final_snapshot.stream(u);
    const auto want = replay.stream(u);
    ASSERT_EQ(stream.size(), kPerUser);
    for (std::size_t i = 0; i < stream.size(); ++i) {
      ASSERT_EQ(stream.event_index(i), want.event_index(i)) << "user " << u;
    }
  }
}

// ---- segment geometry and mmap backing --------------------------------------

TEST(LiveEventLog, CrossesSegmentBoundariesTransparently) {
  // 64-row segments, 1000 rows: values and postings must be oblivious to the
  // 15 boundary crossings, and the arena must have committed exactly
  // ceil(1000/64) segments.
  events::LiveEventLog live(Columns::kDay, small_options(1u << 10, 64, 16));
  for (std::uint32_t i = 0; i < 1000; ++i) {
    const Event event = expected_event(i % 16, i / 16);
    live.append(event.user, event.app, event.day);
  }
  const events::FrontierSnapshot snapshot = live.snapshot();
  ASSERT_EQ(snapshot.size(), 1000u);
  for (std::uint32_t i = 0; i < 1000; ++i) {
    const Event want = expected_event(i % 16, i / 16);
    EXPECT_EQ(snapshot.user()[i], want.user);
    EXPECT_EQ(snapshot.app()[i], want.app);
    EXPECT_EQ(snapshot.day()[i], want.day);
  }
  EXPECT_EQ(live.arena().segments_committed(), (1000 + 63) / 64);
  EXPECT_GT(live.bytes(), 0u);
}

TEST(LiveEventLog, MmapBackedModeRoundTrips) {
  const auto dir = std::filesystem::path(::testing::TempDir()) / "live_events_mmap";
  std::filesystem::create_directories(dir);
  events::LiveOptions options = small_options(1u << 12, 1u << 8, 64);
  options.backing_file = dir / "columns.bin";
  {
    events::LiveEventLog live(Columns::kDay | Columns::kRating, options);
    for (std::uint32_t i = 0; i < 3000; ++i) {
      const Event event = expected_event(i % 64, i / 64);
      live.append(event.user, event.app, event.day, event.rating);
    }
    const events::FrontierSnapshot snapshot = live.snapshot();
    for (std::uint32_t i = 0; i < 3000; ++i) {
      const Event want = expected_event(i % 64, i / 64);
      ASSERT_EQ(snapshot.user()[i], want.user);
      ASSERT_EQ(snapshot.rating()[i], want.rating);
    }
    ASSERT_TRUE(std::filesystem::exists(options.backing_file));
    ASSERT_GT(std::filesystem::file_size(options.backing_file), 0u);
  }
  std::filesystem::remove_all(dir);
}

// ---- segmented persistence ("ALSG") -----------------------------------------

TEST(LiveEventIo, SegmentedSaveLoadRoundTrips) {
  const auto dir = std::filesystem::path(::testing::TempDir()) / "live_events_alsg";
  std::filesystem::create_directories(dir);
  const auto path = dir / "log.alsg";

  // Small segments force a multi-segment file; day + rating exercise every
  // optional column the format stores.
  events::LiveEventLog live(Columns::kDay | Columns::kOrdinal | Columns::kRating,
                            small_options(1u << 12, 1u << 8, 128));
  for (std::uint32_t i = 0; i < 2500; ++i) {
    const Event event = expected_event(i % 128, i / 128);
    live.append(event.user, event.app, event.day, event.rating);
  }
  events::save_segmented(live.snapshot(), path);

  const auto loaded = events::load_segmented(path, small_options(1u << 12, 1u << 8, 128));
  const events::FrontierSnapshot got = loaded->snapshot();
  const events::FrontierSnapshot want = live.snapshot();
  ASSERT_EQ(got.size(), want.size());
  ASSERT_EQ(got.columns(), want.columns());
  EXPECT_TRUE(std::equal(got.user().begin(), got.user().end(), want.user().begin()));
  EXPECT_TRUE(std::equal(got.app().begin(), got.app().end(), want.app().begin()));
  EXPECT_TRUE(std::equal(got.day().begin(), got.day().end(), want.day().begin()));
  EXPECT_TRUE(std::equal(got.ordinal().begin(), got.ordinal().end(),
                         want.ordinal().begin()));
  EXPECT_TRUE(std::equal(got.rating().begin(), got.rating().end(),
                         want.rating().begin()));
  for (std::uint32_t u = 0; u < 128; ++u) {
    ASSERT_EQ(got.stream_size(u), want.stream_size(u)) << "user " << u;
  }

  // max_rows smaller than the file: the loader raises it instead of failing.
  const auto grown = events::load_segmented(path, small_options(1u << 8, 1u << 8, 128));
  EXPECT_EQ(grown->frontier(), want.size());
  std::filesystem::remove_all(dir);
}

TEST(LiveEventIo, LoadRejectsUsersBeyondTheBound) {
  const auto dir = std::filesystem::path(::testing::TempDir()) / "live_events_bound";
  std::filesystem::create_directories(dir);
  const auto path = dir / "log.alsg";

  events::LiveEventLog live(Columns::kDay, small_options(1u << 10, 1u << 8, 4096));
  live.append(4000, 1, 2);
  events::save_segmented(live.snapshot(), path);

  // The live loader bounds users by min(max_users, limits.user_bound).
  try {
    (void)events::load_segmented(path, small_options(1u << 10, 1u << 8, 256));
    FAIL() << "user 4000 must not load into a 256-user store";
  } catch (const events::binary::LoadError& error) {
    EXPECT_EQ(error.kind(), events::binary::LoadErrorKind::kUserRange);
  }
  events::LoadLimits limits;
  limits.user_bound = 100;
  try {
    (void)events::load_segmented(path, small_options(1u << 10, 1u << 8, 4096), limits);
    FAIL() << "user 4000 must not pass a bound of 100";
  } catch (const events::binary::LoadError& error) {
    EXPECT_EQ(error.kind(), events::binary::LoadErrorKind::kUserRange);
  }
  std::filesystem::remove_all(dir);
}

TEST(LiveEventIo, SegmentedLoaderEnforcesAppAndDayBounds) {
  // Satellite: the ALSG loader applies the same app/day windows as AEVL.
  const auto dir = std::filesystem::path(::testing::TempDir()) / "live_events_appday";
  std::filesystem::create_directories(dir);
  const auto path = dir / "log.alsg";

  events::LiveEventLog live(Columns::kDay, small_options(1u << 10, 1u << 8, 64));
  live.append(3, 500, -7);
  events::save_segmented(live.snapshot(), path);

  events::LoadLimits limits;
  limits.app_bound = 500;  // exclusive: app 500 is out of range
  try {
    (void)events::load_segmented(path, small_options(1u << 10, 1u << 8, 64), limits);
    FAIL() << "app 500 must not pass a bound of 500";
  } catch (const events::binary::LoadError& error) {
    EXPECT_EQ(error.kind(), events::binary::LoadErrorKind::kAppRange);
  }

  limits = {};
  limits.day_bound = 6;  // magnitude window [-6, 6) excludes day -7
  try {
    (void)events::load_segmented(path, small_options(1u << 10, 1u << 8, 64), limits);
    FAIL() << "day -7 must not pass a magnitude bound of 6";
  } catch (const events::binary::LoadError& error) {
    EXPECT_EQ(error.kind(), events::binary::LoadErrorKind::kDayRange);
  }
  limits.day_bound = 7;  // [-7, 7) admits -7
  EXPECT_EQ(events::load_segmented(path, small_options(1u << 10, 1u << 8, 64), limits)
                ->frontier(),
            1u);
  std::filesystem::remove_all(dir);
}

TEST(LiveEventIo, BinaryLoaderAppliesTheSameBound) {
  // Satellite fix: the AEVL path gained the identical user-range check.
  const auto dir = std::filesystem::path(::testing::TempDir()) / "live_events_aevl_bound";
  std::filesystem::create_directories(dir);
  const auto path = dir / "log.bin";

  events::EventLog log(Columns::kDay);
  log.append(4000, 1, 2, 0, 0);
  events::save_binary(log, path);

  EXPECT_EQ(events::load_binary(path).size(), 1u);  // default: effectively unbounded
  events::LoadLimits limits;
  limits.user_bound = 4000;  // exclusive: user 4000 is out of range
  try {
    (void)events::load_binary(path, limits);
    FAIL() << "user 4000 must not pass an exclusive bound of 4000";
  } catch (const events::binary::LoadError& error) {
    EXPECT_EQ(error.kind(), events::binary::LoadErrorKind::kUserRange);
  }
  limits.user_bound = 4001;
  EXPECT_EQ(events::load_binary(path, limits).size(), 1u);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace appstore
