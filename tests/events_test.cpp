// Tests for the columnar event-log spine (src/events): SoA storage,
// optional-column masks, the CSR per-user index (chronological invariant,
// thread-count determinism), persistence (binary <-> CSV identity), and
// agreement between zero-copy CSR views and the legacy materializing
// per-user streams on a seeded synthetic store.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <vector>

#include "events/binary.hpp"
#include "events/event_log.hpp"
#include "events/io.hpp"
#include "events/live_io.hpp"
#include "market/store.hpp"
#include "obs/registry.hpp"
#include "synth/generator.hpp"
#include "util/rng.hpp"

namespace appstore {
namespace {

using events::BuildOptions;
using events::Columns;
using events::Event;
using events::EventLog;

// ---- construction and columns ------------------------------------------------

TEST(EventLog, DefaultCarriesFullMarketRecord) {
  EventLog log;
  EXPECT_TRUE(has_column(log.columns(), Columns::kDay));
  EXPECT_TRUE(has_column(log.columns(), Columns::kOrdinal));
  EXPECT_TRUE(has_column(log.columns(), Columns::kRating));
  EXPECT_TRUE(log.empty());
}

TEST(EventLog, DisabledColumnsReadAsDefaults) {
  EventLog log(Columns::kNone);
  log.append(3, 7);
  log.append(1, 2);
  EXPECT_TRUE(log.day().empty());
  EXPECT_TRUE(log.ordinal().empty());
  EXPECT_TRUE(log.rating().empty());
  const Event first = log.row(0);
  EXPECT_EQ(first.user, 3u);
  EXPECT_EQ(first.app, 7u);
  EXPECT_EQ(first.day, 0);
  EXPECT_EQ(first.ordinal, 0u);  // ordinal defaults to the row index
  EXPECT_EQ(first.rating, 0u);
  EXPECT_EQ(log.row(1).ordinal, 1u);
}

TEST(EventLog, AppendRejectsValuesForDisabledColumns) {
  EventLog log(Columns::kDay);
  log.append(0, 0, 5);  // day enabled: fine
  EXPECT_THROW(log.append(0, 0, 0, /*ordinal=*/1), std::logic_error);
  EXPECT_THROW(log.append(0, 0, 0, 0, /*rating=*/3), std::logic_error);
}

TEST(EventLog, FromColumnsValidatesShape) {
  // Enabled column with mismatched length.
  EXPECT_THROW((void)EventLog::from_columns(Columns::kDay, {0, 1}, {2, 3}, {4}),
               std::invalid_argument);
  // Disabled column passed non-empty.
  EXPECT_THROW((void)EventLog::from_columns(Columns::kNone, {0}, {1}, {2}),
               std::invalid_argument);
  const auto log = EventLog::from_columns(Columns::kDay, {0, 1}, {2, 3}, {4, 5});
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log.day()[1], 5);
}

TEST(EventLog, BulkAppendRequiresMatchingMask) {
  EventLog a(Columns::kDay);
  EventLog b(Columns::kNone);
  b.append(0, 0);
  EXPECT_THROW(a.append(b), std::invalid_argument);
  EventLog c(Columns::kDay);
  c.append(1, 2, 3);
  a.append(c);
  ASSERT_EQ(a.size(), 1u);
  EXPECT_EQ(a.day()[0], 3);
}

// ---- CSR index ---------------------------------------------------------------

TEST(EventLog, IndexGroupsByUserChronologically) {
  EventLog log(Columns::kDay | Columns::kOrdinal);
  // User 1's events appended out of day order; user 0 interleaved.
  log.append(1, 10, /*day=*/5, /*ordinal=*/0);
  log.append(0, 20, 1, 1);
  log.append(1, 11, 2, 2);
  log.append(1, 12, 5, 3);
  log.build_index(3);

  ASSERT_TRUE(log.indexed());
  EXPECT_EQ(log.user_count(), 3u);
  const auto stream1 = log.stream(1);
  ASSERT_EQ(stream1.size(), 3u);
  EXPECT_EQ(stream1[0].app, 11u);  // day 2 first
  EXPECT_EQ(stream1[1].app, 10u);  // day 5, ordinal 0 before ordinal 3
  EXPECT_EQ(stream1[2].app, 12u);
  EXPECT_EQ(log.stream(0).size(), 1u);
  EXPECT_TRUE(log.stream(2).empty());  // user with no events: empty view
  EXPECT_THROW((void)log.stream(3), std::out_of_range);
}

TEST(EventLog, IndexRejectsOutOfRangeUser) {
  EventLog log(Columns::kNone);
  log.append(5, 0);
  EXPECT_THROW(log.build_index(5), std::invalid_argument);
}

TEST(EventLog, StreamWithoutIndexThrows) {
  EventLog log(Columns::kNone);
  log.append(0, 0);
  EXPECT_THROW((void)log.stream(0), std::logic_error);
}

TEST(EventLog, AppendInvalidatesIndex) {
  EventLog log(Columns::kNone);
  log.append(0, 1);
  log.build_index(1);
  EXPECT_TRUE(log.indexed());
  log.append(0, 2);
  EXPECT_FALSE(log.indexed());
}

TEST(EventLog, IndexIsThreadCountInvariant) {
  util::Rng rng(11);
  EventLog log;
  for (int i = 0; i < 5000; ++i) {
    log.append(static_cast<std::uint32_t>(rng.below(97)),
               static_cast<std::uint32_t>(rng.below(500)),
               static_cast<std::int32_t>(rng.below(30)),
               static_cast<std::uint32_t>(i),
               static_cast<std::uint8_t>(1 + rng.below(5)));
  }
  EventLog serial = log;
  serial.build_index(97, BuildOptions{.threads = 1});
  for (const std::size_t threads : {2, 4, 8}) {
    EventLog parallel = log;
    parallel.build_index(97, BuildOptions{.threads = threads});
    ASSERT_EQ(parallel.offsets().size(), serial.offsets().size());
    for (std::size_t i = 0; i < serial.offsets().size(); ++i) {
      ASSERT_EQ(parallel.offsets()[i], serial.offsets()[i]) << "threads=" << threads;
    }
    for (std::size_t i = 0; i < serial.order().size(); ++i) {
      ASSERT_EQ(parallel.order()[i], serial.order()[i]) << "threads=" << threads;
    }
  }
}

TEST(EventLog, BuildRecordsMetrics) {
  obs::Registry registry;
  EventLog log(Columns::kNone);
  log.append(0, 1);
  log.append(0, 2);
  log.build_index(1, BuildOptions{.metrics = &registry});
  const auto snapshot = registry.snapshot();
  bool saw_bytes = false;
  for (const auto& counter : snapshot.counters) {
    if (counter.name == "events_bytes_total") {
      saw_bytes = true;
      EXPECT_GT(counter.value, 0u);
    }
  }
  EXPECT_TRUE(saw_bytes);
  bool saw_build = false;
  for (const auto& histogram : snapshot.histograms) {
    if (histogram.name == "eventlog_build_seconds") {
      saw_build = true;
      EXPECT_EQ(histogram.count, 1u);
    }
  }
  EXPECT_TRUE(saw_build);
}

// ---- persistence -------------------------------------------------------------

class EventsIoFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    directory_ = std::filesystem::temp_directory_path() / "appstore_events_test";
    std::filesystem::remove_all(directory_);
    std::filesystem::create_directories(directory_);
  }
  void TearDown() override { std::filesystem::remove_all(directory_); }

  std::filesystem::path directory_;
};

/// Seeded random log over the given column mask.
EventLog make_random_log(Columns columns, std::uint64_t seed, int count) {
  util::Rng rng(seed);
  EventLog log(columns);
  for (int i = 0; i < count; ++i) {
    log.append(static_cast<std::uint32_t>(rng.below(64)),
               static_cast<std::uint32_t>(rng.below(1000)),
               has_column(columns, Columns::kDay)
                   ? static_cast<std::int32_t>(rng.below(365)) - 30
                   : 0,
               has_column(columns, Columns::kOrdinal) ? static_cast<std::uint32_t>(i) : 0,
               has_column(columns, Columns::kRating)
                   ? static_cast<std::uint8_t>(1 + rng.below(5))
                   : 0);
  }
  return log;
}

void expect_logs_identical(const EventLog& a, const EventLog& b) {
  ASSERT_EQ(a.columns(), b.columns());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const Event lhs = a.row(i);
    const Event rhs = b.row(i);
    ASSERT_EQ(lhs.user, rhs.user) << "row " << i;
    ASSERT_EQ(lhs.app, rhs.app) << "row " << i;
    ASSERT_EQ(lhs.day, rhs.day) << "row " << i;
    ASSERT_EQ(lhs.ordinal, rhs.ordinal) << "row " << i;
    ASSERT_EQ(lhs.rating, rhs.rating) << "row " << i;
  }
}

TEST_F(EventsIoFixture, BinaryAndCsvLoadsAreElementWiseIdentical) {
  // Property: for any column mask, save_binary -> load_binary and
  // save_csv -> load_csv reproduce the same log, element for element.
  const Columns masks[] = {
      Columns::kNone,
      Columns::kDay,
      Columns::kDay | Columns::kOrdinal,
      Columns::kDay | Columns::kOrdinal | Columns::kRating,
  };
  std::uint64_t seed = 23;
  for (const Columns mask : masks) {
    const EventLog original = make_random_log(mask, seed++, 800);
    const auto bin_path = directory_ / "log.bin";
    const auto csv_path = directory_ / "log.csv";
    events::save_binary(original, bin_path);
    events::save_csv(original, csv_path);
    const EventLog from_binary = events::load_binary(bin_path);
    const EventLog from_csv = events::load_csv(csv_path);
    expect_logs_identical(original, from_binary);
    expect_logs_identical(from_binary, from_csv);
  }
}

TEST_F(EventsIoFixture, EmptyLogRoundTrips) {
  const EventLog original(Columns::kDay | Columns::kRating);
  const auto bin_path = directory_ / "empty.bin";
  const auto csv_path = directory_ / "empty.csv";
  events::save_binary(original, bin_path);
  events::save_csv(original, csv_path);
  EXPECT_TRUE(events::load_binary(bin_path).empty());
  const EventLog from_csv = events::load_csv(csv_path);
  EXPECT_TRUE(from_csv.empty());
  EXPECT_EQ(from_csv.columns(), original.columns());
}

TEST_F(EventsIoFixture, MissingOrForeignFilesThrow) {
  EXPECT_THROW((void)events::load_binary(directory_ / "absent.bin"), std::runtime_error);
  const auto path = directory_ / "foreign.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "not an event log";
  }
  EXPECT_THROW((void)events::load_binary(path), std::runtime_error);
}

TEST_F(EventsIoFixture, BinaryLoaderEnforcesAppAndDayBounds) {
  // Satellite: LoadLimits now bounds the app and day columns uniformly
  // across AEVL/ALSG/AOBS, each defect a typed error.
  EventLog log(Columns::kDay);
  log.append(1, 900, -12, 0, 0);
  const auto path = directory_ / "bounds.bin";
  events::save_binary(log, path);

  EXPECT_EQ(events::load_binary(path).size(), 1u);  // defaults admit everything

  events::LoadLimits limits;
  limits.app_bound = 900;  // exclusive: app 900 is out of range
  try {
    (void)events::load_binary(path, limits);
    FAIL() << "app 900 must not pass a bound of 900";
  } catch (const events::binary::LoadError& error) {
    EXPECT_EQ(error.kind(), events::binary::LoadErrorKind::kAppRange);
  }

  limits = {};
  limits.day_bound = 10;  // magnitude window: day -12 falls outside [-10, 10)
  try {
    (void)events::load_binary(path, limits);
    FAIL() << "day -12 must not pass a magnitude bound of 10";
  } catch (const events::binary::LoadError& error) {
    EXPECT_EQ(error.kind(), events::binary::LoadErrorKind::kDayRange);
  }
  limits.day_bound = 13;  // [-13, 13) admits -12
  EXPECT_EQ(events::load_binary(path, limits).size(), 1u);
}

// ---- live tiered-index streams vs batch CSR ---------------------------------

TEST(EventLogStore, LiveStreamsMatchBatchCsrOnSeededStore) {
  // Seeded Anzhi store with comments: the live store's tiered-index
  // comment_stream()/download_stream() views must agree event-for-event with
  // a batch EventLog CSR built from the same prefix — the bit-identical
  // contract the planner and the affinity pipeline rely on.
  synth::GeneratorConfig config;
  config.app_scale = 0.01;
  config.download_scale = 1e-5;
  config.comments = true;
  synth::StoreProfile profile = synth::anzhi();
  profile.commenter_fraction = 0.25;
  const auto generated = synth::generate(profile, config);
  const market::AppStore& store = *generated.store;
  ASSERT_TRUE(store.stream_index_built());
  ASSERT_GT(store.comment_log().size(), 0u);

  events::EventLog batch_comments = store.comment_log().to_event_log();
  batch_comments.build_index(store.user_count());
  for (std::uint32_t u = 0; u < store.user_count(); ++u) {
    const auto view = store.comment_stream(market::UserId{u});
    const auto batch = batch_comments.stream(u);
    ASSERT_EQ(view.size(), batch.size()) << "user " << u;
    for (std::size_t i = 0; i < view.size(); ++i) {
      ASSERT_EQ(view.event_index(i), batch.event_index(i)) << "user " << u;
      const Event event = view[i];
      const Event expected = batch[i];
      ASSERT_EQ(event.user, expected.user);
      ASSERT_EQ(event.app, expected.app);
      ASSERT_EQ(event.day, expected.day);
      ASSERT_EQ(event.ordinal, expected.ordinal);
      ASSERT_EQ(event.rating, expected.rating);
    }
  }

  events::EventLog batch_downloads = store.download_log().to_event_log();
  batch_downloads.build_index(store.user_count());
  for (std::uint32_t u = 0; u < store.user_count(); ++u) {
    const auto view = store.download_stream(market::UserId{u});
    const auto batch = batch_downloads.stream(u);
    ASSERT_EQ(view.size(), batch.size()) << "user " << u;
    for (std::size_t i = 0; i < view.size(); ++i) {
      ASSERT_EQ(view.event_index(i), batch.event_index(i)) << "user " << u;
      ASSERT_EQ(view[i].app, batch[i].app);
      ASSERT_EQ(view[i].day, batch[i].day);
    }
  }
}

}  // namespace
}  // namespace appstore
