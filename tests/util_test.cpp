// Unit tests for appstore::util — PRNG, formatting, strings, CSV, CLI.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <set>

#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/format.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace appstore::util {
namespace {

// ---- Rng ----------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kSamples, 0.5, 0.01);
}

TEST(Rng, BelowStaysInBounds) {
  Rng rng(13);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(Rng, BelowOneAlwaysZero) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowIsApproximatelyUniform) {
  Rng rng(19);
  constexpr std::uint64_t kBound = 10;
  constexpr int kSamples = 100000;
  std::vector<int> counts(kBound, 0);
  for (int i = 0; i < kSamples; ++i) ++counts[rng.below(kBound)];
  for (const int count : counts) {
    EXPECT_NEAR(count, kSamples / kBound, kSamples / kBound * 0.1);
  }
}

TEST(Rng, RangeInclusive) {
  Rng rng(23);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.range(-2, 2));
  EXPECT_EQ(seen, (std::set<std::int64_t>{-2, -1, 0, 1, 2}));
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(29);
  constexpr int kSamples = 200000;
  double sum = 0.0;
  double sum_squares = 0.0;
  for (int i = 0; i < kSamples; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_squares += x * x;
  }
  EXPECT_NEAR(sum / kSamples, 0.0, 0.02);
  EXPECT_NEAR(sum_squares / kSamples, 1.0, 0.03);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(31);
  constexpr int kSamples = 100000;
  double sum = 0.0;
  for (int i = 0; i < kSamples; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / kSamples, 0.5, 0.02);
}

TEST(Rng, PoissonMeanMatchesSmallAndLarge) {
  Rng rng(37);
  for (const double mean : {0.5, 3.0, 100.0}) {
    double sum = 0.0;
    constexpr int kSamples = 50000;
    for (int i = 0; i < kSamples; ++i) sum += static_cast<double>(rng.poisson(mean));
    EXPECT_NEAR(sum / kSamples, mean, mean * 0.05 + 0.05) << "mean=" << mean;
  }
}

TEST(Rng, GeometricMeanMatches) {
  Rng rng(41);
  const double p = 0.25;
  double sum = 0.0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) sum += static_cast<double>(rng.geometric(p));
  EXPECT_NEAR(sum / kSamples, (1 - p) / p, 0.1);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(43);
  std::vector<std::uint32_t> values(100);
  for (std::uint32_t i = 0; i < 100; ++i) values[i] = i;
  rng.shuffle(std::span<std::uint32_t>(values));
  std::set<std::uint32_t> seen(values.begin(), values.end());
  EXPECT_EQ(seen.size(), 100u);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(47);
  Rng child = parent.fork();
  // The child should not reproduce the parent's next outputs.
  Rng parent_copy(47);
  (void)parent_copy();  // same consumption as fork()
  EXPECT_NE(child(), parent_copy());
}

TEST(Rng, Hash64StableAndDistinct) {
  EXPECT_EQ(hash64("anzhi"), hash64("anzhi"));
  EXPECT_NE(hash64("anzhi"), hash64("appchina"));
  EXPECT_NE(hash64(""), hash64("a"));
}

TEST(Rng, ChanceExtremes) {
  Rng rng(53);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

// ---- format ----------------------------------------------------------------

TEST(Format, PlainPlaceholders) {
  EXPECT_EQ(format("{} + {} = {}", 1, 2, 3), "1 + 2 = 3");
  EXPECT_EQ(format("hello {}", "world"), "hello world");
  EXPECT_EQ(format("{}", true), "true");
  EXPECT_EQ(format("{}", false), "false");
}

TEST(Format, FixedPrecision) {
  EXPECT_EQ(format("{:.2f}", 3.14159), "3.14");
  EXPECT_EQ(format("{:.0f}", 2.7), "3");
  EXPECT_EQ(format("{:.3f}", -1.0), "-1.000");
}

TEST(Format, GeneralFloat) {
  EXPECT_EQ(format("{:g}", 0.5), "0.5");
  EXPECT_EQ(format("{:.3g}", 1234.5678), "1.23e+03");
}

TEST(Format, WidthAndAlignment) {
  EXPECT_EQ(format("{:>6}", "ab"), "    ab");
  EXPECT_EQ(format("{:<6}!", "ab"), "ab    !");
  EXPECT_EQ(format("{:6}", 42), "    42");    // numbers right-align by default
  EXPECT_EQ(format("{:<6}", 42), "42    ");
  EXPECT_EQ(format("{:06}", 7), "     7");    // no zero-fill support: width only
}

TEST(Format, HexAndLiteralBraces) {
  EXPECT_EQ(format("{:x}", 255), "ff");
  EXPECT_EQ(format("{{}}"), "{}");
  EXPECT_EQ(format("a {{ b }} c"), "a { b } c");
}

TEST(Format, ExcessPlaceholdersRenderVerbatim) {
  EXPECT_EQ(format("{} {}", 1), "1 {}");
}

TEST(Format, BadSpecThrows) {
  EXPECT_THROW((void)format("{:q}", 1), std::invalid_argument);
  EXPECT_THROW((void)format("{:.f}", 1.0), std::invalid_argument);
}

TEST(Format, StringPrecisionTruncates) {
  EXPECT_EQ(format("{:.3}", "abcdef"), "abc");
}

// ---- strings ----------------------------------------------------------------

TEST(Strings, SplitKeepsEmptyFields) {
  const auto fields = split("a,,b,", ',');
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[2], "b");
  EXPECT_EQ(fields[3], "");
}

TEST(Strings, SplitSingleField) {
  const auto fields = split("abc", ',');
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "abc");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  a b  "), "a b");
  EXPECT_EQ(trim("\t\nx\r "), "x");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(Strings, EqualsCi) {
  EXPECT_TRUE(equals_ci("Content-Length", "content-length"));
  EXPECT_TRUE(equals_ci("", ""));
  EXPECT_FALSE(equals_ci("abc", "abd"));
  EXPECT_FALSE(equals_ci("abc", "ab"));
}

TEST(Strings, StartsWithCi) {
  EXPECT_TRUE(starts_with_ci("HTTP/1.1 200", "http/"));
  EXPECT_FALSE(starts_with_ci("HT", "http"));
}

TEST(Strings, ParseU64) {
  std::uint64_t value = 0;
  EXPECT_TRUE(parse_u64("12345", value));
  EXPECT_EQ(value, 12345u);
  EXPECT_FALSE(parse_u64("", value));
  EXPECT_FALSE(parse_u64("12a", value));
  EXPECT_FALSE(parse_u64("-1", value));
  EXPECT_FALSE(parse_u64("99999999999999999999999", value));  // overflow
}

TEST(Strings, ParseDouble) {
  double value = 0;
  EXPECT_TRUE(parse_double("3.25", value));
  EXPECT_DOUBLE_EQ(value, 3.25);
  EXPECT_TRUE(parse_double("-1e3", value));
  EXPECT_DOUBLE_EQ(value, -1000.0);
  EXPECT_FALSE(parse_double("x", value));
  EXPECT_FALSE(parse_double("1.5x", value));
}

TEST(Strings, WithThousands) {
  EXPECT_EQ(with_thousands(0), "0");
  EXPECT_EQ(with_thousands(999), "999");
  EXPECT_EQ(with_thousands(1000), "1,000");
  EXPECT_EQ(with_thousands(1234567), "1,234,567");
}

TEST(Strings, HumanCount) {
  EXPECT_EQ(human_count(500), "500");
  EXPECT_EQ(human_count(23'700'000), "23.7 M");
  EXPECT_EQ(human_count(651'500), "651.5 K");
  EXPECT_EQ(human_count(2'816'000'000.0), "2.8 B");
}

// ---- csv ----------------------------------------------------------------------

TEST(Csv, RoundTripWithQuoting) {
  const auto path = std::filesystem::temp_directory_path() / "appstore_csv_test.csv";
  {
    CsvWriter writer(path);
    writer.write_row({"name", "value", "note"});
    writer.write_row({"plain", "1", "no quoting"});
    writer.write_row({"comma,inside", "2", "quote\"inside"});
    writer.write_row({"new\nline", "3", ""});
    writer.flush();
  }
  const CsvTable table = read_csv(path);
  ASSERT_EQ(table.header.size(), 3u);
  ASSERT_EQ(table.rows.size(), 3u);
  EXPECT_EQ(table.rows[1][0], "comma,inside");
  EXPECT_EQ(table.rows[1][2], "quote\"inside");
  EXPECT_EQ(table.rows[2][0], "new\nline");
  std::filesystem::remove(path);
}

TEST(Csv, ColumnLookup) {
  const CsvTable table = parse_csv("a,b,c\n1,2,3\n");
  EXPECT_EQ(table.column("b"), 1u);
  EXPECT_EQ(table.column("missing"), static_cast<std::size_t>(-1));
}

TEST(Csv, ParseEmptyAndCrlf) {
  EXPECT_TRUE(parse_csv("").header.empty());
  const CsvTable table = parse_csv("x,y\r\n1,2\r\n");
  ASSERT_EQ(table.rows.size(), 1u);
  EXPECT_EQ(table.rows[0][1], "2");
}

TEST(Csv, NumericRowHelper) {
  const auto path = std::filesystem::temp_directory_path() / "appstore_csv_num.csv";
  {
    CsvWriter writer(path);
    writer.row("rank", "downloads");
    writer.row(1, 2816000000.0);
  }
  const CsvTable table = read_csv(path);
  ASSERT_EQ(table.rows.size(), 1u);
  EXPECT_EQ(table.rows[0][0], "1");
  EXPECT_EQ(table.rows[0][1], "2816000000");
  std::filesystem::remove(path);
}

// ---- cli -----------------------------------------------------------------------

TEST(Cli, ParsesAllTypes) {
  Cli cli("prog", "test");
  auto seed = cli.u64("seed", 1, "seed");
  auto scale = cli.f64("scale", 0.5, "scale");
  auto name = cli.str("name", "x", "name");
  auto verbose = cli.flag("verbose", "verbose");
  EXPECT_EQ(cli.try_parse({"--seed=99", "--scale", "0.25", "--name=anzhi", "--verbose"}), "");
  EXPECT_EQ(*seed, 99u);
  EXPECT_DOUBLE_EQ(*scale, 0.25);
  EXPECT_EQ(*name, "anzhi");
  EXPECT_TRUE(*verbose);
}

TEST(Cli, DefaultsHoldWithoutFlags) {
  Cli cli("prog", "test");
  auto seed = cli.u64("seed", 7, "seed");
  auto verbose = cli.flag("verbose", "verbose");
  EXPECT_EQ(cli.try_parse({}), "");
  EXPECT_EQ(*seed, 7u);
  EXPECT_FALSE(*verbose);
}

TEST(Cli, ReportsUnknownFlag) {
  Cli cli("prog", "test");
  EXPECT_NE(cli.try_parse({"--nope"}), "");
}

TEST(Cli, ReportsBadValues) {
  Cli cli("prog", "test");
  (void)cli.u64("n", 0, "n");
  (void)cli.f64("x", 0, "x");
  EXPECT_NE(cli.try_parse({"--n=abc"}), "");
  Cli cli2("prog", "test");
  (void)cli2.f64("x", 0, "x");
  EXPECT_NE(cli2.try_parse({"--x=1..2"}), "");
}

TEST(Cli, MissingValueIsError) {
  Cli cli("prog", "test");
  (void)cli.u64("n", 0, "n");
  EXPECT_NE(cli.try_parse({"--n"}), "");
}

TEST(Cli, BooleanExplicitForms) {
  Cli cli("prog", "test");
  auto flag = cli.flag("on", "x");
  EXPECT_EQ(cli.try_parse({"--on=false"}), "");
  EXPECT_FALSE(*flag);
  EXPECT_EQ(cli.try_parse({"--on=1"}), "");
  EXPECT_TRUE(*flag);
  EXPECT_NE(cli.try_parse({"--on=maybe"}), "");
}

TEST(Cli, HelpRequested) {
  Cli cli("prog", "test");
  EXPECT_EQ(cli.try_parse({"--help"}), "");
  EXPECT_TRUE(cli.help_requested());
  EXPECT_NE(cli.usage().find("prog"), std::string::npos);
}

TEST(Cli, PositionalRejected) {
  Cli cli("prog", "test");
  EXPECT_NE(cli.try_parse({"positional"}), "");
}

}  // namespace
}  // namespace appstore::util
