// Unit tests for appstore::stats — descriptive stats, ECDF, histograms,
// alias sampling, Zipf, power-law fitting, correlation, distances, Pareto.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "stats/alias.hpp"
#include "stats/bootstrap.hpp"
#include "stats/correlation.hpp"
#include "stats/descriptive.hpp"
#include "stats/distance.hpp"
#include "stats/ecdf.hpp"
#include "stats/histogram.hpp"
#include "stats/pareto.hpp"
#include "stats/powerlaw.hpp"
#include "stats/zipf.hpp"

namespace appstore::stats {
namespace {

// ---- descriptive ------------------------------------------------------------

TEST(Descriptive, BasicMoments) {
  const std::vector<double> values = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(mean(values), 3.0);
  EXPECT_DOUBLE_EQ(variance(values), 2.5);
  EXPECT_DOUBLE_EQ(stddev(values), std::sqrt(2.5));
  EXPECT_DOUBLE_EQ(median(values), 3.0);
  EXPECT_DOUBLE_EQ(min_value(values), 1.0);
  EXPECT_DOUBLE_EQ(max_value(values), 5.0);
}

TEST(Descriptive, EmptyAndSingleton) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(variance({}), 0.0);
  const std::vector<double> one = {7.0};
  EXPECT_DOUBLE_EQ(mean(one), 7.0);
  EXPECT_DOUBLE_EQ(variance(one), 0.0);
}

TEST(Descriptive, QuantileInterpolates) {
  const std::vector<double> values = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(quantile(values, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile(values, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(quantile(values, 0.5), 25.0);
  EXPECT_NEAR(quantile(values, 0.25), 17.5, 1e-12);
}

TEST(Descriptive, GiniKnownValues) {
  EXPECT_DOUBLE_EQ(gini(std::vector<double>{1, 1, 1, 1}), 0.0);
  // One item owns everything among n: gini = (n-1)/n.
  const std::vector<double> skewed = {0, 0, 0, 10};
  EXPECT_NEAR(gini(skewed), 0.75, 1e-12);
}

TEST(Descriptive, KahanSumIsAccurate) {
  // 1 + 1e-16 * 1e6 would lose the small terms in naive order.
  std::vector<double> values(1000001, 1e-10);
  values[0] = 1.0;
  EXPECT_NEAR(sum(values), 1.0 + 1e-4, 1e-12);
}

TEST(RunningStats, MatchesBatch) {
  const std::vector<double> values = {2.5, -1, 4, 4, 0, 10};
  RunningStats running;
  for (const double v : values) running.add(v);
  EXPECT_EQ(running.count(), values.size());
  EXPECT_NEAR(running.mean(), mean(values), 1e-12);
  EXPECT_NEAR(running.variance(), variance(values), 1e-12);
  EXPECT_DOUBLE_EQ(running.min(), -1);
  EXPECT_DOUBLE_EQ(running.max(), 10);
}

TEST(RunningStats, MergeEqualsCombined) {
  const std::vector<double> a = {1, 2, 3};
  const std::vector<double> b = {10, 20, 30, 40};
  RunningStats ra;
  RunningStats rb;
  for (const double v : a) ra.add(v);
  for (const double v : b) rb.add(v);
  ra.merge(rb);

  std::vector<double> all = a;
  all.insert(all.end(), b.begin(), b.end());
  EXPECT_NEAR(ra.mean(), mean(all), 1e-12);
  EXPECT_NEAR(ra.variance(), variance(all), 1e-12);
  EXPECT_EQ(ra.count(), all.size());
}

// ---- ecdf ----------------------------------------------------------------------

TEST(Ecdf, StepValues) {
  const Ecdf ecdf(std::vector<double>{1, 2, 2, 4});
  EXPECT_DOUBLE_EQ(ecdf.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(ecdf.at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(ecdf.at(2.0), 0.75);
  EXPECT_DOUBLE_EQ(ecdf.at(3.9), 0.75);
  EXPECT_DOUBLE_EQ(ecdf.at(4.0), 1.0);
  EXPECT_DOUBLE_EQ(ecdf.at(100.0), 1.0);
}

TEST(Ecdf, InverseQuantile) {
  const Ecdf ecdf(std::vector<double>{10, 20, 30, 40});
  EXPECT_DOUBLE_EQ(ecdf.inverse(0.25), 10.0);
  EXPECT_DOUBLE_EQ(ecdf.inverse(0.5), 20.0);
  EXPECT_DOUBLE_EQ(ecdf.inverse(1.0), 40.0);
}

TEST(Ecdf, StepsDeduplicate) {
  const Ecdf ecdf(std::vector<double>{1, 1, 1, 2});
  const auto steps = ecdf.steps();
  ASSERT_EQ(steps.size(), 2u);
  EXPECT_DOUBLE_EQ(steps[0].x, 1.0);
  EXPECT_DOUBLE_EQ(steps[0].f, 0.75);
  EXPECT_DOUBLE_EQ(steps[1].f, 1.0);
}

TEST(Ecdf, KsStatistic) {
  const Ecdf a(std::vector<double>{1, 2, 3, 4});
  const Ecdf b(std::vector<double>{1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(ks_statistic(a, b), 0.0);
  const Ecdf c(std::vector<double>{10, 20, 30, 40});
  EXPECT_DOUBLE_EQ(ks_statistic(a, c), 1.0);
}

// ---- histogram -------------------------------------------------------------------

TEST(Histogram, LinearBinning) {
  LinearHistogram histogram(0.0, 10.0, 2.0);
  histogram.add(1.0);
  histogram.add(3.0);
  histogram.add(3.5);
  histogram.add(9.9);
  histogram.add(-5.0);   // clamps into first bin
  histogram.add(100.0);  // clamps into last bin
  const auto bins = histogram.bins();
  ASSERT_EQ(bins.size(), 5u);
  EXPECT_EQ(bins[0].count, 2u);
  EXPECT_EQ(bins[1].count, 2u);
  EXPECT_EQ(bins[4].count, 2u);
  EXPECT_EQ(histogram.total_count(), 6u);
}

TEST(Histogram, LinearWeightsAccumulate) {
  LinearHistogram histogram(0.0, 4.0, 1.0);
  histogram.add(0.5, 10.0);
  histogram.add(0.7, 20.0);
  EXPECT_DOUBLE_EQ(histogram.bins()[0].sum, 30.0);
  EXPECT_DOUBLE_EQ(histogram.bins()[0].mean(), 15.0);
}

TEST(Histogram, LogBinningEdges) {
  LogHistogram histogram(1.0, 1000.0, 3);
  histogram.add(5.0);
  histogram.add(50.0);
  histogram.add(500.0);
  const auto bins = histogram.bins();
  ASSERT_EQ(bins.size(), 3u);
  EXPECT_EQ(bins[0].count, 1u);
  EXPECT_EQ(bins[1].count, 1u);
  EXPECT_EQ(bins[2].count, 1u);
  EXPECT_NEAR(bins[0].upper, 10.0, 1e-9);
}

TEST(Histogram, InvalidConstruction) {
  EXPECT_THROW(LinearHistogram(1.0, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(LinearHistogram(0.0, 1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(LogHistogram(0.0, 10.0, 3), std::invalid_argument);
  EXPECT_THROW(LogHistogram(1.0, 10.0, 0), std::invalid_argument);
}

// ---- alias -----------------------------------------------------------------------

TEST(Alias, RejectsBadInput) {
  EXPECT_THROW(AliasTable(std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW(AliasTable(std::vector<double>{1.0, -0.5}), std::invalid_argument);
  EXPECT_THROW(AliasTable(std::vector<double>{0.0, 0.0}), std::invalid_argument);
}

TEST(Alias, NormalizedProbabilities) {
  const AliasTable table(std::vector<double>{1.0, 3.0});
  EXPECT_NEAR(table.probability_of(0), 0.25, 1e-12);
  EXPECT_NEAR(table.probability_of(1), 0.75, 1e-12);
}

TEST(Alias, EmpiricalFrequenciesMatchWeights) {
  const std::vector<double> weights = {5.0, 1.0, 3.0, 1.0};
  const AliasTable table(weights);
  util::Rng rng(1234);
  constexpr int kSamples = 200000;
  std::vector<int> counts(weights.size(), 0);
  for (int i = 0; i < kSamples; ++i) ++counts[table.sample(rng)];
  const double total = 10.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double expected = kSamples * weights[i] / total;
    EXPECT_NEAR(counts[i], expected, expected * 0.05) << "index " << i;
  }
}

TEST(Alias, SingleElement) {
  const AliasTable table(std::vector<double>{42.0});
  util::Rng rng(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(table.sample(rng), 0u);
}

// ---- zipf ------------------------------------------------------------------------

TEST(Zipf, HarmonicKnownValues) {
  EXPECT_NEAR(generalized_harmonic(1, 1.0), 1.0, 1e-12);
  EXPECT_NEAR(generalized_harmonic(3, 1.0), 1.0 + 0.5 + 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(generalized_harmonic(4, 0.0), 4.0, 1e-12);
}

TEST(Zipf, PmfSumsToOne) {
  for (const double s : {0.0, 0.9, 1.4, 2.0}) {
    const FiniteZipf zipf(500, s);
    double total = 0.0;
    for (std::uint64_t k = 1; k <= 500; ++k) total += zipf.pmf(k);
    EXPECT_NEAR(total, 1.0, 1e-9) << "s=" << s;
  }
}

TEST(Zipf, PmfMonotoneDecreasing) {
  const FiniteZipf zipf(100, 1.4);
  for (std::uint64_t k = 1; k < 100; ++k) {
    EXPECT_GT(zipf.pmf(k), zipf.pmf(k + 1));
  }
}

TEST(Zipf, PmfOutOfRangeIsZero) {
  const FiniteZipf zipf(10, 1.0);
  EXPECT_DOUBLE_EQ(zipf.pmf(0), 0.0);
  EXPECT_DOUBLE_EQ(zipf.pmf(11), 0.0);
}

TEST(Zipf, CdfEndpoints) {
  const FiniteZipf zipf(50, 1.2);
  EXPECT_DOUBLE_EQ(zipf.cdf(0), 0.0);
  EXPECT_NEAR(zipf.cdf(50), 1.0, 1e-12);
  EXPECT_GT(zipf.cdf(25), zipf.cdf(10));
}

TEST(Zipf, ZeroExponentIsUniform) {
  const FiniteZipf zipf(10, 0.0);
  for (std::uint64_t k = 1; k <= 10; ++k) EXPECT_NEAR(zipf.pmf(k), 0.1, 1e-12);
}

TEST(Zipf, ExpectedCountsScale) {
  const FiniteZipf zipf(10, 1.0);
  const auto counts = zipf.expected_counts(1000.0);
  double total = 0.0;
  for (const double c : counts) total += c;
  EXPECT_NEAR(total, 1000.0, 1e-6);
  EXPECT_GT(counts[0], counts[9]);
}

TEST(Zipf, SamplerMatchesPmf) {
  const std::uint64_t n = 100;
  const double s = 1.4;
  const ZipfSampler sampler(n, s);
  const FiniteZipf zipf(n, s);
  util::Rng rng(99);
  constexpr int kSamples = 300000;
  std::vector<int> counts(n, 0);
  for (int i = 0; i < kSamples; ++i) ++counts[sampler.sample(rng) - 1];
  // Check head ranks where expected counts are large.
  for (std::uint64_t k = 1; k <= 5; ++k) {
    const double expected = kSamples * zipf.pmf(k);
    EXPECT_NEAR(counts[k - 1], expected, expected * 0.05) << "rank " << k;
  }
}

TEST(Zipf, InvalidArguments) {
  EXPECT_THROW(FiniteZipf(0, 1.0), std::invalid_argument);
  EXPECT_THROW(FiniteZipf(10, -1.0), std::invalid_argument);
  EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument);
}

// ---- power-law fit ------------------------------------------------------------------

TEST(PowerLaw, FitLineExact) {
  const std::vector<double> x = {0, 1, 2, 3};
  const std::vector<double> y = {1, 3, 5, 7};
  const LineFit fit = fit_line(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(PowerLaw, RecoversExponentFromPureZipf) {
  // downloads(rank) = 1e6 * rank^-1.4, exact power law.
  std::vector<double> downloads(2000);
  for (std::size_t i = 0; i < downloads.size(); ++i) {
    downloads[i] = 1e6 * std::pow(static_cast<double>(i + 1), -1.4);
  }
  const PowerLawFit fit = fit_power_law(downloads, 1, downloads.size());
  EXPECT_NEAR(fit.exponent, 1.4, 0.01);
  EXPECT_GT(fit.r_squared, 0.999);
}

TEST(PowerLaw, TrunkFitIgnoresTruncatedEnds) {
  // Zipf trunk with a flattened head (fetch-at-most-once) and collapsed tail.
  std::vector<double> downloads(5000);
  for (std::size_t i = 0; i < downloads.size(); ++i) {
    const double rank = static_cast<double>(i + 1);
    double value = 1e7 * std::pow(rank, -1.5);
    value = std::min(value, 2e5);                      // head plateau
    if (i > 4000) value *= std::exp(-(rank - 4000) / 200.0);  // tail collapse
    downloads[i] = value;
  }
  const PowerLawFit fit = fit_power_law_trunk(downloads);
  EXPECT_NEAR(fit.exponent, 1.5, 0.1);
  EXPECT_GT(fit.r_squared, 0.99);
}

TEST(PowerLaw, TruncationReportDetectsBothEnds) {
  std::vector<double> downloads(5000);
  for (std::size_t i = 0; i < downloads.size(); ++i) {
    const double rank = static_cast<double>(i + 1);
    double value = 1e7 * std::pow(rank, -1.5);
    value = std::min(value, 2e5);
    if (i > 4000) value *= std::exp(-(rank - 4000) / 200.0);
    downloads[i] = value;
  }
  const TruncationReport report = analyze_truncation(downloads);
  EXPECT_LT(report.head_ratio, 0.5);  // measured head far below the trunk fit
  EXPECT_LT(report.tail_ratio, 0.5);  // measured tail far below the trunk fit
}

TEST(PowerLaw, PredictInvertsFit) {
  std::vector<double> downloads(100);
  for (std::size_t i = 0; i < downloads.size(); ++i) {
    downloads[i] = 5e4 * std::pow(static_cast<double>(i + 1), -1.0);
  }
  const PowerLawFit fit = fit_power_law(downloads, 1, 100);
  EXPECT_NEAR(fit.predict(1.0), 5e4, 5e2);
  EXPECT_NEAR(fit.predict(10.0), 5e3, 5e1);
}

TEST(PowerLaw, SkipsZeroEntries) {
  std::vector<double> downloads = {100, 50, 0, 25, 0};
  const PowerLawFit fit = fit_power_law(downloads, 1, 5);
  EXPECT_GT(fit.exponent, 0.0);  // fit succeeded on the nonzero points
}

TEST(PowerLaw, Errors) {
  EXPECT_THROW((void)fit_power_law({}, 1, 1), std::invalid_argument);
  const std::vector<double> one = {1.0};
  EXPECT_THROW((void)fit_power_law(one, 2, 1), std::invalid_argument);
}

// ---- correlation ---------------------------------------------------------------------

TEST(Correlation, PerfectAndInverse) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {2, 4, 6, 8, 10};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
  const std::vector<double> z = {10, 8, 6, 4, 2};
  EXPECT_NEAR(pearson(x, z), -1.0, 1e-12);
}

TEST(Correlation, ConstantSideIsZero) {
  const std::vector<double> x = {1, 2, 3};
  const std::vector<double> c = {5, 5, 5};
  EXPECT_DOUBLE_EQ(pearson(x, c), 0.0);
}

TEST(Correlation, SpearmanMonotonicNonlinear) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {1, 8, 27, 64, 125};  // monotone but nonlinear
  EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
  EXPECT_LT(pearson(x, y), 1.0);
}

TEST(Correlation, SpearmanHandlesTies) {
  const std::vector<double> x = {1, 2, 2, 3};
  const std::vector<double> y = {10, 20, 20, 30};
  EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
}

TEST(Correlation, SizeMismatchThrows) {
  const std::vector<double> x = {1, 2};
  const std::vector<double> y = {1};
  EXPECT_THROW((void)pearson(x, y), std::invalid_argument);
  EXPECT_THROW((void)spearman(x, y), std::invalid_argument);
}

// ---- distance -------------------------------------------------------------------------

TEST(Distance, MeanRelativeErrorKnown) {
  const std::vector<double> observed = {100, 50, 10};
  const std::vector<double> simulated = {110, 45, 10};
  // (10/100 + 5/50 + 0/10) / 3 = (0.1 + 0.1 + 0) / 3
  EXPECT_NEAR(mean_relative_error(observed, simulated), 0.2 / 3.0, 1e-12);
}

TEST(Distance, ZeroObservedSkipped) {
  const std::vector<double> observed = {100, 0};
  const std::vector<double> simulated = {100, 999};
  EXPECT_DOUBLE_EQ(mean_relative_error(observed, simulated), 0.0);
}

TEST(Distance, IdenticalIsZero) {
  const std::vector<double> values = {5, 4, 3, 2, 1};
  EXPECT_DOUBLE_EQ(mean_relative_error(values, values), 0.0);
  EXPECT_DOUBLE_EQ(smape(values, values), 0.0);
  EXPECT_DOUBLE_EQ(log_rmse(values, values), 0.0);
}

TEST(Distance, SmapeBounded) {
  const std::vector<double> observed = {1, 1, 1};
  const std::vector<double> simulated = {1000, 1000, 1000};
  EXPECT_LE(smape(observed, simulated), 2.0);
}

TEST(Distance, LogRmseOrderOfMagnitude) {
  const std::vector<double> observed = {100};
  const std::vector<double> simulated = {1000};
  EXPECT_NEAR(log_rmse(observed, simulated), 1.0, 1e-12);
}

// ---- pareto ----------------------------------------------------------------------------

TEST(Pareto, TopShareKnown) {
  // Top 1 of 10 items owns 91/100.
  std::vector<double> counts = {91, 1, 1, 1, 1, 1, 1, 1, 1, 1};
  EXPECT_NEAR(top_share(counts, 0.10), 0.91, 1e-12);
  EXPECT_NEAR(top_share(counts, 1.0), 1.0, 1e-12);
}

TEST(Pareto, ShareCurveMonotone) {
  std::vector<double> counts(100);
  for (std::size_t i = 0; i < 100; ++i) {
    counts[i] = 1000.0 / static_cast<double>(i + 1);
  }
  std::vector<double> percents = {1, 10, 50, 100};
  const auto curve = share_curve(counts, percents);
  ASSERT_EQ(curve.size(), 4u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].download_percent, curve[i - 1].download_percent);
  }
  EXPECT_NEAR(curve.back().download_percent, 100.0, 1e-9);
}

TEST(Pareto, LorenzEndpoints) {
  const std::vector<double> counts = {1, 2, 3, 4};
  const auto curve = lorenz_curve(counts, 4);
  EXPECT_DOUBLE_EQ(curve.front().cumulative_share, 0.0);
  EXPECT_NEAR(curve.back().cumulative_share, 1.0, 1e-12);
  // Lorenz curve lies below the diagonal for unequal data.
  for (const auto& point : curve) {
    EXPECT_LE(point.cumulative_share, point.population_fraction + 1e-12);
  }
}

TEST(Pareto, EmptyInput) {
  EXPECT_DOUBLE_EQ(top_share({}, 0.1), 0.0);
  const std::vector<double> percents = {10};
  const auto curve = share_curve({}, percents);
  EXPECT_DOUBLE_EQ(curve[0].download_percent, 0.0);
}

// ---- bootstrap -------------------------------------------------------------------------

TEST(Bootstrap, NormalCiCoversMean) {
  const std::vector<double> sample = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  const Interval ci = normal_ci(sample);
  EXPECT_TRUE(ci.contains(mean(sample)));
  EXPECT_GT(ci.width(), 0.0);
}

TEST(Bootstrap, BootstrapCiCoversMean) {
  std::vector<double> sample;
  util::Rng rng(3);
  for (int i = 0; i < 200; ++i) sample.push_back(rng.normal(10.0, 2.0));
  util::Rng boot_rng(4);
  const Interval ci = bootstrap_mean_ci(sample, boot_rng, 500);
  EXPECT_TRUE(ci.contains(mean(sample)));
  // 95% CI of N(10, 2) with n=200 is roughly ±0.28 wide.
  EXPECT_LT(ci.width(), 1.5);
}

TEST(Bootstrap, EmptySample) {
  util::Rng rng(1);
  const Interval ci = bootstrap_mean_ci({}, rng);
  EXPECT_DOUBLE_EQ(ci.lower, 0.0);
  EXPECT_DOUBLE_EQ(ci.upper, 0.0);
}

// ---- property sweep: sampler vs pmf across exponents --------------------------------

class ZipfSamplerProperty : public ::testing::TestWithParam<double> {};

TEST_P(ZipfSamplerProperty, HeadFrequencyMatchesPmf) {
  const double s = GetParam();
  const std::uint64_t n = 200;
  const ZipfSampler sampler(n, s);
  const FiniteZipf zipf(n, s);
  util::Rng rng(static_cast<std::uint64_t>(s * 1000) + 17);
  constexpr int kSamples = 100000;
  std::uint64_t rank1 = 0;
  for (int i = 0; i < kSamples; ++i) {
    if (sampler.sample(rng) == 1) ++rank1;
  }
  const double expected = kSamples * zipf.pmf(1);
  EXPECT_NEAR(static_cast<double>(rank1), expected, std::max(50.0, expected * 0.06));
}

INSTANTIATE_TEST_SUITE_P(Exponents, ZipfSamplerProperty,
                         ::testing::Values(0.0, 0.5, 0.9, 1.0, 1.2, 1.4, 1.7, 2.0));

}  // namespace
}  // namespace appstore::stats
