// Unit + property tests for the three §5 download models.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "models/app_clustering_model.hpp"
#include "models/model.hpp"
#include "models/stream.hpp"
#include "models/zipf_amo_model.hpp"
#include "models/zipf_model.hpp"
#include "stats/correlation.hpp"
#include "stats/powerlaw.hpp"

namespace appstore::models {
namespace {

ModelParams small_params() {
  ModelParams params;
  params.app_count = 500;
  params.user_count = 400;
  params.downloads_per_user = 10.0;
  params.zr = 1.4;
  params.zc = 1.4;
  params.p = 0.9;
  params.cluster_count = 10;
  return params;
}

// ---- ClusterLayout -------------------------------------------------------------

TEST(ClusterLayout, RoundRobinBalanced) {
  const auto layout = ClusterLayout::round_robin(103, 10);
  EXPECT_EQ(layout.cluster_count(), 10u);
  std::size_t total = 0;
  for (std::uint32_t c = 0; c < 10; ++c) {
    const auto size = layout.members(c).size();
    EXPECT_GE(size, 10u);
    EXPECT_LE(size, 11u);
    total += size;
  }
  EXPECT_EQ(total, 103u);
}

TEST(ClusterLayout, RoundRobinWithinRanksFollowGlobalOrder) {
  const auto layout = ClusterLayout::round_robin(30, 3);
  // App 0 (global rank 1) is rank 1 in cluster 0; app 3 is rank 2 there.
  EXPECT_EQ(layout.cluster_of(0), 0u);
  EXPECT_EQ(layout.within_rank(0), 1u);
  EXPECT_EQ(layout.cluster_of(3), 0u);
  EXPECT_EQ(layout.within_rank(3), 2u);
  EXPECT_EQ(layout.cluster_of(1), 1u);
  EXPECT_EQ(layout.within_rank(1), 1u);
}

TEST(ClusterLayout, ContiguousBlocks) {
  const auto layout = ClusterLayout::contiguous(10, 2);
  for (std::uint32_t a = 0; a < 5; ++a) EXPECT_EQ(layout.cluster_of(a), 0u);
  for (std::uint32_t a = 5; a < 10; ++a) EXPECT_EQ(layout.cluster_of(a), 1u);
}

TEST(ClusterLayout, FromAssignmentPreservesOrder) {
  const auto layout = ClusterLayout::from_assignment({2, 0, 2, 1, 0});
  EXPECT_EQ(layout.cluster_count(), 3u);
  EXPECT_EQ(layout.within_rank(0), 1u);  // first app in cluster 2
  EXPECT_EQ(layout.within_rank(2), 2u);  // second app in cluster 2
  EXPECT_EQ(layout.members(0), (std::vector<std::uint32_t>{1, 4}));
}

TEST(ClusterLayout, RandomCoversAllApps) {
  util::Rng rng(5);
  const auto layout = ClusterLayout::random(200, 7, rng);
  std::size_t total = 0;
  for (std::uint32_t c = 0; c < layout.cluster_count(); ++c) {
    total += layout.members(c).size();
  }
  EXPECT_EQ(total, 200u);
}

TEST(ClusterLayout, ZeroClustersThrows) {
  EXPECT_THROW((void)ClusterLayout::round_robin(10, 0), std::invalid_argument);
  EXPECT_THROW((void)ClusterLayout::contiguous(10, 0), std::invalid_argument);
}

// ---- ZIPF model ------------------------------------------------------------------

TEST(ZipfModel, TotalDownloadsMatch) {
  ModelParams params = small_params();
  const ZipfModel model(params);
  util::Rng rng(1);
  const Workload workload = model.generate(rng);
  EXPECT_EQ(workload.total(), params.user_count * 10);
}

TEST(ZipfModel, HeadIsMorePopular) {
  const ZipfModel model(small_params());
  util::Rng rng(2);
  const Workload workload = model.generate(rng);
  // Rank-1 app should dominate the median app by a large factor under zr=1.4.
  EXPECT_GT(workload.downloads[0], workload.downloads[250] * 5);
}

TEST(ZipfModel, ExpectedMatchesAnalyticTotal) {
  const ZipfModel model(small_params());
  const auto expected = model.expected_downloads();
  double total = 0.0;
  for (const double e : expected) total += e;
  EXPECT_NEAR(total, small_params().total_downloads(), 1e-6);
}

TEST(ZipfModel, MonteCarloTracksAnalytic) {
  ModelParams params = small_params();
  params.user_count = 5000;  // more samples → tighter head estimate
  const ZipfModel model(params);
  util::Rng rng(3);
  const Workload workload = model.generate(rng);
  const auto expected = model.expected_downloads();
  for (std::size_t a = 0; a < 3; ++a) {
    EXPECT_NEAR(static_cast<double>(workload.downloads[a]), expected[a],
                expected[a] * 0.1 + 10)
        << "app " << a;
  }
}

TEST(ZipfModel, AllowsRepeatDownloadsPerUser) {
  ModelParams params = small_params();
  params.app_count = 3;
  params.zr = 2.0;
  params.downloads_per_user = 3.0;  // cap: min(count, app_count) = 3
  const ZipfModel model(params);
  util::Rng rng(4);
  const Workload workload = model.generate(rng, true);
  bool found_repeat = false;
  for (const auto& sequence : workload.user_sequences()) {
    std::set<std::uint32_t> unique(sequence.begin(), sequence.end());
    if (unique.size() < sequence.size()) found_repeat = true;
  }
  EXPECT_TRUE(found_repeat);  // pure ZIPF has no fetch-at-most-once
}

// ---- ZIPF-at-most-once -------------------------------------------------------------

TEST(ZipfAmo, NoUserDownloadsTwice) {
  const ZipfAtMostOnceModel model(small_params());
  util::Rng rng(5);
  const Workload workload = model.generate(rng, true);
  for (const auto& sequence : workload.user_sequences()) {
    std::set<std::uint32_t> unique(sequence.begin(), sequence.end());
    EXPECT_EQ(unique.size(), sequence.size());
  }
}

TEST(ZipfAmo, HeadSaturatesBelowUsers) {
  ModelParams params = small_params();
  params.zr = 2.5;  // extreme skew: rank 1 hit by nearly every user
  const ZipfAtMostOnceModel model(params);
  util::Rng rng(6);
  const Workload workload = model.generate(rng);
  EXPECT_LE(workload.downloads[0], params.user_count);
  EXPECT_GT(workload.downloads[0], params.user_count * 9 / 10);
}

TEST(ZipfAmo, AnalyticBoundedByUsers) {
  const ZipfAtMostOnceModel model(small_params());
  for (const double e : model.expected_downloads()) {
    EXPECT_LE(e, static_cast<double>(small_params().user_count));
  }
}

TEST(ZipfAmo, MonteCarloTracksAnalyticHeadInDilutRegime) {
  // The closed form U*(1-(1-p)^d) treats rejected redraws as fresh draws, so
  // it is accurate when d * pmf(1) is small (here pmf(1) ≈ 0.12, d = 3).
  ModelParams params;
  params.app_count = 2000;
  params.user_count = 5000;
  params.downloads_per_user = 3.0;
  params.zr = 1.0;
  const ZipfAtMostOnceModel model(params);
  util::Rng rng(7);
  const Workload workload = model.generate(rng);
  const auto expected = model.expected_downloads();
  for (std::size_t a = 0; a < 3; ++a) {
    EXPECT_NEAR(static_cast<double>(workload.downloads[a]), expected[a],
                expected[a] * 0.12 + 10);
  }
}

TEST(ZipfAmo, AnalyticIsLowerBoundUnderStrongSkew) {
  // With heavy skew the rejection-redraw loop effectively samples without
  // replacement, hitting the head MORE often than d independent draws — the
  // closed form under-counts. Verify the direction of that bias.
  ModelParams params = small_params();
  params.user_count = 3000;
  const ZipfAtMostOnceModel model(params);
  util::Rng rng(7);
  const Workload workload = model.generate(rng);
  const auto expected = model.expected_downloads();
  for (std::size_t a = 0; a < 3; ++a) {
    EXPECT_GT(static_cast<double>(workload.downloads[a]), expected[a] * 0.95);
  }
}

TEST(ZipfAmo, ExhaustsWhenDemandExceedsApps) {
  ModelParams params;
  params.app_count = 5;
  params.user_count = 10;
  params.downloads_per_user = 50.0;  // far beyond the 5 available apps
  params.zr = 1.0;
  const ZipfAtMostOnceModel model(params);
  util::Rng rng(8);
  const Workload workload = model.generate(rng, true);
  for (const auto& sequence : workload.user_sequences()) {
    EXPECT_EQ(sequence.size(), 5u);  // capped at app_count
  }
  EXPECT_EQ(workload.total(), 50u);
}

TEST(DrawUnfetched, FallbackTerminatesAndIsUnfetched) {
  // Sampler always returns app 0, which is fetched: forces the fallback.
  FetchedSet fetched;
  fetched.insert(0);
  util::Rng rng(9);
  const std::uint32_t app = draw_unfetched(
      rng, fetched, 4, [](util::Rng&) { return 0u; },
      [](std::uint32_t index) { return index; }, 4);
  EXPECT_NE(app, 0u);
  EXPECT_LT(app, 4u);
}

// ---- APP-CLUSTERING -----------------------------------------------------------------

TEST(AppClustering, NoUserDownloadsTwice) {
  const AppClusteringModel model(small_params(),
                                 ClusterLayout::round_robin(500, 10));
  util::Rng rng(10);
  const Workload workload = model.generate(rng, true);
  for (const auto& sequence : workload.user_sequences()) {
    std::set<std::uint32_t> unique(sequence.begin(), sequence.end());
    EXPECT_EQ(unique.size(), sequence.size());
  }
}

TEST(AppClustering, SequencesShowClusterAffinity) {
  ModelParams params = small_params();
  params.p = 0.95;
  const ClusterLayout layout = ClusterLayout::round_robin(params.app_count, 10);
  const AppClusteringModel model(params, layout);
  util::Rng rng(11);
  const Workload workload = model.generate(rng, true);

  // Fraction of consecutive pairs within the same cluster should vastly
  // exceed the ~1/10 random-walk baseline.
  std::uint64_t same = 0;
  std::uint64_t pairs = 0;
  for (const auto& sequence : workload.user_sequences()) {
    for (std::size_t i = 1; i < sequence.size(); ++i) {
      same += layout.cluster_of(sequence[i]) == layout.cluster_of(sequence[i - 1]) ? 1 : 0;
      ++pairs;
    }
  }
  ASSERT_GT(pairs, 0u);
  const double affinity = static_cast<double>(same) / static_cast<double>(pairs);
  EXPECT_GT(affinity, 0.4);
}

TEST(AppClustering, ZeroPReducesToAtMostOnce) {
  ModelParams params = small_params();
  params.p = 0.0;
  const AppClusteringModel clustering(params, ClusterLayout::round_robin(500, 10));
  const ZipfAtMostOnceModel amo(params);
  util::Rng rng_a(12);
  util::Rng rng_b(12);
  const auto wa = clustering.generate(rng_a);
  const auto wb = amo.generate(rng_b);
  // Same distribution family (not identical draws): compare head counts.
  EXPECT_NEAR(static_cast<double>(wa.downloads[0]), static_cast<double>(wb.downloads[0]),
              static_cast<double>(wb.downloads[0]) * 0.15 + 20);
}

TEST(AppClustering, AnalyticEquationFive) {
  // Hand-check Eq. 5 on a tiny configuration.
  ModelParams params;
  params.app_count = 4;
  params.user_count = 100;
  params.downloads_per_user = 2.0;
  params.zr = 1.0;
  params.zc = 1.0;
  params.p = 0.5;
  const ClusterLayout layout = ClusterLayout::round_robin(4, 2);
  const AppClusteringModel model(params, layout);
  const auto expected = model.expected_downloads();

  // App 0: global rank 1 of 4 (H = 1+1/2+1/3+1/4), cluster rank 1 of 2 (H=1.5).
  const double hg = 1.0 + 0.5 + 1.0 / 3.0 + 0.25;
  const double pg = 1.0 / hg;
  const double pc = (1.0 / 1.0) / 1.5;
  const double manual =
      100.0 * (1.0 - std::pow(1.0 - pg, 1.0) * std::pow(1.0 - pc, 1.0));
  EXPECT_NEAR(expected[0], manual, 1e-9);
}

TEST(AppClustering, AnalyticBoundedByUsers) {
  const AppClusteringModel model(small_params(), ClusterLayout::round_robin(500, 10));
  for (const double e : model.expected_downloads()) {
    EXPECT_LE(e, static_cast<double>(small_params().user_count));
    EXPECT_GE(e, 0.0);
  }
}

TEST(AppClustering, TailMoreTruncatedThanAmoRelativeToTrunk) {
  // The clustering effect's signature (Fig. 3/8): relative to its own
  // power-law trunk, the APP-CLUSTERING curve collapses at the tail far more
  // than ZIPF-at-most-once does. (Absolute tail mass is scale-dependent, so
  // the comparison is against each curve's own trunk fit.)
  ModelParams params;
  params.app_count = 1500;
  params.user_count = 3000;
  params.downloads_per_user = 40.0;
  params.zr = 1.6;
  params.zc = 1.4;
  params.p = 0.9;
  params.cluster_count = 30;
  const AppClusteringModel clustering(params,
                                      ClusterLayout::round_robin(params.app_count, 30));
  const ZipfAtMostOnceModel amo(params);
  util::Rng rng_a(13);
  util::Rng rng_b(14);
  const auto clustering_report = stats::analyze_truncation(clustering.generate(rng_a).by_rank());
  const auto amo_report = stats::analyze_truncation(amo.generate(rng_b).by_rank());
  EXPECT_LT(clustering_report.tail_ratio, amo_report.tail_ratio);
  EXPECT_LT(clustering_report.tail_ratio, 0.5);
}

TEST(AppClustering, RejectsBadParams) {
  ModelParams params = small_params();
  params.p = 1.5;
  EXPECT_THROW(AppClusteringModel(params, ClusterLayout::round_robin(500, 10)),
               std::invalid_argument);
  ModelParams mismatch = small_params();
  EXPECT_THROW(AppClusteringModel(mismatch, ClusterLayout::round_robin(99, 10)),
               std::invalid_argument);
}

// ---- factory / realized downloads ----------------------------------------------------

TEST(Factory, MakesAllKinds) {
  const ModelParams params = small_params();
  EXPECT_EQ(make_model(ModelKind::kZipf, params)->name(), "ZIPF");
  EXPECT_EQ(make_model(ModelKind::kZipfAtMostOnce, params)->name(), "ZIPF-at-most-once");
  EXPECT_EQ(make_model(ModelKind::kAppClustering, params)->name(), "APP-CLUSTERING");
}

TEST(RealizedDownloads, FractionalMeanMatches) {
  util::Rng rng(15);
  double total = 0.0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    total += static_cast<double>(DownloadModel::realized_downloads(2.5, 1000, rng));
  }
  EXPECT_NEAR(total / kSamples, 2.5, 0.02);
}

TEST(RealizedDownloads, CapApplies) {
  util::Rng rng(16);
  for (int i = 0; i < 100; ++i) {
    EXPECT_LE(DownloadModel::realized_downloads(50.0, 5, rng), 5u);
  }
}

// ---- stream ---------------------------------------------------------------------------

TEST(Stream, CountsMatchWorkloadSemantics) {
  ModelParams params = small_params();
  params.user_count = 200;
  const ZipfAtMostOnceModel model(params);
  util::Rng rng(17);
  const auto stream = generate_stream(model, rng);
  EXPECT_NEAR(static_cast<double>(stream.size()), 2000.0, 1.0);  // 200 users * 10

  // Per-user at-most-once must hold across the interleaved stream too.
  std::map<std::uint32_t, std::set<std::uint32_t>> seen;
  for (const auto& request : stream) {
    EXPECT_TRUE(seen[request.user].insert(request.app).second)
        << "user " << request.user << " repeated app " << request.app;
  }
}

TEST(Stream, CapTruncatesUniformly) {
  ModelParams params = small_params();
  params.user_count = 300;
  const ZipfModel model(params);
  util::Rng rng(18);
  const auto stream = generate_stream(model, rng, 500);
  EXPECT_EQ(stream.size(), 500u);
  // Users from the whole range should appear (no head-of-list bias).
  std::set<std::uint32_t> users;
  for (const auto& request : stream) users.insert(request.user);
  EXPECT_GT(users.size(), 200u);
  bool late_user = false;
  for (const auto u : users) {
    if (u > 250) late_user = true;
  }
  EXPECT_TRUE(late_user);
}


TEST(Stream, DeterministicForSameSeed) {
  ModelParams params = small_params();
  params.user_count = 100;
  const AppClusteringModel model(params, ClusterLayout::round_robin(500, 10));
  util::Rng rng_a(23);
  util::Rng rng_b(23);
  const auto a = generate_stream(model, rng_a);
  const auto b = generate_stream(model, rng_b);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].user, b[i].user);
    EXPECT_EQ(a[i].app, b[i].app);
  }
}

TEST(Stream, AggregateCountsMatchDirectGeneration) {
  // The interleaved stream and the batch generator realize the same process;
  // aggregate head counts should agree within Monte Carlo noise.
  ModelParams params = small_params();
  params.user_count = 3000;
  const ZipfAtMostOnceModel model(params);
  util::Rng rng_stream(29);
  util::Rng rng_batch(31);
  const auto stream = generate_stream(model, rng_stream);
  std::vector<std::uint64_t> stream_counts(params.app_count, 0);
  for (const auto& request : stream) ++stream_counts[request.app];
  const auto batch = model.generate(rng_batch);
  for (std::size_t a = 0; a < 3; ++a) {
    const double expected = static_cast<double>(batch.downloads[a]);
    EXPECT_NEAR(static_cast<double>(stream_counts[a]), expected, expected * 0.1 + 20);
  }
}

// ---- property sweep: analytic vs Monte Carlo across models --------------------------

struct ModelCase {
  ModelKind kind;
  double zr;
  double p;
};

class AnalyticVsMonteCarlo : public ::testing::TestWithParam<ModelCase> {};

TEST_P(AnalyticVsMonteCarlo, TopRankWithinModelSpecificBand) {
  const ModelCase test_case = GetParam();
  ModelParams params;
  params.app_count = 300;
  params.user_count = 4000;
  params.downloads_per_user = 8.0;
  params.zr = test_case.zr;
  params.zc = 1.4;
  params.p = test_case.p;
  params.cluster_count = 10;
  const auto model = make_model(test_case.kind, params);
  util::Rng rng(21);
  const auto workload = model->generate(rng);
  const auto expected = model->expected_downloads();
  const auto mc = static_cast<double>(workload.downloads[0]);
  switch (test_case.kind) {
    case ModelKind::kZipf:
      // Exact expectation: tight band.
      EXPECT_NEAR(mc, expected[0], expected[0] * 0.10 + 20);
      break;
    case ModelKind::kZipfAtMostOnce:
      // Closed form under-counts under skew (rejection redraws) but is a
      // sound lower bound; the boost stays moderate.
      EXPECT_GT(mc, expected[0] * 0.90);
      EXPECT_LT(mc, expected[0] * 1.6 + 20);
      break;
    case ModelKind::kAppClustering:
      // Eq. 5 credits every app its full p*d cluster draws per user, while
      // simulated users only visit clusters they anchored in — the paper's
      // form is an upper-bound-flavoured idealization at the head.
      EXPECT_LT(mc, expected[0] * 1.3 + 20);
      EXPECT_GT(mc, expected[0] * 0.25);
      break;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Models, AnalyticVsMonteCarlo,
    ::testing::Values(ModelCase{ModelKind::kZipf, 1.0, 0.0},
                      ModelCase{ModelKind::kZipf, 1.7, 0.0},
                      ModelCase{ModelKind::kZipfAtMostOnce, 1.2, 0.0},
                      ModelCase{ModelKind::kZipfAtMostOnce, 1.7, 0.0},
                      ModelCase{ModelKind::kAppClustering, 1.4, 0.9},
                      ModelCase{ModelKind::kAppClustering, 1.7, 0.95}));

}  // namespace
}  // namespace appstore::models
