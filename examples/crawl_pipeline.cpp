// Crawl pipeline: the full Fig.-1 architecture on loopback.
//
// Generates a China-located appstore, serves it over real HTTP with per-IP
// rate limiting, region gating and injected transient failures, then runs
// the daily crawler through a mixed-region proxy pool and reconstructs the
// Table-1 dataset summary from the crawl database alone.
//
//   $ ./crawl_pipeline [--days N] [--proxies N] [--failure-rate X]
#include <cstdio>

#include "crawler/crawler.hpp"
#include "crawler/service.hpp"
#include "market/snapshot.hpp"
#include "report/table.hpp"
#include "synth/generator.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace appstore;

  util::Cli cli("crawl_pipeline", "serve a synthetic appstore over HTTP and crawl it");
  auto seed = cli.u64("seed", 7, "PRNG seed");
  auto days = cli.u64("days", 6, "number of crawl days (spread across the window)");
  auto proxies = cli.u64("proxies", 12, "proxy pool size (3 regions round-robin)");
  auto failure_rate = cli.f64("failure-rate", 0.05, "injected transient failure rate");
  cli.parse(argc, argv);

  // A small AppChina-like store (China-gated, §2.2).
  synth::GeneratorConfig config;
  config.seed = *seed;
  config.app_scale = 0.004;
  config.download_scale = 4e-6;
  const auto generated = synth::generate(synth::appchina(), config);
  std::printf("ground truth: %zu apps, %llu downloads\n", generated.store->apps().size(),
              static_cast<unsigned long long>(generated.store->total_downloads()));

  crawlersim::ServicePolicy policy;
  policy.china_only = true;
  policy.failure_rate = *failure_rate;
  crawlersim::AppstoreService service(*generated.store, policy);
  std::printf("appstore service on 127.0.0.1:%u (china-gated, %.0f%% injected failures)\n",
              service.port(), 100.0 * *failure_rate);

  crawlersim::CrawlDatabase database;
  crawlersim::CrawlerConfig crawler_config;
  crawler_config.port = service.port();
  crawler_config.proxy_count = *proxies;
  crawler_config.seed = *seed + 1;
  crawlersim::Crawler crawler(crawler_config, database);

  const market::Day window = synth::appchina().crawl_days;
  report::Table progress({"day", "requests", "429", "403", "5xx", "apps observed"});
  for (std::uint64_t k = 0; k < *days; ++k) {
    const auto day = static_cast<market::Day>(k * static_cast<std::uint64_t>(window) /
                                              (*days > 1 ? *days - 1 : 1));
    service.set_day(day);
    const auto stats = crawler.crawl_day(day);
    progress.row({std::to_string(day), std::to_string(stats.requests),
                  std::to_string(stats.rate_limited), std::to_string(stats.region_blocked),
                  std::to_string(stats.transient_failures),
                  std::to_string(stats.apps_observed)});
  }
  std::printf("\ncrawl log:\n%s", progress.render().c_str());
  std::printf("healthy proxies left: %zu of %zu (non-Chinese ones get quarantined)\n\n",
              crawler.proxies().healthy_count(), crawler.proxies().size());

  // Reconstruct the Table-1 row purely from crawled observations.
  const auto series = database.snapshot_series();
  const auto summary = market::summarize("AppChina (crawled)", series);
  report::Table table({"store", "apps first/last", "new apps/day", "downloads first/last",
                       "daily downloads"});
  table.row({summary.store,
             util::format("{} / {}", summary.apps_first_day, summary.apps_last_day),
             report::fixed(summary.new_apps_per_day, 1),
             util::format("{} / {}", summary.downloads_first_day, summary.downloads_last_day),
             report::fixed(summary.daily_downloads, 1)});
  std::printf("%s", table.render().c_str());

  // Cross-check against ground truth.
  const auto truth = generated.store->downloads_by_rank();
  const auto crawled = database.downloads_by_rank(window);
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < std::min(truth.size(), crawled.size()); ++i) {
    if (truth[i] != crawled[i]) ++mismatches;
  }
  std::printf("\nrank-curve mismatches vs ground truth: %zu of %zu ranks\n", mismatches,
              truth.size());
  return 0;
}
