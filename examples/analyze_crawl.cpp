// Bring-your-own-data analysis: load a crawl database from CSV (produced by
// the crawler, by save_database(), or hand-written from any data source) and
// run the paper's core analyses on it — Pareto shares, the truncated
// power-law fit, MLE cross-check, update statistics, and the three-model
// ranking. If no --db directory is given, the example first builds one by
// generating a store, serving it over HTTP and crawling it, so it always
// has something to analyze.
//
//   $ ./analyze_crawl [--db path/to/crawl-csv]
#include <cstdio>
#include <filesystem>

#include "crawler/crawler.hpp"
#include "crawler/db_io.hpp"
#include "crawler/service.hpp"
#include "fit/sweep.hpp"
#include "report/table.hpp"
#include "stats/mle.hpp"
#include "stats/pareto.hpp"
#include "stats/powerlaw.hpp"
#include "synth/generator.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"

int main(int argc, char** argv) {
  using namespace appstore;

  util::Cli cli("analyze_crawl", "run the paper's analyses on a crawl-database CSV");
  auto seed = cli.u64("seed", 29, "PRNG seed (for the demo crawl and model fits)");
  auto db_dir = cli.str("db", "", "crawl database directory (apps.csv + observations.csv)");
  cli.parse(argc, argv);

  crawlersim::CrawlDatabase database;
  if (db_dir->empty()) {
    // Demo path: generate -> serve -> crawl -> save -> reload.
    std::printf("no --db given; crawling a generated store first...\n");
    // d (downloads/user) must stay small relative to the catalog for the
    // model comparison to be meaningful — raise the user share accordingly.
    synth::StoreProfile profile = synth::anzhi();
    profile.free_segment.top_app_share = 0.02;
    synth::GeneratorConfig config;
    config.seed = *seed;
    config.app_scale = 0.02;
    config.download_scale = 2e-5;
    const auto generated = synth::generate(profile, config);
    crawlersim::AppstoreService service(*generated.store, crawlersim::ServicePolicy{});
    crawlersim::CrawlerConfig crawler_config;
    crawler_config.port = service.port();
    crawler_config.fetch_apks = true;
    crawlersim::Crawler crawler(crawler_config, database);
    for (const market::Day day : {0, 30, 60}) {
      service.set_day(day);
      (void)crawler.crawl_day(day);
    }
    const auto demo_dir = std::filesystem::temp_directory_path() / "appstore_demo_crawl";
    crawlersim::save_database(database, demo_dir);
    database = crawlersim::load_database(demo_dir);  // prove the round trip
    std::printf("crawl saved to %s and reloaded\n\n", demo_dir.string().c_str());
  } else {
    database = crawlersim::load_database(*db_dir);
  }

  const auto days = database.crawl_days();
  if (days.empty()) {
    std::fprintf(stderr, "database has no observations\n");
    return 1;
  }
  const market::Day last_day = days.back();
  std::printf("database: %zu apps, %zu crawl days (last = %d)\n\n", database.app_count(),
              days.size(), last_day);

  // §3: popularity.
  const auto measured = database.downloads_by_rank(last_day);
  report::Table popularity({"metric", "value"});
  popularity.row({"top 1% download share", report::percent(stats::top_share(measured, 0.01))});
  popularity.row({"top 10% download share", report::percent(stats::top_share(measured, 0.10))});
  const auto truncation = stats::analyze_truncation(measured);
  popularity.row({"trunk exponent (LSQ)", report::fixed(truncation.trunk.exponent, 2)});
  popularity.row({"trunk R^2", report::fixed(truncation.trunk.r_squared, 3)});
  popularity.row({"head ratio", report::fixed(truncation.head_ratio, 3)});
  popularity.row({"tail ratio", report::fixed(truncation.tail_ratio, 3)});
  const auto mle = stats::fit_power_law_mle_auto(measured);
  popularity.row({"MLE alpha (size dist)", report::fixed(mle.alpha, 2)});
  popularity.row({"MLE implied rank slope ~1/(a-1)",
                  report::fixed(mle.alpha > 1.0 ? 1.0 / (mle.alpha - 1.0) : 0.0, 2)});
  std::printf("popularity (Figs. 2/3):\n%s\n", popularity.render().c_str());

  // Fig. 4: updates from version deltas.
  const auto updates = database.updates_per_app();
  std::size_t zero = 0;
  for (const double u : updates) {
    if (u == 0.0) ++zero;
  }
  std::printf("updates (Fig. 4): %zu apps, %.1f%% with zero updates across the window\n",
              updates.size(),
              updates.empty() ? 0.0 : 100.0 * static_cast<double>(zero) / updates.size());

  // §6.3: ad-library scan results, if APKs were crawled.
  const double ads_fraction = database.free_apps_with_ads_fraction();
  if (ads_fraction > 0.0) {
    std::printf("APK scans (§6.3): %.1f%% of scanned free apps embed ad libraries "
                "(paper: 67.7%%)\n",
                100.0 * ads_fraction);
  }

  // §5: model ranking against the crawled curve.
  fit::SweepOptions options;
  options.zr_grid = {1.0, 1.2, 1.4, 1.6, 1.8};
  options.p_grid = {0.9};
  options.zc_grid = {1.4};
  options.seed = *seed + 1;
  const auto users = static_cast<std::uint64_t>(measured.front());
  report::Table models_table({"model", "Eq.6 distance"});
  for (const auto kind : {models::ModelKind::kZipf, models::ModelKind::kZipfAtMostOnce,
                          models::ModelKind::kAppClustering}) {
    const auto result = fit::fit_model(kind, measured, users, 34, options);
    models_table.row({std::string(to_string(kind)), report::fixed(result.distance, 3)});
  }
  std::printf("\nmodel fits (Figs. 8/9), U = top-app downloads = %llu:\n%s",
              static_cast<unsigned long long>(users), models_table.render().c_str());
  return 0;
}
