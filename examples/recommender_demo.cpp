// Recommender demo (§7 "better recommendation systems"):
// generate a clustered marketplace, persist it to disk, reload it, build the
// per-user download sequences, and compare four recommenders under
// leave-last-out evaluation.
//
//   $ ./recommender_demo [--topk 10] [--save-dir /tmp/appstore-demo]
#include <cstdio>
#include <filesystem>

#include "market/serialize.hpp"
#include "recommend/recommender.hpp"
#include "report/table.hpp"
#include "synth/generator.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"

int main(int argc, char** argv) {
  using namespace appstore;

  util::Cli cli("recommender_demo", "recommenders vs the clustering effect");
  auto seed = cli.u64("seed", 17, "PRNG seed");
  auto top_k = cli.u64("topk", 10, "recommendation list length");
  auto save_dir = cli.str("save-dir", "", "optional directory to persist the store to");
  cli.parse(argc, argv);

  // A clustered marketplace with enough per-user history to learn from.
  synth::StoreProfile profile = synth::anzhi();
  profile.free_segment.top_app_share = 0.03;  // more users, moderate d
  synth::GeneratorConfig config;
  config.seed = *seed;
  config.app_scale = 0.02;
  config.download_scale = 2e-5;
  const auto generated = synth::generate(profile, config);
  std::printf("marketplace: %zu apps, %u users, %llu downloads\n",
              generated.store->apps().size(), generated.store->user_count(),
              static_cast<unsigned long long>(generated.store->total_downloads()));

  // Optional round trip through the CSV persistence layer: the reloaded
  // store drives the rest of the demo, proving the format carries
  // everything the analyses need.
  const market::AppStore* store = generated.store.get();
  std::unique_ptr<market::AppStore> reloaded;
  if (!save_dir->empty()) {
    market::save_store(*store, *save_dir);
    reloaded = market::load_store(*save_dir);
    store = reloaded.get();
    std::printf("persisted to %s and reloaded (%llu downloads intact)\n",
                save_dir->c_str(),
                static_cast<unsigned long long>(store->total_downloads()));
  }

  // Build the recommender dataset from per-user download streams.
  recommend::Dataset dataset;
  dataset.app_count = static_cast<std::uint32_t>(store->apps().size());
  dataset.app_category.reserve(dataset.app_count);
  for (const auto& app : store->apps()) dataset.app_category.push_back(app.category.value);
  for (std::uint32_t u = 0; u < store->user_count(); ++u) {
    const auto stream = store->download_stream(market::UserId{u});
    std::vector<std::uint32_t> sequence;
    sequence.reserve(stream.size());
    for (const auto event : stream) sequence.push_back(event.app);
    if (!sequence.empty()) dataset.user_sequences.push_back(std::move(sequence));
  }
  std::printf("training sequences: %zu users\n\n", dataset.user_sequences.size());

  std::vector<std::uint32_t> held_out;
  const recommend::Dataset truncated = recommend::leave_last_out(dataset, held_out);

  recommend::PopularityRecommender popularity;
  recommend::CategoryRecommender category;
  recommend::ItemCfRecommender item_cf;
  recommend::HybridRecommender hybrid;

  report::Table table({"recommender", util::format("hit@{}", *top_k)});
  std::vector<recommend::Recommender*> recommenders = {&popularity, &category, &item_cf,
                                                       &hybrid};
  for (recommend::Recommender* recommender : recommenders) {
    recommender->train(truncated);
    const auto result = recommend::evaluate(*recommender, truncated, held_out, *top_k);
    table.row({std::string(recommender->name()), report::percent(result.hit_rate())});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("The clustering effect is why CATEGORY and HYBRID beat POPULARITY: the\n"
              "held-out download usually comes from a category the user was already in.\n");
  return 0;
}
