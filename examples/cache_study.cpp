// Cache study: how an appstore front-end cache behaves under the three
// workload models and five replacement policies (§7 extended).
//
//   $ ./cache_study [--scale X] [--seed N]
#include <cstdio>

#include "core/study.hpp"
#include "report/table.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace appstore;

  util::Cli cli("cache_study", "app cache hit ratios by model and policy");
  auto seed = cli.u64("seed", 5, "PRNG seed");
  auto scale = cli.f64("scale", 0.03, "fraction of the paper's 60k-app cache setup");
  cli.parse(argc, argv);

  // Part 1: the Fig.-19 view — LRU under the three models.
  std::printf("LRU hit ratio by workload model (cache size as %% of apps):\n\n");
  report::Table by_model({"cache %", "ZIPF", "ZIPF-at-most-once", "APP-CLUSTERING"});
  std::vector<core::CacheStudyResult> model_results;
  for (const auto kind : {models::ModelKind::kZipf, models::ModelKind::kZipfAtMostOnce,
                          models::ModelKind::kAppClustering}) {
    model_results.push_back(core::cache_study(kind, *scale, cache::PolicyKind::kLru, *seed));
  }
  for (const std::size_t i : {std::size_t{0}, std::size_t{4}, std::size_t{9},
                              std::size_t{19}}) {
    by_model.row({std::to_string(i + 1) + "%",
                  report::percent(model_results[0].points[i].hit_ratio),
                  report::percent(model_results[1].points[i].hit_ratio),
                  report::percent(model_results[2].points[i].hit_ratio)});
  }
  std::printf("%s\n", by_model.render().c_str());

  // Part 2: the repair — alternative policies under APP-CLUSTERING.
  std::printf("policy comparison under the APP-CLUSTERING workload:\n\n");
  report::Table by_policy({"cache %", "LRU", "FIFO", "LFU", "RANDOM", "CLUSTER-LRU"});
  std::vector<core::CacheStudyResult> policy_results;
  for (const auto policy : {cache::PolicyKind::kLru, cache::PolicyKind::kFifo,
                            cache::PolicyKind::kLfu, cache::PolicyKind::kRandom,
                            cache::PolicyKind::kClusterLru}) {
    policy_results.push_back(
        core::cache_study(models::ModelKind::kAppClustering, *scale, policy, *seed));
  }
  for (const std::size_t i : {std::size_t{0}, std::size_t{4}, std::size_t{9},
                              std::size_t{19}}) {
    std::vector<std::string> row = {std::to_string(i + 1) + "%"};
    for (const auto& result : policy_results) {
      row.push_back(report::percent(result.points[i].hit_ratio));
    }
    by_policy.row(std::move(row));
  }
  std::printf("%s\n", by_policy.render().c_str());
  std::printf("Cache sizing note: the paper assumes uniform 3.5 MB APKs, so a 1%% cache "
              "of a 60k-app store is ~2.1 GB.\n");
  return 0;
}
