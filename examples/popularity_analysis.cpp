// Popularity analysis across all four monitored appstores: Pareto shares,
// truncated power-law fits, update statistics and model ranking — the §3-§5
// pipeline as a single report.
//
//   $ ./popularity_analysis [--seed N] [--app-scale X] [--dl-scale Y]
#include <cstdio>

#include "core/study.hpp"
#include "report/table.hpp"
#include "stats/ecdf.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace appstore;

  util::Cli cli("popularity_analysis", "popularity pipeline over all four stores");
  auto seed = cli.u64("seed", 3, "PRNG seed");
  auto app_scale = cli.f64("app-scale", 0.02, "fraction of paper-scale app counts");
  auto dl_scale = cli.f64("dl-scale", 1e-4, "fraction of paper-scale downloads");
  cli.parse(argc, argv);

  synth::GeneratorConfig config;
  config.seed = *seed;
  config.app_scale = *app_scale;
  config.download_scale = *dl_scale;

  report::Table popularity({"store", "top 10% share", "trunk slope", "R^2",
                            "P[0 updates]", "best model", "distance"});

  for (const auto& profile : synth::all_profiles()) {
    const core::EcosystemStudy study(profile, config);
    const auto fit_report = study.popularity_fit();
    const stats::Ecdf updates(study.updates_per_app());

    // Rank the three models on this store's measured curve.
    fit::SweepOptions options;
    options.zr_grid = {1.0, 1.2, 1.4, 1.6, 1.8};
    options.p_grid = {0.9};
    options.zc_grid = {1.4};
    options.seed = *seed + 11;
    std::string best_name = "-";
    double best_distance = 1e300;
    for (const auto kind : {models::ModelKind::kZipf, models::ModelKind::kZipfAtMostOnce,
                            models::ModelKind::kAppClustering}) {
      const auto result = study.fit(kind, profile.crawl_days, options);
      if (result.distance < best_distance) {
        best_distance = result.distance;
        best_name = std::string(to_string(kind));
      }
    }

    popularity.row({profile.name, report::percent(study.pareto_share(0.10)),
                    report::fixed(fit_report.trunk.exponent, 2),
                    report::fixed(fit_report.trunk.r_squared, 3),
                    report::percent(updates.at(0.0)), best_name,
                    report::fixed(best_distance, 3)});
  }
  std::printf("%s", popularity.render().c_str());
  std::printf("\nExpected: strong Pareto effect, trunk slopes near the paper's "
              "(1.42/1.51/0.92/0.90 order of magnitude), >80%% of apps never "
              "updated, and APP-CLUSTERING the best-fitting model everywhere.\n");
  return 0;
}
