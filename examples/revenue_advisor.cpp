// Revenue advisor: given a category, should a developer ship a paid app or a
// free ad-supported one? Applies the paper's §6 analyses to a generated
// SlideMe-like marketplace and prints a per-category recommendation.
//
//   $ ./revenue_advisor [--ad-income 0.05]   # expected ad $/download
#include <cstdio>

#include "pricing/breakeven.hpp"
#include "pricing/income.hpp"
#include "pricing/strategies.hpp"
#include "report/table.hpp"
#include "synth/generator.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace appstore;

  util::Cli cli("revenue_advisor", "paid vs free-with-ads strategy per category");
  auto seed = cli.u64("seed", 9, "PRNG seed");
  auto ad_income = cli.f64("ad-income", 0.05,
                           "expected ad revenue per download (dollars)");
  cli.parse(argc, argv);

  synth::GeneratorConfig config;
  config.seed = *seed;
  config.app_scale = 0.12;
  config.download_scale = 5e-4;
  config.paid_download_scale = 0.05;
  const auto generated = synth::generate(synth::slideme(), config);
  const auto& store = *generated.store;

  const auto shares = pricing::strategy_shares(store);
  std::printf("marketplace: %zu apps, %zu developers (free-only %.0f%%, paid-only "
              "%.0f%%, both %.0f%%)\n\n",
              store.apps().size(), shares.developers, 100.0 * shares.free_only,
              100.0 * shares.paid_only, 100.0 * shares.both);

  auto rows = pricing::breakeven_by_category(store);
  const double normalization = config.download_scale / config.paid_download_scale;
  for (auto& row : rows) row.breakeven_dollars *= normalization;

  report::Table table({"category", "break-even $/download", "advice at your ad income"});
  for (const auto& row : rows) {
    const bool free_wins = *ad_income >= row.breakeven_dollars;
    table.row({row.name, "$" + report::fixed(row.breakeven_dollars, 4),
               free_wins ? "go FREE with ads" : "go PAID"});
  }
  std::printf("assumed ad income: $%.3f per download\n\n%s\n", *ad_income,
              table.render().c_str());

  const auto overall = pricing::breakeven_by_tier(store);
  if (overall.has_value()) {
    std::printf("popularity matters more than category: popular free apps break even at "
                "$%.4f per download, unpopular ones at $%.4f (x%.0f).\n",
                overall->popular * normalization, overall->unpopular * normalization,
                overall->popular > 0 ? overall->unpopular / overall->popular : 0.0);
  }

  const auto incomes = pricing::developer_incomes(store);
  std::printf("and quality beats quantity: Pearson(income, #paid apps) = %.3f.\n",
              pricing::income_app_count_correlation(incomes));
  return 0;
}
