// Quickstart: generate a synthetic Anzhi-like marketplace, then run the
// paper's core popularity analyses in a dozen lines of API calls.
//
//   $ ./quickstart [--seed N] [--app-scale X] [--dl-scale Y]
#include <cstdio>

#include "core/study.hpp"
#include "report/table.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace appstore;

  util::Cli cli("quickstart", "EcosystemStudy in a nutshell");
  auto seed = cli.u64("seed", 42, "PRNG seed");
  auto app_scale = cli.f64("app-scale", 0.05, "fraction of paper-scale app counts");
  auto dl_scale = cli.f64("dl-scale", 2e-4, "fraction of paper-scale downloads");
  cli.parse(argc, argv);

  // 1. Build a marketplace calibrated to the Anzhi appstore (Table 1 of the
  //    paper), scaled down so this runs in a couple of seconds.
  synth::GeneratorConfig config;
  config.seed = *seed;
  config.app_scale = *app_scale;
  config.download_scale = *dl_scale;
  config.comments = true;

  synth::StoreProfile profile = synth::anzhi();
  profile.commenter_fraction = 0.10;  // plenty of commenting users at small scale

  const core::EcosystemStudy study(profile, config);
  const auto& store = study.store();
  std::printf("generated '%s': %zu apps, %u users, %llu downloads, %zu comments\n\n",
              store.name().c_str(), store.apps().size(), store.user_count(),
              static_cast<unsigned long long>(store.total_downloads()),
              store.comment_log().size());

  // 2. The Pareto effect (Fig. 2).
  std::printf("top 1%% of apps hold %.1f%% of downloads; top 10%% hold %.1f%%\n",
              100.0 * study.pareto_share(0.01), 100.0 * study.pareto_share(0.10));

  // 3. The truncated power law (Fig. 3).
  const auto fit = study.popularity_fit();
  std::printf("Zipf trunk exponent %.2f (R^2 %.3f); head ratio %.3f, tail ratio %.3f\n",
              fit.trunk.exponent, fit.trunk.r_squared, fit.head_ratio, fit.tail_ratio);

  // 4. The clustering effect (Fig. 6): measured temporal affinity vs the
  //    random-walk baseline.
  const auto strings = study.category_strings();
  const auto affinities = affinity::per_user_affinity(strings, 1);
  double mean_affinity = 0.0;
  for (const double a : affinities) mean_affinity += a;
  if (!affinities.empty()) mean_affinity /= static_cast<double>(affinities.size());
  const double random_walk = study.random_walk_affinity(1);
  std::printf("temporal affinity (depth 1): %.2f measured vs %.2f random walk (%.1fx)\n",
              mean_affinity, random_walk,
              random_walk > 0 ? mean_affinity / random_walk : 0.0);

  // 5. Fit the three download models (Fig. 8/9) and rank them.
  fit::SweepOptions options;
  options.zr_grid = {1.2, 1.4, 1.6};
  options.p_grid = {0.9};
  options.zc_grid = {1.4};
  options.seed = *seed + 1;
  report::Table table({"model", "Eq.6 distance"});
  for (const auto kind : {models::ModelKind::kZipf, models::ModelKind::kZipfAtMostOnce,
                          models::ModelKind::kAppClustering}) {
    const auto result = study.fit(kind, profile.crawl_days, options);
    table.row({std::string(to_string(kind)), report::fixed(result.distance, 3)});
  }
  std::printf("\nmodel fits against the generated store's measured curve:\n%s",
              table.render().c_str());
  return 0;
}
