#include "obs/registry.hpp"

namespace appstore::obs {

namespace {

template <typename Map, typename... Args>
auto& find_or_create(Map& map, std::string_view name, std::string_view label,
                     Args&&... args) {
  const auto it = map.find(std::pair(std::string(name), std::string(label)));
  if (it != map.end()) return *it->second;
  auto [inserted, _] =
      map.emplace(std::pair(std::string(name), std::string(label)),
                  std::make_unique<typename Map::mapped_type::element_type>(
                      std::forward<Args>(args)...));
  return *inserted->second;
}

}  // namespace

Counter& Registry::counter(std::string_view name, std::string_view label) {
  const std::lock_guard lock(mutex_);
  return find_or_create(counters_, name, label);
}

Gauge& Registry::gauge(std::string_view name, std::string_view label) {
  const std::lock_guard lock(mutex_);
  return find_or_create(gauges_, name, label);
}

Histogram& Registry::histogram(std::string_view name, std::string_view label,
                               HistogramOptions options) {
  const std::lock_guard lock(mutex_);
  return find_or_create(histograms_, name, label, options);
}

void Registry::describe(std::string_view name, std::string_view help) {
  const std::lock_guard lock(mutex_);
  help_.insert_or_assign(std::string(name), std::string(help));
}

std::string Registry::help_for(std::string_view name) const {
  const std::lock_guard lock(mutex_);
  const auto it = help_.find(name);
  return it == help_.end() ? std::string() : it->second;
}

Snapshot Registry::snapshot() const {
  const std::lock_guard lock(mutex_);
  Snapshot out;
  out.counters.reserve(counters_.size());
  for (const auto& [key, metric] : counters_) {
    out.counters.push_back(CounterSample{key.first, key.second, metric->value()});
  }
  out.gauges.reserve(gauges_.size());
  for (const auto& [key, metric] : gauges_) {
    out.gauges.push_back(GaugeSample{key.first, key.second, metric->value()});
  }
  out.histograms.reserve(histograms_.size());
  for (const auto& [key, metric] : histograms_) {
    HistogramSample sample;
    sample.name = key.first;
    sample.label = key.second;
    sample.count = metric->count();
    sample.sum = metric->sum();
    sample.min = metric->min();
    sample.max = metric->max();
    sample.p50 = metric->quantile(0.50);
    sample.p90 = metric->quantile(0.90);
    sample.p99 = metric->quantile(0.99);
    out.histograms.push_back(std::move(sample));
  }
  return out;
}

const CounterSample* Snapshot::find_counter(std::string_view name,
                                            std::string_view label) const noexcept {
  for (const auto& sample : counters) {
    if (sample.name == name && sample.label == label) return &sample;
  }
  return nullptr;
}

const HistogramSample* Snapshot::find_histogram(std::string_view name,
                                                std::string_view label) const noexcept {
  for (const auto& sample : histograms) {
    if (sample.name == name && sample.label == label) return &sample;
  }
  return nullptr;
}

Registry& default_registry() {
  static Registry registry;
  return registry;
}

}  // namespace appstore::obs
