#include "obs/export.hpp"

#include <cmath>
#include <cstdio>

#include "util/logging.hpp"

namespace appstore::obs {

namespace {

constexpr std::string_view kComponent = "obs";

/// JSON string escaping (quotes, backslashes, control characters).
void append_escaped(std::string& out, std::string_view text) {
  out.push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

/// Shortest-round-trip double rendering; non-finite values (which JSON
/// cannot represent) degrade to 0.
void append_double(std::string& out, double value) {
  if (!std::isfinite(value)) value = 0.0;
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  // Trim to the shortest representation that still parses back exactly.
  for (int precision = 1; precision < 17; ++precision) {
    char candidate[32];
    std::snprintf(candidate, sizeof(candidate), "%.*g", precision, value);
    double parsed = 0.0;
    std::sscanf(candidate, "%lf", &parsed);
    if (parsed == value) {
      out += candidate;
      return;
    }
  }
  out += buffer;
}

void append_name_label(std::string& out, const std::string& name, const std::string& label) {
  out += "\"name\":";
  append_escaped(out, name);
  out += ",\"label\":";
  append_escaped(out, label);
}

void append_text_line(std::string& out, const std::string& name, const std::string& label,
                      const std::string& suffix, double value) {
  out += name;
  if (!suffix.empty()) {
    out += '_';
    out += suffix;
  }
  if (!label.empty()) {
    out += "{label=\"";
    out += label;
    out += "\"}";
  }
  out.push_back(' ');
  append_double(out, value);
  out.push_back('\n');
}

void append_text_help(std::string& out, const Registry* help_from, const std::string& name,
                      std::string_view type, std::string& last_family) {
  if (name == last_family) return;
  last_family = name;
  if (help_from != nullptr) {
    const std::string help = help_from->help_for(name);
    if (!help.empty()) out += "# HELP " + name + " " + help + "\n";
  }
  out += "# TYPE " + name + " ";
  out += type;
  out.push_back('\n');
}

}  // namespace

std::string to_text(const Snapshot& snapshot, const Registry* help_from) {
  std::string out;
  std::string last_family;
  for (const auto& sample : snapshot.counters) {
    append_text_help(out, help_from, sample.name, "counter", last_family);
    append_text_line(out, sample.name, sample.label, "", static_cast<double>(sample.value));
  }
  for (const auto& sample : snapshot.gauges) {
    append_text_help(out, help_from, sample.name, "gauge", last_family);
    append_text_line(out, sample.name, sample.label, "", sample.value);
  }
  for (const auto& sample : snapshot.histograms) {
    append_text_help(out, help_from, sample.name, "histogram", last_family);
    append_text_line(out, sample.name, sample.label, "count", static_cast<double>(sample.count));
    append_text_line(out, sample.name, sample.label, "sum", sample.sum);
    append_text_line(out, sample.name, sample.label, "p50", sample.p50);
    append_text_line(out, sample.name, sample.label, "p90", sample.p90);
    append_text_line(out, sample.name, sample.label, "p99", sample.p99);
  }
  return out;
}

std::string to_text(const Registry& registry) { return to_text(registry.snapshot(), &registry); }

std::string to_json(const Snapshot& snapshot) {
  std::string out;
  out.reserve(256 + 96 * (snapshot.counters.size() + snapshot.gauges.size() +
                          2 * snapshot.histograms.size()));
  out += "{\"counters\":[";
  bool first = true;
  for (const auto& sample : snapshot.counters) {
    if (!first) out.push_back(',');
    first = false;
    out.push_back('{');
    append_name_label(out, sample.name, sample.label);
    out += ",\"value\":";
    out += std::to_string(sample.value);
    out.push_back('}');
  }
  out += "],\"gauges\":[";
  first = true;
  for (const auto& sample : snapshot.gauges) {
    if (!first) out.push_back(',');
    first = false;
    out.push_back('{');
    append_name_label(out, sample.name, sample.label);
    out += ",\"value\":";
    append_double(out, sample.value);
    out.push_back('}');
  }
  out += "],\"histograms\":[";
  first = true;
  for (const auto& sample : snapshot.histograms) {
    if (!first) out.push_back(',');
    first = false;
    out.push_back('{');
    append_name_label(out, sample.name, sample.label);
    out += ",\"count\":";
    out += std::to_string(sample.count);
    for (const auto& [key, value] :
         {std::pair<const char*, double>{"sum", sample.sum},
          {"min", sample.min},
          {"max", sample.max},
          {"p50", sample.p50},
          {"p90", sample.p90},
          {"p99", sample.p99}}) {
      out += ",\"";
      out += key;
      out += "\":";
      append_double(out, value);
    }
    out.push_back('}');
  }
  out += "]}";
  return out;
}

std::string to_json(const Registry& registry) { return to_json(registry.snapshot()); }

bool write_json_file(const Registry& registry, const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    util::log_warn(kComponent, "cannot open metrics file {}", path);
    return false;
  }
  const std::string json = to_json(registry);
  const bool ok = std::fwrite(json.data(), 1, json.size(), file) == json.size();
  std::fclose(file);
  if (!ok) util::log_warn(kComponent, "short write to metrics file {}", path);
  return ok;
}

}  // namespace appstore::obs
