// Metric registry: named, labeled families of counters/gauges/histograms.
//
// A family is a metric name ("http_requests_total") plus a set of labeled
// members ("2xx", "5xx", ...). Registration takes a mutex and returns a
// reference that stays valid for the registry's lifetime, so instrumented
// code registers once at construction and touches only the lock-free
// metric on the hot path:
//
//   obs::Registry registry;
//   obs::Counter& hits = registry.counter("cache_hits_total", "LRU");
//   ...
//   hits.inc();                      // relaxed atomic add, no lock
//
// Exporters (obs/export.hpp) consume Registry::snapshot(), which walks the
// families in deterministic (name, label) order.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"

namespace appstore::obs {

/// Point-in-time view of one metric, produced by Registry::snapshot().
struct CounterSample {
  std::string name;
  std::string label;
  std::uint64_t value = 0;
};

struct GaugeSample {
  std::string name;
  std::string label;
  double value = 0.0;
};

struct HistogramSample {
  std::string name;
  std::string label;
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

struct Snapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  /// Counter lookup by (name, label); nullptr when absent. For tests and
  /// the bench reporters; O(n).
  [[nodiscard]] const CounterSample* find_counter(std::string_view name,
                                                  std::string_view label = {}) const noexcept;
  [[nodiscard]] const HistogramSample* find_histogram(
      std::string_view name, std::string_view label = {}) const noexcept;
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Returns the metric for (name, label), creating it on first use. The
  /// label may be empty for singleton families. References remain valid
  /// for the registry's lifetime.
  [[nodiscard]] Counter& counter(std::string_view name, std::string_view label = {});
  [[nodiscard]] Gauge& gauge(std::string_view name, std::string_view label = {});
  /// `options` applies only on first registration of (name, label);
  /// subsequent calls return the existing histogram unchanged.
  [[nodiscard]] Histogram& histogram(std::string_view name, std::string_view label = {},
                                     HistogramOptions options = {});

  /// Attaches help text to a family (shown by the text exporter).
  void describe(std::string_view name, std::string_view help);
  [[nodiscard]] std::string help_for(std::string_view name) const;

  [[nodiscard]] Snapshot snapshot() const;

 private:
  using Key = std::pair<std::string, std::string>;  ///< (family, label)

  mutable std::mutex mutex_;
  std::map<Key, std::unique_ptr<Counter>> counters_;
  std::map<Key, std::unique_ptr<Gauge>> gauges_;
  std::map<Key, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::string, std::less<>> help_;
};

/// Process-global registry for code without an obvious owner (CLI tools,
/// ad-hoc instrumentation). Library classes prefer an injected Registry* so
/// tests and multi-instance setups stay isolated.
[[nodiscard]] Registry& default_registry();

}  // namespace appstore::obs
