#include "obs/trace.hpp"

namespace appstore::obs {

namespace {
thread_local TraceSpan* t_current_span = nullptr;
}

TraceSpan::TraceSpan(Registry* registry, std::string_view name)
    : registry_(registry),
      parent_(t_current_span),
      start_(std::chrono::steady_clock::now()) {
  if (parent_ != nullptr) {
    path_.reserve(parent_->path_.size() + 1 + name.size());
    path_ = parent_->path_;
    path_ += '/';
  }
  path_ += name;
  t_current_span = this;
}

TraceSpan::~TraceSpan() {
  t_current_span = parent_;
  if (registry_ == nullptr) return;
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  registry_->histogram(kFamily, path_).observe(seconds);
}

std::string TraceSpan::current_path() {
  return t_current_span == nullptr ? std::string() : t_current_span->path_;
}

}  // namespace appstore::obs
