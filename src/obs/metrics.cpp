#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace appstore::obs {

Histogram::Histogram(HistogramOptions options)
    : options_(options),
      inv_log_growth_(1.0 / std::log(options.growth)),
      buckets_(new std::atomic<std::uint64_t>[options.bucket_count + 1]),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  for (std::size_t i = 0; i <= options_.bucket_count; ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

std::size_t Histogram::bucket_index(double value) const noexcept {
  if (!(value > options_.least_bound)) return 0;  // also catches NaN
  // Smallest i with least*growth^i >= value, i.e. ceil(log_g(value/least)).
  const double raw = std::log(value / options_.least_bound) * inv_log_growth_;
  const auto i = static_cast<std::size_t>(std::ceil(raw - 1e-12));
  return std::min(i, options_.bucket_count);  // last slot = overflow
}

void Histogram::observe(double value) noexcept {
  if (std::isnan(value)) return;
  buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  double seen = min_.load(std::memory_order_relaxed);
  while (value < seen && !min_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen && !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

double Histogram::min() const noexcept {
  const double v = min_.load(std::memory_order_relaxed);
  return std::isinf(v) ? 0.0 : v;
}

double Histogram::max() const noexcept {
  const double v = max_.load(std::memory_order_relaxed);
  return std::isinf(v) ? 0.0 : v;
}

double Histogram::bucket_bound(std::size_t i) const noexcept {
  if (i >= options_.bucket_count) return max();
  return options_.least_bound * std::pow(options_.growth, static_cast<double>(i));
}

double Histogram::quantile(double q) const noexcept {
  const std::uint64_t total = count();
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target observation (1-based, nearest-rank with rounding).
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(total))));

  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i <= options_.bucket_count; ++i) {
    const std::uint64_t in_bucket = buckets_[i].load(std::memory_order_relaxed);
    if (cumulative + in_bucket < rank) {
      cumulative += in_bucket;
      continue;
    }
    // The rank lands in bucket i: interpolate within (lower, upper].
    double lower = i == 0 ? 0.0 : bucket_bound(i - 1);
    double upper = bucket_bound(i);
    // Clip to the actually observed range so tiny samples aren't smeared
    // across a whole bucket.
    lower = std::max(lower, min());
    upper = i >= options_.bucket_count ? max() : std::min(upper, max());
    if (upper < lower) upper = lower;
    const double fraction =
        in_bucket == 0
            ? 1.0
            : static_cast<double>(rank - cumulative) / static_cast<double>(in_bucket);
    return lower + fraction * (upper - lower);
  }
  return max();  // unreachable: ranks are <= total
}

}  // namespace appstore::obs
