// Lock-cheap metric primitives (the observability layer's data plane).
//
// Counters, gauges and histograms are plain atomics: the increment/observe
// hot paths take no locks and use relaxed memory ordering, so sprinkling
// them through the HTTP server or the model samplers costs a handful of
// nanoseconds per event. Aggregation (quantiles, snapshots, exporters) is
// the slow path and tolerates the mild raciness of relaxed reads — a
// scrape concurrent with traffic sees a value that was true at *some*
// instant during the scrape, which is all any metrics pipeline promises.
//
// Histograms use log-spaced buckets: bucket i covers
// (least*growth^(i-1), least*growth^i], chosen so one parameterization
// spans nanoseconds to minutes with bounded relative quantile error
// (growth 2.0 -> every estimate within 2x, interpolated much closer).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace appstore::obs {

/// Monotonically increasing event count. Increment is one relaxed
/// fetch_add; safe to call from any thread.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept { value_.fetch_add(n, std::memory_order_relaxed); }

  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Point-in-time value (queue depth, draws/sec, resident bytes).
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(double v) noexcept {
    // fetch_add on atomic<double> is C++20; relaxed like the rest.
    value_.fetch_add(v, std::memory_order_relaxed);
  }
  void sub(double v) noexcept { add(-v); }

  [[nodiscard]] double value() const noexcept { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Bucket layout for Histogram. Defaults span 1 µs .. ~1100 s when values
/// are seconds (31 buckets, growth 2), fitting every latency this library
/// measures; override `least_bound`/`growth` for byte- or count-valued
/// histograms.
struct HistogramOptions {
  double least_bound = 1e-6;  ///< upper bound of the first bucket
  double growth = 2.0;        ///< geometric bucket-width factor (> 1)
  std::size_t bucket_count = 31;  ///< log-spaced buckets plus one overflow
};

/// Fixed-bucket log-spaced histogram with atomic counts.
///
/// observe() is wait-free: one bucket index computation plus three relaxed
/// atomic updates (bucket, count, sum). min/max use relaxed CAS loops that
/// almost never retry. Quantiles are estimated by rank-walking a snapshot
/// of the buckets and interpolating linearly inside the winning bucket.
class Histogram {
 public:
  explicit Histogram(HistogramOptions options = {});

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void observe(double value) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  /// Smallest / largest observed value; 0 when empty.
  [[nodiscard]] double min() const noexcept;
  [[nodiscard]] double max() const noexcept;
  [[nodiscard]] double mean() const noexcept {
    const auto n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
  }

  /// Estimated q-quantile (q in [0, 1]); 0 when empty. Error is bounded by
  /// the width of the bucket the quantile lands in.
  [[nodiscard]] double quantile(double q) const noexcept;

  [[nodiscard]] const HistogramOptions& options() const noexcept { return options_; }
  /// Upper bound of bucket `i` (the overflow bucket reports max()).
  [[nodiscard]] double bucket_bound(std::size_t i) const noexcept;
  [[nodiscard]] std::size_t bucket_count() const noexcept { return options_.bucket_count + 1; }
  [[nodiscard]] std::uint64_t bucket_value(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  [[nodiscard]] std::size_t bucket_index(double value) const noexcept;

  HistogramOptions options_;
  double inv_log_growth_;  ///< 1 / ln(growth), precomputed for bucket_index
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  ///< bucket_count + overflow
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
};

}  // namespace appstore::obs
