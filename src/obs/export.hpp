// Exporters: render a Registry (or a pre-taken Snapshot) as text or JSON.
//
// Text is the human/prometheus-style form served by `/api/metrics?fmt=text`:
//
//   # HELP http_requests_total Requests by status class
//   # TYPE http_requests_total counter
//   http_requests_total{label="2xx"} 1042
//
// JSON is the machine form (default for `/api/metrics` and the bench
// `--metrics-out` dumps). It is deliberately self-contained — obs sits
// below net/crawler in the dependency order, so it writes JSON by hand;
// crawlersim::parse_json round-trips it (covered by tests/obs_test.cpp):
//
//   {"counters":[{"name":"...","label":"...","value":1042}],
//    "gauges":[{"name":"...","label":"...","value":3.5}],
//    "histograms":[{"name":"...","label":"...","count":9,"sum":1.2,
//                   "min":...,"max":...,"p50":...,"p90":...,"p99":...}]}
#pragma once

#include <string>

#include "obs/registry.hpp"

namespace appstore::obs {

[[nodiscard]] std::string to_text(const Snapshot& snapshot, const Registry* help_from = nullptr);
[[nodiscard]] std::string to_text(const Registry& registry);

[[nodiscard]] std::string to_json(const Snapshot& snapshot);
[[nodiscard]] std::string to_json(const Registry& registry);

/// Writes to_json(registry) to `path`; false (with a warning log) on I/O
/// failure. Used by the bench harness's --metrics-out flag.
bool write_json_file(const Registry& registry, const std::string& path);

}  // namespace appstore::obs
