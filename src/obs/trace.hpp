// RAII timing helpers: ScopedTimer (one histogram observation per scope)
// and TraceSpan (named, nestable spans recorded as labeled histograms).
//
//   void Crawler::crawl_day(...) {
//     obs::TraceSpan span(registry, "crawl_day");     // label "crawl_day"
//     ...
//     { obs::TraceSpan page(registry, "directory"); } // "crawl_day/directory"
//   }
//
// Span nesting is tracked per thread; a span's label is the '/'-joined path
// of the spans enclosing it on the same thread, so one histogram family
// ("trace_span_seconds") carries a flat, greppable view of where wall time
// goes. Spans cost one registry lookup at open (mutex) and one histogram
// observation at close — use them around operations, not instructions.
#pragma once

#include <chrono>
#include <string>
#include <string_view>

#include "obs/registry.hpp"

namespace appstore::obs {

/// Observes the scope's wall time (seconds) into `histogram` on destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& histogram) noexcept
      : histogram_(&histogram), start_(std::chrono::steady_clock::now()) {}
  /// Null-safe: a nullptr histogram makes the timer a no-op, so callers
  /// with optional metrics avoid branching at every use site.
  explicit ScopedTimer(Histogram* histogram) noexcept
      : histogram_(histogram), start_(std::chrono::steady_clock::now()) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    if (histogram_ != nullptr) histogram_->observe(elapsed_seconds());
  }

  /// Seconds since construction (without stopping the timer).
  [[nodiscard]] double elapsed_seconds() const noexcept {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  }

  /// Drops the pending observation (e.g. when the operation failed and its
  /// latency would pollute the success histogram).
  void cancel() noexcept { histogram_ = nullptr; }

 private:
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_;
};

/// Named span; closes (and records) on destruction. Label = '/'-joined path
/// of enclosing spans on this thread. Registry may be nullptr (no-op span).
class TraceSpan {
 public:
  static constexpr std::string_view kFamily = "trace_span_seconds";

  TraceSpan(Registry* registry, std::string_view name);
  TraceSpan(Registry& registry, std::string_view name) : TraceSpan(&registry, name) {}

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  ~TraceSpan();

  /// '/'-joined path of this span, e.g. "crawl_day/directory".
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

  /// Path of the innermost open span on the calling thread ("" when none).
  [[nodiscard]] static std::string current_path();

 private:
  std::string path_;
  Registry* registry_;
  TraceSpan* parent_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace appstore::obs
