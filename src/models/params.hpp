// Parameters and cluster layouts for the download models of §5.
//
// Apps are identified by their 0-based *global popularity index*: index 0 is
// the app with global rank i = 1 in the paper's notation. A ClusterLayout
// maps each app to a cluster and a within-cluster rank j (Table 2).
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace appstore::models {

/// Table 2 of the paper, in one struct. Models ignore the fields they do not
/// use (e.g. ZIPF ignores p/zc/cluster_count).
struct ModelParams {
  std::uint32_t app_count = 0;        ///< A
  std::uint64_t user_count = 0;       ///< U
  double downloads_per_user = 0.0;    ///< d (fractional part realized per user)
  double zr = 1.0;                    ///< global Zipf exponent (ZG)
  double p = 0.0;                     ///< clustering probability
  double zc = 1.0;                    ///< per-cluster Zipf exponent (Zc)
  std::uint32_t cluster_count = 1;    ///< C

  [[nodiscard]] double total_downloads() const noexcept {
    return static_cast<double>(user_count) * downloads_per_user;
  }
};

/// Assignment of apps to clusters. Within-cluster ranks follow global
/// popularity order: if two apps share a cluster, the globally more popular
/// one has the smaller within-cluster rank j — matching the paper's model
/// where both rankings order by popularity.
class ClusterLayout {
 public:
  ClusterLayout() = default;

  /// Deals apps into clusters round-robin by global rank: app i goes to
  /// cluster i mod C with within-rank floor(i/C)+1. All clusters have equal
  /// size (±1), the paper's simplifying assumption (§5.1 "all C clusters
  /// have the same size").
  [[nodiscard]] static ClusterLayout round_robin(std::uint32_t app_count,
                                                 std::uint32_t cluster_count);

  /// Contiguous blocks of global ranks per cluster (ablation: clusters whose
  /// whole content is popular vs unpopular).
  [[nodiscard]] static ClusterLayout contiguous(std::uint32_t app_count,
                                                std::uint32_t cluster_count);

  /// Uniformly random assignment (ablation: unequal cluster sizes).
  [[nodiscard]] static ClusterLayout random(std::uint32_t app_count,
                                            std::uint32_t cluster_count, util::Rng& rng);

  /// Builds from an explicit app→cluster map (e.g. a real store's category
  /// assignment); within-cluster ranks follow the order of appearance, which
  /// callers should make global popularity order.
  [[nodiscard]] static ClusterLayout from_assignment(std::vector<std::uint32_t> app_cluster);

  [[nodiscard]] std::uint32_t app_count() const noexcept {
    return static_cast<std::uint32_t>(app_cluster_.size());
  }
  [[nodiscard]] std::uint32_t cluster_count() const noexcept {
    return static_cast<std::uint32_t>(members_.size());
  }

  /// Cluster of an app (0-based).
  [[nodiscard]] std::uint32_t cluster_of(std::uint32_t app) const { return app_cluster_[app]; }

  /// 1-based within-cluster rank j of an app.
  [[nodiscard]] std::uint32_t within_rank(std::uint32_t app) const { return within_rank_[app]; }

  /// Members of a cluster in within-rank order (index j-1 = rank j).
  [[nodiscard]] const std::vector<std::uint32_t>& members(std::uint32_t cluster) const {
    return members_[cluster];
  }

  [[nodiscard]] const std::vector<std::vector<std::uint32_t>>& all_members() const noexcept {
    return members_;
  }

 private:
  /// Shared builder: derives within-ranks and member lists from an
  /// app→cluster assignment (ranks follow global order of appearance).
  [[nodiscard]] static ClusterLayout build(std::vector<std::uint32_t> app_cluster,
                                           std::uint32_t cluster_count);

  std::vector<std::uint32_t> app_cluster_;
  std::vector<std::uint32_t> within_rank_;
  std::vector<std::vector<std::uint32_t>> members_;
};

}  // namespace appstore::models
