#include "models/zipf_amo_model.hpp"

#include <cmath>
#include <stdexcept>

namespace appstore::models {

namespace {

class AmoSession final : public Session {
 public:
  AmoSession(std::shared_ptr<const stats::ZipfSampler> global, std::uint32_t app_count)
      : global_(std::move(global)), app_count_(app_count) {}

  [[nodiscard]] std::uint32_t next(util::Rng& rng) override {
    const std::uint32_t app = draw_unfetched(
        rng, fetched_, app_count_,
        [this](util::Rng& r) { return static_cast<std::uint32_t>(global_->sample_index(r)); },
        [](std::uint32_t index) { return index; });
    fetched_.insert(app);
    return app;
  }

  [[nodiscard]] bool exhausted() const noexcept override {
    return fetched_.size() >= app_count_;
  }

 private:
  std::shared_ptr<const stats::ZipfSampler> global_;
  std::uint32_t app_count_;
  FetchedSet fetched_;
};

}  // namespace

ZipfAtMostOnceModel::ZipfAtMostOnceModel(ModelParams params) : params_(params) {
  if (params_.app_count == 0) throw std::invalid_argument("ZipfAtMostOnceModel: no apps");
  global_ = std::make_shared<const stats::ZipfSampler>(params_.app_count, params_.zr);
}

std::unique_ptr<Session> ZipfAtMostOnceModel::new_session() const {
  return std::make_unique<AmoSession>(global_, params_.app_count);
}

std::vector<double> ZipfAtMostOnceModel::expected_downloads() const {
  const stats::FiniteZipf zipf(params_.app_count, params_.zr);
  std::vector<double> expected(params_.app_count);
  const double users = static_cast<double>(params_.user_count);
  for (std::uint64_t rank = 1; rank <= params_.app_count; ++rank) {
    const double probability = zipf.pmf(rank);
    expected[rank - 1] =
        users * (1.0 - std::pow(1.0 - probability, params_.downloads_per_user));
  }
  return expected;
}

}  // namespace appstore::models
