#include "models/app_clustering_model.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

#include "models/zipf_amo_model.hpp"  // FetchedSet, draw_unfetched

namespace appstore::models {

namespace {

class ClusteringSession final : public Session {
 public:
  explicit ClusteringSession(const AppClusteringModel& model) : model_(model) {}

  [[nodiscard]] std::uint32_t next(util::Rng& rng) override {
    const auto& layout = model_.layout();
    std::uint32_t app = 0;
    if (fetched_.size() == 0 || !rng.chance(model_.params().p)) {
      // Step 1 / step 2.2: global ZG draw, fetch-at-most-once.
      app = draw_unfetched(
          rng, fetched_, model_.params().app_count,
          [this](util::Rng& r) {
            return static_cast<std::uint32_t>(model_.global_sampler().sample_index(r));
          },
          [](std::uint32_t index) { return index; });
    } else {
      // Step 2.1: revisit the cluster of a uniformly-chosen previous
      // download. If that cluster is fully fetched, re-anchor on another
      // previous download; after a few failures fall back to a global draw
      // (the user has saturated their neighbourhoods).
      app = model_.params().app_count;  // sentinel
      for (int anchor_attempt = 0; anchor_attempt < 8; ++anchor_attempt) {
        const std::uint32_t anchor =
            fetched_.fetched[static_cast<std::size_t>(rng.below(fetched_.size()))];
        const std::uint32_t cluster = layout.cluster_of(anchor);
        const auto& members = layout.members(cluster);
        if (fetched_in(members) >= members.size()) continue;
        const auto& sampler =
            model_.sampler_for_size(static_cast<std::uint32_t>(members.size()));
        app = draw_unfetched(
            rng, fetched_, static_cast<std::uint32_t>(members.size()),
            [&sampler](util::Rng& r) {
              return static_cast<std::uint32_t>(sampler.sample_index(r));
            },
            [&members](std::uint32_t index) { return members[index]; });
        break;
      }
      if (app == model_.params().app_count) {
        app = draw_unfetched(
            rng, fetched_, model_.params().app_count,
            [this](util::Rng& r) {
              return static_cast<std::uint32_t>(model_.global_sampler().sample_index(r));
            },
            [](std::uint32_t index) { return index; });
      }
    }
    fetched_.insert(app);
    return app;
  }

  [[nodiscard]] bool exhausted() const noexcept override {
    return fetched_.size() >= model_.params().app_count;
  }

 private:
  [[nodiscard]] std::size_t fetched_in(const std::vector<std::uint32_t>& members) const {
    // fetched_ is tiny (d entries); counting against it is cheaper than
    // maintaining per-cluster tallies.
    std::size_t count = 0;
    for (const auto app : fetched_.fetched) {
      for (const auto member : members) {
        if (member == app) {
          ++count;
          break;
        }
      }
    }
    return count;
  }

  const AppClusteringModel& model_;
  FetchedSet fetched_;
};

}  // namespace

AppClusteringModel::AppClusteringModel(ModelParams params, ClusterLayout layout)
    : params_(params), layout_(std::move(layout)) {
  if (params_.app_count == 0) throw std::invalid_argument("AppClusteringModel: no apps");
  if (layout_.app_count() != params_.app_count) {
    throw std::invalid_argument("AppClusteringModel: layout/app_count mismatch");
  }
  if (params_.p < 0.0 || params_.p > 1.0) {
    throw std::invalid_argument("AppClusteringModel: p outside [0,1]");
  }
  params_.cluster_count = layout_.cluster_count();
  global_ = std::make_shared<const stats::ZipfSampler>(params_.app_count, params_.zr);
  // Eager per-size Zc samplers: a layout has few distinct cluster sizes
  // (round-robin: at most two), and building them here keeps the model
  // immutable — concurrent sessions share it without synchronization.
  for (const auto& members : layout_.all_members()) {
    const auto size = static_cast<std::uint32_t>(members.size());
    if (size == 0 || by_size_.contains(size)) continue;
    by_size_.emplace(size, std::make_unique<const stats::ZipfSampler>(size, params_.zc));
  }
}

const stats::ZipfSampler& AppClusteringModel::sampler_for_size(std::uint32_t size) const {
  const auto it = by_size_.find(size);
  if (it == by_size_.end()) {
    throw std::invalid_argument("AppClusteringModel: no cluster of size " +
                                std::to_string(size));
  }
  return *it->second;
}

std::unique_ptr<Session> AppClusteringModel::new_session() const {
  return std::make_unique<ClusteringSession>(*this);
}

std::vector<double> AppClusteringModel::expected_downloads() const {
  const stats::FiniteZipf global(params_.app_count, params_.zr);
  // Per-cluster-size normalizers, cached by size.
  std::map<std::uint32_t, double> harmonic_by_size;

  std::vector<double> expected(params_.app_count);
  const double users = static_cast<double>(params_.user_count);
  const double global_draws = (1.0 - params_.p) * params_.downloads_per_user;
  const double cluster_draws = params_.p * params_.downloads_per_user;

  for (std::uint32_t app = 0; app < params_.app_count; ++app) {
    const double pg = global.pmf(app + 1);  // global rank i = app index + 1

    const std::uint32_t cluster = layout_.cluster_of(app);
    const auto size = static_cast<std::uint32_t>(layout_.members(cluster).size());
    auto it = harmonic_by_size.find(size);
    if (it == harmonic_by_size.end()) {
      it = harmonic_by_size.emplace(size, stats::generalized_harmonic(size, params_.zc)).first;
    }
    const double pc =
        std::pow(static_cast<double>(layout_.within_rank(app)), -params_.zc) / it->second;

    expected[app] = users * (1.0 - std::pow(1.0 - pg, global_draws) *
                                       std::pow(1.0 - pc, cluster_draws));
  }
  return expected;
}

}  // namespace appstore::models
