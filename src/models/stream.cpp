#include "models/stream.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <memory>
#include <stdexcept>

#include "par/parallel.hpp"

namespace appstore::models {

std::vector<Request> generate_stream(const DownloadModel& model, util::Rng& rng) {
  return generate_stream(model, rng, StreamOptions{});
}

std::vector<Request> generate_stream(const DownloadModel& model, util::Rng& rng,
                                     std::uint64_t max_requests) {
  StreamOptions options;
  options.max_requests = max_requests;
  return generate_stream(model, rng, options);
}

std::vector<Request> generate_stream(const DownloadModel& model, util::Rng& rng,
                                     const StreamOptions& options) {
  const events::EventLog log = generate_stream_log(model, rng, options);
  std::vector<Request> stream;
  stream.reserve(log.size());
  for (std::size_t i = 0; i < log.size(); ++i) {
    stream.push_back(Request{log.user()[i], log.app()[i]});
  }
  return stream;
}

events::EventLog generate_stream_log(const DownloadModel& model, util::Rng& rng,
                                     const StreamOptions& options) {
  return generate_stream_slice(model, rng, options).log;
}

StreamSlice generate_stream_slice(const DownloadModel& model, util::Rng& rng,
                                  const StreamOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  const std::uint64_t max_requests = options.max_requests;
  const ModelParams& params = model.params();
  const std::uint64_t users = params.user_count;

  // One master draw seeds every user's derived stream; the shuffle below
  // still consumes the caller's rng directly. Both are thread-count
  // independent, so the stream is a pure function of (rng state, threads
  // notwithstanding).
  const std::uint64_t base = rng();
  const par::Options par_options{.threads = options.threads, .metrics = options.metrics};

  // Phase 1 (parallel): realized download count per user — the first draw of
  // each user's derived stream (the sequence draws continue from it later).
  std::vector<std::uint32_t> realized(users);
  par::parallel_for(users, par_options, [&](std::uint64_t user) {
    util::Rng user_rng = util::rng::derive(base, user);
    realized[user] = static_cast<std::uint32_t>(DownloadModel::realized_downloads(
        params.downloads_per_user, params.app_count, user_rng));
  });

  // Phase 2 (serial): slot multiset — user u appears once per download. The
  // cap is applied AFTER shuffling so that truncation drops a uniform sample
  // of slots instead of silencing the later users entirely.
  std::vector<std::uint32_t> slots;
  slots.reserve(static_cast<std::size_t>(params.total_downloads() * 1.01) + 16);
  for (std::uint64_t user = 0; user < users; ++user) {
    for (std::uint32_t k = 0; k < realized[user]; ++k) {
      slots.push_back(static_cast<std::uint32_t>(user));
    }
  }
  rng.shuffle(std::span<std::uint32_t>(slots));
  if (slots.size() > max_requests) slots.resize(max_requests);

  // Surviving downloads per user: with a request cap, most users need fewer
  // (often zero) sequence entries than they realized.
  std::vector<std::uint32_t> needed(users, 0);
  if (slots.size() < max_requests) {
    needed = realized;  // no truncation: every realized slot survived
  } else {
    for (const std::uint32_t user : slots) ++needed[user];
  }

  // Shard filtering: slot building, shuffling, and per-user derived streams
  // above are identical regardless of the filter, so a filtered run agrees
  // bit-for-bit with its position in the unfiltered union. Sequence storage
  // and generation are skipped entirely for filtered-out users.
  const bool filtered = static_cast<bool>(options.user_filter);
  std::vector<bool> owned;
  if (filtered) {
    owned.resize(users);
    for (std::uint64_t user = 0; user < users; ++user) {
      owned[user] = options.user_filter(static_cast<std::uint32_t>(user));
    }
  }
  const auto owns = [&](std::uint64_t user) { return !filtered || owned[user]; };

  // Flat per-user sequence storage: user u owns [offsets[u], offsets[u+1]).
  std::vector<std::uint64_t> offsets(users + 1, 0);
  for (std::uint64_t user = 0; user < users; ++user) {
    offsets[user + 1] = offsets[user] + (owns(user) ? needed[user] : 0);
  }

  // Phase 3 (parallel): per-user download sequences. Each user replays its
  // derived stream (count draw first, then session draws), so the sequence
  // is independent of sharding. `generated[u]` can fall short of needed[u]
  // only if the session exhausts the whole store.
  std::vector<std::uint32_t> sequence(offsets[users]);
  std::vector<std::uint32_t> generated(users, 0);
  par::parallel_for(users, par_options, [&](std::uint64_t user) {
    if (needed[user] == 0 || !owns(user)) return;
    util::Rng user_rng = util::rng::derive(base, user);
    (void)DownloadModel::realized_downloads(params.downloads_per_user, params.app_count,
                                            user_rng);  // re-consume the count draw
    const auto session = model.new_session();
    std::uint32_t produced = 0;
    while (produced < needed[user] && !session->exhausted()) {
      sequence[offsets[user] + produced] = session->next(user_rng);
      ++produced;
    }
    generated[user] = produced;
  });
  if (filtered) {
    // A slice cannot see other shards' exhaustion, so union arrival indexes
    // are only exact when no session exhausts early. Our synthetic models
    // (kZipf, kAppClustering) never do; fail loudly rather than misalign.
    for (std::uint64_t user = 0; user < users; ++user) {
      if (owns(user) && generated[user] < needed[user]) {
        throw std::logic_error(
            "generate_stream_slice: session exhausted under a user filter; "
            "slice arrival order would diverge from the union stream");
      }
    }
  }

  // Phase 4 (serial): replay the shuffled slots against the sequences,
  // directly into the (user, app) columns of the output log. Under a filter
  // the slot position doubles as the union arrival index (no-exhaustion is
  // guaranteed above, so the union drops no slot).
  std::vector<std::uint32_t> out_user;
  std::vector<std::uint32_t> out_app;
  std::vector<std::uint64_t> out_arrival;
  if (!filtered) {
    out_user.reserve(slots.size());
    out_app.reserve(slots.size());
  }
  std::vector<std::uint32_t> cursor(users, 0);
  for (std::size_t i = 0; i < slots.size(); ++i) {
    const std::uint32_t user = slots[i];
    if (!owns(user)) continue;
    if (cursor[user] >= generated[user]) continue;  // session exhausted early
    out_user.push_back(user);
    out_app.push_back(sequence[offsets[user] + cursor[user]++]);
    if (filtered) out_arrival.push_back(i);
  }
  StreamSlice result;
  result.union_rows = filtered ? slots.size() : out_user.size();
  result.arrival = std::move(out_arrival);
  events::EventLog stream = events::EventLog::from_columns(
      events::Columns::kNone, std::move(out_user), std::move(out_app));

  if (options.metrics != nullptr) {
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    obs::Registry& registry = *options.metrics;
    const std::string_view label = model.name();
    registry.counter("model_draws_total", label).inc(stream.size());
    registry.histogram("model_generate_seconds", label).observe(seconds);
    if (seconds > 0.0) {
      registry.gauge("model_draws_per_second", label)
          .set(static_cast<double>(stream.size()) / seconds);
    }
  }
  result.log = std::move(stream);
  return result;
}

}  // namespace appstore::models
