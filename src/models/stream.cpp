#include "models/stream.hpp"

#include <limits>
#include <memory>

namespace appstore::models {

std::vector<Request> generate_stream(const DownloadModel& model, util::Rng& rng) {
  return generate_stream(model, rng, std::numeric_limits<std::uint64_t>::max());
}

std::vector<Request> generate_stream(const DownloadModel& model, util::Rng& rng,
                                     std::uint64_t max_requests) {
  const ModelParams& params = model.params();

  // Slot multiset: user u appears once per download it will make. The cap is
  // applied AFTER shuffling so that truncation drops a uniform sample of
  // slots instead of silencing the later users entirely.
  std::vector<std::uint32_t> slots;
  slots.reserve(static_cast<std::size_t>(params.total_downloads() * 1.01) + 16);
  for (std::uint64_t user = 0; user < params.user_count; ++user) {
    const std::uint64_t count =
        DownloadModel::realized_downloads(params.downloads_per_user, params.app_count, rng);
    for (std::uint64_t k = 0; k < count; ++k) {
      slots.push_back(static_cast<std::uint32_t>(user));
    }
  }
  rng.shuffle(std::span<std::uint32_t>(slots));
  if (slots.size() > max_requests) slots.resize(max_requests);

  // Sessions are created lazily: with a request cap many users never arrive.
  std::vector<std::unique_ptr<Session>> sessions(params.user_count);

  std::vector<Request> stream;
  stream.reserve(slots.size());
  for (const std::uint32_t user : slots) {
    auto& session = sessions[user];
    if (!session) session = model.new_session();
    if (session->exhausted()) continue;
    stream.push_back(Request{user, session->next(rng)});
  }
  return stream;
}

}  // namespace appstore::models
