#include "models/stream.hpp"

#include <chrono>
#include <limits>
#include <memory>

namespace appstore::models {

std::vector<Request> generate_stream(const DownloadModel& model, util::Rng& rng) {
  return generate_stream(model, rng, StreamOptions{});
}

std::vector<Request> generate_stream(const DownloadModel& model, util::Rng& rng,
                                     std::uint64_t max_requests) {
  return generate_stream(model, rng, StreamOptions{.max_requests = max_requests});
}

std::vector<Request> generate_stream(const DownloadModel& model, util::Rng& rng,
                                     const StreamOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  const std::uint64_t max_requests = options.max_requests;
  const ModelParams& params = model.params();

  // Slot multiset: user u appears once per download it will make. The cap is
  // applied AFTER shuffling so that truncation drops a uniform sample of
  // slots instead of silencing the later users entirely.
  std::vector<std::uint32_t> slots;
  slots.reserve(static_cast<std::size_t>(params.total_downloads() * 1.01) + 16);
  for (std::uint64_t user = 0; user < params.user_count; ++user) {
    const std::uint64_t count =
        DownloadModel::realized_downloads(params.downloads_per_user, params.app_count, rng);
    for (std::uint64_t k = 0; k < count; ++k) {
      slots.push_back(static_cast<std::uint32_t>(user));
    }
  }
  rng.shuffle(std::span<std::uint32_t>(slots));
  if (slots.size() > max_requests) slots.resize(max_requests);

  // Sessions are created lazily: with a request cap many users never arrive.
  std::vector<std::unique_ptr<Session>> sessions(params.user_count);

  std::vector<Request> stream;
  stream.reserve(slots.size());
  for (const std::uint32_t user : slots) {
    auto& session = sessions[user];
    if (!session) session = model.new_session();
    if (session->exhausted()) continue;
    stream.push_back(Request{user, session->next(rng)});
  }

  if (options.metrics != nullptr) {
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    obs::Registry& registry = *options.metrics;
    const std::string_view label = model.name();
    registry.counter("model_draws_total", label).inc(stream.size());
    registry.histogram("model_generate_seconds", label).observe(seconds);
    if (seconds > 0.0) {
      registry.gauge("model_draws_per_second", label)
          .set(static_cast<double>(stream.size()) / seconds);
    }
  }
  return stream;
}

}  // namespace appstore::models
