// The output of a download-model run.
#pragma once

#include <cstdint>
#include <numeric>
#include <vector>

#include "events/event_log.hpp"

namespace appstore::models {

/// Aggregate result of simulating every user's downloads.
///
/// `downloads[a]` is the number of downloads of the app with global
/// popularity index a (global rank a+1). When sequences are recorded,
/// `sequences` is a (user, app) EventLog in generation order with its CSR
/// per-user index built, so `sequence_view(u)` is user u's downloads in
/// chronological order without materializing per-user vectors.
struct Workload {
  std::vector<std::uint64_t> downloads;
  /// Per-user download sequences as a columnar log (user/app only — the
  /// append position is the chronological order). Empty unless the model ran
  /// with record_sequences; indexed by the generator when non-empty.
  events::EventLog sequences{events::Columns::kNone};

  [[nodiscard]] std::uint64_t total() const noexcept {
    return std::reduce(downloads.begin(), downloads.end(), std::uint64_t{0});
  }

  /// Download counts as doubles in app-index order (NOT re-sorted): the
  /// comparison against measured data in Fig. 8 matches app identity — both
  /// curves are indexed by the app's true global popularity rank.
  [[nodiscard]] std::vector<double> counts() const {
    std::vector<double> result;
    result.assign(downloads.begin(), downloads.end());
    return result;
  }

  /// Download counts sorted descending (empirical rank–download curve).
  [[nodiscard]] std::vector<double> by_rank() const;

  /// Zero-copy chronological view of user u's sequence (requires recorded
  /// sequences; throws std::logic_error otherwise).
  [[nodiscard]] events::UserStreamView sequence_view(std::uint32_t user) const {
    return sequences.stream(user);
  }

  /// Deprecated: materializes per-user app vectors from `sequences` —
  /// O(total downloads) copies per call. Prefer sequence_view().
  [[nodiscard]] std::vector<std::vector<std::uint32_t>> user_sequences() const;
};

}  // namespace appstore::models
