// The output of a download-model run.
#pragma once

#include <cstdint>
#include <numeric>
#include <vector>

namespace appstore::models {

/// Aggregate result of simulating every user's downloads.
///
/// `downloads[a]` is the number of downloads of the app with global
/// popularity index a (global rank a+1). When sequences are recorded,
/// `user_sequences[u]` is user u's downloads in chronological order.
struct Workload {
  std::vector<std::uint64_t> downloads;
  std::vector<std::vector<std::uint32_t>> user_sequences;

  [[nodiscard]] std::uint64_t total() const noexcept {
    return std::reduce(downloads.begin(), downloads.end(), std::uint64_t{0});
  }

  /// Download counts as doubles in app-index order (NOT re-sorted): the
  /// comparison against measured data in Fig. 8 matches app identity — both
  /// curves are indexed by the app's true global popularity rank.
  [[nodiscard]] std::vector<double> counts() const {
    std::vector<double> result;
    result.reserve(downloads.size());
    result.assign(downloads.begin(), downloads.end());
    return result;
  }

  /// Download counts sorted descending (empirical rank–download curve).
  [[nodiscard]] std::vector<double> by_rank() const;
};

}  // namespace appstore::models
