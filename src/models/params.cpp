#include "models/params.hpp"

#include <algorithm>
#include <stdexcept>

namespace appstore::models {

ClusterLayout ClusterLayout::round_robin(std::uint32_t app_count, std::uint32_t cluster_count) {
  if (cluster_count == 0) throw std::invalid_argument("ClusterLayout: zero clusters");
  std::vector<std::uint32_t> assignment(app_count);
  for (std::uint32_t app = 0; app < app_count; ++app) assignment[app] = app % cluster_count;
  return build(std::move(assignment), cluster_count);
}

ClusterLayout ClusterLayout::contiguous(std::uint32_t app_count, std::uint32_t cluster_count) {
  if (cluster_count == 0) throw std::invalid_argument("ClusterLayout: zero clusters");
  std::vector<std::uint32_t> assignment(app_count);
  const std::uint32_t base = app_count / cluster_count;
  const std::uint32_t remainder = app_count % cluster_count;
  std::uint32_t app = 0;
  for (std::uint32_t cluster = 0; cluster < cluster_count; ++cluster) {
    const std::uint32_t size = base + (cluster < remainder ? 1 : 0);
    for (std::uint32_t k = 0; k < size && app < app_count; ++k) assignment[app++] = cluster;
  }
  return build(std::move(assignment), cluster_count);
}

ClusterLayout ClusterLayout::random(std::uint32_t app_count, std::uint32_t cluster_count,
                                    util::Rng& rng) {
  if (cluster_count == 0) throw std::invalid_argument("ClusterLayout: zero clusters");
  std::vector<std::uint32_t> assignment(app_count);
  for (auto& cluster : assignment) {
    cluster = static_cast<std::uint32_t>(rng.below(cluster_count));
  }
  return build(std::move(assignment), cluster_count);
}

ClusterLayout ClusterLayout::from_assignment(std::vector<std::uint32_t> app_cluster) {
  std::uint32_t cluster_count = 0;
  for (const auto cluster : app_cluster) cluster_count = std::max(cluster_count, cluster + 1);
  if (cluster_count == 0) throw std::invalid_argument("ClusterLayout: empty assignment");
  return build(std::move(app_cluster), cluster_count);
}

ClusterLayout ClusterLayout::build(std::vector<std::uint32_t> app_cluster,
                                   std::uint32_t cluster_count) {
  ClusterLayout out;
  out.app_cluster_ = std::move(app_cluster);
  out.within_rank_.resize(out.app_cluster_.size());
  out.members_.assign(cluster_count, {});
  for (std::uint32_t app = 0; app < out.app_cluster_.size(); ++app) {
    auto& members = out.members_[out.app_cluster_[app]];
    members.push_back(app);
    out.within_rank_[app] = static_cast<std::uint32_t>(members.size());
  }
  return out;
}

}  // namespace appstore::models
