// ZIPF-at-most-once model (§5.2): downloads are drawn from the global Zipf
// distribution ZG, but a user never downloads the same app twice —
// already-fetched draws are rejected and redrawn (the "fetch-at-most-once"
// property of [Gummadi et al., SOSP'03]).
#pragma once

#include <memory>

#include "models/model.hpp"
#include "stats/zipf.hpp"

namespace appstore::models {

class ZipfAtMostOnceModel final : public DownloadModel {
 public:
  explicit ZipfAtMostOnceModel(ModelParams params);

  [[nodiscard]] std::string_view name() const noexcept override {
    return "ZIPF-at-most-once";
  }
  [[nodiscard]] ModelKind kind() const noexcept override {
    return ModelKind::kZipfAtMostOnce;
  }
  [[nodiscard]] const ModelParams& params() const noexcept override { return params_; }
  [[nodiscard]] std::unique_ptr<Session> new_session() const override;

  /// E[D(i)] = U * (1 - (1 - pG(i))^d): each user fetches app i iff at least
  /// one of d independent ZG draws hits it. This treats rejection-redraws as
  /// fresh draws — exact in the d << A regime the paper (and we) simulate.
  [[nodiscard]] std::vector<double> expected_downloads() const override;

 private:
  ModelParams params_;
  std::shared_ptr<const stats::ZipfSampler> global_;
};

/// Shared helper: fetch-at-most-once rejection sampling with a bounded retry
/// loop. After `max_retries` hits on already-fetched apps it falls back to a
/// uniform draw over the not-yet-fetched set, guaranteeing termination even
/// for pathological (tiny-A, huge-d) parameterizations. Exposed for tests.
struct FetchedSet {
  std::vector<std::uint32_t> fetched;  ///< in fetch order (small: d entries)

  [[nodiscard]] bool contains(std::uint32_t app) const noexcept {
    for (const auto f : fetched) {
      if (f == app) return true;
    }
    return false;
  }
  void insert(std::uint32_t app) { fetched.push_back(app); }
  [[nodiscard]] std::size_t size() const noexcept { return fetched.size(); }
};

/// Draws from `sample(rng)` until the result is not in `fetched`; falls back
/// to uniform-over-complement after `max_retries` rejections. `universe` is
/// the number of candidate apps the sampler can produce.
template <typename SampleFn, typename MapFn>
[[nodiscard]] std::uint32_t draw_unfetched(util::Rng& rng, const FetchedSet& fetched,
                                           std::uint32_t universe, SampleFn&& sample,
                                           MapFn&& map_index, int max_retries = 64) {
  for (int attempt = 0; attempt < max_retries; ++attempt) {
    const std::uint32_t app = map_index(sample(rng));
    if (!fetched.contains(app)) return app;
  }
  // Fallback: uniformly choose among the remaining apps by skip-counting.
  // Counts fetched apps within this sampler's universe to size the complement.
  std::uint32_t fetched_in_universe = 0;
  for (std::uint32_t offset = 0; offset < universe; ++offset) {
    if (fetched.contains(map_index(offset))) ++fetched_in_universe;
  }
  const std::uint32_t remaining = universe - fetched_in_universe;
  std::uint32_t target = static_cast<std::uint32_t>(rng.below(remaining));
  for (std::uint32_t offset = 0; offset < universe; ++offset) {
    const std::uint32_t app = map_index(offset);
    if (fetched.contains(app)) continue;
    if (target == 0) return app;
    --target;
  }
  return map_index(universe - 1);  // unreachable if remaining > 0
}

}  // namespace appstore::models
