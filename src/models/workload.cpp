#include "models/workload.hpp"

#include <algorithm>
#include <functional>

namespace appstore::models {

std::vector<double> Workload::by_rank() const {
  std::vector<double> sorted(downloads.begin(), downloads.end());
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  return sorted;
}

}  // namespace appstore::models
