#include "models/workload.hpp"

#include <algorithm>
#include <functional>

namespace appstore::models {

std::vector<double> Workload::by_rank() const {
  std::vector<double> sorted(downloads.begin(), downloads.end());
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  return sorted;
}

std::vector<std::vector<std::uint32_t>> Workload::user_sequences() const {
  std::vector<std::vector<std::uint32_t>> out(sequences.indexed()
                                                  ? sequences.user_count()
                                                  : 0);
  if (!sequences.indexed()) {
    // Un-indexed log (or none recorded): size by the largest user id seen.
    std::uint32_t users = 0;
    for (const auto user : sequences.user()) users = std::max(users, user + 1);
    out.resize(users);
  }
  const auto users = sequences.user();
  const auto apps = sequences.app();
  for (std::size_t i = 0; i < sequences.size(); ++i) {
    out[users[i]].push_back(apps[i]);
  }
  return out;
}

}  // namespace appstore::models
