// APP-CLUSTERING: the paper's model of appstore downloads (§5.1).
//
// Per-user behaviour (Table 2 / algorithm of §5.1):
//   1. The first download is drawn from the global Zipf ZG (exponent zr).
//   2. Each subsequent download:
//      2.1 with probability p comes from the cluster of a previously
//          downloaded app — the anchor download is picked uniformly among
//          the user's previous downloads, and the app within that cluster
//          is drawn from the per-cluster Zipf Zc (exponent zc), rejecting
//          already-fetched apps;
//      2.2 with probability 1-p comes from ZG, again fetch-at-most-once.
//
// Combined with fetch-at-most-once this reproduces both truncations of
// Fig. 3: the head flattens at ~U downloads, and the tail collapses because
// most draws recirculate inside already-visited clusters.
#pragma once

#include <map>
#include <memory>

#include "models/model.hpp"
#include "models/params.hpp"
#include "stats/zipf.hpp"

namespace appstore::models {

/// Thread-safe for shared use: every per-size Zc sampler is built eagerly in
/// the constructor (a layout has few distinct sizes — round-robin has at most
/// two), so the model is immutable after construction and concurrent sessions
/// of the SAME instance need no synchronization. Sessions themselves stay
/// single-user/single-thread.
class AppClusteringModel final : public DownloadModel {
 public:
  /// `layout.app_count()` must equal `params.app_count`. `params.cluster_count`
  /// is overwritten by the layout's cluster count.
  AppClusteringModel(ModelParams params, ClusterLayout layout);

  [[nodiscard]] std::string_view name() const noexcept override { return "APP-CLUSTERING"; }
  [[nodiscard]] ModelKind kind() const noexcept override { return ModelKind::kAppClustering; }
  [[nodiscard]] const ModelParams& params() const noexcept override { return params_; }
  [[nodiscard]] const ClusterLayout& layout() const noexcept { return layout_; }

  [[nodiscard]] std::unique_ptr<Session> new_session() const override;

  /// Eq. 5: D(i,j) = U * [1 - (1-PG(i))^{(1-p)d} * (1-Pc(j))^{p*d}], where
  /// PG is the ZG pmf at global rank i and Pc the Zc pmf at within-cluster
  /// rank j over the app's actual cluster size.
  [[nodiscard]] std::vector<double> expected_downloads() const override;

  /// Global ZG sampler (shared by sessions).
  [[nodiscard]] const stats::ZipfSampler& global_sampler() const noexcept { return *global_; }

  /// Per-cluster Zc sampler for a cluster size occurring in the layout
  /// (shared by size; built eagerly at construction). Throws
  /// std::invalid_argument for a size no cluster has.
  [[nodiscard]] const stats::ZipfSampler& sampler_for_size(std::uint32_t size) const;

 private:
  ModelParams params_;
  ClusterLayout layout_;
  std::shared_ptr<const stats::ZipfSampler> global_;
  std::map<std::uint32_t, std::unique_ptr<const stats::ZipfSampler>> by_size_;
};

}  // namespace appstore::models
