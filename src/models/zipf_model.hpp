// Pure ZIPF model (§5.2): every download is an independent draw from the
// global Zipf distribution ZG; repeats are allowed.
#pragma once

#include <memory>

#include "models/model.hpp"
#include "stats/zipf.hpp"

namespace appstore::models {

class ZipfModel final : public DownloadModel {
 public:
  explicit ZipfModel(ModelParams params);

  [[nodiscard]] std::string_view name() const noexcept override { return "ZIPF"; }
  [[nodiscard]] ModelKind kind() const noexcept override { return ModelKind::kZipf; }
  [[nodiscard]] const ModelParams& params() const noexcept override { return params_; }
  [[nodiscard]] std::unique_ptr<Session> new_session() const override;

  /// E[D(i)] = U * d * pG(i): independent draws, no saturation.
  [[nodiscard]] std::vector<double> expected_downloads() const override;

  /// Direct aggregate generation without per-user bookkeeping; identical in
  /// distribution to DownloadModel::generate but ~3x faster. Used by the
  /// fitting sweeps where sequences are never needed.
  [[nodiscard]] Workload generate(util::Rng& rng, bool record_sequences = false) const override;

 private:
  friend class ZipfSession;
  ModelParams params_;
  std::shared_ptr<const stats::ZipfSampler> global_;
};

}  // namespace appstore::models
