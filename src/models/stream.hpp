// Global interleaved request streams.
//
// The cache study (§7 / Fig. 19) needs downloads in *arrival order* across
// all users, not per-user batches: LRU behaviour depends on how one user's
// category-local bursts interleave with everyone else's. We realize the
// arrival order by building the multiset of download slots (user u appears
// once per download it will make), shuffling it, and replaying it against
// per-user download sequences. Per-user history dependence (fetch-at-
// most-once, cluster affinity) is preserved; arrival order is exchangeable
// across users.
//
// Parallel + deterministic: each user's sequence is generated from its own
// derived RNG (util::rng::derive(base, user)), users are sharded statically
// across threads, and the slot multiset is shuffled by the caller's RNG.
// The output is therefore bit-identical for a fixed (rng state, seed) at
// EVERY thread count — threads only change which CPU generates a user.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "events/event_log.hpp"
#include "models/model.hpp"
#include "obs/registry.hpp"
#include "util/rng.hpp"

namespace appstore::models {

struct Request {
  std::uint32_t user;
  std::uint32_t app;
};

/// Options for generate_stream (the Options-struct API).
struct StreamOptions {
  /// Caps the total request count (the Fig. 19 setup fixes 2M downloads
  /// over 600k users rather than an exact per-user d).
  std::uint64_t max_requests = UINT64_MAX;
  /// Optional metrics sink: records model_draws_total{<model name>},
  /// model_generate_seconds{<name>} and the model_draws_per_second{<name>}
  /// gauge for each generation run (plus the par_* families when the
  /// generation runs sharded).
  obs::Registry* metrics = nullptr;
  /// Worker threads for per-user sequence generation; 0 = hardware
  /// concurrency. The stream content does not depend on this value.
  std::size_t threads = 0;
  /// Optional shard filter: when set, only rows whose user passes the filter
  /// are emitted (generate_stream_slice). The RNG draws consumed from the
  /// caller's rng (master seed + slot shuffle) and every per-user derived
  /// stream are IDENTICAL with and without a filter, so the union of
  /// disjoint slices is bit-identical to the unfiltered stream. Requires
  /// models whose sessions never exhaust before the realized count (true
  /// for kZipf and kAppClustering); the slice path throws if violated.
  std::function<bool(std::uint32_t)> user_filter{};
};

/// A shard's slice of the global interleaved stream (see
/// StreamOptions::user_filter).
struct StreamSlice {
  /// (user, app) rows of the filtered users, in union arrival order.
  events::EventLog log;
  /// Per-row arrival index in the UNION stream (empty when no filter was
  /// set — the row position is the arrival index then). Lets shards assign
  /// arrival-derived attributes (e.g. calendar days) exactly as the union
  /// run would.
  std::vector<std::uint64_t> arrival;
  /// Total row count of the union stream across all shards.
  std::uint64_t union_rows = 0;
};

/// Generates the (possibly user-filtered) stream slice. With no filter this
/// is generate_stream_log plus arrival bookkeeping elided.
[[nodiscard]] StreamSlice generate_stream_slice(const DownloadModel& model, util::Rng& rng,
                                                const StreamOptions& options = {});

/// Generates the full interleaved stream for `model` as a columnar
/// (user, app) EventLog in arrival order (Columns::kNone — the append
/// position IS the arrival order). This is the primary form: the cache
/// layer simulates directly over the app column without materializing
/// Request structs. The number of requests is the sum of per-user realized
/// download counts (≈ U * d).
[[nodiscard]] events::EventLog generate_stream_log(const DownloadModel& model, util::Rng& rng,
                                                   const StreamOptions& options = {});

/// Generates the full interleaved stream for `model`. The number of requests
/// is the sum of per-user realized download counts (≈ U * d).
[[nodiscard]] std::vector<Request> generate_stream(const DownloadModel& model, util::Rng& rng,
                                                   const StreamOptions& options);

[[nodiscard]] std::vector<Request> generate_stream(const DownloadModel& model, util::Rng& rng);

/// Deprecated positional form; forwards to the StreamOptions overload.
[[nodiscard]] std::vector<Request> generate_stream(const DownloadModel& model, util::Rng& rng,
                                                   std::uint64_t max_requests);

}  // namespace appstore::models
