#include "models/model.hpp"

#include <cmath>
#include <stdexcept>

#include "models/app_clustering_model.hpp"
#include "models/zipf_amo_model.hpp"
#include "models/zipf_model.hpp"

namespace appstore::models {

Workload DownloadModel::generate(util::Rng& rng, bool record_sequences) const {
  const ModelParams& p = params();
  Workload workload;
  workload.downloads.assign(p.app_count, 0);

  for (std::uint64_t user = 0; user < p.user_count; ++user) {
    const auto session = new_session();
    const std::uint64_t count = realized_downloads(p.downloads_per_user, p.app_count, rng);
    for (std::uint64_t k = 0; k < count && !session->exhausted(); ++k) {
      const std::uint32_t app = session->next(rng);
      ++workload.downloads[app];
      if (record_sequences) {
        workload.sequences.append(static_cast<std::uint32_t>(user), app);
      }
    }
  }
  if (record_sequences) {
    workload.sequences.build_index(static_cast<std::uint32_t>(p.user_count));
  }
  return workload;
}

std::uint64_t DownloadModel::realized_downloads(double d, std::uint64_t cap,
                                                util::Rng& rng) noexcept {
  if (d <= 0.0) return 0;
  const double whole = std::floor(d);
  auto count = static_cast<std::uint64_t>(whole);
  if (rng.uniform() < d - whole) ++count;
  return std::min(count, cap);
}

std::span<const ModelKind> all_model_kinds() noexcept {
  static constexpr ModelKind kKinds[] = {ModelKind::kZipf, ModelKind::kZipfAtMostOnce,
                                         ModelKind::kAppClustering};
  return kKinds;
}

std::string_view to_string(ModelKind kind) noexcept {
  switch (kind) {
    case ModelKind::kZipf: return "ZIPF";
    case ModelKind::kZipfAtMostOnce: return "ZIPF-at-most-once";
    case ModelKind::kAppClustering: return "APP-CLUSTERING";
  }
  return "?";
}

std::unique_ptr<DownloadModel> make_model(ModelKind kind, const ModelParams& params) {
  switch (kind) {
    case ModelKind::kZipf:
      return std::make_unique<ZipfModel>(params);
    case ModelKind::kZipfAtMostOnce:
      return std::make_unique<ZipfAtMostOnceModel>(params);
    case ModelKind::kAppClustering:
      return std::make_unique<AppClusteringModel>(
          params, ClusterLayout::round_robin(params.app_count, params.cluster_count));
  }
  throw std::invalid_argument("make_model: unknown kind");
}

}  // namespace appstore::models
