#include "models/zipf_model.hpp"

#include <stdexcept>

namespace appstore::models {

namespace {

class ZipfSession final : public Session {
 public:
  explicit ZipfSession(std::shared_ptr<const stats::ZipfSampler> global)
      : global_(std::move(global)) {}

  [[nodiscard]] std::uint32_t next(util::Rng& rng) override {
    return static_cast<std::uint32_t>(global_->sample_index(rng));
  }

  [[nodiscard]] bool exhausted() const noexcept override { return false; }

 private:
  std::shared_ptr<const stats::ZipfSampler> global_;
};

}  // namespace

ZipfModel::ZipfModel(ModelParams params) : params_(params) {
  if (params_.app_count == 0) throw std::invalid_argument("ZipfModel: no apps");
  global_ = std::make_shared<const stats::ZipfSampler>(params_.app_count, params_.zr);
}

std::unique_ptr<Session> ZipfModel::new_session() const {
  return std::make_unique<ZipfSession>(global_);
}

std::vector<double> ZipfModel::expected_downloads() const {
  const stats::FiniteZipf zipf(params_.app_count, params_.zr);
  return zipf.expected_counts(params_.total_downloads());
}

Workload ZipfModel::generate(util::Rng& rng, bool record_sequences) const {
  if (record_sequences) return DownloadModel::generate(rng, true);
  Workload workload;
  workload.downloads.assign(params_.app_count, 0);
  // Sum of per-user realized counts == realizing each user separately.
  std::uint64_t total = 0;
  for (std::uint64_t user = 0; user < params_.user_count; ++user) {
    total += realized_downloads(params_.downloads_per_user, params_.app_count, rng);
  }
  for (std::uint64_t k = 0; k < total; ++k) {
    ++workload.downloads[global_->sample_index(rng)];
  }
  return workload;
}

}  // namespace appstore::models
