// DownloadModel: the common interface of the three §5 generators.
//
// Two usage modes:
//   * generate(rng): simulate every user to completion and return the
//     aggregate Workload (Figs. 8–10).
//   * new_session(): an incremental per-user generator that yields one app
//     per call — the cache simulation (Fig. 19) interleaves sessions of many
//     users into one request stream.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>

#include "models/params.hpp"
#include "models/workload.hpp"
#include "util/rng.hpp"

namespace appstore::models {

/// Incremental per-user download generator. Sessions are single-user and not
/// thread-safe; they hold the user's fetch-at-most-once history.
class Session {
 public:
  virtual ~Session() = default;

  /// Draws the user's next download (0-based app index).
  /// Precondition: exhausted() is false.
  [[nodiscard]] virtual std::uint32_t next(util::Rng& rng) = 0;

  /// True when the user cannot download anything new (all apps fetched).
  [[nodiscard]] virtual bool exhausted() const noexcept = 0;
};

enum class ModelKind : std::uint8_t { kZipf, kZipfAtMostOnce, kAppClustering };

class DownloadModel {
 public:
  virtual ~DownloadModel() = default;

  /// Display/metric-label name ("ZIPF", "ZIPF-at-most-once", "APP-CLUSTERING");
  /// always equal to to_string(kind()), so callers can label series without
  /// per-type switch statements.
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
  [[nodiscard]] virtual ModelKind kind() const noexcept = 0;
  [[nodiscard]] virtual const ModelParams& params() const noexcept = 0;

  /// Simulates all users; records per-user sequences when requested.
  [[nodiscard]] virtual Workload generate(util::Rng& rng, bool record_sequences = false) const;

  /// Creates a fresh user session.
  [[nodiscard]] virtual std::unique_ptr<Session> new_session() const = 0;

  /// Analytic expected downloads per app index, if the model has a closed
  /// form (all three do). Index a = global rank a+1.
  [[nodiscard]] virtual std::vector<double> expected_downloads() const = 0;

  /// Realizes the per-user download count: floor(d) plus a Bernoulli draw on
  /// the fractional part, capped by `cap` (fetch-at-most-once saturation).
  /// Public because stream generation realizes slots before creating sessions.
  [[nodiscard]] static std::uint64_t realized_downloads(double d, std::uint64_t cap,
                                                        util::Rng& rng) noexcept;
};

/// Uniform alias: every §5 generator is reachable through this interface
/// (make_model + kind()/name()), so benches and metric families never need
/// per-type switch statements.
using Model = DownloadModel;

[[nodiscard]] std::string_view to_string(ModelKind kind) noexcept;

/// All three §5 model kinds, in paper order — for benches that sweep every
/// model uniformly.
[[nodiscard]] std::span<const ModelKind> all_model_kinds() noexcept;

/// Factory. APP-CLUSTERING uses a round-robin layout built from
/// params.cluster_count; the dedicated constructor accepts custom layouts.
[[nodiscard]] std::unique_ptr<DownloadModel> make_model(ModelKind kind,
                                                        const ModelParams& params);

}  // namespace appstore::models
