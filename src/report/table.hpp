// ASCII table rendering for bench output.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace appstore::report {

/// Column-aligned text table. Usage:
///   Table t({"store", "apps", "downloads"});
///   t.row({"Anzhi", "60196", "2816 M"});
///   std::fputs(t.render().c_str(), stdout);
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void row(std::vector<std::string> cells);

  /// Renders with a header underline; numeric-looking cells right-align.
  [[nodiscard]] std::string render() const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` decimals (helper for bench rows).
[[nodiscard]] std::string fixed(double value, int digits = 2);

/// Formats a percentage with 1 decimal: 0.905 -> "90.5%".
[[nodiscard]] std::string percent(double fraction, int digits = 1);

}  // namespace appstore::report
