#include "report/series.hpp"

#include <algorithm>

#include "util/csv.hpp"

namespace appstore::report {

std::filesystem::path write_csv(const Series& series, const std::filesystem::path& directory) {
  std::string file_name = series.name;
  std::replace(file_name.begin(), file_name.end(), '/', '-');
  std::replace(file_name.begin(), file_name.end(), ' ', '_');
  const std::filesystem::path path = directory / (file_name + ".csv");

  util::CsvWriter writer(path);
  std::vector<std::string> header(series.columns.begin(), series.columns.end());
  writer.write_row(header);
  for (const auto& row : series.rows) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (const double value : row) {
      char buffer[64];
      std::snprintf(buffer, sizeof buffer, "%.10g", value);
      cells.emplace_back(buffer);
    }
    writer.write_row(cells);
  }
  writer.flush();
  return path;
}

void export_all(const std::vector<Series>& series, const std::string& experiment,
                const std::filesystem::path& results_root) {
  const std::filesystem::path directory = results_root / experiment;
  for (const auto& one : series) (void)write_csv(one, directory);
}

}  // namespace appstore::report
