#include "report/table.hpp"

#include <algorithm>
#include <cctype>

#include "util/format.hpp"

namespace appstore::report {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

namespace {

[[nodiscard]] bool looks_numeric(const std::string& cell) {
  if (cell.empty()) return false;
  for (const char c : cell) {
    if (!std::isdigit(static_cast<unsigned char>(c)) && c != '.' && c != '-' && c != '+' &&
        c != '%' && c != ',' && c != 'e' && c != 'E' && c != ' ' && c != 'K' && c != 'M' &&
        c != 'B' && c != '$' && c != 'x') {
      return false;
    }
  }
  return true;
}

}  // namespace

std::string Table::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::string out;
  const auto emit_row = [&](const std::vector<std::string>& cells, bool align_numeric) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) out += "  ";
      const std::size_t pad = widths[c] - cells[c].size();
      if (align_numeric && looks_numeric(cells[c])) {
        out.append(pad, ' ');
        out += cells[c];
      } else {
        out += cells[c];
        out.append(pad, ' ');
      }
    }
    // Trim trailing spaces.
    while (!out.empty() && out.back() == ' ') out.pop_back();
    out.push_back('\n');
  };

  emit_row(header_, false);
  std::size_t total_width = header_.size() >= 1 ? 2 * (header_.size() - 1) : 0;
  for (const auto w : widths) total_width += w;
  out.append(total_width, '-');
  out.push_back('\n');
  for (const auto& row : rows_) emit_row(row, true);
  return out;
}

std::string fixed(double value, int digits) {
  return util::format(util::format("{{:.{}f}}", digits), value);
}

std::string percent(double fraction, int digits) {
  return fixed(100.0 * fraction, digits) + "%";
}

}  // namespace appstore::report
