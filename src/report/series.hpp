// Named data series with CSV export.
//
// Every bench prints the figure's series to stdout AND writes them under
// results/<experiment>/<series>.csv so plots can be regenerated without
// rerunning the binary.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

namespace appstore::report {

struct Series {
  std::string name;
  std::vector<std::string> columns;           ///< column names
  std::vector<std::vector<double>> rows;      ///< one vector per row

  void add(std::vector<double> row) { rows.push_back(std::move(row)); }
};

/// Writes one series to `directory/name.csv` (slashes in the name become
/// dashes). Creates directories as needed; returns the written path.
std::filesystem::path write_csv(const Series& series, const std::filesystem::path& directory);

/// Convenience: writes all series under results_root/experiment/.
void export_all(const std::vector<Series>& series, const std::string& experiment,
                const std::filesystem::path& results_root = "results");

}  // namespace appstore::report
