// Low-level versioned-header + raw-column binary file helpers.
//
// Shared by the EventLog binary format (events/io.hpp) and the crawl
// database fast path (crawler/db_io.hpp). A file is:
//
//   4-byte magic | u32 endian tag (0x01020304) | u32 version | u32 flags |
//   u64 row count | raw columns, each `count * sizeof(T)` bytes
//
// Columns are written in the writer's native byte order; the endian tag lets
// a reader on a different-endian host fail loudly instead of decoding
// garbage. All fixed-width header fields are also native-order (covered by
// the same tag).
#pragma once

#include <cstdint>
#include <cstring>
#include <fstream>
#include <span>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

namespace appstore::events::binary {

inline constexpr std::uint32_t kEndianTag = 0x01020304;

struct Header {
  std::uint32_t version = 0;
  std::uint32_t flags = 0;
  std::uint64_t count = 0;
};

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.write(reinterpret_cast<const char*>(&value), sizeof value);
}

template <typename T>
[[nodiscard]] T read_pod(std::istream& in, const char* what) {
  static_assert(std::is_trivially_copyable_v<T>);
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof value);
  if (!in) throw std::runtime_error(std::string("binary read: truncated ") + what);
  return value;
}

/// Writes the common header. `magic` must be exactly 4 characters.
inline void write_header(std::ostream& out, std::string_view magic, std::uint32_t version,
                         std::uint32_t flags, std::uint64_t count) {
  if (magic.size() != 4) throw std::logic_error("binary write: magic must be 4 bytes");
  out.write(magic.data(), 4);
  write_pod(out, kEndianTag);
  write_pod(out, version);
  write_pod(out, flags);
  write_pod(out, count);
}

/// Reads and validates the header; throws std::runtime_error on a magic,
/// endianness, or version mismatch.
[[nodiscard]] inline Header read_header(std::istream& in, std::string_view magic,
                                        std::uint32_t max_version) {
  char got[4] = {};
  in.read(got, 4);
  if (!in || std::memcmp(got, magic.data(), 4) != 0) {
    throw std::runtime_error(std::string("binary read: bad magic, expected '") +
                             std::string(magic) + "'");
  }
  if (read_pod<std::uint32_t>(in, "endian tag") != kEndianTag) {
    throw std::runtime_error("binary read: endianness mismatch");
  }
  Header header;
  header.version = read_pod<std::uint32_t>(in, "version");
  if (header.version == 0 || header.version > max_version) {
    throw std::runtime_error("binary read: unsupported version " +
                             std::to_string(header.version));
  }
  header.flags = read_pod<std::uint32_t>(in, "flags");
  header.count = read_pod<std::uint64_t>(in, "count");
  return header;
}

template <typename T>
void write_column(std::ostream& out, std::span<const T> column) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.write(reinterpret_cast<const char*>(column.data()),
            static_cast<std::streamsize>(column.size() * sizeof(T)));
}

template <typename T>
[[nodiscard]] std::vector<T> read_column(std::istream& in, std::uint64_t count,
                                         const char* what) {
  static_assert(std::is_trivially_copyable_v<T>);
  std::vector<T> column(static_cast<std::size_t>(count));
  in.read(reinterpret_cast<char*>(column.data()),
          static_cast<std::streamsize>(column.size() * sizeof(T)));
  if (!in) throw std::runtime_error(std::string("binary read: truncated column ") + what);
  return column;
}

}  // namespace appstore::events::binary
