// Low-level versioned-header + raw-column binary file helpers.
//
// Shared by the EventLog binary format (events/io.hpp) and the crawl
// database fast path (crawler/db_io.hpp). A file is:
//
//   4-byte magic | u32 endian tag (0x01020304) | u32 version | u32 flags |
//   u64 row count | raw columns, each `count * sizeof(T)` bytes
//
// Columns are written in the writer's native byte order; the endian tag lets
// a reader on a different-endian host fail loudly instead of decoding
// garbage. All fixed-width header fields are also native-order (covered by
// the same tag).
//
// Robustness contract (docs/robustness.md): every malformed input — wrong
// magic, foreign endianness, unsupported version, unknown flag bits, a row
// count that disagrees with the file size, truncation anywhere — surfaces as
// a typed LoadError. A corrupted count can never trigger a huge allocation
// or a silently short column: loaders validate the payload size against the
// actual file before allocating (expect_payload).
#pragma once

#include <cstdint>
#include <cstring>
#include <fstream>
#include <limits>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace appstore::events::binary {

inline constexpr std::uint32_t kEndianTag = 0x01020304;

/// What exactly a loader rejected (mirrors the header fields + payload).
enum class LoadErrorKind : std::uint8_t {
  kOpen = 0,         ///< file missing or unreadable
  kBadMagic,         ///< first 4 bytes are not the expected magic
  kEndianness,       ///< written on a different-endian host
  kBadVersion,       ///< version 0 or newer than this reader
  kBadFlags,         ///< flag bits this reader does not know
  kTruncated,        ///< EOF inside a header field or column
  kLengthMismatch,   ///< row count disagrees with the file size
  kUserRange,        ///< a user column value is outside the caller's bound
  kBadSegment,       ///< a segment header disagrees with the file header
  kAppRange,         ///< an app column value is outside the caller's bound
  kDayRange,         ///< a day column value is outside the caller's bound
  kBadChecksum,      ///< a record checksum does not match its payload
  kBadSequence,      ///< a sequence number is not the expected successor
};

[[nodiscard]] inline std::string_view to_string(LoadErrorKind kind) noexcept {
  switch (kind) {
    case LoadErrorKind::kOpen: return "open";
    case LoadErrorKind::kBadMagic: return "bad-magic";
    case LoadErrorKind::kEndianness: return "endianness";
    case LoadErrorKind::kBadVersion: return "bad-version";
    case LoadErrorKind::kBadFlags: return "bad-flags";
    case LoadErrorKind::kTruncated: return "truncated";
    case LoadErrorKind::kLengthMismatch: return "length-mismatch";
    case LoadErrorKind::kUserRange: return "user-range";
    case LoadErrorKind::kBadSegment: return "bad-segment";
    case LoadErrorKind::kAppRange: return "app-range";
    case LoadErrorKind::kDayRange: return "day-range";
    case LoadErrorKind::kBadChecksum: return "bad-checksum";
    case LoadErrorKind::kBadSequence: return "bad-sequence";
  }
  return "unknown";
}

/// Typed load failure: every structural defect a binary loader detects.
/// Derives from std::runtime_error so pre-existing catch sites keep working.
class LoadError : public std::runtime_error {
 public:
  LoadError(LoadErrorKind kind, const std::string& message)
      : std::runtime_error(message), kind_(kind) {}

  [[nodiscard]] LoadErrorKind kind() const noexcept { return kind_; }

 private:
  LoadErrorKind kind_;
};

struct Header {
  std::uint32_t version = 0;
  std::uint32_t flags = 0;
  std::uint64_t count = 0;
};

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.write(reinterpret_cast<const char*>(&value), sizeof value);
}

template <typename T>
[[nodiscard]] T read_pod(std::istream& in, const char* what) {
  static_assert(std::is_trivially_copyable_v<T>);
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof value);
  if (!in) {
    throw LoadError(LoadErrorKind::kTruncated,
                    std::string("binary read: truncated ") + what);
  }
  return value;
}

/// Writes the common header. `magic` must be exactly 4 characters.
inline void write_header(std::ostream& out, std::string_view magic, std::uint32_t version,
                         std::uint32_t flags, std::uint64_t count) {
  if (magic.size() != 4) throw std::logic_error("binary write: magic must be 4 bytes");
  out.write(magic.data(), 4);
  write_pod(out, kEndianTag);
  write_pod(out, version);
  write_pod(out, flags);
  write_pod(out, count);
}

/// Reads and validates the header; throws LoadError on a magic, endianness,
/// or version mismatch (flag validation is the caller's: only it knows the
/// format's legal mask).
[[nodiscard]] inline Header read_header(std::istream& in, std::string_view magic,
                                        std::uint32_t max_version) {
  char got[4] = {};
  in.read(got, 4);
  if (!in || std::memcmp(got, magic.data(), 4) != 0) {
    throw LoadError(LoadErrorKind::kBadMagic,
                    std::string("binary read: bad magic, expected '") + std::string(magic) +
                        "'");
  }
  if (read_pod<std::uint32_t>(in, "endian tag") != kEndianTag) {
    throw LoadError(LoadErrorKind::kEndianness, "binary read: endianness mismatch");
  }
  Header header;
  header.version = read_pod<std::uint32_t>(in, "version");
  if (header.version == 0 || header.version > max_version) {
    throw LoadError(LoadErrorKind::kBadVersion,
                    "binary read: unsupported version " + std::to_string(header.version));
  }
  header.flags = read_pod<std::uint32_t>(in, "flags");
  header.count = read_pod<std::uint64_t>(in, "count");
  return header;
}

/// Validates that exactly `count * bytes_per_row` payload bytes follow the
/// current stream position — before any column is allocated, so a corrupted
/// count turns into a typed error instead of a giant allocation (or a torn
/// file into a short read). Also rejects trailing garbage.
inline void expect_payload(std::istream& in, std::uint64_t count,
                           std::uint64_t bytes_per_row, const char* what) {
  if (bytes_per_row != 0 &&
      count > std::numeric_limits<std::uint64_t>::max() / bytes_per_row) {
    throw LoadError(LoadErrorKind::kLengthMismatch,
                    std::string("binary read: absurd row count in ") + what);
  }
  const std::uint64_t expected = count * bytes_per_row;
  const auto position = in.tellg();
  in.seekg(0, std::ios::end);
  const auto end = in.tellg();
  in.seekg(position);
  if (position < 0 || end < position ||
      static_cast<std::uint64_t>(end - position) != expected) {
    throw LoadError(
        LoadErrorKind::kLengthMismatch,
        std::string("binary read: payload size mismatch in ") + what + " (expected " +
            std::to_string(expected) + " bytes, have " +
            std::to_string(end < position ? 0 : static_cast<std::uint64_t>(end - position)) +
            ")");
  }
}

template <typename T>
void write_column(std::ostream& out, std::span<const T> column) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.write(reinterpret_cast<const char*>(column.data()),
            static_cast<std::streamsize>(column.size() * sizeof(T)));
}

/// Validates that every value of a freshly-loaded user column is below
/// `user_bound` (exclusive). A file whose payload decoded fine can still
/// carry user ids beyond what the caller will index (a corrupted byte in the
/// user column, or a file from a bigger deployment); without this check the
/// defect only surfaces later, as an untyped build_index/append failure.
inline void check_user_bound(std::span<const std::uint32_t> users, std::uint64_t user_bound,
                             const char* what) {
  for (const std::uint32_t user : users) {
    if (user >= user_bound) {
      throw LoadError(LoadErrorKind::kUserRange,
                      std::string("binary read: user ") + std::to_string(user) +
                          " >= bound " + std::to_string(user_bound) + " in " + what);
    }
  }
}

/// Like check_user_bound, but for the app column: every id must be below
/// `app_bound` (exclusive). Used by the AEVL/ALSG/AOBS loaders when the
/// caller knows the app universe (a store's app count).
inline void check_app_bound(std::span<const std::uint32_t> apps, std::uint64_t app_bound,
                            const char* what) {
  for (const std::uint32_t app : apps) {
    if (app >= app_bound) {
      throw LoadError(LoadErrorKind::kAppRange,
                      std::string("binary read: app ") + std::to_string(app) + " >= bound " +
                          std::to_string(app_bound) + " in " + what);
    }
  }
}

/// Day columns are signed and the domain uses small negatives (events dated
/// relative to a crawl origin, e.g. first_seen before day 0), so the bound
/// is a magnitude window: a valid file carries only days in
/// [-day_bound, day_bound). A wildly out-of-window day — flipped high bits —
/// would otherwise surface as an untyped out-of-range crash in a snapshot
/// or replay.
inline void check_day_bound(std::span<const std::int32_t> days, std::int64_t day_bound,
                            const char* what) {
  for (const std::int32_t day : days) {
    const auto wide = static_cast<std::int64_t>(day);
    if (wide < -day_bound || wide >= day_bound) {
      throw LoadError(LoadErrorKind::kDayRange,
                      std::string("binary read: day ") + std::to_string(day) +
                          " outside [-" + std::to_string(day_bound) + ", " +
                          std::to_string(day_bound) + ") in " + what);
    }
  }
}

/// FNV-1a 64-bit over a byte range. Used as the per-record checksum in the
/// WAL (events/wal.hpp) and the manifest: cheap, dependency-free, and good
/// enough to distinguish a torn tail from a committed record — the WAL
/// threat model is a crash mid-write, not an adversary.
[[nodiscard]] inline std::uint64_t fnv1a64(const void* data, std::size_t size) noexcept {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ull;
  }
  return hash;
}

template <typename T>
[[nodiscard]] std::vector<T> read_column(std::istream& in, std::uint64_t count,
                                         const char* what) {
  static_assert(std::is_trivially_copyable_v<T>);
  std::vector<T> column(static_cast<std::size_t>(count));
  in.read(reinterpret_cast<char*>(column.data()),
          static_cast<std::streamsize>(column.size() * sizeof(T)));
  if (!in) {
    throw LoadError(LoadErrorKind::kTruncated,
                    std::string("binary read: truncated column ") + what);
  }
  return column;
}

}  // namespace appstore::events::binary
