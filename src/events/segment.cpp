#include "events/segment.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include <cerrno>
#include <stdexcept>
#include <system_error>

#include "util/format.hpp"

namespace appstore::events {

namespace {

constexpr std::uint64_t kPageSize = 4096;

[[nodiscard]] constexpr std::uint64_t page_align(std::uint64_t bytes) noexcept {
  return (bytes + kPageSize - 1) & ~(kPageSize - 1);
}

[[nodiscard]] std::system_error sys_error(const char* what) {
  return std::system_error(errno, std::generic_category(), what);
}

}  // namespace

ColumnArena::ColumnArena(Columns columns, std::uint64_t max_rows, std::uint64_t segment_rows,
                         const std::filesystem::path& backing_file, obs::Registry* metrics)
    : columns_(columns), max_rows_(max_rows), segment_rows_(segment_rows), metrics_(metrics) {
  if (segment_rows == 0 || (segment_rows & (segment_rows - 1)) != 0) {
    throw std::invalid_argument(
        util::format("ColumnArena: segment_rows {} is not a power of two", segment_rows));
  }
  if (max_rows == 0 || max_rows % segment_rows != 0) {
    throw std::invalid_argument(util::format(
        "ColumnArena: max_rows {} is not a multiple of segment_rows {}", max_rows,
        segment_rows));
  }

  // One page-aligned region per enabled column, laid out back to back inside
  // a single reservation. Offsets are fixed at construction; the bases never
  // move, which is what keeps reader spans valid across segment commits.
  struct Layout {
    bool enabled;
    std::uint64_t elem_size;
    std::uint64_t offset = 0;
  };
  Layout layouts[5] = {
      {true, sizeof(std::uint32_t)},                              // user
      {true, sizeof(std::uint32_t)},                              // app
      {has_column(columns, Columns::kDay), sizeof(std::int32_t)},     // day
      {has_column(columns, Columns::kOrdinal), sizeof(std::uint32_t)},  // ordinal
      {has_column(columns, Columns::kRating), sizeof(std::uint8_t)},   // rating
  };
  std::uint64_t offset = 0;
  for (Layout& layout : layouts) {
    if (!layout.enabled) continue;
    layout.offset = offset;
    offset += page_align(max_rows * layout.elem_size);
    bytes_per_row_ += layout.elem_size;
  }
  total_bytes_ = offset;

  int flags = MAP_NORESERVE;
  if (backing_file.empty()) {
    flags |= MAP_PRIVATE | MAP_ANONYMOUS;
  } else {
    fd_ = ::open(backing_file.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
    if (fd_ < 0) throw sys_error("ColumnArena: open backing file");
    // Sparse file of the full capacity: blocks materialize only for pages
    // the store actually writes, so reserving 10M users costs nothing.
    if (::ftruncate(fd_, static_cast<off_t>(total_bytes_)) != 0) {
      const auto error = sys_error("ColumnArena: ftruncate backing file");
      ::close(fd_);
      throw error;
    }
    flags |= MAP_SHARED;
  }
  base_ = ::mmap(nullptr, static_cast<std::size_t>(total_bytes_), PROT_READ | PROT_WRITE,
                 flags, fd_, 0);
  if (base_ == MAP_FAILED) {
    const auto error = sys_error("ColumnArena: mmap");
    if (fd_ >= 0) ::close(fd_);
    base_ = nullptr;
    throw error;
  }

  auto* bytes = static_cast<std::byte*>(base_);
  user_ = reinterpret_cast<std::uint32_t*>(bytes + layouts[0].offset);
  app_ = reinterpret_cast<std::uint32_t*>(bytes + layouts[1].offset);
  if (layouts[2].enabled) day_ = reinterpret_cast<std::int32_t*>(bytes + layouts[2].offset);
  if (layouts[3].enabled) {
    ordinal_ = reinterpret_cast<std::uint32_t*>(bytes + layouts[3].offset);
  }
  if (layouts[4].enabled) rating_ = reinterpret_cast<std::uint8_t*>(bytes + layouts[4].offset);
}

ColumnArena::~ColumnArena() {
  if (base_ != nullptr) ::munmap(base_, static_cast<std::size_t>(total_bytes_));
  if (fd_ >= 0) ::close(fd_);
}

void ColumnArena::commit_rows(std::uint64_t row_end) {
  const std::uint64_t want = (row_end + segment_rows_ - 1) / segment_rows_;
  std::uint64_t have = segments_committed_.load(std::memory_order_acquire);
  while (have < want) {
    // CAS-max: whichever writer wins accounts the newly committed segments;
    // losers observe the higher count and retry or exit.
    if (segments_committed_.compare_exchange_weak(have, want, std::memory_order_acq_rel,
                                                  std::memory_order_acquire)) {
      if (metrics_ != nullptr) {
        metrics_->counter("live_segments_committed_total").inc(want - have);
      }
      return;
    }
  }
}

}  // namespace appstore::events
