#include "events/io.hpp"

#include <fstream>

#include "chaos/fault.hpp"
#include "events/binary.hpp"
#include "util/csv.hpp"
#include "util/format.hpp"
#include "util/fs.hpp"
#include "util/strings.hpp"

namespace appstore::events {

namespace {

constexpr std::string_view kMagic = "AEVL";
constexpr std::uint32_t kVersion = 1;
constexpr std::uint32_t kKnownColumns =
    static_cast<std::uint32_t>(Columns::kDay) | static_cast<std::uint32_t>(Columns::kOrdinal) |
    static_cast<std::uint32_t>(Columns::kRating);

/// Consults the write seam for `path`; on a kTornWrite decision flushes
/// whatever was already written (so the staging file is genuinely partial)
/// and throws, simulating a crash at this exact point.
void maybe_tear(std::ostream& out, chaos::FaultInjector* faults,
                const std::filesystem::path& path) {
  if (faults == nullptr) return;
  const chaos::Fault fault = faults->next(chaos::FaultSite::kFileWrite, path.string());
  if (fault.kind == chaos::FaultKind::kTornWrite) {
    out.flush();
    throw chaos::InjectedFault(fault.kind, "injected torn write for " + path.string());
  }
}

[[nodiscard]] std::uint64_t parse_field_u64(const std::string& text, const char* what) {
  std::uint64_t value = 0;
  if (!util::parse_u64(text, value)) {
    throw std::runtime_error(util::format("EventLog csv: bad {} '{}'", what, text));
  }
  return value;
}

[[nodiscard]] std::int64_t parse_field_i64(const std::string& text, const char* what) {
  if (!text.empty() && text[0] == '-') {
    return -static_cast<std::int64_t>(parse_field_u64(text.substr(1), what));
  }
  return static_cast<std::int64_t>(parse_field_u64(text, what));
}

}  // namespace

void save_binary(const EventLog& log, const std::filesystem::path& path,
                 const IoOptions& options) {
  util::AtomicFile staged(path);
  {
    std::ofstream out(staged.temp_path(), std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("save_binary: cannot open " + path.string());

    binary::write_header(out, kMagic, kVersion,
                         static_cast<std::uint32_t>(log.columns()), log.size());
    binary::write_column(out, log.user());
    binary::write_column(out, log.app());
    maybe_tear(out, options.faults, path);
    binary::write_column(out, log.day());
    binary::write_column(out, log.ordinal());
    binary::write_column(out, log.rating());
    out.flush();
    if (!out) throw std::runtime_error("save_binary: write failed for " + path.string());
  }
  staged.commit();
}

EventLog load_binary(const std::filesystem::path& path, const LoadLimits& limits) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw binary::LoadError(binary::LoadErrorKind::kOpen,
                            "load_binary: cannot open " + path.string());
  }

  const binary::Header header = binary::read_header(in, kMagic, kVersion);
  if ((header.flags & ~kKnownColumns) != 0) {
    throw binary::LoadError(binary::LoadErrorKind::kBadFlags,
                            util::format("load_binary: unknown column flags 0x{:x} in {}",
                                         header.flags, path.string()));
  }
  const auto columns = static_cast<Columns>(header.flags);
  const std::uint64_t n = header.count;

  std::uint64_t bytes_per_row = sizeof(std::uint32_t) * 2;  // user + app
  if (has_column(columns, Columns::kDay)) bytes_per_row += sizeof(std::int32_t);
  if (has_column(columns, Columns::kOrdinal)) bytes_per_row += sizeof(std::uint32_t);
  if (has_column(columns, Columns::kRating)) bytes_per_row += sizeof(std::uint8_t);
  binary::expect_payload(in, n, bytes_per_row, "AEVL");

  auto user = binary::read_column<std::uint32_t>(in, n, "user");
  binary::check_user_bound(user, limits.user_bound, path.string().c_str());
  auto app = binary::read_column<std::uint32_t>(in, n, "app");
  binary::check_app_bound(app, limits.app_bound, path.string().c_str());
  auto day = binary::read_column<std::int32_t>(
      in, has_column(columns, Columns::kDay) ? n : 0, "day");
  binary::check_day_bound(day, limits.day_bound, path.string().c_str());
  auto ordinal = binary::read_column<std::uint32_t>(
      in, has_column(columns, Columns::kOrdinal) ? n : 0, "ordinal");
  auto rating = binary::read_column<std::uint8_t>(
      in, has_column(columns, Columns::kRating) ? n : 0, "rating");
  return EventLog::from_columns(columns, std::move(user), std::move(app), std::move(day),
                                std::move(ordinal), std::move(rating));
}

void save_csv(const EventLog& log, const std::filesystem::path& path,
              const IoOptions& options) {
  util::AtomicFile staged(path);
  {
    util::CsvWriter out(staged.temp_path());
    std::vector<std::string> header = {"user", "app"};
    const bool with_day = has_column(log.columns(), Columns::kDay);
    const bool with_ordinal = has_column(log.columns(), Columns::kOrdinal);
    const bool with_rating = has_column(log.columns(), Columns::kRating);
    if (with_day) header.push_back("day");
    if (with_ordinal) header.push_back("ordinal");
    if (with_rating) header.push_back("rating");
    out.write_row(header);
    if (options.faults != nullptr) {
      const chaos::Fault fault =
          options.faults->next(chaos::FaultSite::kFileWrite, path.string());
      if (fault.kind == chaos::FaultKind::kTornWrite) {
        throw chaos::InjectedFault(fault.kind, "injected torn write for " + path.string());
      }
    }

    std::vector<std::string> cells;
    for (std::size_t i = 0; i < log.size(); ++i) {
      cells.clear();
      cells.push_back(std::to_string(log.user()[i]));
      cells.push_back(std::to_string(log.app()[i]));
      if (with_day) cells.push_back(std::to_string(log.day()[i]));
      if (with_ordinal) cells.push_back(std::to_string(log.ordinal()[i]));
      if (with_rating) cells.push_back(std::to_string(log.rating()[i]));
      out.write_row(cells);
    }
  }
  staged.commit();
}

EventLog load_csv(const std::filesystem::path& path) {
  if (!std::filesystem::exists(path)) {
    throw std::runtime_error("EventLog load_csv: missing " + path.string());
  }
  const util::CsvTable table = util::read_csv(path);
  const std::size_t user_col = table.column("user");
  const std::size_t app_col = table.column("app");
  const std::size_t day_col = table.column("day");
  const std::size_t ordinal_col = table.column("ordinal");
  const std::size_t rating_col = table.column("rating");
  constexpr auto npos = static_cast<std::size_t>(-1);
  if (user_col == npos || app_col == npos) {
    throw std::runtime_error("EventLog load_csv: missing user/app columns in " +
                             path.string());
  }

  Columns columns = Columns::kNone;
  if (day_col != npos) columns = columns | Columns::kDay;
  if (ordinal_col != npos) columns = columns | Columns::kOrdinal;
  if (rating_col != npos) columns = columns | Columns::kRating;

  EventLog log(columns);
  log.reserve(table.rows.size());
  for (const auto& row : table.rows) {
    const auto cell = [&row, &path](std::size_t col) -> const std::string& {
      if (col >= row.size()) {
        throw std::runtime_error("EventLog load_csv: short row in " + path.string());
      }
      return row[col];
    };
    log.append(static_cast<std::uint32_t>(parse_field_u64(cell(user_col), "user")),
               static_cast<std::uint32_t>(parse_field_u64(cell(app_col), "app")),
               day_col == npos
                   ? 0
                   : static_cast<std::int32_t>(parse_field_i64(cell(day_col), "day")),
               ordinal_col == npos
                   ? 0
                   : static_cast<std::uint32_t>(parse_field_u64(cell(ordinal_col), "ordinal")),
               rating_col == npos
                   ? std::uint8_t{0}
                   : static_cast<std::uint8_t>(parse_field_u64(cell(rating_col), "rating")));
  }
  return log;
}

}  // namespace appstore::events
