// Tiered lock-free per-user posting index (netplay tieredindex.h shape).
//
// Replaces the batch CSR rebuild: writers publish (sort-key, row) postings
// per user as they append, readers materialize any user's chronological
// stream from a frontier snapshot — no rebuild, no locks, no waiting.
//
// Two tiers of CAS-allocated structure:
//
//   top tier     std::atomic<Indexlet*>[max_users / 4096]
//                  — allocated on the first event that touches a user in
//                    the 4096-user block (CAS; losers free their copy)
//   per user     count + std::atomic<PostingSlot*> chunks[kNumTiers]
//                  — chunk t holds (8 << t) postings, so capacity doubles
//                    per tier and a user's postings never move once written
//
// A writer claims a posting slot with count.fetch_add (unique index, no
// lock), CAS-allocates the owning chunk if it is first to need it, then
// stores key and row into the slot's atomics. Slot stores are relaxed: the
// ONLY synchronization in the live store is the log's read frontier
// (live_log.hpp). A reader that acquired frontier F is guaranteed, by the
// release chain on the frontier, to see every posting whose row < F fully
// written; postings with row >= F (or still-zero slots, or whole chunks not
// yet CAS-published) are simply skipped — reading those relaxed atomics is
// defined behavior, unlike the plain column arrays, which is why slots must
// be atomics at all. Rows are stored +1 so a zero slot means "unwritten".
//
// Sort key: ((day ^ 0x80000000) << 32) | ordinal — the sign-bias makes
// unsigned key order equal signed day order, so sorting postings by
// (key, row) reproduces the batch CSR's stable (day, ordinal) sort with
// append-order tie-break, bit for bit.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

namespace appstore::events {

/// One collected posting: the packed chronological key plus the log row.
struct Posting {
  std::uint64_t key = 0;
  std::uint64_t row = 0;

  friend bool operator<(const Posting& a, const Posting& b) noexcept {
    return a.key != b.key ? a.key < b.key : a.row < b.row;
  }
};

/// Packs (day, ordinal) into one sortable 64-bit key.
[[nodiscard]] constexpr std::uint64_t posting_key(std::int32_t day,
                                                  std::uint32_t ordinal) noexcept {
  const std::uint32_t biased = static_cast<std::uint32_t>(day) ^ 0x80000000u;
  return (static_cast<std::uint64_t>(biased) << 32) | ordinal;
}

class TieredUserIndex {
 public:
  static constexpr std::uint32_t kIndexletBits = 12;  ///< 4096 users per indexlet
  static constexpr std::uint32_t kIndexletUsers = 1u << kIndexletBits;
  static constexpr std::uint32_t kNumTiers = 20;
  static constexpr std::uint64_t kFirstChunkPostings = 8;
  /// 8 * (2^20 - 1) postings per user — far above any per-user stream here.
  static constexpr std::uint64_t kMaxPostings =
      kFirstChunkPostings * ((1ull << kNumTiers) - 1);

  /// `max_users` is the key space; it is rounded up to a whole indexlet.
  explicit TieredUserIndex(std::uint32_t max_users);
  ~TieredUserIndex();

  TieredUserIndex(const TieredUserIndex&) = delete;
  TieredUserIndex& operator=(const TieredUserIndex&) = delete;

  [[nodiscard]] std::uint32_t max_users() const noexcept { return max_users_; }

  /// Publishes one posting for `user`. Lock-free; any number of writer
  /// threads may append concurrently (for the same user too). Throws
  /// std::out_of_range for user >= max_users(), std::length_error past
  /// kMaxPostings for one user.
  void append(std::uint32_t user, std::uint64_t key, std::uint64_t row);

  /// Appends every posting of `user` with row < frontier to `out`, sorted by
  /// (key, row). Wait-free; safe concurrently with writers. The caller owns
  /// the frontier acquire that makes the postings' contents visible.
  void collect(std::uint32_t user, std::uint64_t frontier, std::vector<Posting>& out) const;

  /// Number of postings of `user` with row < frontier (what collect returns).
  [[nodiscard]] std::uint64_t visible_count(std::uint32_t user,
                                            std::uint64_t frontier) const;

  /// Approximate allocated bytes (indexlets + chunks), tracked atomically.
  [[nodiscard]] std::uint64_t bytes() const noexcept {
    return bytes_.load(std::memory_order_relaxed);
  }

 private:
  struct PostingSlot {
    std::atomic<std::uint64_t> key{0};
    std::atomic<std::uint64_t> row_plus_1{0};  ///< 0 = slot not yet written
  };

  struct UserEntry {
    std::atomic<std::uint32_t> count{0};
    std::array<std::atomic<PostingSlot*>, kNumTiers> chunks{};
  };

  struct Indexlet {
    std::array<UserEntry, kIndexletUsers> users{};
  };

  /// Chunk t holds postings [start(t), start(t) + capacity(t)).
  [[nodiscard]] static constexpr std::uint64_t chunk_capacity(std::uint32_t tier) noexcept {
    return kFirstChunkPostings << tier;
  }
  [[nodiscard]] static constexpr std::uint64_t chunk_start(std::uint32_t tier) noexcept {
    return kFirstChunkPostings * ((1ull << tier) - 1);
  }

  [[nodiscard]] UserEntry* find_entry(std::uint32_t user) const;
  [[nodiscard]] UserEntry& ensure_entry(std::uint32_t user);
  [[nodiscard]] PostingSlot* ensure_chunk(UserEntry& entry, std::uint32_t tier);

  std::uint32_t max_users_;
  std::vector<std::atomic<Indexlet*>> top_;
  std::atomic<std::uint64_t> bytes_{0};
};

}  // namespace appstore::events
