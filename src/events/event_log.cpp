#include "events/event_log.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <stdexcept>

#include "par/parallel.hpp"
#include "util/format.hpp"

namespace appstore::events {

EventLog EventLog::from_columns(Columns columns, std::vector<std::uint32_t> user,
                                std::vector<std::uint32_t> app,
                                std::vector<std::int32_t> day,
                                std::vector<std::uint32_t> ordinal,
                                std::vector<std::uint8_t> rating) {
  const std::size_t n = user.size();
  const auto check = [n](std::size_t got, bool enabled, const char* name) {
    const std::size_t want = enabled ? n : 0;
    if (got != want) {
      throw std::invalid_argument(
          util::format("EventLog::from_columns: column '{}' has {} rows, expected {}", name,
                       got, want));
    }
  };
  check(app.size(), true, "app");
  check(day.size(), has_column(columns, Columns::kDay), "day");
  check(ordinal.size(), has_column(columns, Columns::kOrdinal), "ordinal");
  check(rating.size(), has_column(columns, Columns::kRating), "rating");

  EventLog log(columns);
  log.user_ = std::move(user);
  log.app_ = std::move(app);
  log.day_ = std::move(day);
  log.ordinal_ = std::move(ordinal);
  log.rating_ = std::move(rating);
  return log;
}

void EventLog::reserve(std::size_t n) {
  user_.reserve(n);
  app_.reserve(n);
  if (has_column(columns_, Columns::kDay)) day_.reserve(n);
  if (has_column(columns_, Columns::kOrdinal)) ordinal_.reserve(n);
  if (has_column(columns_, Columns::kRating)) rating_.reserve(n);
}

void EventLog::append(std::uint32_t user, std::uint32_t app, std::int32_t day,
                      std::uint32_t ordinal, std::uint8_t rating) {
  if (has_column(columns_, Columns::kDay)) {
    day_.push_back(day);
  } else if (day != 0) {
    throw std::logic_error("EventLog::append: day column is disabled");
  }
  if (has_column(columns_, Columns::kOrdinal)) {
    ordinal_.push_back(ordinal);
  } else if (ordinal != 0) {
    throw std::logic_error("EventLog::append: ordinal column is disabled");
  }
  if (has_column(columns_, Columns::kRating)) {
    rating_.push_back(rating);
  } else if (rating != 0) {
    throw std::logic_error("EventLog::append: rating column is disabled");
  }
  user_.push_back(user);
  app_.push_back(app);
  invalidate_index();
}

void EventLog::append(const EventLog& other) {
  if (other.columns_ != columns_) {
    throw std::invalid_argument("EventLog::append: column masks differ");
  }
  user_.insert(user_.end(), other.user_.begin(), other.user_.end());
  app_.insert(app_.end(), other.app_.begin(), other.app_.end());
  day_.insert(day_.end(), other.day_.begin(), other.day_.end());
  ordinal_.insert(ordinal_.end(), other.ordinal_.begin(), other.ordinal_.end());
  rating_.insert(rating_.end(), other.rating_.begin(), other.rating_.end());
  invalidate_index();
}

Event EventLog::row(std::size_t i) const {
  Event event;
  event.user = user_[i];
  event.app = app_[i];
  event.day = day_.empty() ? 0 : day_[i];
  event.ordinal = ordinal_.empty() ? static_cast<std::uint32_t>(i) : ordinal_[i];
  event.rating = rating_.empty() ? std::uint8_t{0} : rating_[i];
  return event;
}

std::size_t EventLog::bytes() const noexcept {
  return user_.size() * sizeof(std::uint32_t) + app_.size() * sizeof(std::uint32_t) +
         day_.size() * sizeof(std::int32_t) + ordinal_.size() * sizeof(std::uint32_t) +
         rating_.size() * sizeof(std::uint8_t) + offsets_.size() * sizeof(std::uint64_t) +
         order_.size() * sizeof(std::uint32_t);
}

void EventLog::build_index(std::uint32_t user_count, const BuildOptions& options) {
  const auto start = std::chrono::steady_clock::now();

  if (user_.size() > std::numeric_limits<std::uint32_t>::max()) {
    throw std::length_error("EventLog::build_index: more than 2^32-1 events");
  }
  for (const auto user : user_) {
    if (user >= user_count) {
      throw std::invalid_argument(util::format(
          "EventLog::build_index: event user {} >= user_count {}", user, user_count));
    }
  }

  // Counting sort by user: offsets via prefix sum, then a stable fill in
  // append order (so each user's slice starts out in append order).
  offsets_.assign(static_cast<std::size_t>(user_count) + 1, 0);
  for (const auto user : user_) ++offsets_[user + 1];
  for (std::uint32_t u = 0; u < user_count; ++u) offsets_[u + 1] += offsets_[u];

  order_.resize(user_.size());
  std::vector<std::uint64_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (std::uint32_t i = 0; i < user_.size(); ++i) {
    order_[cursor[user_[i]]++] = i;
  }

  // Chronological invariant: each user's slice sorted by (day, ordinal),
  // remaining ties broken by append order (stable sort). Users are
  // independent, so the sort shards across threads with a bit-identical
  // result at every thread count.
  if (!day_.empty() || !ordinal_.empty()) {
    const par::Options par_options{.threads = options.threads, .metrics = options.metrics};
    par::parallel_for(user_count, par_options, [this](std::uint64_t u) {
      const auto first = order_.begin() + static_cast<std::ptrdiff_t>(offsets_[u]);
      const auto last = order_.begin() + static_cast<std::ptrdiff_t>(offsets_[u + 1]);
      std::stable_sort(first, last, [this](std::uint32_t a, std::uint32_t b) {
        const std::int32_t day_a = day_.empty() ? 0 : day_[a];
        const std::int32_t day_b = day_.empty() ? 0 : day_[b];
        if (day_a != day_b) return day_a < day_b;
        if (!ordinal_.empty()) return ordinal_[a] < ordinal_[b];
        return false;
      });
    });
  }
  indexed_users_ = user_count;

  if (options.metrics != nullptr) {
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    options.metrics->counter("events_bytes_total").inc(bytes());
    options.metrics->histogram("eventlog_build_seconds").observe(seconds);
  }
}

UserStreamView EventLog::stream(std::uint32_t user) const {
  if (!indexed()) {
    throw std::logic_error("EventLog::stream: build_index() has not been called");
  }
  if (user >= indexed_users_) {
    throw std::out_of_range(util::format("EventLog::stream: user {} >= indexed user count {}",
                                         user, indexed_users_));
  }
  const std::uint64_t begin = offsets_[user];
  const std::uint64_t end = offsets_[user + 1];
  return UserStreamView(
      this, std::span<const std::uint32_t>(order_).subspan(
                static_cast<std::size_t>(begin), static_cast<std::size_t>(end - begin)));
}

void EventLog::invalidate_index() noexcept {
  offsets_.clear();
  order_.clear();
  indexed_users_ = 0;
}

}  // namespace appstore::events
