// Segmented persistence for the live event store.
//
// Layout ("ALSG", shared header helpers in events/binary.hpp):
//
//   magic "ALSG" | endian tag | version 1 | flags = column mask |
//   u64 count (the saved frontier) | u64 segment_rows |
//   then ceil(count / segment_rows) segment records back to back:
//     u64 first_row | u64 rows |
//     user u32[rows] | app u32[rows] | [day i32[rows]] | [rating u8[rows]]
//
// The ordinal column is never serialized even when the mask carries it: in a
// live log the ordinal IS the row index, so the loader reconstructs it —
// 4 bytes/row smaller and one less thing corruption can tear.
//
// Robustness contract (same as events/io.hpp, fuzzed by the chaos suite):
// the loader validates the header, the segment geometry (power-of-two
// segment_rows, each record's first_row/rows against the header), the exact
// payload size before any allocation, and every user id against the
// caller's bound — each defect a typed binary::LoadError (kBadSegment and
// kUserRange are new with this format). save_segmented stages through
// util::AtomicFile and honors the chaos torn-write seam.
#pragma once

#include <filesystem>
#include <memory>

#include "events/io.hpp"
#include "events/live_log.hpp"

namespace appstore::events {

/// Writes the snapshot's prefix to `path` in the segmented format, cut into
/// the snapshot's own arena segment size. Write-temp-then-rename; honors the
/// IoOptions torn-write seam.
void save_segmented(const FrontierSnapshot& snapshot, const std::filesystem::path& path,
                    const IoOptions& options = {});

/// Loads a file written by save_segmented into a fresh LiveEventLog shaped
/// by `options` (max_rows is raised to fit the file if needed; the file's
/// segment size only describes the file, not the new arena). Every user id
/// must be below min(options.max_users, limits.user_bound). Throws
/// binary::LoadError for every structural or range defect.
[[nodiscard]] std::unique_ptr<LiveEventLog> load_segmented(const std::filesystem::path& path,
                                                           LiveOptions options = {},
                                                           const LoadLimits& limits = {});

}  // namespace appstore::events
