#include "events/live_io.hpp"

#include <fstream>
#include <vector>

#include "chaos/fault.hpp"
#include "events/binary.hpp"
#include "util/format.hpp"
#include "util/fs.hpp"

namespace appstore::events {

namespace {

constexpr std::string_view kMagic = "ALSG";
constexpr std::uint32_t kVersion = 1;
constexpr std::uint32_t kKnownColumns =
    static_cast<std::uint32_t>(Columns::kDay) | static_cast<std::uint32_t>(Columns::kOrdinal) |
    static_cast<std::uint32_t>(Columns::kRating);
constexpr std::uint64_t kMaxSegmentRows = 1ull << 30;
constexpr std::uint64_t kSegmentHeaderBytes = 2 * sizeof(std::uint64_t);

/// Serialized bytes per row: ordinal is implicit (== row), never stored.
[[nodiscard]] std::uint64_t stored_bytes_per_row(Columns columns) {
  std::uint64_t bytes = 2 * sizeof(std::uint32_t);  // user + app
  if (has_column(columns, Columns::kDay)) bytes += sizeof(std::int32_t);
  if (has_column(columns, Columns::kRating)) bytes += sizeof(std::uint8_t);
  return bytes;
}

}  // namespace

void save_segmented(const FrontierSnapshot& snapshot, const std::filesystem::path& path,
                    const IoOptions& options) {
  const std::uint64_t count = snapshot.frontier();
  const std::uint64_t segment_rows =
      snapshot.log() != nullptr ? snapshot.log()->arena().segment_rows() : (1ull << 16);

  util::AtomicFile staged(path);
  {
    std::ofstream out(staged.temp_path(), std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("save_segmented: cannot open " + path.string());

    binary::write_header(out, kMagic, kVersion,
                         static_cast<std::uint32_t>(snapshot.columns()), count);
    binary::write_pod(out, segment_rows);

    for (std::uint64_t first = 0; first < count; first += segment_rows) {
      const std::uint64_t rows = std::min(segment_rows, count - first);
      binary::write_pod(out, first);
      binary::write_pod(out, rows);
      const auto slice = [first, rows](auto span) {
        return span.subspan(static_cast<std::size_t>(first), static_cast<std::size_t>(rows));
      };
      binary::write_column(out, slice(snapshot.user()));
      binary::write_column(out, slice(snapshot.app()));
      if (!snapshot.day().empty()) binary::write_column(out, slice(snapshot.day()));
      if (!snapshot.rating().empty()) binary::write_column(out, slice(snapshot.rating()));
      if (options.faults != nullptr) {
        const chaos::Fault fault =
            options.faults->next(chaos::FaultSite::kFileWrite, path.string());
        if (fault.kind == chaos::FaultKind::kTornWrite) {
          out.flush();
          throw chaos::InjectedFault(fault.kind,
                                     "injected torn write for " + path.string());
        }
      }
    }
    out.flush();
    if (!out) throw std::runtime_error("save_segmented: write failed for " + path.string());
  }
  staged.commit();
}

std::unique_ptr<LiveEventLog> load_segmented(const std::filesystem::path& path,
                                             LiveOptions options, const LoadLimits& limits) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw binary::LoadError(binary::LoadErrorKind::kOpen,
                            "load_segmented: cannot open " + path.string());
  }

  const binary::Header header = binary::read_header(in, kMagic, kVersion);
  if ((header.flags & ~kKnownColumns) != 0) {
    throw binary::LoadError(
        binary::LoadErrorKind::kBadFlags,
        util::format("load_segmented: unknown column flags 0x{:x} in {}", header.flags,
                     path.string()));
  }
  const auto columns = static_cast<Columns>(header.flags);
  const std::uint64_t count = header.count;
  const auto segment_rows = binary::read_pod<std::uint64_t>(in, "segment rows");
  if (segment_rows == 0 || segment_rows > kMaxSegmentRows ||
      (segment_rows & (segment_rows - 1)) != 0) {
    throw binary::LoadError(
        binary::LoadErrorKind::kBadSegment,
        util::format("load_segmented: bad segment size {} in {}", segment_rows,
                     path.string()));
  }
  // Geometry sanity before any size math: a corrupted count can't overflow
  // the expected-payload product (rows are >= 8 bytes, files are < 2^63).
  if (count > (std::uint64_t{1} << 32)) {
    throw binary::LoadError(
        binary::LoadErrorKind::kLengthMismatch,
        util::format("load_segmented: absurd row count {} in {}", count, path.string()));
  }

  const std::uint64_t segments = (count + segment_rows - 1) / segment_rows;
  const std::uint64_t expected_rest =
      segments * kSegmentHeaderBytes + count * stored_bytes_per_row(columns);
  binary::expect_payload(in, expected_rest, 1, "ALSG");

  if (count > options.max_rows) {
    options.max_rows =
        (count + options.segment_rows - 1) / options.segment_rows * options.segment_rows;
  }
  auto log = std::make_unique<LiveEventLog>(columns, options);
  const std::uint64_t user_bound =
      std::min<std::uint64_t>(limits.user_bound, options.max_users);

  const bool with_day = has_column(columns, Columns::kDay);
  const bool with_rating = has_column(columns, Columns::kRating);
  for (std::uint64_t segment = 0; segment < segments; ++segment) {
    const std::uint64_t want_first = segment * segment_rows;
    const std::uint64_t want_rows = std::min(segment_rows, count - want_first);
    const auto first = binary::read_pod<std::uint64_t>(in, "segment first row");
    const auto rows = binary::read_pod<std::uint64_t>(in, "segment row count");
    if (first != want_first || rows != want_rows) {
      throw binary::LoadError(
          binary::LoadErrorKind::kBadSegment,
          util::format("load_segmented: segment {} header ({}, {}) != expected ({}, {}) in {}",
                       segment, first, rows, want_first, want_rows, path.string()));
    }
    auto user = binary::read_column<std::uint32_t>(in, rows, "user");
    binary::check_user_bound(user, user_bound, "ALSG");
    auto app = binary::read_column<std::uint32_t>(in, rows, "app");
    binary::check_app_bound(app, limits.app_bound, "ALSG");
    auto day =
        binary::read_column<std::int32_t>(in, with_day ? rows : 0, "day");
    binary::check_day_bound(day, limits.day_bound, "ALSG");
    auto rating = binary::read_column<std::uint8_t>(in, with_rating ? rows : 0, "rating");
    // Replay the segment as one published block. Ordinals reconstruct as row
    // ids inside append_batch — exactly what save_segmented elided.
    const EventLog batch = EventLog::from_columns(
        columns == Columns::kNone
            ? columns
            : static_cast<Columns>(static_cast<std::uint8_t>(columns) &
                                   ~static_cast<std::uint8_t>(Columns::kOrdinal)),
        std::move(user), std::move(app), std::move(day), {}, std::move(rating));
    log->append_batch(batch);
  }
  return log;
}

}  // namespace appstore::events
