// Segmented column arena: the storage layer under LiveEventLog.
//
// Each enabled column lives in ONE contiguous virtual reservation sized for
// the store's whole capacity (`max_rows`), created with mmap(MAP_NORESERVE)
// — anonymous by default, or backed by a sparse file so a 10M-user store
// streams from the page cache instead of living in RAM. Physical memory is
// committed lazily, a fixed-size segment (`segment_rows` rows) at a time:
// writers that cross into a new segment race a CAS on the committed-segment
// counter, and the winner accounts the commit (the kernel faults the pages
// in on first touch — commit here means accounting + metrics, the address
// range itself never moves).
//
// Keeping every segment inside one reservation is the trick that lets the
// live store keep EventLog's zero-copy read surface: a std::span over
// [0, frontier) stays valid forever, across every future segment commit,
// because column bases are immutable for the arena's lifetime. Readers
// never look past the frontier (live_log.hpp), so the uncommitted tail is
// never touched.
//
// The arena knows nothing about synchronization beyond the segment counter;
// the happens-before edge that makes plain column writes visible to readers
// is the LiveEventLog frontier (see live_log.hpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>

#include "events/event_log.hpp"
#include "obs/registry.hpp"

namespace appstore::events {

class ColumnArena {
 public:
  /// Reserves virtual space for `max_rows` rows of the enabled columns.
  /// `segment_rows` must be a nonzero power of two and divide `max_rows`.
  /// A non-empty `backing_file` maps the columns MAP_SHARED over a sparse
  /// file of the full capacity (created/truncated here) instead of
  /// anonymous memory. Throws std::system_error on mmap/open failure,
  /// std::invalid_argument on a bad shape.
  ColumnArena(Columns columns, std::uint64_t max_rows, std::uint64_t segment_rows,
              const std::filesystem::path& backing_file, obs::Registry* metrics);
  ~ColumnArena();

  ColumnArena(const ColumnArena&) = delete;
  ColumnArena& operator=(const ColumnArena&) = delete;

  [[nodiscard]] Columns columns() const noexcept { return columns_; }
  [[nodiscard]] std::uint64_t max_rows() const noexcept { return max_rows_; }
  [[nodiscard]] std::uint64_t segment_rows() const noexcept { return segment_rows_; }
  [[nodiscard]] bool file_backed() const noexcept { return fd_ >= 0; }

  // --- column bases (immutable; nullptr when the column is disabled) -------

  [[nodiscard]] std::uint32_t* user() const noexcept { return user_; }
  [[nodiscard]] std::uint32_t* app() const noexcept { return app_; }
  [[nodiscard]] std::int32_t* day() const noexcept { return day_; }
  [[nodiscard]] std::uint32_t* ordinal() const noexcept { return ordinal_; }
  [[nodiscard]] std::uint8_t* rating() const noexcept { return rating_; }

  // --- segment accounting ---------------------------------------------------

  /// Ensures every segment covering rows [0, row_end) is committed. Lock-free
  /// CAS-max on the committed-segment counter; safe from any writer thread.
  void commit_rows(std::uint64_t row_end);

  [[nodiscard]] std::uint64_t segments_committed() const noexcept {
    return segments_committed_.load(std::memory_order_acquire);
  }

  /// Bytes per row across the enabled columns.
  [[nodiscard]] std::uint64_t bytes_per_row() const noexcept { return bytes_per_row_; }
  /// Virtual bytes reserved for the whole capacity.
  [[nodiscard]] std::uint64_t bytes_reserved() const noexcept { return total_bytes_; }
  /// Bytes covered by committed segments (the RAM/disk the store can touch).
  [[nodiscard]] std::uint64_t bytes_committed() const noexcept {
    return segments_committed() * segment_rows_ * bytes_per_row_;
  }

 private:
  Columns columns_;
  std::uint64_t max_rows_;
  std::uint64_t segment_rows_;
  std::uint64_t bytes_per_row_ = 0;
  std::uint64_t total_bytes_ = 0;
  void* base_ = nullptr;
  int fd_ = -1;

  std::uint32_t* user_ = nullptr;
  std::uint32_t* app_ = nullptr;
  std::int32_t* day_ = nullptr;
  std::uint32_t* ordinal_ = nullptr;
  std::uint8_t* rating_ = nullptr;

  std::atomic<std::uint64_t> segments_committed_{0};
  obs::Registry* metrics_ = nullptr;
};

}  // namespace appstore::events
