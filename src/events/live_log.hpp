// LiveEventLog: the ingest-while-serving event store.
//
// The batch EventLog (event_log.hpp) rebuilds its CSR per-user index after
// every ingest, so analytics stall while the crawler appends. LiveEventLog
// removes the stall with three netplay-logstore ideas:
//
//   1. Append-only segmented columns (segment.hpp). Rows are claimed by a
//      CAS bump pointer (`reserved_`); the columns live in one contiguous
//      virtual reservation committed a fixed-size segment at a time, so
//      column spans never move and reads stay zero-copy.
//   2. A tiered per-user index (tiered_index.hpp) that writers extend
//      lock-free as they append — no rebuild, ever.
//   3. An atomic read frontier. A writer that claimed rows [r, r+n) writes
//      its columns and postings, then waits until frontier == r and
//      release-stores r+n. Readers acquire-load the frontier once
//      (snapshot()) and touch only rows below it. The release/acquire chain
//      through the frontier is the ONLY synchronization readers need: it
//      makes every plain column write and every relaxed posting store for
//      rows < frontier visible. Rows publish strictly in claim order, so a
//      snapshot is always a dense prefix — byte-identical to a serial
//      replay of the same rows, at any writer/reader thread count.
//
// FrontierSnapshot mirrors EventLog's read surface (size/columns/spans/
// row/stream), so the query planner, serialization, and the service consume
// either store through the same idioms. stream(u) materializes the user's
// row list from the tiered index, sorted by (day, ordinal, row) — exactly
// the batch CSR order.
//
// Ordinals are assigned by the store: row index == ordinal (the claim order
// IS the record order). This is what the batch path produced for every
// market log, and it is what makes concurrent ingest deterministic — a
// batch's rows get the same ordinals no matter how many threads wrote them.
#pragma once

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <iterator>
#include <memory>
#include <span>
#include <vector>

#include "events/event_log.hpp"
#include "events/segment.hpp"
#include "events/tiered_index.hpp"
#include "obs/registry.hpp"

namespace appstore::events {

/// Shape of a LiveEventLog. All values are capacities, not costs: the column
/// reservation is virtual (MAP_NORESERVE) and the index tiers are allocated
/// on first touch, so a default-shaped store holding ten events is tiny.
struct LiveOptions {
  /// Row capacity of the virtual reservation (columns never move, so this
  /// is fixed at construction). Appends past it throw std::length_error.
  std::uint64_t max_rows = 1ull << 26;
  /// Rows per segment — the lazy-commit granularity. Power of two dividing
  /// max_rows.
  std::uint64_t segment_rows = 1ull << 16;
  /// User-id key space of the tiered index (also what FrontierSnapshot
  /// reports as user_count()). Appends for users >= this throw.
  std::uint32_t max_users = 1u << 22;
  /// Non-empty: back the columns with this sparse file (mmap MAP_SHARED) so
  /// the store streams from the page cache instead of anonymous RAM.
  std::filesystem::path backing_file{};
  /// Optional metrics: live_events_appended_total, live_segments_committed_total.
  obs::Registry* metrics = nullptr;
};

/// Knobs for bulk ingest.
struct IngestOptions {
  /// Writer threads for one batch; 0 = hardware concurrency. The resulting
  /// store state is bit-identical at every value.
  std::size_t threads = 1;
};

class LiveEventLog;

/// One user's chronological stream out of a frontier snapshot. Unlike the
/// 16-byte CSR UserStreamView this owns its row list (the tiered index has
/// no contiguous per-user array to point into), but the interface matches.
class LiveStreamView {
 public:
  LiveStreamView() = default;

  [[nodiscard]] std::size_t size() const noexcept { return rows_.size(); }
  [[nodiscard]] bool empty() const noexcept { return rows_.empty(); }

  /// i-th event in chronological (day, ordinal) order.
  [[nodiscard]] Event operator[](std::size_t i) const;

  /// Row index into the underlying log of the i-th chronological event.
  [[nodiscard]] std::uint32_t event_index(std::size_t i) const { return rows_[i]; }

  class iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = Event;
    using difference_type = std::ptrdiff_t;
    using pointer = const Event*;
    using reference = Event;

    iterator() = default;
    iterator(const LiveStreamView* view, std::size_t i) : view_(view), i_(i) {}
    [[nodiscard]] Event operator*() const { return (*view_)[i_]; }
    iterator& operator++() {
      ++i_;
      return *this;
    }
    iterator operator++(int) {
      iterator copy = *this;
      ++i_;
      return copy;
    }
    [[nodiscard]] bool operator==(const iterator& other) const noexcept {
      return i_ == other.i_;
    }

   private:
    const LiveStreamView* view_ = nullptr;
    std::size_t i_ = 0;
  };

  [[nodiscard]] iterator begin() const noexcept { return iterator(this, 0); }
  [[nodiscard]] iterator end() const noexcept { return iterator(this, rows_.size()); }

 private:
  friend class FrontierSnapshot;
  LiveStreamView(const LiveEventLog* log, std::vector<std::uint32_t> rows)
      : log_(log), rows_(std::move(rows)) {}

  const LiveEventLog* log_ = nullptr;
  std::vector<std::uint32_t> rows_;
};

/// A consistent read view: the log's dense prefix [0, frontier) captured at
/// construction. Copyable 16-byte value; spans handed out stay valid for the
/// log's lifetime (the arena never moves), so a snapshot outliving the
/// expression that produced it is fine. Mirrors EventLog's read API.
class FrontierSnapshot {
 public:
  FrontierSnapshot() = default;

  [[nodiscard]] Columns columns() const noexcept;
  [[nodiscard]] std::size_t size() const noexcept { return static_cast<std::size_t>(rows_); }
  [[nodiscard]] bool empty() const noexcept { return rows_ == 0; }
  /// The captured frontier — also the log's ingest epoch at capture time.
  [[nodiscard]] std::uint64_t frontier() const noexcept { return rows_; }

  // --- zero-copy column views (empty when the column is disabled) ----------

  [[nodiscard]] std::span<const std::uint32_t> user() const noexcept;
  [[nodiscard]] std::span<const std::uint32_t> app() const noexcept;
  [[nodiscard]] std::span<const std::int32_t> day() const noexcept;
  [[nodiscard]] std::span<const std::uint32_t> ordinal() const noexcept;
  [[nodiscard]] std::span<const std::uint8_t> rating() const noexcept;

  /// Row `i` with disabled columns defaulted (ordinal default = i).
  [[nodiscard]] Event row(std::size_t i) const;

  class row_iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = Event;
    using difference_type = std::ptrdiff_t;
    using pointer = const Event*;
    using reference = Event;

    row_iterator() = default;
    row_iterator(const FrontierSnapshot* snapshot, std::size_t i)
        : snapshot_(snapshot), i_(i) {}
    [[nodiscard]] Event operator*() const { return snapshot_->row(i_); }
    row_iterator& operator++() {
      ++i_;
      return *this;
    }
    row_iterator operator++(int) {
      row_iterator copy = *this;
      ++i_;
      return copy;
    }
    [[nodiscard]] bool operator==(const row_iterator& other) const noexcept {
      return i_ == other.i_;
    }

   private:
    const FrontierSnapshot* snapshot_ = nullptr;
    std::size_t i_ = 0;
  };

  [[nodiscard]] row_iterator begin() const noexcept { return row_iterator(this, 0); }
  [[nodiscard]] row_iterator end() const noexcept { return row_iterator(this, size()); }

  // --- per-user streams (always available — no build step) -----------------

  /// The live store is always indexed; kept for planner/API parity with
  /// EventLog.
  [[nodiscard]] bool indexed() const noexcept { return log_ != nullptr; }
  /// User-id key space of the index (LiveOptions::max_users).
  [[nodiscard]] std::uint32_t user_count() const noexcept;

  /// User u's chronological stream within this snapshot. Throws
  /// std::out_of_range for u >= user_count().
  [[nodiscard]] LiveStreamView stream(std::uint32_t user) const;
  /// stream(u).size() without materializing the row list.
  [[nodiscard]] std::uint64_t stream_size(std::uint32_t user) const;

  /// Materializes the prefix as a batch EventLog (tests, interchange).
  [[nodiscard]] EventLog to_event_log() const;

  [[nodiscard]] const LiveEventLog* log() const noexcept { return log_; }

 private:
  friend class LiveEventLog;
  FrontierSnapshot(const LiveEventLog* log, std::uint64_t rows) : log_(log), rows_(rows) {}

  const LiveEventLog* log_ = nullptr;
  std::uint64_t rows_ = 0;
};

class LiveEventLog {
 public:
  explicit LiveEventLog(Columns columns, const LiveOptions& options = {});

  LiveEventLog(const LiveEventLog&) = delete;
  LiveEventLog& operator=(const LiveEventLog&) = delete;

  [[nodiscard]] Columns columns() const noexcept { return columns_; }
  [[nodiscard]] std::uint64_t capacity() const noexcept { return arena_.max_rows(); }
  [[nodiscard]] std::uint32_t max_users() const noexcept { return index_.max_users(); }
  [[nodiscard]] const ColumnArena& arena() const noexcept { return arena_; }

  /// Published rows — the epoch readers snapshot. Acquire: everything below
  /// the returned value is visible to the calling thread.
  [[nodiscard]] std::uint64_t frontier() const noexcept {
    return frontier_.load(std::memory_order_acquire);
  }

  /// Captures the current frontier as a consistent read view.
  [[nodiscard]] FrontierSnapshot snapshot() const noexcept {
    return FrontierSnapshot(this, frontier());
  }

  /// Captures a specific published prefix: the first min(rows, frontier())
  /// rows. Lets a reader pin an exact epoch (say, "through day N") even
  /// while writers race past it.
  [[nodiscard]] FrontierSnapshot snapshot_at(std::uint64_t rows) const noexcept {
    return FrontierSnapshot(this, std::min(rows, frontier()));
  }

  // --- writers (lock-free; any thread) -------------------------------------

  /// Appends one event; the row index doubles as its ordinal when the
  /// ordinal column is enabled. Returns the row. Throws std::length_error at
  /// capacity, std::out_of_range for user >= max_users, std::logic_error for
  /// a nonzero value in a disabled column — all *before* claiming the row,
  /// so a throwing call never wedges the publication chain.
  std::uint64_t append(std::uint32_t user, std::uint32_t app, std::int32_t day = 0,
                       std::uint8_t rating = 0);

  /// Appends all rows of `batch` as one atomically-published block: readers
  /// see none or all of it. The batch must carry exactly this log's columns
  /// except ordinal, which the store assigns (row index) — a batch-provided
  /// ordinal column is rejected. With options.threads > 1 the rows are
  /// written shard-wise in parallel; the resulting store state is
  /// bit-identical to the serial ingest of the same batch. Returns the first
  /// row of the block.
  std::uint64_t append_batch(const EventLog& batch, const IngestOptions& options = {});

  // --- readers --------------------------------------------------------------

  /// Row `i`, which must be below a frontier the caller has observed.
  [[nodiscard]] Event row(std::uint64_t i) const noexcept;

  /// Committed column + index bytes (the reservation is virtual; this is
  /// what the store can actually touch).
  [[nodiscard]] std::uint64_t bytes() const noexcept {
    return arena_.bytes_committed() + index_.bytes();
  }

  [[nodiscard]] const TieredUserIndex& index() const noexcept { return index_; }

 private:
  friend class FrontierSnapshot;

  /// Claims rows [result, result + n). CAS loop (not fetch_add) so capacity
  /// overflow throws without claiming — an abandoned claim would stall the
  /// publication chain forever.
  [[nodiscard]] std::uint64_t claim(std::uint64_t n);

  /// Publishes rows [first, first + n): waits for frontier == first, then
  /// release-stores first + n. Per-row writes must be complete.
  void publish(std::uint64_t first, std::uint64_t n);

  /// Writes one claimed row's columns and posting (no publication).
  void write_row(std::uint64_t row, std::uint32_t user, std::uint32_t app, std::int32_t day,
                 std::uint8_t rating);

  Columns columns_;
  ColumnArena arena_;
  TieredUserIndex index_;
  obs::Registry* metrics_ = nullptr;

  std::atomic<std::uint64_t> reserved_{0};
  std::atomic<std::uint64_t> frontier_{0};
};

inline Event LiveStreamView::operator[](std::size_t i) const {
  return log_->row(rows_[i]);
}

}  // namespace appstore::events
