// Columnar event-log spine: one zero-copy SoA representation for every
// timestamped (user, app, day, ordinal[, rating]) event stream in the system.
//
// Every analysis in the paper consumes such streams — download events,
// comment events, model-generated request streams — and before this module
// each layer kept its own AoS copy (vector<DownloadEvent>, per-user
// vector<vector<...>>, nested user_sequences). EventLog stores one column
// per field and hands out std::span views, so crossing a layer boundary is
// O(1) instead of O(events).
//
// Per-user access uses a CSR index instead of vector<vector<...>>:
// `offsets` (user_count + 1 entries) and `order` (one entry per event,
// grouped by user). `order[offsets[u] .. offsets[u+1])` lists user u's
// event rows in chronological (day, ordinal) order — the invariant the
// affinity metric (§4.2) requires, established once at build_index() time
// and shared by every downstream view.
//
// Determinism contract: build_index() output is a pure function of the log
// content. The per-user sort is a stable sort on (day, ordinal) run
// independently per user (sharded via appstore_par), so the index is
// bit-identical at every thread count.
#pragma once

#include <cstdint>
#include <iterator>
#include <span>
#include <vector>

#include "obs/registry.hpp"

namespace appstore::events {

/// Optional-column mask. `user` and `app` always exist; day/ordinal/rating
/// are enabled per log so streams without a meaning for a field (e.g. cache
/// request streams, whose arrival position is their only order) pay no
/// memory for it.
enum class Columns : std::uint8_t {
  kNone = 0,
  kDay = 1,
  kOrdinal = 2,
  kRating = 4,
};

[[nodiscard]] constexpr Columns operator|(Columns a, Columns b) noexcept {
  return static_cast<Columns>(static_cast<std::uint8_t>(a) | static_cast<std::uint8_t>(b));
}

[[nodiscard]] constexpr bool has_column(Columns mask, Columns bit) noexcept {
  return (static_cast<std::uint8_t>(mask) & static_cast<std::uint8_t>(bit)) != 0;
}

/// One materialized row. Disabled columns read as their defaults (day 0,
/// ordinal = row index, rating 0), so row-wise consumers never branch on the
/// column mask.
struct Event {
  std::uint32_t user = 0;
  std::uint32_t app = 0;
  std::int32_t day = 0;
  std::uint32_t ordinal = 0;
  std::uint8_t rating = 0;
};

/// Options for EventLog::build_index.
struct BuildOptions {
  /// Worker threads for the per-user chronological sort; 0 = hardware
  /// concurrency. The index content does not depend on this value.
  std::size_t threads = 0;
  /// Optional metrics sink: records events_bytes_total and the
  /// eventlog_build_seconds histogram per build.
  obs::Registry* metrics = nullptr;
};

class EventLog;

/// Zero-copy view of one user's chronologically-ordered events. Holds a
/// pointer to the log plus that user's slice of the CSR `order` array —
/// 16 bytes, no allocation, valid for the log's lifetime (or until the next
/// append/build_index).
class UserStreamView {
 public:
  UserStreamView() = default;

  [[nodiscard]] std::size_t size() const noexcept { return order_.size(); }
  [[nodiscard]] bool empty() const noexcept { return order_.empty(); }

  /// i-th event of the stream in chronological order.
  [[nodiscard]] Event operator[](std::size_t i) const;

  /// Row index into the underlying log of the i-th chronological event.
  [[nodiscard]] std::uint32_t event_index(std::size_t i) const { return order_[i]; }

  class iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = Event;
    using difference_type = std::ptrdiff_t;
    using pointer = const Event*;
    using reference = Event;

    iterator() = default;
    iterator(const UserStreamView* view, std::size_t i) : view_(view), i_(i) {}
    [[nodiscard]] Event operator*() const { return (*view_)[i_]; }
    iterator& operator++() {
      ++i_;
      return *this;
    }
    iterator operator++(int) {
      iterator copy = *this;
      ++i_;
      return copy;
    }
    [[nodiscard]] bool operator==(const iterator& other) const noexcept {
      return i_ == other.i_;
    }

   private:
    const UserStreamView* view_ = nullptr;
    std::size_t i_ = 0;
  };

  [[nodiscard]] iterator begin() const noexcept { return iterator(this, 0); }
  [[nodiscard]] iterator end() const noexcept { return iterator(this, order_.size()); }

 private:
  friend class EventLog;
  UserStreamView(const EventLog* log, std::span<const std::uint32_t> order)
      : log_(log), order_(order) {}

  const EventLog* log_ = nullptr;
  std::span<const std::uint32_t> order_;
};

class EventLog {
 public:
  /// Default shape: the full market event record (day + ordinal + rating).
  EventLog() = default;
  explicit EventLog(Columns columns) : columns_(columns) {}

  /// Adopts pre-built columns (the shard-wise generation path fills plain
  /// vectors in parallel, then moves them in without a copy). Disabled
  /// columns must be passed empty; enabled ones must match `user`'s size.
  /// Throws std::invalid_argument on shape mismatch.
  [[nodiscard]] static EventLog from_columns(Columns columns, std::vector<std::uint32_t> user,
                                             std::vector<std::uint32_t> app,
                                             std::vector<std::int32_t> day = {},
                                             std::vector<std::uint32_t> ordinal = {},
                                             std::vector<std::uint8_t> rating = {});

  [[nodiscard]] Columns columns() const noexcept { return columns_; }
  [[nodiscard]] std::size_t size() const noexcept { return user_.size(); }
  [[nodiscard]] bool empty() const noexcept { return user_.empty(); }

  void reserve(std::size_t n);

  /// Appends one event. Values for disabled columns must be their defaults
  /// (throws std::logic_error otherwise — a nonzero value would be silently
  /// dropped). Invalidates a previously built index.
  void append(std::uint32_t user, std::uint32_t app, std::int32_t day = 0,
              std::uint32_t ordinal = 0, std::uint8_t rating = 0);

  /// Appends all of `other`'s rows (same column mask required).
  void append(const EventLog& other);

  // --- zero-copy column views ----------------------------------------------

  [[nodiscard]] std::span<const std::uint32_t> user() const noexcept { return user_; }
  [[nodiscard]] std::span<const std::uint32_t> app() const noexcept { return app_; }
  /// Empty when the column is disabled.
  [[nodiscard]] std::span<const std::int32_t> day() const noexcept { return day_; }
  [[nodiscard]] std::span<const std::uint32_t> ordinal() const noexcept { return ordinal_; }
  [[nodiscard]] std::span<const std::uint8_t> rating() const noexcept { return rating_; }

  /// Row `i` with disabled columns defaulted (ordinal default = i).
  [[nodiscard]] Event row(std::size_t i) const;

  /// Forward iteration over materialized rows (for row-wise consumers).
  class row_iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = Event;
    using difference_type = std::ptrdiff_t;
    using pointer = const Event*;
    using reference = Event;

    row_iterator() = default;
    row_iterator(const EventLog* log, std::size_t i) : log_(log), i_(i) {}
    [[nodiscard]] Event operator*() const { return log_->row(i_); }
    row_iterator& operator++() {
      ++i_;
      return *this;
    }
    row_iterator operator++(int) {
      row_iterator copy = *this;
      ++i_;
      return copy;
    }
    [[nodiscard]] bool operator==(const row_iterator& other) const noexcept {
      return i_ == other.i_;
    }

   private:
    const EventLog* log_ = nullptr;
    std::size_t i_ = 0;
  };

  [[nodiscard]] row_iterator begin() const noexcept { return row_iterator(this, 0); }
  [[nodiscard]] row_iterator end() const noexcept { return row_iterator(this, size()); }

  /// Payload bytes across the live columns plus the CSR index.
  [[nodiscard]] std::size_t bytes() const noexcept;

  // --- CSR per-user index --------------------------------------------------

  /// Builds (or rebuilds) the per-user index for users [0, user_count).
  /// Establishes the chronological invariant: every stream(u) is ordered by
  /// (day, ordinal), ties broken by append order. Throws
  /// std::invalid_argument if any event references user >= user_count.
  void build_index(std::uint32_t user_count, const BuildOptions& options = {});

  [[nodiscard]] bool indexed() const noexcept { return !offsets_.empty(); }
  /// User count the index was built for. 0 when not indexed.
  [[nodiscard]] std::uint32_t user_count() const noexcept { return indexed_users_; }

  /// CSR arrays: user u owns order()[offsets()[u] .. offsets()[u+1]).
  [[nodiscard]] std::span<const std::uint64_t> offsets() const noexcept { return offsets_; }
  [[nodiscard]] std::span<const std::uint32_t> order() const noexcept { return order_; }

  /// User u's chronological stream. Requires a built index; throws
  /// std::logic_error when not indexed, std::out_of_range for a bad user.
  [[nodiscard]] UserStreamView stream(std::uint32_t user) const;

 private:
  void invalidate_index() noexcept;

  Columns columns_ = Columns::kDay | Columns::kOrdinal | Columns::kRating;

  std::vector<std::uint32_t> user_;
  std::vector<std::uint32_t> app_;
  std::vector<std::int32_t> day_;
  std::vector<std::uint32_t> ordinal_;
  std::vector<std::uint8_t> rating_;

  std::vector<std::uint64_t> offsets_;  // user_count + 1 when indexed
  std::vector<std::uint32_t> order_;    // event rows grouped by user
  std::uint32_t indexed_users_ = 0;
};

inline Event UserStreamView::operator[](std::size_t i) const {
  return log_->row(order_[i]);
}

}  // namespace appstore::events
