#include "events/wal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <utility>

#include "chaos/fault.hpp"
#include "chaos/file_faults.hpp"
#include "events/binary.hpp"
#include "util/format.hpp"

namespace appstore::events {

namespace {

constexpr std::string_view kMagic = "AWAL";
constexpr std::uint32_t kVersion = 1;
constexpr std::uint64_t kHeaderBytes = 4 + 4 + 4 + 4 + 8;  // magic..count
constexpr std::uint64_t kRecordHeaderBytes = 4 + 4 + 8 + 8;
/// Framing sanity bound: one WAL record is one commit group member, far
/// below this. A larger size field is either a tear or corruption.
constexpr std::uint32_t kMaxPayloadBytes = 1u << 30;

[[nodiscard]] std::uint64_t record_checksum(std::uint32_t kind, std::uint64_t sequence,
                                            std::string_view payload) {
  // Fold kind and sequence into the hash ahead of the payload so a record
  // can't validate with another record's framing.
  std::uint64_t hash = binary::fnv1a64(&kind, sizeof kind);
  hash ^= binary::fnv1a64(&sequence, sizeof sequence);
  hash ^= binary::fnv1a64(payload.data(), payload.size());
  return hash;
}

template <typename T>
void append_pod(std::string& out, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.append(reinterpret_cast<const char*>(&value), sizeof value);
}

[[nodiscard]] int open_wal_fd(const std::filesystem::path& path, int flags) {
  const int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) {
    throw std::runtime_error("wal: cannot open " + path.string() + ": " +
                             std::strerror(errno));
  }
  return fd;
}

void write_all(int fd, const char* data, std::size_t size, const std::filesystem::path& path) {
  while (size > 0) {
    const ::ssize_t wrote = ::write(fd, data, size);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("wal: write to " + path.string() +
                               " failed: " + std::strerror(errno));
    }
    data += wrote;
    size -= static_cast<std::size_t>(wrote);
  }
}

}  // namespace

WalWriter::WalWriter(std::filesystem::path path, int fd, std::uint64_t base_sequence,
                     std::uint64_t next_sequence, WalOptions options)
    : path_(std::move(path)),
      fd_(fd),
      base_sequence_(base_sequence),
      next_sequence_(next_sequence),
      committed_sequence_(next_sequence),
      options_(options) {}

WalWriter::WalWriter(WalWriter&& other) noexcept
    : path_(std::move(other.path_)),
      fd_(std::exchange(other.fd_, -1)),
      base_sequence_(other.base_sequence_),
      next_sequence_(other.next_sequence_),
      committed_sequence_(other.committed_sequence_),
      pending_records_(other.pending_records_),
      group_(std::move(other.group_)),
      options_(other.options_) {}

WalWriter& WalWriter::operator=(WalWriter&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    path_ = std::move(other.path_);
    fd_ = std::exchange(other.fd_, -1);
    base_sequence_ = other.base_sequence_;
    next_sequence_ = other.next_sequence_;
    committed_sequence_ = other.committed_sequence_;
    pending_records_ = other.pending_records_;
    group_ = std::move(other.group_);
    options_ = other.options_;
  }
  return *this;
}

WalWriter::~WalWriter() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

WalWriter WalWriter::create(const std::filesystem::path& path, std::uint64_t base_sequence,
                            const WalOptions& options) {
  const int fd = open_wal_fd(path, O_CREAT | O_WRONLY | O_TRUNC);
  WalWriter writer(path, fd, base_sequence, base_sequence, options);
  std::string header;
  header.reserve(kHeaderBytes);
  header.append(kMagic);
  append_pod(header, binary::kEndianTag);
  append_pod(header, kVersion);
  append_pod(header, std::uint32_t{0});  // flags
  append_pod(header, base_sequence);     // header count = base sequence
  writer.write_guarded(header.data(), header.size());
  writer.sync();
  return writer;
}

WalWriter WalWriter::resume(const std::filesystem::path& path, const WalReplay& replay,
                            const WalOptions& options) {
  if (replay.valid_bytes < kHeaderBytes) {
    // Even the header was torn: the replay carries no trustworthy base
    // sequence, so appending here would frame records nobody can replay.
    // The caller knows the true base (its checkpoint watermark) — it must
    // create() a fresh log instead.
    throw std::logic_error("wal: resume on a fully-torn file — use create()");
  }
  if (replay.torn_tail) {
    // Drop the tear before appending: the next record must start where the
    // last valid one ended, or replay would stop at the stale bytes again.
    std::filesystem::resize_file(path, replay.valid_bytes);
  }
  const int fd = open_wal_fd(path, O_WRONLY | O_APPEND);
  return WalWriter(path, fd, replay.base_sequence, replay.last_sequence(), options);
}

std::uint64_t WalWriter::append(std::uint32_t kind, std::string_view payload) {
  if (fd_ < 0) throw std::logic_error("wal: append after close");
  if (payload.size() > kMaxPayloadBytes) {
    throw std::invalid_argument("wal: payload exceeds record bound");
  }
  const std::uint64_t sequence = ++next_sequence_;
  append_pod(group_, kind);
  append_pod(group_, static_cast<std::uint32_t>(payload.size()));
  append_pod(group_, sequence);
  append_pod(group_, record_checksum(kind, sequence, payload));
  group_.append(payload);
  ++pending_records_;
  return sequence;
}

void WalWriter::commit() {
  if (fd_ < 0) throw std::logic_error("wal: commit after close");
  if (group_.empty()) return;
  if (options_.faults != nullptr) {
    const chaos::Fault fault =
        options_.faults->next(chaos::FaultSite::kFileWrite, path_.string());
    if (fault.kind == chaos::FaultKind::kTornWrite) {
      // Simulate dying mid-group: half the batch reaches the disk.
      const std::size_t partial = group_.size() / 2;
      write_all(fd_, group_.data(), partial, path_);
      sync();
      throw chaos::InjectedFault(fault.kind, "injected torn write for " + path_.string());
    }
  }
  write_guarded(group_.data(), group_.size());
  if (options_.fsync_on_commit) sync();
  committed_sequence_ = next_sequence_;
  group_.clear();
  pending_records_ = 0;
}

void WalWriter::close() {
  if (fd_ < 0) return;
  sync();
  const int rc = ::close(fd_);
  fd_ = -1;
  if (rc != 0) {
    throw std::runtime_error("wal: close " + path_.string() +
                             " failed: " + std::strerror(errno));
  }
}

void WalWriter::write_guarded(const char* data, std::size_t size) {
  if (options_.kill != nullptr) {
    const std::uint64_t granted = options_.kill->admit(size);
    write_all(fd_, data, static_cast<std::size_t>(granted), path_);
    if (granted < size) {
      sync();  // the kill point is a *crash*: what landed before it is real
      options_.kill->fire("wal write to " + path_.string());
    }
    return;
  }
  write_all(fd_, data, size, path_);
}

void WalWriter::sync() {
  if (!options_.fsync_on_commit) return;
  if (::fsync(fd_) != 0) {
    throw std::runtime_error("wal: fsync " + path_.string() +
                             " failed: " + std::strerror(errno));
  }
}

WalReplay replay_wal(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw binary::LoadError(binary::LoadErrorKind::kOpen,
                            "replay_wal: cannot open " + path.string());
  }
  in.seekg(0, std::ios::end);
  const std::uint64_t file_size = static_cast<std::uint64_t>(in.tellg());
  in.seekg(0);

  // A file shorter than the header is a header torn mid-write (kill offset
  // inside the header): it cannot hold records, and a partial magic reads
  // as kBadMagic rather than kTruncated, so *any* header error on a short
  // file means the same thing — an empty WAL. Structural errors on a
  // full-size header (bad magic, foreign endianness) still throw.
  binary::Header header;
  try {
    header = binary::read_header(in, kMagic, kVersion);
  } catch (const binary::LoadError&) {
    if (file_size < kHeaderBytes) {
      WalReplay torn;
      torn.torn_tail = true;
      return torn;
    }
    throw;
  }
  if (header.flags != 0) {
    throw binary::LoadError(
        binary::LoadErrorKind::kBadFlags,
        util::format("replay_wal: unknown flags 0x{:x} in {}", header.flags, path.string()));
  }

  WalReplay replay;
  replay.base_sequence = header.count;
  replay.valid_bytes = kHeaderBytes;
  std::uint64_t expected_sequence = replay.base_sequence;

  std::uint64_t offset = kHeaderBytes;
  while (offset < file_size) {
    if (file_size - offset < kRecordHeaderBytes) break;  // tear inside a header
    const auto kind = binary::read_pod<std::uint32_t>(in, "wal kind");
    const auto payload_size = binary::read_pod<std::uint32_t>(in, "wal payload size");
    const auto sequence = binary::read_pod<std::uint64_t>(in, "wal sequence");
    const auto checksum = binary::read_pod<std::uint64_t>(in, "wal checksum");
    if (payload_size > kMaxPayloadBytes ||
        file_size - offset - kRecordHeaderBytes < payload_size) {
      break;  // size field torn, or payload cut short — either way, the tail
    }
    std::string payload(payload_size, '\0');
    in.read(payload.data(), static_cast<std::streamsize>(payload_size));
    if (!in) break;
    if (record_checksum(kind, sequence, payload) != checksum) break;  // torn record
    // The checksum passed, so these bytes were genuinely committed — a
    // sequence gap here is corruption, not a tear, and redo past it would
    // diverge from the pre-crash run.
    if (sequence != expected_sequence + 1) {
      throw binary::LoadError(
          binary::LoadErrorKind::kBadSequence,
          util::format("replay_wal: sequence {} after {} in {}", sequence,
                       expected_sequence, path.string()));
    }
    expected_sequence = sequence;
    offset += kRecordHeaderBytes + payload_size;
    replay.valid_bytes = offset;
    replay.records.push_back(WalRecord{kind, sequence, std::move(payload)});
  }
  replay.torn_tail = replay.valid_bytes != file_size;
  return replay;
}

std::string encode_event_batch(const EventLog& batch) {
  std::string out;
  const std::uint64_t rows = batch.size();
  out.reserve(4 + 8 + rows * 17);
  append_pod(out, static_cast<std::uint32_t>(batch.columns()));
  append_pod(out, rows);
  const auto append_span = [&out](auto span) {
    out.append(reinterpret_cast<const char*>(span.data()),
               span.size_bytes());
  };
  append_span(batch.user());
  append_span(batch.app());
  append_span(batch.day());
  append_span(batch.ordinal());
  append_span(batch.rating());
  return out;
}

EventLog decode_event_batch(std::string_view payload) {
  constexpr std::uint32_t kKnownColumns = static_cast<std::uint32_t>(Columns::kDay) |
                                          static_cast<std::uint32_t>(Columns::kOrdinal) |
                                          static_cast<std::uint32_t>(Columns::kRating);
  if (payload.size() < 4 + 8) {
    throw binary::LoadError(binary::LoadErrorKind::kTruncated,
                            "wal batch: payload shorter than its header");
  }
  std::uint32_t mask = 0;
  std::uint64_t rows = 0;
  std::memcpy(&mask, payload.data(), sizeof mask);
  std::memcpy(&rows, payload.data() + sizeof mask, sizeof rows);
  if ((mask & ~kKnownColumns) != 0) {
    throw binary::LoadError(binary::LoadErrorKind::kBadFlags,
                            util::format("wal batch: unknown column flags 0x{:x}", mask));
  }
  const auto columns = static_cast<Columns>(mask);
  std::uint64_t bytes_per_row = 2 * sizeof(std::uint32_t);
  if (has_column(columns, Columns::kDay)) bytes_per_row += sizeof(std::int32_t);
  if (has_column(columns, Columns::kOrdinal)) bytes_per_row += sizeof(std::uint32_t);
  if (has_column(columns, Columns::kRating)) bytes_per_row += sizeof(std::uint8_t);
  const std::uint64_t body = payload.size() - (4 + 8);
  if (rows > kMaxPayloadBytes || body != rows * bytes_per_row) {
    throw binary::LoadError(
        binary::LoadErrorKind::kLengthMismatch,
        util::format("wal batch: {} body bytes for {} rows", body, rows));
  }

  const char* cursor = payload.data() + 4 + 8;
  const auto take = [&cursor, rows](auto& column, bool present) {
    using T = typename std::remove_reference_t<decltype(column)>::value_type;
    if (!present) return;
    column.resize(static_cast<std::size_t>(rows));
    std::memcpy(column.data(), cursor, static_cast<std::size_t>(rows) * sizeof(T));
    cursor += rows * sizeof(T);
  };
  std::vector<std::uint32_t> user;
  std::vector<std::uint32_t> app;
  std::vector<std::int32_t> day;
  std::vector<std::uint32_t> ordinal;
  std::vector<std::uint8_t> rating;
  take(user, true);
  take(app, true);
  take(day, has_column(columns, Columns::kDay));
  take(ordinal, has_column(columns, Columns::kOrdinal));
  take(rating, has_column(columns, Columns::kRating));
  return EventLog::from_columns(columns, std::move(user), std::move(app), std::move(day),
                                std::move(ordinal), std::move(rating));
}

}  // namespace appstore::events
