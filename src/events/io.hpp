// EventLog persistence: a versioned raw-column binary format (the fast
// path — one fread per column) and a CSV format (the interchange path).
//
// Binary layout (see events/binary.hpp for the header):
//
//   magic "AEVL" | endian tag | version 1 | flags = column mask |
//   u64 count | user u32[count] | app u32[count] | [day i32[count]] |
//   [ordinal u32[count]] | [rating u8[count]]
//
// CSV layout: header row "user,app[,day][,ordinal][,rating]" — optional
// columns appear only when the log carries them, and the loader rebuilds
// the column mask from the header row.
//
// Neither format persists the CSR index; it is a pure function of the
// columns and is rebuilt on demand (build_index).
//
// Robustness: save_binary stages output in "<path>.tmp" and renames on
// success (util::AtomicFile), so a crash mid-write never tears the file
// under the final name. load_binary validates magic, endianness, version,
// flag bits, and the exact payload length before allocating, and reports
// every defect as a typed binary::LoadError. IoOptions carries an optional
// chaos::FaultInjector so the robustness harness can simulate crashes at
// the write seam.
#pragma once

#include <filesystem>

#include "events/event_log.hpp"

namespace appstore::chaos {
class FaultInjector;
}  // namespace appstore::chaos

namespace appstore::events {

/// Knobs shared by the persistence entry points.
struct IoOptions {
  /// Optional chaos seam: writers consult it at FaultSite::kFileWrite (keyed
  /// by the destination path) and abort mid-write on kTornWrite. The partial
  /// bytes are confined to the staging file, which is cleaned up on unwind;
  /// the final path is untouched. nullptr disables the seam.
  chaos::FaultInjector* faults = nullptr;
};

/// Validation bounds applied by the binary loaders after decoding.
struct LoadLimits {
  /// Exclusive upper bound on user-column values. Callers that know the
  /// user universe the log belongs to (a store's user count, a live log's
  /// max_users) should pass it: a structurally valid file whose user ids
  /// exceed the bound — one corrupted payload byte is enough — then fails
  /// here as a typed LoadError{kUserRange} instead of blowing up later
  /// inside build_index() or a live-store append. Default: no bound.
  std::uint64_t user_bound = std::uint64_t{1} << 32;

  /// Exclusive upper bound on app-column values, same rationale as
  /// user_bound. Enforced uniformly by the AEVL, ALSG, and AOBS loaders
  /// (typed LoadError{kAppRange}). Default: no bound.
  std::uint64_t app_bound = std::uint64_t{1} << 32;

  /// Magnitude window on day-column values: days outside
  /// [-day_bound, day_bound) are rejected (typed LoadError{kDayRange}).
  /// Small negative days are legitimate — events dated relative to a crawl
  /// origin — so the bound is symmetric. Default: no bound (full int32).
  std::int64_t day_bound = std::int64_t{1} << 31;
};

/// Writes `log` to `path` in the binary format via write-temp-then-rename.
/// Throws std::runtime_error on I/O failure, chaos::InjectedFault on an
/// injected torn write (the previous file at `path`, if any, is untouched).
void save_binary(const EventLog& log, const std::filesystem::path& path,
                 const IoOptions& options = {});

/// Reads a log previously written by save_binary. Throws binary::LoadError
/// (a std::runtime_error) on a missing file or malformed/foreign-endian
/// content, or a user id at or above `limits.user_bound`; never crashes or
/// silently truncates on corrupted input.
[[nodiscard]] EventLog load_binary(const std::filesystem::path& path,
                                   const LoadLimits& limits = {});

/// Writes `log` to `path` as CSV (also write-temp-then-rename).
void save_csv(const EventLog& log, const std::filesystem::path& path,
              const IoOptions& options = {});

/// Reads a log previously written by save_csv.
[[nodiscard]] EventLog load_csv(const std::filesystem::path& path);

}  // namespace appstore::events
