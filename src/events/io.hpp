// EventLog persistence: a versioned raw-column binary format (the fast
// path — one fread per column) and a CSV format (the interchange path).
//
// Binary layout (see events/binary.hpp for the header):
//
//   magic "AEVL" | endian tag | version 1 | flags = column mask |
//   u64 count | user u32[count] | app u32[count] | [day i32[count]] |
//   [ordinal u32[count]] | [rating u8[count]]
//
// CSV layout: header row "user,app[,day][,ordinal][,rating]" — optional
// columns appear only when the log carries them, and the loader rebuilds
// the column mask from the header row.
//
// Neither format persists the CSR index; it is a pure function of the
// columns and is rebuilt on demand (build_index).
#pragma once

#include <filesystem>

#include "events/event_log.hpp"

namespace appstore::events {

/// Writes `log` to `path` in the binary format. Throws std::runtime_error
/// on I/O failure.
void save_binary(const EventLog& log, const std::filesystem::path& path);

/// Reads a log previously written by save_binary. Throws std::runtime_error
/// on a missing file or malformed/foreign-endian content.
[[nodiscard]] EventLog load_binary(const std::filesystem::path& path);

/// Writes `log` to `path` as CSV.
void save_csv(const EventLog& log, const std::filesystem::path& path);

/// Reads a log previously written by save_csv.
[[nodiscard]] EventLog load_csv(const std::filesystem::path& path);

}  // namespace appstore::events
