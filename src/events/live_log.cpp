#include "events/live_log.hpp"

#include <limits>
#include <stdexcept>
#include <thread>

#include "par/parallel.hpp"
#include "util/format.hpp"

namespace appstore::events {

LiveEventLog::LiveEventLog(Columns columns, const LiveOptions& options)
    : columns_(columns),
      arena_(columns, options.max_rows, options.segment_rows, options.backing_file,
             options.metrics),
      index_(options.max_users),
      metrics_(options.metrics) {
  // Rows are referenced as u32 everywhere downstream (ordinals, stream row
  // lists, the query engine's row sets) — same ceiling as the batch log.
  if (options.max_rows > std::numeric_limits<std::uint32_t>::max()) {
    throw std::invalid_argument("LiveEventLog: max_rows must fit in 32 bits");
  }
}

std::uint64_t LiveEventLog::claim(std::uint64_t n) {
  std::uint64_t cur = reserved_.load(std::memory_order_relaxed);
  do {
    if (cur + n > arena_.max_rows()) {
      throw std::length_error(util::format(
          "LiveEventLog: capacity {} rows exhausted (claiming {})", arena_.max_rows(), n));
    }
  } while (!reserved_.compare_exchange_weak(cur, cur + n, std::memory_order_relaxed,
                                            std::memory_order_relaxed));
  return cur;
}

void LiveEventLog::publish(std::uint64_t first, std::uint64_t n) {
  // Chained publication: rows become visible strictly in claim order, so
  // the frontier always delimits a dense prefix. The acquire on the wait
  // load carries the previous writer's release forward — that transitivity
  // is what lets a reader acquire one frontier value and see EVERY earlier
  // writer's plain column stores.
  std::uint64_t spins = 0;
  for (;;) {
    const std::uint64_t cur = frontier_.load(std::memory_order_acquire);
    if (cur == first) break;
    if (++spins % 64 == 0) std::this_thread::yield();
  }
  frontier_.store(first + n, std::memory_order_release);
}

void LiveEventLog::write_row(std::uint64_t row, std::uint32_t user, std::uint32_t app,
                             std::int32_t day, std::uint8_t rating) {
  // Plain stores: the row is claimed by exactly one writer and no reader
  // touches it until the frontier covers it (release/acquire edge there).
  arena_.user()[row] = user;
  arena_.app()[row] = app;
  if (arena_.day() != nullptr) arena_.day()[row] = day;
  if (arena_.ordinal() != nullptr) {
    arena_.ordinal()[row] = static_cast<std::uint32_t>(row);
  }
  if (arena_.rating() != nullptr) arena_.rating()[row] = rating;
  // The posting's ordinal half is the row even when the ordinal column is
  // disabled: that reproduces the batch sort's append-order tie-break.
  index_.append(user, posting_key(arena_.day() != nullptr ? day : 0,
                                  static_cast<std::uint32_t>(row)),
                row);
}

std::uint64_t LiveEventLog::append(std::uint32_t user, std::uint32_t app, std::int32_t day,
                                   std::uint8_t rating) {
  // Every reject happens before claim(): an abandoned claim would wedge the
  // publication chain for all later writers.
  if (user >= index_.max_users()) {
    throw std::out_of_range(util::format("LiveEventLog::append: user {} >= max_users {}",
                                         user, index_.max_users()));
  }
  if (day != 0 && !has_column(columns_, Columns::kDay)) {
    throw std::logic_error("LiveEventLog::append: day column is disabled");
  }
  if (rating != 0 && !has_column(columns_, Columns::kRating)) {
    throw std::logic_error("LiveEventLog::append: rating column is disabled");
  }
  const std::uint64_t row = claim(1);
  arena_.commit_rows(row + 1);
  write_row(row, user, app, day, rating);
  publish(row, 1);
  if (metrics_ != nullptr) metrics_->counter("live_events_appended_total").inc();
  return row;
}

std::uint64_t LiveEventLog::append_batch(const EventLog& batch, const IngestOptions& options) {
  const auto mask = [](Columns columns) {
    return static_cast<std::uint8_t>(columns) &
           ~static_cast<std::uint8_t>(Columns::kOrdinal);
  };
  if (mask(batch.columns()) != mask(columns_)) {
    throw std::invalid_argument("LiveEventLog::append_batch: column masks differ");
  }
  const std::uint64_t n = batch.size();
  if (n == 0) return frontier();

  // Validate everything before claiming (see append()). A batch may carry
  // an ordinal column for backward compatibility, but the store assigns
  // ordinals (= row ids); provided values are only checked to already BE
  // the rows this batch will occupy, never adopted.
  for (const std::uint32_t user : batch.user()) {
    if (user >= index_.max_users()) {
      throw std::invalid_argument(util::format(
          "LiveEventLog::append_batch: user {} >= max_users {}", user, index_.max_users()));
    }
  }
  if (!batch.ordinal().empty()) {
    const std::uint64_t next = reserved_.load(std::memory_order_relaxed);
    const std::span<const std::uint32_t> ordinals = batch.ordinal();
    for (std::uint64_t i = 0; i < n; ++i) {
      if (ordinals[i] != next + i) {
        throw std::invalid_argument(util::format(
            "LiveEventLog::append_batch: ordinal {} at batch row {} breaks the row "
            "sequence (expected {})",
            ordinals[i], i, next + i));
      }
    }
  }

  const std::uint64_t base = claim(n);
  arena_.commit_rows(base + n);

  const std::span<const std::uint32_t> users = batch.user();
  const std::span<const std::uint32_t> apps = batch.app();
  const std::span<const std::int32_t> days = batch.day();
  const std::span<const std::uint8_t> ratings = batch.rating();
  const auto write_one = [&](std::uint64_t i) {
    write_row(base + i, users[i], apps[i], days.empty() ? 0 : days[i],
              ratings.empty() ? std::uint8_t{0} : ratings[i]);
  };
  if (options.threads == 1 || n < 2) {
    for (std::uint64_t i = 0; i < n; ++i) write_one(i);
  } else {
    // Shard-wise parallel fill of the claimed block. Column cells and
    // ordinals depend only on (base + i), and postings land in the tiered
    // index sorted by key later — so the published state is bit-identical
    // to the serial loop at any thread count.
    const par::Options par_options{.threads = options.threads, .metrics = metrics_};
    par::parallel_for(n, par_options, write_one);
  }

  publish(base, n);
  if (metrics_ != nullptr) metrics_->counter("live_events_appended_total").inc(n);
  return base;
}

Event LiveEventLog::row(std::uint64_t i) const noexcept {
  Event event;
  event.user = arena_.user()[i];
  event.app = arena_.app()[i];
  event.day = arena_.day() != nullptr ? arena_.day()[i] : 0;
  event.ordinal = arena_.ordinal() != nullptr ? arena_.ordinal()[i]
                                              : static_cast<std::uint32_t>(i);
  event.rating = arena_.rating() != nullptr ? arena_.rating()[i] : std::uint8_t{0};
  return event;
}

// --- FrontierSnapshot --------------------------------------------------------

Columns FrontierSnapshot::columns() const noexcept {
  return log_ != nullptr ? log_->columns() : Columns::kNone;
}

std::span<const std::uint32_t> FrontierSnapshot::user() const noexcept {
  if (log_ == nullptr) return {};
  return {log_->arena_.user(), static_cast<std::size_t>(rows_)};
}

std::span<const std::uint32_t> FrontierSnapshot::app() const noexcept {
  if (log_ == nullptr) return {};
  return {log_->arena_.app(), static_cast<std::size_t>(rows_)};
}

std::span<const std::int32_t> FrontierSnapshot::day() const noexcept {
  if (log_ == nullptr || log_->arena_.day() == nullptr) return {};
  return {log_->arena_.day(), static_cast<std::size_t>(rows_)};
}

std::span<const std::uint32_t> FrontierSnapshot::ordinal() const noexcept {
  if (log_ == nullptr || log_->arena_.ordinal() == nullptr) return {};
  return {log_->arena_.ordinal(), static_cast<std::size_t>(rows_)};
}

std::span<const std::uint8_t> FrontierSnapshot::rating() const noexcept {
  if (log_ == nullptr || log_->arena_.rating() == nullptr) return {};
  return {log_->arena_.rating(), static_cast<std::size_t>(rows_)};
}

Event FrontierSnapshot::row(std::size_t i) const { return log_->row(i); }

std::uint32_t FrontierSnapshot::user_count() const noexcept {
  return log_ != nullptr ? log_->max_users() : 0;
}

LiveStreamView FrontierSnapshot::stream(std::uint32_t user) const {
  if (log_ == nullptr || user >= log_->max_users()) {
    throw std::out_of_range(
        util::format("FrontierSnapshot::stream: user {} >= user count {}", user,
                     log_ == nullptr ? 0 : log_->max_users()));
  }
  std::vector<Posting> postings;
  log_->index_.collect(user, rows_, postings);
  std::vector<std::uint32_t> rows;
  rows.reserve(postings.size());
  for (const Posting& posting : postings) {
    rows.push_back(static_cast<std::uint32_t>(posting.row));
  }
  return LiveStreamView(log_, std::move(rows));
}

std::uint64_t FrontierSnapshot::stream_size(std::uint32_t user) const {
  if (log_ == nullptr || user >= log_->max_users()) {
    throw std::out_of_range(
        util::format("FrontierSnapshot::stream_size: user {} >= user count {}", user,
                     log_ == nullptr ? 0 : log_->max_users()));
  }
  return log_->index_.visible_count(user, rows_);
}

EventLog FrontierSnapshot::to_event_log() const {
  const Columns columns = this->columns();
  return EventLog::from_columns(
      columns, std::vector<std::uint32_t>(user().begin(), user().end()),
      std::vector<std::uint32_t>(app().begin(), app().end()),
      std::vector<std::int32_t>(day().begin(), day().end()),
      std::vector<std::uint32_t>(ordinal().begin(), ordinal().end()),
      std::vector<std::uint8_t>(rating().begin(), rating().end()));
}

}  // namespace appstore::events
