#include "events/tiered_index.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "util/format.hpp"

namespace appstore::events {

TieredUserIndex::TieredUserIndex(std::uint32_t max_users)
    : max_users_(max_users),
      top_((static_cast<std::size_t>(max_users) + kIndexletUsers - 1) / kIndexletUsers) {
  if (max_users == 0) {
    throw std::invalid_argument("TieredUserIndex: max_users must be nonzero");
  }
  bytes_.store(top_.size() * sizeof(top_[0]), std::memory_order_relaxed);
}

TieredUserIndex::~TieredUserIndex() {
  for (std::atomic<Indexlet*>& slot : top_) {
    Indexlet* indexlet = slot.load(std::memory_order_relaxed);
    if (indexlet == nullptr) continue;
    for (UserEntry& entry : indexlet->users) {
      for (std::atomic<PostingSlot*>& chunk : entry.chunks) {
        delete[] chunk.load(std::memory_order_relaxed);
      }
    }
    delete indexlet;
  }
}

TieredUserIndex::UserEntry* TieredUserIndex::find_entry(std::uint32_t user) const {
  if (user >= max_users_) {
    throw std::out_of_range(
        util::format("TieredUserIndex: user {} >= max_users {}", user, max_users_));
  }
  Indexlet* indexlet = top_[user >> kIndexletBits].load(std::memory_order_acquire);
  if (indexlet == nullptr) return nullptr;
  return &indexlet->users[user & (kIndexletUsers - 1)];
}

TieredUserIndex::UserEntry& TieredUserIndex::ensure_entry(std::uint32_t user) {
  if (user >= max_users_) {
    throw std::out_of_range(
        util::format("TieredUserIndex: user {} >= max_users {}", user, max_users_));
  }
  std::atomic<Indexlet*>& slot = top_[user >> kIndexletBits];
  Indexlet* indexlet = slot.load(std::memory_order_acquire);
  if (indexlet == nullptr) {
    // First touch of this 4096-user block: race to install a fresh indexlet.
    auto* fresh = new Indexlet();
    if (slot.compare_exchange_strong(indexlet, fresh, std::memory_order_acq_rel,
                                     std::memory_order_acquire)) {
      indexlet = fresh;
      bytes_.fetch_add(sizeof(Indexlet), std::memory_order_relaxed);
    } else {
      delete fresh;  // lost the race; `indexlet` holds the winner
    }
  }
  return indexlet->users[user & (kIndexletUsers - 1)];
}

TieredUserIndex::PostingSlot* TieredUserIndex::ensure_chunk(UserEntry& entry,
                                                            std::uint32_t tier) {
  std::atomic<PostingSlot*>& slot = entry.chunks[tier];
  PostingSlot* chunk = slot.load(std::memory_order_acquire);
  if (chunk == nullptr) {
    auto* fresh = new PostingSlot[chunk_capacity(tier)];
    if (slot.compare_exchange_strong(chunk, fresh, std::memory_order_acq_rel,
                                     std::memory_order_acquire)) {
      chunk = fresh;
      bytes_.fetch_add(chunk_capacity(tier) * sizeof(PostingSlot),
                       std::memory_order_relaxed);
    } else {
      delete[] fresh;
    }
  }
  return chunk;
}

void TieredUserIndex::append(std::uint32_t user, std::uint64_t key, std::uint64_t row) {
  UserEntry& entry = ensure_entry(user);
  // fetch_add claims a unique posting index; the tier geometry maps it to a
  // chunk + slot that no other writer can claim.
  const std::uint64_t i = entry.count.fetch_add(1, std::memory_order_relaxed);
  if (i >= kMaxPostings) {
    throw std::length_error(
        util::format("TieredUserIndex: user {} exceeded {} postings", user, kMaxPostings));
  }
  const auto tier =
      static_cast<std::uint32_t>(std::bit_width(i / kFirstChunkPostings + 1) - 1);
  PostingSlot* chunk = ensure_chunk(entry, tier);
  PostingSlot& posting = chunk[i - chunk_start(tier)];
  // Relaxed stores: visibility is the frontier's job (release chain in
  // LiveEventLog::publish). Nonzero row_plus_1 is still not "published" —
  // readers ignore it until their frontier covers `row`.
  posting.key.store(key, std::memory_order_relaxed);
  posting.row_plus_1.store(row + 1, std::memory_order_relaxed);
}

void TieredUserIndex::collect(std::uint32_t user, std::uint64_t frontier,
                              std::vector<Posting>& out) const {
  const UserEntry* entry = find_entry(user);
  if (entry == nullptr) return;
  const std::uint64_t count =
      std::min<std::uint64_t>(entry->count.load(std::memory_order_acquire), kMaxPostings);
  const std::size_t first_out = out.size();
  for (std::uint32_t tier = 0; tier < kNumTiers && chunk_start(tier) < count; ++tier) {
    const PostingSlot* chunk = entry->chunks[tier].load(std::memory_order_acquire);
    // A null chunk only holds postings some writer claimed but has not made
    // reachable yet — all of them are past any frontier we could have been
    // given, so skipping the tier is exact, and later tiers may still hold
    // visible postings (posting order is claim order, not row order).
    if (chunk == nullptr) continue;
    const std::uint64_t end = std::min(count - chunk_start(tier), chunk_capacity(tier));
    for (std::uint64_t slot = 0; slot < end; ++slot) {
      const std::uint64_t row_plus_1 = chunk[slot].row_plus_1.load(std::memory_order_relaxed);
      if (row_plus_1 == 0 || row_plus_1 - 1 >= frontier) continue;
      out.push_back(Posting{chunk[slot].key.load(std::memory_order_relaxed), row_plus_1 - 1});
    }
  }
  std::sort(out.begin() + static_cast<std::ptrdiff_t>(first_out), out.end());
}

std::uint64_t TieredUserIndex::visible_count(std::uint32_t user, std::uint64_t frontier) const {
  const UserEntry* entry = find_entry(user);
  if (entry == nullptr) return 0;
  const std::uint64_t count =
      std::min<std::uint64_t>(entry->count.load(std::memory_order_acquire), kMaxPostings);
  std::uint64_t visible = 0;
  for (std::uint32_t tier = 0; tier < kNumTiers && chunk_start(tier) < count; ++tier) {
    const PostingSlot* chunk = entry->chunks[tier].load(std::memory_order_acquire);
    if (chunk == nullptr) continue;
    const std::uint64_t end = std::min(count - chunk_start(tier), chunk_capacity(tier));
    for (std::uint64_t slot = 0; slot < end; ++slot) {
      const std::uint64_t row_plus_1 = chunk[slot].row_plus_1.load(std::memory_order_relaxed);
      if (row_plus_1 != 0 && row_plus_1 - 1 < frontier) ++visible;
    }
  }
  return visible;
}

}  // namespace appstore::events
