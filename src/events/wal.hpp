// Write-ahead log: the sequenced, checksummed redo stream of the durability
// spine (docs/durability.md).
//
// Every mutation the store must not lose is appended here and fsynced
// *before* the in-memory structures (LiveEventLog frontiers, entity tables)
// make it visible to readers — so after any crash, memory is a prefix of
// the WAL and recovery is pure redo: load the newest checkpoint, replay the
// WAL tail.
//
// File layout (header shared with events/binary.hpp):
//
//   magic "AWAL" | endian tag | version 1 | flags 0 |
//   u64 count = base sequence (last record already in the checkpoint) |
//   records...
//
// Each record:
//
//   u32 kind | u32 payload size | u64 sequence | u64 fnv1a64 checksum |
//   payload bytes
//
// The checksum covers kind, sequence, and payload, so replay can tell a
// committed record from a torn tail byte-exactly. Sequences are dense:
// record i carries base + 1 + i. `kind` is opaque at this layer — the
// market layer defines the operation vocabulary (market::WalOp) and its
// payload encodings; this file only knows how to frame, commit, and replay
// records, plus encode/decode for the one payload the events layer owns
// (an EventLog batch).
//
// Commit protocol (group commit): append() only buffers; commit() writes
// every buffered record with one write(2) and one fsync(2). A crash between
// append and commit loses exactly the uncommitted records — which were
// never applied to memory, so nothing readers observed is lost. Torn-tail
// tolerance follows the classic WAL rule: replay stops at the first record
// that fails framing or checksum validation (that is where the crash hit);
// structural corruption *before* the tail still throws a typed LoadError.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "events/event_log.hpp"

namespace appstore::chaos {
class FaultInjector;
class KillAtOffset;
}  // namespace appstore::chaos

namespace appstore::events {

/// One decoded WAL record. `kind` is the layer-above operation tag.
struct WalRecord {
  std::uint32_t kind = 0;
  std::uint64_t sequence = 0;
  std::string payload;
};

/// Everything replay_wal recovered from one WAL file.
struct WalReplay {
  /// Sequence already covered by the checkpoint this WAL extends; records
  /// carry base_sequence + 1, + 2, ...
  std::uint64_t base_sequence = 0;
  /// Committed records, in sequence order.
  std::vector<WalRecord> records;
  /// True when the file ended inside a record (crash mid-commit). The torn
  /// bytes are ignored; `valid_bytes` marks where they start.
  bool torn_tail = false;
  /// Offset of the first byte past the last valid record — the length to
  /// truncate to before appending again (WalWriter::resume does this).
  std::uint64_t valid_bytes = 0;

  /// Sequence of the last committed record (base_sequence when empty).
  [[nodiscard]] std::uint64_t last_sequence() const noexcept {
    return records.empty() ? base_sequence : records.back().sequence;
  }
};

/// Knobs for the WAL writer, including its crash seams.
struct WalOptions {
  /// Consulted once per commit at FaultSite::kFileWrite (key = WAL path);
  /// a kTornWrite decision flushes half the group and throws InjectedFault.
  chaos::FaultInjector* faults = nullptr;
  /// Byte-exact crash seam: every write is filtered through it, so a fuzz
  /// harness can kill the "process" at any offset, including mid-record and
  /// mid-header. Fires InjectedFault once the armed offset is crossed.
  chaos::KillAtOffset* kill = nullptr;
  /// fsync(2) after each commit group. Leave on: turning it off voids the
  /// crash-consistency contract (only benches measuring pure CPU cost may).
  bool fsync_on_commit = true;
};

/// Appender side of the WAL. Single writer per file (the DurableStore
/// ingest lock provides this); not thread-safe.
class WalWriter {
 public:
  /// Starts a fresh WAL at `path` whose records begin at
  /// `base_sequence + 1`. Truncates anything already there (the previous
  /// log is dead once its checkpoint landed). Writes and syncs the header.
  static WalWriter create(const std::filesystem::path& path, std::uint64_t base_sequence,
                          const WalOptions& options = {});

  /// Reopens an existing WAL for appending after `replay` consumed it:
  /// drops any torn tail (truncate to replay.valid_bytes) and continues the
  /// sequence from replay.last_sequence().
  static WalWriter resume(const std::filesystem::path& path, const WalReplay& replay,
                          const WalOptions& options = {});

  WalWriter(WalWriter&& other) noexcept;
  WalWriter& operator=(WalWriter&& other) noexcept;
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;
  ~WalWriter();

  /// Frames one record into the commit group and returns its sequence.
  /// Nothing reaches the file until commit().
  std::uint64_t append(std::uint32_t kind, std::string_view payload);

  /// Writes the buffered group and makes it durable (one write + one
  /// fsync). No-op on an empty group. Throws chaos::InjectedFault at an
  /// armed crash seam, std::runtime_error on real I/O failure.
  void commit();

  /// Syncs and closes the file descriptor. Further appends throw. Called by
  /// the destructor (which swallows errors) — call explicitly to observe
  /// failures. Buffered-but-uncommitted records are discarded, mirroring
  /// what a crash would do.
  void close();

  [[nodiscard]] std::uint64_t base_sequence() const noexcept { return base_sequence_; }
  /// Sequence of the last *appended* record (committed or still buffered).
  [[nodiscard]] std::uint64_t next_sequence() const noexcept { return next_sequence_; }
  /// Sequence of the last *durable* (committed) record.
  [[nodiscard]] std::uint64_t committed_sequence() const noexcept {
    return committed_sequence_;
  }
  /// Records waiting in the current commit group.
  [[nodiscard]] std::size_t pending_records() const noexcept { return pending_records_; }
  [[nodiscard]] const std::filesystem::path& path() const noexcept { return path_; }

 private:
  WalWriter(std::filesystem::path path, int fd, std::uint64_t base_sequence,
            std::uint64_t next_sequence, WalOptions options);

  /// Writes `data` through the kill seam, fsyncs what landed if the seam
  /// fired, and throws. Plain full write otherwise.
  void write_guarded(const char* data, std::size_t size);
  void sync();

  std::filesystem::path path_;
  int fd_ = -1;
  std::uint64_t base_sequence_ = 0;
  std::uint64_t next_sequence_ = 0;       // last appended
  std::uint64_t committed_sequence_ = 0;  // last durable
  std::size_t pending_records_ = 0;
  std::string group_;  // serialized records awaiting commit()
  WalOptions options_;
};

/// Reads and validates a WAL file. Returns every committed record plus
/// torn-tail diagnostics (see WalReplay). Throws binary::LoadError for
/// structural problems that are *not* explainable as a crash tail: missing
/// file (kOpen), bad magic/endianness/version/flags, or a checksum-valid
/// record whose sequence is not the expected successor (kBadSequence —
/// genuine corruption, unsafe to replay past).
[[nodiscard]] WalReplay replay_wal(const std::filesystem::path& path);

/// Serializes an EventLog batch as a WAL payload:
///   u32 column mask | u64 rows | raw columns (user, app, [day], [ordinal],
///   [rating]), native order. The inverse of decode_event_batch.
[[nodiscard]] std::string encode_event_batch(const EventLog& batch);

/// Decodes encode_event_batch's output. Throws binary::LoadError{kTruncated,
/// kBadFlags, kLengthMismatch} on a malformed payload — replay treats that
/// as corruption, not a tear, because the record checksum already passed.
[[nodiscard]] EventLog decode_event_batch(std::string_view payload);

}  // namespace appstore::events
