#include "core/study.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "affinity/strings.hpp"
#include "events/event_log.hpp"
#include "models/stream.hpp"
#include "par/parallel.hpp"

namespace appstore::core {

EcosystemStudy::EcosystemStudy(const synth::StoreProfile& profile,
                               const synth::GeneratorConfig& config)
    : profile_(profile), config_(config), generated_(synth::generate(profile, config)) {}

double EcosystemStudy::pareto_share(double fraction) const {
  return stats::top_share(store().download_counts(), fraction);
}

std::vector<stats::ShareCurvePoint> EcosystemStudy::pareto_curve() const {
  std::vector<double> percents(100);
  std::iota(percents.begin(), percents.end(), 1.0);
  return stats::share_curve(store().download_counts(), percents);
}

stats::TruncationReport EcosystemStudy::popularity_fit(
    std::optional<market::Pricing> pricing) const {
  const std::vector<double> ranks = pricing.has_value()
                                        ? store().downloads_by_rank(*pricing)
                                        : store().downloads_by_rank();
  return stats::analyze_truncation(ranks);
}

std::vector<double> EcosystemStudy::updates_per_app(bool top_decile_only) const {
  const auto& apps = store().apps();
  std::vector<std::size_t> candidates(apps.size());
  std::iota(candidates.begin(), candidates.end(), std::size_t{0});
  if (top_decile_only) {
    std::sort(candidates.begin(), candidates.end(), [&](std::size_t a, std::size_t b) {
      return store().downloads_of(apps[a].id) > store().downloads_of(apps[b].id);
    });
    candidates.resize(std::max<std::size_t>(1, candidates.size() / 10));
  }
  std::vector<double> updates;
  updates.reserve(candidates.size());
  for (const auto index : candidates) {
    updates.push_back(static_cast<double>(apps[index].update_days.size()));
  }
  return updates;
}

std::vector<std::vector<std::uint32_t>> EcosystemStudy::category_strings() const {
  std::vector<std::uint32_t> app_category;
  app_category.reserve(store().apps().size());
  for (const auto& app : store().apps()) app_category.push_back(app.category.value);

  // Zero-copy walk over the store's CSR comment index: one UserStreamView
  // per user instead of materializing per-user event vectors.
  std::vector<std::vector<std::uint32_t>> result;
  for (std::uint32_t u = 0; u < store().user_count(); ++u) {
    const auto stream = store().comment_stream(market::UserId{u});
    if (stream.empty()) continue;
    const auto apps = affinity::app_string(stream);
    if (apps.empty()) continue;
    result.push_back(affinity::category_string(apps, app_category));
  }
  return result;
}

double EcosystemStudy::random_walk_affinity(std::size_t depth) const {
  const auto counts32 = store().apps_per_category();
  std::vector<std::uint64_t> counts(counts32.begin(), counts32.end());
  return affinity::random_walk_affinity(counts, depth);
}

fit::FitResult EcosystemStudy::fit(models::ModelKind kind, market::Day day,
                                   const fit::SweepOptions& options) const {
  const auto measured =
      synth::downloads_by_rank_at_day(store(), day, market::Pricing::kFree);
  const auto users = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(measured.empty() ? 1.0 : measured.front()));
  return fit::fit_model(kind, measured, users,
                        static_cast<std::uint32_t>(store().categories().size()), options);
}

market::DatasetSummary EcosystemStudy::dataset_summary() const {
  const auto series = market::replay_snapshots(store(), profile_.crawl_days);
  return market::summarize(store().name(), series);
}

namespace {

/// §7 setup: 60,000 apps in 30 categories, 600,000 users, 2M downloads,
/// zr = 1.7, zc = 1.4, p = 0.9; cache sizes 1%..20% of apps.
struct Fig19Workload {
  models::ModelParams params;
  events::EventLog stream{events::Columns::kNone};  ///< columnar request stream
  std::vector<std::uint32_t> app_category;
  std::vector<std::size_t> sizes;
};

[[nodiscard]] Fig19Workload fig19_workload(models::ModelKind kind,
                                           const CacheStudyOptions& options) {
  Fig19Workload workload;
  models::ModelParams& params = workload.params;
  params.app_count = static_cast<std::uint32_t>(std::max(100.0, 60'000.0 * options.scale));
  params.user_count = static_cast<std::uint64_t>(std::max(100.0, 600'000.0 * options.scale));
  params.downloads_per_user = 2'000'000.0 / 600'000.0;
  params.zr = 1.7;
  params.zc = 1.4;
  params.p = 0.9;
  params.cluster_count = 30;

  const auto model = models::make_model(kind, params);
  util::Rng rng(options.seed);
  workload.stream = models::generate_stream_log(
      *model, rng,
      models::StreamOptions{.metrics = options.metrics, .threads = options.threads});

  workload.app_category.resize(params.app_count);
  for (std::uint32_t a = 0; a < params.app_count; ++a) {
    workload.app_category[a] = a % params.cluster_count;  // round-robin layout
  }

  for (int percent = 1; percent <= 20; ++percent) {
    workload.sizes.push_back(std::max<std::size_t>(
        1, static_cast<std::size_t>(params.app_count) * static_cast<std::size_t>(percent) /
               100));
  }
  return workload;
}

}  // namespace

CacheStudyResult cache_study(models::ModelKind kind, const CacheStudyOptions& options) {
  const Fig19Workload workload = fig19_workload(kind, options);
  CacheStudyResult result;
  result.model = kind;
  result.points =
      cache::sweep_cache_sizes(options.policy, workload.sizes, workload.stream,
                               workload.app_category, options.seed, options.metrics,
                               options.threads);
  return result;
}

CacheStudyResult cache_study(models::ModelKind kind, double scale, cache::PolicyKind policy,
                             std::uint64_t seed, obs::Registry* metrics) {
  return cache_study(kind, CacheStudyOptions{.scale = scale,
                                             .policy = policy,
                                             .seed = seed,
                                             .metrics = metrics});
}

std::vector<PolicyStudyResult> cache_policy_study(models::ModelKind kind,
                                                  std::span<const cache::PolicyKind> policies,
                                                  const CacheStudyOptions& options) {
  const Fig19Workload workload = fig19_workload(kind, options);
  const std::size_t size_count = workload.sizes.size();

  // One simulation task per policy×size cell over the shared stream (the
  // stream is generated once, not once per policy).
  const par::Options par_options{.threads = options.threads, .grain = 1,
                                 .metrics = options.metrics};
  const std::vector<double> ratios = par::parallel_map<double>(
      policies.size() * size_count, par_options, [&](std::uint64_t task) {
        const cache::PolicyKind policy = policies[static_cast<std::size_t>(task / size_count)];
        const std::size_t size = workload.sizes[static_cast<std::size_t>(task % size_count)];
        const auto instance =
            cache::make_policy(policy, size, workload.app_category, options.seed);
        return cache::simulate(*instance, workload.stream,
                               cache::SimOptions{.warm_top_n = size,
                                                 .metrics = options.metrics})
            .hit_ratio();
      });

  std::vector<PolicyStudyResult> results;
  results.reserve(policies.size());
  for (std::size_t p = 0; p < policies.size(); ++p) {
    PolicyStudyResult result;
    result.policy = policies[p];
    result.points.reserve(size_count);
    for (std::size_t s = 0; s < size_count; ++s) {
      result.points.push_back(
          cache::SweepPoint{workload.sizes[s], ratios[p * size_count + s]});
    }
    results.push_back(std::move(result));
  }
  return results;
}

}  // namespace appstore::core
