// EcosystemStudy: the high-level public API of the library.
//
// One object reproduces the paper's analysis pipeline for one appstore:
// generate (or accept) a marketplace, then query each analysis the paper
// performs — Pareto shares, power-law trunk fits, update statistics, the
// clustering-effect affinity study, model fitting, pricing/revenue analyses,
// and the cache study. Examples and benches compose these calls.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "affinity/metric.hpp"
#include "cache/sim.hpp"
#include "fit/sweep.hpp"
#include "market/snapshot.hpp"
#include "market/store.hpp"
#include "pricing/breakeven.hpp"
#include "pricing/income.hpp"
#include "pricing/strategies.hpp"
#include "stats/pareto.hpp"
#include "stats/powerlaw.hpp"
#include "synth/generator.hpp"
#include "synth/profile.hpp"

namespace appstore::core {

class EcosystemStudy {
 public:
  /// Generates a synthetic marketplace for `profile` with `config`.
  EcosystemStudy(const synth::StoreProfile& profile, const synth::GeneratorConfig& config);

  [[nodiscard]] const market::AppStore& store() const noexcept { return *generated_.store; }
  [[nodiscard]] const synth::GeneratedStore& generated() const noexcept { return generated_; }
  [[nodiscard]] const synth::StoreProfile& profile() const noexcept { return profile_; }

  // ---- §3: popularity ------------------------------------------------------

  /// Share of downloads owned by the top `fraction` of apps (Fig. 2).
  [[nodiscard]] double pareto_share(double fraction) const;

  /// Full share curve at integer rank percents 1..100.
  [[nodiscard]] std::vector<stats::ShareCurvePoint> pareto_curve() const;

  /// Trunk power-law fit of the rank–download curve (Fig. 3), optionally
  /// restricted to a pricing segment (Fig. 11).
  [[nodiscard]] stats::TruncationReport popularity_fit(
      std::optional<market::Pricing> pricing = std::nullopt) const;

  /// Updates per app over the window (Fig. 4); `top_decile_only` restricts
  /// to the 10% most downloaded apps (§3.2).
  [[nodiscard]] std::vector<double> updates_per_app(bool top_decile_only = false) const;

  // ---- §4: clustering effect -----------------------------------------------

  /// Per-user category strings from the comment streams (requires the
  /// generator config to have enabled comments).
  [[nodiscard]] std::vector<std::vector<std::uint32_t>> category_strings() const;

  /// Eq. 4 baseline for this store's category sizes.
  [[nodiscard]] double random_walk_affinity(std::size_t depth) const;

  // ---- §5: model fitting -----------------------------------------------------

  /// Fits one model family against this store's measured curve at `day`
  /// (Fig. 8/9). Users default to the downloads of the top app (Fig. 10).
  [[nodiscard]] fit::FitResult fit(models::ModelKind kind, market::Day day,
                                   const fit::SweepOptions& options) const;

  // ---- Table 1 ---------------------------------------------------------------

  [[nodiscard]] market::DatasetSummary dataset_summary() const;

 private:
  synth::StoreProfile profile_;
  synth::GeneratorConfig config_;
  synth::GeneratedStore generated_;
};

/// Fig. 19 pipeline: generate a request stream from `kind` with the paper's
/// §7 parameters scaled by `scale`, then sweep LRU cache sizes.
struct CacheStudyResult {
  models::ModelKind model;
  std::vector<cache::SweepPoint> points;
};

/// Options for cache_study / cache_policy_study (the Options-struct API).
struct CacheStudyOptions {
  /// Fraction of the paper's 60k-app / 600k-user §7 setup.
  double scale = 0.05;
  cache::PolicyKind policy = cache::PolicyKind::kLru;
  std::uint64_t seed = 0x5eed;
  /// Receives the model-layer draw counters, the per-policy cache
  /// hit/miss/eviction families and the par_* families.
  obs::Registry* metrics = nullptr;
  /// Worker threads for stream generation and the size/policy sweeps;
  /// 0 = hardware_concurrency. Results are thread-count-invariant.
  std::size_t threads = 0;
};

[[nodiscard]] CacheStudyResult cache_study(models::ModelKind kind,
                                           const CacheStudyOptions& options);

/// Deprecated positional form; forwards to the CacheStudyOptions overload.
[[nodiscard]] CacheStudyResult cache_study(models::ModelKind kind, double scale,
                                           cache::PolicyKind policy, std::uint64_t seed,
                                           obs::Registry* metrics = nullptr);

/// Multi-policy ablation over ONE shared request stream: the stream for
/// `kind` is generated once (in parallel) and every policy×size simulation
/// runs as its own task. `options.policy` is ignored; results are returned
/// in `policies` order with identical values at every thread count.
struct PolicyStudyResult {
  cache::PolicyKind policy;
  std::vector<cache::SweepPoint> points;
};

[[nodiscard]] std::vector<PolicyStudyResult> cache_policy_study(
    models::ModelKind kind, std::span<const cache::PolicyKind> policies,
    const CacheStudyOptions& options);

}  // namespace appstore::core
