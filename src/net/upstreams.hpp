// Bounded per-upstream circuit-breaker table for the federation gateway.
//
// A gateway keeps one CircuitBreaker per upstream shard id so a failing
// shard trips open without poisoning the healthy ones. Upstream ids arrive
// from configuration *and* from dynamic membership (shards joining and
// leaving the ring), so — like TokenBucketLimiter's per-client buckets —
// the table must be bounded: without a cap, a long-enough run of
// add/remove churn grows breaker state forever. Inserting past `max_keys`
// evicts the stalest eighth of the entries (those unused longest), exactly
// the TokenBucketLimiter policy, so the hot upstream set survives and an
// evicted-then-returning shard merely starts from a closed breaker again.
//
// Entries hand out shared_ptr<CircuitBreaker>: a caller holding a breaker
// across an in-flight exchange keeps it alive even if the table evicts the
// entry mid-request.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "chaos/clock.hpp"
#include "net/breaker.hpp"

namespace appstore::net {

class UpstreamTable {
 public:
  /// Hard cap on distinct per-upstream entries (see Options::max_keys).
  static constexpr std::size_t kDefaultMaxKeys = 1024;

  struct Options {
    /// Breaker configuration stamped onto every new entry.
    CircuitBreaker::Options breaker{};
    /// Cap on tracked upstream ids; inserting past it evicts the stalest
    /// eighth. Clamped to >= 1.
    std::size_t max_keys = kDefaultMaxKeys;
    /// Staleness time source (nullptr = real time). Must outlive the table.
    chaos::Clock* clock = nullptr;
  };

  UpstreamTable() : UpstreamTable(Options{}) {}
  explicit UpstreamTable(Options options);

  /// The breaker for `id`, created closed on first use. Touches the entry's
  /// last-used stamp; may evict the stalest eighth when the cap is hit.
  [[nodiscard]] std::shared_ptr<CircuitBreaker> breaker(const std::string& id);

  /// Drops `id`'s entry now (shard left the ring); no-op when absent.
  /// Outstanding shared_ptr holders keep the breaker object alive.
  void forget(const std::string& id);

  /// Distinct upstream ids currently tracked (always <= max_keys).
  [[nodiscard]] std::size_t tracked_keys();

  /// Entries dropped by the cap or forget() since construction.
  [[nodiscard]] std::uint64_t evictions() const noexcept {
    return evictions_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] const Options& options() const noexcept { return options_; }

 private:
  struct Entry {
    std::shared_ptr<CircuitBreaker> breaker;
    std::chrono::steady_clock::time_point last_used;
  };

  /// Drops the stalest eighth of the map (at least one entry). Caller holds
  /// mutex_.
  void evict_stalest_locked();

  Options options_;
  std::atomic<std::uint64_t> evictions_{0};
  std::mutex mutex_;
  std::unordered_map<std::string, Entry> entries_;
};

}  // namespace appstore::net
