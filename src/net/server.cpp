#include "net/server.hpp"

#include <sys/socket.h>

#include <cerrno>
#include <optional>
#include <system_error>

#include "util/logging.hpp"
#include "util/strings.hpp"

namespace appstore::net {

namespace {

constexpr std::string_view kComponent = "http";

constexpr std::string_view kStatusClasses[5] = {"1xx", "2xx", "3xx", "4xx", "5xx"};

/// status -> 0..4 (status/100 - 1); out-of-range statuses count as 5xx.
[[nodiscard]] std::size_t status_class(int status) noexcept {
  const int band = status / 100 - 1;
  return band < 0 || band > 4 ? 4 : static_cast<std::size_t>(band);
}

/// The response a kHttp* fault synthesizes (no network involved).
[[nodiscard]] HttpResponse synthetic_response(chaos::FaultKind kind) {
  switch (kind) {
    case chaos::FaultKind::kHttp429: {
      HttpResponse response = HttpResponse::text(429, "injected rate limit");
      response.reason = "Too Many Requests";
      response.headers["Retry-After"] = "1";
      return response;
    }
    case chaos::FaultKind::kHttp403: {
      HttpResponse response = HttpResponse::text(403, "injected region block");
      response.reason = "Forbidden";
      return response;
    }
    default: {
      HttpResponse response = HttpResponse::text(500, "injected server error");
      response.reason = "Internal Server Error";
      return response;
    }
  }
}

/// Connect-site seam shared by both clients: kConnectRefused fails like a
/// closed port, kLatency delays the handshake.
void apply_connect_fault(const ClientOptions& options, const std::string& host,
                         std::uint16_t port) {
  if (options.faults == nullptr) return;
  const chaos::Fault fault = options.faults->next(
      chaos::FaultSite::kConnect, host + ":" + std::to_string(port));
  if (fault.kind == chaos::FaultKind::kConnectRefused) {
    throw std::system_error(ECONNREFUSED, std::generic_category(),
                            "injected connect refusal to " + host);
  }
  if (fault.kind == chaos::FaultKind::kLatency) {
    chaos::sleep_or_real(options.clock, fault.latency);
  }
}

/// Exchange-site seam shared by both clients, decided before any network
/// work. Returns a synthetic response for kHttp* faults, throws for
/// kConnectionReset (after running `on_reset`, e.g. dropping a persistent
/// connection), sleeps for kLatency, and returns nullopt to proceed.
template <typename OnReset>
[[nodiscard]] std::optional<HttpResponse> apply_exchange_fault(
    const ClientOptions& options, const std::string& target, OnReset&& on_reset) {
  if (options.faults == nullptr) return std::nullopt;
  const chaos::Fault fault = options.faults->next(chaos::FaultSite::kExchange, target);
  switch (fault.kind) {
    case chaos::FaultKind::kConnectionReset:
      on_reset();
      throw std::system_error(ECONNRESET, std::generic_category(),
                              "injected connection reset on " + target);
    case chaos::FaultKind::kLatency:
      chaos::sleep_or_real(options.clock, fault.latency);
      return std::nullopt;
    case chaos::FaultKind::kHttp429:
    case chaos::FaultKind::kHttp403:
    case chaos::FaultKind::kHttp500:
      return synthetic_response(fault.kind);
    default:
      return std::nullopt;
  }
}

}  // namespace

HttpServer::HttpServer(ServerOptions options, Handler handler)
    : listener_(options.port), handler_(std::move(handler)), options_(options) {
  if (options_.metrics != nullptr) {
    obs::Registry& registry = *options_.metrics;
    registry.describe("http_requests_total", "Responses by status class");
    registry.describe("http_request_seconds", "Handler + write latency by status class");
    registry.describe("http_accepted_total", "Accepted connections");
    registry.describe("http_shed_total", "Connections refused with 503 (load shedding)");
    registry.describe("http_active_connections", "Connections currently being served");
    for (std::size_t i = 0; i < 5; ++i) {
      metrics_.requests_by_class[i] = &registry.counter("http_requests_total", kStatusClasses[i]);
      metrics_.latency_by_class[i] =
          &registry.histogram("http_request_seconds", kStatusClasses[i]);
    }
    metrics_.accepted = &registry.counter("http_accepted_total");
    metrics_.shed = &registry.counter("http_shed_total");
    metrics_.active = &registry.gauge("http_active_connections");
  }
  acceptor_ = std::thread([this] { accept_loop(); });
  util::log_info(kComponent, "listening on 127.0.0.1:{} (max {} connections)",
                 listener_.port(), options_.max_connections);
}

HttpServer::~HttpServer() { stop(); }

void HttpServer::stop() {
  if (!running_.exchange(false)) return;
  if (acceptor_.joinable()) acceptor_.join();
  listener_.close();
  const std::lock_guard lock(connections_mutex_);
  for (auto& connection : connections_) {
    // Unblock any thread parked in recv() on a keep-alive connection.
    const int fd = connection->fd.load(std::memory_order_acquire);
    if (fd >= 0) (void)::shutdown(fd, SHUT_RDWR);
  }
  for (auto& connection : connections_) {
    if (connection->thread.joinable()) connection->thread.join();
  }
  connections_.clear();
}

void HttpServer::reap_finished() {
  const std::lock_guard lock(connections_mutex_);
  for (auto it = connections_.begin(); it != connections_.end();) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void HttpServer::shed_connection(TcpStream stream) {
  // Load shedding: tell the client explicitly rather than slamming the
  // connection shut — a bare close looks like a transport failure and
  // makes well-behaved clients retry immediately; a 503 lets them back
  // off. Best-effort: a client that already hung up just loses the write.
  ++connections_shed_;
  if (metrics_.shed != nullptr) metrics_.shed->inc();
  try {
    stream.set_timeout(std::chrono::milliseconds(250));
    HttpResponse response = HttpResponse::text(503, "server busy");
    response.reason = "Service Unavailable";
    response.headers["Connection"] = "close";
    response.headers["Retry-After"] = "1";
    stream.write_all(response.serialize());
  } catch (const std::exception&) {
    // The shed response is advisory; dropping it is fine.
  }
}

void HttpServer::accept_loop() {
  while (running_.load(std::memory_order_relaxed)) {
    auto stream = listener_.accept(std::chrono::milliseconds(50));
    reap_finished();
    if (!stream.has_value()) continue;

    std::size_t active = 0;
    {
      const std::lock_guard lock(connections_mutex_);
      active = connections_.size();
    }
    if (active >= options_.max_connections) {
      shed_connection(std::move(*stream));
      continue;
    }
    if (metrics_.accepted != nullptr) metrics_.accepted->inc();

    auto connection = std::make_unique<Connection>();
    Connection* raw = connection.get();
    connection->thread = std::thread(
        [this, raw](TcpStream accepted) {
          serve_connection(std::move(accepted), raw);
        },
        std::move(*stream));
    const std::lock_guard lock(connections_mutex_);
    connections_.push_back(std::move(connection));
  }
}

void HttpServer::serve_connection(TcpStream stream, Connection* connection) {
  connection->fd.store(stream.native_handle(), std::memory_order_release);
  if (metrics_.active != nullptr) metrics_.active->add(1.0);
  struct DoneGuard {
    Connection* connection;
    obs::Gauge* active;
    ~DoneGuard() {
      if (active != nullptr) active->sub(1.0);
      connection->fd.store(-1, std::memory_order_release);
      connection->done.store(true, std::memory_order_release);
    }
  } guard{connection, metrics_.active};

  try {
    stream.set_timeout(options_.read_timeout);
    HttpReader reader(stream);
    for (;;) {
      // Stop serving keep-alive connections when the server shuts down.
      if (!running_.load(std::memory_order_relaxed)) return;
      const auto request = reader.read_request();
      if (!request.has_value()) return;  // client closed

      // Server-side chaos seam: decided after parsing, before the handler.
      std::optional<HttpResponse> injected;
      if (options_.faults != nullptr) {
        const chaos::Fault fault =
            options_.faults->next(chaos::FaultSite::kServer, request->target);
        switch (fault.kind) {
          case chaos::FaultKind::kConnectionReset:
            return;  // abrupt close: the client sees a dead connection
          case chaos::FaultKind::kLatency:
            chaos::sleep_or_real(options_.clock, fault.latency);
            break;
          case chaos::FaultKind::kHttp429:
          case chaos::FaultKind::kHttp403:
          case chaos::FaultKind::kHttp500:
            injected = synthetic_response(fault.kind);
            break;
          default:
            break;
        }
      }

      const auto handle_start = std::chrono::steady_clock::now();
      HttpResponse response;
      if (injected.has_value()) {
        response = std::move(*injected);
      } else {
        try {
          response = handler_(*request);
        } catch (const std::exception& error) {
          util::log_warn(kComponent, "handler threw: {}", error.what());
          response = HttpResponse::text(500, "internal error");
        }
      }
      const bool close_requested = [&] {
        const auto it = request->headers.find("Connection");
        return it != request->headers.end() && util::equals_ci(it->second, "close");
      }();
      if (close_requested) response.headers["Connection"] = "close";
      // Count before writing: a client that has the response must observe
      // the incremented counter.
      ++requests_served_;
      const std::size_t band = status_class(response.status);
      if (metrics_.requests_by_class[band] != nullptr) {
        metrics_.requests_by_class[band]->inc();
      }
      stream.write_all(response.serialize());
      if (metrics_.latency_by_class[band] != nullptr) {
        metrics_.latency_by_class[band]->observe(
            std::chrono::duration<double>(std::chrono::steady_clock::now() - handle_start)
                .count());
      }
      if (close_requested) return;
    }
  } catch (const std::exception& error) {
    // Connection-level failures (timeouts, resets, malformed input) only
    // terminate this connection.
    util::log_debug(kComponent, "connection ended: {}", error.what());
  }
}

HttpResponse HttpClient::send(HttpRequest request) {
  if (auto injected = apply_exchange_fault(options_, request.target, [] {})) {
    return std::move(*injected);
  }
  apply_connect_fault(options_, host_, port_);
  TcpStream stream = TcpStream::connect(host_, port_);
  stream.set_timeout(options_.timeout);
  request.headers["Host"] = host_;
  request.headers["Connection"] = "close";
  stream.write_all(request.serialize());
  HttpReader reader(stream);
  auto response = reader.read_response();
  if (!response.has_value()) {
    throw std::runtime_error("HttpClient: empty response");
  }
  return std::move(*response);
}

HttpResponse HttpClient::get(std::string target, Headers headers) {
  HttpRequest request;
  request.method = "GET";
  request.target = std::move(target);
  request.headers = std::move(headers);
  return send(std::move(request));
}

void PersistentHttpClient::reset() noexcept {
  reader_.reset();
  stream_.close();
}

void PersistentHttpClient::ensure_connected() {
  if (stream_.valid()) return;
  apply_connect_fault(options_, host_, port_);
  stream_ = TcpStream::connect(host_, port_);
  stream_.set_timeout(options_.timeout);
  reader_ = std::make_unique<HttpReader>(stream_);
  ++connections_opened_;
}

HttpResponse PersistentHttpClient::send_once(const HttpRequest& request) {
  ensure_connected();
  stream_.write_all(request.serialize());
  auto response = reader_->read_response();
  if (!response.has_value()) {
    throw std::runtime_error("PersistentHttpClient: connection closed by peer");
  }
  const auto connection = response->headers.find("Connection");
  if (connection != response->headers.end() && util::equals_ci(connection->second, "close")) {
    reset();
  }
  return std::move(*response);
}

HttpResponse PersistentHttpClient::send(HttpRequest request) {
  // Injected faults are decided up front so they bypass the reconnect-retry
  // below: an injected reset must surface to the caller, not be healed.
  if (auto injected =
          apply_exchange_fault(options_, request.target, [this] { reset(); })) {
    return std::move(*injected);
  }
  request.headers["Host"] = host_;
  const bool had_connection = stream_.valid();
  try {
    return send_once(request);
  } catch (const std::exception&) {
    // A stale kept-alive connection (server timed it out between requests)
    // fails on first use; retry once on a fresh connection. A failure on a
    // brand-new connection is a real error and propagates.
    reset();
    if (!had_connection) throw;
  }
  return send_once(request);
}

HttpResponse PersistentHttpClient::get(std::string target, Headers headers) {
  HttpRequest request;
  request.method = "GET";
  request.target = std::move(target);
  request.headers = std::move(headers);
  return send(std::move(request));
}

}  // namespace appstore::net
