#include "net/server.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <optional>
#include <system_error>
#include <utility>

#include "util/logging.hpp"
#include "util/strings.hpp"

namespace appstore::net {

namespace {

constexpr std::string_view kComponent = "http";

constexpr std::string_view kStatusClasses[5] = {"1xx", "2xx", "3xx", "4xx", "5xx"};

constexpr std::string_view kShedReasons[3] = {"accept", "queue", "admission"};

/// status -> 0..4 (status/100 - 1); out-of-range statuses count as 5xx.
[[nodiscard]] std::size_t status_class(int status) noexcept {
  const int band = status / 100 - 1;
  return band < 0 || band > 4 ? 4 : static_cast<std::size_t>(band);
}

[[nodiscard]] std::size_t default_worker_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  return std::min<std::size_t>(8, std::max<std::size_t>(2, hw));
}

/// The response a kHttp* fault synthesizes (no network involved).
[[nodiscard]] HttpResponse synthetic_response(chaos::FaultKind kind) {
  switch (kind) {
    case chaos::FaultKind::kHttp429: {
      HttpResponse response = HttpResponse::text(429, "injected rate limit");
      response.reason = "Too Many Requests";
      response.headers["Retry-After"] = "1";
      return response;
    }
    case chaos::FaultKind::kHttp403: {
      HttpResponse response = HttpResponse::text(403, "injected region block");
      response.reason = "Forbidden";
      return response;
    }
    default: {
      HttpResponse response = HttpResponse::text(500, "injected server error");
      response.reason = "Internal Server Error";
      return response;
    }
  }
}

/// Connect-site seam shared by both clients: kConnectRefused fails like a
/// closed port, kLatency delays the handshake.
void apply_connect_fault(const ClientOptions& options, const std::string& host,
                         std::uint16_t port) {
  if (options.faults == nullptr) return;
  const chaos::Fault fault = options.faults->next(
      chaos::FaultSite::kConnect, host + ":" + std::to_string(port));
  if (fault.kind == chaos::FaultKind::kConnectRefused) {
    throw std::system_error(ECONNREFUSED, std::generic_category(),
                            "injected connect refusal to " + host);
  }
  if (fault.kind == chaos::FaultKind::kLatency) {
    chaos::sleep_or_real(options.clock, fault.latency);
  }
}

/// Exchange-site seam shared by both clients, decided before any network
/// work. Returns a synthetic response for kHttp* faults, throws for
/// kConnectionReset (after running `on_reset`, e.g. dropping a persistent
/// connection), sleeps for kLatency, and returns nullopt to proceed.
template <typename OnReset>
[[nodiscard]] std::optional<HttpResponse> apply_exchange_fault(
    const ClientOptions& options, const std::string& target, OnReset&& on_reset) {
  if (options.faults == nullptr) return std::nullopt;
  const chaos::Fault fault = options.faults->next(chaos::FaultSite::kExchange, target);
  switch (fault.kind) {
    case chaos::FaultKind::kConnectionReset:
      on_reset();
      throw std::system_error(ECONNRESET, std::generic_category(),
                              "injected connection reset on " + target);
    case chaos::FaultKind::kLatency:
      chaos::sleep_or_real(options.clock, fault.latency);
      return std::nullopt;
    case chaos::FaultKind::kHttp429:
    case chaos::FaultKind::kHttp403:
    case chaos::FaultKind::kHttp500:
      return synthetic_response(fault.kind);
    default:
      return std::nullopt;
  }
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) (void)::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

HttpServer::HttpServer(ServerOptions options, Handler handler)
    : listener_(options.port), handler_(std::move(handler)), options_(options) {
  if (options_.metrics != nullptr) {
    obs::Registry& registry = *options_.metrics;
    registry.describe("http_requests_total", "Responses by status class");
    registry.describe("http_request_seconds", "Handler + write latency by status class");
    registry.describe("http_accepted_total", "Accepted connections");
    registry.describe("http_shed_total", "Connections refused with 503 (load shedding)");
    registry.describe("server_shed_total", "Load-shed connections by layer");
    registry.describe("http_active_connections", "Connections currently being served");
    registry.describe("server_queue_depth", "Readable connections awaiting a worker");
    registry.describe("server_queue_wait_seconds", "Time spent in the ready queue");
    registry.describe("server_workers_busy", "Worker threads currently serving a request");
    for (std::size_t i = 0; i < 5; ++i) {
      metrics_.requests_by_class[i] = &registry.counter("http_requests_total", kStatusClasses[i]);
      metrics_.latency_by_class[i] =
          &registry.histogram("http_request_seconds", kStatusClasses[i]);
    }
    metrics_.accepted = &registry.counter("http_accepted_total");
    metrics_.shed = &registry.counter("http_shed_total");
    for (std::size_t i = 0; i < 3; ++i) {
      metrics_.shed_by_reason[i] = &registry.counter("server_shed_total", kShedReasons[i]);
    }
    metrics_.active = &registry.gauge("http_active_connections");
    metrics_.queue_depth = &registry.gauge("server_queue_depth");
    metrics_.queue_wait = &registry.histogram("server_queue_wait_seconds");
    metrics_.workers_busy = &registry.gauge("server_workers_busy");
  }

  if (options_.mode == ServerMode::kWorkerPool) {
    // The admission controller fronts the ready queue: its ceiling IS the
    // queue capacity (one knob), and it reports into the server's registry
    // unless the caller wired its own.
    AdmissionOptions admission = options_.admission;
    admission.limit_ceiling = options_.queue_capacity;
    if (admission.metrics == nullptr) admission.metrics = options_.metrics;
    admission_ = std::make_unique<AdmissionController>(admission);

    int pipe_fds[2] = {-1, -1};
    if (::pipe(pipe_fds) != 0) {
      throw std::system_error(errno, std::generic_category(), "HttpServer: pipe");
    }
    set_nonblocking(pipe_fds[0]);
    set_nonblocking(pipe_fds[1]);
    wake_read_ = FileDescriptor(pipe_fds[0]);
    wake_write_ = FileDescriptor(pipe_fds[1]);

    const std::size_t worker_count =
        options_.worker_threads > 0 ? options_.worker_threads : default_worker_count();
    worker_fds_ = std::make_unique<std::atomic<int>[]>(worker_count);
    for (std::size_t i = 0; i < worker_count; ++i) worker_fds_[i].store(-1);
    workers_.reserve(worker_count);
    for (std::size_t i = 0; i < worker_count; ++i) {
      workers_.emplace_back([this, i] { worker_loop(i); });
    }
    dispatcher_ = std::thread([this] { dispatcher_loop(); });
    util::log_info(kComponent,
                   "listening on 127.0.0.1:{} (worker pool: {} workers, queue {}, max {} "
                   "connections)",
                   listener_.port(), worker_count, options_.queue_capacity,
                   options_.max_connections);
  } else {
    acceptor_ = std::thread([this] { accept_loop(); });
    util::log_info(kComponent,
                   "listening on 127.0.0.1:{} (thread-per-connection, max {} connections)",
                   listener_.port(), options_.max_connections);
  }
}

HttpServer::~HttpServer() { stop(); }

void HttpServer::stop() {
  if (!running_.exchange(false)) return;
  if (options_.mode == ServerMode::kWorkerPool) {
    // 1. The dispatcher notices running_ is false, closes every idle
    //    connection, and exits — nothing new reaches the ready queue.
    wake_dispatcher();
    if (dispatcher_.joinable()) dispatcher_.join();
    listener_.close();
    // 2. Workers drain whatever is already in the ready queue (responses
    //    carry "Connection: close" because running_ is false) and exit once
    //    it is empty.
    {
      const std::lock_guard lock(queue_mutex_);
      workers_stopping_ = true;
    }
    queue_cv_.notify_all();
    // Unblock any worker parked in recv() waiting out a slow request head.
    const std::size_t worker_count = workers_.size();
    for (std::size_t i = 0; i < worker_count; ++i) {
      const int fd = worker_fds_[i].load(std::memory_order_acquire);
      if (fd >= 0) (void)::shutdown(fd, SHUT_RD);
    }
    for (auto& worker : workers_) {
      if (worker.joinable()) worker.join();
    }
    workers_.clear();
    // 3. Connections handed back after the dispatcher exited just close.
    const std::lock_guard lock(returned_mutex_);
    returned_.clear();
  } else {
    if (acceptor_.joinable()) acceptor_.join();
    listener_.close();
    const std::lock_guard lock(connections_mutex_);
    for (auto& connection : connections_) {
      // Unblock any thread parked in recv() on a keep-alive connection.
      const int fd = connection->fd.load(std::memory_order_acquire);
      if (fd >= 0) (void)::shutdown(fd, SHUT_RDWR);
    }
    for (auto& connection : connections_) {
      if (connection->thread.joinable()) connection->thread.join();
    }
    connections_.clear();
  }
}

void HttpServer::shed_connection(TcpStream stream, ShedReason reason) {
  // Load shedding: tell the client explicitly rather than slamming the
  // connection shut — a bare close looks like a transport failure and
  // makes well-behaved clients retry immediately; a 503 lets them back
  // off. Best-effort: a client that already hung up just loses the write.
  ++connections_shed_;
  if (metrics_.shed != nullptr) metrics_.shed->inc();
  const auto reason_index = static_cast<std::size_t>(reason);
  if (metrics_.shed_by_reason[reason_index] != nullptr) {
    metrics_.shed_by_reason[reason_index]->inc();
  }
  // Retry-After reflects the smoothed queue wait the controller measured
  // (floor 1 s), so a client that honors it returns after roughly one queue
  // drain instead of hammering a still-deep backlog.
  const int retry_after =
      admission_ != nullptr ? admission_->retry_after_seconds() : 1;
  try {
    stream.set_timeout(std::chrono::milliseconds(250));
    HttpResponse response;
    response.status = 503;
    response.reason = "Service Unavailable";
    response.body = options_.shed_body;
    response.headers["Content-Type"] = options_.shed_content_type;
    response.headers["Connection"] = "close";
    response.headers["Retry-After"] = std::to_string(retry_after);
    response.headers["X-Shed-Reason"] = std::string(kShedReasons[reason_index]);
    stream.write_all(response.serialize());
  } catch (const std::exception&) {
    // The shed response is advisory; dropping it is fine.
  }
}

// ---- shared request path ----------------------------------------------------

HttpServer::RequestOutcome HttpServer::serve_one(HttpReader& reader, TcpStream& stream) {
  const auto request = reader.read_request();
  if (!request.has_value()) return RequestOutcome::kClose;  // client closed

  // Server-side chaos seam: decided after parsing, before the handler.
  std::optional<HttpResponse> injected;
  if (options_.faults != nullptr) {
    const chaos::Fault fault =
        options_.faults->next(chaos::FaultSite::kServer, request->target);
    switch (fault.kind) {
      case chaos::FaultKind::kConnectionReset:
        return RequestOutcome::kDropped;  // abrupt close: client sees a dead conn
      case chaos::FaultKind::kLatency:
        chaos::sleep_or_real(options_.clock, fault.latency);
        break;
      case chaos::FaultKind::kHttp429:
      case chaos::FaultKind::kHttp403:
      case chaos::FaultKind::kHttp500:
        injected = synthetic_response(fault.kind);
        break;
      default:
        break;
    }
  }

  const auto handle_start = std::chrono::steady_clock::now();
  HttpResponse response;
  if (injected.has_value()) {
    response = std::move(*injected);
  } else {
    try {
      response = handler_(*request);
    } catch (const std::exception& error) {
      util::log_warn(kComponent, "handler threw: {}", error.what());
      response = HttpResponse::text(500, "internal error");
    }
  }
  const bool client_close = [&] {
    const auto it = request->headers.find("Connection");
    return it != request->headers.end() && util::equals_ci(it->second, "close");
  }();
  // Graceful drain: requests already admitted when stop() began are still
  // served, but their response tells the client not to reuse the connection.
  const bool close_requested = client_close || !running_.load(std::memory_order_relaxed);
  if (close_requested) response.headers["Connection"] = "close";
  // Count before writing: a client that has the response must observe
  // the incremented counter.
  ++requests_served_;
  const std::size_t band = status_class(response.status);
  if (metrics_.requests_by_class[band] != nullptr) {
    metrics_.requests_by_class[band]->inc();
  }
  stream.write_all(response.serialize());
  if (metrics_.latency_by_class[band] != nullptr) {
    metrics_.latency_by_class[band]->observe(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - handle_start)
            .count());
  }
  return close_requested ? RequestOutcome::kClose : RequestOutcome::kKeepAlive;
}

// ---- worker-pool mode -------------------------------------------------------

void HttpServer::wake_dispatcher() noexcept {
  const char byte = 1;
  (void)::write(wake_write_.get(), &byte, 1);  // nonblocking; a full pipe is fine
}

void HttpServer::enqueue_ready(std::unique_ptr<Conn> conn,
                               std::chrono::steady_clock::time_point now) {
  AdmissionDecision decision = AdmissionDecision::kAdmit;
  {
    const std::lock_guard lock(queue_mutex_);
    decision = admission_->admit(ready_.size());
    if (decision == AdmissionDecision::kAdmit) {
      conn->queued_at = now;
      ready_.push_back(std::move(conn));
      if (metrics_.queue_depth != nullptr) metrics_.queue_depth->add(1.0);
    }
  }
  if (decision != AdmissionDecision::kAdmit) {
    // Queue-level shed: the connection is readable but either the queue hit
    // its hard ceiling or the adaptive limit says the backlog's delay is
    // already past target; answering 503 now beats an unbounded (or merely
    // slow) backlog. The 503 is written outside queue_mutex_ so a slow shed
    // client cannot stall the workers.
    shed_connection(std::move(conn->stream),
                    decision == AdmissionDecision::kQueueFull ? ShedReason::kQueue
                                                              : ShedReason::kAdmission);
    conn.reset();
    admitted_.fetch_sub(1, std::memory_order_relaxed);
    if (metrics_.active != nullptr) metrics_.active->sub(1.0);
    return;
  }
  queue_cv_.notify_one();
}

void HttpServer::dispatcher_loop() {
  std::vector<pollfd> fds;
  while (running_.load(std::memory_order_relaxed)) {
    // Fold connections the workers handed back into the idle set.
    {
      const std::lock_guard lock(returned_mutex_);
      const auto now = std::chrono::steady_clock::now();
      for (auto& conn : returned_) {
        conn->idle_since = now;
        idle_.push_back(std::move(conn));
      }
      returned_.clear();
    }

    fds.clear();
    fds.push_back(pollfd{wake_read_.get(), POLLIN, 0});
    fds.push_back(pollfd{listener_.native_handle(), POLLIN, 0});
    for (const auto& conn : idle_) {
      fds.push_back(pollfd{conn->stream.native_handle(), POLLIN, 0});
    }

    // Wake at the nearest idle-timeout deadline (or periodically).
    auto now = std::chrono::steady_clock::now();
    auto timeout = std::chrono::milliseconds(500);
    for (const auto& conn : idle_) {
      const auto deadline = conn->idle_since + options_.read_timeout;
      const auto remaining =
          std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
      timeout = std::clamp(remaining, std::chrono::milliseconds(0), timeout);
    }

    const int rc = ::poll(fds.data(), fds.size(), static_cast<int>(timeout.count()));
    if (rc < 0 && errno != EINTR) break;
    now = std::chrono::steady_clock::now();

    if ((fds[0].revents & POLLIN) != 0) {
      char drain[64];
      while (::read(wake_read_.get(), drain, sizeof drain) > 0) {
      }
    }

    // Hand readable idle connections to the workers (peer close shows up as
    // readable too — the worker turns EOF into a clean connection close) and
    // drop connections idle past the read timeout.
    std::vector<std::unique_ptr<Conn>> still_idle;
    still_idle.reserve(idle_.size());
    for (std::size_t i = 0; i < idle_.size(); ++i) {
      const short revents = fds[2 + i].revents;
      if ((revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        enqueue_ready(std::move(idle_[i]), now);
      } else if (now - idle_[i]->idle_since >= options_.read_timeout) {
        admitted_.fetch_sub(1, std::memory_order_relaxed);
        if (metrics_.active != nullptr) metrics_.active->sub(1.0);
      } else {
        still_idle.push_back(std::move(idle_[i]));
      }
    }
    idle_ = std::move(still_idle);

    if ((fds[1].revents & POLLIN) != 0) {
      // Drain the accept backlog without blocking.
      while (auto stream = listener_.accept(std::chrono::milliseconds(0))) {
        if (admitted_.load(std::memory_order_relaxed) >= options_.max_connections) {
          shed_connection(std::move(*stream), ShedReason::kAccept);
          continue;
        }
        admitted_.fetch_add(1, std::memory_order_relaxed);
        if (metrics_.accepted != nullptr) metrics_.accepted->inc();
        if (metrics_.active != nullptr) metrics_.active->add(1.0);
        stream->set_timeout(options_.read_timeout);
        auto conn = std::make_unique<Conn>(std::move(*stream));
        conn->idle_since = now;
        idle_.push_back(std::move(conn));
      }
    }
  }

  // Shutdown: close every idle connection; in-flight and queued ones are
  // drained by the workers (see stop()).
  for (auto& conn : idle_) {
    admitted_.fetch_sub(1, std::memory_order_relaxed);
    if (metrics_.active != nullptr) metrics_.active->sub(1.0);
    conn.reset();
  }
  idle_.clear();
}

void HttpServer::worker_loop(std::size_t index) {
  for (;;) {
    std::unique_ptr<Conn> conn;
    {
      std::unique_lock lock(queue_mutex_);
      queue_cv_.wait(lock, [this] { return workers_stopping_ || !ready_.empty(); });
      if (ready_.empty()) return;  // stopping and fully drained
      conn = std::move(ready_.front());
      ready_.pop_front();
      if (metrics_.queue_depth != nullptr) metrics_.queue_depth->sub(1.0);
    }
    // The measured queue wait feeds both the histogram and the admission
    // controller's control loop (its congestion signal), so it is computed
    // whether or not metrics are attached.
    const auto queue_wait = std::chrono::steady_clock::now() - conn->queued_at;
    admission_->observe(
        std::chrono::duration_cast<std::chrono::nanoseconds>(queue_wait));
    if (metrics_.queue_wait != nullptr) {
      metrics_.queue_wait->observe(std::chrono::duration<double>(queue_wait).count());
    }
    if (metrics_.workers_busy != nullptr) metrics_.workers_busy->add(1.0);
    worker_fds_[index].store(conn->stream.native_handle(), std::memory_order_release);
    const bool keep = serve_ready(*conn);
    worker_fds_[index].store(-1, std::memory_order_release);
    if (metrics_.workers_busy != nullptr) metrics_.workers_busy->sub(1.0);
    if (keep && running_.load(std::memory_order_relaxed)) {
      {
        const std::lock_guard lock(returned_mutex_);
        returned_.push_back(std::move(conn));
      }
      wake_dispatcher();
    } else {
      conn.reset();
      admitted_.fetch_sub(1, std::memory_order_relaxed);
      if (metrics_.active != nullptr) metrics_.active->sub(1.0);
    }
  }
}

bool HttpServer::serve_ready(Conn& conn) {
  try {
    for (;;) {
      switch (serve_one(conn.reader, conn.stream)) {
        case RequestOutcome::kKeepAlive:
          // Pipelined bytes live in the reader's buffer, invisible to
          // poll(): serve them now or they would never be seen again.
          if (conn.reader.buffered()) continue;
          return true;
        case RequestOutcome::kClose:
        case RequestOutcome::kDropped:
          return false;
      }
    }
  } catch (const std::exception& error) {
    // Connection-level failures (timeouts, resets, malformed input) only
    // terminate this connection.
    util::log_debug(kComponent, "connection ended: {}", error.what());
    return false;
  }
}

// ---- thread-per-connection mode ---------------------------------------------

void HttpServer::accept_loop() {
  while (running_.load(std::memory_order_relaxed)) {
    auto stream = listener_.accept(std::chrono::milliseconds(50));
    reap_finished();
    if (!stream.has_value()) continue;

    std::size_t active = 0;
    {
      const std::lock_guard lock(connections_mutex_);
      active = connections_.size();
    }
    if (active >= options_.max_connections) {
      shed_connection(std::move(*stream), ShedReason::kAccept);
      continue;
    }
    if (metrics_.accepted != nullptr) metrics_.accepted->inc();

    auto connection = std::make_unique<Connection>();
    Connection* raw = connection.get();
    connection->thread = std::thread(
        [this, raw](TcpStream accepted) {
          serve_connection(std::move(accepted), raw);
        },
        std::move(*stream));
    const std::lock_guard lock(connections_mutex_);
    connections_.push_back(std::move(connection));
  }
}

void HttpServer::reap_finished() {
  const std::lock_guard lock(connections_mutex_);
  for (auto it = connections_.begin(); it != connections_.end();) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void HttpServer::serve_connection(TcpStream stream, Connection* connection) {
  connection->fd.store(stream.native_handle(), std::memory_order_release);
  if (metrics_.active != nullptr) metrics_.active->add(1.0);
  struct DoneGuard {
    Connection* connection;
    obs::Gauge* active;
    ~DoneGuard() {
      if (active != nullptr) active->sub(1.0);
      connection->fd.store(-1, std::memory_order_release);
      connection->done.store(true, std::memory_order_release);
    }
  } guard{connection, metrics_.active};

  try {
    stream.set_timeout(options_.read_timeout);
    HttpReader reader(stream);
    for (;;) {
      // Stop serving keep-alive connections when the server shuts down.
      if (!running_.load(std::memory_order_relaxed)) return;
      if (serve_one(reader, stream) != RequestOutcome::kKeepAlive) return;
    }
  } catch (const std::exception& error) {
    // Connection-level failures (timeouts, resets, malformed input) only
    // terminate this connection.
    util::log_debug(kComponent, "connection ended: {}", error.what());
  }
}

// ---- clients ----------------------------------------------------------------

HttpResponse HttpClient::send(HttpRequest request) {
  if (auto injected = apply_exchange_fault(options_, request.target, [] {})) {
    return std::move(*injected);
  }
  apply_connect_fault(options_, host_, port_);
  TcpStream stream = TcpStream::connect(host_, port_);
  stream.set_timeout(options_.timeout);
  request.headers["Host"] = host_;
  request.headers["Connection"] = "close";
  stream.write_all(request.serialize());
  HttpReader reader(stream);
  auto response = reader.read_response();
  if (!response.has_value()) {
    throw std::runtime_error("HttpClient: empty response");
  }
  return std::move(*response);
}

HttpResponse HttpClient::get(std::string target, Headers headers) {
  HttpRequest request;
  request.method = "GET";
  request.target = std::move(target);
  request.headers = std::move(headers);
  return send(std::move(request));
}

void PersistentHttpClient::reset() noexcept {
  reader_.reset();
  stream_.close();
}

void PersistentHttpClient::ensure_connected() {
  if (stream_.valid()) return;
  apply_connect_fault(options_, host_, port_);
  stream_ = TcpStream::connect(host_, port_);
  stream_.set_timeout(options_.timeout);
  reader_ = std::make_unique<HttpReader>(stream_);
  ++connections_opened_;
}

HttpResponse PersistentHttpClient::send_once(const HttpRequest& request) {
  ensure_connected();
  stream_.write_all(request.serialize());
  auto response = reader_->read_response();
  if (!response.has_value()) {
    throw std::runtime_error("PersistentHttpClient: connection closed by peer");
  }
  const auto connection = response->headers.find("Connection");
  if (connection != response->headers.end() && util::equals_ci(connection->second, "close")) {
    reset();
  }
  return std::move(*response);
}

HttpResponse PersistentHttpClient::send(HttpRequest request) {
  // Injected faults are decided up front so they bypass the reconnect-retry
  // below: an injected reset must surface to the caller, not be healed.
  if (auto injected =
          apply_exchange_fault(options_, request.target, [this] { reset(); })) {
    return std::move(*injected);
  }
  request.headers["Host"] = host_;
  const bool had_connection = stream_.valid();
  try {
    return send_once(request);
  } catch (const std::exception&) {
    // A stale kept-alive connection (server timed it out between requests)
    // fails on first use; retry once on a fresh connection. A failure on a
    // brand-new connection is a real error and propagates.
    reset();
    if (!had_connection) throw;
  }
  return send_once(request);
}

HttpResponse PersistentHttpClient::get(std::string target, Headers headers) {
  HttpRequest request;
  request.method = "GET";
  request.target = std::move(target);
  request.headers = std::move(headers);
  return send(std::move(request));
}

}  // namespace appstore::net
