#include "net/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <system_error>

namespace appstore::net {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

sockaddr_in loopback_address(const std::string& host, std::uint16_t port) {
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &address.sin_addr) != 1) {
    throw std::system_error(EINVAL, std::generic_category(), "inet_pton");
  }
  return address;
}

}  // namespace

FileDescriptor::~FileDescriptor() { reset(); }

FileDescriptor& FileDescriptor::operator=(FileDescriptor&& other) noexcept {
  if (this != &other) reset(other.release());
  return *this;
}

void FileDescriptor::reset(int fd) noexcept {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

TcpStream TcpStream::connect(const std::string& host, std::uint16_t port) {
  FileDescriptor fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) throw_errno("socket");
  const sockaddr_in address = loopback_address(host, port);
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&address), sizeof address) != 0) {
    throw_errno("connect");
  }
  // Request/response exchanges are small; disable Nagle for latency.
  const int one = 1;
  (void)::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return TcpStream(std::move(fd));
}

void TcpStream::set_timeout(std::chrono::milliseconds timeout) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout.count() % 1000) * 1000);
  if (::setsockopt(fd_.get(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv) != 0) {
    throw_errno("setsockopt(SO_RCVTIMEO)");
  }
  if (::setsockopt(fd_.get(), SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv) != 0) {
    throw_errno("setsockopt(SO_SNDTIMEO)");
  }
}

std::size_t TcpStream::read_some(std::span<std::byte> buffer) {
  for (;;) {
    const ssize_t n = ::recv(fd_.get(), buffer.data(), buffer.size(), 0);
    if (n >= 0) return static_cast<std::size_t>(n);
    if (errno == EINTR) continue;
    throw_errno("recv");
  }
}

void TcpStream::write_all(std::span<const std::byte> data) {
  std::size_t written = 0;
  while (written < data.size()) {
    const ssize_t n =
        ::send(fd_.get(), data.data() + written, data.size() - written, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("send");
    }
    written += static_cast<std::size_t>(n);
  }
}

void TcpStream::write_all(std::string_view text) {
  write_all(std::as_bytes(std::span<const char>(text.data(), text.size())));
}

void TcpStream::shutdown_write() noexcept { (void)::shutdown(fd_.get(), SHUT_WR); }

void TcpStream::shutdown_both() noexcept { (void)::shutdown(fd_.get(), SHUT_RDWR); }

TcpListener::TcpListener(std::uint16_t port, int backlog) {
  fd_.reset(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd_.valid()) throw_errno("socket");
  const int one = 1;
  (void)::setsockopt(fd_.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in address = loopback_address("127.0.0.1", port);
  if (::bind(fd_.get(), reinterpret_cast<const sockaddr*>(&address), sizeof address) != 0) {
    throw_errno("bind");
  }
  if (::listen(fd_.get(), backlog) != 0) throw_errno("listen");

  socklen_t length = sizeof address;
  if (::getsockname(fd_.get(), reinterpret_cast<sockaddr*>(&address), &length) != 0) {
    throw_errno("getsockname");
  }
  port_ = ntohs(address.sin_port);
}

std::optional<TcpStream> TcpListener::accept(std::chrono::milliseconds timeout) {
  if (!fd_.valid()) return std::nullopt;
  pollfd pfd{fd_.get(), POLLIN, 0};
  const int ready = ::poll(&pfd, 1, static_cast<int>(timeout.count()));
  if (ready < 0) {
    if (errno == EINTR) return std::nullopt;
    throw_errno("poll");
  }
  if (ready == 0 || (pfd.revents & POLLIN) == 0) return std::nullopt;

  const int fd = ::accept(fd_.get(), nullptr, nullptr);
  if (fd < 0) {
    if (errno == EINTR || errno == EAGAIN || errno == ECONNABORTED) return std::nullopt;
    throw_errno("accept");
  }
  return TcpStream(FileDescriptor(fd));
}

void TcpListener::close() noexcept { fd_.reset(); }

}  // namespace appstore::net
