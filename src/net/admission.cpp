#include "net/admission.hpp"

#include <algorithm>
#include <cmath>

namespace appstore::net {

namespace {

[[nodiscard]] std::int64_t to_ns(std::chrono::steady_clock::time_point tp) noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(tp.time_since_epoch())
      .count();
}

}  // namespace

std::string_view to_string(AdmissionMode mode) noexcept {
  switch (mode) {
    case AdmissionMode::kFixed: return "fixed";
    case AdmissionMode::kQueueDelay: return "queue_delay";
    case AdmissionMode::kGradient: return "gradient";
  }
  return "?";
}

AdmissionController::AdmissionController(AdmissionOptions options)
    : options_(options),
      increase_step_(options.increase > 0
                         ? options.increase
                         : std::max<std::size_t>(1, options.limit_ceiling / 16)),
      limit_(options.limit_ceiling),
      deadline_ns_(to_ns(chaos::now_or_real(options.clock)) + options.interval.count()) {
  options_.min_limit = std::min(std::max<std::size_t>(1, options_.min_limit),
                                std::max<std::size_t>(1, options_.limit_ceiling));
  if (options_.metrics != nullptr) {
    obs::Registry& registry = *options_.metrics;
    registry.describe("admission_limit", "Current admissible queue depth");
    registry.describe("admission_sheds_total",
                      "Connections refused by the adaptive admission limit");
    limit_gauge_ = &registry.gauge("admission_limit");
    shed_counter_ = &registry.counter("admission_sheds_total");
    limit_gauge_->set(static_cast<double>(options_.limit_ceiling));
  }
}

void AdmissionController::publish_limit(std::size_t next) noexcept {
  limit_.store(next, std::memory_order_relaxed);
  if (limit_gauge_ != nullptr) limit_gauge_->set(static_cast<double>(next));
}

AdmissionDecision AdmissionController::admit(std::size_t queue_depth) {
  maybe_roll(chaos::now_or_real(options_.clock));
  if (queue_depth >= options_.limit_ceiling) return AdmissionDecision::kQueueFull;
  if (options_.mode != AdmissionMode::kFixed &&
      queue_depth >= limit_.load(std::memory_order_relaxed)) {
    sheds_.fetch_add(1, std::memory_order_relaxed);
    if (shed_counter_ != nullptr) shed_counter_->inc();
    return AdmissionDecision::kOverload;
  }
  return AdmissionDecision::kAdmit;
}

void AdmissionController::observe(std::chrono::nanoseconds queue_wait) {
  const std::int64_t wait_ns = std::max<std::int64_t>(0, queue_wait.count());
  // EWMA with alpha 1/8 in integer nanoseconds; a racy lost update only
  // delays smoothing by one sample.
  const std::int64_t ewma = ewma_wait_ns_.load(std::memory_order_relaxed);
  ewma_wait_ns_.store(ewma + (wait_ns - ewma) / 8, std::memory_order_relaxed);
  {
    const std::lock_guard lock(mutex_);
    if (interval_min_ns_ < 0 || wait_ns < interval_min_ns_) interval_min_ns_ = wait_ns;
    interval_sum_ns_ += wait_ns;
    ++interval_samples_;
  }
  maybe_roll(chaos::now_or_real(options_.clock));
}

void AdmissionController::maybe_roll(std::chrono::steady_clock::time_point now) {
  if (options_.mode == AdmissionMode::kFixed) return;
  const std::int64_t now_ns = to_ns(now);
  std::int64_t deadline = deadline_ns_.load(std::memory_order_relaxed);
  if (now_ns < deadline) return;
  // One thread wins the roll; late losers see the bumped deadline and leave.
  if (!deadline_ns_.compare_exchange_strong(deadline, now_ns + options_.interval.count(),
                                            std::memory_order_acq_rel)) {
    return;
  }
  std::int64_t min_ns = -1;
  std::int64_t sum_ns = 0;
  std::uint64_t samples = 0;
  {
    const std::lock_guard lock(mutex_);
    min_ns = interval_min_ns_;
    sum_ns = interval_sum_ns_;
    samples = interval_samples_;
    interval_min_ns_ = -1;
    interval_sum_ns_ = 0;
    interval_samples_ = 0;
  }
  apply_update(min_ns, sum_ns, samples);
}

void AdmissionController::apply_update(std::int64_t min_wait_ns, std::int64_t sum_wait_ns,
                                       std::uint64_t samples) {
  const std::size_t current = limit_.load(std::memory_order_relaxed);
  const auto grown = [&]() noexcept {
    return std::min(options_.limit_ceiling, current + increase_step_);
  };
  const std::int64_t target_ns = options_.target_delay.count();
  if (samples == 0) {
    // An idle interval carries no congestion signal: recover additively so
    // the limit always returns to the ceiling after load drops.
    publish_limit(grown());
    return;
  }
  switch (options_.mode) {
    case AdmissionMode::kQueueDelay: {
      // CoDel reading: the interval *minimum* above target means a standing
      // queue (every request waited too long, not just an unlucky burst).
      if (min_wait_ns > target_ns) {
        const auto cut = static_cast<std::size_t>(
            std::floor(static_cast<double>(current) * options_.decrease));
        publish_limit(std::max(options_.min_limit, cut));
      } else {
        publish_limit(grown());
      }
      break;
    }
    case AdmissionMode::kGradient: {
      const double avg_ns = static_cast<double>(sum_wait_ns) /
                            static_cast<double>(samples);
      const double gradient = std::clamp(
          static_cast<double>(target_ns) / std::max(avg_ns, 1.0), 0.5, 2.0);
      const double next = gradient * static_cast<double>(current) +
                          std::sqrt(static_cast<double>(current));
      publish_limit(std::clamp(static_cast<std::size_t>(next), options_.min_limit,
                               options_.limit_ceiling));
      break;
    }
    case AdmissionMode::kFixed:
      break;  // unreachable: maybe_roll returns early for kFixed
  }
}

int AdmissionController::retry_after_seconds() const noexcept {
  const std::int64_t ewma = ewma_wait_ns_.load(std::memory_order_relaxed);
  constexpr std::int64_t kNsPerSecond = 1'000'000'000;
  const std::int64_t whole = (ewma + kNsPerSecond - 1) / kNsPerSecond;  // ceil
  return static_cast<int>(std::clamp<std::int64_t>(whole, 1, 60));
}

}  // namespace appstore::net
