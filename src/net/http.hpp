// Minimal HTTP/1.1 message handling.
//
// Supports the subset the crawler pipeline needs: request line + headers +
// optional Content-Length body, "Connection: close" semantics, and query
// string parsing. Chunked transfer encoding and pipelining are out of scope.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "net/socket.hpp"

namespace appstore::net {

/// Case-insensitive header map (HTTP header names are case-insensitive).
struct HeaderLess {
  using is_transparent = void;
  [[nodiscard]] bool operator()(std::string_view a, std::string_view b) const noexcept;
};

using Headers = std::map<std::string, std::string, HeaderLess>;

struct HttpRequest {
  std::string method = "GET";
  std::string target = "/";  ///< path + optional query string
  Headers headers;
  std::string body;

  [[nodiscard]] std::string path() const;
  /// Decoded query parameters (no %-decoding beyond '+' — targets are ASCII).
  [[nodiscard]] std::map<std::string, std::string> query() const;

  [[nodiscard]] std::string serialize() const;
};

struct HttpResponse {
  int status = 200;
  std::string reason = "OK";
  Headers headers;
  std::string body;

  [[nodiscard]] std::string serialize() const;

  [[nodiscard]] static HttpResponse text(int status, std::string body);
  [[nodiscard]] static HttpResponse json(int status, std::string body);
};

/// Incremental reader for one HTTP message off a TcpStream. Enforces limits
/// on header and body sizes (a crawler must survive a misbehaving server and
/// a server a misbehaving client).
class HttpReader {
 public:
  explicit HttpReader(TcpStream& stream, std::size_t max_head = 64 * 1024,
                      std::size_t max_body = 8 * 1024 * 1024)
      : stream_(stream), max_head_(max_head), max_body_(max_body) {}

  /// Reads one request. nullopt on clean EOF before any byte.
  /// Throws std::runtime_error on malformed input or limit violations.
  [[nodiscard]] std::optional<HttpRequest> read_request();

  /// Reads one response. nullopt on clean EOF before any byte.
  [[nodiscard]] std::optional<HttpResponse> read_response();

  /// True when bytes of a further (pipelined) message are already buffered.
  /// The worker-pool server must check this before parking a connection back
  /// on poll(): buffered bytes live here, not in the socket, so the kernel
  /// would never report them readable.
  [[nodiscard]] bool buffered() const noexcept { return consumed_ < buffer_.size(); }

 private:
  [[nodiscard]] std::optional<std::string> read_head();
  [[nodiscard]] std::string read_body(const Headers& headers);
  [[nodiscard]] bool fill();

  TcpStream& stream_;
  std::size_t max_head_;
  std::size_t max_body_;
  std::string buffer_;
  std::size_t consumed_ = 0;
};

/// Parses a status line + headers block (exposed for tests).
[[nodiscard]] bool parse_request_head(std::string_view head, HttpRequest& out);
[[nodiscard]] bool parse_response_head(std::string_view head, HttpResponse& out);

}  // namespace appstore::net
