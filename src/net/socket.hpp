// RAII TCP sockets (blocking I/O, IPv4 loopback-oriented).
//
// The crawler substrate runs a real HTTP/1.1 service over these sockets so
// the crawl pipeline (rate limiting, proxy rotation, retries, pagination)
// is exercised as genuine client/server interaction. Errors surface as
// std::system_error with the errno category (Core Guidelines E.14).
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>

namespace appstore::net {

/// Owning file descriptor. Move-only; closes on destruction.
class FileDescriptor {
 public:
  FileDescriptor() = default;
  explicit FileDescriptor(int fd) noexcept : fd_(fd) {}
  ~FileDescriptor();

  FileDescriptor(const FileDescriptor&) = delete;
  FileDescriptor& operator=(const FileDescriptor&) = delete;
  FileDescriptor(FileDescriptor&& other) noexcept : fd_(other.release()) {}
  FileDescriptor& operator=(FileDescriptor&& other) noexcept;

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int get() const noexcept { return fd_; }
  [[nodiscard]] int release() noexcept {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void reset(int fd = -1) noexcept;

 private:
  int fd_ = -1;
};

/// A connected TCP stream.
class TcpStream {
 public:
  TcpStream() = default;
  explicit TcpStream(FileDescriptor fd) noexcept : fd_(std::move(fd)) {}

  /// Connects to host:port (numeric IPv4 host, e.g. "127.0.0.1").
  /// Throws std::system_error on failure.
  [[nodiscard]] static TcpStream connect(const std::string& host, std::uint16_t port);

  [[nodiscard]] bool valid() const noexcept { return fd_.valid(); }

  /// Sets receive/send timeouts. 0 disables (blocking forever).
  void set_timeout(std::chrono::milliseconds timeout);

  /// Reads up to buffer.size() bytes; returns 0 on orderly shutdown.
  /// Throws std::system_error on errors (including timeout: EAGAIN).
  [[nodiscard]] std::size_t read_some(std::span<std::byte> buffer);

  /// Writes the whole buffer (looping over partial writes).
  void write_all(std::span<const std::byte> data);
  void write_all(std::string_view text);

  /// Half-closes the write side (signals EOF to the peer).
  void shutdown_write() noexcept;

  /// Shuts down both directions (unblocks a reader in another thread).
  void shutdown_both() noexcept;

  /// Underlying fd (for wakeup bookkeeping); -1 when closed.
  [[nodiscard]] int native_handle() const noexcept { return fd_.get(); }

  void close() noexcept { fd_.reset(); }

 private:
  FileDescriptor fd_;
};

/// A listening TCP socket bound to 127.0.0.1.
class TcpListener {
 public:
  /// Binds and listens; port 0 picks an ephemeral port (see port()).
  /// Throws std::system_error on failure.
  explicit TcpListener(std::uint16_t port, int backlog = 64);

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Waits up to `timeout` for a connection and accepts it. Returns nullopt
  /// on timeout or if the listener is closed — the server loop polls this so
  /// shutdown never races a blocking accept. Throws on other errors.
  [[nodiscard]] std::optional<TcpStream> accept(
      std::chrono::milliseconds timeout = std::chrono::milliseconds(100));

  /// Unblocks accept() and closes the socket.
  void close() noexcept;

  [[nodiscard]] bool closed() const noexcept { return !fd_.valid(); }

  /// Underlying fd for callers that multiplex the listener with other fds
  /// (the worker-pool server polls it alongside idle connections); -1 when
  /// closed.
  [[nodiscard]] int native_handle() const noexcept { return fd_.get(); }

 private:
  FileDescriptor fd_;
  std::uint16_t port_ = 0;
};

}  // namespace appstore::net
