// HTTP/1.1 server over loopback TCP with two serving architectures.
//
// ServerMode::kWorkerPool (the default — the serving-scale design):
//   * One dispatcher thread owns the listener and every idle keep-alive
//     connection and multiplexes them through poll(2). An idle connection
//     costs one pollfd, not a parked thread, so thousands of persistent
//     clients (the crawler keeps one per worker×proxy) are cheap.
//   * A fixed pool of worker threads serves *readable* connections handed
//     over through a bounded ready queue: a worker reads one request (plus
//     any pipelined requests already buffered), runs the handler, writes the
//     response, and returns the connection to the dispatcher.
//   * Load shedding is explicit at two layers, both answering
//     "503 Service Unavailable" + Retry-After: accept-time (admitted
//     connections would exceed max_connections) and queue-time (a connection
//     became readable but the ready queue is full).
//   * stop() drains gracefully: requests already admitted to the ready queue
//     or being served complete (their responses carry "Connection: close");
//     idle connections are closed immediately.
//
// ServerMode::kThreadPerConnection keeps the previous design — one thread
// per connection, reaped as new ones arrive — as the benchmarking baseline
// (bench_serving) and a conservative fallback.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "chaos/clock.hpp"
#include "chaos/fault.hpp"
#include "net/admission.hpp"
#include "net/http.hpp"
#include "net/socket.hpp"
#include "obs/registry.hpp"

namespace appstore::net {

/// Handler: request -> response. Called concurrently from worker (or
/// connection) threads; must be thread-safe.
using Handler = std::function<HttpResponse(const HttpRequest&)>;

enum class ServerMode : std::uint8_t {
  kWorkerPool,           ///< dispatcher + fixed worker pool (default)
  kThreadPerConnection,  ///< legacy baseline: one thread per connection
};

/// Aggregate construction options for HttpServer (the Options-struct API:
/// new knobs land here without another positional parameter).
struct ServerOptions {
  /// Port to bind on 127.0.0.1 (0 = ephemeral).
  std::uint16_t port = 0;
  /// Bounds concurrently-admitted connections (served + queued + idle);
  /// excess connections receive a minimal "503 Service Unavailable" and are
  /// closed (load shedding).
  std::size_t max_connections = 256;
  /// Per-connection read timeout. Worker pool: an idle keep-alive connection
  /// past this is closed by the dispatcher, and a worker mid-read gives up
  /// after it. Thread-per-connection: plain socket receive timeout.
  std::chrono::milliseconds read_timeout = std::chrono::milliseconds(5000);
  /// Serving architecture; see the header comment.
  ServerMode mode = ServerMode::kWorkerPool;
  /// Worker threads of the kWorkerPool mode; 0 = min(8, hardware cores).
  std::size_t worker_threads = 0;
  /// Bound of the ready queue (readable connections awaiting a worker);
  /// a readable connection past it is shed with 503 + Retry-After.
  std::size_t queue_capacity = 256;
  /// Admission policy in front of the ready queue (worker-pool mode). The
  /// default AdmissionMode::kFixed reproduces the legacy queue_capacity
  /// cliff; the adaptive modes shed early once measured queue delay exceeds
  /// admission.target_delay (see net/admission.hpp). `limit_ceiling` is
  /// overridden with queue_capacity and `metrics` defaults to the server's
  /// registry, so callers normally set only `mode` and the delay target.
  AdmissionOptions admission;
  /// Optional metrics sink. When set the server registers, under the
  /// conventions of docs/observability.md:
  ///   http_requests_total{1xx..5xx}     responses by status class
  ///   http_request_seconds{1xx..5xx}    handler+write latency by class
  ///   http_accepted_total               accepted connections
  ///   http_shed_total                   load-shed connections (all layers)
  ///   server_shed_total{accept|queue|admission}  sheds by layer
  ///   admission_limit (gauge)           current admissible queue depth
  ///   admission_sheds_total             adaptive-limit refusals
  ///   http_active_connections (gauge)   admitted connections
  ///   server_queue_depth (gauge)        ready connections awaiting a worker
  ///   server_queue_wait_seconds         time spent in the ready queue
  ///   server_workers_busy (gauge)       workers currently serving
  /// Must outlive the server.
  obs::Registry* metrics = nullptr;
  /// Time source for latency injection (nullptr = real time). Must outlive
  /// the server.
  chaos::Clock* clock = nullptr;
  /// Optional fault seam, consulted per request at FaultSite::kServer keyed
  /// by the request target: kConnectionReset drops the connection without a
  /// response, kLatency delays via `clock`, kHttp* short-circuits the
  /// handler with a synthetic response. Must outlive the server.
  chaos::FaultInjector* faults = nullptr;
  /// Body + content type of the 503 load-shed response (both shed layers).
  /// Lets an embedding service keep one error envelope for every non-200 it
  /// emits — the shed response is written below the handler, so the service
  /// cannot shape it itself.
  std::string shed_body = "server busy";
  std::string shed_content_type = "text/plain";
};

class HttpServer {
 public:
  /// Binds to 127.0.0.1:`options.port` and starts serving.
  HttpServer(ServerOptions options, Handler handler);

  /// Deprecated positional form; forwards to the ServerOptions constructor.
  HttpServer(std::uint16_t port, Handler handler, std::size_t max_connections = 256)
      : HttpServer(positional_options(port, max_connections), std::move(handler)) {}

  /// Stops (see stop()) and joins every thread.
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  [[nodiscard]] std::uint16_t port() const noexcept { return listener_.port(); }

  /// Total requests served so far (across all connections).
  [[nodiscard]] std::uint64_t requests_served() const noexcept {
    return requests_served_.load(std::memory_order_relaxed);
  }

  /// Connections turned away with a 503 (accept, queue, or admission shed).
  [[nodiscard]] std::uint64_t connections_shed() const noexcept {
    return connections_shed_.load(std::memory_order_relaxed);
  }

  /// The admission controller guarding the ready queue (worker-pool mode;
  /// nullptr in thread-per-connection mode).
  [[nodiscard]] AdmissionController* admission() noexcept { return admission_.get(); }

  /// Stops accepting, drains in-flight work (worker pool: everything already
  /// in the ready queue is served with "Connection: close"), closes idle
  /// connections, and joins every thread. Idempotent.
  void stop();

 private:
  [[nodiscard]] static ServerOptions positional_options(std::uint16_t port,
                                                        std::size_t max_connections) {
    ServerOptions options;
    options.port = port;
    options.max_connections = max_connections;
    return options;
  }

  // ---- shared request path ------------------------------------------------

  enum class RequestOutcome : std::uint8_t {
    kKeepAlive,  ///< response written, connection stays open
    kClose,      ///< connection must close (client asked, error, or drain)
    kDropped,    ///< injected reset: close without a response
  };

  /// Reads and serves exactly one request off `reader`/`stream` (fault seam,
  /// handler, metrics, response write). kClose when the client half-closed
  /// before a request, asked for close, or the server is draining.
  RequestOutcome serve_one(HttpReader& reader, TcpStream& stream);

  /// Which shed layer refused a connection; becomes the X-Shed-Reason
  /// header on the 503 so load reports can attribute sheds.
  enum class ShedReason : std::uint8_t { kAccept = 0, kQueue, kAdmission };

  /// Best-effort 503 + Retry-After (from the admission controller's
  /// estimate, floor 1 s) + X-Shed-Reason, then closes the stream.
  void shed_connection(TcpStream stream, ShedReason reason);

  // ---- worker-pool mode ---------------------------------------------------

  /// A pooled connection. Never moved after construction: `reader` holds a
  /// reference to `stream`, so connections travel as unique_ptrs between the
  /// dispatcher, the ready queue, and workers.
  struct Conn {
    TcpStream stream;
    HttpReader reader;
    std::chrono::steady_clock::time_point idle_since{};
    std::chrono::steady_clock::time_point queued_at{};

    explicit Conn(TcpStream accepted)
        : stream(std::move(accepted)), reader(stream) {}
  };

  void dispatcher_loop();
  void worker_loop(std::size_t index);
  /// Serves every request currently available on the connection; true when
  /// it should return to the dispatcher (keep-alive), false when closed.
  bool serve_ready(Conn& conn);
  void enqueue_ready(std::unique_ptr<Conn> conn,
                     std::chrono::steady_clock::time_point now);
  void wake_dispatcher() noexcept;

  // ---- thread-per-connection mode ----------------------------------------

  struct Connection {
    std::thread thread;
    std::atomic<bool> done{false};
    /// Socket fd of the connection while it is being served (-1 otherwise);
    /// stop() shuts it down to unblock a thread waiting in recv().
    std::atomic<int> fd{-1};
  };

  void accept_loop();
  void serve_connection(TcpStream stream, Connection* connection);
  void reap_finished();

  // ---- state --------------------------------------------------------------

  /// Lock-free handles into options_.metrics, resolved once at
  /// construction; all nullptr when metrics are disabled.
  struct Metrics {
    obs::Counter* requests_by_class[5] = {};   ///< index = status/100 - 1
    obs::Histogram* latency_by_class[5] = {};  ///< same indexing
    obs::Counter* accepted = nullptr;
    obs::Counter* shed = nullptr;
    obs::Counter* shed_by_reason[3] = {};  ///< index = ShedReason
    obs::Gauge* active = nullptr;
    obs::Gauge* queue_depth = nullptr;
    obs::Histogram* queue_wait = nullptr;
    obs::Gauge* workers_busy = nullptr;
  };

  TcpListener listener_;
  Handler handler_;
  ServerOptions options_;
  Metrics metrics_;
  std::unique_ptr<AdmissionController> admission_;  ///< worker-pool mode only
  std::atomic<bool> running_{true};
  std::atomic<std::uint64_t> requests_served_{0};
  std::atomic<std::uint64_t> connections_shed_{0};

  // worker-pool state
  std::atomic<std::size_t> admitted_{0};  ///< served + queued + idle conns
  std::vector<std::unique_ptr<Conn>> idle_;  ///< dispatcher-owned, no lock
  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<std::unique_ptr<Conn>> ready_;  ///< guarded by queue_mutex_
  bool workers_stopping_ = false;            ///< guarded by queue_mutex_
  std::mutex returned_mutex_;
  std::vector<std::unique_ptr<Conn>> returned_;  ///< workers -> dispatcher
  FileDescriptor wake_read_, wake_write_;        ///< dispatcher wakeup pipe
  /// Fd a worker is currently serving (-1 when idle); stop() shuts the read
  /// side down to unblock a worker waiting in recv() on a partial request.
  std::unique_ptr<std::atomic<int>[]> worker_fds_;
  std::vector<std::thread> workers_;
  std::thread dispatcher_;

  // thread-per-connection state
  std::mutex connections_mutex_;
  std::list<std::unique_ptr<Connection>> connections_;
  std::thread acceptor_;
};

/// Aggregate construction options shared by both HTTP clients (the
/// Options-struct API: new knobs land here, not as positional parameters).
struct ClientOptions {
  /// Socket timeout for connects, reads, and writes.
  std::chrono::milliseconds timeout = std::chrono::milliseconds(5000);
  /// Time source for injected latency (nullptr = real time). Must outlive
  /// the client.
  chaos::Clock* clock = nullptr;
  /// Optional fault seam. Consulted at FaultSite::kConnect (keyed
  /// "host:port") before establishing a connection — kConnectRefused throws
  /// ECONNREFUSED — and at FaultSite::kExchange (keyed by the request
  /// target) per send: kConnectionReset throws ECONNRESET (bypassing any
  /// transparent reconnect-retry, so callers see the failure), kLatency
  /// delays via `clock`, kHttp* returns a synthetic response without
  /// touching the network. Must outlive the client.
  chaos::FaultInjector* faults = nullptr;
};

/// Blocking single-request HTTP client ("Connection: close" per request).
class HttpClient {
 public:
  HttpClient(std::string host, std::uint16_t port, ClientOptions options = {})
      : host_(std::move(host)), port_(port), options_(options) {}

  /// Back-compat positional form (pre-ClientOptions signature).
  HttpClient(std::string host, std::uint16_t port, std::chrono::milliseconds timeout)
      : HttpClient(std::move(host), port, ClientOptions{.timeout = timeout}) {}

  /// Sends the request and waits for the response.
  /// Throws std::system_error / std::runtime_error on transport failures.
  [[nodiscard]] HttpResponse send(HttpRequest request);

  /// GET convenience.
  [[nodiscard]] HttpResponse get(std::string target, Headers headers = {});

 private:
  std::string host_;
  std::uint16_t port_;
  ClientOptions options_;
};

/// Keep-alive HTTP client: reuses one TCP connection across requests
/// (HTTP/1.1 persistent connections), reconnecting transparently when the
/// server closes it. Crawling a directory page-by-page over one connection
/// avoids per-request handshakes — the crawler uses one per proxy identity.
/// Not thread-safe; use one instance per thread.
class PersistentHttpClient {
 public:
  PersistentHttpClient(std::string host, std::uint16_t port, ClientOptions options = {})
      : host_(std::move(host)), port_(port), options_(options) {}

  /// Back-compat positional form (pre-ClientOptions signature).
  PersistentHttpClient(std::string host, std::uint16_t port,
                       std::chrono::milliseconds timeout)
      : PersistentHttpClient(std::move(host), port, ClientOptions{.timeout = timeout}) {}

  /// Sends a request over the persistent connection; reconnects once if the
  /// connection was closed by the peer since the last exchange. Injected
  /// faults are decided before the exchange and never trigger the
  /// reconnect-retry: they propagate to the caller.
  [[nodiscard]] HttpResponse send(HttpRequest request);

  [[nodiscard]] HttpResponse get(std::string target, Headers headers = {});

  /// Number of TCP connections established so far (1 = fully reused).
  [[nodiscard]] std::uint64_t connections_opened() const noexcept {
    return connections_opened_;
  }

  /// Drops the current connection (next request reconnects).
  void reset() noexcept;

 private:
  [[nodiscard]] HttpResponse send_once(const HttpRequest& request);
  void ensure_connected();

  std::string host_;
  std::uint16_t port_;
  ClientOptions options_;
  TcpStream stream_;
  std::unique_ptr<HttpReader> reader_;
  std::uint64_t connections_opened_ = 0;
};

}  // namespace appstore::net
