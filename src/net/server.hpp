// Threaded HTTP/1.1 server over loopback TCP.
//
// One acceptor thread polls the listener and spawns a thread per
// connection (finished connection threads are reaped as new ones arrive).
// Connections are keep-alive until the client sends "Connection: close",
// half-closes, errors, or stays idle past the read timeout — so long-lived
// persistent clients never starve newcomers, unlike a fixed worker pool.
// Designed for the test and crawler workloads of this library (hundreds of
// concurrent loopback connections), not for the open internet.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <thread>

#include "chaos/clock.hpp"
#include "chaos/fault.hpp"
#include "net/http.hpp"
#include "net/socket.hpp"
#include "obs/registry.hpp"

namespace appstore::net {

/// Handler: request -> response. Called concurrently from connection
/// threads; must be thread-safe.
using Handler = std::function<HttpResponse(const HttpRequest&)>;

/// Aggregate construction options for HttpServer (the Options-struct API:
/// new knobs land here without another positional parameter).
struct ServerOptions {
  /// Port to bind on 127.0.0.1 (0 = ephemeral).
  std::uint16_t port = 0;
  /// Bounds concurrently-served connections; excess connections receive a
  /// minimal "503 Service Unavailable" and are closed (load shedding).
  std::size_t max_connections = 256;
  /// Per-connection read timeout; an idle keep-alive connection past this
  /// is closed.
  std::chrono::milliseconds read_timeout = std::chrono::milliseconds(5000);
  /// Optional metrics sink. When set the server registers, under the
  /// conventions of docs/observability.md:
  ///   http_requests_total{1xx..5xx}     responses by status class
  ///   http_request_seconds{1xx..5xx}    handler+write latency by class
  ///   http_accepted_total               accepted connections
  ///   http_shed_total                   load-shed connections
  ///   http_active_connections (gauge)   currently served connections
  /// Must outlive the server.
  obs::Registry* metrics = nullptr;
  /// Time source for latency injection (nullptr = real time). Must outlive
  /// the server.
  chaos::Clock* clock = nullptr;
  /// Optional fault seam, consulted per request at FaultSite::kServer keyed
  /// by the request target: kConnectionReset drops the connection without a
  /// response, kLatency delays via `clock`, kHttp* short-circuits the
  /// handler with a synthetic response. Must outlive the server.
  chaos::FaultInjector* faults = nullptr;
};

class HttpServer {
 public:
  /// Binds to 127.0.0.1:`options.port` and starts serving.
  HttpServer(ServerOptions options, Handler handler);

  /// Deprecated positional form; forwards to the ServerOptions constructor.
  HttpServer(std::uint16_t port, Handler handler, std::size_t max_connections = 256)
      : HttpServer(ServerOptions{.port = port, .max_connections = max_connections},
                   std::move(handler)) {}

  /// Stops accepting and joins every connection thread.
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  [[nodiscard]] std::uint16_t port() const noexcept { return listener_.port(); }

  /// Total requests served so far (across all connections).
  [[nodiscard]] std::uint64_t requests_served() const noexcept {
    return requests_served_.load(std::memory_order_relaxed);
  }

  /// Connections turned away with a 503 because max_connections was reached.
  [[nodiscard]] std::uint64_t connections_shed() const noexcept {
    return connections_shed_.load(std::memory_order_relaxed);
  }

  void stop();

 private:
  struct Connection {
    std::thread thread;
    std::atomic<bool> done{false};
    /// Socket fd of the connection while it is being served (-1 otherwise);
    /// stop() shuts it down to unblock a thread waiting in recv().
    std::atomic<int> fd{-1};
  };

  /// Lock-free handles into options_.metrics, resolved once at
  /// construction; all nullptr when metrics are disabled.
  struct Metrics {
    obs::Counter* requests_by_class[5] = {};   ///< index = status/100 - 1
    obs::Histogram* latency_by_class[5] = {};  ///< same indexing
    obs::Counter* accepted = nullptr;
    obs::Counter* shed = nullptr;
    obs::Gauge* active = nullptr;
  };

  void accept_loop();
  void serve_connection(TcpStream stream, Connection* connection);
  void shed_connection(TcpStream stream);
  void reap_finished();

  TcpListener listener_;
  Handler handler_;
  ServerOptions options_;
  Metrics metrics_;
  std::atomic<bool> running_{true};
  std::atomic<std::uint64_t> requests_served_{0};
  std::atomic<std::uint64_t> connections_shed_{0};

  std::mutex connections_mutex_;
  std::list<std::unique_ptr<Connection>> connections_;

  std::thread acceptor_;
};

/// Aggregate construction options shared by both HTTP clients (the
/// Options-struct API: new knobs land here, not as positional parameters).
struct ClientOptions {
  /// Socket timeout for connects, reads, and writes.
  std::chrono::milliseconds timeout = std::chrono::milliseconds(5000);
  /// Time source for injected latency (nullptr = real time). Must outlive
  /// the client.
  chaos::Clock* clock = nullptr;
  /// Optional fault seam. Consulted at FaultSite::kConnect (keyed
  /// "host:port") before establishing a connection — kConnectRefused throws
  /// ECONNREFUSED — and at FaultSite::kExchange (keyed by the request
  /// target) per send: kConnectionReset throws ECONNRESET (bypassing any
  /// transparent reconnect-retry, so callers see the failure), kLatency
  /// delays via `clock`, kHttp* returns a synthetic response without
  /// touching the network. Must outlive the client.
  chaos::FaultInjector* faults = nullptr;
};

/// Blocking single-request HTTP client ("Connection: close" per request).
class HttpClient {
 public:
  HttpClient(std::string host, std::uint16_t port, ClientOptions options = {})
      : host_(std::move(host)), port_(port), options_(options) {}

  /// Back-compat positional form (pre-ClientOptions signature).
  HttpClient(std::string host, std::uint16_t port, std::chrono::milliseconds timeout)
      : HttpClient(std::move(host), port, ClientOptions{.timeout = timeout}) {}

  /// Sends the request and waits for the response.
  /// Throws std::system_error / std::runtime_error on transport failures.
  [[nodiscard]] HttpResponse send(HttpRequest request);

  /// GET convenience.
  [[nodiscard]] HttpResponse get(std::string target, Headers headers = {});

 private:
  std::string host_;
  std::uint16_t port_;
  ClientOptions options_;
};

/// Keep-alive HTTP client: reuses one TCP connection across requests
/// (HTTP/1.1 persistent connections), reconnecting transparently when the
/// server closes it. Crawling a directory page-by-page over one connection
/// avoids per-request handshakes — the crawler uses one per proxy identity.
/// Not thread-safe; use one instance per thread.
class PersistentHttpClient {
 public:
  PersistentHttpClient(std::string host, std::uint16_t port, ClientOptions options = {})
      : host_(std::move(host)), port_(port), options_(options) {}

  /// Back-compat positional form (pre-ClientOptions signature).
  PersistentHttpClient(std::string host, std::uint16_t port,
                       std::chrono::milliseconds timeout)
      : PersistentHttpClient(std::move(host), port, ClientOptions{.timeout = timeout}) {}

  /// Sends a request over the persistent connection; reconnects once if the
  /// connection was closed by the peer since the last exchange. Injected
  /// faults are decided before the exchange and never trigger the
  /// reconnect-retry: they propagate to the caller.
  [[nodiscard]] HttpResponse send(HttpRequest request);

  [[nodiscard]] HttpResponse get(std::string target, Headers headers = {});

  /// Number of TCP connections established so far (1 = fully reused).
  [[nodiscard]] std::uint64_t connections_opened() const noexcept {
    return connections_opened_;
  }

  /// Drops the current connection (next request reconnects).
  void reset() noexcept;

 private:
  [[nodiscard]] HttpResponse send_once(const HttpRequest& request);
  void ensure_connected();

  std::string host_;
  std::uint16_t port_;
  ClientOptions options_;
  TcpStream stream_;
  std::unique_ptr<HttpReader> reader_;
  std::uint64_t connections_opened_ = 0;
};

}  // namespace appstore::net
