#include "net/rate_limiter.hpp"

#include <algorithm>

namespace appstore::net {

TokenBucketLimiter::TokenBucketLimiter(double rate_per_second, double burst, Clock clock)
    : rate_(rate_per_second), burst_(burst), clock_(std::move(clock)) {
  if (!clock_) clock_ = [] { return std::chrono::steady_clock::now(); };
}

TokenBucketLimiter::Bucket& TokenBucketLimiter::refill(
    const std::string& key, std::chrono::steady_clock::time_point now) {
  auto [it, inserted] = buckets_.try_emplace(key, Bucket{burst_, now});
  if (!inserted) {
    Bucket& bucket = it->second;
    const std::chrono::duration<double> elapsed = now - bucket.last_refill;
    bucket.tokens = std::min(burst_, bucket.tokens + elapsed.count() * rate_);
    bucket.last_refill = now;
  }
  return it->second;
}

void TokenBucketLimiter::attach_metrics(obs::Registry& registry) {
  registry.describe("rate_limiter_allowed_total", "Admitted allow() decisions");
  registry.describe("rate_limiter_throttled_total", "Rate-limited allow() decisions");
  allowed_counter_ = &registry.counter("rate_limiter_allowed_total");
  throttled_counter_ = &registry.counter("rate_limiter_throttled_total");
}

bool TokenBucketLimiter::allow(const std::string& key) {
  const auto now = clock_();
  bool admitted = false;
  {
    const std::lock_guard lock(mutex_);
    Bucket& bucket = refill(key, now);
    if (bucket.tokens >= 1.0) {
      bucket.tokens -= 1.0;
      admitted = true;
    }
  }
  if (admitted) {
    allowed_.fetch_add(1, std::memory_order_relaxed);
    if (allowed_counter_ != nullptr) allowed_counter_->inc();
  } else {
    throttled_.fetch_add(1, std::memory_order_relaxed);
    if (throttled_counter_ != nullptr) throttled_counter_->inc();
  }
  return admitted;
}

double TokenBucketLimiter::available(const std::string& key) {
  const auto now = clock_();
  const std::lock_guard lock(mutex_);
  return refill(key, now).tokens;
}

void TokenBucketLimiter::evict_idle(std::chrono::seconds idle) {
  const auto now = clock_();
  const std::lock_guard lock(mutex_);
  std::erase_if(buckets_, [&](const auto& entry) {
    return now - entry.second.last_refill > idle;
  });
}

}  // namespace appstore::net
