#include "net/rate_limiter.hpp"

#include <algorithm>
#include <vector>

namespace appstore::net {

TokenBucketLimiter::TokenBucketLimiter(double rate_per_second, double burst, Clock clock,
                                       std::size_t max_keys)
    : rate_(rate_per_second),
      burst_(burst),
      clock_(std::move(clock)),
      max_keys_(std::max<std::size_t>(1, max_keys)) {
  if (!clock_) clock_ = [] { return std::chrono::steady_clock::now(); };
}

void TokenBucketLimiter::evict_stalest_locked() {
  // Evicting an eighth (not one) amortises the O(n) scan over the next n/8
  // inserts, keeping the cap-hit path O(1) amortised under key churn.
  const std::size_t want = std::max<std::size_t>(1, buckets_.size() / 8);
  std::vector<std::chrono::steady_clock::time_point> stamps;
  stamps.reserve(buckets_.size());
  for (const auto& entry : buckets_) stamps.push_back(entry.second.last_refill);
  auto nth = stamps.begin() + static_cast<std::ptrdiff_t>(want - 1);
  std::nth_element(stamps.begin(), nth, stamps.end());
  const auto cutoff = *nth;
  std::size_t dropped = 0;
  std::erase_if(buckets_, [&](const auto& entry) {
    if (dropped >= want || entry.second.last_refill > cutoff) return false;
    ++dropped;
    return true;
  });
  evictions_.fetch_add(dropped, std::memory_order_relaxed);
  if (evictions_counter_ != nullptr) evictions_counter_->inc(dropped);
}

TokenBucketLimiter::Bucket& TokenBucketLimiter::refill(
    const std::string& key, std::chrono::steady_clock::time_point now) {
  if (buckets_.size() >= max_keys_ && !buckets_.contains(key)) {
    evict_stalest_locked();
  }
  auto [it, inserted] = buckets_.try_emplace(key, Bucket{burst_, now});
  if (!inserted) {
    Bucket& bucket = it->second;
    const std::chrono::duration<double> elapsed = now - bucket.last_refill;
    bucket.tokens = std::min(burst_, bucket.tokens + elapsed.count() * rate_);
    bucket.last_refill = now;
  }
  return it->second;
}

void TokenBucketLimiter::attach_metrics(obs::Registry& registry) {
  registry.describe("rate_limiter_allowed_total", "Admitted allow() decisions");
  registry.describe("rate_limiter_throttled_total", "Rate-limited allow() decisions");
  registry.describe("rate_limiter_evictions_total",
                    "Per-key buckets dropped by the key cap or idle sweep");
  allowed_counter_ = &registry.counter("rate_limiter_allowed_total");
  throttled_counter_ = &registry.counter("rate_limiter_throttled_total");
  evictions_counter_ = &registry.counter("rate_limiter_evictions_total");
}

bool TokenBucketLimiter::allow(const std::string& key) {
  const auto now = clock_();
  bool admitted = false;
  {
    const std::lock_guard lock(mutex_);
    Bucket& bucket = refill(key, now);
    if (bucket.tokens >= 1.0) {
      bucket.tokens -= 1.0;
      admitted = true;
    }
  }
  if (admitted) {
    allowed_.fetch_add(1, std::memory_order_relaxed);
    if (allowed_counter_ != nullptr) allowed_counter_->inc();
  } else {
    throttled_.fetch_add(1, std::memory_order_relaxed);
    if (throttled_counter_ != nullptr) throttled_counter_->inc();
  }
  return admitted;
}

double TokenBucketLimiter::available(const std::string& key) {
  const auto now = clock_();
  const std::lock_guard lock(mutex_);
  return refill(key, now).tokens;
}

void TokenBucketLimiter::evict_idle(std::chrono::seconds idle) {
  const auto now = clock_();
  const std::lock_guard lock(mutex_);
  const std::size_t dropped = std::erase_if(buckets_, [&](const auto& entry) {
    return now - entry.second.last_refill > idle;
  });
  evictions_.fetch_add(dropped, std::memory_order_relaxed);
  if (evictions_counter_ != nullptr && dropped != 0) evictions_counter_->inc(dropped);
}

std::size_t TokenBucketLimiter::tracked_keys() {
  const std::lock_guard lock(mutex_);
  return buckets_.size();
}

}  // namespace appstore::net
