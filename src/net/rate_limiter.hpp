// Token-bucket rate limiting keyed by client identity.
//
// The monitored Chinese appstores rate-limit by source IP (§2.2: "The
// Chinese appstores apply rate limiting to hosts away from China"); the
// simulated appstore service enforces the same policy, and the crawler's
// proxy rotation exists to work around it — exactly the dynamics of the
// paper's PlanetLab setup.
//
// Time is injected (a Clock function) so tests and the deterministic crawl
// simulation can drive it with virtual time.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>

#include "obs/registry.hpp"

namespace appstore::net {

class TokenBucketLimiter {
 public:
  using Clock = std::function<std::chrono::steady_clock::time_point()>;

  /// Hard cap on distinct per-key buckets (see `max_keys`).
  static constexpr std::size_t kDefaultMaxKeys = 4096;

  /// `rate_per_second` tokens refill continuously up to `burst`. `max_keys`
  /// bounds the per-key state: every request carries a client-chosen key
  /// (the "X-Client-Id" header), so without a cap an adversary — or a
  /// long-enough run — grows the map forever. Inserting the (max_keys+1)-th
  /// key evicts the stalest eighth of the buckets (those idle longest), so
  /// the hot working set survives and an evicted-then-returning client
  /// merely starts from a full burst again.
  TokenBucketLimiter(double rate_per_second, double burst, Clock clock = nullptr,
                     std::size_t max_keys = kDefaultMaxKeys);

  /// Mirrors decisions into `rate_limiter_allowed_total` /
  /// `rate_limiter_throttled_total` / `rate_limiter_evictions_total`
  /// counters of `registry` (which must outlive the limiter). Call once,
  /// before traffic.
  void attach_metrics(obs::Registry& registry);

  /// Consumes one token for `key`; false = rate limited.
  [[nodiscard]] bool allow(const std::string& key);

  /// Total allow() calls that were rate limited / admitted.
  [[nodiscard]] std::uint64_t throttled() const noexcept {
    return throttled_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t allowed() const noexcept {
    return allowed_.load(std::memory_order_relaxed);
  }

  /// Tokens currently available for `key` (for tests/metrics).
  [[nodiscard]] double available(const std::string& key);

  /// Drops per-key state older than `idle` (housekeeping for long runs).
  void evict_idle(std::chrono::seconds idle);

  /// Buckets dropped by the cap or evict_idle() since construction.
  [[nodiscard]] std::uint64_t evictions() const noexcept {
    return evictions_.load(std::memory_order_relaxed);
  }

  /// Distinct keys currently tracked (always <= max_keys).
  [[nodiscard]] std::size_t tracked_keys();

 private:
  struct Bucket {
    double tokens;
    std::chrono::steady_clock::time_point last_refill;
  };

  [[nodiscard]] Bucket& refill(const std::string& key,
                               std::chrono::steady_clock::time_point now);

  /// Drops the stalest eighth of the map (at least one bucket). Caller
  /// holds mutex_.
  void evict_stalest_locked();

  double rate_;
  double burst_;
  Clock clock_;
  std::size_t max_keys_;
  std::atomic<std::uint64_t> allowed_{0};
  std::atomic<std::uint64_t> throttled_{0};
  std::atomic<std::uint64_t> evictions_{0};
  obs::Counter* allowed_counter_ = nullptr;
  obs::Counter* throttled_counter_ = nullptr;
  obs::Counter* evictions_counter_ = nullptr;
  std::mutex mutex_;
  std::unordered_map<std::string, Bucket> buckets_;
};

}  // namespace appstore::net
