// Token-bucket rate limiting keyed by client identity.
//
// The monitored Chinese appstores rate-limit by source IP (§2.2: "The
// Chinese appstores apply rate limiting to hosts away from China"); the
// simulated appstore service enforces the same policy, and the crawler's
// proxy rotation exists to work around it — exactly the dynamics of the
// paper's PlanetLab setup.
//
// Time is injected (a Clock function) so tests and the deterministic crawl
// simulation can drive it with virtual time.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>

#include "obs/registry.hpp"

namespace appstore::net {

class TokenBucketLimiter {
 public:
  using Clock = std::function<std::chrono::steady_clock::time_point()>;

  /// `rate_per_second` tokens refill continuously up to `burst`.
  TokenBucketLimiter(double rate_per_second, double burst, Clock clock = nullptr);

  /// Mirrors decisions into `rate_limiter_allowed_total` /
  /// `rate_limiter_throttled_total` counters of `registry` (which must
  /// outlive the limiter). Call once, before traffic.
  void attach_metrics(obs::Registry& registry);

  /// Consumes one token for `key`; false = rate limited.
  [[nodiscard]] bool allow(const std::string& key);

  /// Total allow() calls that were rate limited / admitted.
  [[nodiscard]] std::uint64_t throttled() const noexcept {
    return throttled_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t allowed() const noexcept {
    return allowed_.load(std::memory_order_relaxed);
  }

  /// Tokens currently available for `key` (for tests/metrics).
  [[nodiscard]] double available(const std::string& key);

  /// Drops per-key state older than `idle` (housekeeping for long runs).
  void evict_idle(std::chrono::seconds idle);

 private:
  struct Bucket {
    double tokens;
    std::chrono::steady_clock::time_point last_refill;
  };

  [[nodiscard]] Bucket& refill(const std::string& key,
                               std::chrono::steady_clock::time_point now);

  double rate_;
  double burst_;
  Clock clock_;
  std::atomic<std::uint64_t> allowed_{0};
  std::atomic<std::uint64_t> throttled_{0};
  obs::Counter* allowed_counter_ = nullptr;
  obs::Counter* throttled_counter_ = nullptr;
  std::mutex mutex_;
  std::unordered_map<std::string, Bucket> buckets_;
};

}  // namespace appstore::net
