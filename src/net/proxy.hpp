// Proxy pool with health tracking (§2.2 / Fig. 1).
//
// The paper routed crawl requests through ~100 PlanetLab nodes to avoid IP
// blacklisting, using only nodes located in China for the Chinese stores.
// We model each proxy as a distinct client identity with a region tag; the
// crawler picks a random healthy proxy per request (as the paper's crawlers
// did) and quarantines proxies that keep failing.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace appstore::net {

enum class Region : std::uint8_t { kChina, kEurope, kUsa };

[[nodiscard]] std::string_view to_string(Region region) noexcept;

struct Proxy {
  std::string id;       ///< client identity presented to the service
  Region region = Region::kEurope;
  std::uint32_t consecutive_failures = 0;
  bool quarantined = false;
  std::uint64_t requests = 0;
};

/// Thread-safe: pick/report/healthy_count take an internal lock, so the
/// parallel crawler's workers can share one pool.
class ProxyPool {
 public:
  /// Builds `count` proxies round-robining over `regions`.
  ProxyPool(std::size_t count, std::vector<Region> regions);

  /// Picks a random non-quarantined proxy, optionally restricted to a
  /// region (Chinese stores only accept Chinese proxies). nullopt if none.
  [[nodiscard]] std::optional<std::size_t> pick(util::Rng& rng,
                                                std::optional<Region> region = std::nullopt);

  /// Outcome reporting: failures quarantine a proxy after `max_failures`
  /// consecutive errors; any success resets the counter.
  void report_success(std::size_t index);
  void report_failure(std::size_t index, std::uint32_t max_failures = 3);

  /// Returns a quarantined proxy to service (operator intervention).
  void reinstate(std::size_t index);

  /// Direct read access, for quiescent inspection (tests, reports): the
  /// reference is NOT protected against concurrent mutation. `id` and
  /// `region` are immutable after construction and always safe to read.
  [[nodiscard]] const Proxy& proxy(std::size_t index) const { return proxies_.at(index); }
  [[nodiscard]] std::size_t size() const noexcept { return proxies_.size(); }
  [[nodiscard]] std::size_t healthy_count(std::optional<Region> region = std::nullopt) const;

 private:
  mutable std::mutex mutex_;
  std::vector<Proxy> proxies_;
};

}  // namespace appstore::net
