#include "net/proxy.hpp"

#include <stdexcept>

#include "util/format.hpp"

namespace appstore::net {

std::string_view to_string(Region region) noexcept {
  switch (region) {
    case Region::kChina: return "cn";
    case Region::kEurope: return "eu";
    case Region::kUsa: return "us";
  }
  return "?";
}

ProxyPool::ProxyPool(std::size_t count, std::vector<Region> regions) {
  if (regions.empty()) throw std::invalid_argument("ProxyPool: no regions");
  proxies_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const Region region = regions[i % regions.size()];
    proxies_.push_back(Proxy{util::format("proxy-{}-{}", to_string(region), i), region, 0,
                             false, 0});
  }
}

std::optional<std::size_t> ProxyPool::pick(util::Rng& rng, std::optional<Region> region) {
  const std::lock_guard lock(mutex_);
  std::vector<std::size_t> eligible;
  eligible.reserve(proxies_.size());
  for (std::size_t i = 0; i < proxies_.size(); ++i) {
    const Proxy& proxy = proxies_[i];
    if (proxy.quarantined) continue;
    if (region.has_value() && proxy.region != *region) continue;
    eligible.push_back(i);
  }
  if (eligible.empty()) return std::nullopt;
  const std::size_t choice = eligible[static_cast<std::size_t>(rng.below(eligible.size()))];
  ++proxies_[choice].requests;
  return choice;
}

void ProxyPool::report_success(std::size_t index) {
  const std::lock_guard lock(mutex_);
  proxies_.at(index).consecutive_failures = 0;
}

void ProxyPool::report_failure(std::size_t index, std::uint32_t max_failures) {
  const std::lock_guard lock(mutex_);
  Proxy& proxy = proxies_.at(index);
  if (++proxy.consecutive_failures >= max_failures) proxy.quarantined = true;
}

void ProxyPool::reinstate(std::size_t index) {
  const std::lock_guard lock(mutex_);
  Proxy& proxy = proxies_.at(index);
  proxy.quarantined = false;
  proxy.consecutive_failures = 0;
}

std::size_t ProxyPool::healthy_count(std::optional<Region> region) const {
  const std::lock_guard lock(mutex_);
  std::size_t count = 0;
  for (const auto& proxy : proxies_) {
    if (proxy.quarantined) continue;
    if (region.has_value() && proxy.region != *region) continue;
    ++count;
  }
  return count;
}

}  // namespace appstore::net
