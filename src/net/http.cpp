#include "net/http.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>

#include "util/format.hpp"
#include "util/strings.hpp"

namespace appstore::net {

bool HeaderLess::operator()(std::string_view a, std::string_view b) const noexcept {
  return std::lexicographical_compare(a.begin(), a.end(), b.begin(), b.end(),
                                      [](char x, char y) {
                                        return std::tolower(static_cast<unsigned char>(x)) <
                                               std::tolower(static_cast<unsigned char>(y));
                                      });
}

std::string HttpRequest::path() const {
  const std::size_t question = target.find('?');
  return question == std::string::npos ? target : target.substr(0, question);
}

std::map<std::string, std::string> HttpRequest::query() const {
  std::map<std::string, std::string> parameters;
  const std::size_t question = target.find('?');
  if (question == std::string::npos) return parameters;
  const std::string_view query_string = std::string_view(target).substr(question + 1);
  for (const auto pair : util::split(query_string, '&')) {
    if (pair.empty()) continue;
    const std::size_t eq = pair.find('=');
    if (eq == std::string_view::npos) {
      parameters.emplace(std::string(pair), "");
    } else {
      parameters.emplace(std::string(pair.substr(0, eq)), std::string(pair.substr(eq + 1)));
    }
  }
  return parameters;
}

std::string HttpRequest::serialize() const {
  std::string out = util::format("{} {} HTTP/1.1\r\n", method, target);
  for (const auto& [name, value] : headers) {
    out += util::format("{}: {}\r\n", name, value);
  }
  if (!body.empty() && !headers.contains("Content-Length")) {
    out += util::format("Content-Length: {}\r\n", body.size());
  }
  out += "\r\n";
  out += body;
  return out;
}

std::string HttpResponse::serialize() const {
  std::string out = util::format("HTTP/1.1 {} {}\r\n", status, reason);
  for (const auto& [name, value] : headers) {
    out += util::format("{}: {}\r\n", name, value);
  }
  if (!headers.contains("Content-Length")) {
    out += util::format("Content-Length: {}\r\n", body.size());
  }
  out += "\r\n";
  out += body;
  return out;
}

HttpResponse HttpResponse::text(int status, std::string body) {
  HttpResponse response;
  response.status = status;
  response.reason = status == 200   ? "OK"
                    : status == 404 ? "Not Found"
                    : status == 400 ? "Bad Request"
                    : status == 403 ? "Forbidden"
                    : status == 429 ? "Too Many Requests"
                                    : "Status";
  response.headers["Content-Type"] = "text/plain";
  response.body = std::move(body);
  return response;
}

HttpResponse HttpResponse::json(int status, std::string body) {
  HttpResponse response = text(status, std::move(body));
  response.headers["Content-Type"] = "application/json";
  return response;
}

namespace {

bool parse_headers(std::string_view block, Headers& headers) {
  while (!block.empty()) {
    const std::size_t eol = block.find("\r\n");
    const std::string_view line = eol == std::string_view::npos ? block : block.substr(0, eol);
    block.remove_prefix(eol == std::string_view::npos ? block.size() : eol + 2);
    if (line.empty()) continue;
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) return false;
    headers.emplace(std::string(util::trim(line.substr(0, colon))),
                    std::string(util::trim(line.substr(colon + 1))));
  }
  return true;
}

}  // namespace

bool parse_request_head(std::string_view head, HttpRequest& out) {
  const std::size_t eol = head.find("\r\n");
  if (eol == std::string_view::npos) return false;
  const std::string_view request_line = head.substr(0, eol);

  const auto parts = util::split(request_line, ' ');
  if (parts.size() != 3) return false;
  if (!parts[2].starts_with("HTTP/1.")) return false;
  out.method = std::string(parts[0]);
  out.target = std::string(parts[1]);
  if (out.method.empty() || out.target.empty() || out.target[0] != '/') return false;
  return parse_headers(head.substr(eol + 2), out.headers);
}

bool parse_response_head(std::string_view head, HttpResponse& out) {
  const std::size_t eol = head.find("\r\n");
  if (eol == std::string_view::npos) return false;
  const std::string_view status_line = head.substr(0, eol);

  if (!status_line.starts_with("HTTP/1.")) return false;
  const std::size_t first_space = status_line.find(' ');
  if (first_space == std::string_view::npos) return false;
  const std::size_t second_space = status_line.find(' ', first_space + 1);
  const std::string_view code =
      status_line.substr(first_space + 1, second_space == std::string_view::npos
                                              ? std::string_view::npos
                                              : second_space - first_space - 1);
  std::uint64_t parsed = 0;
  if (!util::parse_u64(code, parsed) || parsed < 100 || parsed > 599) return false;
  out.status = static_cast<int>(parsed);
  out.reason = second_space == std::string_view::npos
                   ? ""
                   : std::string(status_line.substr(second_space + 1));
  return parse_headers(head.substr(eol + 2), out.headers);
}

bool HttpReader::fill() {
  std::byte chunk[4096];
  const std::size_t n = stream_.read_some(chunk);
  if (n == 0) return false;
  buffer_.append(reinterpret_cast<const char*>(chunk), n);
  return true;
}

std::optional<std::string> HttpReader::read_head() {
  for (;;) {
    const std::size_t end = buffer_.find("\r\n\r\n", consumed_);
    if (end != std::string::npos) {
      std::string head = buffer_.substr(consumed_, end - consumed_ + 2);  // keep last CRLF
      consumed_ = end + 4;
      return head;
    }
    if (buffer_.size() - consumed_ > max_head_) {
      throw std::runtime_error("HttpReader: header block too large");
    }
    if (!fill()) {
      if (buffer_.size() == consumed_) return std::nullopt;  // clean EOF
      throw std::runtime_error("HttpReader: EOF inside header block");
    }
  }
}

std::string HttpReader::read_body(const Headers& headers) {
  const auto it = headers.find("Content-Length");
  if (it == headers.end()) return {};
  std::uint64_t length = 0;
  if (!util::parse_u64(it->second, length)) {
    throw std::runtime_error("HttpReader: bad Content-Length");
  }
  if (length > max_body_) throw std::runtime_error("HttpReader: body too large");
  while (buffer_.size() - consumed_ < length) {
    if (!fill()) throw std::runtime_error("HttpReader: EOF inside body");
  }
  std::string body = buffer_.substr(consumed_, length);
  consumed_ += length;
  // Compact the buffer so long-lived connections don't grow it unboundedly.
  buffer_.erase(0, consumed_);
  consumed_ = 0;
  return body;
}

std::optional<HttpRequest> HttpReader::read_request() {
  const auto head = read_head();
  if (!head.has_value()) return std::nullopt;
  HttpRequest request;
  if (!parse_request_head(*head, request)) {
    throw std::runtime_error("HttpReader: malformed request head");
  }
  request.body = read_body(request.headers);
  return request;
}

std::optional<HttpResponse> HttpReader::read_response() {
  const auto head = read_head();
  if (!head.has_value()) return std::nullopt;
  HttpResponse response;
  if (!parse_response_head(*head, response)) {
    throw std::runtime_error("HttpReader: malformed response head");
  }
  response.body = read_body(response.headers);
  return response;
}

}  // namespace appstore::net
