// Adaptive admission control for the worker-pool server's ready queue.
//
// The fixed `queue_capacity` cliff sheds only once the backlog is already
// `capacity` deep — by then every queued request has eaten the full queue
// delay, so p99 latency collapses long before the 503s start. The
// AdmissionController replaces that cliff with a latency-target policy:
//
//   * kQueueDelay (CoDel-style, the primary mode): the controller tracks the
//     *minimum* queue wait observed over each control interval. A minimum
//     above the target delay means even the luckiest request waited too long
//     — the queue is standing, not bursting — so the admissible depth is cut
//     multiplicatively. Intervals whose minimum is back under the target
//     (or that saw no traffic) grow the limit additively back toward the
//     configured ceiling: classic AIMD around the latency target.
//   * kGradient: an alternative in the spirit of Netflix's concurrency-limits
//     gradient algorithm — each interval scales the limit by
//     clamp(target / avg_wait, 0.5, 2.0) plus a sqrt(limit) exploration
//     headroom, converging to the depth whose average wait sits at the
//     target.
//   * kFixed reproduces the legacy behaviour bit-for-bit: admit everything
//     below the ceiling, shed at the ceiling, never adapt. It is the default
//     so existing servers are unchanged.
//
// The controller also maintains an EWMA of observed queue waits and converts
// it to the Retry-After estimate the shed paths advertise (floor 1 s): a
// client told to come back after roughly one smoothed queue drain will find
// the backlog gone, instead of the hardcoded "1" the server used to send
// regardless of how deep the overload ran.
//
// Thread-safety: admit()/observe() are called concurrently from the
// dispatcher and every worker. The hot path is lock-free (atomic limit +
// deadline check); interval statistics take a small mutex only to fold a
// sample in, and interval rolls happen under that same mutex at most once
// per interval.
//
// Determinism: all time flows through an optional chaos::Clock, so the
// property suite (gameday_test) replays thousands of seeded load shapes on a
// VirtualClock and asserts the two invariants the serving layer relies on:
// the controller never sheds while measured queue delay stays under target,
// and the limit always returns to the ceiling after load drops.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string_view>

#include "chaos/clock.hpp"
#include "obs/registry.hpp"

namespace appstore::net {

enum class AdmissionMode : std::uint8_t {
  kFixed,       ///< legacy queue-capacity cliff (default; no adaptation)
  kQueueDelay,  ///< CoDel-style AIMD on interval-min queue wait (primary)
  kGradient,    ///< gradient concurrency limit on interval-avg queue wait
};

/// Metric/report label for a mode ("fixed", "queue_delay", "gradient").
[[nodiscard]] std::string_view to_string(AdmissionMode mode) noexcept;

enum class AdmissionDecision : std::uint8_t {
  kAdmit,      ///< enqueue the connection
  kQueueFull,  ///< depth hit the hard ceiling (the legacy cliff)
  kOverload,   ///< depth hit the adaptive limit (kQueueDelay/kGradient only)
};

struct AdmissionOptions {
  AdmissionMode mode = AdmissionMode::kFixed;
  /// Queue-delay SLO the adaptive modes steer toward.
  std::chrono::nanoseconds target_delay = std::chrono::milliseconds(5);
  /// Control interval: how often the limit is re-evaluated.
  std::chrono::nanoseconds interval = std::chrono::milliseconds(100);
  /// The adaptive limit never drops below this (so the server always makes
  /// forward progress and can observe recovery).
  std::size_t min_limit = 2;
  /// Hard cap on queue depth; also the limit's resting value when the queue
  /// delay is healthy. The server sets this to its queue_capacity.
  std::size_t limit_ceiling = 256;
  /// Multiplicative decrease applied when an interval's queue delay exceeds
  /// the target (kQueueDelay), in (0, 1).
  double decrease = 0.7;
  /// Additive increase per healthy interval; 0 = max(1, limit_ceiling / 16),
  /// i.e. full recovery within ~16 quiet intervals.
  std::size_t increase = 0;
  /// Time source (nullptr = real time). The property suite substitutes a
  /// VirtualClock. Must outlive the controller.
  chaos::Clock* clock = nullptr;
  /// Optional sink for admission_limit (gauge) and admission_sheds_total.
  /// Must outlive the controller.
  obs::Registry* metrics = nullptr;
};

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options);

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Admission decision for a connection about to enter a queue currently
  /// `queue_depth` deep. kQueueFull at the hard ceiling in every mode;
  /// kOverload at the adaptive limit in the adaptive modes (counted in
  /// sheds()/admission_sheds_total). Also advances the control interval.
  [[nodiscard]] AdmissionDecision admit(std::size_t queue_depth);

  /// Feeds one measured queue wait (enqueue -> dequeue) into the current
  /// control interval and the Retry-After EWMA.
  void observe(std::chrono::nanoseconds queue_wait);

  /// Current admissible queue depth (== limit_ceiling in kFixed).
  [[nodiscard]] std::size_t limit() const noexcept {
    return limit_.load(std::memory_order_relaxed);
  }

  /// Estimated seconds until a shed client should retry: the smoothed queue
  /// wait (EWMA, alpha 1/8) rounded up, floored at 1 s and capped at 60 s.
  [[nodiscard]] int retry_after_seconds() const noexcept;

  /// Connections refused with kOverload so far.
  [[nodiscard]] std::uint64_t sheds() const noexcept {
    return sheds_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] const AdmissionOptions& options() const noexcept { return options_; }

 private:
  /// Closes the current control interval and applies the mode's limit update
  /// if `now` passed the interval deadline.
  void maybe_roll(std::chrono::steady_clock::time_point now);
  void apply_update(std::int64_t min_wait_ns, std::int64_t sum_wait_ns,
                    std::uint64_t samples);
  void publish_limit(std::size_t next) noexcept;

  AdmissionOptions options_;
  std::size_t increase_step_;
  std::atomic<std::size_t> limit_;
  std::atomic<std::uint64_t> sheds_{0};
  std::atomic<std::int64_t> ewma_wait_ns_{0};
  /// Interval deadline as ns-since-epoch of the (possibly virtual) steady
  /// clock; checked lock-free on every admit/observe.
  std::atomic<std::int64_t> deadline_ns_;

  std::mutex mutex_;  ///< guards the interval accumulators below
  std::int64_t interval_min_ns_ = -1;  ///< -1 = no samples this interval
  std::int64_t interval_sum_ns_ = 0;
  std::uint64_t interval_samples_ = 0;

  obs::Gauge* limit_gauge_ = nullptr;
  obs::Counter* shed_counter_ = nullptr;
};

}  // namespace appstore::net
