// Per-upstream circuit breaker (closed -> open -> half-open -> closed).
//
// The crawler keeps one breaker per proxy identity: a proxy that keeps
// failing at the transport/5xx level trips its breaker open, and the
// crawler stops routing requests through it until the open timeout lapses.
// Then the breaker admits a limited number of half-open probes; a probe
// success closes it, a probe failure re-opens it. This is the *temporal*
// counterpart of ProxyPool quarantine: quarantine is for deterministic
// rejections (a region-blocked proxy will 403 forever), the breaker is for
// transient infrastructure trouble that deserves a retry after a cool-off.
//
// Time is read through chaos::Clock, so breaker lifecycles (open ->
// half-open transitions) replay deterministically under a VirtualClock in
// the robustness tests.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string_view>

#include "chaos/clock.hpp"

namespace appstore::net {

class CircuitBreaker {
 public:
  enum class State : std::uint8_t { kClosed = 0, kOpen, kHalfOpen };

  /// Aggregate construction options (the Options-struct API).
  struct Options {
    /// Consecutive failures that trip the breaker open. 0 disables the
    /// breaker entirely: allow() is always true, record_* are no-ops.
    std::uint32_t failure_threshold = 5;
    /// How long the breaker stays open before admitting half-open probes.
    std::chrono::milliseconds open_timeout = std::chrono::milliseconds(250);
    /// Maximum outstanding probes while half-open; further allow() calls
    /// are rejected until a probe reports back.
    std::uint32_t half_open_probes = 1;
    /// Probe successes required to close again.
    std::uint32_t success_threshold = 1;
    /// Time source (nullptr = real time). Must outlive the breaker.
    chaos::Clock* clock = nullptr;
  };

  CircuitBreaker() : CircuitBreaker(Options{}) {}
  explicit CircuitBreaker(Options options) : options_(options) {}

  /// May a request proceed? Open breakers transition to half-open here once
  /// the open timeout has lapsed; half-open breakers admit up to
  /// `half_open_probes` outstanding probes.
  [[nodiscard]] bool allow();

  /// Reports a successful exchange. Closes a half-open breaker once
  /// `success_threshold` probes succeeded; resets the failure streak when
  /// closed.
  void record_success();

  /// Reports a failed exchange. Returns true when THIS failure tripped the
  /// breaker open (closed -> open on the threshold, or a failed half-open
  /// probe) so callers can count breaker-open events exactly once.
  [[nodiscard]] bool record_failure();

  [[nodiscard]] State state() const;

  /// Times the breaker transitioned to open (including half-open -> open).
  [[nodiscard]] std::uint64_t opened_total() const;

  [[nodiscard]] const Options& options() const noexcept { return options_; }

 private:
  /// Trips to open; caller holds the lock. Returns true (for record_failure).
  bool trip_locked();

  Options options_;
  mutable std::mutex mutex_;
  State state_ = State::kClosed;
  std::uint32_t consecutive_failures_ = 0;
  std::uint32_t probes_in_flight_ = 0;
  std::uint32_t probe_successes_ = 0;
  std::uint64_t opened_total_ = 0;
  std::chrono::steady_clock::time_point opened_at_{};
};

[[nodiscard]] std::string_view to_string(CircuitBreaker::State state) noexcept;

}  // namespace appstore::net
