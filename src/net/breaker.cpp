#include "net/breaker.hpp"

namespace appstore::net {

std::string_view to_string(CircuitBreaker::State state) noexcept {
  switch (state) {
    case CircuitBreaker::State::kClosed: return "closed";
    case CircuitBreaker::State::kOpen: return "open";
    case CircuitBreaker::State::kHalfOpen: return "half-open";
  }
  return "unknown";
}

bool CircuitBreaker::trip_locked() {
  state_ = State::kOpen;
  opened_at_ = chaos::now_or_real(options_.clock);
  consecutive_failures_ = 0;
  probes_in_flight_ = 0;
  probe_successes_ = 0;
  ++opened_total_;
  return true;
}

bool CircuitBreaker::allow() {
  if (options_.failure_threshold == 0) return true;
  const std::lock_guard lock(mutex_);
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (chaos::now_or_real(options_.clock) - opened_at_ < options_.open_timeout) {
        return false;
      }
      state_ = State::kHalfOpen;
      probes_in_flight_ = 0;
      probe_successes_ = 0;
      [[fallthrough]];
    case State::kHalfOpen:
      if (probes_in_flight_ >= options_.half_open_probes) return false;
      ++probes_in_flight_;
      return true;
  }
  return true;
}

void CircuitBreaker::record_success() {
  if (options_.failure_threshold == 0) return;
  const std::lock_guard lock(mutex_);
  switch (state_) {
    case State::kClosed:
      consecutive_failures_ = 0;
      return;
    case State::kOpen:
      // A straggler from before the trip; the breaker stays open.
      return;
    case State::kHalfOpen:
      if (probes_in_flight_ > 0) --probes_in_flight_;
      if (++probe_successes_ >= options_.success_threshold) {
        state_ = State::kClosed;
        consecutive_failures_ = 0;
        probes_in_flight_ = 0;
        probe_successes_ = 0;
      }
      return;
  }
}

bool CircuitBreaker::record_failure() {
  if (options_.failure_threshold == 0) return false;
  const std::lock_guard lock(mutex_);
  switch (state_) {
    case State::kClosed:
      if (++consecutive_failures_ >= options_.failure_threshold) return trip_locked();
      return false;
    case State::kOpen:
      // A straggler; already open, not a new trip.
      return false;
    case State::kHalfOpen:
      // A failed probe re-opens immediately (and restarts the timeout).
      return trip_locked();
  }
  return false;
}

CircuitBreaker::State CircuitBreaker::state() const {
  const std::lock_guard lock(mutex_);
  return state_;
}

std::uint64_t CircuitBreaker::opened_total() const {
  const std::lock_guard lock(mutex_);
  return opened_total_;
}

}  // namespace appstore::net
