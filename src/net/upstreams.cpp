#include "net/upstreams.hpp"

#include <algorithm>
#include <vector>

namespace appstore::net {

UpstreamTable::UpstreamTable(Options options) : options_(options) {
  options_.max_keys = std::max<std::size_t>(1, options_.max_keys);
}

void UpstreamTable::evict_stalest_locked() {
  // Evicting an eighth (not one) amortises the O(n) scan over the next n/8
  // inserts, keeping the cap-hit path O(1) amortised under upstream churn
  // (the same policy as TokenBucketLimiter::evict_stalest_locked).
  const std::size_t want = std::max<std::size_t>(1, entries_.size() / 8);
  std::vector<std::chrono::steady_clock::time_point> stamps;
  stamps.reserve(entries_.size());
  for (const auto& entry : entries_) stamps.push_back(entry.second.last_used);
  auto nth = stamps.begin() + static_cast<std::ptrdiff_t>(want - 1);
  std::nth_element(stamps.begin(), nth, stamps.end());
  const auto cutoff = *nth;
  std::size_t dropped = 0;
  std::erase_if(entries_, [&](const auto& entry) {
    if (dropped >= want || entry.second.last_used > cutoff) return false;
    ++dropped;
    return true;
  });
  evictions_.fetch_add(dropped, std::memory_order_relaxed);
}

std::shared_ptr<CircuitBreaker> UpstreamTable::breaker(const std::string& id) {
  const auto now = chaos::now_or_real(options_.clock);
  const std::lock_guard lock(mutex_);
  if (entries_.size() >= options_.max_keys && !entries_.contains(id)) {
    evict_stalest_locked();
  }
  auto [it, inserted] = entries_.try_emplace(id);
  if (inserted) {
    it->second.breaker = std::make_shared<CircuitBreaker>(options_.breaker);
  }
  it->second.last_used = now;
  return it->second.breaker;
}

void UpstreamTable::forget(const std::string& id) {
  const std::lock_guard lock(mutex_);
  if (entries_.erase(id) != 0) {
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::size_t UpstreamTable::tracked_keys() {
  const std::lock_guard lock(mutex_);
  return entries_.size();
}

}  // namespace appstore::net
