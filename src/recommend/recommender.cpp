#include "recommend/recommender.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

namespace appstore::recommend {

namespace {

constexpr std::uint32_t kNone = std::numeric_limits<std::uint32_t>::max();

[[nodiscard]] std::vector<std::uint64_t> download_counts(const Dataset& dataset) {
  std::vector<std::uint64_t> counts(dataset.app_count, 0);
  for (const auto& sequence : dataset.user_sequences) {
    for (const auto app : sequence) ++counts[app];
  }
  return counts;
}

[[nodiscard]] std::vector<std::uint32_t> order_by_popularity(
    std::span<const std::uint64_t> counts) {
  std::vector<std::uint32_t> order(counts.size());
  for (std::uint32_t a = 0; a < counts.size(); ++a) order[a] = a;
  std::stable_sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    return counts[a] > counts[b];
  });
  return order;
}

[[nodiscard]] bool in_history(std::span<const std::uint32_t> history, std::uint32_t app) {
  return std::find(history.begin(), history.end(), app) != history.end();
}

/// Fills `out` from `ranked` (already preference-ordered), skipping history
/// and duplicates, until k items or the source is exhausted.
void fill_from(std::vector<std::uint32_t>& out, std::span<const std::uint32_t> ranked,
               std::span<const std::uint32_t> history, std::size_t k) {
  for (const auto app : ranked) {
    if (out.size() >= k) return;
    if (in_history(history, app)) continue;
    if (std::find(out.begin(), out.end(), app) != out.end()) continue;
    out.push_back(app);
  }
}

}  // namespace

// ---- POPULARITY ----------------------------------------------------------------

void PopularityRecommender::train(const Dataset& dataset) {
  by_popularity_ = order_by_popularity(download_counts(dataset));
}

std::vector<std::uint32_t> PopularityRecommender::recommend(
    std::span<const std::uint32_t> history, std::size_t k) const {
  std::vector<std::uint32_t> out;
  out.reserve(k);
  fill_from(out, by_popularity_, history, k);
  return out;
}

// ---- CATEGORY ------------------------------------------------------------------

void CategoryRecommender::train(const Dataset& dataset) {
  app_category_ = dataset.app_category;
  const auto counts = download_counts(dataset);
  by_popularity_ = order_by_popularity(counts);

  std::uint32_t categories = 0;
  for (const auto c : app_category_) categories = std::max(categories, c + 1);
  category_by_popularity_.assign(categories, {});
  for (const auto app : by_popularity_) {
    category_by_popularity_[app_category_[app]].push_back(app);
  }
}

std::vector<std::uint32_t> CategoryRecommender::recommend(
    std::span<const std::uint32_t> history, std::size_t k) const {
  std::vector<std::uint32_t> out;
  out.reserve(k);
  if (!history.empty()) {
    const std::uint32_t recent_category = app_category_[history.back()];
    fill_from(out, category_by_popularity_[recent_category], history, k);
  }
  fill_from(out, by_popularity_, history, k);  // pad with global top
  return out;
}

// ---- ITEM-CF --------------------------------------------------------------------

void ItemCfRecommender::train(const Dataset& dataset) {
  const auto counts = download_counts(dataset);
  by_popularity_ = order_by_popularity(counts);

  // Co-download counts via per-user pairs. Sequences are short (d apps), so
  // the pair loop is O(sum d^2) — fine for the evaluation scales here.
  std::vector<std::unordered_map<std::uint32_t, std::uint32_t>> co(dataset.app_count);
  for (const auto& sequence : dataset.user_sequences) {
    for (std::size_t i = 0; i < sequence.size(); ++i) {
      for (std::size_t j = i + 1; j < sequence.size(); ++j) {
        const std::uint32_t a = sequence[i];
        const std::uint32_t b = sequence[j];
        if (a == b) continue;
        ++co[a][b];
        ++co[b][a];
      }
    }
  }

  similar_.assign(dataset.app_count, {});
  for (std::uint32_t app = 0; app < dataset.app_count; ++app) {
    auto& neighbors = similar_[app];
    neighbors.reserve(co[app].size());
    for (const auto& [other, pair_count] : co[app]) {
      const double denominator = std::sqrt(static_cast<double>(counts[app]) *
                                           static_cast<double>(counts[other]));
      if (denominator <= 0.0) continue;
      neighbors.push_back(
          Neighbor{other, static_cast<float>(static_cast<double>(pair_count) / denominator)});
    }
    std::sort(neighbors.begin(), neighbors.end(), [](const Neighbor& a, const Neighbor& b) {
      return a.similarity > b.similarity;
    });
    if (neighbors.size() > neighbors_) neighbors.resize(neighbors_);
  }
}

std::vector<std::uint32_t> ItemCfRecommender::recommend(
    std::span<const std::uint32_t> history, std::size_t k) const {
  std::unordered_map<std::uint32_t, float> scores;
  for (const auto item : history) {
    if (item >= similar_.size()) continue;
    for (const auto& neighbor : similar_[item]) {
      if (in_history(history, neighbor.app)) continue;
      scores[neighbor.app] += neighbor.similarity;
    }
  }
  std::vector<std::pair<std::uint32_t, float>> ranked(scores.begin(), scores.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;  // deterministic tie-break
  });

  std::vector<std::uint32_t> out;
  out.reserve(k);
  for (const auto& [app, score] : ranked) {
    if (out.size() >= k) break;
    out.push_back(app);
  }
  fill_from(out, by_popularity_, history, k);
  return out;
}

// ---- HYBRID ---------------------------------------------------------------------

void HybridRecommender::train(const Dataset& dataset) {
  item_cf_.train(dataset);
  app_category_ = dataset.app_category;
  const auto counts = download_counts(dataset);
  const auto order = order_by_popularity(counts);
  std::uint32_t categories = 0;
  for (const auto c : app_category_) categories = std::max(categories, c + 1);
  category_by_popularity_.assign(categories, {});
  for (const auto app : order) {
    category_by_popularity_[app_category_[app]].push_back(app);
  }
}

std::vector<std::uint32_t> HybridRecommender::recommend(
    std::span<const std::uint32_t> history, std::size_t k) const {
  // Recent categories (the clustering effect's temporal locality).
  std::vector<std::uint32_t> recent_categories;
  const std::size_t window = std::min(recent_window_, history.size());
  for (std::size_t i = history.size() - window; i < history.size(); ++i) {
    recent_categories.push_back(app_category_[history[i]]);
  }
  const auto is_recent_category = [&](std::uint32_t app) {
    return std::find(recent_categories.begin(), recent_categories.end(),
                     app_category_[app]) != recent_categories.end();
  };

  // Over-fetch CF candidates, re-rank with the category boost.
  const auto candidates = item_cf_.recommend(history, k * 4);
  std::vector<std::pair<std::uint32_t, float>> ranked;
  ranked.reserve(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    // CF rank as a proxy score (highest first), boosted by recency.
    float score = static_cast<float>(candidates.size() - i);
    if (is_recent_category(candidates[i])) score *= recency_boost_;
    ranked.emplace_back(candidates[i], score);
  }
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });

  std::vector<std::uint32_t> out;
  out.reserve(k);
  for (const auto& [app, score] : ranked) {
    if (out.size() >= k) break;
    out.push_back(app);
  }
  // Pad with popular apps of the most recent category, then global top.
  if (!recent_categories.empty()) {
    fill_from(out, category_by_popularity_[recent_categories.back()], history, k);
  }
  return out;
}

// ---- evaluation -------------------------------------------------------------------

Dataset leave_last_out(const Dataset& dataset, std::vector<std::uint32_t>& held_out) {
  Dataset truncated;
  truncated.app_count = dataset.app_count;
  truncated.app_category = dataset.app_category;
  truncated.user_sequences.reserve(dataset.user_sequences.size());
  held_out.assign(dataset.user_sequences.size(), kNone);

  for (std::size_t u = 0; u < dataset.user_sequences.size(); ++u) {
    auto sequence = dataset.user_sequences[u];
    if (sequence.size() >= 2) {
      held_out[u] = sequence.back();
      sequence.pop_back();
    }
    truncated.user_sequences.push_back(std::move(sequence));
  }
  return truncated;
}

EvalResult evaluate(const Recommender& recommender, const Dataset& truncated,
                    std::span<const std::uint32_t> held_out, std::size_t k) {
  EvalResult result;
  for (std::size_t u = 0; u < truncated.user_sequences.size(); ++u) {
    if (held_out[u] == kNone) continue;
    ++result.users_evaluated;
    const auto recommendations =
        recommender.recommend(truncated.user_sequences[u], k);
    if (std::find(recommendations.begin(), recommendations.end(), held_out[u]) !=
        recommendations.end()) {
      ++result.hits;
    }
  }
  return result;
}

}  // namespace appstore::recommend
