// Recommendation systems informed by the clustering effect (§7).
//
// The paper argues appstore recommenders should exploit two observations:
// (i) classic collaborative filtering suggests apps co-downloaded by similar
// users; (ii) the clustering effect adds that a user's *next* download
// likely comes from the category of a *recent* download. We implement four
// recommenders and an offline evaluation harness (leave-last-out hit@k) so
// the claim can be measured:
//
//   * PopularityRecommender   — global top-N baseline;
//   * CategoryRecommender     — top apps of the user's most recent category
//                               (the pure clustering-effect strategy);
//   * ItemCfRecommender       — item-based collaborative filtering on
//                               co-download counts (cosine similarity);
//   * HybridRecommender       — ItemCF restricted/boosted by recent-category
//                               affinity, the paper's suggested combination.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

namespace appstore::recommend {

/// Training data: per-user chronological download sequences over apps
/// 0..app_count-1, plus each app's category.
struct Dataset {
  std::uint32_t app_count = 0;
  std::vector<std::uint32_t> app_category;                  ///< index = app
  std::vector<std::vector<std::uint32_t>> user_sequences;   ///< chronological
};

class Recommender {
 public:
  virtual ~Recommender() = default;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Trains on the dataset (sequences exclude held-out items).
  virtual void train(const Dataset& dataset) = 0;

  /// Top-k recommendations for a user with the given download history,
  /// never recommending apps already in the history.
  [[nodiscard]] virtual std::vector<std::uint32_t> recommend(
      std::span<const std::uint32_t> history, std::size_t k) const = 0;
};

/// Global most-downloaded apps.
class PopularityRecommender final : public Recommender {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "POPULARITY"; }
  void train(const Dataset& dataset) override;
  [[nodiscard]] std::vector<std::uint32_t> recommend(
      std::span<const std::uint32_t> history, std::size_t k) const override;

 private:
  std::vector<std::uint32_t> by_popularity_;  ///< apps sorted by downloads desc
};

/// Most-downloaded apps of the category of the user's most recent download
/// (falls back to global popularity when the category is exhausted).
class CategoryRecommender final : public Recommender {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "CATEGORY"; }
  void train(const Dataset& dataset) override;
  [[nodiscard]] std::vector<std::uint32_t> recommend(
      std::span<const std::uint32_t> history, std::size_t k) const override;

 private:
  std::vector<std::uint32_t> app_category_;
  std::vector<std::vector<std::uint32_t>> category_by_popularity_;
  std::vector<std::uint32_t> by_popularity_;
};

/// Item-based collaborative filtering: score(candidate) = sum over history
/// items of cosine similarity(candidate, item). Similarities are computed
/// from co-download counts; only the top `neighbors` per item are kept.
class ItemCfRecommender final : public Recommender {
 public:
  explicit ItemCfRecommender(std::size_t neighbors = 30) : neighbors_(neighbors) {}

  [[nodiscard]] std::string_view name() const noexcept override { return "ITEM-CF"; }
  void train(const Dataset& dataset) override;
  [[nodiscard]] std::vector<std::uint32_t> recommend(
      std::span<const std::uint32_t> history, std::size_t k) const override;

 private:
  struct Neighbor {
    std::uint32_t app;
    float similarity;
  };
  std::size_t neighbors_;
  std::vector<std::vector<Neighbor>> similar_;  ///< index = app
  std::vector<std::uint32_t> by_popularity_;    ///< fallback
};

/// ItemCF with the clustering-effect prior: candidates in the category of a
/// recent download get their scores multiplied by `recency_boost`.
class HybridRecommender final : public Recommender {
 public:
  HybridRecommender(std::size_t neighbors = 30, std::size_t recent_window = 3,
                    float recency_boost = 3.0F)
      : item_cf_(neighbors), recent_window_(recent_window), recency_boost_(recency_boost) {}

  [[nodiscard]] std::string_view name() const noexcept override { return "HYBRID"; }
  void train(const Dataset& dataset) override;
  [[nodiscard]] std::vector<std::uint32_t> recommend(
      std::span<const std::uint32_t> history, std::size_t k) const override;

 private:
  ItemCfRecommender item_cf_;
  std::vector<std::uint32_t> app_category_;
  std::vector<std::vector<std::uint32_t>> category_by_popularity_;
  std::size_t recent_window_;
  float recency_boost_;
};

/// Offline evaluation: for every user with >= 2 downloads, hide the last
/// download, train on the rest (caller trains once on the truncated
/// dataset), and count how often the hidden app appears in the top-k.
struct EvalResult {
  std::size_t users_evaluated = 0;
  std::size_t hits = 0;
  [[nodiscard]] double hit_rate() const noexcept {
    return users_evaluated == 0
               ? 0.0
               : static_cast<double>(hits) / static_cast<double>(users_evaluated);
  }
};

/// Splits the dataset: returns a copy with each evaluated user's last
/// download removed; `held_out[u]` is that download (or UINT32_MAX).
[[nodiscard]] Dataset leave_last_out(const Dataset& dataset,
                                     std::vector<std::uint32_t>& held_out);

/// Runs the protocol against an already-trained recommender.
[[nodiscard]] EvalResult evaluate(const Recommender& recommender, const Dataset& truncated,
                                  std::span<const std::uint32_t> held_out, std::size_t k);

}  // namespace appstore::recommend
