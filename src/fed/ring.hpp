// Consistent-hash ring for routing single-user requests to federation shards.
//
// Construction: rendezvous hashing over per-member vnode points rather than
// the classic sorted-point ring. Each member projects `vnodes` pseudo-random
// 64-bit points derived from (ring seed, member name, vnode index); a key is
// owned by the member holding the highest-scoring point, where a point's
// score is a splitmix64 mix of (point XOR mixed key). Why not the classic
// arc-length ring: with V vnodes per member the arc-length load has
// coefficient of variation ~ 1/sqrt(V) (~12.5% at V = 64), so a +-25% load
// bound is only ~2 sigma and is statistically guaranteed to fail somewhere
// across thousands of seeds. Rendezvous scoring assigns every key an i.i.d.
// uniform winner, so the only load variance left is multinomial sampling
// noise over the keys themselves — and it keeps the property consistent
// hashing exists for: adding a member moves exactly the keys the newcomer
// now wins (~1/(N+1) of them, all TO the newcomer), removing a member moves
// only the keys it owned.
//
// Deterministic: same (seed, vnodes, member set) => same ownership on every
// platform, independent of insertion order. Not thread-safe; the gateway
// guards it with its upstream-table lock.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace appstore::fed {

struct RingOptions {
  std::size_t vnodes = 64;     ///< points projected per member (>= 1)
  std::uint64_t seed = 0xfedULL;  ///< ring-wide salt mixed into every point
};

class HashRing {
 public:
  explicit HashRing(RingOptions options = {});

  /// Adds a member; returns false (and changes nothing) if already present.
  bool add(std::string_view name);
  /// Removes a member; returns false if absent.
  bool remove(std::string_view name);

  [[nodiscard]] std::size_t size() const { return members_.size(); }
  [[nodiscard]] bool empty() const { return members_.empty(); }
  [[nodiscard]] bool contains(std::string_view name) const;

  /// Member names in insertion order (indexes match owner_index()).
  [[nodiscard]] std::vector<std::string> members() const;

  /// Owner of `key`. Throws std::logic_error on an empty ring.
  [[nodiscard]] const std::string& owner(std::uint64_t key) const;
  /// Index (into members()) of the owner of `key`.
  [[nodiscard]] std::size_t owner_index(std::uint64_t key) const;

 private:
  struct Member {
    std::string name;
    std::vector<std::uint64_t> points;
  };

  RingOptions options_;
  std::vector<Member> members_;
};

}  // namespace appstore::fed
