#include "fed/ring.hpp"

#include <algorithm>
#include <stdexcept>
#include <tuple>

#include "util/rng.hpp"

namespace appstore::fed {
namespace {

std::uint64_t mix(std::uint64_t value) noexcept {
  std::uint64_t state = value;
  return util::splitmix64(state);
}

}  // namespace

HashRing::HashRing(RingOptions options) : options_(options) {
  if (options_.vnodes == 0) throw std::invalid_argument("HashRing: vnodes must be >= 1");
}

bool HashRing::add(std::string_view name) {
  if (contains(name)) return false;
  Member member;
  member.name.assign(name);
  member.points.reserve(options_.vnodes);
  const std::uint64_t base =
      util::combine_seed(options_.seed, util::hash64(member.name));
  for (std::size_t v = 0; v < options_.vnodes; ++v) {
    member.points.push_back(util::rng::derive_seed(base, v));
  }
  members_.push_back(std::move(member));
  return true;
}

bool HashRing::remove(std::string_view name) {
  const auto it = std::find_if(members_.begin(), members_.end(),
                               [&](const Member& m) { return m.name == name; });
  if (it == members_.end()) return false;
  members_.erase(it);
  return true;
}

bool HashRing::contains(std::string_view name) const {
  return std::any_of(members_.begin(), members_.end(),
                     [&](const Member& m) { return m.name == name; });
}

std::vector<std::string> HashRing::members() const {
  std::vector<std::string> names;
  names.reserve(members_.size());
  for (const auto& member : members_) names.push_back(member.name);
  return names;
}

std::size_t HashRing::owner_index(std::uint64_t key) const {
  if (members_.empty()) throw std::logic_error("HashRing: owner() on an empty ring");
  const std::uint64_t key_hash = mix(util::combine_seed(options_.seed, key));
  std::size_t best_index = 0;
  std::uint64_t best_score = 0;
  std::uint64_t best_point = 0;
  bool first = true;
  for (std::size_t i = 0; i < members_.size(); ++i) {
    for (const std::uint64_t point : members_[i].points) {
      const std::uint64_t score = mix(point ^ key_hash);
      // Total order over (score, point, name) so ownership never depends on
      // member insertion order, even in the astronomically unlikely tie.
      if (first || score > best_score ||
          (score == best_score &&
           std::tie(point, members_[i].name) >
               std::tie(best_point, members_[best_index].name))) {
        first = false;
        best_score = score;
        best_point = point;
        best_index = i;
      }
    }
  }
  return best_index;
}

const std::string& HashRing::owner(std::uint64_t key) const {
  return members_[owner_index(key)].name;
}

}  // namespace appstore::fed
