// Sharded federation bring-up: N shard stores + services + a gateway.
//
// build_federation() splits one synthetic marketplace across N shards by
// ring-owned user slice: every shard generates the identical replicated
// entity state (categories, developers, apps, updates), but only the
// download/comment events of the users whose consistent-hash owner it is
// (synth::GeneratorConfig::user_filter). No union event log is ever
// materialized — each shard's generation emits its slice directly, so the
// peak footprint is one shard's events, not the store's (the out-of-core
// property bench_federation relies on at scale).
//
// The union of the shard stores is event-for-event identical to an
// unfiltered single-store run with the same profile/config/seed, which is
// what makes gateway scatter-gather answers bit-exact against the
// single-store goldens (federation_test pins fig2/fig6/fig8 parity at
// 1/2/4 shards). See docs/federation.md.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "crawler/service.hpp"
#include "fed/gateway.hpp"
#include "fed/ring.hpp"
#include "market/types.hpp"
#include "synth/generator.hpp"
#include "synth/profile.hpp"

namespace appstore::fed {

struct FederationOptions {
  synth::StoreProfile profile;
  /// Generation config; user_filter is overwritten per shard.
  synth::GeneratorConfig config;
  std::size_t shards = 2;
  RingOptions ring{};
  /// Policy stamped onto every shard service.
  crawlersim::ServicePolicy policy{};
  /// Virtual day every shard starts serving at.
  market::Day day = 0;
};

/// One running federation: the ring, the per-shard stores and services, and
/// ownership of all of it. Shard ids are "shard-<i>" in ring-join order.
struct Federation {
  HashRing ring;
  std::vector<std::string> shard_ids;
  std::vector<synth::GeneratedStore> stores;
  std::vector<std::unique_ptr<crawlersim::AppstoreService>> services;

  /// Publishes `day` on every shard service.
  void set_day(market::Day day);

  /// Registers every shard on `gateway` (in shard-id order; the gateway's
  /// ring is rebuilt by these joins, so construct it with the same
  /// RingOptions the federation used or routing will disagree).
  void attach(FederationGateway& gateway) const;
};

/// Generates the shard stores and starts one AppstoreService per shard.
/// Throws std::invalid_argument when options.shards == 0.
[[nodiscard]] Federation build_federation(const FederationOptions& options);

}  // namespace appstore::fed
