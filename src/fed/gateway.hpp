// The federation gateway: one HTTP front door over N shard stores.
//
// Each shard holds the full replicated entity state (categories, developers,
// apps, updates) but only the download/comment events of the users its ring
// slice owns (synth::GeneratorConfig::user_filter). The gateway routes:
//
//   /api/v1/metrics            -> the gateway's own registry
//   /api/v1/meta, .../apk      -> one shard (entity data is replicated;
//                                 the shard is picked by hashing the target
//                                 so load spreads)
//   /api/v1/apps               -> scatter to every shard; the directory is
//                                 replicated, so the bodies must be
//                                 identical — a mismatch is answered 502
//                                 {"code": "shard_divergence"}
//   /api/v1/app/<id>           -> scatter; download counts sum across
//                                 shards, entity fields come from the first
//   /api/v1/app/<id>/comments  -> scatter a bounded page prefix per shard,
//                                 merge-sort by (day, shard, position),
//                                 slice the requested page
//   /api/v1/query              -> a filter pinning user == K routes the
//                                 whole query to K's ring owner; otherwise
//                                 every shard answers the mergeable partial
//                                 form (?partial=1) and the gateway
//                                 finalizes via query::merge_partials — the
//                                 same code path a single store's engine
//                                 runs, which is what makes federated
//                                 answers bit-exact (docs/federation.md)
//
// Per-upstream protection reuses the existing primitives: a
// net::CircuitBreaker per shard held in a bounded net::UpstreamTable, and a
// net::AdmissionController per shard capping in-flight calls. Slow calls
// are hedged: once the primary attempt has been in flight longer than the
// hedge delay (fixed, or derived from the upstream's observed latency
// quantile), a second attempt races it; the loser is cancelled and counted
// in hedges_cancelled, never as an outcome, so the gateway invariant
//
//   requests == ok + http_4xx + http_5xx + transport + breaker_open + shed
//
// holds exactly (federation_test pins it under fault plans). All time flows
// through chaos::Clock, so the hedge race replays deterministically on a
// VirtualClock: attempts are timed in virtual time and the race is resolved
// arithmetically (winner = faster effective completion), not by wall-clock
// scheduling.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "chaos/clock.hpp"
#include "chaos/fault.hpp"
#include "fed/ring.hpp"
#include "market/types.hpp"
#include "net/admission.hpp"
#include "net/breaker.hpp"
#include "net/http.hpp"
#include "net/upstreams.hpp"
#include "obs/registry.hpp"

namespace appstore::fed {

struct GatewayOptions {
  RingOptions ring{};
  /// Breaker configuration stamped per upstream (see net::UpstreamTable).
  net::CircuitBreaker::Options breaker{};
  /// Cap on per-upstream breaker state (satellite: the gateway's upstream
  /// table must stay bounded under membership churn).
  std::size_t max_upstream_keys = net::UpstreamTable::kDefaultMaxKeys;
  /// Per-shard in-flight admission (kFixed: shed only at limit_ceiling).
  net::AdmissionOptions admission{};

  /// Hedging. A zero hedge_delay means "derive it": once hedge_min_samples
  /// primary successes were recorded for an upstream, the delay is that
  /// upstream's hedge_quantile latency; until then no hedge fires. A
  /// non-zero delay is used as-is (what the deterministic tests pin).
  bool hedge_enabled = true;
  std::chrono::nanoseconds hedge_delay{0};
  double hedge_quantile = 0.95;
  std::size_t hedge_min_samples = 64;

  /// Fan-out workers for scatter routes; 0 = sequential (deterministic
  /// upstream call order — what the chaos tests use). Workers are spawned
  /// per request, which only pays off when one upstream exchange costs
  /// milliseconds (sockets); against in-process shards sequential wins.
  std::size_t fanout_threads = 0;

  /// Per-shard page-prefix cap for the comments merge (the gateway refuses
  /// — 502 "comment_scan_overflow" — rather than scanning unboundedly).
  std::size_t comment_scan_pages = 64;

  /// Time source for hedge timing and breakers (nullptr = real time).
  chaos::Clock* clock = nullptr;
  /// Optional fault seam consulted per upstream call (FaultSite::kExchange,
  /// key = shard id). Must outlive the gateway.
  chaos::FaultInjector* faults = nullptr;
};

/// Whole-gateway accounting. `requests` counts respond() calls;
/// every one lands in exactly one outcome bucket.
struct GatewayStats {
  std::uint64_t requests = 0;
  std::uint64_t ok = 0;            ///< gateway answered < 400
  std::uint64_t http_4xx = 0;      ///< gateway answered 4xx
  std::uint64_t http_5xx = 0;      ///< gateway answered 5xx (not the below)
  std::uint64_t transport = 0;     ///< 502 for an upstream transport error
  std::uint64_t breaker_open = 0;  ///< 503, some upstream's breaker open
  std::uint64_t shed = 0;          ///< 503, per-shard admission refused

  std::uint64_t upstream_calls = 0;    ///< attempts reaching a shard
  std::uint64_t hedges = 0;            ///< hedge attempts issued
  std::uint64_t hedge_wins = 0;        ///< races the hedge won
  std::uint64_t hedges_cancelled = 0;  ///< losing attempts (never outcomes)
};

class FederationGateway {
 public:
  /// One in-process upstream exchange (typically AppstoreService::respond
  /// bound to a shard service). Throwing means a transport error.
  using Call = std::function<net::HttpResponse(const net::HttpRequest&)>;

  explicit FederationGateway(GatewayOptions options = {});

  /// Registers shard `id` and joins it to the ring. Replaces the Call of an
  /// existing id (the breaker and latency history survive).
  void add_upstream(const std::string& id, Call call);

  /// Removes shard `id` from the ring and drops its breaker state.
  /// False when unknown.
  bool remove_upstream(const std::string& id);

  /// Serves one request through the routing table above.
  [[nodiscard]] net::HttpResponse respond(const net::HttpRequest& request);

  [[nodiscard]] GatewayStats stats() const;
  [[nodiscard]] const HashRing& ring() const noexcept { return ring_; }
  [[nodiscard]] obs::Registry& metrics() noexcept { return registry_; }
  [[nodiscard]] net::UpstreamTable& upstreams() noexcept { return breakers_; }
  [[nodiscard]] const GatewayOptions& options() const noexcept { return options_; }

 private:
  /// Per-upstream serving state (membership is explicit, unlike the bounded
  /// breaker table): the exchange callable, in-flight admission, and the
  /// primary-success latency reservoir the hedge delay derives from.
  struct Upstream {
    std::string id;
    Call call;
    std::unique_ptr<net::AdmissionController> admission;
    std::atomic<std::size_t> in_flight{0};

    /// Ring of recent primary-success latencies (ns); the cached hedge
    /// delay is recomputed every kRecacheEvery samples.
    static constexpr std::size_t kReservoirSize = 512;
    static constexpr std::size_t kRecacheEvery = 64;
    std::mutex latency_mutex;
    std::vector<std::int64_t> latency_ring;
    std::size_t latency_next = 0;
    std::uint64_t latency_samples = 0;
    std::atomic<std::int64_t> cached_hedge_delay_ns{-1};  ///< -1 = not ready
  };

  enum class CallStatus : std::uint8_t {
    kOk = 0,       ///< got an HTTP response (any status)
    kTransport,    ///< exchange failed below HTTP
    kBreakerOpen,  ///< not attempted: breaker open
    kShed,         ///< not attempted: per-shard admission refused
  };

  struct CallResult {
    CallStatus status = CallStatus::kTransport;
    net::HttpResponse response;
    std::chrono::nanoseconds latency{0};
  };

  /// One raw timed exchange through the fault seam (no breaker/admission).
  struct Attempt {
    bool transport = false;
    net::HttpResponse response;
    std::chrono::nanoseconds latency{0};
  };
  [[nodiscard]] Attempt exchange(Upstream& upstream, const net::HttpRequest& request);

  /// Breaker + admission + hedged exchange against one shard.
  [[nodiscard]] CallResult call_upstream(Upstream& upstream,
                                         const net::HttpRequest& request);

  /// The hedge delay for `upstream` (fixed, derived, or nullopt = no hedge).
  [[nodiscard]] std::optional<std::chrono::nanoseconds> hedge_delay(Upstream& upstream);
  void record_latency(Upstream& upstream, std::chrono::nanoseconds latency);

  /// Scatter `request` to every upstream (fan-out pool when
  /// fanout_threads > 0), in ring-membership order.
  [[nodiscard]] std::vector<CallResult> scatter(const net::HttpRequest& request);

  /// Outcome classification of one gateway response — tagged explicitly at
  /// the point the response is built (a 503 alone cannot tell breaker_open
  /// from shed).
  enum class Outcome : std::uint8_t {
    kOk = 0,
    kHttp4xx,
    kHttp5xx,
    kTransport,
    kBreakerOpen,
    kShed,
  };
  struct Routed {
    net::HttpResponse response;
    Outcome outcome = Outcome::kOk;
  };
  /// Tags by status class (for responses forwarded from a shard).
  [[nodiscard]] static Routed classify(net::HttpResponse response);
  /// Maps a single upstream CallResult to the gateway answer.
  [[nodiscard]] Routed from_call(CallResult result) const;

  /// Routing dispatch; caller (respond) counts the outcome. Expects
  /// upstreams_mutex_ held shared.
  [[nodiscard]] Routed dispatch(const net::HttpRequest& request);

  // Route handlers; each returns the gateway response plus its outcome tag.
  [[nodiscard]] Routed route_single(const net::HttpRequest& request, std::uint64_t ring_key);
  [[nodiscard]] Routed route_apps(const net::HttpRequest& request);
  [[nodiscard]] Routed route_app(const net::HttpRequest& request, std::string_view rest);
  [[nodiscard]] Routed route_comments(const net::HttpRequest& request,
                                      std::string_view rest);
  [[nodiscard]] Routed route_query(const net::HttpRequest& request);

  /// Maps a set of scatter results to the error short-circuit (breaker /
  /// shed / transport / first non-200), or nullopt when all are 200.
  [[nodiscard]] std::optional<Routed> scatter_error(
      const std::vector<CallResult>& results) const;

  void count_outcome(Outcome outcome);
  [[nodiscard]] Upstream* find_upstream(const std::string& id) noexcept;

  GatewayOptions options_;
  obs::Registry registry_;
  HashRing ring_;
  net::UpstreamTable breakers_;

  mutable std::shared_mutex upstreams_mutex_;
  std::vector<std::unique_ptr<Upstream>> upstreams_;  ///< ring-member order

  mutable std::mutex stats_mutex_;
  GatewayStats stats_;
};

}  // namespace appstore::fed
