#include "fed/federation.hpp"

#include <stdexcept>
#include <utility>

#include "util/format.hpp"
#include "util/strings.hpp"

namespace appstore::fed {

void Federation::set_day(market::Day day) {
  for (auto& service : services) service->set_day(day);
}

void Federation::attach(FederationGateway& gateway) const {
  for (std::size_t i = 0; i < services.size(); ++i) {
    crawlersim::AppstoreService* service = services[i].get();
    gateway.add_upstream(shard_ids[i], [service](const net::HttpRequest& request) {
      return service->respond(request);
    });
  }
}

Federation build_federation(const FederationOptions& options) {
  if (options.shards == 0) {
    throw std::invalid_argument("build_federation: shards must be >= 1");
  }
  Federation federation;
  federation.ring = HashRing(options.ring);
  for (std::size_t i = 0; i < options.shards; ++i) {
    federation.shard_ids.push_back(util::format("shard-{}", i));
    federation.ring.add(federation.shard_ids.back());
  }
  // Each shard owns the users whose ring owner it is. The lambda captures a
  // copy of the fully-joined ring, so membership changes after bring-up do
  // not retroactively re-shard generated data.
  for (std::size_t i = 0; i < options.shards; ++i) {
    synth::GeneratorConfig config = options.config;
    config.user_filter = [ring = federation.ring, i](std::uint32_t user) {
      return ring.owner_index(static_cast<std::uint64_t>(user)) == i;
    };
    federation.stores.push_back(synth::generate(options.profile, config));
  }
  for (auto& generated : federation.stores) {
    federation.services.push_back(
        std::make_unique<crawlersim::AppstoreService>(*generated.store, options.policy));
    federation.services.back()->set_day(options.day);
  }
  return federation;
}

}  // namespace appstore::fed
