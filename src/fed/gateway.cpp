#include "fed/gateway.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "crawler/json.hpp"
#include "crawler/query_json.hpp"
#include "crawler/service.hpp"
#include "obs/export.hpp"
#include "query/expression.hpp"
#include "query/federate.hpp"
#include "util/rng.hpp"
#include "util/format.hpp"
#include "util/strings.hpp"

namespace appstore::fed {

namespace {

using crawlersim::Json;
using crawlersim::JsonArray;
using crawlersim::JsonObject;

[[nodiscard]] std::string_view reason_for(int status) noexcept {
  switch (status) {
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 502: return "Bad Gateway";
    case 503: return "Service Unavailable";
    default: return "Error";
  }
}

/// The same uniform error envelope the shard services answer with.
[[nodiscard]] net::HttpResponse error_response(int status, std::string_view code,
                                               std::string_view message,
                                               std::int64_t retry_after_ms = -1) {
  JsonObject error;
  error.emplace_back("code", Json(code));
  error.emplace_back("message", Json(message));
  if (retry_after_ms >= 0) error.emplace_back("retry_after_ms", Json(retry_after_ms));
  net::HttpResponse response = net::HttpResponse::json(
      status, crawlersim::json_object({{"error", Json(std::move(error))}}).dump());
  response.reason = std::string(reason_for(status));
  if (retry_after_ms >= 0) {
    response.headers["Retry-After"] =
        std::to_string(std::max<std::int64_t>(1, (retry_after_ms + 999) / 1000));
  }
  return response;
}

/// The original query request plus the partial flag, so a shard answers the
/// mergeable fragment instead of a finalized result.
[[nodiscard]] net::HttpRequest with_partial_flag(const net::HttpRequest& request) {
  net::HttpRequest out = request;
  if (request.method == "POST") {
    const auto document = crawlersim::parse_json(request.body);
    if (document && document->is_object()) {
      JsonObject body = document->as_object();
      body.emplace_back("partial", Json(true));
      out.body = Json(std::move(body)).dump();
    }
    // Malformed bodies are forwarded untouched; the shard answers 400.
  } else {
    out.target += out.target.find('?') == std::string::npos ? "?partial=1" : "&partial=1";
  }
  return out;
}

[[nodiscard]] const char* to_label(std::uint8_t outcome) noexcept {
  switch (outcome) {
    case 0: return "ok";
    case 1: return "http_4xx";
    case 2: return "http_5xx";
    case 3: return "transport";
    case 4: return "breaker_open";
    default: return "shed";
  }
}

[[nodiscard]] net::UpstreamTable::Options table_options(const GatewayOptions& options) {
  net::UpstreamTable::Options table;
  table.breaker = options.breaker;
  if (table.breaker.clock == nullptr) table.breaker.clock = options.clock;
  table.max_keys = options.max_upstream_keys;
  table.clock = options.clock;
  return table;
}

}  // namespace

FederationGateway::FederationGateway(GatewayOptions options)
    : options_(std::move(options)), ring_(options_.ring), breakers_(table_options(options_)) {
  registry_.describe("gateway_requests_total", "Gateway responses by outcome");
  registry_.describe("gateway_upstream_calls_total", "Attempts reaching a shard");
  registry_.describe("gateway_hedges_total", "Hedge attempts: issued, won, cancelled");
}

void FederationGateway::add_upstream(const std::string& id, Call call) {
  const std::unique_lock lock(upstreams_mutex_);
  for (auto& upstream : upstreams_) {
    if (upstream->id == id) {
      upstream->call = std::move(call);
      return;
    }
  }
  auto upstream = std::make_unique<Upstream>();
  upstream->id = id;
  upstream->call = std::move(call);
  net::AdmissionOptions admission = options_.admission;
  if (admission.clock == nullptr) admission.clock = options_.clock;
  upstream->admission = std::make_unique<net::AdmissionController>(admission);
  upstream->latency_ring.assign(Upstream::kReservoirSize, 0);
  upstreams_.push_back(std::move(upstream));
  ring_.add(id);
}

bool FederationGateway::remove_upstream(const std::string& id) {
  const std::unique_lock lock(upstreams_mutex_);
  const auto it = std::find_if(upstreams_.begin(), upstreams_.end(),
                               [&](const auto& upstream) { return upstream->id == id; });
  if (it == upstreams_.end()) return false;
  upstreams_.erase(it);
  ring_.remove(id);
  breakers_.forget(id);
  return true;
}

FederationGateway::Upstream* FederationGateway::find_upstream(const std::string& id) noexcept {
  for (auto& upstream : upstreams_) {
    if (upstream->id == id) return upstream.get();
  }
  return nullptr;
}

GatewayStats FederationGateway::stats() const {
  const std::lock_guard lock(stats_mutex_);
  return stats_;
}

void FederationGateway::count_outcome(Outcome outcome) {
  {
    const std::lock_guard lock(stats_mutex_);
    ++stats_.requests;
    switch (outcome) {
      case Outcome::kOk: ++stats_.ok; break;
      case Outcome::kHttp4xx: ++stats_.http_4xx; break;
      case Outcome::kHttp5xx: ++stats_.http_5xx; break;
      case Outcome::kTransport: ++stats_.transport; break;
      case Outcome::kBreakerOpen: ++stats_.breaker_open; break;
      case Outcome::kShed: ++stats_.shed; break;
    }
  }
  registry_.counter("gateway_requests_total", to_label(static_cast<std::uint8_t>(outcome)))
      .inc();
}

net::HttpResponse FederationGateway::respond(const net::HttpRequest& request) {
  Routed routed;
  {
    const std::shared_lock lock(upstreams_mutex_);
    routed = dispatch(request);
  }
  count_outcome(routed.outcome);
  return std::move(routed.response);
}

FederationGateway::Routed FederationGateway::dispatch(const net::HttpRequest& request) {
  using Service = crawlersim::AppstoreService;
  const std::string path = request.path();
  const Service::RouteMatch match = Service::route(path);

  if (match.endpoint == Service::Endpoint::kMetrics) {
    const auto params = request.query();
    const auto it = params.find("fmt");
    if (it != params.end() && it->second == "text") {
      return classify(net::HttpResponse::text(200, obs::to_text(registry_)));
    }
    return classify(net::HttpResponse::json(200, obs::to_json(registry_)));
  }
  if (upstreams_.empty()) {
    return {error_response(503, "no_upstreams", "no shards registered"), Outcome::kShed};
  }
  switch (match.endpoint) {
    case Service::Endpoint::kMeta:
    case Service::Endpoint::kApk:
      // Replicated data: any one shard answers; hash the target so load
      // spreads across the membership.
      return route_single(request, util::hash64(path));
    case Service::Endpoint::kApps: return route_apps(request);
    case Service::Endpoint::kApp: return route_app(request, match.rest);
    case Service::Endpoint::kComments: return route_comments(request, match.rest);
    case Service::Endpoint::kQuery: return route_query(request);
    case Service::Endpoint::kMetrics:
    case Service::Endpoint::kOther: break;
  }
  return {error_response(404, "not_found", "no such endpoint"), Outcome::kHttp4xx};
}

// ---- upstream calls --------------------------------------------------------

FederationGateway::Attempt FederationGateway::exchange(Upstream& upstream,
                                                       const net::HttpRequest& request) {
  Attempt attempt;
  const auto start = chaos::now_or_real(options_.clock);
  chaos::Fault fault;
  if (options_.faults != nullptr) {
    fault = options_.faults->next(chaos::FaultSite::kExchange, upstream.id);
  }
  switch (fault.kind) {
    case chaos::FaultKind::kConnectRefused:
    case chaos::FaultKind::kConnectionReset:
      attempt.transport = true;
      break;
    case chaos::FaultKind::kHttp429:
      attempt.response = error_response(429, "injected_fault", "injected 429");
      break;
    case chaos::FaultKind::kHttp403:
      attempt.response = error_response(403, "injected_fault", "injected 403");
      break;
    case chaos::FaultKind::kHttp500:
      attempt.response = error_response(500, "injected_fault", "injected 500");
      break;
    case chaos::FaultKind::kLatency:
      chaos::sleep_or_real(options_.clock, fault.latency);
      [[fallthrough]];
    default:
      try {
        attempt.response = upstream.call(request);
      } catch (...) {
        attempt.transport = true;
      }
      break;
  }
  attempt.latency = chaos::now_or_real(options_.clock) - start;
  return attempt;
}

std::optional<std::chrono::nanoseconds> FederationGateway::hedge_delay(Upstream& upstream) {
  if (!options_.hedge_enabled) return std::nullopt;
  if (options_.hedge_delay.count() > 0) return options_.hedge_delay;
  const std::int64_t cached = upstream.cached_hedge_delay_ns.load(std::memory_order_acquire);
  if (cached < 0) return std::nullopt;
  return std::chrono::nanoseconds(cached);
}

void FederationGateway::record_latency(Upstream& upstream, std::chrono::nanoseconds latency) {
  const std::lock_guard lock(upstream.latency_mutex);
  upstream.latency_ring[upstream.latency_next] = latency.count();
  upstream.latency_next = (upstream.latency_next + 1) % Upstream::kReservoirSize;
  ++upstream.latency_samples;
  if (upstream.latency_samples < std::max<std::uint64_t>(1, options_.hedge_min_samples)) {
    return;
  }
  if (upstream.latency_samples % Upstream::kRecacheEvery != 0 &&
      upstream.cached_hedge_delay_ns.load(std::memory_order_relaxed) >= 0) {
    return;
  }
  const std::size_t filled = static_cast<std::size_t>(
      std::min<std::uint64_t>(upstream.latency_samples, Upstream::kReservoirSize));
  std::vector<std::int64_t> sorted(upstream.latency_ring.begin(),
                                   upstream.latency_ring.begin() +
                                       static_cast<std::ptrdiff_t>(filled));
  const double quantile = std::clamp(options_.hedge_quantile, 0.0, 1.0);
  auto nth = sorted.begin() +
             std::min<std::ptrdiff_t>(static_cast<std::ptrdiff_t>(filled) - 1,
                                      static_cast<std::ptrdiff_t>(
                                          quantile * static_cast<double>(filled)));
  std::nth_element(sorted.begin(), nth, sorted.end());
  upstream.cached_hedge_delay_ns.store(*nth, std::memory_order_release);
}

FederationGateway::CallResult FederationGateway::call_upstream(
    Upstream& upstream, const net::HttpRequest& request) {
  CallResult result;
  const std::size_t depth = upstream.in_flight.load(std::memory_order_relaxed);
  if (upstream.admission->admit(depth) != net::AdmissionDecision::kAdmit) {
    result.status = CallStatus::kShed;
    return result;
  }
  const auto breaker = breakers_.breaker(upstream.id);
  if (!breaker->allow()) {
    result.status = CallStatus::kBreakerOpen;
    return result;
  }
  upstream.in_flight.fetch_add(1, std::memory_order_acq_rel);

  Attempt primary = exchange(upstream, request);
  Attempt* winner = &primary;
  std::chrono::nanoseconds effective = primary.latency;
  bool hedged = false;
  bool hedge_won = false;
  Attempt hedge;
  const auto delay = hedge_delay(upstream);
  if (delay && (primary.transport || primary.latency > *delay)) {
    // The race, resolved in (virtual) time arithmetic: the hedge is issued
    // either at the hedge delay (slow primary) or the moment the primary's
    // transport failure surfaces, whichever the timeline dictates.
    hedged = true;
    hedge = exchange(upstream, request);
    const auto issued = primary.transport ? std::min(primary.latency, *delay) : *delay;
    const auto hedge_done = issued + hedge.latency;
    const bool primary_wins =
        !primary.transport && (hedge.transport || primary.latency <= hedge_done);
    if (!primary_wins && !hedge.transport) {
      winner = &hedge;
      effective = hedge_done;
      hedge_won = true;
    } else if (primary.transport && hedge.transport) {
      // Both died: the primary's failure is THE outcome, the hedge is a
      // cancelled loser — never double-accounted.
      effective = primary.latency;
    }
  }
  upstream.in_flight.fetch_sub(1, std::memory_order_acq_rel);
  upstream.admission->observe(effective);

  // Breaker and latency bookkeeping: the breaker sees the winner only; the
  // hedge-delay reservoir sees primary successes only (hedged completions
  // would bias the quantile toward the hedge path).
  const bool winner_failed = winner->transport || winner->response.status >= 500;
  if (winner_failed) {
    (void)breaker->record_failure();
  } else {
    breaker->record_success();
  }
  if (!primary.transport && primary.response.status < 500) {
    record_latency(upstream, primary.latency);
  }
  {
    const std::lock_guard lock(stats_mutex_);
    stats_.upstream_calls += hedged ? 2 : 1;
    if (hedged) {
      ++stats_.hedges;
      ++stats_.hedges_cancelled;  // exactly one loser per hedged race
      if (hedge_won) ++stats_.hedge_wins;
    }
  }
  if (hedged) {
    registry_.counter("gateway_hedges_total", "issued").inc();
    registry_.counter("gateway_hedges_total", "cancelled").inc();
    if (hedge_won) registry_.counter("gateway_hedges_total", "won").inc();
  }
  registry_.counter("gateway_upstream_calls_total").inc(hedged ? 2 : 1);

  result.status = winner->transport ? CallStatus::kTransport : CallStatus::kOk;
  result.response = std::move(winner->response);
  result.latency = effective;
  return result;
}

std::vector<FederationGateway::CallResult> FederationGateway::scatter(
    const net::HttpRequest& request) {
  std::vector<CallResult> results(upstreams_.size());
  const std::size_t workers =
      options_.fanout_threads == 0
          ? 1
          : std::min(options_.fanout_threads, upstreams_.size());
  if (workers <= 1) {
    for (std::size_t i = 0; i < upstreams_.size(); ++i) {
      results[i] = call_upstream(*upstreams_[i], request);
    }
    return results;
  }
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      for (std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
           i < upstreams_.size(); i = next.fetch_add(1, std::memory_order_relaxed)) {
        results[i] = call_upstream(*upstreams_[i], request);
      }
    });
  }
  for (auto& worker : pool) worker.join();
  return results;
}

// ---- outcome mapping -------------------------------------------------------

FederationGateway::Routed FederationGateway::classify(net::HttpResponse response) {
  Routed routed;
  routed.outcome = response.status < 400   ? Outcome::kOk
                   : response.status < 500 ? Outcome::kHttp4xx
                                           : Outcome::kHttp5xx;
  routed.response = std::move(response);
  return routed;
}

FederationGateway::Routed FederationGateway::from_call(CallResult result) const {
  switch (result.status) {
    case CallStatus::kOk: return classify(std::move(result.response));
    case CallStatus::kTransport:
      return {error_response(502, "upstream_transport", "shard exchange failed"),
              Outcome::kTransport};
    case CallStatus::kBreakerOpen:
      return {error_response(
                  503, "breaker_open", "shard breaker open",
                  std::chrono::duration_cast<std::chrono::milliseconds>(
                      options_.breaker.open_timeout)
                      .count()),
              Outcome::kBreakerOpen};
    case CallStatus::kShed: break;
  }
  return {error_response(503, "admission_shed", "shard admission refused", 1000),
          Outcome::kShed};
}

std::optional<FederationGateway::Routed> FederationGateway::scatter_error(
    const std::vector<CallResult>& results) const {
  for (const auto status : {CallStatus::kBreakerOpen, CallStatus::kShed,
                            CallStatus::kTransport}) {
    for (const auto& result : results) {
      if (result.status == status) {
        CallResult copy;
        copy.status = status;
        return from_call(std::move(copy));
      }
    }
  }
  for (const auto& result : results) {
    if (result.response.status != 200) {
      CallResult copy;
      copy.status = CallStatus::kOk;
      copy.response = result.response;
      return from_call(std::move(copy));
    }
  }
  return std::nullopt;
}

// ---- routes ----------------------------------------------------------------

FederationGateway::Routed FederationGateway::route_single(const net::HttpRequest& request,
                                                          std::uint64_t ring_key) {
  Upstream* upstream = find_upstream(ring_.owner(ring_key));
  if (upstream == nullptr) {
    return {error_response(503, "no_upstreams", "ring owner not registered"),
            Outcome::kShed};
  }
  return from_call(call_upstream(*upstream, request));
}

FederationGateway::Routed FederationGateway::route_apps(const net::HttpRequest& request) {
  const auto results = scatter(request);
  if (auto error = scatter_error(results)) return std::move(*error);
  // The directory is replicated entity state: every shard must serve the
  // identical page. A divergence means a shard's entity replica is corrupt —
  // surfacing it beats silently picking one.
  for (std::size_t i = 1; i < results.size(); ++i) {
    if (results[i].response.body != results.front().response.body) {
      return {error_response(502, "shard_divergence", "replicated directory differs"),
              Outcome::kHttp5xx};
    }
  }
  return classify(results.front().response);
}

FederationGateway::Routed FederationGateway::route_app(const net::HttpRequest& request,
                                                       std::string_view rest) {
  (void)rest;
  const auto results = scatter(request);
  if (auto error = scatter_error(results)) return std::move(*error);
  std::uint64_t downloads = 0;
  for (const auto& result : results) {
    const auto document = crawlersim::parse_json(result.response.body);
    if (!document || !document->is_object()) {
      return {error_response(502, "bad_upstream_body", "unparseable shard response"),
              Outcome::kHttp5xx};
    }
    const Json* field = document->find("downloads");
    if (field == nullptr || !field->is_number()) {
      return {error_response(502, "bad_upstream_body", "shard response lacks downloads"),
              Outcome::kHttp5xx};
    }
    downloads += field->as_u64();
  }
  // Entity fields are replicated; only the download count is sharded.
  JsonObject merged = crawlersim::parse_json(results.front().response.body)->as_object();
  for (auto& member : merged) {
    if (member.first == "downloads") member.second = Json(downloads);
  }
  return classify(net::HttpResponse::json(200, Json(std::move(merged)).dump()));
}

FederationGateway::Routed FederationGateway::route_comments(const net::HttpRequest& request,
                                                            std::string_view rest) {
  constexpr std::uint64_t kPerPage = 200;  // the shard services' fixed page size
  const auto params = request.query();
  std::uint64_t page = 0;
  if (const auto it = params.find("page"); it != params.end()) {
    if (!util::parse_u64(it->second, page)) {
      return {error_response(400, "bad_request", "bad page"), Outcome::kHttp4xx};
    }
  }
  const std::string base_path = request.path();

  struct MergedComment {
    std::int64_t day = 0;
    std::size_t shard = 0;
    std::uint64_t position = 0;
    std::string body;  ///< the comment object, re-serialized
  };
  std::vector<MergedComment> rows;
  std::uint64_t total = 0;
  std::string app_field;
  for (std::size_t shard = 0; shard < upstreams_.size(); ++shard) {
    std::uint64_t shard_total = 0;
    std::uint64_t position = 0;
    for (std::uint64_t shard_page = 0;; ++shard_page) {
      if (shard_page >= options_.comment_scan_pages) {
        return {error_response(502, "comment_scan_overflow",
                               "per-shard comment pages exceed the merge bound"),
                Outcome::kHttp5xx};
      }
      net::HttpRequest page_request = request;
      page_request.target = util::format("{}?page={}", base_path, shard_page);
      CallResult result = call_upstream(*upstreams_[shard], page_request);
      if (result.status != CallStatus::kOk || result.response.status != 200) {
        std::vector<CallResult> one;
        one.push_back(std::move(result));
        return *scatter_error(one);
      }
      const auto document = crawlersim::parse_json(result.response.body);
      const Json* total_field = document ? document->find("total") : nullptr;
      const Json* comments_field = document ? document->find("comments") : nullptr;
      if (total_field == nullptr || !total_field->is_number() ||
          comments_field == nullptr || !comments_field->is_array()) {
        return {error_response(502, "bad_upstream_body", "unparseable shard comments"),
                Outcome::kHttp5xx};
      }
      if (shard_page == 0) {
        shard_total = total_field->as_u64();
        total += shard_total;
        if (app_field.empty()) {
          if (const Json* app = document->find("app"); app != nullptr && app->is_number()) {
            app_field = std::to_string(app->as_u64());
          }
        }
      }
      for (const Json& comment : comments_field->as_array()) {
        MergedComment row;
        const Json* day = comment.find("day");
        row.day = day != nullptr && day->is_number()
                      ? static_cast<std::int64_t>(day->as_number())
                      : 0;
        row.shard = shard;
        row.position = position++;
        row.body = comment.dump();
        rows.push_back(std::move(row));
      }
      if ((shard_page + 1) * kPerPage >= shard_total) break;
    }
  }
  // Deterministic merged order: day, then ring-membership order, then the
  // shard's own append order (docs/federation.md documents that this is a
  // stable federation order, not the single store's byte order).
  std::stable_sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return std::tie(a.day, a.shard, a.position) < std::tie(b.day, b.shard, b.position);
  });

  std::string body = "{\"app\": ";
  body += app_field.empty() ? std::string(rest) : app_field;
  body += util::format(", \"total\": {}, \"page\": {}, \"comments\": [", total, page);
  const std::uint64_t first = page * kPerPage;
  bool wrote = false;
  for (std::uint64_t i = first; i < rows.size() && i < first + kPerPage; ++i) {
    if (wrote) body += ", ";
    body += rows[i].body;
    wrote = true;
  }
  body += "]}";
  return classify(net::HttpResponse::json(200, std::move(body)));
}

FederationGateway::Routed FederationGateway::route_query(const net::HttpRequest& request) {
  query::QuerySpec spec;
  try {
    spec = crawlersim::parse_query_request(request);
  } catch (const query::QueryError& error) {
    return {error_response(400, error.code(), error.what()), Outcome::kHttp4xx};
  }
  // A query pinned to one user lives entirely on that user's ring owner:
  // forward it whole and let the shard (and its response cache) answer.
  if (const auto user = query::single_user_route(spec)) {
    return route_single(request, static_cast<std::uint64_t>(*user));
  }
  const auto results = scatter(with_partial_flag(request));
  if (auto error = scatter_error(results)) return std::move(*error);

  std::vector<query::PartialAggregate> partials;
  partials.reserve(results.size());
  market::Day day = 0;
  for (const auto& result : results) {
    const auto document = crawlersim::parse_json(result.response.body);
    if (!document || !document->is_object()) {
      return {error_response(502, "bad_upstream_body", "unparseable shard partial"),
              Outcome::kHttp5xx};
    }
    if (const Json* shard_day = document->find("day");
        shard_day != nullptr && shard_day->is_number()) {
      day = static_cast<market::Day>(shard_day->as_number());
    }
    try {
      partials.push_back(crawlersim::partial_from_json(*document));
    } catch (const query::QueryError& error) {
      return {error_response(502, "bad_upstream_body", error.what()), Outcome::kHttp5xx};
    }
  }
  try {
    const query::QueryResult merged = query::merge_partials(spec, partials);
    return classify(
        net::HttpResponse::json(200, crawlersim::query_result_json(merged, day).dump()));
  } catch (const query::QueryError& error) {
    return {error_response(502, "shard_divergence", error.what()), Outcome::kHttp5xx};
  }
}

}  // namespace appstore::fed
