#include "cache/prefetch.hpp"

#include <stdexcept>

namespace appstore::cache {

PrefetchingCache::PrefetchingCache(std::unique_ptr<CachePolicy> inner,
                                   std::span<const std::uint32_t> app_category,
                                   std::size_t prefetch_per_hit)
    : inner_(std::move(inner)),
      app_category_(app_category.begin(), app_category.end()),
      prefetch_per_hit_(prefetch_per_hit) {
  if (!inner_) throw std::invalid_argument("PrefetchingCache: null inner policy");
  std::uint32_t categories = 0;
  for (const auto category : app_category_) categories = std::max(categories, category + 1);
  category_members_.resize(categories);
  // App index order is popularity order, so appending in index order keeps
  // each member list popularity-sorted.
  for (std::uint32_t app = 0; app < app_category_.size(); ++app) {
    category_members_[app_category_[app]].push_back(app);
  }
}

bool PrefetchingCache::access(std::uint32_t app) {
  const bool hit = inner_->access(app);
  if (hit) return true;

  // Demand miss: the cache is not serving this category's current interest
  // well, so prefetch its most popular not-yet-cached apps. Admitted via the
  // inner policy's own access() so its replacement logic applies; the
  // prefetches never count as demand hits. Prefetching on hits as well was
  // measured to pollute the cache (it keeps re-admitting category heads that
  // demand traffic would have kept warm anyway).
  const auto& members = category_members_[app_category_.at(app)];
  std::size_t admitted = 0;
  for (const auto candidate : members) {
    if (admitted >= prefetch_per_hit_) break;
    if (candidate == app || inner_->contains(candidate)) continue;
    (void)inner_->access(candidate);
    ++admitted;
    ++prefetched_;
  }
  return false;
}

}  // namespace appstore::cache
