// Cache simulation driver (§7, Fig. 19).
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "cache/policy.hpp"
#include "events/event_log.hpp"
#include "models/stream.hpp"
#include "obs/registry.hpp"

namespace appstore::cache {

struct SimResult {
  std::uint64_t requests = 0;
  std::uint64_t hits = 0;
  std::uint64_t evictions = 0;

  [[nodiscard]] double hit_ratio() const noexcept {
    return requests == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(requests);
  }
};

/// Options for simulate() (the Options-struct API).
struct SimOptions {
  /// If > 0, the cache is pre-populated with apps 0..warm_top_n-1 (the
  /// globally most popular apps, as in the paper's setup: "the cache was
  /// initialized with the respective number of most popular apps").
  std::size_t warm_top_n = 0;
  /// Optional metrics sink: records cache_requests_total / cache_hits_total
  /// / cache_misses_total / cache_evictions_total, labeled by policy name.
  obs::Registry* metrics = nullptr;
};

/// Runs every requested app through the policy. The primary form: only the
/// app id matters to a cache, so the request stream is just a column.
[[nodiscard]] SimResult simulate(CachePolicy& policy, std::span<const std::uint32_t> apps,
                                 const SimOptions& options);

/// View adapter: simulates a columnar request stream (models::
/// generate_stream_log) without materializing Request structs.
[[nodiscard]] inline SimResult simulate(CachePolicy& policy, const events::EventLog& requests,
                                        const SimOptions& options) {
  return simulate(policy, requests.app(), options);
}

/// Runs every request through the policy (AoS request stream).
[[nodiscard]] SimResult simulate(CachePolicy& policy,
                                 std::span<const models::Request> requests,
                                 const SimOptions& options);

/// Deprecated positional form; forwards to the SimOptions overload.
[[nodiscard]] inline SimResult simulate(CachePolicy& policy,
                                        std::span<const models::Request> requests,
                                        std::size_t warm_top_n = 0) {
  return simulate(policy, requests, SimOptions{.warm_top_n = warm_top_n});
}

/// Hit ratio of one policy kind at several cache sizes over the same stream.
struct SweepPoint {
  std::size_t cache_size = 0;
  double hit_ratio = 0.0;
};

/// One independent simulation task per cache size (each size owns a private
/// policy instance over the shared read-only stream), so the sweep
/// parallelizes across sizes; results are identical at every thread count.
/// `app_category` is borrowed for the sweep's duration (required for
/// kClusterLru, ignored otherwise). `threads`: 0 = hardware_concurrency.
[[nodiscard]] std::vector<SweepPoint> sweep_cache_sizes(
    PolicyKind kind, std::span<const std::size_t> sizes,
    std::span<const std::uint32_t> request_apps,
    std::span<const std::uint32_t> app_category = {}, std::uint64_t seed = 0,
    obs::Registry* metrics = nullptr, std::size_t threads = 0);

/// View adapter over a columnar request stream.
[[nodiscard]] inline std::vector<SweepPoint> sweep_cache_sizes(
    PolicyKind kind, std::span<const std::size_t> sizes, const events::EventLog& requests,
    std::span<const std::uint32_t> app_category = {}, std::uint64_t seed = 0,
    obs::Registry* metrics = nullptr, std::size_t threads = 0) {
  return sweep_cache_sizes(kind, sizes, requests.app(), app_category, seed, metrics, threads);
}

/// Deprecated AoS form; copies the app column out of `requests` once.
[[nodiscard]] std::vector<SweepPoint> sweep_cache_sizes(
    PolicyKind kind, std::span<const std::size_t> sizes,
    std::span<const models::Request> requests, std::span<const std::uint32_t> app_category = {},
    std::uint64_t seed = 0, obs::Registry* metrics = nullptr, std::size_t threads = 0);

}  // namespace appstore::cache
