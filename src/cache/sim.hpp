// Cache simulation driver (§7, Fig. 19).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cache/policy.hpp"
#include "models/stream.hpp"

namespace appstore::cache {

struct SimResult {
  std::uint64_t requests = 0;
  std::uint64_t hits = 0;

  [[nodiscard]] double hit_ratio() const noexcept {
    return requests == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(requests);
  }
};

/// Runs every request through the policy. If `warm_top_n > 0`, the cache is
/// pre-populated with apps 0..warm_top_n-1 (the globally most popular apps,
/// as in the paper's setup: "the cache was initialized with the respective
/// number of most popular apps").
[[nodiscard]] SimResult simulate(CachePolicy& policy,
                                 std::span<const models::Request> requests,
                                 std::size_t warm_top_n = 0);

/// Hit ratio of one policy kind at several cache sizes over the same stream.
struct SweepPoint {
  std::size_t cache_size = 0;
  double hit_ratio = 0.0;
};

[[nodiscard]] std::vector<SweepPoint> sweep_cache_sizes(
    PolicyKind kind, std::span<const std::size_t> sizes,
    std::span<const models::Request> requests, std::vector<std::uint32_t> app_category = {},
    std::uint64_t seed = 0);

}  // namespace appstore::cache
