// Category prefetching (§7 "Effective prefetching").
//
// "A user that downloads an app from a given category is more likely to
// download the next few apps from the same category. Thus, the most popular
// apps from this category ... can be prefetched." PrefetchingCache wraps any
// CachePolicy: on every access it additionally admits the top-N most popular
// not-yet-cached apps of the accessed app's category. The ablation bench
// measures the hit-ratio gain (and the admission overhead) under the three
// workload models.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "cache/policy.hpp"

namespace appstore::cache {

class PrefetchingCache final : public CachePolicy {
 public:
  /// `app_category[a]` maps apps to categories (copied into the cache); apps
  /// are assumed to be indexed in global popularity order (index 0 = most
  /// popular), which makes "most popular apps of a category" a precomputable
  /// list.
  PrefetchingCache(std::unique_ptr<CachePolicy> inner,
                   std::span<const std::uint32_t> app_category,
                   std::size_t prefetch_per_hit);

  [[nodiscard]] std::string_view name() const noexcept override { return "PREFETCH"; }
  [[nodiscard]] std::size_t capacity() const noexcept override { return inner_->capacity(); }
  [[nodiscard]] std::size_t size() const noexcept override { return inner_->size(); }
  [[nodiscard]] bool contains(std::uint32_t app) const override {
    return inner_->contains(app);
  }

  bool access(std::uint32_t app) override;

  /// Apps admitted by prefetching (not by demand misses).
  [[nodiscard]] std::uint64_t prefetched() const noexcept { return prefetched_; }

 private:
  std::unique_ptr<CachePolicy> inner_;
  std::vector<std::uint32_t> app_category_;
  /// Per category: member apps in popularity order.
  std::vector<std::vector<std::uint32_t>> category_members_;
  std::size_t prefetch_per_hit_;
  std::uint64_t prefetched_ = 0;
};

}  // namespace appstore::cache
