// App-cache replacement policies (§7, Fig. 19).
//
// The paper simulates an appstore front-end cache holding whole APKs
// (uniform size, avg 3.5 MB) with an LRU policy, and shows that the
// clustering-driven workload hurts LRU badly. We implement LRU plus the
// alternatives used by the ablation bench: FIFO, LFU, RANDOM, and a
// cluster-aware policy (CLUSTER-LRU) that evicts from the least-recently
// *active category* first — the "new replacement policies" direction the
// paper suggests.
//
// All policies expose one operation: access(app) -> hit/miss. On a miss the
// app is admitted and, if the cache is full, a victim is evicted.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <span>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/rng.hpp"

namespace appstore::cache {

class CachePolicy {
 public:
  virtual ~CachePolicy() = default;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
  [[nodiscard]] virtual std::size_t capacity() const noexcept = 0;
  [[nodiscard]] virtual std::size_t size() const noexcept = 0;

  /// Looks up `app`; admits it on miss. Returns true on hit.
  virtual bool access(std::uint32_t app) = 0;

  /// Pre-populates with apps (most popular first); stops at capacity.
  virtual void warm(std::span<const std::uint32_t> apps);

  [[nodiscard]] virtual bool contains(std::uint32_t app) const = 0;

  /// Total victims evicted to make room (admissions past capacity).
  [[nodiscard]] std::uint64_t evictions() const noexcept { return evictions_; }

 protected:
  std::uint64_t evictions_ = 0;  ///< implementations bump this per victim
};

/// Least-recently-used: classic list + hash index, O(1) per access.
class LruCache final : public CachePolicy {
 public:
  explicit LruCache(std::size_t capacity);

  [[nodiscard]] std::string_view name() const noexcept override { return "LRU"; }
  [[nodiscard]] std::size_t capacity() const noexcept override { return capacity_; }
  [[nodiscard]] std::size_t size() const noexcept override { return index_.size(); }
  bool access(std::uint32_t app) override;
  [[nodiscard]] bool contains(std::uint32_t app) const override {
    return index_.contains(app);
  }

 private:
  std::size_t capacity_;
  std::list<std::uint32_t> order_;  ///< front = most recent
  std::unordered_map<std::uint32_t, std::list<std::uint32_t>::iterator> index_;
};

/// First-in-first-out: no recency update on hit.
class FifoCache final : public CachePolicy {
 public:
  explicit FifoCache(std::size_t capacity);

  [[nodiscard]] std::string_view name() const noexcept override { return "FIFO"; }
  [[nodiscard]] std::size_t capacity() const noexcept override { return capacity_; }
  [[nodiscard]] std::size_t size() const noexcept override { return index_.size(); }
  bool access(std::uint32_t app) override;
  [[nodiscard]] bool contains(std::uint32_t app) const override {
    return index_.contains(app);
  }

 private:
  std::size_t capacity_;
  std::list<std::uint32_t> order_;  ///< front = newest admission
  std::unordered_map<std::uint32_t, std::list<std::uint32_t>::iterator> index_;
};

/// Least-frequently-used with LRU tie-breaking (frequency counted since
/// admission).
class LfuCache final : public CachePolicy {
 public:
  explicit LfuCache(std::size_t capacity);

  [[nodiscard]] std::string_view name() const noexcept override { return "LFU"; }
  [[nodiscard]] std::size_t capacity() const noexcept override { return capacity_; }
  [[nodiscard]] std::size_t size() const noexcept override { return entries_.size(); }
  bool access(std::uint32_t app) override;
  [[nodiscard]] bool contains(std::uint32_t app) const override {
    return entries_.contains(app);
  }

 private:
  struct Entry {
    std::uint64_t frequency = 0;
    std::uint64_t last_touch = 0;
  };
  void evict();

  std::size_t capacity_;
  std::uint64_t clock_ = 0;
  std::unordered_map<std::uint32_t, Entry> entries_;
};

/// Uniform random eviction — the classic baseline.
class RandomCache final : public CachePolicy {
 public:
  RandomCache(std::size_t capacity, std::uint64_t seed);

  [[nodiscard]] std::string_view name() const noexcept override { return "RANDOM"; }
  [[nodiscard]] std::size_t capacity() const noexcept override { return capacity_; }
  [[nodiscard]] std::size_t size() const noexcept override { return slots_.size(); }
  bool access(std::uint32_t app) override;
  [[nodiscard]] bool contains(std::uint32_t app) const override {
    return index_.contains(app);
  }

 private:
  std::size_t capacity_;
  util::Rng rng_;
  std::vector<std::uint32_t> slots_;
  std::unordered_map<std::uint32_t, std::size_t> index_;  ///< app -> slot
};

/// Cluster-aware LRU: apps are grouped by category; eviction takes the LRU
/// app of the least-recently-*accessed* category. Categories a user
/// community is actively downloading from stay resident even when individual
/// apps in them have not been touched recently — directly countering the
/// clustering effect's damage to plain LRU.
class ClusterLruCache final : public CachePolicy {
 public:
  /// `app_category[a]` maps app a to its category (copied into the cache).
  ClusterLruCache(std::size_t capacity, std::span<const std::uint32_t> app_category);

  [[nodiscard]] std::string_view name() const noexcept override { return "CLUSTER-LRU"; }
  [[nodiscard]] std::size_t capacity() const noexcept override { return capacity_; }
  [[nodiscard]] std::size_t size() const noexcept override { return size_; }
  bool access(std::uint32_t app) override;
  [[nodiscard]] bool contains(std::uint32_t app) const override;

 private:
  struct CategoryState {
    std::list<std::uint32_t> order;  ///< per-category LRU, front = most recent
    std::list<std::uint32_t>::iterator recency;  ///< position in category_order_
    bool active = false;
  };
  void evict();

  std::size_t capacity_;
  std::size_t size_ = 0;
  std::vector<std::uint32_t> app_category_;
  std::list<std::uint32_t> category_order_;  ///< front = most recently accessed
  std::vector<CategoryState> categories_;
  std::unordered_map<std::uint32_t, std::list<std::uint32_t>::iterator> index_;
};

enum class PolicyKind : std::uint8_t { kLru, kFifo, kLfu, kRandom, kClusterLru };

[[nodiscard]] std::string_view to_string(PolicyKind kind) noexcept;

/// Factory; `app_category` is required for kClusterLru and ignored otherwise
/// (borrowed — copied only by the policies that keep it).
[[nodiscard]] std::unique_ptr<CachePolicy> make_policy(
    PolicyKind kind, std::size_t capacity, std::span<const std::uint32_t> app_category = {},
    std::uint64_t seed = 0);

}  // namespace appstore::cache
