#include "cache/policy.hpp"

#include <stdexcept>

namespace appstore::cache {

void CachePolicy::warm(std::span<const std::uint32_t> apps) {
  for (const auto app : apps) {
    if (size() >= capacity()) break;
    (void)access(app);
  }
}

// ---- LRU ---------------------------------------------------------------------

LruCache::LruCache(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0) throw std::invalid_argument("LruCache: zero capacity");
  index_.reserve(capacity);
}

bool LruCache::access(std::uint32_t app) {
  const auto it = index_.find(app);
  if (it != index_.end()) {
    order_.splice(order_.begin(), order_, it->second);
    return true;
  }
  if (index_.size() >= capacity_) {
    index_.erase(order_.back());
    order_.pop_back();
    ++evictions_;
  }
  order_.push_front(app);
  index_.emplace(app, order_.begin());
  return false;
}

// ---- FIFO --------------------------------------------------------------------

FifoCache::FifoCache(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0) throw std::invalid_argument("FifoCache: zero capacity");
  index_.reserve(capacity);
}

bool FifoCache::access(std::uint32_t app) {
  if (index_.contains(app)) return true;
  if (index_.size() >= capacity_) {
    index_.erase(order_.back());
    order_.pop_back();
    ++evictions_;
  }
  order_.push_front(app);
  index_.emplace(app, order_.begin());
  return false;
}

// ---- LFU ---------------------------------------------------------------------

LfuCache::LfuCache(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0) throw std::invalid_argument("LfuCache: zero capacity");
  entries_.reserve(capacity);
}

bool LfuCache::access(std::uint32_t app) {
  ++clock_;
  const auto it = entries_.find(app);
  if (it != entries_.end()) {
    ++it->second.frequency;
    it->second.last_touch = clock_;
    return true;
  }
  if (entries_.size() >= capacity_) evict();
  entries_.emplace(app, Entry{1, clock_});
  return false;
}

void LfuCache::evict() {
  // Linear victim scan: O(capacity) per miss. Acceptable for the simulation
  // sizes here (<= ~10^5 entries, misses are the minority of accesses);
  // a production cache would keep a frequency-bucketed structure.
  auto victim = entries_.begin();
  for (auto it = std::next(entries_.begin()); it != entries_.end(); ++it) {
    const bool less_frequent = it->second.frequency < victim->second.frequency;
    const bool tie_older = it->second.frequency == victim->second.frequency &&
                           it->second.last_touch < victim->second.last_touch;
    if (less_frequent || tie_older) victim = it;
  }
  entries_.erase(victim);
  ++evictions_;
}

// ---- RANDOM ------------------------------------------------------------------

RandomCache::RandomCache(std::size_t capacity, std::uint64_t seed)
    : capacity_(capacity), rng_(seed) {
  if (capacity == 0) throw std::invalid_argument("RandomCache: zero capacity");
  slots_.reserve(capacity);
  index_.reserve(capacity);
}

bool RandomCache::access(std::uint32_t app) {
  if (index_.contains(app)) return true;
  if (slots_.size() >= capacity_) {
    const std::size_t victim_slot = static_cast<std::size_t>(rng_.below(slots_.size()));
    index_.erase(slots_[victim_slot]);
    ++evictions_;
    slots_[victim_slot] = app;
    index_.emplace(app, victim_slot);
    return false;
  }
  slots_.push_back(app);
  index_.emplace(app, slots_.size() - 1);
  return false;
}

// ---- CLUSTER-LRU -------------------------------------------------------------

ClusterLruCache::ClusterLruCache(std::size_t capacity,
                                 std::span<const std::uint32_t> app_category)
    : capacity_(capacity), app_category_(app_category.begin(), app_category.end()) {
  if (capacity == 0) throw std::invalid_argument("ClusterLruCache: zero capacity");
  std::uint32_t categories = 0;
  for (const auto category : app_category_) categories = std::max(categories, category + 1);
  categories_.resize(categories);
  index_.reserve(capacity);
}

bool ClusterLruCache::contains(std::uint32_t app) const { return index_.contains(app); }

bool ClusterLruCache::access(std::uint32_t app) {
  const std::uint32_t category = app_category_.at(app);
  CategoryState& state = categories_[category];

  // Bump the category to the front of the category recency list.
  if (state.active) {
    category_order_.splice(category_order_.begin(), category_order_, state.recency);
  } else {
    category_order_.push_front(category);
    state.recency = category_order_.begin();
    state.active = true;
  }

  const auto it = index_.find(app);
  if (it != index_.end()) {
    state.order.splice(state.order.begin(), state.order, it->second);
    return true;
  }
  if (size_ >= capacity_) evict();
  state.order.push_front(app);
  index_.emplace(app, state.order.begin());
  ++size_;
  return false;
}

void ClusterLruCache::evict() {
  // Victim: LRU app of the least-recently-accessed category that still holds
  // apps. Empty tail categories are retired on the way.
  while (!category_order_.empty()) {
    const std::uint32_t tail_category = category_order_.back();
    CategoryState& state = categories_[tail_category];
    if (state.order.empty()) {
      state.active = false;
      category_order_.pop_back();
      continue;
    }
    index_.erase(state.order.back());
    state.order.pop_back();
    --size_;
    ++evictions_;
    return;
  }
}

// ---- factory -----------------------------------------------------------------

std::string_view to_string(PolicyKind kind) noexcept {
  switch (kind) {
    case PolicyKind::kLru: return "LRU";
    case PolicyKind::kFifo: return "FIFO";
    case PolicyKind::kLfu: return "LFU";
    case PolicyKind::kRandom: return "RANDOM";
    case PolicyKind::kClusterLru: return "CLUSTER-LRU";
  }
  return "?";
}

std::unique_ptr<CachePolicy> make_policy(PolicyKind kind, std::size_t capacity,
                                         std::span<const std::uint32_t> app_category,
                                         std::uint64_t seed) {
  switch (kind) {
    case PolicyKind::kLru: return std::make_unique<LruCache>(capacity);
    case PolicyKind::kFifo: return std::make_unique<FifoCache>(capacity);
    case PolicyKind::kLfu: return std::make_unique<LfuCache>(capacity);
    case PolicyKind::kRandom: return std::make_unique<RandomCache>(capacity, seed);
    case PolicyKind::kClusterLru:
      return std::make_unique<ClusterLruCache>(capacity, app_category);
  }
  throw std::invalid_argument("make_policy: unknown kind");
}

}  // namespace appstore::cache
