#include "cache/sim.hpp"

#include <numeric>

#include "par/parallel.hpp"

namespace appstore::cache {

namespace {

void warm_policy(CachePolicy& policy, std::size_t warm_top_n) {
  if (warm_top_n == 0) return;
  std::vector<std::uint32_t> top(warm_top_n);
  std::iota(top.begin(), top.end(), 0U);
  policy.warm(top);
}

void record_metrics(const CachePolicy& policy, const SimResult& result,
                    const SimOptions& options) {
  if (options.metrics == nullptr) return;
  obs::Registry& registry = *options.metrics;
  const std::string_view label = policy.name();
  registry.counter("cache_requests_total", label).inc(result.requests);
  registry.counter("cache_hits_total", label).inc(result.hits);
  registry.counter("cache_misses_total", label).inc(result.requests - result.hits);
  registry.counter("cache_evictions_total", label).inc(result.evictions);
  registry.gauge("cache_hit_ratio", label).set(result.hit_ratio());
}

}  // namespace

SimResult simulate(CachePolicy& policy, std::span<const std::uint32_t> apps,
                   const SimOptions& options) {
  warm_policy(policy, options.warm_top_n);
  const std::uint64_t evictions_before = policy.evictions();
  SimResult result;
  for (const auto app : apps) {
    ++result.requests;
    if (policy.access(app)) ++result.hits;
  }
  result.evictions = policy.evictions() - evictions_before;
  record_metrics(policy, result, options);
  return result;
}

SimResult simulate(CachePolicy& policy, std::span<const models::Request> requests,
                   const SimOptions& options) {
  warm_policy(policy, options.warm_top_n);
  const std::uint64_t evictions_before = policy.evictions();
  SimResult result;
  for (const auto& request : requests) {
    ++result.requests;
    if (policy.access(request.app)) ++result.hits;
  }
  result.evictions = policy.evictions() - evictions_before;
  record_metrics(policy, result, options);
  return result;
}

std::vector<SweepPoint> sweep_cache_sizes(PolicyKind kind, std::span<const std::size_t> sizes,
                                          std::span<const std::uint32_t> request_apps,
                                          std::span<const std::uint32_t> app_category,
                                          std::uint64_t seed, obs::Registry* metrics,
                                          std::size_t threads) {
  const par::Options par_options{.threads = threads, .grain = 1, .metrics = metrics};
  return par::parallel_map<SweepPoint>(sizes.size(), par_options, [&](std::uint64_t i) {
    const auto size = sizes[static_cast<std::size_t>(i)];
    const auto policy = make_policy(kind, size, app_category, seed);
    const SimResult result =
        simulate(*policy, request_apps, SimOptions{.warm_top_n = size, .metrics = metrics});
    return SweepPoint{size, result.hit_ratio()};
  });
}

std::vector<SweepPoint> sweep_cache_sizes(PolicyKind kind, std::span<const std::size_t> sizes,
                                          std::span<const models::Request> requests,
                                          std::span<const std::uint32_t> app_category,
                                          std::uint64_t seed, obs::Registry* metrics,
                                          std::size_t threads) {
  std::vector<std::uint32_t> apps;
  apps.reserve(requests.size());
  for (const auto& request : requests) apps.push_back(request.app);
  return sweep_cache_sizes(kind, sizes, std::span<const std::uint32_t>(apps), app_category,
                           seed, metrics, threads);
}

}  // namespace appstore::cache
