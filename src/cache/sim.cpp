#include "cache/sim.hpp"

#include <numeric>

namespace appstore::cache {

SimResult simulate(CachePolicy& policy, std::span<const models::Request> requests,
                   std::size_t warm_top_n) {
  if (warm_top_n > 0) {
    std::vector<std::uint32_t> top(warm_top_n);
    std::iota(top.begin(), top.end(), 0U);
    policy.warm(top);
  }
  SimResult result;
  for (const auto& request : requests) {
    ++result.requests;
    if (policy.access(request.app)) ++result.hits;
  }
  return result;
}

std::vector<SweepPoint> sweep_cache_sizes(PolicyKind kind, std::span<const std::size_t> sizes,
                                          std::span<const models::Request> requests,
                                          std::vector<std::uint32_t> app_category,
                                          std::uint64_t seed) {
  std::vector<SweepPoint> points;
  points.reserve(sizes.size());
  for (const auto size : sizes) {
    const auto policy = make_policy(kind, size, app_category, seed);
    const SimResult result = simulate(*policy, requests, size);
    points.push_back(SweepPoint{size, result.hit_ratio()});
  }
  return points;
}

}  // namespace appstore::cache
