#include "query/plan.hpp"

#include <algorithm>
#include <cmath>

#include "par/parallel.hpp"
#include "util/format.hpp"

namespace appstore::query {

namespace {

[[nodiscard]] bool compare(CompareOp op, double lhs, double rhs) noexcept {
  switch (op) {
    case CompareOp::kEq: return lhs == rhs;
    case CompareOp::kNe: return lhs != rhs;
    case CompareOp::kLt: return lhs < rhs;
    case CompareOp::kLe: return lhs <= rhs;
    case CompareOp::kGt: return lhs > rhs;
    case CompareOp::kGe: return lhs >= rhs;
  }
  return false;
}

/// Row-wise evaluator for one comparison clause against the bound columns.
/// App-joined fields (category, price) read the metadata spans through the
/// row's app id; a disabled day column reads as 0 (the Event default).
class ClauseEval {
 public:
  ClauseEval(const Comparison& clause, const BoundLog& bound)
      : clause_(clause),
        user_(bound.log.user()),
        app_(bound.log.app()),
        day_(bound.log.day()),
        app_category_(bound.app_category),
        app_price_(bound.app_price) {}

  [[nodiscard]] bool matches(std::uint64_t row) const noexcept {
    double value = 0.0;
    switch (clause_.field) {
      case Field::kDay:
        value = day_.empty() ? 0.0 : static_cast<double>(day_[row]);
        break;
      case Field::kUser:
        value = static_cast<double>(user_[row]);
        break;
      case Field::kApp:
        value = static_cast<double>(app_[row]);
        break;
      case Field::kCategory:
        value = static_cast<double>(app_category_[app_[row]]);
        break;
      case Field::kPrice:
        value = app_price_[app_[row]];
        break;
      case Field::kStore:
        return false;  // folded at plan time; unreachable
    }
    return compare(clause_.op, value, clause_.number);
  }

 private:
  Comparison clause_;
  std::span<const std::uint32_t> user_;
  std::span<const std::uint32_t> app_;
  std::span<const std::int32_t> day_;
  std::span<const std::uint32_t> app_category_;
  std::span<const double> app_price_;
};

[[nodiscard]] PlanNode constant(bool all) {
  PlanNode node;
  node.kind = all ? NodeKind::kAll : NodeKind::kNone;
  return node;
}

/// Inclusive user range selected by a contiguous-range operator; nullopt for
/// an empty selection. `kNe` is never contiguous and is not handled here.
struct UserRange {
  std::uint32_t lo = 0;
  std::uint32_t hi = 0;
};

[[nodiscard]] std::optional<UserRange> user_range(const Comparison& clause,
                                                  std::uint32_t user_count) {
  if (user_count == 0) return std::nullopt;
  const double v = clause.number;
  const auto last = static_cast<double>(user_count - 1);
  double lo = 0.0;
  double hi = last;
  switch (clause.op) {
    case CompareOp::kEq: lo = hi = v; break;
    case CompareOp::kLe: hi = v; break;
    case CompareOp::kLt: hi = v - 1.0; break;
    case CompareOp::kGe: lo = v; break;
    case CompareOp::kGt: lo = v + 1.0; break;
    case CompareOp::kNe: return std::nullopt;  // not contiguous (caller guards)
  }
  lo = std::max(lo, 0.0);
  hi = std::min(hi, last);
  if (lo > hi) return std::nullopt;
  return UserRange{static_cast<std::uint32_t>(lo), static_cast<std::uint32_t>(hi)};
}

[[nodiscard]] PlanNode plan_leaf(const Comparison& clause, const BoundLog& bound,
                                 const PlanOptions& options) {
  PlanNode node;
  node.clause = clause;

  switch (clause.field) {
    case Field::kStore: {
      const bool equal = clause.text == bound.store_name;
      return constant(clause.op == CompareOp::kEq ? equal : !equal);
    }
    case Field::kCategory: {
      if (clause.is_text) {
        // Resolved against real names by the engine before planning; a text
        // clause reaching this point means the caller skipped binding.
        throw QueryError("unknown_category",
                         util::format("unknown category '{}'", clause.text));
      }
      if (clause.number >= static_cast<double>(bound.category_count)) {
        return constant(clause.op == CompareOp::kNe);
      }
      break;
    }
    case Field::kUser: {
      if (clause.op == CompareOp::kNe) break;  // not contiguous: column scan
      const auto range = user_range(clause, bound.user_count);
      if (!range.has_value()) return constant(false);
      if (range->lo == 0 && range->hi == bound.user_count - 1) return constant(true);
      const auto span = static_cast<double>(range->hi - range->lo) + 1.0;
      const double limit =
          std::max(1.0, static_cast<double>(bound.user_count) * options.index_user_fraction);
      if (options.allow_index_scan && bound.log.indexed() &&
          bound.log.user_count() >= bound.user_count && span <= limit) {
        node.kind = NodeKind::kIndexScan;
        node.user_lo = range->lo;
        node.user_hi = range->hi;
        return node;
      }
      break;
    }
    default:
      break;
  }
  node.kind = NodeKind::kColumnScan;
  return node;
}

[[nodiscard]] PlanNode plan_node(const Expr& expr, const BoundLog& bound,
                                 const PlanOptions& options) {
  if (expr.kind == Expr::Kind::kComparison) {
    return plan_leaf(expr.comparison, bound, options);
  }
  const bool is_and = expr.kind == Expr::Kind::kAnd;
  PlanNode node;
  node.kind = is_and ? NodeKind::kAnd : NodeKind::kOr;
  for (const Expr& child : expr.children) {
    PlanNode planned = plan_node(child, bound, options);
    if (planned.kind == NodeKind::kAll) {
      if (!is_and) return constant(true);  // or-with-all is all
      continue;                            // and-with-all folds away
    }
    if (planned.kind == NodeKind::kNone) {
      if (is_and) return constant(false);  // and-with-none is none
      continue;                            // or-with-none folds away
    }
    node.children.push_back(std::move(planned));
  }
  if (node.children.empty()) return constant(is_and);
  if (node.children.size() == 1) return std::move(node.children.front());

  if (is_and) {
    // Residual rewrite: once one child materializes a candidate set, further
    // column scans only need to test those candidates, not the whole log.
    // Keep the first column scan (or any index scan / sub-tree) as a source
    // and demote the remaining column-scan leaves to residual filters.
    const bool has_cheap_source = std::any_of(
        node.children.begin(), node.children.end(),
        [](const PlanNode& child) { return child.kind != NodeKind::kColumnScan; });
    bool source_seen = has_cheap_source;
    for (PlanNode& child : node.children) {
      if (child.kind != NodeKind::kColumnScan) continue;
      if (!source_seen) {
        source_seen = true;  // first column scan feeds the candidate set
        continue;
      }
      child.kind = NodeKind::kResidual;
    }
  }
  return node;
}

void count_scans(const PlanNode& node, Plan& plan) {
  switch (node.kind) {
    case NodeKind::kIndexScan: ++plan.index_scans; break;
    case NodeKind::kColumnScan: ++plan.column_scans; break;
    case NodeKind::kResidual: ++plan.residual_filters; break;
    default: break;
  }
  for (const PlanNode& child : node.children) count_scans(child, plan);
}

[[nodiscard]] RowSet run_index_scan(const PlanNode& node, const BoundLog& bound) {
  RowSet result;
  for (std::uint32_t user = node.user_lo; user <= node.user_hi; ++user) {
    const events::LiveStreamView view = bound.log.stream(user);
    for (std::size_t i = 0; i < view.size(); ++i) {
      result.rows.push_back(view.event_index(i));
    }
  }
  std::sort(result.rows.begin(), result.rows.end());
  return result;
}

[[nodiscard]] RowSet run_column_scan(const PlanNode& node, const BoundLog& bound,
                                     const PlanOptions& options) {
  RowSet result;
  const std::uint64_t rows = bound.log.size();
  if (rows == 0) return result;
  const ClauseEval eval(node.clause, bound);
  const std::uint64_t block = std::max<std::uint64_t>(1, options.scan_block);
  const std::uint64_t blocks = (rows + block - 1) / block;
  par::Options par_options;
  par_options.threads = options.threads;
  // One reduce item per fixed-size row block: each block's matches are
  // collected independently and concatenated in ascending block order, so
  // the row set is identical at every thread count and grain.
  result.rows = par::parallel_reduce<std::vector<std::uint32_t>>(
      blocks, {}, par_options,
      [&](std::uint64_t b) {
        std::vector<std::uint32_t> matched;
        const std::uint64_t begin = b * block;
        const std::uint64_t end = std::min(rows, begin + block);
        for (std::uint64_t i = begin; i < end; ++i) {
          if (eval.matches(i)) matched.push_back(static_cast<std::uint32_t>(i));
        }
        return matched;
      },
      [](std::vector<std::uint32_t> acc, std::vector<std::uint32_t> part) {
        if (acc.empty()) return part;
        acc.insert(acc.end(), part.begin(), part.end());
        return acc;
      });
  return result;
}

[[nodiscard]] RowSet run_node(const PlanNode& node, const BoundLog& bound,
                              const PlanOptions& options);

[[nodiscard]] RowSet run_and(const PlanNode& node, const BoundLog& bound,
                             const PlanOptions& options) {
  // Sources first (index scans, sub-trees, the one surviving column scan),
  // intersected as we go with an empty-set early exit; residual filters then
  // test only the candidates.
  RowSet current;
  current.all = true;
  for (const PlanNode& child : node.children) {
    if (child.kind == NodeKind::kResidual) continue;
    RowSet next = run_node(child, bound, options);
    if (current.all) {
      current = std::move(next);
    } else if (!next.all) {
      current.rows = intersect_sorted(current.rows, next.rows);
    }
    if (!current.all && current.rows.empty()) return current;
  }
  for (const PlanNode& child : node.children) {
    if (child.kind != NodeKind::kResidual) continue;
    const ClauseEval eval(child.clause, bound);
    std::vector<std::uint32_t> kept;
    kept.reserve(current.rows.size());
    for (const std::uint32_t row : current.rows) {
      if (eval.matches(row)) kept.push_back(row);
    }
    current.rows = std::move(kept);
    if (current.rows.empty()) break;
  }
  return current;
}

RowSet run_node(const PlanNode& node, const BoundLog& bound, const PlanOptions& options) {
  switch (node.kind) {
    case NodeKind::kAll: {
      RowSet all;
      all.all = true;
      return all;
    }
    case NodeKind::kNone:
      return RowSet{};
    case NodeKind::kIndexScan:
      return run_index_scan(node, bound);
    case NodeKind::kColumnScan:
    case NodeKind::kResidual:  // executed standalone only in degenerate plans
      return run_column_scan(node, bound, options);
    case NodeKind::kAnd:
      return run_and(node, bound, options);
    case NodeKind::kOr: {
      RowSet result;
      for (const PlanNode& child : node.children) {
        RowSet next = run_node(child, bound, options);
        if (next.all) return next;
        result.rows = union_sorted(result.rows, next.rows);
      }
      return result;
    }
  }
  return RowSet{};
}

}  // namespace

Plan plan_filter(const Expr& expr, const BoundLog& bound, const PlanOptions& options) {
  Plan plan;
  plan.root = plan_node(expr, bound, options);
  count_scans(plan.root, plan);
  return plan;
}

Plan plan_all() {
  Plan plan;
  plan.root.kind = NodeKind::kAll;
  return plan;
}

RowSet execute(const Plan& plan, const BoundLog& bound, const PlanOptions& options) {
  return run_node(plan.root, bound, options);
}

std::vector<std::uint32_t> intersect_sorted(const std::vector<std::uint32_t>& a,
                                            const std::vector<std::uint32_t>& b) {
  std::vector<std::uint32_t> out;
  out.reserve(std::min(a.size(), b.size()));
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
  return out;
}

std::vector<std::uint32_t> union_sorted(const std::vector<std::uint32_t>& a,
                                        const std::vector<std::uint32_t>& b) {
  std::vector<std::uint32_t> out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
  return out;
}

}  // namespace appstore::query
