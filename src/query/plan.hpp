// Predicate planner + executor over one columnar events::EventLog.
//
// A bound filter expression compiles into a plan tree whose leaves are index
// filters in the netplay query_planner sense: each comparison clause is
// assigned a scan strategy —
//
//   kIndexScan   user-selective clauses (user == K, narrow user ranges) walk
//                only the CSR per-user slices of the log's index: O(rows of
//                the selected users) instead of O(all rows);
//   kColumnScan  every other clause scans its column(s) in fixed-size row
//                blocks through par::parallel_reduce (block results are
//                concatenated in ascending block order, so the selected row
//                set is bit-identical at every thread count);
//   kResidual    inside an `and`, every column scan after the first source
//                is demoted to a residual filter that only tests the rows
//                the earlier children already selected;
//   kAll/kNone   clauses that are constant for this store (store == name,
//                tautological ranges) fold away at plan time.
//
// Clause results are sorted row-id sets combined with sorted-set operations
// (intersection for `and`, union for `or`). The planner also simplifies
// around kAll/kNone so a tautological clause costs nothing at execution.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "events/live_log.hpp"
#include "query/expression.hpp"

namespace appstore::query {

/// The per-log binding context: a frontier snapshot of the event log plus
/// the app-metadata columns the app-joined fields (category, price) read
/// through. The snapshot pins one consistent prefix for the whole plan —
/// planning, index scans, and every column-scan block read the same rows
/// even while writers keep appending. Spans must outlive plan execution.
struct BoundLog {
  events::FrontierSnapshot log;
  /// Per-app metadata, indexed by app id (category id; list price, dollars).
  std::span<const std::uint32_t> app_category;
  std::span<const double> app_price;
  std::string_view store_name;
  std::uint32_t user_count = 0;
  std::uint32_t category_count = 0;
};

struct PlanOptions {
  /// Permit CSR index scans (requires the log's per-user index to be built;
  /// the planner falls back to column scans when it is not).
  bool allow_index_scan = true;
  /// A user-range clause takes an index scan only when it selects at most
  /// max(1, user_count * index_user_fraction) users — wider ranges touch so
  /// much of the index that a flat column scan wins.
  double index_user_fraction = 1.0 / 64.0;
  /// Rows per scan block. Block boundaries are a pure function of this value
  /// (never of the thread count), which is what keeps the selected row set
  /// thread-count-invariant.
  std::uint64_t scan_block = 16384;
  /// Worker threads for column scans; 0 = hardware concurrency.
  std::size_t threads = 0;
};

enum class NodeKind : std::uint8_t {
  kIndexScan,
  kColumnScan,
  kResidual,
  kAll,
  kNone,
  kAnd,
  kOr,
};

struct PlanNode {
  NodeKind kind = NodeKind::kAll;
  Comparison clause;                     ///< leaf scans
  std::uint32_t user_lo = 0;             ///< index scan: inclusive user range
  std::uint32_t user_hi = 0;
  std::vector<PlanNode> children;        ///< kAnd / kOr
};

struct Plan {
  PlanNode root;
  std::uint32_t index_scans = 0;      ///< leaves served by the CSR index
  std::uint32_t column_scans = 0;     ///< leaves served by full column scans
  std::uint32_t residual_filters = 0; ///< leaves tested against candidates only
};

/// The selected rows of a log: either literally every row (`all`, nothing
/// materialized) or a sorted ascending row-id vector.
struct RowSet {
  bool all = false;
  std::vector<std::uint32_t> rows;

  [[nodiscard]] std::uint64_t count(std::uint64_t total) const noexcept {
    return all ? total : rows.size();
  }
};

/// Compiles a bound expression into a plan. Resolves category names to ids
/// against `bound` (throws QueryError("unknown_category") when a named
/// category does not exist) and folds store comparisons into kAll/kNone.
[[nodiscard]] Plan plan_filter(const Expr& expr, const BoundLog& bound,
                               const PlanOptions& options);

/// Trivial plan selecting every row (no filter supplied).
[[nodiscard]] Plan plan_all();

/// Executes a plan. The result is a pure function of (plan, log contents) —
/// options.threads changes wall time only.
[[nodiscard]] RowSet execute(const Plan& plan, const BoundLog& bound,
                             const PlanOptions& options);

/// Sorted-set combination helpers (exposed for tests).
[[nodiscard]] std::vector<std::uint32_t> intersect_sorted(
    const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b);
[[nodiscard]] std::vector<std::uint32_t> union_sorted(const std::vector<std::uint32_t>& a,
                                                      const std::vector<std::uint32_t>& b);

}  // namespace appstore::query
