// The online analytics query engine: validated QuerySpec in, typed
// QueryResult out.
//
// QueryEngine binds one market::AppStore at construction (precomputing the
// per-app metadata columns the planner's app-joined fields read through) and
// then answers the four aggregate kinds the paper's figures are built from:
//
//   top_k_downloads      the k most-downloaded apps under the filter
//   pareto_share         top-fraction download concentration (Fig. 2)
//   category_affinity    temporal category affinity by depth (Fig. 6)
//   rank_download_curve  downloads as a function of app rank (Fig. 8 input)
//
// Every run compiles the (optional) filter into a plan over the relevant
// columnar log — the download log for the download aggregates, the comment
// log for affinity — executes it, and aggregates the selected rows up to the
// caller's day bound. The day bound is applied at aggregation time rather
// than planned as a clause so the plan's scan counters reflect only the
// user's filter. Results are a pure function of (store contents, spec, day):
// thread count changes wall time only. See docs/query.md.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "market/store.hpp"
#include "obs/registry.hpp"
#include "query/plan.hpp"

namespace appstore::query {

enum class AggregateKind : std::uint8_t {
  kTopKDownloads = 0,
  kParetoShare,
  kCategoryAffinity,
  kRankDownloadCurve,
};
constexpr std::size_t kAggregateKindCount = 4;

/// Wire names ("top_k_downloads", ...) for metrics labels and the API.
[[nodiscard]] std::string_view to_string(AggregateKind kind) noexcept;
/// Throws QueryError("bad_query") on an unknown kind name.
[[nodiscard]] AggregateKind parse_aggregate_kind(std::string_view name);

/// One validated query. Defaults reproduce the offline bench_fig* setups.
struct QuerySpec {
  AggregateKind kind = AggregateKind::kTopKDownloads;
  /// Optional predicate over the event log (see expression.hpp). Absent =
  /// every row.
  std::optional<Expr> filter;
  /// top_k_downloads: number of entries returned.
  std::size_t k = 10;
  /// pareto_share: top fractions evaluated, each in (0, 1].
  std::vector<double> fractions = {0.01, 0.05, 0.10, 0.20, 0.50};
  /// category_affinity: depths evaluated (>= 1) and the minimum users per
  /// comment-count group (matches affinity::affinity_by_group).
  std::vector<std::size_t> depths = {1, 2, 3};
  std::size_t min_samples = 10;
  /// rank_download_curve: number of sampled ranks returned.
  std::size_t points = 100;
};

/// Engine-wide limits and planner knobs; the service exposes this as part of
/// ServicePolicy (the PR-1 Options-struct convention).
struct QueryOptions {
  std::size_t threads = 0;           ///< column-scan workers; 0 = hardware
  std::uint64_t scan_block = 16384;  ///< rows per scan block (see PlanOptions)
  bool allow_index_scan = true;
  double index_user_fraction = 1.0 / 64.0;
  std::size_t max_k = 1000;       ///< upper bound on QuerySpec::k
  std::size_t max_points = 2000;  ///< upper bound on QuerySpec::points
  std::size_t max_depth = 8;      ///< upper bound on affinity depths
};

struct TopKEntry {
  std::uint32_t app = 0;
  std::uint64_t downloads = 0;
};

struct ParetoPoint {
  double fraction = 0.0;  ///< top fraction of apps
  double share = 0.0;     ///< their share of all downloads, 0..1
};

struct AffinityDepthPoint {
  std::size_t depth = 0;
  double mean = 0.0;         ///< sample-weighted mean over comment groups
  double random_walk = 0.0;  ///< store-wide random-wandering baseline
  std::size_t groups = 0;    ///< comment groups with >= min_samples users
  std::size_t samples = 0;   ///< users across those groups
};

struct CurvePoint {
  std::uint64_t rank = 0;  ///< 1-based rank by downloads, descending
  std::uint64_t downloads = 0;
};

/// One user's affinity contribution inside a PartialAggregate. Samples are
/// emitted in ascending user order; a user appears in at most one shard's
/// partial (users are ring-sharded), so merged streams concatenate into the
/// exact global user order the single-store engine iterates.
struct AffinityUserSample {
  std::uint32_t user = 0;
  /// Category-string length ("number of comments" — the Fig. 6 group key).
  std::uint64_t comments = 0;
  /// Per-depth affinity values aligned with QuerySpec::depths; NaN when the
  /// string is shorter than depth+1 (the metric is undefined there).
  std::vector<double> values;
};

/// A shard's mergeable fragment of a query answer (see query/federate.hpp).
/// Download kinds carry sparse per-app counts (plus the dense vector length,
/// which pareto shares and rank curves depend on); affinity carries per-user
/// samples plus the store-wide random-walk baseline (identical on every
/// shard, since entity state is replicated).
struct PartialAggregate {
  AggregateKind kind = AggregateKind::kTopKDownloads;

  std::uint32_t index_scans = 0;
  std::uint32_t column_scans = 0;
  std::uint32_t residual_filters = 0;
  std::uint64_t rows_total = 0;
  std::uint64_t rows_selected = 0;

  /// Download kinds: dense per-app vector length and its non-zero entries.
  std::uint64_t app_count = 0;
  std::vector<std::pair<std::uint32_t, std::uint64_t>> counts;

  /// Affinity: per-depth random-walk baseline (aligned with spec.depths) and
  /// the per-user samples in ascending user order.
  std::vector<double> random_walk;
  std::vector<AffinityUserSample> samples;
};

struct QueryResult {
  AggregateKind kind = AggregateKind::kTopKDownloads;

  // Plan + selection statistics (also exported as query_plan_total).
  std::uint32_t index_scans = 0;
  std::uint32_t column_scans = 0;
  std::uint32_t residual_filters = 0;
  std::uint64_t rows_total = 0;     ///< rows in the scanned log
  std::uint64_t rows_selected = 0;  ///< rows passing filter + day bound

  // Kind-specific payload (only the matching vector is populated).
  std::uint64_t total_downloads = 0;  ///< download kinds: selected downloads
  std::vector<TopKEntry> top;
  std::vector<ParetoPoint> pareto;
  std::vector<AffinityDepthPoint> affinity;
  std::vector<CurvePoint> curve;
};

/// Shared finalization: dense day-bounded per-app counts -> the kind-specific
/// payload (top-k, pareto shares, rank curve) plus total_downloads and
/// rows_selected. Used by QueryEngine::run and by merge_partials, so a merged
/// answer is produced by literally the same code as a single-store answer.
void finalize_downloads(const QuerySpec& spec, std::span<const std::uint64_t> counts,
                        QueryResult& result);

/// Shared finalization for category_affinity: samples (ascending user order)
/// -> per-depth grouped means, matching affinity::affinity_by_group followed
/// by the sample-weighted mean. `random_walk` is aligned with spec.depths.
void finalize_affinity(const QuerySpec& spec, const std::vector<AffinityUserSample>& samples,
                       std::span<const double> random_walk, QueryResult& result);

class QueryEngine {
 public:
  /// Binds `store` (must outlive the engine). When `registry` is non-null
  /// the engine registers query_requests_total{kind},
  /// query_plan_total{index_scan,column_scan,residual} and
  /// query_latency_seconds{kind}.
  explicit QueryEngine(const market::AppStore& store, QueryOptions options = {},
                       obs::Registry* registry = nullptr);

  /// Runs one validated query against events up to and including `day`.
  /// Throws QueryError on an invalid spec ("bad_query"), filter
  /// ("bad_filter") or unknown category name ("unknown_category").
  [[nodiscard]] QueryResult run(const QuerySpec& spec, market::Day day) const;

  /// Runs the same query but stops before finalization, returning the
  /// mergeable fragment a federation gateway recombines across shards
  /// (query::merge_partials). run() is exactly run_partial() of the whole
  /// store finalized alone — the invariant the cross-shard parity suite
  /// pins. Same error contract as run().
  [[nodiscard]] PartialAggregate run_partial(const QuerySpec& spec, market::Day day) const;

  [[nodiscard]] const QueryOptions& options() const noexcept { return options_; }
  [[nodiscard]] const market::AppStore& store() const noexcept { return *store_; }

 private:
  [[nodiscard]] BoundLog bind(const events::FrontierSnapshot& log) const noexcept;
  /// Resolves category-by-name clauses to numeric ids (case-sensitive);
  /// throws QueryError("unknown_category") for names the store lacks.
  [[nodiscard]] Expr resolve(const Expr& expr) const;

  void aggregate_downloads(const events::FrontierSnapshot& log, const RowSet& rows,
                           const QuerySpec& spec, market::Day day,
                           QueryResult& result) const;
  void aggregate_affinity(const events::FrontierSnapshot& log, const RowSet& rows,
                          const QuerySpec& spec, market::Day day,
                          QueryResult& result) const;

  /// Per-app download counts (dense, day-bounded) — the shared core of the
  /// download aggregates and their partial form.
  [[nodiscard]] std::vector<std::uint64_t> count_downloads(
      const events::FrontierSnapshot& log, const RowSet& rows, market::Day day) const;
  /// Per-user affinity samples in ascending user order; sets rows_selected.
  [[nodiscard]] std::vector<AffinityUserSample> collect_affinity_samples(
      const events::FrontierSnapshot& log, const RowSet& rows, const QuerySpec& spec,
      market::Day day, std::uint64_t& rows_selected) const;

  const market::AppStore* store_;
  QueryOptions options_;

  // Per-app metadata columns (indexed by app id) the app-joined filter
  // fields read through, plus the store-wide random-walk input.
  std::vector<std::uint32_t> app_category_;
  std::vector<double> app_price_;
  std::vector<std::uint64_t> category_sizes_;

  // Metric families; null when no registry was supplied.
  std::vector<obs::Counter*> requests_by_kind_;
  std::vector<obs::Histogram*> latency_by_kind_;
  obs::Counter* plan_index_scans_ = nullptr;
  obs::Counter* plan_column_scans_ = nullptr;
  obs::Counter* plan_residual_filters_ = nullptr;
};

}  // namespace appstore::query
