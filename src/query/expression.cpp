#include "query/expression.hpp"

#include <cmath>
#include <utility>

#include "util/format.hpp"
#include "util/strings.hpp"

namespace appstore::query {

namespace {

/// Guard against pathological inputs: a filter deeper than this is rejected
/// before recursion can exhaust the stack.
constexpr std::size_t kMaxDepth = 32;
constexpr std::size_t kMaxFilterLength = 4096;

[[nodiscard]] bool valid_op_for(Field field, CompareOp op) noexcept {
  if (field == Field::kCategory || field == Field::kStore) {
    return op == CompareOp::kEq || op == CompareOp::kNe;
  }
  return true;
}

enum class TokenKind : std::uint8_t { kIdent, kNumber, kString, kOp, kLParen, kRParen, kEnd };

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;      // ident / string / op spelling
  double number = 0.0;   // kNumber
  std::size_t position = 0;
};

/// Lexer for the filter grammar. '+' is whitespace so GET query strings can
/// carry filters without percent-encoding spaces.
class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  [[nodiscard]] Token next() {
    while (position_ < text_.size() && is_space(text_[position_])) ++position_;
    Token token;
    token.position = position_;
    if (position_ >= text_.size()) return token;

    const char c = text_[position_];
    if (c == '(') {
      ++position_;
      token.kind = TokenKind::kLParen;
      return token;
    }
    if (c == ')') {
      ++position_;
      token.kind = TokenKind::kRParen;
      return token;
    }
    if (c == '\'' || c == '"') return lex_string(c);
    if (c == '=' || c == '!' || c == '<' || c == '>') return lex_op();
    if ((c >= '0' && c <= '9') || c == '-' || c == '.') return lex_number();
    if (is_ident_start(c)) return lex_ident();
    throw QueryError("bad_filter",
                     util::format("filter: unexpected character '{}' at {}", c, position_));
  }

 private:
  [[nodiscard]] static bool is_space(char c) noexcept {
    return c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '+';
  }
  [[nodiscard]] static bool is_ident_start(char c) noexcept {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
  }
  [[nodiscard]] static bool is_ident(char c) noexcept {
    return is_ident_start(c) || (c >= '0' && c <= '9') || c == '-';
  }

  [[nodiscard]] Token lex_string(char quote) {
    Token token;
    token.kind = TokenKind::kString;
    token.position = position_;
    ++position_;  // opening quote
    while (position_ < text_.size() && text_[position_] != quote) {
      token.text += text_[position_++];
    }
    if (position_ >= text_.size()) {
      throw QueryError("bad_filter",
                       util::format("filter: unterminated string at {}", token.position));
    }
    ++position_;  // closing quote
    return token;
  }

  [[nodiscard]] Token lex_op() {
    Token token;
    token.kind = TokenKind::kOp;
    token.position = position_;
    const char c = text_[position_];
    const bool has_eq = position_ + 1 < text_.size() && text_[position_ + 1] == '=';
    if (c == '=' || c == '!') {
      if (!has_eq) {
        throw QueryError("bad_filter",
                         util::format("filter: bad operator at {}", position_));
      }
      token.text = std::string(1, c) + "=";
      position_ += 2;
      return token;
    }
    token.text = std::string(1, c) + (has_eq ? "=" : "");
    position_ += has_eq ? 2 : 1;
    return token;
  }

  [[nodiscard]] Token lex_number() {
    Token token;
    token.kind = TokenKind::kNumber;
    token.position = position_;
    std::size_t end = position_;
    if (text_[end] == '-') ++end;
    while (end < text_.size() &&
           ((text_[end] >= '0' && text_[end] <= '9') || text_[end] == '.')) {
      ++end;
    }
    double value = 0.0;
    if (!util::parse_double(text_.substr(position_, end - position_), value)) {
      throw QueryError("bad_filter",
                       util::format("filter: bad number at {}", position_));
    }
    token.number = value;
    position_ = end;
    return token;
  }

  [[nodiscard]] Token lex_ident() {
    Token token;
    token.kind = TokenKind::kIdent;
    token.position = position_;
    std::size_t end = position_;
    while (end < text_.size() && is_ident(text_[end])) ++end;
    token.text = std::string(text_.substr(position_, end - position_));
    position_ = end;
    return token;
  }

  std::string_view text_;
  std::size_t position_ = 0;
};

/// Recursive-descent parser over the token stream (one token of lookahead).
class Parser {
 public:
  explicit Parser(std::string_view text) : lexer_(text) { advance(); }

  [[nodiscard]] Expr parse() {
    Expr expr = parse_or(0);
    if (current_.kind != TokenKind::kEnd) {
      throw QueryError("bad_filter", util::format("filter: trailing input at {}",
                                                  current_.position));
    }
    return expr;
  }

 private:
  void advance() { current_ = lexer_.next(); }

  [[nodiscard]] Expr parse_or(std::size_t depth) {
    Expr first = parse_and(depth);
    if (!(current_.kind == TokenKind::kIdent && current_.text == "or")) return first;
    Expr node;
    node.kind = Expr::Kind::kOr;
    node.children.push_back(std::move(first));
    while (current_.kind == TokenKind::kIdent && current_.text == "or") {
      advance();
      node.children.push_back(parse_and(depth));
    }
    return node;
  }

  [[nodiscard]] Expr parse_and(std::size_t depth) {
    Expr first = parse_unary(depth);
    if (!(current_.kind == TokenKind::kIdent && current_.text == "and")) return first;
    Expr node;
    node.kind = Expr::Kind::kAnd;
    node.children.push_back(std::move(first));
    while (current_.kind == TokenKind::kIdent && current_.text == "and") {
      advance();
      node.children.push_back(parse_unary(depth));
    }
    return node;
  }

  [[nodiscard]] Expr parse_unary(std::size_t depth) {
    if (depth >= kMaxDepth) {
      throw QueryError("bad_filter", "filter: expression too deeply nested");
    }
    if (current_.kind == TokenKind::kLParen) {
      advance();
      Expr inner = parse_or(depth + 1);
      if (current_.kind != TokenKind::kRParen) {
        throw QueryError("bad_filter", util::format("filter: expected ')' at {}",
                                                    current_.position));
      }
      advance();
      return inner;
    }
    return parse_comparison();
  }

  [[nodiscard]] Expr parse_comparison() {
    if (current_.kind != TokenKind::kIdent) {
      throw QueryError("bad_filter", util::format("filter: expected a field name at {}",
                                                  current_.position));
    }
    const Field field = parse_field(current_.text);
    advance();
    if (current_.kind != TokenKind::kOp) {
      throw QueryError("bad_filter", util::format("filter: expected an operator at {}",
                                                  current_.position));
    }
    const CompareOp op = parse_op(current_.text);
    advance();
    double number = 0.0;
    std::string text;
    bool is_text = false;
    switch (current_.kind) {
      case TokenKind::kNumber:
        number = current_.number;
        break;
      case TokenKind::kString:
      case TokenKind::kIdent:
        text = current_.text;
        is_text = true;
        break;
      default:
        throw QueryError("bad_filter", util::format("filter: expected a value at {}",
                                                    current_.position));
    }
    advance();
    return Expr::leaf(make_comparison(field, op, number, std::move(text), is_text));
  }

  Lexer lexer_;
  Token current_;
};

void render(const Expr& expr, std::string& out) {
  if (expr.kind == Expr::Kind::kComparison) {
    const Comparison& c = expr.comparison;
    out += to_string(c.field);
    out += ' ';
    out += to_string(c.op);
    out += ' ';
    if (c.is_text) {
      out += '\'';
      out += c.text;
      out += '\'';
    } else {
      out += util::format("{:g}", c.number);
    }
    return;
  }
  const std::string_view connective = expr.kind == Expr::Kind::kAnd ? " and " : " or ";
  out += '(';
  for (std::size_t i = 0; i < expr.children.size(); ++i) {
    if (i > 0) out += connective;
    render(expr.children[i], out);
  }
  out += ')';
}

}  // namespace

std::string_view to_string(Field field) noexcept {
  switch (field) {
    case Field::kDay: return "day";
    case Field::kUser: return "user";
    case Field::kApp: return "app";
    case Field::kCategory: return "category";
    case Field::kPrice: return "price";
    case Field::kStore: return "store";
  }
  return "?";
}

std::string_view to_string(CompareOp op) noexcept {
  switch (op) {
    case CompareOp::kEq: return "==";
    case CompareOp::kNe: return "!=";
    case CompareOp::kLt: return "<";
    case CompareOp::kLe: return "<=";
    case CompareOp::kGt: return ">";
    case CompareOp::kGe: return ">=";
  }
  return "?";
}

Field parse_field(std::string_view name) {
  for (std::size_t i = 0; i < kFieldCount; ++i) {
    const auto field = static_cast<Field>(i);
    if (name == to_string(field)) return field;
  }
  throw QueryError("bad_filter", util::format("filter: unknown field '{}'", name));
}

CompareOp parse_op(std::string_view name) {
  for (const auto op : {CompareOp::kEq, CompareOp::kNe, CompareOp::kLt, CompareOp::kLe,
                        CompareOp::kGt, CompareOp::kGe}) {
    if (name == to_string(op)) return op;
  }
  throw QueryError("bad_filter", util::format("filter: unknown operator '{}'", name));
}

Comparison make_comparison(Field field, CompareOp op, double number, std::string text,
                           bool is_text) {
  if (!valid_op_for(field, op)) {
    throw QueryError("bad_filter",
                     util::format("filter: operator {} not valid for field {}",
                                  to_string(op), to_string(field)));
  }
  const bool text_field = field == Field::kStore;
  if (field == Field::kStore && !is_text) {
    throw QueryError("bad_filter", "filter: store compares against a name");
  }
  // Category accepts either a name or a numeric id; every other non-text
  // field is numeric-only.
  if (!text_field && field != Field::kCategory && is_text) {
    throw QueryError("bad_filter",
                     util::format("filter: field {} needs a numeric value",
                                  to_string(field)));
  }
  if (!is_text) {
    if (!std::isfinite(number)) {
      throw QueryError("bad_filter", "filter: non-finite numeric value");
    }
    const bool integral_field =
        field == Field::kDay || field == Field::kUser || field == Field::kApp ||
        field == Field::kCategory;
    if (integral_field && number != std::floor(number)) {
      throw QueryError("bad_filter",
                       util::format("filter: field {} needs an integer value",
                                    to_string(field)));
    }
    const bool unsigned_field =
        field == Field::kUser || field == Field::kApp || field == Field::kCategory;
    if (unsigned_field && number < 0.0) {
      throw QueryError("bad_filter",
                       util::format("filter: field {} needs a non-negative value",
                                    to_string(field)));
    }
    // Ids are 32-bit; a literal beyond that range can never name an entity
    // (and days beyond it can never occur), so reject it as malformed rather
    // than silently selecting nothing.
    if (integral_field && std::abs(number) > 4294967295.0) {
      throw QueryError("bad_filter",
                       util::format("filter: field {} value out of range",
                                    to_string(field)));
    }
  }
  Comparison comparison;
  comparison.field = field;
  comparison.op = op;
  comparison.number = number;
  comparison.text = std::move(text);
  comparison.is_text = is_text;
  return comparison;
}

Expr parse_filter(std::string_view text) {
  if (util::trim(text).empty()) {
    throw QueryError("bad_filter", "filter: empty expression");
  }
  if (text.size() > kMaxFilterLength) {
    throw QueryError("bad_filter", "filter: expression too long");
  }
  return Parser(text).parse();
}

std::string to_string(const Expr& expr) {
  std::string out;
  render(expr, out);
  return out;
}

}  // namespace appstore::query
