// Typed predicate expressions for the online analytics query engine.
//
// A filter is a boolean expression over per-event fields of the columnar
// spine (events::EventLog) plus the app metadata joined through the event's
// app column:
//
//   day       event day (int; pre-crawl history lives on day -1)
//   user      event user id
//   app       event app id
//   category  the event app's category (by name or numeric id; == / != only)
//   price     the event app's list price in dollars
//   store     the serving store's name (== / != only; constant per store)
//
// Grammar (the GET ?filter= form; '+' is treated as whitespace so filters
// survive URL query strings untouched):
//
//   expr       := and_expr ( "or" and_expr )*
//   and_expr   := unary ( "and" unary )*
//   unary      := "(" expr ")" | comparison
//   comparison := FIELD OP VALUE
//   OP         := "==" | "!=" | "<" | "<=" | ">" | ">="
//   VALUE      := number | 'string' | "string" | bareword
//
// The same AST is produced from the POST JSON form ({"field","op","value"}
// leaves under {"and":[...]}/{"or":[...]} nodes) by the service-side bridge
// (crawler/query_json.hpp). Parsing is fully validated: unknown fields,
// operators invalid for a field, and type mismatches throw QueryError —
// callers map that to a 400, never a crash. See docs/query.md.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace appstore::query {

/// Validation/parse failure. `code` is a stable machine-readable slug the
/// service surfaces in the error envelope ("bad_filter", "bad_query",
/// "unknown_category", ...).
class QueryError : public std::runtime_error {
 public:
  QueryError(std::string code, const std::string& message)
      : std::runtime_error(message), code_(std::move(code)) {}

  [[nodiscard]] const std::string& code() const noexcept { return code_; }

 private:
  std::string code_;
};

enum class Field : std::uint8_t { kDay = 0, kUser, kApp, kCategory, kPrice, kStore };
constexpr std::size_t kFieldCount = 6;

enum class CompareOp : std::uint8_t { kEq = 0, kNe, kLt, kLe, kGt, kGe };

/// One typed leaf: FIELD OP VALUE. Numeric fields carry `number`; category
/// (by name) and store comparisons carry `text`.
struct Comparison {
  Field field = Field::kDay;
  CompareOp op = CompareOp::kEq;
  double number = 0.0;
  std::string text;
  bool is_text = false;
};

/// Expression tree. kComparison nodes are leaves; kAnd/kOr nodes own two or
/// more children (the parser flattens chains of the same connective).
struct Expr {
  enum class Kind : std::uint8_t { kComparison, kAnd, kOr };

  Kind kind = Kind::kComparison;
  Comparison comparison;
  std::vector<Expr> children;

  [[nodiscard]] static Expr leaf(Comparison comparison) {
    Expr expr;
    expr.comparison = std::move(comparison);
    return expr;
  }
};

/// Field/operator names ("day", "<=", ...) for diagnostics and re-rendering.
[[nodiscard]] std::string_view to_string(Field field) noexcept;
[[nodiscard]] std::string_view to_string(CompareOp op) noexcept;

/// Name -> Field / CompareOp lookup; throws QueryError("bad_filter") on an
/// unknown name.
[[nodiscard]] Field parse_field(std::string_view name);
[[nodiscard]] CompareOp parse_op(std::string_view name);

/// Builds a validated Comparison, enforcing per-field typing rules:
/// category/store accept == and != only; user/app values must be
/// non-negative integers; day must be an integer. `is_text` distinguishes a
/// quoted/bareword value from a numeric literal.
[[nodiscard]] Comparison make_comparison(Field field, CompareOp op, double number,
                                         std::string text, bool is_text);

/// Parses the text grammar above. Throws QueryError("bad_filter") with a
/// position-annotated message on any lexical, syntactic, or typing defect.
[[nodiscard]] Expr parse_filter(std::string_view text);

/// Canonical text rendering of an expression (round-trips through
/// parse_filter; used by tests and diagnostics).
[[nodiscard]] std::string to_string(const Expr& expr);

}  // namespace appstore::query
