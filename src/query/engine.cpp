#include "query/engine.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <tuple>

#include "affinity/metric.hpp"
#include "affinity/strings.hpp"
#include "obs/trace.hpp"
#include "par/parallel.hpp"
#include "stats/descriptive.hpp"
#include "stats/pareto.hpp"
#include "util/format.hpp"

namespace appstore::query {

namespace {

constexpr std::string_view kKindNames[kAggregateKindCount] = {
    "top_k_downloads",
    "pareto_share",
    "category_affinity",
    "rank_download_curve",
};

void validate(const QuerySpec& spec, const QueryOptions& options) {
  switch (spec.kind) {
    case AggregateKind::kTopKDownloads:
      if (spec.k == 0 || spec.k > options.max_k) {
        throw QueryError("bad_query", util::format("query: k must be in [1, {}]",
                                                   options.max_k));
      }
      break;
    case AggregateKind::kParetoShare:
      if (spec.fractions.empty()) {
        throw QueryError("bad_query", "query: at least one fraction required");
      }
      for (const double fraction : spec.fractions) {
        if (!(fraction > 0.0) || fraction > 1.0) {
          throw QueryError("bad_query", "query: fractions must be in (0, 1]");
        }
      }
      break;
    case AggregateKind::kCategoryAffinity:
      if (spec.depths.empty()) {
        throw QueryError("bad_query", "query: at least one depth required");
      }
      for (const std::size_t depth : spec.depths) {
        if (depth == 0 || depth > options.max_depth) {
          throw QueryError("bad_query", util::format("query: depths must be in [1, {}]",
                                                     options.max_depth));
        }
      }
      if (spec.min_samples == 0) {
        throw QueryError("bad_query", "query: min_samples must be >= 1");
      }
      break;
    case AggregateKind::kRankDownloadCurve:
      if (spec.points < 2 || spec.points > options.max_points) {
        throw QueryError("bad_query", util::format("query: points must be in [2, {}]",
                                                   options.max_points));
      }
      break;
  }
}

[[nodiscard]] std::int32_t row_day(std::span<const std::int32_t> days, std::uint64_t row) {
  return days.empty() ? 0 : days[row];
}

}  // namespace

std::string_view to_string(AggregateKind kind) noexcept {
  return kKindNames[static_cast<std::size_t>(kind)];
}

AggregateKind parse_aggregate_kind(std::string_view name) {
  for (std::size_t i = 0; i < kAggregateKindCount; ++i) {
    if (name == kKindNames[i]) return static_cast<AggregateKind>(i);
  }
  throw QueryError("bad_query", util::format("query: unknown aggregate kind '{}'", name));
}

QueryEngine::QueryEngine(const market::AppStore& store, QueryOptions options,
                         obs::Registry* registry)
    : store_(&store), options_(options) {
  app_category_.reserve(store.apps().size());
  app_price_.reserve(store.apps().size());
  for (const market::App& app : store.apps()) {
    app_category_.push_back(static_cast<std::uint32_t>(app.category.index()));
    app_price_.push_back(store.average_price_dollars(app.id));
  }
  const std::vector<std::uint32_t> sizes = store.apps_per_category();
  category_sizes_.assign(sizes.begin(), sizes.end());

  if (registry != nullptr) {
    registry->describe("query_requests_total", "Queries served, by aggregate kind.");
    registry->describe("query_plan_total",
                       "Filter clauses planned, by scan strategy.");
    registry->describe("query_latency_seconds",
                       "End-to-end query engine latency, by aggregate kind.");
    requests_by_kind_.resize(kAggregateKindCount);
    latency_by_kind_.resize(kAggregateKindCount);
    for (std::size_t i = 0; i < kAggregateKindCount; ++i) {
      requests_by_kind_[i] = &registry->counter("query_requests_total", kKindNames[i]);
      latency_by_kind_[i] = &registry->histogram("query_latency_seconds", kKindNames[i]);
    }
    plan_index_scans_ = &registry->counter("query_plan_total", "index_scan");
    plan_column_scans_ = &registry->counter("query_plan_total", "column_scan");
    plan_residual_filters_ = &registry->counter("query_plan_total", "residual");
  }
}

BoundLog QueryEngine::bind(const events::FrontierSnapshot& log) const noexcept {
  BoundLog bound;
  bound.log = log;
  bound.app_category = app_category_;
  bound.app_price = app_price_;
  bound.store_name = store_->name();
  bound.user_count = store_->user_count();
  bound.category_count = static_cast<std::uint32_t>(store_->categories().size());
  return bound;
}

Expr QueryEngine::resolve(const Expr& expr) const {
  Expr out = expr;
  if (out.kind == Expr::Kind::kComparison) {
    Comparison& clause = out.comparison;
    if (clause.field == Field::kCategory && clause.is_text) {
      for (const market::Category& category : store_->categories()) {
        if (category.name == clause.text) {
          clause.number = static_cast<double>(category.id.index());
          clause.is_text = false;
          return out;
        }
      }
      throw QueryError("unknown_category",
                       util::format("query: unknown category '{}'", clause.text));
    }
    return out;
  }
  for (Expr& child : out.children) child = resolve(child);
  return out;
}

QueryResult QueryEngine::run(const QuerySpec& spec, market::Day day) const {
  validate(spec, options_);
  const auto kind_index = static_cast<std::size_t>(spec.kind);
  if (!requests_by_kind_.empty()) requests_by_kind_[kind_index]->inc();
  obs::ScopedTimer timer(latency_by_kind_.empty() ? nullptr : latency_by_kind_[kind_index]);

  // One frontier snapshot per run: the plan, the scans, and the aggregation
  // all read the same published prefix, so a concurrently ingesting crawler
  // never tears a result.
  const bool wants_comments = spec.kind == AggregateKind::kCategoryAffinity;
  const events::FrontierSnapshot log =
      wants_comments ? store_->comment_log() : store_->download_log();
  const BoundLog bound = bind(log);

  PlanOptions plan_options;
  plan_options.allow_index_scan = options_.allow_index_scan;
  plan_options.index_user_fraction = options_.index_user_fraction;
  plan_options.scan_block = options_.scan_block;
  plan_options.threads = options_.threads;

  const Plan plan = spec.filter.has_value()
                        ? plan_filter(resolve(*spec.filter), bound, plan_options)
                        : plan_all();
  if (plan_index_scans_ != nullptr) {
    plan_index_scans_->inc(plan.index_scans);
    plan_column_scans_->inc(plan.column_scans);
    plan_residual_filters_->inc(plan.residual_filters);
  }

  const RowSet rows = execute(plan, bound, plan_options);

  QueryResult result;
  result.kind = spec.kind;
  result.index_scans = plan.index_scans;
  result.column_scans = plan.column_scans;
  result.residual_filters = plan.residual_filters;
  result.rows_total = log.size();
  if (wants_comments) {
    aggregate_affinity(log, rows, spec, day, result);
  } else {
    aggregate_downloads(log, rows, spec, day, result);
  }
  return result;
}

PartialAggregate QueryEngine::run_partial(const QuerySpec& spec, market::Day day) const {
  validate(spec, options_);
  const auto kind_index = static_cast<std::size_t>(spec.kind);
  if (!requests_by_kind_.empty()) requests_by_kind_[kind_index]->inc();
  obs::ScopedTimer timer(latency_by_kind_.empty() ? nullptr : latency_by_kind_[kind_index]);

  const bool wants_comments = spec.kind == AggregateKind::kCategoryAffinity;
  const events::FrontierSnapshot log =
      wants_comments ? store_->comment_log() : store_->download_log();
  const BoundLog bound = bind(log);

  PlanOptions plan_options;
  plan_options.allow_index_scan = options_.allow_index_scan;
  plan_options.index_user_fraction = options_.index_user_fraction;
  plan_options.scan_block = options_.scan_block;
  plan_options.threads = options_.threads;

  const Plan plan = spec.filter.has_value()
                        ? plan_filter(resolve(*spec.filter), bound, plan_options)
                        : plan_all();
  if (plan_index_scans_ != nullptr) {
    plan_index_scans_->inc(plan.index_scans);
    plan_column_scans_->inc(plan.column_scans);
    plan_residual_filters_->inc(plan.residual_filters);
  }

  const RowSet rows = execute(plan, bound, plan_options);

  PartialAggregate partial;
  partial.kind = spec.kind;
  partial.index_scans = plan.index_scans;
  partial.column_scans = plan.column_scans;
  partial.residual_filters = plan.residual_filters;
  partial.rows_total = log.size();
  if (wants_comments) {
    partial.samples = collect_affinity_samples(log, rows, spec, day, partial.rows_selected);
    partial.random_walk.reserve(spec.depths.size());
    for (const std::size_t depth : spec.depths) {
      partial.random_walk.push_back(affinity::random_walk_affinity(category_sizes_, depth));
    }
  } else {
    const std::vector<std::uint64_t> counts = count_downloads(log, rows, day);
    partial.app_count = counts.size();
    for (std::size_t app = 0; app < counts.size(); ++app) {
      if (counts[app] > 0) {
        partial.counts.emplace_back(static_cast<std::uint32_t>(app), counts[app]);
      }
    }
    for (const auto& [app, count] : partial.counts) partial.rows_selected += count;
  }
  return partial;
}

std::vector<std::uint64_t> QueryEngine::count_downloads(const events::FrontierSnapshot& log,
                                                        const RowSet& rows,
                                                        market::Day day) const {
  const std::span<const std::uint32_t> apps = log.app();
  const std::span<const std::int32_t> days = log.day();
  const std::size_t app_count = store_->apps().size();

  // Per-app download counts within the day bound. The all-rows path reduces
  // over fixed-size blocks; per-app integer adds are exact and elementwise,
  // so the counts are identical at every thread count.
  std::vector<std::uint64_t> counts;
  if (rows.all) {
    const std::uint64_t total = log.size();
    const std::uint64_t block = std::max<std::uint64_t>(1, options_.scan_block);
    const std::uint64_t blocks = total == 0 ? 0 : (total + block - 1) / block;
    par::Options par_options;
    par_options.threads = options_.threads;
    counts = par::parallel_reduce<std::vector<std::uint64_t>>(
        blocks, std::vector<std::uint64_t>(app_count, 0), par_options,
        [&](std::uint64_t b) {
          std::vector<std::uint64_t> partial(app_count, 0);
          const std::uint64_t begin = b * block;
          const std::uint64_t end = std::min(total, begin + block);
          for (std::uint64_t i = begin; i < end; ++i) {
            if (row_day(days, i) <= day) ++partial[apps[i]];
          }
          return partial;
        },
        [](std::vector<std::uint64_t> acc, const std::vector<std::uint64_t>& part) {
          for (std::size_t i = 0; i < part.size(); ++i) acc[i] += part[i];
          return acc;
        });
    if (counts.empty()) counts.assign(app_count, 0);
  } else {
    counts.assign(app_count, 0);
    for (const std::uint32_t row : rows.rows) {
      if (row_day(days, row) <= day) ++counts[apps[row]];
    }
  }
  return counts;
}

void QueryEngine::aggregate_downloads(const events::FrontierSnapshot& log,
                                      const RowSet& rows, const QuerySpec& spec,
                                      market::Day day, QueryResult& result) const {
  finalize_downloads(spec, count_downloads(log, rows, day), result);
}

void finalize_downloads(const QuerySpec& spec, std::span<const std::uint64_t> counts,
                        QueryResult& result) {
  for (const std::uint64_t count : counts) result.total_downloads += count;
  result.rows_selected = result.total_downloads;

  switch (spec.kind) {
    case AggregateKind::kTopKDownloads: {
      std::vector<TopKEntry> entries;
      for (std::size_t app = 0; app < counts.size(); ++app) {
        if (counts[app] > 0) {
          entries.push_back({static_cast<std::uint32_t>(app), counts[app]});
        }
      }
      std::sort(entries.begin(), entries.end(),
                [](const TopKEntry& a, const TopKEntry& b) {
                  if (a.downloads != b.downloads) return a.downloads > b.downloads;
                  return a.app < b.app;
                });
      if (entries.size() > spec.k) entries.resize(spec.k);
      result.top = std::move(entries);
      break;
    }
    case AggregateKind::kParetoShare: {
      std::vector<double> as_double(counts.begin(), counts.end());
      for (const double fraction : spec.fractions) {
        result.pareto.push_back({fraction, stats::top_share(as_double, fraction)});
      }
      break;
    }
    case AggregateKind::kRankDownloadCurve: {
      std::vector<std::uint64_t> sorted(counts.begin(), counts.end());
      std::sort(sorted.begin(), sorted.end(), std::greater<>());
      const std::size_t n = sorted.size();
      if (n == 0) break;
      const std::size_t step = std::max<std::size_t>(1, n / spec.points);
      for (std::size_t rank = 1; rank <= n; rank += step) {
        result.curve.push_back({rank, sorted[rank - 1]});
      }
      if (result.curve.back().rank != n) result.curve.push_back({n, sorted[n - 1]});
      break;
    }
    case AggregateKind::kCategoryAffinity:
      break;  // handled by aggregate_affinity
  }
}

std::vector<AffinityUserSample> QueryEngine::collect_affinity_samples(
    const events::FrontierSnapshot& log, const RowSet& rows, const QuerySpec& spec,
    market::Day day, std::uint64_t& rows_selected) const {
  const std::span<const std::uint32_t> users = log.user();
  const std::span<const std::uint32_t> apps = log.app();
  const std::span<const std::int32_t> days = log.day();
  const std::span<const std::uint32_t> ordinals = log.ordinal();
  const std::span<const std::uint8_t> ratings = log.rating();

  // Selected rows regrouped into per-user chronological streams. Sorting by
  // (user, day, ordinal, row) reproduces exactly the CSR index order — ties
  // within (day, ordinal) break by append order, which is the row id — so
  // the strings match the offline comment_stream() pipeline bit-for-bit.
  struct Key {
    std::uint32_t user;
    std::int32_t day;
    std::uint32_t ordinal;
    std::uint32_t row;
  };
  std::vector<Key> selected;
  const auto consider = [&](std::uint64_t row) {
    if (row_day(days, row) > day) return;
    selected.push_back({users[row], row_day(days, row),
                        ordinals.empty() ? 0u : ordinals[row],
                        static_cast<std::uint32_t>(row)});
  };
  if (rows.all) {
    for (std::uint64_t row = 0; row < log.size(); ++row) consider(row);
  } else {
    for (const std::uint32_t row : rows.rows) consider(row);
  }
  rows_selected = selected.size();

  std::sort(selected.begin(), selected.end(), [](const Key& a, const Key& b) {
    return std::tie(a.user, a.day, a.ordinal, a.row) <
           std::tie(b.user, b.day, b.ordinal, b.row);
  });

  // Per-user category strings: rating-0 comments are skipped (a rating is
  // the download signal), duplicate comments on the same app are suppressed
  // keeping first occurrences — the affinity::app_string contract. The
  // resulting samples are in ascending user order (selected is sorted by
  // user first), the order finalize_affinity and merge_partials both rely
  // on for bit-identical group means.
  std::vector<AffinityUserSample> samples;
  std::vector<std::uint32_t> app_sequence;
  std::size_t begin = 0;
  while (begin < selected.size()) {
    std::size_t end = begin;
    while (end < selected.size() && selected[end].user == selected[begin].user) ++end;
    app_sequence.clear();
    for (std::size_t i = begin; i < end; ++i) {
      const std::uint32_t row = selected[i].row;
      if (ratings.empty() || ratings[row] != 0) app_sequence.push_back(apps[row]);
    }
    if (!app_sequence.empty()) {
      const std::vector<std::uint32_t> unique = affinity::suppress_duplicates(app_sequence);
      const std::vector<std::uint32_t> categories =
          affinity::category_string(unique, app_category_);
      AffinityUserSample sample;
      sample.user = selected[begin].user;
      sample.comments = categories.size();
      sample.values.reserve(spec.depths.size());
      for (const std::size_t depth : spec.depths) {
        const std::optional<double> value = affinity::affinity(categories, depth);
        sample.values.push_back(value.value_or(std::numeric_limits<double>::quiet_NaN()));
      }
      samples.push_back(std::move(sample));
    }
    begin = end;
  }
  return samples;
}

void QueryEngine::aggregate_affinity(const events::FrontierSnapshot& log,
                                     const RowSet& rows, const QuerySpec& spec,
                                     market::Day day, QueryResult& result) const {
  const std::vector<AffinityUserSample> samples =
      collect_affinity_samples(log, rows, spec, day, result.rows_selected);
  std::vector<double> random_walk;
  random_walk.reserve(spec.depths.size());
  for (const std::size_t depth : spec.depths) {
    random_walk.push_back(affinity::random_walk_affinity(category_sizes_, depth));
  }
  finalize_affinity(spec, samples, random_walk, result);
}

void finalize_affinity(const QuerySpec& spec, const std::vector<AffinityUserSample>& samples,
                       std::span<const double> random_walk, QueryResult& result) {
  for (std::size_t di = 0; di < spec.depths.size(); ++di) {
    AffinityDepthPoint point;
    point.depth = spec.depths[di];
    point.random_walk = di < random_walk.size() ? random_walk[di] : 0.0;
    // Group by comment count in sample order — the same (user-ascending)
    // per-group vectors affinity::affinity_by_group builds, so the means
    // sum in the same order and match bit-for-bit.
    std::map<std::uint64_t, std::vector<double>> groups;
    for (const AffinityUserSample& sample : samples) {
      const double value = di < sample.values.size()
                               ? sample.values[di]
                               : std::numeric_limits<double>::quiet_NaN();
      if (!std::isnan(value)) groups[sample.comments].push_back(value);
    }
    double weighted_sum = 0.0;
    std::size_t total_samples = 0;
    std::size_t group_count = 0;
    for (const auto& [comments, values] : groups) {
      if (values.size() < spec.min_samples) continue;
      ++group_count;
      total_samples += values.size();
      weighted_sum += stats::mean(values) * static_cast<double>(values.size());
    }
    point.groups = group_count;
    point.samples = total_samples;
    point.mean =
        total_samples > 0 ? weighted_sum / static_cast<double>(total_samples) : 0.0;
    result.affinity.push_back(point);
  }
}

}  // namespace appstore::query
