#include "query/federate.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/format.hpp"

namespace appstore::query {

namespace {

[[nodiscard]] std::optional<std::uint32_t> user_equals(const Expr& expr) {
  if (expr.kind != Expr::Kind::kComparison) return std::nullopt;
  const Comparison& clause = expr.comparison;
  if (clause.field != Field::kUser || clause.op != CompareOp::kEq || clause.is_text) {
    return std::nullopt;
  }
  const double value = clause.number;
  if (!(value >= 0.0) || value != std::floor(value) || value > 4294967295.0) {
    return std::nullopt;
  }
  return static_cast<std::uint32_t>(value);
}

}  // namespace

QueryResult merge_partials(const QuerySpec& spec,
                           std::span<const PartialAggregate> partials) {
  if (partials.empty()) {
    throw QueryError("merge_mismatch", "merge: no shard partials to combine");
  }
  QueryResult result;
  result.kind = spec.kind;
  for (const PartialAggregate& partial : partials) {
    if (partial.kind != spec.kind) {
      throw QueryError("merge_mismatch",
                       util::format("merge: partial kind '{}' does not match query '{}'",
                                    to_string(partial.kind), to_string(spec.kind)));
    }
    result.index_scans += partial.index_scans;
    result.column_scans += partial.column_scans;
    result.residual_filters += partial.residual_filters;
    result.rows_total += partial.rows_total;
  }

  if (spec.kind == AggregateKind::kCategoryAffinity) {
    for (const PartialAggregate& partial : partials) {
      result.rows_selected += partial.rows_selected;
    }
    std::vector<AffinityUserSample> samples;
    for (const PartialAggregate& partial : partials) {
      samples.insert(samples.end(), partial.samples.begin(), partial.samples.end());
    }
    // Users are sharded, so every user appears in exactly one partial and
    // sorting by user id reconstructs the global iteration order of a
    // single-store run (each shard already emits its samples sorted).
    std::sort(samples.begin(), samples.end(),
              [](const AffinityUserSample& a, const AffinityUserSample& b) {
                return a.user < b.user;
              });
    finalize_affinity(spec, samples, partials.front().random_walk, result);
    return result;
  }

  const std::uint64_t app_count = partials.front().app_count;
  for (const PartialAggregate& partial : partials) {
    if (partial.app_count != app_count) {
      throw QueryError("merge_mismatch",
                       util::format("merge: shard app universes differ ({} vs {})",
                                    partial.app_count, app_count));
    }
  }
  std::vector<std::uint64_t> counts(app_count, 0);
  for (const PartialAggregate& partial : partials) {
    for (const auto& [app, count] : partial.counts) {
      if (app >= app_count) {
        throw QueryError("merge_mismatch",
                         util::format("merge: app {} outside universe of {}", app, app_count));
      }
      counts[app] += count;
    }
  }
  finalize_downloads(spec, counts, result);
  return result;
}

std::optional<std::uint32_t> single_user_route(const QuerySpec& spec) {
  if (!spec.filter.has_value()) return std::nullopt;
  const Expr& expr = *spec.filter;
  if (const auto user = user_equals(expr); user.has_value()) return user;
  if (expr.kind == Expr::Kind::kAnd) {
    for (const Expr& child : expr.children) {
      if (const auto user = user_equals(child); user.has_value()) return user;
    }
  }
  return std::nullopt;
}

}  // namespace appstore::query
