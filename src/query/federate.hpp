// Cross-shard recombination of partial aggregates.
//
// A federation gateway scatters one query to N user-sharded stores, each of
// which answers with a QueryEngine::run_partial fragment; merge_partials
// recombines them into the exact QueryResult a single store holding the
// union of all events would return:
//
//   downloads   per-app integer counts sum exactly; the merged dense vector
//               (shared app universe — entities are replicated shard-side)
//               feeds the same finalize_downloads as a local run, so top-k
//               order, pareto shares, and the rank curve are bit-identical.
//   affinity    per-user samples concatenate in ascending user order (each
//               user lives on exactly one shard); finalize_affinity then
//               rebuilds the comment-count groups in the same order a
//               single-store run iterates them, so the grouped means sum
//               identically. The random-walk baseline is taken from the
//               first shard (entity state is replicated, so all agree).
//
// single_user_route() is the gateway's fast path: a filter that pins
// `user == K` needs only K's home shard, no scatter.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "query/engine.hpp"

namespace appstore::query {

/// Merges shard partials into the federated answer. All partials must share
/// the query's kind and (for download kinds) the same dense app universe;
/// a mismatch throws QueryError("merge_mismatch") — it means the shards
/// were built from different store configurations. Throws on an empty span.
[[nodiscard]] QueryResult merge_partials(const QuerySpec& spec,
                                         std::span<const PartialAggregate> partials);

/// Returns the user id when the spec's filter pins the query to exactly one
/// user: a `user == K` comparison either as the whole filter or as a direct
/// child of a top-level AND. Disjunctions never qualify (an OR containing
/// `user == K` can still select other users' rows).
[[nodiscard]] std::optional<std::uint32_t> single_user_route(const QuerySpec& spec);

}  // namespace appstore::query
