#include "crawler/query_json.hpp"

#include <limits>
#include <utility>

#include "util/format.hpp"
#include "util/strings.hpp"

namespace appstore::crawlersim {

namespace {

using query::QueryError;

constexpr std::size_t kMaxJsonFilterDepth = 32;
constexpr std::size_t kMaxListItems = 64;

[[nodiscard]] std::size_t parse_count(const std::string& text, std::string_view name) {
  std::uint64_t value = 0;
  if (!util::parse_u64(text, value)) {
    throw QueryError("bad_query", util::format("query: bad {} '{}'", name, text));
  }
  return static_cast<std::size_t>(value);
}

[[nodiscard]] std::vector<double> parse_fraction_list(const std::string& text) {
  std::vector<double> fractions;
  for (const auto piece : util::split(text, ',')) {
    double value = 0.0;
    if (!util::parse_double(util::trim(piece), value)) {
      throw QueryError("bad_query", util::format("query: bad fraction '{}'", piece));
    }
    fractions.push_back(value);
    if (fractions.size() > kMaxListItems) {
      throw QueryError("bad_query", "query: too many fractions");
    }
  }
  return fractions;
}

[[nodiscard]] std::vector<std::size_t> parse_depth_list(const std::string& text) {
  std::vector<std::size_t> depths;
  for (const auto piece : util::split(text, ',')) {
    depths.push_back(parse_count(std::string(util::trim(piece)), "depth"));
    if (depths.size() > kMaxListItems) {
      throw QueryError("bad_query", "query: too many depths");
    }
  }
  return depths;
}

[[nodiscard]] query::Expr expr_from_json_node(const Json& node, std::size_t depth) {
  if (depth >= kMaxJsonFilterDepth) {
    throw QueryError("bad_filter", "filter: expression too deeply nested");
  }
  if (!node.is_object()) {
    throw QueryError("bad_filter", "filter: expected an object node");
  }
  for (const auto connective : {std::string_view("and"), std::string_view("or")}) {
    const Json* children = node.find(connective);
    if (children == nullptr) continue;
    if (!children->is_array() || children->as_array().empty()) {
      throw QueryError("bad_filter", util::format("filter: '{}' needs a non-empty array",
                                                  connective));
    }
    query::Expr expr;
    expr.kind = connective == "and" ? query::Expr::Kind::kAnd : query::Expr::Kind::kOr;
    for (const Json& child : children->as_array()) {
      expr.children.push_back(expr_from_json_node(child, depth + 1));
    }
    if (expr.children.size() == 1) return std::move(expr.children.front());
    return expr;
  }

  const Json* field = node.find("field");
  const Json* op = node.find("op");
  const Json* value = node.find("value");
  if (field == nullptr || !field->is_string() || op == nullptr || !op->is_string() ||
      value == nullptr) {
    throw QueryError("bad_filter", "filter: leaf needs string 'field', 'op' and 'value'");
  }
  double number = 0.0;
  std::string text;
  bool is_text = false;
  if (value->is_number()) {
    number = value->as_number();
  } else if (value->is_string()) {
    text = value->as_string();
    is_text = true;
  } else {
    throw QueryError("bad_filter", "filter: 'value' must be a number or string");
  }
  return query::Expr::leaf(query::make_comparison(query::parse_field(field->as_string()),
                                                  query::parse_op(op->as_string()), number,
                                                  std::move(text), is_text));
}

[[nodiscard]] query::QuerySpec spec_from_params(
    const std::map<std::string, std::string>& params) {
  const auto kind = params.find("kind");
  if (kind == params.end()) {
    throw QueryError("bad_query", "query: 'kind' is required");
  }
  query::QuerySpec spec;
  spec.kind = query::parse_aggregate_kind(kind->second);
  if (const auto it = params.find("filter"); it != params.end()) {
    spec.filter = query::parse_filter(it->second);
  }
  if (const auto it = params.find("k"); it != params.end()) {
    spec.k = parse_count(it->second, "k");
  }
  if (const auto it = params.find("fractions"); it != params.end()) {
    spec.fractions = parse_fraction_list(it->second);
  }
  if (const auto it = params.find("depths"); it != params.end()) {
    spec.depths = parse_depth_list(it->second);
  }
  if (const auto it = params.find("min_samples"); it != params.end()) {
    spec.min_samples = parse_count(it->second, "min_samples");
  }
  if (const auto it = params.find("points"); it != params.end()) {
    spec.points = parse_count(it->second, "points");
  }
  return spec;
}

[[nodiscard]] std::size_t json_count(const Json& value, std::string_view name) {
  if (!value.is_number() || value.as_number() < 0.0) {
    throw QueryError("bad_query", util::format("query: '{}' must be a non-negative number",
                                               name));
  }
  return static_cast<std::size_t>(value.as_number());
}

[[nodiscard]] query::QuerySpec spec_from_body(const std::string& body) {
  const std::optional<Json> parsed = parse_json(body);
  if (!parsed.has_value() || !parsed->is_object()) {
    throw QueryError("bad_query", "query: body is not a JSON object");
  }
  const Json& root = *parsed;
  const Json* kind = root.find("kind");
  if (kind == nullptr || !kind->is_string()) {
    throw QueryError("bad_query", "query: 'kind' is required");
  }
  query::QuerySpec spec;
  spec.kind = query::parse_aggregate_kind(kind->as_string());
  if (const Json* filter = root.find("filter"); filter != nullptr && !filter->is_null()) {
    if (filter->is_string()) {
      spec.filter = query::parse_filter(filter->as_string());
    } else {
      spec.filter = expr_from_json_node(*filter, 0);
    }
  }
  if (const Json* k = root.find("k"); k != nullptr) spec.k = json_count(*k, "k");
  if (const Json* fractions = root.find("fractions"); fractions != nullptr) {
    if (!fractions->is_array() || fractions->as_array().size() > kMaxListItems) {
      throw QueryError("bad_query", "query: 'fractions' must be a short array");
    }
    spec.fractions.clear();
    for (const Json& value : fractions->as_array()) {
      if (!value.is_number()) {
        throw QueryError("bad_query", "query: fractions must be numbers");
      }
      spec.fractions.push_back(value.as_number());
    }
  }
  if (const Json* depths = root.find("depths"); depths != nullptr) {
    if (!depths->is_array() || depths->as_array().size() > kMaxListItems) {
      throw QueryError("bad_query", "query: 'depths' must be a short array");
    }
    spec.depths.clear();
    for (const Json& value : depths->as_array()) {
      spec.depths.push_back(json_count(value, "depths"));
    }
  }
  if (const Json* min_samples = root.find("min_samples"); min_samples != nullptr) {
    spec.min_samples = json_count(*min_samples, "min_samples");
  }
  if (const Json* points = root.find("points"); points != nullptr) {
    spec.points = json_count(*points, "points");
  }
  return spec;
}

}  // namespace

query::Expr expr_from_json(const Json& node) { return expr_from_json_node(node, 0); }

bool wants_partial(const net::HttpRequest& request) {
  if (request.method == "POST") {
    const std::optional<Json> parsed = parse_json(request.body);
    if (!parsed.has_value() || !parsed->is_object()) return false;
    const Json* flag = parsed->find("partial");
    return flag != nullptr && flag->is_bool() && flag->as_bool();
  }
  const auto params = request.query();
  const auto it = params.find("partial");
  return it != params.end() && (it->second == "1" || it->second == "true");
}

query::QuerySpec parse_query_request(const net::HttpRequest& request) {
  if (request.method == "POST") return spec_from_body(request.body);
  return spec_from_params(request.query());
}

Json query_partial_json(const query::PartialAggregate& partial, market::Day day) {
  JsonObject document;
  document.emplace_back("kind", Json(query::to_string(partial.kind)));
  document.emplace_back("day", Json(static_cast<std::int64_t>(day)));
  document.emplace_back("partial", Json(true));
  document.emplace_back(
      "plan", json_object({{"index_scans", static_cast<std::uint64_t>(partial.index_scans)},
                           {"column_scans", static_cast<std::uint64_t>(partial.column_scans)},
                           {"residual_filters",
                            static_cast<std::uint64_t>(partial.residual_filters)}}));
  document.emplace_back("rows_total", Json(partial.rows_total));
  document.emplace_back("rows_selected", Json(partial.rows_selected));

  if (partial.kind == query::AggregateKind::kCategoryAffinity) {
    JsonArray random_walk(partial.random_walk.size());
    for (std::size_t i = 0; i < partial.random_walk.size(); ++i) {
      random_walk[i] = Json(partial.random_walk[i]);
    }
    document.emplace_back("random_walk", Json(std::move(random_walk)));
    JsonArray samples(partial.samples.size());
    for (std::size_t s = 0; s < partial.samples.size(); ++s) {
      const query::AffinityUserSample& sample = partial.samples[s];
      JsonArray row(2 + sample.values.size());
      row[0] = Json(static_cast<std::uint64_t>(sample.user));
      row[1] = Json(sample.comments);
      for (std::size_t i = 0; i < sample.values.size(); ++i) row[2 + i] = Json(sample.values[i]);
      samples[s] = Json(std::move(row));
    }
    document.emplace_back("samples", Json(std::move(samples)));
  } else {
    document.emplace_back("app_count", Json(partial.app_count));
    JsonArray counts(partial.counts.size());
    for (std::size_t i = 0; i < partial.counts.size(); ++i) {
      JsonArray pair(2);
      pair[0] = Json(static_cast<std::uint64_t>(partial.counts[i].first));
      pair[1] = Json(partial.counts[i].second);
      counts[i] = Json(std::move(pair));
    }
    document.emplace_back("counts", Json(std::move(counts)));
  }
  return Json(std::move(document));
}

query::PartialAggregate partial_from_json(const Json& document) {
  const auto fail = [](std::string_view what) -> query::PartialAggregate {
    throw QueryError("bad_partial", util::format("partial: {}", what));
  };
  if (!document.is_object()) return fail("not a JSON object");
  const Json* kind = document.find("kind");
  const Json* flag = document.find("partial");
  if (kind == nullptr || !kind->is_string()) return fail("missing 'kind'");
  if (flag == nullptr || !flag->is_bool() || !flag->as_bool()) {
    return fail("missing 'partial: true' marker");
  }
  query::PartialAggregate partial;
  partial.kind = query::parse_aggregate_kind(kind->as_string());
  if (const Json* plan = document.find("plan"); plan != nullptr && plan->is_object()) {
    const auto plan_count = [&](std::string_view name) -> std::uint32_t {
      const Json* value = plan->find(name);
      return value != nullptr && value->is_number()
                 ? static_cast<std::uint32_t>(value->as_number())
                 : 0;
    };
    partial.index_scans = plan_count("index_scans");
    partial.column_scans = plan_count("column_scans");
    partial.residual_filters = plan_count("residual_filters");
  }
  const auto u64_member = [&](std::string_view name) -> std::uint64_t {
    const Json* value = document.find(name);
    return value != nullptr && value->is_number() ? value->as_u64() : 0;
  };
  partial.rows_total = u64_member("rows_total");
  partial.rows_selected = u64_member("rows_selected");

  if (partial.kind == query::AggregateKind::kCategoryAffinity) {
    if (const Json* walk = document.find("random_walk"); walk != nullptr) {
      if (!walk->is_array()) return fail("'random_walk' must be an array");
      for (const Json& value : walk->as_array()) {
        if (!value.is_number()) return fail("random_walk entries must be numbers");
        partial.random_walk.push_back(value.as_number());
      }
    }
    const Json* samples = document.find("samples");
    if (samples == nullptr || !samples->is_array()) return fail("missing 'samples' array");
    for (const Json& row : samples->as_array()) {
      if (!row.is_array() || row.as_array().size() < 2) {
        return fail("sample rows need [user, comments, values...]");
      }
      const JsonArray& fields = row.as_array();
      if (!fields[0].is_number() || !fields[1].is_number()) {
        return fail("sample user/comments must be numbers");
      }
      query::AffinityUserSample sample;
      sample.user = static_cast<std::uint32_t>(fields[0].as_u64());
      sample.comments = fields[1].as_u64();
      for (std::size_t i = 2; i < fields.size(); ++i) {
        if (fields[i].is_null()) {
          sample.values.push_back(std::numeric_limits<double>::quiet_NaN());
        } else if (fields[i].is_number()) {
          sample.values.push_back(fields[i].as_number());
        } else {
          return fail("sample values must be numbers or null");
        }
      }
      partial.samples.push_back(std::move(sample));
    }
  } else {
    partial.app_count = u64_member("app_count");
    const Json* counts = document.find("counts");
    if (counts == nullptr || !counts->is_array()) return fail("missing 'counts' array");
    for (const Json& pair : counts->as_array()) {
      if (!pair.is_array() || pair.as_array().size() != 2 ||
          !pair.as_array()[0].is_number() || !pair.as_array()[1].is_number()) {
        return fail("count entries must be [app, count] pairs");
      }
      partial.counts.emplace_back(static_cast<std::uint32_t>(pair.as_array()[0].as_u64()),
                                  pair.as_array()[1].as_u64());
    }
  }
  return partial;
}

Json query_result_json(const query::QueryResult& result, market::Day day) {
  JsonObject document;
  document.emplace_back("kind", Json(query::to_string(result.kind)));
  document.emplace_back("day", Json(static_cast<std::int64_t>(day)));
  document.emplace_back(
      "plan", json_object({{"index_scans", static_cast<std::uint64_t>(result.index_scans)},
                           {"column_scans", static_cast<std::uint64_t>(result.column_scans)},
                           {"residual_filters",
                            static_cast<std::uint64_t>(result.residual_filters)}}));
  document.emplace_back("rows_total", Json(result.rows_total));
  document.emplace_back("rows_selected", Json(result.rows_selected));

  switch (result.kind) {
    case query::AggregateKind::kTopKDownloads: {
      document.emplace_back("total_downloads", Json(result.total_downloads));
      JsonArray top;
      for (const query::TopKEntry& entry : result.top) {
        top.push_back(json_object({{"app", static_cast<std::uint64_t>(entry.app)},
                                   {"downloads", entry.downloads}}));
      }
      document.emplace_back("top", Json(std::move(top)));
      break;
    }
    case query::AggregateKind::kParetoShare: {
      document.emplace_back("total_downloads", Json(result.total_downloads));
      JsonArray pareto;
      for (const query::ParetoPoint& point : result.pareto) {
        pareto.push_back(json_object({{"fraction", point.fraction}, {"share", point.share}}));
      }
      document.emplace_back("pareto", Json(std::move(pareto)));
      break;
    }
    case query::AggregateKind::kCategoryAffinity: {
      JsonArray affinity;
      for (const query::AffinityDepthPoint& point : result.affinity) {
        affinity.push_back(
            json_object({{"depth", static_cast<std::uint64_t>(point.depth)},
                         {"mean", point.mean},
                         {"random_walk", point.random_walk},
                         {"groups", static_cast<std::uint64_t>(point.groups)},
                         {"samples", static_cast<std::uint64_t>(point.samples)}}));
      }
      document.emplace_back("affinity", Json(std::move(affinity)));
      break;
    }
    case query::AggregateKind::kRankDownloadCurve: {
      document.emplace_back("total_downloads", Json(result.total_downloads));
      JsonArray curve;
      for (const query::CurvePoint& point : result.curve) {
        curve.push_back(json_object({{"rank", point.rank}, {"downloads", point.downloads}}));
      }
      document.emplace_back("curve", Json(std::move(curve)));
      break;
    }
  }
  return Json(std::move(document));
}

}  // namespace appstore::crawlersim
