#include "crawler/query_json.hpp"

#include <utility>

#include "util/format.hpp"
#include "util/strings.hpp"

namespace appstore::crawlersim {

namespace {

using query::QueryError;

constexpr std::size_t kMaxJsonFilterDepth = 32;
constexpr std::size_t kMaxListItems = 64;

[[nodiscard]] std::size_t parse_count(const std::string& text, std::string_view name) {
  std::uint64_t value = 0;
  if (!util::parse_u64(text, value)) {
    throw QueryError("bad_query", util::format("query: bad {} '{}'", name, text));
  }
  return static_cast<std::size_t>(value);
}

[[nodiscard]] std::vector<double> parse_fraction_list(const std::string& text) {
  std::vector<double> fractions;
  for (const auto piece : util::split(text, ',')) {
    double value = 0.0;
    if (!util::parse_double(util::trim(piece), value)) {
      throw QueryError("bad_query", util::format("query: bad fraction '{}'", piece));
    }
    fractions.push_back(value);
    if (fractions.size() > kMaxListItems) {
      throw QueryError("bad_query", "query: too many fractions");
    }
  }
  return fractions;
}

[[nodiscard]] std::vector<std::size_t> parse_depth_list(const std::string& text) {
  std::vector<std::size_t> depths;
  for (const auto piece : util::split(text, ',')) {
    depths.push_back(parse_count(std::string(util::trim(piece)), "depth"));
    if (depths.size() > kMaxListItems) {
      throw QueryError("bad_query", "query: too many depths");
    }
  }
  return depths;
}

[[nodiscard]] query::Expr expr_from_json_node(const Json& node, std::size_t depth) {
  if (depth >= kMaxJsonFilterDepth) {
    throw QueryError("bad_filter", "filter: expression too deeply nested");
  }
  if (!node.is_object()) {
    throw QueryError("bad_filter", "filter: expected an object node");
  }
  for (const auto connective : {std::string_view("and"), std::string_view("or")}) {
    const Json* children = node.find(connective);
    if (children == nullptr) continue;
    if (!children->is_array() || children->as_array().empty()) {
      throw QueryError("bad_filter", util::format("filter: '{}' needs a non-empty array",
                                                  connective));
    }
    query::Expr expr;
    expr.kind = connective == "and" ? query::Expr::Kind::kAnd : query::Expr::Kind::kOr;
    for (const Json& child : children->as_array()) {
      expr.children.push_back(expr_from_json_node(child, depth + 1));
    }
    if (expr.children.size() == 1) return std::move(expr.children.front());
    return expr;
  }

  const Json* field = node.find("field");
  const Json* op = node.find("op");
  const Json* value = node.find("value");
  if (field == nullptr || !field->is_string() || op == nullptr || !op->is_string() ||
      value == nullptr) {
    throw QueryError("bad_filter", "filter: leaf needs string 'field', 'op' and 'value'");
  }
  double number = 0.0;
  std::string text;
  bool is_text = false;
  if (value->is_number()) {
    number = value->as_number();
  } else if (value->is_string()) {
    text = value->as_string();
    is_text = true;
  } else {
    throw QueryError("bad_filter", "filter: 'value' must be a number or string");
  }
  return query::Expr::leaf(query::make_comparison(query::parse_field(field->as_string()),
                                                  query::parse_op(op->as_string()), number,
                                                  std::move(text), is_text));
}

[[nodiscard]] query::QuerySpec spec_from_params(
    const std::map<std::string, std::string>& params) {
  const auto kind = params.find("kind");
  if (kind == params.end()) {
    throw QueryError("bad_query", "query: 'kind' is required");
  }
  query::QuerySpec spec;
  spec.kind = query::parse_aggregate_kind(kind->second);
  if (const auto it = params.find("filter"); it != params.end()) {
    spec.filter = query::parse_filter(it->second);
  }
  if (const auto it = params.find("k"); it != params.end()) {
    spec.k = parse_count(it->second, "k");
  }
  if (const auto it = params.find("fractions"); it != params.end()) {
    spec.fractions = parse_fraction_list(it->second);
  }
  if (const auto it = params.find("depths"); it != params.end()) {
    spec.depths = parse_depth_list(it->second);
  }
  if (const auto it = params.find("min_samples"); it != params.end()) {
    spec.min_samples = parse_count(it->second, "min_samples");
  }
  if (const auto it = params.find("points"); it != params.end()) {
    spec.points = parse_count(it->second, "points");
  }
  return spec;
}

[[nodiscard]] std::size_t json_count(const Json& value, std::string_view name) {
  if (!value.is_number() || value.as_number() < 0.0) {
    throw QueryError("bad_query", util::format("query: '{}' must be a non-negative number",
                                               name));
  }
  return static_cast<std::size_t>(value.as_number());
}

[[nodiscard]] query::QuerySpec spec_from_body(const std::string& body) {
  const std::optional<Json> parsed = parse_json(body);
  if (!parsed.has_value() || !parsed->is_object()) {
    throw QueryError("bad_query", "query: body is not a JSON object");
  }
  const Json& root = *parsed;
  const Json* kind = root.find("kind");
  if (kind == nullptr || !kind->is_string()) {
    throw QueryError("bad_query", "query: 'kind' is required");
  }
  query::QuerySpec spec;
  spec.kind = query::parse_aggregate_kind(kind->as_string());
  if (const Json* filter = root.find("filter"); filter != nullptr && !filter->is_null()) {
    if (filter->is_string()) {
      spec.filter = query::parse_filter(filter->as_string());
    } else {
      spec.filter = expr_from_json_node(*filter, 0);
    }
  }
  if (const Json* k = root.find("k"); k != nullptr) spec.k = json_count(*k, "k");
  if (const Json* fractions = root.find("fractions"); fractions != nullptr) {
    if (!fractions->is_array() || fractions->as_array().size() > kMaxListItems) {
      throw QueryError("bad_query", "query: 'fractions' must be a short array");
    }
    spec.fractions.clear();
    for (const Json& value : fractions->as_array()) {
      if (!value.is_number()) {
        throw QueryError("bad_query", "query: fractions must be numbers");
      }
      spec.fractions.push_back(value.as_number());
    }
  }
  if (const Json* depths = root.find("depths"); depths != nullptr) {
    if (!depths->is_array() || depths->as_array().size() > kMaxListItems) {
      throw QueryError("bad_query", "query: 'depths' must be a short array");
    }
    spec.depths.clear();
    for (const Json& value : depths->as_array()) {
      spec.depths.push_back(json_count(value, "depths"));
    }
  }
  if (const Json* min_samples = root.find("min_samples"); min_samples != nullptr) {
    spec.min_samples = json_count(*min_samples, "min_samples");
  }
  if (const Json* points = root.find("points"); points != nullptr) {
    spec.points = json_count(*points, "points");
  }
  return spec;
}

}  // namespace

query::Expr expr_from_json(const Json& node) { return expr_from_json_node(node, 0); }

query::QuerySpec parse_query_request(const net::HttpRequest& request) {
  if (request.method == "POST") return spec_from_body(request.body);
  return spec_from_params(request.query());
}

Json query_result_json(const query::QueryResult& result, market::Day day) {
  JsonObject document;
  document.emplace_back("kind", Json(query::to_string(result.kind)));
  document.emplace_back("day", Json(static_cast<std::int64_t>(day)));
  document.emplace_back(
      "plan", json_object({{"index_scans", static_cast<std::uint64_t>(result.index_scans)},
                           {"column_scans", static_cast<std::uint64_t>(result.column_scans)},
                           {"residual_filters",
                            static_cast<std::uint64_t>(result.residual_filters)}}));
  document.emplace_back("rows_total", Json(result.rows_total));
  document.emplace_back("rows_selected", Json(result.rows_selected));

  switch (result.kind) {
    case query::AggregateKind::kTopKDownloads: {
      document.emplace_back("total_downloads", Json(result.total_downloads));
      JsonArray top;
      for (const query::TopKEntry& entry : result.top) {
        top.push_back(json_object({{"app", static_cast<std::uint64_t>(entry.app)},
                                   {"downloads", entry.downloads}}));
      }
      document.emplace_back("top", Json(std::move(top)));
      break;
    }
    case query::AggregateKind::kParetoShare: {
      document.emplace_back("total_downloads", Json(result.total_downloads));
      JsonArray pareto;
      for (const query::ParetoPoint& point : result.pareto) {
        pareto.push_back(json_object({{"fraction", point.fraction}, {"share", point.share}}));
      }
      document.emplace_back("pareto", Json(std::move(pareto)));
      break;
    }
    case query::AggregateKind::kCategoryAffinity: {
      JsonArray affinity;
      for (const query::AffinityDepthPoint& point : result.affinity) {
        affinity.push_back(
            json_object({{"depth", static_cast<std::uint64_t>(point.depth)},
                         {"mean", point.mean},
                         {"random_walk", point.random_walk},
                         {"groups", static_cast<std::uint64_t>(point.groups)},
                         {"samples", static_cast<std::uint64_t>(point.samples)}}));
      }
      document.emplace_back("affinity", Json(std::move(affinity)));
      break;
    }
    case query::AggregateKind::kRankDownloadCurve: {
      document.emplace_back("total_downloads", Json(result.total_downloads));
      JsonArray curve;
      for (const query::CurvePoint& point : result.curve) {
        curve.push_back(json_object({{"rank", point.rank}, {"downloads", point.downloads}}));
      }
      document.emplace_back("curve", Json(std::move(curve)));
      break;
    }
  }
  return Json(std::move(document));
}

}  // namespace appstore::crawlersim
