// The crawler's local database (the "Local Database" of Fig. 1).
//
// Stores per-(app, day) observations collected by daily crawls plus the
// app metadata seen on first contact. Provides the derived views the paper's
// analyses consume: snapshot series (Table 1), rank–download curves, and
// per-app update counts between two observations (Fig. 4).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "market/snapshot.hpp"
#include "market/types.hpp"

namespace appstore::crawlersim {

struct AppObservation {
  std::uint64_t downloads = 0;
  std::uint32_t version = 1;
  double price_dollars = 0.0;
};

struct AppRecord {
  std::uint32_t id = 0;
  std::string name;
  std::string category;
  std::string developer;
  bool paid = false;
  bool has_ads = false;
  market::Day first_seen = 0;
  /// day -> observation (ordered; one per crawl day).
  std::map<market::Day, AppObservation> by_day;
  /// Versions whose APKs have been fetched and scanned (the paper downloads
  /// each app version exactly once).
  std::map<std::uint32_t, bool> apk_ads_by_version;  ///< version -> ads found

  /// True if any scanned version embedded an ad-network library.
  [[nodiscard]] bool ads_detected() const noexcept {
    for (const auto& [version, ads] : apk_ads_by_version) {
      if (ads) return true;
    }
    return false;
  }
};

class CrawlDatabase {
 public:
  /// Upserts one observation for an app on a crawl day.
  void record(const AppRecord& metadata, market::Day day, const AppObservation& observation);

  [[nodiscard]] std::size_t app_count() const noexcept { return apps_.size(); }
  [[nodiscard]] const AppRecord* find(std::uint32_t id) const;
  [[nodiscard]] const std::map<std::uint32_t, AppRecord>& apps() const noexcept {
    return apps_;
  }

  /// Days on which at least one observation was recorded, ascending.
  [[nodiscard]] std::vector<market::Day> crawl_days() const;

  /// Snapshot series reconstructed from observations (apps visible and sum
  /// of downloads per crawl day) — the Table-1 inputs.
  [[nodiscard]] market::SnapshotSeries snapshot_series() const;

  /// Rank–download curve (descending) at the latest crawl day <= `day`.
  [[nodiscard]] std::vector<double> downloads_by_rank(market::Day day,
                                                      std::optional<bool> paid = {}) const;

  /// Update counts per app between the first and last observation (version
  /// delta) — the Fig.-4 statistic.
  [[nodiscard]] std::vector<double> updates_per_app() const;

  /// Records an APK scan result for one app version.
  void record_apk_scan(std::uint32_t id, std::uint32_t version, bool ads_found);

  /// True if this (app, version) APK was already fetched — the crawler's
  /// "download each version only once" check.
  [[nodiscard]] bool apk_scanned(std::uint32_t id, std::uint32_t version) const;

  /// Share of free apps whose scanned APKs embed ad libraries (§6.3: the
  /// Androguard result was 67.7%). Counts only apps with >= 1 scanned APK.
  [[nodiscard]] double free_apps_with_ads_fraction() const;

 private:
  std::map<std::uint32_t, AppRecord> apps_;
};

}  // namespace appstore::crawlersim
