#include "crawler/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace appstore::crawlersim {

const Json* Json::find(std::string_view key) const noexcept {
  if (!is_object()) return nullptr;
  for (const auto& [name, value] : as_object()) {
    if (name == key) return &value;
  }
  return nullptr;
}

const Json& Json::at(std::string_view key) const {
  const Json* value = find(key);
  if (value == nullptr) throw std::out_of_range("Json::at: missing key " + std::string(key));
  return *value;
}

namespace {

void write_escaped(std::string& out, std::string_view text) {
  out.push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void write_number(std::string& out, double value) {
  if (std::isnan(value) || std::isinf(value)) {
    out += "null";  // JSON has no NaN/Inf
    return;
  }
  // Integers within the exactly-representable range print without decimals.
  if (value == std::floor(value) && std::fabs(value) < 9.007199254740992e15) {
    char buffer[32];
    std::snprintf(buffer, sizeof buffer, "%.0f", value);
    out += buffer;
    return;
  }
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  out += buffer;
}

}  // namespace

void Json::write(std::string& out) const {
  if (is_null()) {
    out += "null";
  } else if (is_bool()) {
    out += as_bool() ? "true" : "false";
  } else if (is_number()) {
    write_number(out, as_number());
  } else if (is_string()) {
    write_escaped(out, as_string());
  } else if (is_array()) {
    out.push_back('[');
    bool first = true;
    for (const auto& element : as_array()) {
      if (!first) out.push_back(',');
      first = false;
      element.write(out);
    }
    out.push_back(']');
  } else {
    out.push_back('{');
    bool first = true;
    for (const auto& [key, value] : as_object()) {
      if (!first) out.push_back(',');
      first = false;
      write_escaped(out, key);
      out.push_back(':');
      value.write(out);
    }
    out.push_back('}');
  }
}

std::string Json::dump() const {
  std::string out;
  write(out);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  [[nodiscard]] std::optional<Json> parse() {
    skip_whitespace();
    auto value = parse_value();
    if (!value.has_value()) return std::nullopt;
    skip_whitespace();
    if (position_ != text_.size()) return std::nullopt;  // trailing garbage
    return value;
  }

 private:
  void skip_whitespace() {
    while (position_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[position_]))) {
      ++position_;
    }
  }

  [[nodiscard]] bool consume(char expected) {
    if (position_ < text_.size() && text_[position_] == expected) {
      ++position_;
      return true;
    }
    return false;
  }

  [[nodiscard]] bool consume_literal(std::string_view literal) {
    if (text_.substr(position_, literal.size()) == literal) {
      position_ += literal.size();
      return true;
    }
    return false;
  }

  [[nodiscard]] std::optional<Json> parse_value() {
    if (depth_ > kMaxDepth) return std::nullopt;
    skip_whitespace();
    if (position_ >= text_.size()) return std::nullopt;
    switch (text_[position_]) {
      case 'n': return consume_literal("null") ? std::optional<Json>(Json(nullptr)) : std::nullopt;
      case 't': return consume_literal("true") ? std::optional<Json>(Json(true)) : std::nullopt;
      case 'f': return consume_literal("false") ? std::optional<Json>(Json(false)) : std::nullopt;
      case '"': return parse_string();
      case '[': return parse_array();
      case '{': return parse_object();
      default: return parse_number();
    }
  }

  [[nodiscard]] std::optional<Json> parse_string() {
    std::optional<std::string> raw = parse_raw_string();
    if (!raw.has_value()) return std::nullopt;
    return Json(std::move(*raw));
  }

  [[nodiscard]] std::optional<std::string> parse_raw_string() {
    if (!consume('"')) return std::nullopt;
    std::string out;
    while (position_ < text_.size()) {
      const char c = text_[position_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (position_ >= text_.size()) return std::nullopt;
        const char escape = text_[position_++];
        switch (escape) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'u': {
            if (position_ + 4 > text_.size()) return std::nullopt;
            unsigned code = 0;
            for (int k = 0; k < 4; ++k) {
              const char h = text_[position_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return std::nullopt;
              }
            }
            // UTF-8 encode the BMP code point (surrogate pairs unsupported;
            // the service emits ASCII only).
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default: return std::nullopt;
        }
      } else {
        out.push_back(c);
      }
    }
    return std::nullopt;  // unterminated
  }

  [[nodiscard]] std::optional<Json> parse_number() {
    const std::size_t start = position_;
    if (position_ < text_.size() && text_[position_] == '-') ++position_;
    while (position_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[position_])) ||
            text_[position_] == '.' || text_[position_] == 'e' || text_[position_] == 'E' ||
            text_[position_] == '+' || text_[position_] == '-')) {
      ++position_;
    }
    if (position_ == start) return std::nullopt;
    double value = 0.0;
    const auto* first = text_.data() + start;
    const auto* last = text_.data() + position_;
    const auto [ptr, ec] = std::from_chars(first, last, value);
    if (ec != std::errc{} || ptr != last) return std::nullopt;
    return Json(value);
  }

  [[nodiscard]] std::optional<Json> parse_array() {
    if (!consume('[')) return std::nullopt;
    ++depth_;
    JsonArray array;
    skip_whitespace();
    if (consume(']')) {
      --depth_;
      return Json(std::move(array));
    }
    for (;;) {
      auto element = parse_value();
      if (!element.has_value()) return std::nullopt;
      array.push_back(std::move(*element));
      skip_whitespace();
      if (consume(']')) {
        --depth_;
        return Json(std::move(array));
      }
      if (!consume(',')) return std::nullopt;
    }
  }

  [[nodiscard]] std::optional<Json> parse_object() {
    if (!consume('{')) return std::nullopt;
    ++depth_;
    JsonObject object;
    skip_whitespace();
    if (consume('}')) {
      --depth_;
      return Json(std::move(object));
    }
    for (;;) {
      skip_whitespace();
      auto key = parse_raw_string();
      if (!key.has_value()) return std::nullopt;
      skip_whitespace();
      if (!consume(':')) return std::nullopt;
      auto value = parse_value();
      if (!value.has_value()) return std::nullopt;
      object.emplace_back(std::move(*key), std::move(*value));
      skip_whitespace();
      if (consume('}')) {
        --depth_;
        return Json(std::move(object));
      }
      if (!consume(',')) return std::nullopt;
    }
  }

  static constexpr int kMaxDepth = 128;

  std::string_view text_;
  std::size_t position_ = 0;
  int depth_ = 0;
};

}  // namespace

std::optional<Json> parse_json(std::string_view text) { return Parser(text).parse(); }

Json json_object(JsonObject members) { return Json(std::move(members)); }

}  // namespace appstore::crawlersim
