#include "crawler/crawler.hpp"

#include <stdexcept>
#include <thread>

#include "crawler/apk.hpp"
#include "crawler/json.hpp"
#include "obs/trace.hpp"
#include "util/format.hpp"
#include "util/logging.hpp"

namespace appstore::crawlersim {

namespace {
constexpr std::string_view kComponent = "crawler";
}

Crawler::Crawler(CrawlerOptions options, CrawlDatabase& database)
    : options_(std::move(options)),
      database_(database),
      proxies_(options_.proxy_count, options_.proxy_regions),
      rng_(options_.seed) {
  clients_.resize(proxies_.size());
  if (options_.metrics != nullptr) {
    obs::Registry& registry = *options_.metrics;
    registry.describe("crawler_requests_total", "HTTP exchanges completed (incl. retries)");
    registry.describe("crawler_retries_total", "Fetch attempts beyond the first");
    registry.describe("crawler_pages_total", "Directory pages enumerated");
    registry.describe("crawler_apps_observed_total", "App statistics pages recorded");
    registry.describe("crawler_apk_bytes_total", "Bytes of APK payload downloaded");
    registry.describe("crawler_responses_total", "Non-200 responses by cause");
    registry.describe("crawler_fetch_seconds", "Wall time of one fetch (incl. retries)");
    metrics_.requests = &registry.counter("crawler_requests_total");
    metrics_.retries = &registry.counter("crawler_retries_total");
    metrics_.pages = &registry.counter("crawler_pages_total");
    metrics_.apps = &registry.counter("crawler_apps_observed_total");
    metrics_.apk_bytes = &registry.counter("crawler_apk_bytes_total");
    metrics_.by_status[0] = &registry.counter("crawler_responses_total", "429");
    metrics_.by_status[1] = &registry.counter("crawler_responses_total", "403");
    metrics_.by_status[2] = &registry.counter("crawler_responses_total", "5xx");
    metrics_.by_status[3] = &registry.counter("crawler_responses_total", "404");
    metrics_.fetch_seconds = &registry.histogram("crawler_fetch_seconds");
  }
}

net::PersistentHttpClient& Crawler::client_for(std::size_t proxy_index) {
  auto& client = clients_.at(proxy_index);
  if (!client) {
    client = std::make_unique<net::PersistentHttpClient>(options_.host, options_.port);
  }
  return *client;
}

std::optional<std::string> Crawler::fetch(const std::string& target, CrawlStats& stats) {
  const obs::ScopedTimer timer(metrics_.fetch_seconds);
  auto backoff = options_.rate_limit_backoff;
  for (std::uint32_t attempt = 0; attempt < options_.max_attempts; ++attempt) {
    if (attempt > 0 && metrics_.retries != nullptr) metrics_.retries->inc();
    const auto proxy_index = proxies_.pick(rng_);
    if (!proxy_index.has_value()) {
      util::log_warn(kComponent, "no healthy proxies left");
      return std::nullopt;
    }
    const net::Proxy& proxy = proxies_.proxy(*proxy_index);
    try {
      net::Headers headers;
      headers["X-Client-Id"] = proxy.id;
      const net::HttpResponse response =
          client_for(*proxy_index).get(target, std::move(headers));
      ++stats.requests;
      if (metrics_.requests != nullptr) metrics_.requests->inc();

      if (response.status == 200) {
        proxies_.report_success(*proxy_index);
        return response.body;
      }
      if (response.status == 404) {
        if (metrics_.by_status[3] != nullptr) metrics_.by_status[3]->inc();
        proxies_.report_success(*proxy_index);
        return std::nullopt;  // not an infrastructure problem
      }
      if (response.status == 429) {
        ++stats.rate_limited;
        if (metrics_.by_status[0] != nullptr) metrics_.by_status[0]->inc();
        // The proxy identity is saturated: wait for its token bucket to
        // refill, then retry (usually through a different proxy). Not a
        // proxy failure — no quarantine.
        std::this_thread::sleep_for(backoff);
        backoff = std::min(backoff * 2, options_.rate_limit_backoff * 16);
        continue;
      }
      if (response.status == 403) {
        ++stats.region_blocked;
        if (metrics_.by_status[1] != nullptr) metrics_.by_status[1]->inc();
        // Wrong region for this store: quarantine so the pool converges on
        // usable (e.g. Chinese) proxies, as the paper's setup did.
        proxies_.report_failure(*proxy_index, 1);
        continue;
      }
      ++stats.transient_failures;
      if (metrics_.by_status[2] != nullptr) metrics_.by_status[2]->inc();
      proxies_.report_failure(*proxy_index);
    } catch (const std::exception& error) {
      ++stats.requests;
      ++stats.transient_failures;
      if (metrics_.requests != nullptr) metrics_.requests->inc();
      if (metrics_.by_status[2] != nullptr) metrics_.by_status[2]->inc();
      proxies_.report_failure(*proxy_index);
      util::log_debug(kComponent, "transport error via {}: {}", proxy.id, error.what());
    }
  }
  return std::nullopt;
}

CrawlStats Crawler::crawl_day(market::Day day) {
  const obs::TraceSpan day_span(options_.metrics, "crawl_day");
  CrawlStats stats;

  // 1. Enumerate the directory.
  std::vector<std::uint32_t> ids;
  {
    const obs::TraceSpan directory_span(options_.metrics, "directory");
    std::uint64_t page = 0;
    for (;;) {
      const auto body = fetch(
          util::format("/api/apps?page={}&per_page={}", page, options_.per_page), stats);
      if (!body.has_value()) {
        if (page == 0) throw std::runtime_error("crawl_day: cannot enumerate directory");
        break;
      }
      if (metrics_.pages != nullptr) metrics_.pages->inc();
      const auto parsed = parse_json(*body);
      if (!parsed.has_value()) throw std::runtime_error("crawl_day: bad directory JSON");
      const auto& id_array = parsed->at("ids").as_array();
      for (const auto& id : id_array) {
        ids.push_back(static_cast<std::uint32_t>(id.as_u64()));
      }
      const std::uint64_t total = parsed->at("total").as_u64();
      ++page;
      if (page * options_.per_page >= total || id_array.empty()) break;
    }
  }

  // 2. Fetch per-app statistics.
  const obs::TraceSpan apps_span(options_.metrics, "apps");
  for (const auto id : ids) {
    const auto body = fetch(util::format("/api/app/{}", id), stats);
    if (!body.has_value()) continue;
    const auto parsed = parse_json(*body);
    if (!parsed.has_value()) continue;

    AppRecord metadata;
    metadata.id = id;
    metadata.name = parsed->at("name").as_string();
    metadata.category = parsed->at("category").as_string();
    metadata.developer = parsed->at("developer").as_string();
    metadata.paid = parsed->at("paid").as_bool();
    metadata.has_ads = parsed->at("has_ads").as_bool();

    AppObservation observation;
    observation.downloads = parsed->at("downloads").as_u64();
    observation.version = static_cast<std::uint32_t>(parsed->at("version").as_u64());
    observation.price_dollars = parsed->at("price").as_number();

    database_.record(metadata, day, observation);
    ++stats.apps_observed;
    if (metrics_.apps != nullptr) metrics_.apps->inc();

    // APKs: fetched at most once per (app, version) across all crawl days —
    // the paper's "we download each app version only once".
    if (options_.fetch_apks && !database_.apk_scanned(id, observation.version)) {
      const auto apk = fetch(util::format("/api/app/{}/apk", id), stats);
      if (apk.has_value()) {
        if (metrics_.apk_bytes != nullptr) metrics_.apk_bytes->inc(apk->size());
        const auto scan = scan_apk(*apk);
        if (scan.has_value()) {
          database_.record_apk_scan(id, scan->header.version, scan->has_ads());
          ++stats.apks_fetched;
        }
      }
    }

    if (options_.fetch_comments) {
      std::uint64_t comment_page = 0;
      for (;;) {
        const auto comments_body =
            fetch(util::format("/api/app/{}/comments?page={}", id, comment_page), stats);
        if (!comments_body.has_value()) break;
        const auto comments = parse_json(*comments_body);
        if (!comments.has_value()) break;
        const auto& array = comments->at("comments").as_array();
        stats.comments_observed += array.size();
        const std::uint64_t total = comments->at("total").as_u64();
        ++comment_page;
        if (comment_page * 200 >= total || array.empty()) break;
      }
    }
  }

  totals_.requests += stats.requests;
  totals_.rate_limited += stats.rate_limited;
  totals_.region_blocked += stats.region_blocked;
  totals_.transient_failures += stats.transient_failures;
  totals_.apps_observed += stats.apps_observed;
  totals_.comments_observed += stats.comments_observed;
  totals_.apks_fetched += stats.apks_fetched;
  return stats;
}

}  // namespace appstore::crawlersim
